// Command predictd serves online allocation inference over the
// dishrpc framed protocol: campaign workers stream revealed slots in
// (`observe`), query the warm forest ahead of each reveal (`predict`,
// `topk`), and read model lineage and windowed accuracy back
// (`model_info`, `stats`). The model refits in the background on a
// sliding window of recent slots and swaps in atomically, so serving
// never stalls; when windowed accuracy degrades against the longer
// reference horizon — a scheduler update in production terms — the
// drift flag rises in telemetry and a refit is forced.
//
// Usage:
//
//	predictd [flags]
//
// Flags:
//
//	-listen addr           dishrpc endpoint (default 127.0.0.1:9123)
//	-telemetry-addr addr   serve /metrics, /debug/vars, /debug/pprof
//	-model file            warm-start from a forest saved by `repro fig8 -save-model`
//	-window n              sliding-window capacity in slots (default 2048)
//	-refit-every n         refit cadence in scored slots (default 256)
//	-min-fit n             window fill required before the first fit (default refit-every)
//	-trees n, -depth n     refit forest shape (default 30, 10)
//	-seed n                base training seed (refit i uses seed+i)
//	-workers n             training pool per refit (0 = GOMAXPROCS)
//	-topk k                windowed accuracy horizon (default 5)
//	-acc-window n          short accuracy horizon in slots (default 64)
//	-ref-window n          reference accuracy horizon in slots (default 256)
//	-drift-drop f          accuracy gap that raises the drift flag (default 0.15)
//	-sync                  refit inline instead of in the background (deterministic)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/predict"
	"repro/internal/telemetry"
)

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:9123", "dishrpc listen address")
		telemetryAddr = flag.String("telemetry-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		modelPath     = flag.String("model", "", "warm-start forest (JSON written by repro fig8 -save-model)")
		window        = flag.Int("window", 0, "sliding-window capacity in slots (0 = 2048)")
		refitEvery    = flag.Int("refit-every", 0, "refit after this many scored slots (0 = 256)")
		minFit        = flag.Int("min-fit", 0, "window fill required before the first fit (0 = refit-every)")
		trees         = flag.Int("trees", 0, "trees per refit forest (0 = 30)")
		depth         = flag.Int("depth", 0, "max tree depth (0 = 10)")
		seed          = flag.Int64("seed", 1, "base training seed")
		workers       = flag.Int("workers", 0, "training workers per refit (0 = GOMAXPROCS)")
		topK          = flag.Int("topk", 0, "windowed accuracy horizon k (0 = 5)")
		accWindow     = flag.Int("acc-window", 0, "short accuracy horizon in slots (0 = 64)")
		refWindow     = flag.Int("ref-window", 0, "reference accuracy horizon in slots (0 = 256)")
		driftDrop     = flag.Float64("drift-drop", 0, "accuracy gap that raises the drift flag (0 = 0.15)")
		sync          = flag.Bool("sync", false, "refit inline on the observe path instead of in the background")
	)
	flag.Parse()
	if err := run(*listen, *telemetryAddr, *modelPath, predict.Config{
		Window: *window, RefitEvery: *refitEvery, MinFit: *minFit,
		Trees: *trees, MaxDepth: *depth, Seed: *seed, Workers: *workers,
		TopK: *topK, AccWindow: *accWindow, RefWindow: *refWindow,
		DriftDrop: *driftDrop, Synchronous: *sync,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "predictd:", err)
		os.Exit(1)
	}
}

func run(listen, telemetryAddr, modelPath string, cfg predict.Config) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := telemetry.NewRegistry()
	cfg.Registry = reg
	svc, err := predict.NewService(cfg)
	if err != nil {
		return err
	}

	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return err
		}
		// The shape gate rejects a forest trained against a different
		// feature schema here, at startup, instead of per-request.
		forest, err := ml.LoadForestFor(f, features.VectorLen, features.NumClusters)
		f.Close()
		if err != nil {
			return err
		}
		if err := svc.SetModel(forest); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "predictd: warm-started from %s (%d trees)\n", modelPath, forest.NumTrees())
	}

	if telemetryAddr != "" {
		srv, err := telemetry.StartServer(ctx, telemetryAddr, reg, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "predictd: telemetry on http://%s/metrics\n", srv.Addr())
	}

	srv, err := predict.NewServer(listen, svc)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "predictd: serving dishrpc on %s\n", srv.Addr())
	if err := srv.Serve(ctx); err != nil && err != context.Canceled {
		return err
	}
	st := svc.Stats()
	fmt.Fprintf(os.Stderr, "predictd: shutdown: observed=%d scored=%d refits=%d drift_events=%d recent_top1=%.3f\n",
		st.Observed, st.Scored, st.Refits, st.DriftEvents, st.RecentTop1)
	return nil
}
