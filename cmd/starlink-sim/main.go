// Command starlink-sim runs the constellation + global scheduler and
// emits an allocation log: one line per terminal per 15-second slot
// with the chosen satellite's identity and observables. The output is
// TSV for easy downstream analysis.
//
// Usage:
//
//	starlink-sim [-scale medium] [-seed 7] [-slots 40] [-tle out.tle]
//	             [-telemetry-addr 127.0.0.1:0]
//
// With -tle the synthetic constellation's two-line element sets are
// also written in CelesTrak 3-line format. With -telemetry-addr the
// scheduler's metrics are served on /metrics (Prometheus text) and
// /debug/vars, and the process keeps serving after the simulation
// completes until interrupted — so a scraper or smoke test can read
// the final counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/scheduler"
	"repro/internal/telemetry"
	"repro/internal/traceio"
)

func main() {
	var (
		scale   = flag.String("scale", "medium", "constellation scale: small|medium|full")
		seed    = flag.Int64("seed", 7, "deterministic seed")
		slots   = flag.Int("slots", 40, "slots to simulate (15 s each)")
		tlePath = flag.String("tle", "", "also write the constellation TLEs to this file")
		teleAdr = flag.String("telemetry-addr", "", "serve /metrics and /debug/vars on this address; keep serving after the run until interrupted")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *scale, *seed, *slots, *tlePath, *teleAdr); err != nil {
		fmt.Fprintln(os.Stderr, "starlink-sim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, scale string, seed int64, slots int, tlePath, teleAdr string) error {
	var reg *telemetry.Registry
	if teleAdr != "" {
		reg = telemetry.NewRegistry()
	}
	env, err := experiments.NewEnv(experiments.Config{Scale: experiments.Scale(scale), Seed: seed, Telemetry: reg})
	if err != nil {
		return err
	}
	var srv *telemetry.Server
	if teleAdr != "" {
		if srv, err = telemetry.StartServer(ctx, teleAdr, reg, env.Trace()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "starlink-sim: telemetry on http://%s/metrics\n", srv.Addr())
	}
	if tlePath != "" {
		if err := os.WriteFile(tlePath, []byte(env.Cons.ExportTLEs()), 0o644); err != nil {
			return fmt.Errorf("write TLEs: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d element sets to %s\n", env.Cons.Len(), tlePath)
	}

	// Stream the log slot by slot: the run is O(1) in memory however
	// long the simulation, and output appears as it is produced.
	aw := traceio.NewAllocationWriter(os.Stdout)
	start := env.Start()
	for i := 0; i < slots; i++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		for _, a := range env.Sched.Allocate(start.Add(time.Duration(i) * scheduler.Period)) {
			if err := aw.Write(a); err != nil {
				return err
			}
		}
	}
	if err := aw.Flush(); err != nil {
		return err
	}
	if srv != nil {
		// Hold the endpoint open so the final counters stay scrapeable;
		// Ctrl-C (or SIGTERM) tears the server down gracefully.
		fmt.Fprintln(os.Stderr, "starlink-sim: run complete, serving telemetry until interrupted")
		<-ctx.Done()
		srv.Wait()
	}
	return nil
}
