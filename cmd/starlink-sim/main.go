// Command starlink-sim runs the constellation + global scheduler and
// emits an allocation log: one line per terminal per 15-second slot
// with the chosen satellite's identity and observables. The output is
// TSV for easy downstream analysis.
//
// Usage:
//
//	starlink-sim [-scale medium] [-seed 7] [-slots 40] [-tle out.tle]
//
// With -tle the synthetic constellation's two-line element sets are
// also written in CelesTrak 3-line format.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/scheduler"
	"repro/internal/traceio"
)

func main() {
	var (
		scale   = flag.String("scale", "medium", "constellation scale: small|medium|full")
		seed    = flag.Int64("seed", 7, "deterministic seed")
		slots   = flag.Int("slots", 40, "slots to simulate (15 s each)")
		tlePath = flag.String("tle", "", "also write the constellation TLEs to this file")
	)
	flag.Parse()
	if err := run(*scale, *seed, *slots, *tlePath); err != nil {
		fmt.Fprintln(os.Stderr, "starlink-sim:", err)
		os.Exit(1)
	}
}

func run(scale string, seed int64, slots int, tlePath string) error {
	env, err := experiments.NewEnv(experiments.Config{Scale: experiments.Scale(scale), Seed: seed})
	if err != nil {
		return err
	}
	if tlePath != "" {
		if err := os.WriteFile(tlePath, []byte(env.Cons.ExportTLEs()), 0o644); err != nil {
			return fmt.Errorf("write TLEs: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d element sets to %s\n", env.Cons.Len(), tlePath)
	}

	// Stream the log slot by slot: the run is O(1) in memory however
	// long the simulation, and output appears as it is produced.
	aw := traceio.NewAllocationWriter(os.Stdout)
	start := env.Start()
	for i := 0; i < slots; i++ {
		for _, a := range env.Sched.Allocate(start.Add(time.Duration(i) * scheduler.Period)) {
			if err := aw.Write(a); err != nil {
				return err
			}
		}
	}
	return aw.Flush()
}
