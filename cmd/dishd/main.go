// Command dishd runs a simulated Starlink user terminal daemon: it
// drives the constellation + global scheduler in real (or accelerated)
// time, paints the serving satellite's sky-track into the dish
// obstruction map each 15-second slot, and serves the map and status
// over the dishrpc protocol — the stand-in for a real dish's gRPC API.
//
// Usage:
//
//	dishd [-listen 127.0.0.1:9200] [-terminal Iowa] [-scale small]
//	      [-seed 7] [-speedup 60] [-telemetry-addr 127.0.0.1:0]
//
// With -speedup N, N simulated seconds elapse per wall second, so a
// full 10-minute reset cycle can be observed in ten seconds. With
// -telemetry-addr the daemon also serves scheduler metrics on
// /metrics and /debug/vars for the lifetime of the process.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/dishrpc"
	"repro/internal/experiments"
	"repro/internal/scheduler"
	"repro/internal/telemetry"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9200", "dishrpc listen address")
		terminal = flag.String("terminal", "Iowa", "terminal to simulate")
		scale    = flag.String("scale", "small", "constellation scale: small|medium|full")
		seed     = flag.Int64("seed", 7, "deterministic seed")
		speedup  = flag.Float64("speedup", 60, "simulated seconds per wall second")
		teleAdr  = flag.String("telemetry-addr", "", "serve /metrics and /debug/vars on this address")
	)
	flag.Parse()
	if err := run(*listen, *terminal, *scale, *seed, *speedup, *teleAdr); err != nil {
		fmt.Fprintln(os.Stderr, "dishd:", err)
		os.Exit(1)
	}
}

func run(listen, terminal, scale string, seed int64, speedup float64, teleAdr string) error {
	if speedup <= 0 {
		return fmt.Errorf("speedup must be positive, got %v", speedup)
	}
	var reg *telemetry.Registry
	if teleAdr != "" {
		reg = telemetry.NewRegistry()
	}
	env, err := experiments.NewEnv(experiments.Config{Scale: experiments.Scale(scale), Seed: seed, Telemetry: reg})
	if err != nil {
		return err
	}
	var term scheduler.Terminal
	found := false
	for _, t := range env.Terminals {
		if t.Name == terminal {
			term = t
			found = true
		}
	}
	if !found {
		return fmt.Errorf("unknown terminal %q", terminal)
	}

	// Simulated clock: starts at the campaign start, advances at
	// speedup x wall time.
	wallStart := time.Now()
	simStart := env.Start()
	var simNanos atomic.Int64
	simNanos.Store(simStart.UnixNano())
	now := func() time.Time { return time.Unix(0, simNanos.Load()) }

	dish := dishrpc.NewDish("dish-"+terminal, now)
	srv, err := dishrpc.NewServer(listen, dish)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dishd: %s terminal on %s, %d satellites, sim speedup %gx\n",
		terminal, srv.Addr(), env.Cons.Len(), speedup)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if teleAdr != "" {
		tsrv, err := telemetry.StartServer(ctx, teleAdr, reg, env.Trace())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dishd: telemetry on http://%s/metrics\n", tsrv.Addr())
	}

	// Firmware loop: every simulated slot, paint the serving track.
	go func() {
		slot := simStart
		for ctx.Err() == nil {
			simNow := simStart.Add(time.Duration(float64(time.Since(wallStart)) * speedup))
			simNanos.Store(simNow.UnixNano())
			for !slot.After(simNow) {
				for _, a := range env.Sched.Allocate(slot) {
					if a.Terminal != terminal || a.SatID == 0 {
						continue
					}
					pts, err := env.Ident.ServingTrack(a.SatID, term.VantagePoint, slot)
					if err != nil {
						fmt.Fprintf(os.Stderr, "dishd: track: %v\n", err)
						continue
					}
					dish.PaintTrack(pts)
				}
				slot = slot.Add(scheduler.Period)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	err = srv.Serve(ctx)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "dishd: shutting down")
		return nil
	}
	return err
}
