// Command irtt is the isochronous RTT measurement tool this
// reproduction uses the way the paper used iRTT: a UDP server echoes
// timestamped probes, and a client sends them on a strict interval
// (the study's rate: 1 packet / 20 ms) and reports per-probe RTTs and
// loss.
//
// Server:
//
//	irtt -server -listen 127.0.0.1:9300
//
// The server can put the full simulated Starlink path under every
// probe, turning a loopback run into a live Figure-2 trace:
//
//	irtt -server -listen 127.0.0.1:9300 -simulate -terminal Madrid -scale small
//
// Client:
//
//	irtt -addr 127.0.0.1:9300 -interval 20ms -count 500 [-tsv trace.tsv]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/irtt"
	"repro/internal/netsim"
)

func main() {
	var (
		server   = flag.Bool("server", false, "run as server")
		listen   = flag.String("listen", "127.0.0.1:9300", "server: listen address")
		simulate = flag.Bool("simulate", false, "server: inject the simulated Starlink path delay")
		terminal = flag.String("terminal", "Madrid", "server: simulated terminal")
		scale    = flag.String("scale", "small", "server: constellation scale")
		seed     = flag.Int64("seed", 7, "server: simulation seed")
		addr     = flag.String("addr", "127.0.0.1:9300", "client: server address")
		interval = flag.Duration("interval", 20*time.Millisecond, "client: probe interval")
		count    = flag.Int("count", 500, "client: number of probes")
		tsvPath  = flag.String("tsv", "", "client: write per-probe results as TSV to this file")
	)
	flag.Parse()

	var err error
	if *server {
		err = runServer(*listen, *simulate, *terminal, *scale, *seed)
	} else {
		err = runClient(*addr, *interval, *count, *tsvPath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "irtt:", err)
		os.Exit(1)
	}
}

func runServer(listen string, simulate bool, terminal, scale string, seed int64) error {
	var delay irtt.DelayFunc
	if simulate {
		env, err := experiments.NewEnv(experiments.Config{Scale: experiments.Scale(scale), Seed: seed})
		if err != nil {
			return err
		}
		var path *netsim.Path
		for _, t := range env.Terminals {
			if t.Name == terminal {
				path, err = netsim.NewPath(netsim.Config{
					Constellation: env.Cons,
					Scheduler:     env.Sched,
					Terminal:      t,
					Seed:          seed,
				})
				if err != nil {
					return err
				}
			}
		}
		if path == nil {
			return fmt.Errorf("unknown terminal %q", terminal)
		}
		// Map wall time onto the simulation's clock.
		wallStart := time.Now()
		simStart := env.Start()
		delay = func(arrival time.Time) (time.Duration, bool) {
			s, err := path.Probe(simStart.Add(arrival.Sub(wallStart)))
			if err != nil || s.Lost {
				return 0, true
			}
			return time.Duration(s.RTTms * float64(time.Millisecond)), false
		}
		fmt.Fprintf(os.Stderr, "irtt: simulating the %s terminal's path (%d satellites)\n",
			terminal, env.Cons.Len())
	}
	srv, err := irtt.NewServer(listen, delay)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "irtt: serving on %s\n", srv.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = srv.Serve(ctx)
	if ctx.Err() != nil {
		return nil
	}
	return err
}

func runClient(addr string, interval time.Duration, count int, tsvPath string) error {
	results, err := irtt.Run(context.Background(), addr, irtt.ClientConfig{
		Interval: interval,
		Count:    count,
	})
	if err != nil {
		return err
	}
	sum := irtt.Summarize(results)
	fmt.Printf("sent %d, received %d (%.2f%% loss)\n", sum.Sent, sum.Received, sum.LossRate*100)
	if sum.Received > 0 {
		fmt.Printf("rtt min/median/max = %v / %v / %v\n", sum.MinRTT, sum.MedianRTT, sum.MaxRTT)
		fmt.Printf("rtt p95/p99 = %v / %v\n", sum.P95RTT, sum.P99RTT)
	}
	if tsvPath != "" {
		f, err := os.Create(tsvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintln(f, "seq\tsend_time\trtt_ms\tlost")
		for _, r := range results {
			lost := 0
			rtt := float64(r.RTT) / float64(time.Millisecond)
			if r.Lost {
				lost = 1
				rtt = 0
			}
			fmt.Fprintf(f, "%d\t%s\t%.3f\t%d\n", r.Seq, r.SendTime.UTC().Format(time.RFC3339Nano), rtt, lost)
		}
		fmt.Printf("wrote %s\n", tsvPath)
	}
	return nil
}
