// Command dishctl polls a dishd daemon the way the paper's collection
// scripts polled starlink-grpc-tools against a real terminal: fetch
// status, fetch the obstruction map (optionally saving it as a PNG),
// or request a reset.
//
// Usage:
//
//	dishctl [-addr 127.0.0.1:9200] status
//	dishctl [-addr ...] [-png out.png] map
//	dishctl [-addr ...] [-interval 15s] [-count 4] watch
//	dishctl [-addr ...] reset
//
// (All flags come before the subcommand.)
//
// watch polls the map on an interval and reports how many new pixels
// each snapshot added (the signal the XOR technique isolates).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dishrpc"
	"repro/internal/obstruction"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9200", "dishd address")
		pngPath  = flag.String("png", "", "map: write the snapshot to this PNG file")
		interval = flag.Duration("interval", 15*time.Second, "watch: poll interval")
		count    = flag.Int("count", 4, "watch: number of polls")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dishctl [flags] status|map|watch|reset")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *addr, *pngPath, *interval, *count); err != nil {
		fmt.Fprintln(os.Stderr, "dishctl:", err)
		os.Exit(1)
	}
}

func run(cmd, addr, pngPath string, interval time.Duration, count int) error {
	c, err := dishrpc.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	switch cmd {
	case "status":
		st, err := c.Status()
		if err != nil {
			return err
		}
		fmt.Printf("id:        %s\n", st.ID)
		fmt.Printf("hardware:  %s\n", st.Hardware)
		fmt.Printf("uptime:    %ds\n", st.UptimeSeconds)
		fmt.Printf("painted:   %.2f%% of map\n", st.FractionPainted*100)
		fmt.Printf("snapshot:  %s\n", st.SnapshotTime.Format(time.RFC3339))
		return nil

	case "map":
		m, err := c.ObstructionMap()
		if err != nil {
			return err
		}
		fmt.Printf("%d painted pixels\n", m.Count())
		if pngPath != "" {
			f, err := os.Create(pngPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := m.EncodePNG(f); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", pngPath)
		} else {
			fmt.Print(m.String())
		}
		return nil

	case "watch":
		var prev *obstruction.Map
		for i := 0; i < count; i++ {
			m, err := c.ObstructionMap()
			if err != nil {
				return err
			}
			if prev == nil {
				fmt.Printf("poll %d: %d pixels (baseline)\n", i, m.Count())
			} else {
				diff := obstruction.XOR(prev, m)
				fmt.Printf("poll %d: %d pixels, %d new since last poll\n", i, m.Count(), diff.Count())
			}
			prev = m
			if i < count-1 {
				time.Sleep(interval)
			}
		}
		return nil

	case "reset":
		if err := c.Reset(); err != nil {
			return err
		}
		fmt.Println("dish reset")
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
