// Command repro regenerates every table and figure from "Making Sense
// of Constellations" (CoNEXT Companion '23) against the simulated
// Starlink substrate.
//
// Usage:
//
//	repro [flags] <experiment>
//	repro -scenario <file-or-preset> [dist]
//	repro -list-scenarios
//
// Experiments: fig2 stats fig3 ident fig4 fig5 fig6 fig7 fig8 stream drift all
//
// Flags:
//
//	-scenario file|name         run a declarative scenario (JSON file or embedded preset)
//	-list-scenarios             list the embedded scenario presets and exit
//	-scale   small|medium|full  constellation density (default medium)
//	-seed    int                deterministic seed (default 7)
//	-slots   int                campaign length in 15s slots (default 500)
//	-workers int                campaign + model-training worker pool (default 0 = GOMAXPROCS)
//	-snapshot-workers int       per-slot propagation fan-out (default 0 = GOMAXPROCS)
//	-dir     string             where fig3 writes PNGs (default ".")
//	-full-grid                  fig8: run the full hyperparameter grid
//	-telemetry-addr addr        serve /metrics, /debug/vars, /debug/pprof on addr
//	-trace-decisions n          keep the last n campaign decisions in a ring
//	-trace-out file             dump the decision ring as JSONL on exit
//	-predict-addr addr          drift: stream slots to a running predictd instead of an in-process model
//	-v                          print the telemetry counter summary on exit
package main

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/capture"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obstruction"
	"repro/internal/pipeline"
	"repro/internal/predict"
	"repro/internal/scenario"
	"repro/internal/skyplot"
	"repro/internal/telemetry"
	"repro/internal/traceio"
)

// options carries the flag values into run; one struct instead of a
// dozen positional parameters.
type options struct {
	scenario      string
	listScenarios bool
	scale         string
	seed          int64
	slots         int
	workers       int
	snapWorkers   int
	dir           string
	fullGrid      bool
	saveObs       string
	loadObs       string
	saveMdl       string
	pcapPath      string
	telemetryAddr string
	traceDepth    int
	traceOut      string
	verbose       bool
	noIndex       bool
	workerListen  string
	predictAddr   string
	recordDelay   time.Duration
	coordWorkers  string
	coordShards   int
	coordJournal  string
	coordOut      string
}

func main() {
	var opt options
	flag.StringVar(&opt.scenario, "scenario", "", "run a declarative scenario: a JSON file path or an embedded preset name")
	flag.BoolVar(&opt.listScenarios, "list-scenarios", false, "list the embedded scenario presets and exit")
	flag.StringVar(&opt.scale, "scale", "medium", "constellation scale: small|medium|full")
	flag.Int64Var(&opt.seed, "seed", 7, "deterministic seed")
	flag.IntVar(&opt.slots, "slots", 500, "campaign length in 15-second slots")
	flag.IntVar(&opt.workers, "workers", 0, "worker pool size for campaigns and fig8 model training (0 = GOMAXPROCS, 1 = serial)")
	flag.IntVar(&opt.snapWorkers, "snapshot-workers", 0, "fan-out for the per-slot constellation propagation sweep (0 = GOMAXPROCS, 1 = serial; byte-identical output at every value)")
	flag.StringVar(&opt.dir, "dir", ".", "output directory for fig3 PNGs")
	flag.BoolVar(&opt.fullGrid, "full-grid", false, "fig8: search the full hyperparameter grid")
	flag.StringVar(&opt.saveObs, "save-obs", "", "write campaign observations as JSONL to this file")
	flag.StringVar(&opt.loadObs, "load-obs", "", "re-analyze saved observations instead of running a campaign")
	flag.StringVar(&opt.saveMdl, "save-model", "", "fig8: write the trained forest as JSON to this file")
	flag.StringVar(&opt.pcapPath, "pcap", "", "fig2: also export the probe trace as a pcap file")
	flag.StringVar(&opt.telemetryAddr, "telemetry-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	flag.IntVar(&opt.traceDepth, "trace-decisions", 0, "keep the last n campaign scheduling decisions in a ring")
	flag.StringVar(&opt.traceOut, "trace-out", "", "write the decision ring as JSONL to this file on exit")
	flag.BoolVar(&opt.verbose, "v", false, "print the telemetry counter summary on exit")
	flag.BoolVar(&opt.noIndex, "no-index", false, "disable the spatial visibility index (ablation; identical results, linear scans)")
	flag.StringVar(&opt.workerListen, "worker-listen", "", "run as a campaign worker serving shards on this address (no experiment argument)")
	flag.StringVar(&opt.predictAddr, "predict-addr", "", "drift: stream slots to a running predictd at this address instead of an in-process model")
	flag.DurationVar(&opt.recordDelay, "record-delay", 0, "worker mode: throttle record production (fault-injection hook)")
	flag.StringVar(&opt.coordWorkers, "coord-workers", "", "dist: comma-separated worker addresses; empty runs the single-process golden")
	flag.IntVar(&opt.coordShards, "coord-shards", 0, "dist: terminal shards (0 = one per worker)")
	flag.StringVar(&opt.coordJournal, "coord-journal", "", "dist: per-shard journal directory (default: a temp dir)")
	flag.StringVar(&opt.coordOut, "coord-out", "", "dist: write the merged record stream as JSONL to this file")
	flag.Parse()
	// Ctrl-C aborts the campaign loop cleanly: the context threads down
	// into core.RunCampaign, which discards the partial run and returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if opt.workerListen != "" {
		if err := runWorker(ctx, opt); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		return
	}
	if opt.listScenarios {
		if err := listScenarios(); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		return
	}
	// A scenario is itself a full experiment run, so the positional
	// experiment argument becomes optional (only dist combines with it).
	what := ""
	switch {
	case flag.NArg() == 1:
		what = flag.Arg(0)
	case flag.NArg() == 0 && opt.scenario != "":
	default:
		fmt.Fprintln(os.Stderr, "usage: repro [flags] fig2|stats|fig3|ident|fig4|fig5|fig6|fig7|fig8|stream|drift|ext|dist|all")
		fmt.Fprintln(os.Stderr, "       repro -scenario <file-or-preset> [dist]")
		os.Exit(2)
	}
	if err := run(ctx, what, opt); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

// listScenarios prints the embedded preset table: what `-scenario
// <name>` accepts without a file.
func listScenarios() error {
	for _, name := range scenario.PresetNames() {
		spec, err := scenario.LoadPreset(name)
		if err != nil {
			return err
		}
		shells, err := spec.Shells()
		if err != nil {
			return err
		}
		sats := 0
		for _, sh := range shells {
			sats += sh.Planes * sh.SatsPerPlane
		}
		fmt.Printf("%-18s %5d sats  %4d slots  %s\n", name, sats, spec.Campaign.Slots, spec.Description)
	}
	return nil
}

// runWorker serves shard campaigns until the context is cancelled —
// the `repro -worker-listen addr` process a coordinator drives.
func runWorker(ctx context.Context, opt options) error {
	srv, err := coord.NewWorkerServer(opt.workerListen, &coord.Worker{RecordDelay: opt.recordDelay})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "repro: worker serving shards on %s\n", srv.Addr())
	if err := srv.Serve(ctx); err != nil && err != context.Canceled {
		return err
	}
	return nil
}

// runDist shards the campaign across external worker processes and
// prints the sha256 of the merged JSONL stream. With no -coord-workers
// it runs the identical campaign single-process — producing the golden
// hash a distributed run must match. A non-nil scn replaces the
// (scale, seed) Starlink description: workers rebuild the scenario's
// environment — constellation geometry, terminal placement, scheduler
// config — from the spec shipped inside the campaign description.
func runDist(ctx context.Context, opt options, reg *telemetry.Registry, scn *scenario.Spec) error {
	spec := coord.CampaignSpec{Scale: opt.scale, Seed: opt.seed, Slots: opt.slots, Oracle: true,
		SnapshotWorkers: opt.snapWorkers}
	if scn != nil {
		spec = coord.CampaignSpec{
			Scenario:        scn,
			Seed:            scn.Seed,
			Slots:           scn.Campaign.Slots,
			Oracle:          scn.Campaign.Oracle,
			ResetEvery:      scn.Campaign.ResetEvery,
			SnapshotWorkers: opt.snapWorkers,
		}
		if spec.SnapshotWorkers == 0 {
			spec.SnapshotWorkers = scn.Campaign.SnapshotWorkers
		}
	}
	h := sha256.New()
	var out io.Writer = h
	if opt.coordOut != "" {
		f, err := os.Create(opt.coordOut)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(h, f)
	}
	start := time.Now()
	if opt.coordWorkers == "" {
		cfg, err := coord.BuildCampaign(spec)
		if err != nil {
			return err
		}
		cfg.Metrics = core.NewCampaignMetrics(reg)
		enc := traceio.NewRecordEncoder(out)
		stats, err := core.RunCampaignStream(ctx, cfg, func(rec core.SlotRecord) error {
			return enc.Encode(&rec)
		})
		if err != nil {
			return err
		}
		if err := enc.Close(); err != nil {
			return err
		}
		fmt.Printf("# single-process golden: %d records over %d terminals in %.1fs\n",
			stats.Records, stats.Terminals, time.Since(start).Seconds())
		fmt.Printf("# served %d  skips %d  ident %d/%d correct\n",
			stats.Served, sumSkips(stats.Skips), stats.Correct, stats.Attempted)
	} else {
		journal := opt.coordJournal
		if journal == "" {
			dir, err := os.MkdirTemp("", "repro-coord-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			journal = dir
		}
		c := &coord.Coordinator{
			Workers:    strings.Split(opt.coordWorkers, ","),
			Spec:       spec,
			Shards:     opt.coordShards,
			JournalDir: journal,
			Registry:   reg,
			Out:        out,
		}
		res, err := c.Run(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("# distributed: %d records over %d terminals, %d shards on %d workers in %.1fs\n",
			res.Records, res.Terminals, res.Shards, len(c.Workers), time.Since(start).Seconds())
		fmt.Printf("# served %d  skips %d  ident %d/%d correct\n",
			res.Served, sumSkips(res.Skips), res.Correct, res.Attempted)
		fmt.Printf("# replayed %d records from journals, %d shard reassignments\n",
			res.Replayed, res.Reassigned)
	}
	if opt.coordOut != "" {
		fmt.Printf("# merged stream written to %s\n", opt.coordOut)
	}
	fmt.Printf("sha256 %x\n", h.Sum(nil))
	return nil
}

func sumSkips(skips map[string]int) int {
	n := 0
	for _, v := range skips {
		n += v
	}
	return n
}

func run(ctx context.Context, what string, opt options) error {
	// The registry exists only when something consumes it: the HTTP
	// endpoint, the -v summary, or a decision dump. Otherwise every
	// instrumented path stays on its nil fast branch.
	var reg *telemetry.Registry
	if opt.telemetryAddr != "" || opt.verbose {
		reg = telemetry.NewRegistry()
	}
	// Resolve the scenario first: it replaces (scale, seed, slots) as
	// the experiment description, and dist ships it to the workers.
	var scn *scenario.Spec
	if opt.scenario != "" {
		var err error
		scn, err = scenario.Resolve(opt.scenario)
		if err != nil {
			return err
		}
		// Explicitly-set flags beat the spec file; the defaults (seed 7,
		// slots 500) must not clobber what the scenario asked for.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "slots":
				scn.Campaign.Slots = opt.slots
			case "seed":
				scn.Seed = opt.seed
			}
		})
		if what != "" && what != "dist" {
			return fmt.Errorf("-scenario runs its own pipeline; it combines only with the dist experiment (got %q)", what)
		}
	}
	// dist never touches the local constellation — workers build their
	// own environment from the spec — so it skips env construction
	// entirely and the coordinator host stays lightweight.
	if what == "dist" {
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		if opt.telemetryAddr != "" {
			srv, err := telemetry.StartServer(ctx, opt.telemetryAddr, reg, nil)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "repro: telemetry on http://%s/metrics\n", srv.Addr())
		}
		if err := runDist(ctx, opt, reg, scn); err != nil {
			return fmt.Errorf("dist: %w", err)
		}
		if opt.verbose {
			printTelemetry(reg)
		}
		return nil
	}
	if scn != nil {
		return runScenario(ctx, scn, opt, reg)
	}
	traceDepth := opt.traceDepth
	if traceDepth == 0 && opt.traceOut != "" {
		traceDepth = 4096
	}
	env, err := experiments.NewEnv(experiments.Config{
		Scale: experiments.Scale(opt.scale), Seed: opt.seed, Workers: opt.workers,
		SnapshotWorkers: opt.snapWorkers,
		Telemetry:       reg, TraceDecisions: traceDepth, DisableIndex: opt.noIndex,
	})
	if err != nil {
		return err
	}
	env.Ctx = ctx
	if opt.telemetryAddr != "" {
		srv, err := telemetry.StartServer(ctx, opt.telemetryAddr, reg, env.Trace())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "repro: telemetry on http://%s/metrics\n", srv.Addr())
	}
	fmt.Printf("# constellation: %d satellites (scale=%s seed=%d)\n\n", env.Cons.Len(), opt.scale, opt.seed)
	slots, dir, fullGrid := opt.slots, opt.dir, opt.fullGrid
	saveObs, loadObs, saveMdl, pcapPath := opt.saveObs, opt.loadObs, opt.saveMdl, opt.pcapPath

	var obs []core.Observation
	needObs := func() error {
		if obs != nil {
			return nil
		}
		if loadObs != "" {
			f, err := os.Open(loadObs)
			if err != nil {
				return err
			}
			defer f.Close()
			// Replay the trace record by record: a multi-gigabyte capture
			// decodes in O(1) memory beyond the collected rows themselves.
			collect := &pipeline.CollectObservations{}
			counts := &pipeline.CountSkips{}
			p := &pipeline.Pipeline{
				Source: pipeline.ObservationReplay{R: f},
				Sinks:  []pipeline.Sink{counts, pipeline.Where(pipeline.ChosenOnly(), collect)},
			}
			if err := p.Run(ctx); err != nil {
				return err
			}
			obs = collect.Obs
			fmt.Printf("# loaded %d observations from %s (%d records, %d without a chosen satellite)\n\n",
				len(obs), loadObs, counts.Total, counts.Total-counts.Served)
			return nil
		}
		fmt.Printf("# running %d-slot oracle campaign over %d terminals...\n", slots, len(env.Terminals))
		start := time.Now()
		collect := &pipeline.CollectObservations{}
		sinks := []pipeline.Sink{collect}
		if saveObs != "" {
			f, err := os.Create(saveObs)
			if err != nil {
				return err
			}
			defer f.Close()
			// The file fills as the campaign runs — one pass, no buffering
			// of the whole trace.
			sinks = append(sinks, pipeline.WriteObservations(f))
		}
		before := takeSkips(env.Telemetry)
		st, err := env.StreamObservations(slots, sinks...)
		if err != nil {
			return err
		}
		obs = collect.Obs
		fmt.Printf("# %d observations in %.1fs\n", len(obs), time.Since(start).Seconds())
		printCampaignStats(st, env.Telemetry, before)
		fmt.Println()
		if saveObs != "" {
			fmt.Printf("# wrote observations to %s\n\n", saveObs)
		}
		return nil
	}

	experimentsToRun := []string{what}
	if what == "all" {
		experimentsToRun = []string{"fig2", "stats", "fig3", "ident", "fig4", "fig5", "fig6", "fig7", "fig8", "stream", "ext"}
	}
	for _, ex := range experimentsToRun {
		fmt.Printf("==== %s ====\n", ex)
		switch ex {
		case "fig2":
			err = runFig2(env, pcapPath)
		case "stats":
			err = runStats(env)
		case "fig3":
			err = runFig3(env, dir)
		case "ident":
			err = runIdent(env, dir)
		case "fig4":
			if err = needObs(); err == nil {
				err = runFig4(env, obs)
			}
		case "fig5":
			if err = needObs(); err == nil {
				err = runFig5(env, obs)
			}
		case "fig6":
			if err = needObs(); err == nil {
				err = runFig6(env, obs)
			}
		case "fig7":
			if err = needObs(); err == nil {
				err = runFig7(env, obs)
			}
		case "fig8":
			if err = needObs(); err == nil {
				err = runFig8(env, obs, fullGrid, saveMdl)
			}
		case "stream":
			err = runStream(env, slots)
		case "drift":
			err = runDriftExperiment(opt, reg)
		case "ext":
			err = runExtensions(env, slots)
		default:
			return fmt.Errorf("unknown experiment %q", ex)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", ex, err)
		}
		fmt.Println()
	}
	if opt.traceOut != "" {
		if err := dumpTrace(env, opt.traceOut); err != nil {
			return err
		}
	}
	if opt.verbose {
		printPropagationSkips(env)
		printTelemetry(reg)
	}
	return nil
}

// runScenario executes a declarative scenario end to end: build the
// environment from the spec, validate identification (§4), run one
// oracle campaign, and feed the collected observations through every
// enabled analysis — the §5 behavioral suite, the §6 forest, and the
// planted-preference recovery experiment. The output carries no
// wall-clock timings on purpose: two runs of the same scenario must
// be byte-identical, which is what the CI smoke job asserts.
func runScenario(ctx context.Context, spec *scenario.Spec, opt options, reg *telemetry.Registry) error {
	traceDepth := opt.traceDepth
	if traceDepth == 0 && opt.traceOut != "" {
		traceDepth = 4096
	}
	built, err := spec.Build(scenario.BuildOptions{
		Telemetry:       reg,
		TraceDecisions:  traceDepth,
		DisableIndex:    opt.noIndex,
		Workers:         opt.workers,
		SnapshotWorkers: opt.snapWorkers,
	})
	if err != nil {
		return err
	}
	env := built.Env
	env.Ctx = ctx
	if opt.telemetryAddr != "" {
		srv, err := telemetry.StartServer(ctx, opt.telemetryAddr, reg, env.Trace())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "repro: telemetry on http://%s/metrics\n", srv.Addr())
	}
	fmt.Printf("==== scenario %s ====\n", spec.Name)
	if spec.Description != "" {
		fmt.Printf("# %s\n", spec.Description)
	}
	fmt.Printf("# constellation: %d satellites; terminals: %d; seed %d; %d slots\n",
		env.Cons.Len(), len(env.Terminals), spec.Seed, built.Slots)

	if spec.AnalysisEnabled("ident") {
		fmt.Println("\n---- ident ----")
		fmt.Printf("§4 identification validation over %d slots (DTW vs ground truth)\n", built.IdentSlots)
		res, err := env.IdentValidation(built.IdentSlots, false)
		if err != nil {
			return fmt.Errorf("ident: %w", err)
		}
		fmt.Printf("attempted=%d correct=%d failed=%d accuracy=%.1f%% median_margin=%.2f\n",
			res.Attempted, res.Correct, res.Failed, res.Accuracy*100, res.MedianMargin)
	}

	// Every remaining stage consumes the same observation set, so the
	// campaign runs exactly once no matter how many are enabled.
	needObs := spec.Outputs.Observations != "" || opt.saveObs != ""
	for _, a := range []string{"aoe", "azimuth", "launch", "sunlit", "model", "recovery"} {
		needObs = needObs || spec.AnalysisEnabled(a)
	}
	if !needObs {
		return finishScenario(env, opt, reg)
	}
	collect := &pipeline.CollectObservations{}
	sinks := []pipeline.Sink{collect}
	savePath := spec.Outputs.Observations
	if opt.saveObs != "" {
		savePath = opt.saveObs
	}
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			return err
		}
		defer f.Close()
		sinks = append(sinks, pipeline.WriteObservations(f))
	}
	before := takeSkips(env.Telemetry)
	st, err := env.StreamObservations(built.Slots, sinks...)
	if err != nil {
		return err
	}
	obs := collect.Obs
	fmt.Printf("\n# %d observations from the %d-slot oracle campaign\n", len(obs), built.Slots)
	printCampaignStats(st, env.Telemetry, before)
	if savePath != "" {
		fmt.Printf("# wrote observations to %s\n", savePath)
	}

	stage := func(name string, f func() error) error {
		if !spec.AnalysisEnabled(name) {
			return nil
		}
		fmt.Printf("\n---- %s ----\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		return nil
	}
	if err := stage("aoe", func() error {
		a, err := env.Fig4(obs)
		if err != nil {
			return err
		}
		printAOE(a)
		return nil
	}); err != nil {
		return err
	}
	if err := stage("azimuth", func() error {
		a, err := env.Fig5(obs)
		if err != nil {
			return err
		}
		printAzimuth(a)
		return nil
	}); err != nil {
		return err
	}
	if err := stage("launch", func() error {
		a, err := env.Fig6(obs)
		if err != nil {
			return err
		}
		printLaunch(a)
		return nil
	}); err != nil {
		return err
	}
	if err := stage("sunlit", func() error {
		a, err := env.Fig7(obs)
		if err != nil {
			return err
		}
		printSunlit(a)
		return nil
	}); err != nil {
		return err
	}
	if err := stage("model", func() error {
		return runFig8(env, obs, opt.fullGrid, opt.saveMdl)
	}); err != nil {
		return err
	}
	if err := stage("recovery", func() error {
		planted, ok := spec.PlantedWeights()
		if !ok {
			return fmt.Errorf("no planted scheduler weights in the spec")
		}
		res, err := scenario.RunPreferenceRecovery(ctx, obs, planted, experiments.QuickModelConfig(spec.Seed))
		if err != nil {
			return err
		}
		printRecovery(res)
		return nil
	}); err != nil {
		return err
	}
	return finishScenario(env, opt, reg)
}

// finishScenario mirrors the non-scenario run epilogue: decision-ring
// dump and the -v telemetry summary.
func finishScenario(env *experiments.Env, opt options, reg *telemetry.Registry) error {
	if opt.traceOut != "" {
		if err := dumpTrace(env, opt.traceOut); err != nil {
			return err
		}
	}
	if opt.verbose {
		printPropagationSkips(env)
		printTelemetry(reg)
	}
	return nil
}

// printRecovery reports the planted-preference recovery experiment:
// planted ordering vs what the behavioral effects and the forest
// recovered, with an explicit PASS/FAIL verdict.
func printRecovery(r *scenario.RecoveryResult) {
	fmt.Println("planted-preference recovery: §5 effects + §6 forest vs the planted weights")
	fmt.Printf("planted weights: elevation=%.2f sunlit=%.2f recency=%.2f (order %s)\n",
		r.Planted.Elevation, r.Planted.Sunlit, r.Planted.Recency, strings.Join(r.PlantedOrder, " > "))
	fmt.Println("axis\tobserved_effect\tforest_effect")
	for _, ax := range scenario.RecoveryAxes {
		fmt.Printf("%s\t%+.3f\t%+.3f\n", ax, r.ObservedEffects[ax], r.ForestEffects[ax])
	}
	fmt.Printf("behavioral order: %s [%s]\n", strings.Join(r.ObservedOrder, " > "), passFail(r.ObservedOrderRecovered))
	fmt.Printf("forest order:     %s [%s]\n", strings.Join(r.ForestOrder, " > "), passFail(r.OrderRecovered))
	fmt.Printf("model top-1 %.3f vs baseline %.3f [%s]\n", r.ModelTop1, r.BaselineTop1, passFail(r.ModelBeatsBaseline))
	fmt.Printf("recovery over %d rows: %s\n", r.Rows,
		passFail(r.ObservedOrderRecovered && r.OrderRecovered && r.ModelBeatsBaseline))
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// printPropagationSkips reports, once per distinct satellite, the
// propagation failures that silently shrank snapshots during the run.
func printPropagationSkips(env *experiments.Env) {
	total, bySat := env.Cons.PropagationSkips()
	if total == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "repro: %d propagation skips across %d satellites:\n", total, len(bySat))
	ids := make([]int, 0, len(bySat))
	for id := range bySat {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(os.Stderr, "repro:   sat %d: %s\n", id, bySat[id])
	}
}

// dumpTrace writes the environment's decision ring as JSONL.
func dumpTrace(env *experiments.Env, path string) error {
	tr := env.Trace()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteJSONL(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "repro: wrote %d of %d recorded decisions to %s\n", tr.Len(), tr.Recorded(), path)
	return nil
}

// printTelemetry prints the -v end-of-run summary: every counter and
// gauge in sorted order, histograms as count/mean.
func printTelemetry(reg *telemetry.Registry) {
	s := reg.Snapshot()
	fmt.Println("==== telemetry ====")
	keys, vals := s.CountersWithPrefix("")
	for i, k := range keys {
		fmt.Printf("%-52s %12d\n", k, vals[i])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Printf("%-52s %12d\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.FloatGauge) {
		fmt.Printf("%-52s %12.2f\n", k, s.FloatGauge[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		fmt.Printf("%-52s count=%d mean=%.6g\n", k, h.Count, mean)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func runFig2(env *experiments.Env, pcapPath string) error {
	res, err := env.Fig2("Madrid", 2*time.Minute)
	if err != nil {
		return err
	}
	if pcapPath != "" {
		f, err := os.Create(pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := capture.Export(f, res.Samples, capture.Config{})
		if err != nil {
			return err
		}
		fmt.Printf("wrote %d frames to %s\n", n, pcapPath)
	}
	fmt.Printf("Figure 2: RTT trace, %s terminal, 1 probe / 20 ms, 2 minutes\n", res.Terminal)
	fmt.Printf("slot boundaries at seconds past the minute: %v (paper: [12 27 42 57])\n", res.BoundarySeconds)
	fmt.Printf("per-slot median RTT (ms):")
	for _, m := range res.WindowMedians {
		fmt.Printf(" %.1f", m)
	}
	fmt.Println()
	fmt.Println("time_s\trtt_ms\tlost")
	start := res.Samples[0].T
	for i, s := range res.Samples {
		if i%25 != 0 { // print every 0.5 s to keep the table readable
			continue
		}
		lost := 0
		if s.Lost {
			lost = 1
		}
		fmt.Printf("%.2f\t%.2f\t%d\n", s.T.Sub(start).Seconds(), s.RTTms, lost)
	}
	return nil
}

func runStats(env *experiments.Env) error {
	res, err := env.WindowStats(5 * time.Minute)
	if err != nil {
		return err
	}
	fmt.Println("§3 Mann-Whitney U between consecutive 15 s windows (paper: p < .05 everywhere)")
	fmt.Println("terminal\twindows\tcompared\tsignificant\tmedian_p")
	for _, r := range res {
		fmt.Printf("%s\t%d\t%d\t%.0f%%\t%.2g\n", r.Terminal, r.Windows, r.Comparisons, r.SignificantFrac*100, r.MedianP)
	}
	return nil
}

func runFig3(env *experiments.Env, dir string) error {
	res, err := env.Fig3("Iowa")
	if err != nil {
		return err
	}
	fmt.Println("Figure 3: obstruction maps (written as PNGs)")
	write := func(name string, m *obstruction.Map) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := m.EncodePNG(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d painted pixels)\n", path, m.Count())
		return nil
	}
	if err := write("fig3b_prev.png", res.Prev); err != nil {
		return err
	}
	if err := write("fig3c_cur.png", res.Cur); err != nil {
		return err
	}
	if err := write("fig3d_xor.png", res.Diff); err != nil {
		return err
	}
	if err := write("fig3e_filled.png", res.Filled); err != nil {
		return err
	}
	fmt.Printf("recovered polar-plot parameters: center=(%.1f, %.1f) radius=%.1f px\n",
		res.Recovered.CenterX, res.Recovered.CenterY, res.Recovered.RadiusPx)
	fmt.Println("(paper: center 62x62 1-indexed = 61x61 0-indexed, radius 45 px)")
	return nil
}

func runIdent(env *experiments.Env, dir string) error {
	fmt.Println("§4 identification validation (DTW vs ground truth; paper pilot: >99% of 500)")
	// Render one manual-validation sky plot (the paper's pilot-study
	// view): observed trajectory over all candidates, winner highlighted.
	term := env.Terminals[0]
	slot := env.Start().Add(7 * 15 * time.Second)
	for _, a := range env.Sched.Allocate(slot) {
		if a.Terminal != term.Name || a.SatID == 0 {
			continue
		}
		observed, err := env.Ident.ServingTrack(a.SatID, term.VantagePoint, slot)
		if err != nil {
			return err
		}
		cands := env.Ident.CandidatePolarTracks(term.VantagePoint, slot)
		plot, err := skyplot.Validation(400, observed, cands, a.SatID)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "ident_validation.png")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := plot.EncodePNG(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
		fmt.Printf("wrote %s (%d candidate tracks, winner %d highlighted)\n", path, len(cands), a.SatID)
	}
	res, err := env.IdentValidation(125, false)
	if err != nil {
		return err
	}
	fmt.Printf("DTW matcher:   attempted=%d correct=%d failed=%d accuracy=%.1f%% median_margin=%.2f\n",
		res.Attempted, res.Correct, res.Failed, res.Accuracy*100, res.MedianMargin)
	naive, err := env.IdentValidation(125, true)
	if err != nil {
		return err
	}
	fmt.Printf("naive matcher: attempted=%d correct=%d accuracy=%.1f%% (ablation)\n",
		naive.Attempted, naive.Correct, naive.Accuracy*100)
	return nil
}

func runFig4(env *experiments.Env, obs []core.Observation) error {
	a, err := env.Fig4(obs)
	if err != nil {
		return err
	}
	printAOE(a)
	return nil
}

func printAOE(a *core.AOEAnalysis) {
	fmt.Println("Figure 4: AOE of available (dotted) vs selected (solid) satellites")
	fmt.Printf("median AOE lift (chosen - available), mean over terminals: %.1f deg (paper: 22.9)\n", a.MedianLiftDeg)
	fmt.Printf("chosen with AOE in [45,90]: %.0f%% (paper: 80%%); available: %.0f%% (paper: 30%%)\n",
		a.HighBandChosenFrac*100, a.HighBandAvailableFrac*100)
	printCDFs(a.PerTerminal, "aoe_deg")
}

func runFig5(env *experiments.Env, obs []core.Observation) error {
	a, err := env.Fig5(obs)
	if err != nil {
		return err
	}
	printAzimuth(a)
	return nil
}

func printAzimuth(a *core.AzimuthAnalysis) {
	fmt.Println("Figure 5: azimuths of available (dotted) vs selected (solid) satellites")
	fmt.Println("terminal\tnorth_chosen\tnorth_avail\tnw_chosen")
	for _, tc := range a.PerTerminal {
		name := tc.Terminal
		fmt.Printf("%s\t%.0f%%\t%.0f%%\t%.1f%%\n", name,
			a.NorthChosenFrac[name]*100, a.NorthAvailableFrac[name]*100, a.NWChosenFrac[name]*100)
	}
	fmt.Println("(paper: north chosen 82% vs available 58%; Ithaca NW 9.7% vs 55.4% elsewhere)")
	printCDFs(a.PerTerminal, "azimuth_deg")
}

func runFig6(env *experiments.Env, obs []core.Observation) error {
	a, err := env.Fig6(obs)
	if err != nil {
		return err
	}
	printLaunch(a)
	return nil
}

func printLaunch(a *core.LaunchAnalysis) {
	fmt.Println("Figure 6: probability of picking a satellite from a launch vs launch date")
	fmt.Printf("mean Pearson r (excluding %v): %.2f (paper: 0.41)\n", a.Excluded, a.MeanPearson)
	// PerTerminal and Pearson are maps; iterate sorted so repeated runs
	// diff clean.
	names := make([]string, 0, len(a.PerTerminal))
	for name := range a.PerTerminal {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if r, ok := a.Pearson[name]; ok {
			fmt.Printf("%s: r=%.2f\n", name, r)
		}
	}
	fmt.Println("terminal\tlaunch_month\tpicked\tavailable\tratio")
	for _, name := range names {
		for _, b := range a.PerTerminal[name] {
			fmt.Printf("%s\t%s\t%d\t%d\t%.4f\n", name, b.Month.Format("2006-01"), b.Picked, b.Available, b.Ratio)
		}
	}
}

func runFig7(env *experiments.Env, obs []core.Observation) error {
	a, err := env.Fig7(obs)
	if err != nil {
		return err
	}
	printSunlit(a)
	return nil
}

func printSunlit(a *core.SunlitAnalysis) {
	fmt.Println("Figure 7 / §5.3: sunlit vs dark satellites")
	fmt.Printf("mixed slots (>=1 sunlit and >=1 dark): %d\n", a.MixedSlots)
	fmt.Printf("sunlit picked in mixed slots: %.1f%% (paper: 72.3%%)\n", a.SunlitPickRate*100)
	fmt.Printf("min dark share when a dark satellite was picked: %.0f%% (paper: >= 35%%)\n", a.MinDarkShareWhenDarkPicked*100)
	fmt.Printf("chosen dark above 60 deg AOE: %.0f%% (paper: 82%%); chosen sunlit: %.0f%% (paper: 54%%)\n",
		a.HighAOEFracDark*100, a.HighAOEFracSunlit*100)
	fmt.Printf("median chosen-dark AOE minus chosen-sunlit: %.1f deg (paper: ~29)\n", a.DarkChosenAOELiftDeg)
}

// runStream regenerates every §5 analysis in one pass of the streaming
// pipeline: campaign records flow straight into the incremental
// accumulators, so no observation slice ever materializes. Outputs are
// bit-identical to the fig4–fig7 batch path over the same campaign.
func runStream(env *experiments.Env, slots int) error {
	fmt.Printf("streaming pipeline: one-pass §5 analyses + §6 dataset over a %d-slot campaign\n", slots)
	start := time.Now()
	before := takeSkips(env.Telemetry)
	res, err := env.StreamAnalyses(slots)
	if err != nil {
		return err
	}
	fmt.Printf("single pass in %.1fs; dataset rows: %d\n", time.Since(start).Seconds(), len(res.Dataset.X))
	printCampaignStats(res.Stats, env.Telemetry, before)
	fmt.Println()
	printAOE(res.AOE)
	fmt.Println()
	printAzimuth(res.Azimuth)
	fmt.Println()
	printLaunch(res.Launch)
	fmt.Println()
	printSunlit(res.Sunlit)
	return nil
}

// runDriftExperiment runs the online-inference drift campaign: learn
// the default scheduler, flip the weights at mid-campaign, and report
// detection and recovery. With -predict-addr the slot stream feeds a
// running predictd over dishrpc; otherwise a synchronous in-process
// service keeps the output deterministic.
func runDriftExperiment(opt options, reg *telemetry.Registry) error {
	var scorer pipeline.OnlineScorer
	if opt.predictAddr != "" {
		c, err := predict.Dial(opt.predictAddr)
		if err != nil {
			return err
		}
		defer c.Close()
		fmt.Printf("online inference served by predictd at %s\n", opt.predictAddr)
		scorer = predict.NewRemoteScorer(c)
	} else {
		svc, err := predict.NewService(predict.Config{
			Window: 512, RefitEvery: 128, MinFit: 256,
			Trees: 20, MaxDepth: 10,
			Seed: opt.seed, Workers: opt.workers,
			Synchronous: true, Registry: reg,
		})
		if err != nil {
			return err
		}
		scorer = svc
	}
	res, err := scenario.RunDrift(scenario.DriftConfig{
		Scale:           experiments.Scale(opt.scale),
		Seed:            opt.seed,
		Slots:           opt.slots,
		Scorer:          scorer,
		Offline:         opt.predictAddr == "", // remote runs skip the batch cross-check
		Workers:         opt.workers,
		SnapshotWorkers: opt.snapWorkers,
		Telemetry:       reg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("online inference under a mid-campaign scheduler update: weights flip at slot %d of %d\n",
		res.FlipAt, res.Slots)
	fmt.Printf("stationary:  windowed top-1 %.1f%%  top-5 %.1f%%  (%d refits, %d records scored)\n",
		res.PreTop1*100, res.PreTopK*100, res.Refits, res.Scored)
	fmt.Printf("after flip:  windowed top-1 floor %.1f%%\n", res.MinPostTop1*100)
	detect := "FAIL"
	if res.DetectSlots >= 0 {
		detect = fmt.Sprintf("detected %d slots after the flip", res.DetectSlots)
	}
	clear := "never cleared [FAIL]"
	if res.ClearSlots >= 0 {
		clear = fmt.Sprintf("cleared at slot %d after retraining", res.ClearSlots)
	}
	fmt.Printf("drift flag:  %s, %s (%d events)\n", detect, clear, res.DriftEvents)
	fmt.Printf("recovery:    windowed top-1 %.1f%% at campaign end\n", res.FinalTop1*100)
	if res.OfflineTop1 > 0 {
		fmt.Printf("offline §6 cross-check on the stationary phase: model top-1 %.1f%% vs baseline %.1f%%\n",
			res.OfflineTop1*100, res.OfflineBaselineTop1*100)
	}
	ok := res.DetectSlots >= 0 && res.ClearSlots >= 0 &&
		res.PreTop1-res.MinPostTop1 > 0.1 && res.FinalTop1 > res.MinPostTop1
	fmt.Printf("drift experiment: %s\n", passFail(ok))
	return nil
}

// skipPrefix is the canonical key prefix of the labeled skip-reason
// counters in the telemetry registry.
const skipPrefix = `campaign_skips_total{reason="`

// takeSkips snapshots the skip-reason counters before a campaign so
// the summary after it can print this run's deltas — the registry is
// shared across every campaign an `all` invocation runs. Nil-safe.
func takeSkips(reg *telemetry.Registry) map[string]int64 {
	keys, vals := reg.Snapshot().CountersWithPrefix(skipPrefix)
	m := make(map[string]int64, len(keys))
	for i, k := range keys {
		m[k] = vals[i]
	}
	return m
}

// printCampaignStats surfaces what the campaign dropped on the way to
// the analyses — previously discarded silently. With telemetry enabled
// the skip reasons come from the registry snapshot (as deltas against
// `before`); otherwise from the engine's own tally.
func printCampaignStats(st *core.CampaignStats, reg *telemetry.Registry, before map[string]int64) {
	fmt.Printf("# campaign: %d records (%d slots x %d terminals), %d served, %d dropped\n",
		st.Records, st.Slots, st.Terminals, st.Served, st.Dropped())
	if st.PropagationSkips > 0 {
		fmt.Printf("#   %6d satellite-slots lost to propagation failures\n", st.PropagationSkips)
	}
	if reg != nil {
		keys, vals := reg.Snapshot().CountersWithPrefix(skipPrefix)
		for i, k := range keys {
			if d := vals[i] - before[k]; d > 0 {
				reason := strings.TrimSuffix(strings.TrimPrefix(k, skipPrefix), `"}`)
				fmt.Printf("#   %6d x %s\n", d, reason)
			}
		}
		return
	}
	reasons := make([]string, 0, len(st.Skips))
	for r := range st.Skips {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Printf("#   %6d x %s\n", st.Skips[r], r)
	}
}

func runFig8(env *experiments.Env, obs []core.Observation, fullGrid bool, saveMdl string) error {
	cfg := experiments.QuickModelConfig(env.Seed + 1)
	if fullGrid {
		cfg = core.ModelConfig{Seed: env.Seed + 1} // defaults = full protocol
	}
	res, err := env.Fig8(obs, cfg)
	if err != nil {
		return err
	}
	if saveMdl != "" {
		f, err := os.Create(saveMdl)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Forest.Save(f); err != nil {
			return err
		}
		fmt.Printf("wrote trained forest to %s\n", saveMdl)
	}
	fmt.Println("Figure 8: top-k accuracy, RF model vs most-populated-cluster baseline")
	fmt.Printf("train rows: %d, holdout rows: %d, best config: %d trees depth %d (CV top-5 %.1f%%)\n",
		res.TrainRows, res.HoldoutRows, res.BestConfig.Config.NumTrees, res.BestConfig.Config.Tree.MaxDepth, res.BestConfig.Score*100)
	fmt.Println("k\tmodel\tbaseline")
	for k := range res.ModelTopK {
		fmt.Printf("%d\t%.1f%%\t%.1f%%\n", k+1, res.ModelTopK[k]*100, res.BaselineTopK[k]*100)
	}
	fmt.Println("(paper: model 65% at k=5 vs baseline 22%)")
	fmt.Println("top feature importances (gini):")
	for i, fi := range res.Importances {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-14s %.4f\n", fi.Name, fi.Importance)
	}
	return nil
}

func runExtensions(env *experiments.Env, slots int) error {
	fmt.Println("§8 extensions: hemisphere generalization, GSO ablation, load hypothesis")

	hemi, err := env.HemisphereComparison(slots / 2)
	if err != nil {
		return err
	}
	fmt.Println("\nhemisphere generalization (pick skew = chosen-north − available-north):")
	fmt.Println("terminal\tlat\tchosen_north\tavail_north\tskew")
	for _, s := range append(hemi.Northern, hemi.Southern...) {
		fmt.Printf("%s\t%.1f\t%.2f\t%.2f\t%+.2f\n", s.Terminal, s.LatDeg, s.NorthFrac, s.AvailNorthFrac, s.NorthSkew())
	}
	fmt.Println("(expected: positive at unobstructed >40N sites, negative at Sydney, ~0 at the equator;")
	fmt.Println(" Punta Arenas sits at the 53-degree shell's coverage edge, where the elevation preference dominates)")

	gso, err := env.GSOAblation(slots / 2)
	if err != nil {
		return err
	}
	fmt.Printf("\nGSO ablation: chosen-north fraction %.2f with the exclusion zone, %.2f without (%d slots)\n",
		gso.NorthFracWithGSO, gso.NorthFracWithoutGSO, gso.Slots)

	load, err := env.LoadSensitivity(slots)
	if err != nil {
		return err
	}
	fmt.Printf("\nload hypothesis: model top-5 accuracy %.1f%% with hidden load + noise, %.1f%% without load, %.1f%% fully deterministic (%d rows)\n",
		load.WithHiddenLoad*100, load.WithoutHiddenLoad*100, load.Deterministic*100, load.Rows)
	fmt.Printf("                 top-1: %.1f%% / %.1f%% / %.1f%%\n",
		load.WithHiddenLoadTop1*100, load.WithoutHiddenLoadTop1*100, load.DeterministicTop1*100)
	fmt.Println("(the paper predicts unobservable factors bound the model; removing them should help)")

	ho, err := env.HandoverAnalysis("Iowa", 10*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("\nhandover loss: %.1f%% in the first 300 ms of a slot vs %.1f%% steady state (%d probes)\n",
		ho.EarlyLoss*100, ho.SteadyLoss*100, ho.Probes)

	mo, err := env.MotionVsReallocation("Iowa", slots/2)
	if err != nil {
		return err
	}
	fmt.Printf("\nmotion vs reallocation (§3 argument): within-slot propagation drift %.3f ms median vs %.3f ms reallocation jump (ratio %.0fx, %d slots, %d handovers)\n",
		mo.MedianMotionDriftMs, mo.MedianReallocJumpMs, mo.Ratio, mo.Slots, mo.Handovers)
	return nil
}

func printCDFs(cdfs []core.TerminalCDF, xName string) {
	fmt.Printf("terminal\tseries\t%s\tcdf\n", xName)
	for _, tc := range cdfs {
		for _, p := range tc.Available {
			fmt.Printf("%s\tavailable\t%.1f\t%.3f\n", tc.Terminal, p[0], p[1])
		}
		for _, p := range tc.Chosen {
			fmt.Printf("%s\tchosen\t%.1f\t%.3f\n", tc.Terminal, p[0], p[1])
		}
	}
}
