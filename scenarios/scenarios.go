// Package scenarios embeds the named scenario presets shipped with
// the repository, so `repro -scenario oneweb-star` works from any
// working directory and a test can validate every checked-in preset.
// The package deliberately imports nothing from the repo: it sits at
// the root so internal/scenario (and anything above it) can embed the
// JSON without an import cycle.
package scenarios

import "embed"

// FS holds every checked-in preset (scenarios/*.json).
//
//go:embed *.json
var FS embed.FS
