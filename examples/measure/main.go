// Measure: the paper's full §3 measurement-box setup on loopback.
// The study's Raspberry Pis (1) kept clocks NTP-synchronized with the
// PoP server, (2) probed RTT with iRTT at 1 packet / 20 ms, and
// (3) ran iPerf3 pinned to 50% of the upstream rate as companion
// load. This example runs all three protocols for real over UDP/TCP:
// a clocksync server with deliberately skewed time, an irtt echo
// server, and an iperf sink.
//
//	go run ./examples/measure
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/clocksync"
	"repro/internal/iperf"
	"repro/internal/irtt"
)

func main() {
	// Ctrl-C cancels every protocol loop; the servers' Serve watchers
	// see the same context and shut down (irtt additionally stops any
	// held delayed replies).
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// 1. Clock sync against a server whose clock runs 2 s ahead —
	// the offset the measurement box must discover and correct.
	const skew = 2 * time.Second
	csrv, err := clocksync.NewServer("127.0.0.1:0", func() time.Time { return time.Now().Add(skew) })
	if err != nil {
		log.Fatal(err)
	}
	defer csrv.Close()
	go csrv.Serve(ctx)

	sync, err := clocksync.Sync(ctx, csrv.Addr().String(), clocksync.Config{Probes: 8})
	if err != nil {
		log.Fatal(err)
	}
	clock := clocksync.NewDisciplinedClock(nil, sync.Best.Offset)
	fmt.Printf("clock sync: measured offset %v (injected %v), min-delay filter over %d probes\n",
		sync.Best.Offset.Round(time.Millisecond), skew, len(sync.All))
	fmt.Printf("disciplined clock now reads %s\n\n", clock.Now().Format(time.RFC3339))

	// 2. Isochronous RTT probing at the paper's cadence.
	isrv, err := irtt.NewServer("127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer isrv.Close()
	go isrv.Serve(ctx)

	results, err := irtt.Run(ctx, isrv.Addr().String(), irtt.ClientConfig{
		Interval: 20 * time.Millisecond,
		Count:    250, // 5 seconds of probing
	})
	if err != nil {
		log.Fatal(err)
	}
	sum := irtt.Summarize(results)
	fmt.Printf("irtt: %d probes at 1/20ms, %.1f%% loss, rtt min/median/max = %v / %v / %v\n\n",
		sum.Sent, sum.LossRate*100, sum.MinRTT, sum.MedianRTT, sum.MaxRTT)

	// 3. Paced bulk throughput, the iPerf3-at-50% companion.
	psrv, err := iperf.NewServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer psrv.Close()
	go psrv.Serve(ctx)

	const upstreamMbps = 20.0 // a typical Starlink upstream
	report, err := iperf.Run(ctx, psrv.Addr().String(), iperf.Params{
		Duration:       2 * time.Second,
		RateBitsPerSec: upstreamMbps / 2 * 1e6, // the paper's 50% setting
		ReportInterval: 500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iperf: paced to %.0f%% of a %.0f Mbps upstream -> %.1f Mbps over %v\n",
		50.0, upstreamMbps, report.MeanMbps(), report.Elapsed.Round(time.Millisecond))
	for _, iv := range report.Intervals {
		fmt.Printf("  [%4.1fs] %6.1f Mbps\n",
			(time.Duration(iv.Start) * time.Nanosecond).Seconds(), iv.Mbps(report.ReportInterval))
	}
}
