// Model: the paper's §6 pipeline. Gather chosen-vs-available
// observations from a measurement campaign, build z-score cluster
// features, train a random forest to predict the cluster of the
// satellite the global scheduler will pick, and compare its top-k
// accuracy against the most-populated-cluster baseline (Figure 8).
//
//	go run ./examples/model
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/features"
)

func main() {
	env, err := experiments.NewEnv(experiments.Config{Scale: experiments.Medium, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constellation: %d satellites\n", env.Cons.Len())

	fmt.Println("collecting observations (350 slots x 4 terminals)...")
	obs, err := env.Observations(350)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d usable slot observations\n\n", len(obs))

	// Peek at one observation's features: the model sees the local hour
	// plus how many available satellites fall in each z-score cluster.
	o := obs[0]
	sats := make([]features.Sat, len(o.Available))
	for i, a := range o.Available {
		sats[i] = features.Sat{AzimuthDeg: a.AzimuthDeg, ElevationDeg: a.ElevationDeg, AgeYears: a.AgeYears, Sunlit: a.Sunlit}
	}
	slot, err := features.Cluster(sats)
	if err != nil {
		log.Fatal(err)
	}
	chosen, _ := o.Chosen()
	key, _ := slot.KeyOf(o.ChosenIdx)
	fmt.Printf("example slot at %s, local hour %d: %d available satellites\n",
		o.Terminal, o.LocalHour, len(o.Available))
	fmt.Printf("chosen satellite %d at elevation %.1f -> cluster %s\n\n", chosen.ID, chosen.ElevationDeg, key)

	// Train with the paper's protocol: 80/20 split, grid search with
	// cross-validation, holdout evaluation.
	d, err := core.BuildDataset(obs)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.TrainModel(d, experiments.QuickModelConfig(21))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d rows, held out %d\n", res.TrainRows, res.HoldoutRows)
	fmt.Println("k   model    baseline")
	for k := range res.ModelTopK {
		fmt.Printf("%d   %5.1f%%   %5.1f%%\n", k+1, res.ModelTopK[k]*100, res.BaselineTopK[k]*100)
	}
	fmt.Println("\ntop gini importances:")
	for i, fi := range res.Importances {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-14s %.4f\n", fi.Name, fi.Importance)
	}
	fmt.Println("\n(paper: 65% top-5 vs 22% baseline; high-AOE clusters and local_hour dominate)")

	// Use the trained model the way a downstream system would: predict
	// the characteristics of the next allocation for a fresh slot.
	pred, err := core.PredictAllocation(res.Forest, &obs[len(obs)-1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted top-3 clusters for a fresh slot: %s %s %s\n", pred[0], pred[1], pred[2])
}
