// Quickstart: build a Starlink-like constellation, run the global
// scheduler for five minutes of simulated time, and watch the
// 15-second reallocation cycle and its preferences in action.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/scheduler"
)

func main() {
	// 1. Synthesize a constellation. Scale it down from the real ~4400
	// satellites so the example runs in a second.
	cons, err := constellation.New(constellation.Config{
		Shells: []constellation.Shell{
			{Name: "shell1", AltitudeKm: 550, InclinationDeg: 53, Planes: 48, SatsPerPlane: 20, PhasingF: 17},
			{Name: "shell3", AltitudeKm: 570, InclinationDeg: 70, Planes: 14, SatsPerPlane: 14, PhasingF: 5},
		},
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constellation: %d satellites across 2 shells\n", cons.Len())

	// 2. Place a terminal at the paper's Iowa site and check its view.
	iowa, err := geo.VantagePointByName("Iowa")
	if err != nil {
		log.Fatal(err)
	}
	at := cons.Epoch.Add(time.Hour)
	fov := cons.FieldOfView(iowa.Location, at, 25)
	fmt.Printf("satellites above 25 degrees at %s: %d\n", iowa.Name, len(fov))
	if len(fov) > 0 {
		best := fov[0]
		fmt.Printf("highest: %s at elevation %.1f, azimuth %.1f, range %.0f km, sunlit=%v\n",
			best.Sat.Name, best.Look.ElevationDeg, best.Look.AzimuthDeg, best.Look.RangeKm, best.Sunlit)
	}

	// 3. Run the global scheduler: allocations change every 15 s at
	// :12/:27/:42/:57 — the signature the paper discovered.
	sched, err := scheduler.NewGlobal(scheduler.Config{
		Constellation: cons,
		Terminals:     []scheduler.Terminal{{VantagePoint: iowa}},
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nslot_start               satellite    elev   azim  sunlit")
	start := scheduler.EpochStart(at)
	prev := 0
	changes := 0
	var elevs []float64
	for i := 0; i < 20; i++ {
		slot := start.Add(time.Duration(i) * scheduler.Period)
		for _, a := range sched.Allocate(slot) {
			marker := " "
			if a.SatID != prev && prev != 0 {
				marker = "*"
				changes++
			}
			prev = a.SatID
			fmt.Printf("%s  %-12d %5.1f  %5.1f  %v %s\n",
				a.SlotStart.Format("2006-01-02T15:04:05Z"), a.SatID, a.ElevationDeg, a.AzimuthDeg, a.Sunlit, marker)
			elevs = append(elevs, a.ElevationDeg)
		}
	}
	mean := 0.0
	for _, e := range elevs {
		mean += e
	}
	mean /= float64(len(elevs))
	fmt.Printf("\n%d reallocations over 20 slots; mean chosen elevation %.1f deg\n", changes, mean)
	fmt.Println("(the paper: reallocation every 15 s, strong preference for high elevation)")
}
