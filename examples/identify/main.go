// Identify: the paper's §4 methodology end to end. A terminal's dish
// paints the serving satellite's sky-track into its obstruction map
// each 15-second slot; we XOR consecutive snapshots to isolate the
// newest trajectory, convert its pixels to (elevation, azimuth), and
// match against SGP4-propagated candidate tracks with dynamic time
// warping. Ground truth from the simulator scores the result.
//
//	go run ./examples/identify
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obstruction"
	"repro/internal/scheduler"
	"repro/internal/skyplot"
)

func main() {
	env, err := experiments.NewEnv(experiments.Config{Scale: experiments.Small, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	iowa := env.Terminals[0]
	fmt.Printf("terminal: %s; %d satellites in the constellation\n\n", iowa.Name, env.Cons.Len())

	// Walk 12 slots by hand so every pipeline stage is visible.
	dish := obstruction.New()
	start := env.Start()
	correct, attempted := 0, 0
	for i := 0; i < 12; i++ {
		slot := start.Add(time.Duration(i) * scheduler.Period)

		// Ground truth (what the real network knows, and we don't).
		var alloc scheduler.Allocation
		for _, a := range env.Sched.Allocate(slot) {
			if a.Terminal == iowa.Name {
				alloc = a
			}
		}
		if alloc.SatID == 0 {
			fmt.Printf("slot %2d: no satellite serving, skipping\n", i)
			continue
		}

		// The dish paints the serving track (firmware behaviour).
		prev := dish.Clone()
		if err := env.Ident.PaintServingTrack(dish, alloc.SatID, iowa.VantagePoint, slot); err != nil {
			log.Fatal(err)
		}

		// §4: XOR + pixel decode + DTW match, using only public data.
		ident, err := env.Ident.IdentifyFromMaps(prev, dish, iowa.VantagePoint, slot)
		if err != nil {
			fmt.Printf("slot %2d: identification failed: %v\n", i, err)
			continue
		}
		attempted++
		ok := "WRONG"
		if ident.SatID == alloc.SatID {
			ok = "correct"
			correct++
		}
		fmt.Printf("slot %2d: identified %d (truth %d) %s  dtw=%.2f margin=%.2f track=%dpx\n",
			i, ident.SatID, alloc.SatID, ok, ident.Distance, ident.Margin, ident.TrackLen)
	}
	if attempted > 0 {
		fmt.Printf("\nper-slot accuracy: %d/%d\n", correct, attempted)
	}

	// Render the manual-validation view the paper's pilot study used:
	// the isolated trajectory in white over every candidate's track,
	// with the DTW winner highlighted.
	slot := start.Add(11 * scheduler.Period)
	var lastAlloc scheduler.Allocation
	for _, a := range env.Sched.Allocate(slot) {
		if a.Terminal == iowa.Name {
			lastAlloc = a
		}
	}
	if lastAlloc.SatID != 0 {
		observed, err := env.Ident.ServingTrack(lastAlloc.SatID, iowa.VantagePoint, slot)
		if err != nil {
			log.Fatal(err)
		}
		cands := env.Ident.CandidatePolarTracks(iowa.VantagePoint, slot)
		plot, err := skyplot.Validation(400, observed, cands, lastAlloc.SatID)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create("validation.png")
		if err != nil {
			log.Fatal(err)
		}
		if err := plot.EncodePNG(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("wrote validation.png (observed track in white, DTW winner in green)")
	}

	// The packaged campaign runs the same loop at scale, with 10-minute
	// resets, and reports the §4 validation numbers.
	res, err := core.RunCampaign(context.Background(), core.CampaignConfig{
		Scheduler:  env.Sched,
		Identifier: env.Ident,
		Start:      start.Add(time.Hour),
		Slots:      50,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign over 50 slots x 4 terminals: accuracy %.1f%% on %d identifications (paper pilot: >99%%)\n",
		res.Accuracy()*100, res.Attempted)
}
