// Livetrace: real UDP probes through the simulated Starlink path. An
// irtt server on loopback injects the netsim delay model (terminal ->
// satellite -> ground station -> PoP, with 15-second reallocation and
// MAC frame bands) under every probe, and an irtt client measures it
// at the paper's 1 packet / 20 ms cadence — a miniature live Figure 2.
//
//	go run ./examples/livetrace
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
	"repro/internal/irtt"
	"repro/internal/netsim"
	"repro/internal/scheduler"
	"repro/internal/stats"
)

func main() {
	env, err := experiments.NewEnv(experiments.Config{Scale: experiments.Small, Seed: 33})
	if err != nil {
		log.Fatal(err)
	}
	term := env.Terminals[0]
	path, err := netsim.NewPath(netsim.Config{
		Constellation: env.Cons,
		Scheduler:     env.Sched,
		Terminal:      term,
		Seed:          33,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Map wall time onto simulated time so a 12-second run crosses a
	// slot boundary.
	wallStart := time.Now()
	simStart := env.Start().Add(5 * time.Second)
	simAt := func(wall time.Time) time.Time { return simStart.Add(wall.Sub(wallStart)) }

	srv, err := irtt.NewServer("127.0.0.1:0", func(arrival time.Time) (time.Duration, bool) {
		s, err := path.Probe(simAt(arrival))
		if err != nil {
			return 0, true // outage: drop the probe
		}
		if s.Lost {
			return 0, true
		}
		return time.Duration(s.RTTms * float64(time.Millisecond)), false
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	fmt.Printf("probing %s for 12 s at 1 packet / 20 ms (simulated %s terminal)...\n",
		srv.Addr(), term.Name)
	results, err := irtt.Run(ctx, srv.Addr().String(), irtt.ClientConfig{
		Interval: 20 * time.Millisecond,
		Count:    600,
		Timeout:  time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	sum := irtt.Summarize(results)
	fmt.Printf("sent %d, received %d (%.1f%% loss), rtt min/median/max = %v / %v / %v\n\n",
		sum.Sent, sum.Received, sum.LossRate*100, sum.MinRTT, sum.MedianRTT, sum.MaxRTT)

	// Group by simulated 15-second slot and show the regime shifts.
	bySlot := map[int64][]float64{}
	var order []int64
	for _, r := range results {
		if r.Lost {
			continue
		}
		slot := scheduler.SlotIndex(simAt(r.SendTime))
		if _, ok := bySlot[slot]; !ok {
			order = append(order, slot)
		}
		bySlot[slot] = append(bySlot[slot], float64(r.RTT)/float64(time.Millisecond))
	}
	fmt.Println("slot  probes  median_rtt_ms")
	for i, slot := range order {
		fmt.Printf("%4d  %6d  %6.1f\n", i, len(bySlot[slot]), stats.Median(bySlot[slot]))
	}
	if len(order) >= 2 {
		a, b := bySlot[order[0]], bySlot[order[1]]
		if len(a) >= 8 && len(b) >= 8 {
			mw, err := stats.MannWhitneyU(a, b)
			if err == nil {
				fmt.Printf("\nMann-Whitney U between the first two slots: p = %.2g (paper: p < .05)\n", mw.P)
			}
		}
	}
}
