#!/bin/sh
# End-to-end crash-tolerance smoke for the distributed campaign
# coordinator: run a sharded campaign across two worker processes,
# SIGKILL one of them mid-campaign, and assert that the merged record
# stream still hashes identically to the single-process golden run —
# the byte-determinism contract of internal/coord, exercised over real
# processes and real sockets rather than in-process test servers.
#
# Usage: scripts/coord_smoke.sh [path-to-repro-binary]
#
# The kill races the campaign, so a fast machine can finish before the
# worker dies (the run is then healthy and proves nothing about
# recovery); the script retries a few times until the coordinator
# reports at least one shard reassignment. A hash mismatch at any
# point is an immediate failure.
set -eu

repro=${1:-./repro}
scale=${SCALE:-small}
seed=${SEED:-41}
slots=${SLOTS:-40}
delay=${RECORD_DELAY:-5ms}

work=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

if [ ! -x "$repro" ]; then
    echo "coord_smoke: building repro..." >&2
    go build -o "$work/repro" ./cmd/repro
    repro=$work/repro
fi

# The golden: the identical campaign single-process. `repro dist`
# without -coord-workers runs it through the same encoder.
"$repro" -scale "$scale" -seed "$seed" -slots "$slots" dist > "$work/golden.log"
golden=$(awk '/^sha256 /{print $2}' "$work/golden.log")
[ -n "$golden" ] || { echo "coord_smoke: no golden hash"; cat "$work/golden.log"; exit 1; }
echo "coord_smoke: golden sha256 $golden" >&2

attempt=1
while :; do
    # Two workers, throttled so the campaign is slow enough to kill one
    # in the middle of.
    "$repro" -worker-listen 127.0.0.1:9771 -record-delay "$delay" > "$work/w1.log" 2>&1 &
    w1=$!
    "$repro" -worker-listen 127.0.0.1:9772 -record-delay "$delay" > "$work/w2.log" 2>&1 &
    w2=$!
    pids="$w1 $w2"
    sleep 1

    rm -rf "$work/journals"
    "$repro" -scale "$scale" -seed "$seed" -slots "$slots" \
        -coord-workers 127.0.0.1:9771,127.0.0.1:9772 \
        -coord-journal "$work/journals" dist > "$work/dist.log" 2>&1 &
    coord=$!
    pids="$pids $coord"

    # SIGKILL one worker mid-campaign — the crash under test.
    sleep 0.3
    kill -9 "$w2" 2>/dev/null || true

    if ! wait "$coord"; then
        echo "coord_smoke: coordinator failed"; cat "$work/dist.log"; exit 1
    fi
    kill "$w1" 2>/dev/null || true
    wait "$w1" 2>/dev/null || true
    pids=""

    got=$(awk '/^sha256 /{print $2}' "$work/dist.log")
    if [ "$got" != "$golden" ]; then
        echo "coord_smoke: HASH MISMATCH: distributed $got vs golden $golden"
        cat "$work/dist.log"
        exit 1
    fi
    reassigned=$(awk '/shard reassignments/{print $(NF-2)}' "$work/dist.log")
    if [ "${reassigned:-0}" -ge 1 ]; then
        echo "coord_smoke: PASS — hash matches golden through $reassigned reassignment(s)" >&2
        exit 0
    fi

    # The campaign outran the kill; slow the workers down and try again.
    echo "coord_smoke: attempt $attempt finished before the kill landed; retrying" >&2
    attempt=$((attempt + 1))
    if [ "$attempt" -gt 5 ]; then
        echo "coord_smoke: could not land a mid-campaign kill in 5 attempts"
        exit 1
    fi
    delay=$((${delay%ms} * 2))ms
done
