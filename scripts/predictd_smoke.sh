#!/bin/sh
# End-to-end smoke for the online-inference service: start a predictd
# process, stream a short drift campaign at it over dishrpc
# (`repro drift -predict-addr`), and assert that
#
#   1. the drift experiment PASSes: windowed accuracy visibly drops at
#      the mid-campaign weight flip, the drift flag fires within a
#      bounded number of slots, and retraining recovers it;
#   2. the service's stationary top-1 accuracy beats the
#      most-populated-cluster baseline (the §6 bar, checked against the
#      offline golden run's printed baseline figure);
#   3. /metrics exposes the predict_* family, with
#      predict_requests_total counting the campaign's RPCs.
#
# Usage: scripts/predictd_smoke.sh [path-to-repro] [path-to-predictd]
set -eu

repro=${1:-./repro}
predictd=${2:-./predictd}
scale=${SCALE:-small}
seed=${SEED:-3}
slots=${SLOTS:-600}
rpc_addr=${RPC_ADDR:-127.0.0.1:9461}
metrics_addr=${METRICS_ADDR:-127.0.0.1:9462}

work=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

if [ ! -x "$repro" ]; then
    echo "predictd_smoke: building repro..." >&2
    go build -o "$work/repro" ./cmd/repro
    repro=$work/repro
fi
if [ ! -x "$predictd" ]; then
    echo "predictd_smoke: building predictd..." >&2
    go build -o "$work/predictd" ./cmd/predictd
    predictd=$work/predictd
fi

# The offline golden: the same drift campaign with an in-process
# scorer. Its offline §6 cross-check line carries the baseline top-1
# the daemon's accuracy must beat, and -sync on both sides makes the
# two runs' windowed accuracies directly comparable.
"$repro" -scale "$scale" -seed "$seed" -slots "$slots" drift > "$work/golden.log"
grep -q 'drift experiment: PASS' "$work/golden.log" || {
    echo "predictd_smoke: in-process golden run failed"; cat "$work/golden.log"; exit 1; }
baseline=$(awk -F'baseline ' '/offline §6 cross-check/{sub(/%.*/, "", $2); print $2}' "$work/golden.log")
[ -n "$baseline" ] || { echo "predictd_smoke: no baseline figure"; cat "$work/golden.log"; exit 1; }

"$predictd" -listen "$rpc_addr" -telemetry-addr "$metrics_addr" \
    -window 512 -refit-every 128 -min-fit 256 -trees 20 -seed "$seed" -sync \
    > "$work/predictd.log" 2>&1 &
pids=$!
ok=
for _ in $(seq 1 50); do
    if grep -q 'serving dishrpc' "$work/predictd.log"; then ok=1; break; fi
    sleep 0.2
done
[ -n "$ok" ] || { echo "predictd_smoke: predictd never came up"; cat "$work/predictd.log"; exit 1; }

"$repro" -scale "$scale" -seed "$seed" -slots "$slots" \
    -predict-addr "$rpc_addr" drift > "$work/drift.log"
cat "$work/drift.log" >&2

grep -q 'drift experiment: PASS' "$work/drift.log" || {
    echo "predictd_smoke: drift experiment FAILED against predictd"; exit 1; }

# Accuracy bar: stationary windowed top-1 over the wire must beat the
# offline baseline.
top1=$(awk -F'top-1 ' '/^stationary:/{sub(/%.*/, "", $2); print $2}' "$work/drift.log")
[ -n "$top1" ] || { echo "predictd_smoke: no stationary top-1 figure"; exit 1; }
awk -v a="$top1" -v b="$baseline" 'BEGIN { exit !(a > b) }' || {
    echo "predictd_smoke: stationary top-1 $top1% does not beat baseline $baseline%"; exit 1; }

curl -sf "http://$metrics_addr/metrics" -o "$work/metrics.txt"
grep -Eq '^predict_requests_total [1-9][0-9]*$' "$work/metrics.txt" || {
    echo "predictd_smoke: predict_requests_total missing from /metrics"
    grep '^predict' "$work/metrics.txt" || true
    exit 1; }
grep -q '^predict_drift_events_total ' "$work/metrics.txt"
grep -q '^predict_refits_total ' "$work/metrics.txt"
grep -q '^predict_recent_top1 ' "$work/metrics.txt"

requests=$(awk '/^predict_requests_total /{print $2}' "$work/metrics.txt")
echo "predictd_smoke: PASS — top-1 $top1% > baseline $baseline%, $requests RPCs served" >&2
