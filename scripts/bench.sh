#!/bin/sh
# Run the learning-engine benchmarks and record them as JSON, one
# object per benchmark: {"name", "iterations", "ns_per_op",
# "bytes_per_op", "allocs_per_op", "metrics": {...}}.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=5x scripts/bench.sh BENCH_PR3.json
#   BENCHTIME=5x scripts/bench.sh BENCH_PR4.json
#
# Besides the timing benchmarks, the run records the streaming-vs-batch
# campaign memory benchmark (BenchmarkCampaignMemory): its
# final_live_MB metric must stay flat for stream/* across the 10× slot
# jump and grow linearly for batch/*. It always runs at -benchtime=1x —
# one campaign per variant is the measurement; iterating would only
# repeat it.
#
# PR5 adds the telemetry-overhead pair — BenchmarkCampaignParallel
# (nil metrics bundle, the Nop path) against
# BenchmarkCampaignParallelTelemetry (live registry + decision trace):
# the Telemetry variant's ns_per_op must stay within 3% of the
# baseline. The internal/telemetry record-path benchmarks must report
# 0 allocs/op for CounterInc and HistogramObserve.
#
# PR6 adds the fleet-scaling sweep (BenchmarkCampaignFleet): oracle
# campaigns from 4 to 100k terminals, spatial index vs. linear scan
# (BENCH_PR6.json). Acceptance: indexed records/s roughly flat as the
# fleet grows, and >= 10x the linear scan's at 10k terminals. The
# sweep always runs at -benchtime=2x — each iteration is a whole
# campaign, and the 100k-terminal variants take minutes each.
#
# PR10 adds the online-inference serve benchmark
# (BenchmarkPredictServe, BENCH_PR10.json): one Rank call against a
# warm forest through the pooled scratch — ClusterInto, VectorInto,
# RankClassesInto. Acceptance: 0 allocs/op; the serve path must never
# pressure the campaign workers' allocator.
#
# PR8 adds the snapshot-engine benchmarks (BENCH_PR8.json):
# BenchmarkSnapshot fresh/warm (warm must report 0 allocs/op — the
# pooled steady state), BenchmarkSnapshotParallel at 2/4/8 workers
# (byte-identical output at every width; the speedup needs real
# cores), and BenchmarkSnapshotIndexRebuild (rebuild must report
# 0 allocs/op). The fleet sweep gains the parsnap ablation group.
#
# Only the standard library and POSIX awk are assumed. The raw `go
# test -bench` lines pass through on stderr so a terminal run stays
# readable.
set -eu

out=${1:-bench.json}
benchtime=${BENCHTIME:-5x}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

{
    go test ./internal/ml -run='^$' -bench='^BenchmarkForest' \
        -benchmem -benchtime="$benchtime"
    go test . -run='^$' -bench='^BenchmarkFig8TopK' \
        -benchmem -benchtime="$benchtime"
    go test . -run='^$' -bench='^BenchmarkCampaignMemory' \
        -benchmem -benchtime=1x
    go test . -run='^$' -bench='^BenchmarkCampaign(Serial|Parallel(Telemetry)?)$' \
        -benchmem -benchtime="$benchtime"
    go test . -run='^$' -bench='^BenchmarkCampaignFleet$' \
        -benchmem -benchtime=2x -timeout=60m
    go test ./internal/constellation -run='^$' -bench='^BenchmarkSnapshot' \
        -benchmem -benchtime="$benchtime"
    go test . -run='^$' -bench='^BenchmarkSchedulerAllocate$' \
        -benchmem -benchtime="$benchtime"
    go test ./internal/telemetry -run='^$' -bench=. \
        -benchmem -benchtime="$benchtime"
    go test ./internal/predict -run='^$' -bench='^BenchmarkPredictServe$' \
        -benchmem -benchtime="$benchtime"
} | tee "$tmp" >&2

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""; metrics = ""
    for (i = 3; i < NF; i += 2) {
        v = $i; u = $(i + 1)
        if (u == "ns/op")           ns = v
        else if (u == "B/op")       bytes = v
        else if (u == "allocs/op")  allocs = v
        else {
            gsub(/"/, "", u)
            metrics = metrics (metrics == "" ? "" : ", ") \
                "\"" u "\": " v
        }
    }
    line = "  {\"name\": \"" name "\", \"iterations\": " iters
    if (ns != "")     line = line ", \"ns_per_op\": " ns
    if (bytes != "")  line = line ", \"bytes_per_op\": " bytes
    if (allocs != "") line = line ", \"allocs_per_op\": " allocs
    if (metrics != "") line = line ", \"metrics\": {" metrics "}"
    line = line "}"
    lines[n++] = line
}
END {
    print "["
    for (i = 0; i < n; i++) print lines[i] (i < n - 1 ? "," : "")
    print "]"
}
' "$tmp" > "$out"
echo "wrote $out" >&2
