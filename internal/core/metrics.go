package core

import (
	"sort"
	"time"

	"repro/internal/dtw"
	"repro/internal/telemetry"
)

// CampaignMetrics is the campaign engine's telemetry bundle. All
// handles are resolved once at construction, the observation points sit
// on the single-goroutine paths (producer and emitter), and a nil
// bundle — the default — disables everything at the cost of one branch
// per call site, so the uninstrumented engine stays at Nop speed.
type CampaignMetrics struct {
	Slots       *telemetry.Counter
	Records     *telemetry.Counter
	Served      *telemetry.Counter
	Skips       *telemetry.CounterVec
	QueueDepth  *telemetry.Gauge
	SlotsPerSec *telemetry.FloatGauge
	Matcher     *dtw.Metrics

	// Trace, when non-nil, records one Decision per emitted record —
	// the chosen satellite plus the top rejected candidates — into a
	// bounded ring for §5-style offline audits. Recording happens on the
	// emitter goroutine in deterministic (slot, terminal) order.
	Trace *telemetry.DecisionTrace
	// TraceRejects bounds the rejected candidates kept per decision.
	// 0 selects 3.
	TraceRejects int
}

// NewCampaignMetrics registers the campaign metric families. Returns
// nil on a nil registry; every method is safe on a nil bundle.
func NewCampaignMetrics(reg *telemetry.Registry) *CampaignMetrics {
	if reg == nil {
		return nil
	}
	return &CampaignMetrics{
		Slots:       reg.Counter("campaign_slots_total", "slots dispatched by the campaign engine"),
		Records:     reg.Counter("campaign_records_total", "slot x terminal records emitted"),
		Served:      reg.Counter("campaign_served_total", "emitted records with a valid chosen satellite"),
		Skips:       reg.CounterVec("campaign_skips_total", "emitted records skipped, by reason", "reason"),
		QueueDepth:  reg.Gauge("campaign_queue_depth", "slots in flight between producer and emitter"),
		SlotsPerSec: reg.FloatGauge("campaign_slots_per_second", "slot throughput of the most recent campaign"),
		Matcher:     dtw.NewMetrics(reg),
	}
}

// slotProduced marks one slot dispatched into the engine.
func (m *CampaignMetrics) slotProduced() {
	if m == nil {
		return
	}
	m.Slots.Inc()
	m.QueueDepth.Add(1)
}

// slotEmitted marks one slot fully drained by the emitter.
func (m *CampaignMetrics) slotEmitted() {
	if m == nil {
		return
	}
	m.QueueDepth.Add(-1)
}

// observeRecord folds one emitted record in. Called from exactly one
// goroutine (the serial loop or the parallel emitter), in emission
// order — the same contract as CampaignStats.observe.
func (m *CampaignMetrics) observeRecord(rec *SlotRecord) {
	if m == nil {
		return
	}
	m.Records.Inc()
	if rec.ChosenIdx >= 0 {
		m.Served.Inc()
	}
	if rec.SkipReason != "" {
		m.Skips.With(rec.SkipReason).Inc()
	}
	if m.Trace != nil {
		m.Trace.Record(m.decision(rec))
	}
}

// decision projects a record into the trace schema: the chosen
// satellite's observables plus the top rejected candidates by
// elevation — the scheduler's dominant preference, so these are the
// most informative non-picks.
func (m *CampaignMetrics) decision(rec *SlotRecord) telemetry.Decision {
	d := telemetry.Decision{
		SlotStart:  rec.SlotStart,
		Terminal:   rec.Terminal,
		SkipReason: rec.SkipReason,
	}
	if rec.ChosenIdx >= 0 {
		c := rec.Available[rec.ChosenIdx]
		d.ChosenID = c.ID
		d.ChosenAOE = c.ElevationDeg
	}
	k := m.TraceRejects
	if k <= 0 {
		k = 3
	}
	rejected := make([]telemetry.RejectedCandidate, 0, len(rec.Available))
	for i, s := range rec.Available {
		if i == rec.ChosenIdx {
			continue
		}
		rejected = append(rejected, telemetry.RejectedCandidate{
			SatID:      s.ID,
			AOEDeg:     s.ElevationDeg,
			AzimuthDeg: s.AzimuthDeg,
			AgeYears:   s.AgeYears,
			Sunlit:     s.Sunlit,
		})
	}
	sort.Slice(rejected, func(i, j int) bool {
		if rejected[i].AOEDeg != rejected[j].AOEDeg {
			return rejected[i].AOEDeg > rejected[j].AOEDeg
		}
		return rejected[i].SatID < rejected[j].SatID
	})
	if len(rejected) > k {
		rejected = rejected[:k]
	}
	d.Rejected = rejected
	return d
}

// flushMatcher folds one worker's matcher counters in (atomic adds —
// workers flush concurrently at exit).
func (m *CampaignMetrics) flushMatcher(s dtw.MatcherStats) {
	if m == nil {
		return
	}
	m.Matcher.AddStats(s)
}

// campaignDone publishes the end-to-end throughput of a completed run.
func (m *CampaignMetrics) campaignDone(slots int, elapsed time.Duration) {
	if m == nil || elapsed <= 0 {
		return
	}
	m.SlotsPerSec.Set(float64(slots) / elapsed.Seconds())
}
