package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// TestStreamMatchesBatch is the streaming engine's core contract: the
// emitted sequence equals the batch result's Records exactly — same
// order, same content, same counters — at several worker counts, in
// both oracle and measured mode.
func TestStreamMatchesBatch(t *testing.T) {
	setupFixture(t)
	for _, oracle := range []bool{true, false} {
		batch, err := RunCampaign(context.Background(), campaignCfg(t, 41, 1, oracle))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			var streamed []SlotRecord
			stats, err := RunCampaignStream(context.Background(), campaignCfg(t, 41, workers, oracle),
				func(rec SlotRecord) error {
					streamed = append(streamed, rec)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(streamed) != len(batch.Records) {
				t.Fatalf("oracle=%v workers=%d: %d streamed != %d batch",
					oracle, workers, len(streamed), len(batch.Records))
			}
			for i := range streamed {
				if !reflect.DeepEqual(streamed[i], batch.Records[i]) {
					t.Fatalf("oracle=%v workers=%d: record %d differs:\nstream: %+v\nbatch:  %+v",
						oracle, workers, i, streamed[i], batch.Records[i])
				}
			}
			if stats.Attempted != batch.Attempted || stats.Correct != batch.Correct || stats.Failed != batch.Failed {
				t.Errorf("oracle=%v workers=%d: counters (%d,%d,%d) != batch (%d,%d,%d)",
					oracle, workers, stats.Attempted, stats.Correct, stats.Failed,
					batch.Attempted, batch.Correct, batch.Failed)
			}
			if stats.Records != len(batch.Records) {
				t.Errorf("stats.Records = %d, want %d", stats.Records, len(batch.Records))
			}
			if stats.Served != len(batch.Observations()) {
				t.Errorf("stats.Served = %d, want %d", stats.Served, len(batch.Observations()))
			}
			if !reflect.DeepEqual(stats.Skips, batch.Skips) {
				t.Errorf("oracle=%v workers=%d: skips %v != batch %v", oracle, workers, stats.Skips, batch.Skips)
			}
			if stats.Dropped() != stats.Records-stats.Served {
				t.Errorf("Dropped() inconsistent")
			}
		}
	}
}

// TestShardedCampaignMatchesSerial is the distributed engine's
// determinism contract: partition the fleet into contiguous terminal
// shards, run each shard as its own campaign (fresh same-seed
// scheduler, as a worker process would), merge slot by slot in shard
// order — and the merged stream must equal the unsharded run record
// for record, with the identification tallies summing across shards.
func TestShardedCampaignMatchesSerial(t *testing.T) {
	setupFixture(t)
	for _, oracle := range []bool{true, false} {
		full, err := RunCampaign(context.Background(), campaignCfg(t, 77, 1, oracle))
		if err != nil {
			t.Fatal(err)
		}
		nTerms := len(full.Records) / 24 // 24 slots per campaignCfg
		for _, shards := range []int{2, 3} {
			if shards > nTerms {
				continue
			}
			perShard := make([][]SlotRecord, shards)
			var attempted, correct, failed int
			for s := 0; s < shards; s++ {
				lo := s * nTerms / shards
				hi := (s + 1) * nTerms / shards
				cfg := campaignCfg(t, 77, 4, oracle) // Workers>1: shard must force serial
				cfg.Shard = ShardRange{Lo: lo, Hi: hi}
				stats, err := RunCampaignStream(context.Background(), cfg, func(rec SlotRecord) error {
					perShard[s] = append(perShard[s], rec)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if stats.Terminals != hi-lo {
					t.Errorf("shard %d: stats.Terminals = %d, want %d", s, stats.Terminals, hi-lo)
				}
				if len(perShard[s]) != (hi-lo)*cfg.Slots {
					t.Fatalf("shard %d emitted %d records, want %d", s, len(perShard[s]), (hi-lo)*cfg.Slots)
				}
				attempted += stats.Attempted
				correct += stats.Correct
				failed += stats.Failed
			}
			// Merge: slot by slot, shards in order — the coordinator's rule.
			var merged []SlotRecord
			for slot := 0; slot < 24; slot++ {
				for s := 0; s < shards; s++ {
					width := len(perShard[s]) / 24
					merged = append(merged, perShard[s][slot*width:(slot+1)*width]...)
				}
			}
			if len(merged) != len(full.Records) {
				t.Fatalf("oracle=%v shards=%d: merged %d records, want %d", oracle, shards, len(merged), len(full.Records))
			}
			for i := range merged {
				if !reflect.DeepEqual(merged[i], full.Records[i]) {
					t.Fatalf("oracle=%v shards=%d: merged record %d differs:\nshard: %+v\nfull:  %+v",
						oracle, shards, i, merged[i], full.Records[i])
				}
			}
			if attempted != full.Attempted || correct != full.Correct || failed != full.Failed {
				t.Errorf("oracle=%v shards=%d: summed counters (%d,%d,%d) != full (%d,%d,%d)",
					oracle, shards, attempted, correct, failed, full.Attempted, full.Correct, full.Failed)
			}
		}
	}
}

// TestEmitFromSlotResume is the journal-replay contract: a run resumed
// at slot k re-walks the campaign state from slot 0 but emits exactly
// the records the original run emitted from slot k on, with complete
// whole-campaign identification tallies.
func TestEmitFromSlotResume(t *testing.T) {
	setupFixture(t)
	for _, oracle := range []bool{true, false} {
		full, err := RunCampaign(context.Background(), campaignCfg(t, 78, 1, oracle))
		if err != nil {
			t.Fatal(err)
		}
		nTerms := len(full.Records) / 24
		for _, resume := range []int{1, 13, 24} {
			cfg := campaignCfg(t, 78, 2, oracle)
			cfg.EmitFromSlot = resume
			var got []SlotRecord
			stats, err := RunCampaignStream(context.Background(), cfg, func(rec SlotRecord) error {
				got = append(got, rec)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			want := full.Records[resume*nTerms:]
			if len(got) != len(want) {
				t.Fatalf("oracle=%v resume=%d: emitted %d records, want %d", oracle, resume, len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("oracle=%v resume=%d: record %d differs", oracle, resume, i)
				}
			}
			if stats.Records != len(want) {
				t.Errorf("oracle=%v resume=%d: stats.Records = %d, want %d", oracle, resume, stats.Records, len(want))
			}
			// Tallies cover the whole campaign, not just the emitted tail.
			if stats.Attempted != full.Attempted || stats.Correct != full.Correct || stats.Failed != full.Failed {
				t.Errorf("oracle=%v resume=%d: counters (%d,%d,%d) != full (%d,%d,%d)",
					oracle, resume, stats.Attempted, stats.Correct, stats.Failed,
					full.Attempted, full.Correct, full.Failed)
			}
		}
		// Sharded resume: the reassigned-worker path replays one shard
		// from a mid-campaign slot.
		if nTerms >= 2 {
			cfg := campaignCfg(t, 78, 1, oracle)
			cfg.Shard = ShardRange{Lo: 1, Hi: nTerms}
			cfg.EmitFromSlot = 7
			var got []SlotRecord
			if _, err := RunCampaignStream(context.Background(), cfg, func(rec SlotRecord) error {
				got = append(got, rec)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			var want []SlotRecord
			for slot := 7; slot < 24; slot++ {
				want = append(want, full.Records[slot*nTerms+1:(slot+1)*nTerms]...)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("oracle=%v: sharded resume diverged (%d vs %d records)", oracle, len(got), len(want))
			}
		}
	}
}

// TestShardValidation rejects out-of-range shards and resume slots.
func TestShardValidation(t *testing.T) {
	setupFixture(t)
	nTerms := len(campaignCfg(t, 1, 1, true).Scheduler.Terminals())
	bad := []CampaignConfig{}
	for _, s := range []ShardRange{{Lo: -1, Hi: 1}, {Lo: 2, Hi: 1}, {Lo: 0, Hi: nTerms + 1}} {
		cfg := campaignCfg(t, 1, 1, true)
		cfg.Shard = s
		bad = append(bad, cfg)
	}
	for _, e := range []int{-1, 25} {
		cfg := campaignCfg(t, 1, 1, true)
		cfg.EmitFromSlot = e
		bad = append(bad, cfg)
	}
	for i, cfg := range bad {
		if _, err := RunCampaignStream(context.Background(), cfg, func(SlotRecord) error { return nil }); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestStreamEmitErrorAborts proves an emit error stops the campaign —
// serial and parallel — and surfaces verbatim.
func TestStreamEmitErrorAborts(t *testing.T) {
	setupFixture(t)
	sentinel := fmt.Errorf("sink full")
	for _, workers := range []int{1, 4} {
		n := 0
		stats, err := RunCampaignStream(context.Background(), campaignCfg(t, 43, workers, true),
			func(SlotRecord) error {
				n++
				if n == 10 {
					return sentinel
				}
				return nil
			})
		if err != sentinel {
			t.Errorf("workers=%d: err = %v, want sentinel", workers, err)
		}
		if stats != nil {
			t.Errorf("workers=%d: aborted stream returned stats", workers)
		}
		if n != 10 {
			t.Errorf("workers=%d: emit called %d times after error, want 10", workers, n)
		}
	}
}

// TestStreamCancellation mirrors the batch cancellation contract: a
// pre-canceled context returns promptly with the context's error.
func TestStreamCancellation(t *testing.T) {
	setupFixture(t)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		stats, err := RunCampaignStream(ctx, campaignCfg(t, 44, workers, true), func(SlotRecord) error { return nil })
		if err != context.Canceled {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if stats != nil {
			t.Errorf("workers=%d: canceled stream returned stats", workers)
		}
	}
}

// TestObservationsCached guards the satellite fix: repeated calls
// return the same backing slice instead of reallocating a copy.
func TestObservationsCached(t *testing.T) {
	setupFixture(t)
	res, err := RunCampaign(context.Background(), campaignCfg(t, 45, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Observations(), res.Observations()
	if len(a) == 0 {
		t.Skip("no observations in fixture campaign")
	}
	if &a[0] != &b[0] {
		t.Error("Observations() reallocated on the second call")
	}
	allocs := testing.AllocsPerRun(10, func() { res.Observations() })
	if allocs != 0 {
		t.Errorf("cached Observations() allocates %v per call", allocs)
	}
}
