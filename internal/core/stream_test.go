package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// TestStreamMatchesBatch is the streaming engine's core contract: the
// emitted sequence equals the batch result's Records exactly — same
// order, same content, same counters — at several worker counts, in
// both oracle and measured mode.
func TestStreamMatchesBatch(t *testing.T) {
	setupFixture(t)
	for _, oracle := range []bool{true, false} {
		batch, err := RunCampaign(context.Background(), campaignCfg(t, 41, 1, oracle))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			var streamed []SlotRecord
			stats, err := RunCampaignStream(context.Background(), campaignCfg(t, 41, workers, oracle),
				func(rec SlotRecord) error {
					streamed = append(streamed, rec)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(streamed) != len(batch.Records) {
				t.Fatalf("oracle=%v workers=%d: %d streamed != %d batch",
					oracle, workers, len(streamed), len(batch.Records))
			}
			for i := range streamed {
				if !reflect.DeepEqual(streamed[i], batch.Records[i]) {
					t.Fatalf("oracle=%v workers=%d: record %d differs:\nstream: %+v\nbatch:  %+v",
						oracle, workers, i, streamed[i], batch.Records[i])
				}
			}
			if stats.Attempted != batch.Attempted || stats.Correct != batch.Correct || stats.Failed != batch.Failed {
				t.Errorf("oracle=%v workers=%d: counters (%d,%d,%d) != batch (%d,%d,%d)",
					oracle, workers, stats.Attempted, stats.Correct, stats.Failed,
					batch.Attempted, batch.Correct, batch.Failed)
			}
			if stats.Records != len(batch.Records) {
				t.Errorf("stats.Records = %d, want %d", stats.Records, len(batch.Records))
			}
			if stats.Served != len(batch.Observations()) {
				t.Errorf("stats.Served = %d, want %d", stats.Served, len(batch.Observations()))
			}
			if !reflect.DeepEqual(stats.Skips, batch.Skips) {
				t.Errorf("oracle=%v workers=%d: skips %v != batch %v", oracle, workers, stats.Skips, batch.Skips)
			}
			if stats.Dropped() != stats.Records-stats.Served {
				t.Errorf("Dropped() inconsistent")
			}
		}
	}
}

// TestStreamEmitErrorAborts proves an emit error stops the campaign —
// serial and parallel — and surfaces verbatim.
func TestStreamEmitErrorAborts(t *testing.T) {
	setupFixture(t)
	sentinel := fmt.Errorf("sink full")
	for _, workers := range []int{1, 4} {
		n := 0
		stats, err := RunCampaignStream(context.Background(), campaignCfg(t, 43, workers, true),
			func(SlotRecord) error {
				n++
				if n == 10 {
					return sentinel
				}
				return nil
			})
		if err != sentinel {
			t.Errorf("workers=%d: err = %v, want sentinel", workers, err)
		}
		if stats != nil {
			t.Errorf("workers=%d: aborted stream returned stats", workers)
		}
		if n != 10 {
			t.Errorf("workers=%d: emit called %d times after error, want 10", workers, n)
		}
	}
}

// TestStreamCancellation mirrors the batch cancellation contract: a
// pre-canceled context returns promptly with the context's error.
func TestStreamCancellation(t *testing.T) {
	setupFixture(t)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		stats, err := RunCampaignStream(ctx, campaignCfg(t, 44, workers, true), func(SlotRecord) error { return nil })
		if err != context.Canceled {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if stats != nil {
			t.Errorf("workers=%d: canceled stream returned stats", workers)
		}
	}
}

// TestObservationsCached guards the satellite fix: repeated calls
// return the same backing slice instead of reallocating a copy.
func TestObservationsCached(t *testing.T) {
	setupFixture(t)
	res, err := RunCampaign(context.Background(), campaignCfg(t, 45, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Observations(), res.Observations()
	if len(a) == 0 {
		t.Skip("no observations in fixture campaign")
	}
	if &a[0] != &b[0] {
		t.Error("Observations() reallocated on the second call")
	}
	allocs := testing.AllocsPerRun(10, func() { res.Observations() })
	if allocs != 0 {
		t.Errorf("cached Observations() allocates %v per call", allocs)
	}
}
