package core

import (
	"reflect"
	"strings"
	"testing"
)

// TestAccumulatorsMatchBatch proves each incremental accumulator,
// fed one observation at a time, reproduces the batch analyzer's
// output exactly (reflect.DeepEqual covers every float bit).
func TestAccumulatorsMatchBatch(t *testing.T) {
	setupFixture(t)
	obs := fixture.obs

	aoeAcc := NewAOEAccumulator(27)
	azAcc := NewAzimuthAccumulator(27)
	laAcc := NewLaunchAccumulator("New York")
	suAcc := NewSunlitAccumulator(27)
	dsAcc := NewDatasetBuilder()
	for _, o := range obs {
		for _, acc := range []ObservationConsumer{aoeAcc, azAcc, laAcc, suAcc, dsAcc} {
			if err := acc.Add(o); err != nil {
				t.Fatal(err)
			}
		}
	}

	aoeB, err := AnalyzeAOE(obs, 27)
	if err != nil {
		t.Fatal(err)
	}
	aoeS, err := aoeAcc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(aoeS, aoeB) {
		t.Error("AOE accumulator diverges from batch")
	}

	azB, err := AnalyzeAzimuth(obs, 27)
	if err != nil {
		t.Fatal(err)
	}
	azS, err := azAcc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(azS, azB) {
		t.Error("azimuth accumulator diverges from batch")
	}

	laB, err := AnalyzeLaunch(obs, "New York")
	if err != nil {
		t.Fatal(err)
	}
	laS, err := laAcc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(laS, laB) {
		t.Error("launch accumulator diverges from batch")
	}

	suB, err := AnalyzeSunlit(obs, 27)
	if err != nil {
		t.Fatal(err)
	}
	suS, err := suAcc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(suS, suB) {
		t.Error("sunlit accumulator diverges from batch")
	}

	dsB, err := BuildDataset(obs)
	if err != nil {
		t.Fatal(err)
	}
	dsS, err := dsAcc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dsS, dsB) {
		t.Error("dataset builder diverges from batch")
	}
	if dsAcc.Rows() != len(dsB.X) {
		t.Errorf("Rows() = %d, want %d", dsAcc.Rows(), len(dsB.X))
	}
}

// TestAccumulatorErrorParity keeps the historical batch error messages
// on empty and all-unidentified streams.
func TestAccumulatorErrorParity(t *testing.T) {
	finalizers := map[string]func() error{
		"aoe": func() error { _, err := NewAOEAccumulator(9).Finalize(); return err },
		"az":  func() error { _, err := NewAzimuthAccumulator(9).Finalize(); return err },
		"la":  func() error { _, err := NewLaunchAccumulator().Finalize(); return err },
		"su":  func() error { _, err := NewSunlitAccumulator(9).Finalize(); return err },
	}
	for name, f := range finalizers {
		if err := f(); err == nil || !strings.Contains(err.Error(), "no observations") {
			t.Errorf("%s: empty finalize error = %v", name, err)
		}
	}
	noChosen := Observation{Terminal: "x", Available: []SatObs{{ID: 1}}, ChosenIdx: -1}
	acc := NewAOEAccumulator(9)
	if err := acc.Add(noChosen); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Finalize(); err == nil || !strings.Contains(err.Error(), "identified chosen") {
		t.Errorf("all-unidentified finalize error = %v", err)
	}
	b := NewDatasetBuilder()
	if _, err := b.Finalize(); err == nil || !strings.Contains(err.Error(), "no usable observations") {
		t.Errorf("empty dataset finalize error = %v", err)
	}
	// A chosen observation with an empty available set is a data bug:
	// Add must surface it, not panic downstream.
	if err := b.Add(Observation{Terminal: "x", ChosenIdx: 0}); err != nil {
		t.Error("ChosenIdx beyond empty available should be skipped (Chosen() is false), got", err)
	}
}
