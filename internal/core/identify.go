package core

import (
	"fmt"
	"time"

	"repro/internal/astro"
	"repro/internal/constellation"
	"repro/internal/dtw"
	"repro/internal/geo"
	"repro/internal/obstruction"
	"repro/internal/scheduler"
)

// Identifier implements the paper's §4 technique: isolate the newest
// obstruction-map trajectory by XOR-ing consecutive snapshots, convert
// its pixels to sky coordinates, and match against the SGP4-propagated
// tracks of every candidate satellite by dynamic time warping.
type Identifier struct {
	cons *constellation.Constellation
	// MinElevationDeg is the visibility mask (default 25).
	MinElevationDeg float64
	// SampleStep spaces the candidate-track samples (default 1s, 16
	// points per 15-second slot).
	SampleStep time.Duration
	// UseNaiveMatcher switches to the nearest-endpoint ablation
	// baseline instead of DTW.
	UseNaiveMatcher bool
}

// NewIdentifier builds an identifier over public TLE data.
func NewIdentifier(cons *constellation.Constellation) (*Identifier, error) {
	if cons == nil {
		return nil, fmt.Errorf("core: nil constellation")
	}
	return &Identifier{cons: cons, MinElevationDeg: 25, SampleStep: time.Second}, nil
}

// CandidateTracks samples the projected sky-track of every satellite
// in the terminal's field of view over the slot.
func (id *Identifier) CandidateTracks(vp geo.VantagePoint, slotStart time.Time) []dtw.Candidate {
	return id.CandidateTracksFromSnapshot(id.cons.Snapshot(slotStart), vp, slotStart)
}

// CandidateTracksFromSnapshot is CandidateTracks over a precomputed
// constellation snapshot for slotStart. The campaign engine shares one
// snapshot per slot across terminals and workers, which removes the
// full-constellation re-propagation from the hot identification loop;
// the output is identical to CandidateTracks.
func (id *Identifier) CandidateTracksFromSnapshot(snap []constellation.SatState, vp geo.VantagePoint, slotStart time.Time) []dtw.Candidate {
	fov := constellation.ObserveFrom(vp.Location, snap, id.MinElevationDeg)
	cands := make([]dtw.Candidate, 0, len(fov))
	for _, v := range fov {
		track := id.sampleTrack(v.Sat, vp.Location, slotStart)
		if len(track) == 0 {
			continue
		}
		cands = append(cands, dtw.Candidate{ID: v.Sat.ID, Track: track})
	}
	return cands
}

// CandidatePolarTracks returns every in-view satellite's sky-track
// over the slot in polar form, keyed by satellite ID — the input for
// skyplot.Validation, the §4 manual-check rendering.
func (id *Identifier) CandidatePolarTracks(vp geo.VantagePoint, slotStart time.Time) map[int][]obstruction.PolarPoint {
	fov := id.cons.FieldOfView(vp.Location, slotStart, id.MinElevationDeg)
	out := make(map[int][]obstruction.PolarPoint, len(fov))
	for _, v := range fov {
		pts, err := id.ServingTrack(v.Sat.ID, vp, slotStart)
		if err != nil {
			continue
		}
		var masked []obstruction.PolarPoint
		for _, p := range pts {
			if p.ElevationDeg >= id.MinElevationDeg {
				masked = append(masked, p)
			}
		}
		if len(masked) > 0 {
			out[v.Sat.ID] = masked
		}
	}
	return out
}

// sampleTrack samples one satellite's look angles across the slot and
// projects the above-mask points onto the plot plane.
func (id *Identifier) sampleTrack(sat *constellation.Satellite, obs astro.Geodetic, slotStart time.Time) []dtw.Point {
	var out []dtw.Point
	for dt := time.Duration(0); dt <= scheduler.Period; dt += id.SampleStep {
		t := slotStart.Add(dt)
		st, err := sat.Propagator.PropagateAt(t)
		if err != nil {
			return nil
		}
		posECEF, _ := astro.TEMEToECEF(st.Pos, st.Vel, t)
		la := astro.Observe(obs, posECEF)
		if la.ElevationDeg < id.MinElevationDeg {
			continue
		}
		out = append(out, dtw.FromPolar(obstruction.PolarPoint{
			ElevationDeg: la.ElevationDeg,
			AzimuthDeg:   la.AzimuthDeg,
		}))
	}
	return out
}

// Identification is the outcome of one slot's §4 matching.
type Identification struct {
	Terminal  string
	SlotStart time.Time
	SatID     int     // identified satellite
	Distance  float64 // DTW distance of the winner
	Margin    float64 // runner-up distance minus winner distance
	// TrackLen is the number of sky points recovered from the XOR diff.
	TrackLen int
}

// IdentifyFromMaps runs the full §4 pipeline on two consecutive
// obstruction-map snapshots.
func (id *Identifier) IdentifyFromMaps(prev, cur *obstruction.Map, vp geo.VantagePoint, slotStart time.Time) (Identification, error) {
	return id.IdentifyFromMapsSnapshot(prev, cur, vp, slotStart, nil)
}

// IdentifyFromMapsSnapshot is IdentifyFromMaps with an optional
// precomputed constellation snapshot for slotStart (nil propagates one
// internally). Results are identical either way.
func (id *Identifier) IdentifyFromMapsSnapshot(prev, cur *obstruction.Map, vp geo.VantagePoint, slotStart time.Time, snap []constellation.SatState) (Identification, error) {
	diff := obstruction.XOR(prev, cur)
	track := diff.Track()
	if len(track) < 2 {
		return Identification{}, fmt.Errorf("core: slot %v at %s: XOR diff has %d points (satellite unchanged or overlapping trajectory)",
			slotStart, vp.Name, len(track))
	}
	observed := dtw.FromPolarTrack(track)
	if snap == nil {
		snap = id.cons.Snapshot(slotStart)
	}
	cands := id.CandidateTracksFromSnapshot(snap, vp, slotStart)
	if len(cands) == 0 {
		return Identification{}, fmt.Errorf("core: slot %v at %s: no candidate satellites in view", slotStart, vp.Name)
	}
	out := Identification{Terminal: vp.Name, SlotStart: slotStart, TrackLen: len(track)}
	if id.UseNaiveMatcher {
		m, err := dtw.NaiveNearestEndpoint(observed, cands)
		if err != nil {
			return Identification{}, fmt.Errorf("core: naive match at %s: %w", vp.Name, err)
		}
		out.SatID = m.ID
		out.Distance = m.Distance
		return out, nil
	}
	best, margin, err := dtw.Identify(observed, cands)
	if err != nil {
		return Identification{}, fmt.Errorf("core: dtw match at %s: %w", vp.Name, err)
	}
	out.SatID = best.ID
	out.Distance = best.Distance
	out.Margin = margin
	return out, nil
}

// ServingTrack samples the serving satellite's sky-track for a slot
// the way dish firmware records it: look angles sampled along the
// slot, including below-mask points (PaintTrack clips them).
func (id *Identifier) ServingTrack(satID int, vp geo.VantagePoint, slotStart time.Time) ([]obstruction.PolarPoint, error) {
	sat := id.cons.ByID(satID)
	if sat == nil {
		return nil, fmt.Errorf("core: unknown satellite %d", satID)
	}
	var pts []obstruction.PolarPoint
	for dt := time.Duration(0); dt <= scheduler.Period; dt += id.SampleStep {
		t := slotStart.Add(dt)
		st, err := sat.Propagator.PropagateAt(t)
		if err != nil {
			return nil, fmt.Errorf("core: propagate %d: %w", satID, err)
		}
		posECEF, _ := astro.TEMEToECEF(st.Pos, st.Vel, t)
		la := astro.Observe(vp.Location, posECEF)
		pts = append(pts, obstruction.PolarPoint{
			ElevationDeg: la.ElevationDeg,
			AzimuthDeg:   la.AzimuthDeg,
		})
	}
	return pts, nil
}

// PaintServingTrack renders the serving satellite's sky-track for a
// slot into the map, drawn as a connected stroke.
func (id *Identifier) PaintServingTrack(m *obstruction.Map, satID int, vp geo.VantagePoint, slotStart time.Time) error {
	pts, err := id.ServingTrack(satID, vp, slotStart)
	if err != nil {
		return err
	}
	m.PaintTrack(pts)
	return nil
}
