package core

import (
	"fmt"
	"time"

	"repro/internal/astro"
	"repro/internal/constellation"
	"repro/internal/dtw"
	"repro/internal/geo"
	"repro/internal/obstruction"
	"repro/internal/scheduler"
)

// Identifier implements the paper's §4 technique: isolate the newest
// obstruction-map trajectory by XOR-ing consecutive snapshots, convert
// its pixels to sky coordinates, and match against the SGP4-propagated
// tracks of every candidate satellite by dynamic time warping.
type Identifier struct {
	cons *constellation.Constellation
	// MinElevationDeg is the visibility mask (default 25).
	MinElevationDeg float64
	// SampleStep spaces the candidate-track samples (default 1s, 16
	// points per 15-second slot).
	SampleStep time.Duration
	// UseNaiveMatcher switches to the nearest-endpoint ablation
	// baseline instead of DTW.
	UseNaiveMatcher bool
	// DisablePruning routes matching through the brute-force
	// dtw.Identify instead of the pruned dtw.Matcher. The two are
	// bit-identical by construction; the knob exists so that guarantee
	// stays testable end to end (see TestCampaignMatcherBruteIdentical)
	// and to time the unpruned baseline.
	DisablePruning bool
}

// NewIdentifier builds an identifier over public TLE data.
func NewIdentifier(cons *constellation.Constellation) (*Identifier, error) {
	if cons == nil {
		return nil, fmt.Errorf("core: nil constellation")
	}
	return &Identifier{cons: cons, MinElevationDeg: 25, SampleStep: time.Second}, nil
}

// Snapshot propagates the identifier's constellation to t. Live
// captures share one snapshot per slot between the available-set
// computation and identification, exactly like the campaign engines.
func (id *Identifier) Snapshot(t time.Time) []constellation.SatState {
	return id.cons.Snapshot(t)
}

// CandidateTracks samples the projected sky-track of every satellite
// in the terminal's field of view over the slot. The second return is
// the number of in-view candidates dropped because propagation failed
// mid-slot; a dropped candidate is distinguishable from one that was
// simply below the mask all slot, because the (possibly true) serving
// satellite may be among the dropped.
func (id *Identifier) CandidateTracks(vp geo.VantagePoint, slotStart time.Time) ([]dtw.Candidate, int) {
	return id.CandidateTracksFromSnapshot(id.cons.Snapshot(slotStart), vp, slotStart)
}

// CandidateTracksFromSnapshot is CandidateTracks over a precomputed
// constellation snapshot for slotStart. The campaign engine shares one
// snapshot per slot across terminals and workers, which removes the
// full-constellation re-propagation from the hot identification loop;
// the output is identical to CandidateTracks.
func (id *Identifier) CandidateTracksFromSnapshot(snap []constellation.SatState, vp geo.VantagePoint, slotStart time.Time) ([]dtw.Candidate, int) {
	fov := constellation.ObserveFrom(vp.Location, snap, id.MinElevationDeg)
	cands := make([]dtw.Candidate, 0, len(fov))
	dropped := 0
	for _, v := range fov {
		track, err := id.sampleTrack(v.Sat, vp.Location, slotStart)
		if err != nil {
			dropped++
			continue
		}
		if len(track) == 0 {
			continue // below the mask for the whole slot
		}
		cands = append(cands, dtw.Candidate{ID: v.Sat.ID, Track: track})
	}
	return cands, dropped
}

// CandidatePolarTracks returns every in-view satellite's sky-track
// over the slot in polar form, keyed by satellite ID — the input for
// skyplot.Validation, the §4 manual-check rendering.
func (id *Identifier) CandidatePolarTracks(vp geo.VantagePoint, slotStart time.Time) map[int][]obstruction.PolarPoint {
	return id.CandidatePolarTracksFromSnapshot(id.cons.Snapshot(slotStart), vp, slotStart)
}

// CandidatePolarTracksFromSnapshot is CandidatePolarTracks over a
// precomputed constellation snapshot for slotStart, mirroring the rest
// of the identify path: the field of view comes from the shared
// snapshot and each in-view satellite is propagated across the slot
// exactly once, instead of re-propagating the full constellation in
// FieldOfView and then each satellite again through ServingTrack's
// ID lookup. The output is identical to CandidatePolarTracks.
func (id *Identifier) CandidatePolarTracksFromSnapshot(snap []constellation.SatState, vp geo.VantagePoint, slotStart time.Time) map[int][]obstruction.PolarPoint {
	fov := constellation.ObserveFrom(vp.Location, snap, id.MinElevationDeg)
	out := make(map[int][]obstruction.PolarPoint, len(fov))
	for _, v := range fov {
		pts, err := id.samplePolarTrack(v.Sat, vp.Location, slotStart)
		if err != nil {
			continue
		}
		var masked []obstruction.PolarPoint
		for _, p := range pts {
			if p.ElevationDeg >= id.MinElevationDeg {
				masked = append(masked, p)
			}
		}
		if len(masked) > 0 {
			out[v.Sat.ID] = masked
		}
	}
	return out
}

// samplePolarTrack samples one satellite's look angles across the
// slot, below-mask points included. A propagation error aborts the
// track: the caller decides whether that means "drop the candidate"
// or "fail the call".
func (id *Identifier) samplePolarTrack(sat *constellation.Satellite, obs astro.Geodetic, slotStart time.Time) ([]obstruction.PolarPoint, error) {
	var pts []obstruction.PolarPoint
	for dt := time.Duration(0); dt <= scheduler.Period; dt += id.SampleStep {
		t := slotStart.Add(dt)
		st, err := sat.Propagator.PropagateAt(t)
		if err != nil {
			return nil, fmt.Errorf("core: propagate %d: %w", sat.ID, err)
		}
		posECEF, _ := astro.TEMEToECEF(st.Pos, st.Vel, t)
		la := astro.Observe(obs, posECEF)
		pts = append(pts, obstruction.PolarPoint{
			ElevationDeg: la.ElevationDeg,
			AzimuthDeg:   la.AzimuthDeg,
		})
	}
	return pts, nil
}

// sampleTrack samples one satellite's look angles across the slot and
// projects the above-mask points onto the plot plane. A propagation
// error is surfaced, not conflated with "below the mask all slot": a
// transient SGP4 failure mid-slot must not silently delete a possibly
// true serving satellite from the candidate set.
func (id *Identifier) sampleTrack(sat *constellation.Satellite, obs astro.Geodetic, slotStart time.Time) ([]dtw.Point, error) {
	var out []dtw.Point
	for dt := time.Duration(0); dt <= scheduler.Period; dt += id.SampleStep {
		t := slotStart.Add(dt)
		st, err := sat.Propagator.PropagateAt(t)
		if err != nil {
			return nil, fmt.Errorf("core: propagate %d: %w", sat.ID, err)
		}
		posECEF, _ := astro.TEMEToECEF(st.Pos, st.Vel, t)
		la := astro.Observe(obs, posECEF)
		if la.ElevationDeg < id.MinElevationDeg {
			continue
		}
		out = append(out, dtw.FromPolar(obstruction.PolarPoint{
			ElevationDeg: la.ElevationDeg,
			AzimuthDeg:   la.AzimuthDeg,
		}))
	}
	return out, nil
}

// Identification is the outcome of one slot's §4 matching.
type Identification struct {
	Terminal  string
	SlotStart time.Time
	SatID     int     // identified satellite
	Distance  float64 // DTW distance of the winner
	Margin    float64 // runner-up distance minus winner distance
	// TrackLen is the number of sky points recovered from the XOR diff.
	TrackLen int
	// Dropped is the number of in-view candidates lost to propagation
	// errors mid-slot. Non-zero means the candidate set was incomplete
	// and the identification should be treated with suspicion.
	Dropped int
}

// IdentifyFromMaps runs the full §4 pipeline on two consecutive
// obstruction-map snapshots.
func (id *Identifier) IdentifyFromMaps(prev, cur *obstruction.Map, vp geo.VantagePoint, slotStart time.Time) (Identification, error) {
	return id.IdentifyFromMapsSnapshot(prev, cur, vp, slotStart, nil)
}

// IdentifyFromMapsSnapshot is IdentifyFromMaps with an optional
// precomputed constellation snapshot for slotStart (nil propagates one
// internally). Results are identical either way.
func (id *Identifier) IdentifyFromMapsSnapshot(prev, cur *obstruction.Map, vp geo.VantagePoint, slotStart time.Time, snap []constellation.SatState) (Identification, error) {
	return id.IdentifyFromMapsMatcher(prev, cur, vp, slotStart, snap, nil)
}

// IdentifyFromMapsMatcher is IdentifyFromMapsSnapshot with an optional
// reusable dtw.Matcher (nil uses a fresh one). The campaign engine
// passes one matcher per worker so its scratch buffers and pruning
// bars amortize across the whole run; results are bit-identical at
// every choice of matcher, including the brute-force path selected by
// DisablePruning.
func (id *Identifier) IdentifyFromMapsMatcher(prev, cur *obstruction.Map, vp geo.VantagePoint, slotStart time.Time, snap []constellation.SatState, matcher *dtw.Matcher) (Identification, error) {
	diff := obstruction.XOR(prev, cur)
	track := diff.Track()
	if len(track) < 2 {
		return Identification{}, fmt.Errorf("core: slot %v at %s: XOR diff has %d points (satellite unchanged or overlapping trajectory)",
			slotStart, vp.Name, len(track))
	}
	observed := dtw.FromPolarTrack(track)
	if snap == nil {
		snap = id.cons.Snapshot(slotStart)
	}
	cands, dropped := id.CandidateTracksFromSnapshot(snap, vp, slotStart)
	if len(cands) == 0 {
		return Identification{}, fmt.Errorf("core: slot %v at %s: no candidate satellites in view (%d dropped by propagation errors)", slotStart, vp.Name, dropped)
	}
	out := Identification{Terminal: vp.Name, SlotStart: slotStart, TrackLen: len(track), Dropped: dropped}
	if id.UseNaiveMatcher {
		m, err := dtw.NaiveNearestEndpoint(observed, cands)
		if err != nil {
			return Identification{}, fmt.Errorf("core: naive match at %s: %w", vp.Name, err)
		}
		out.SatID = m.ID
		out.Distance = m.Distance
		return out, nil
	}
	var best dtw.Match
	var margin float64
	var err error
	if id.DisablePruning {
		best, margin, err = dtw.Identify(observed, cands)
	} else {
		if matcher == nil {
			matcher = &dtw.Matcher{}
		}
		best, margin, err = matcher.Identify(observed, cands)
	}
	if err != nil {
		return Identification{}, fmt.Errorf("core: dtw match at %s: %w", vp.Name, err)
	}
	out.SatID = best.ID
	out.Distance = best.Distance
	out.Margin = margin
	return out, nil
}

// ServingTrack samples the serving satellite's sky-track for a slot
// the way dish firmware records it: look angles sampled along the
// slot, including below-mask points (PaintTrack clips them).
func (id *Identifier) ServingTrack(satID int, vp geo.VantagePoint, slotStart time.Time) ([]obstruction.PolarPoint, error) {
	sat := id.cons.ByID(satID)
	if sat == nil {
		return nil, fmt.Errorf("core: unknown satellite %d", satID)
	}
	return id.samplePolarTrack(sat, vp.Location, slotStart)
}

// PaintServingTrack renders the serving satellite's sky-track for a
// slot into the map, drawn as a connected stroke.
func (id *Identifier) PaintServingTrack(m *obstruction.Map, satID int, vp geo.VantagePoint, slotStart time.Time) error {
	pts, err := id.ServingTrack(satID, vp, slotStart)
	if err != nil {
		return err
	}
	m.PaintTrack(pts)
	return nil
}
