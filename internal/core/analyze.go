package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/stats"
)

// TerminalCDF pairs the available-vs-chosen empirical CDFs for one
// terminal — the solid and dotted line of one color in Figures 4/5/7.
type TerminalCDF struct {
	Terminal        string
	Available       [][2]float64
	Chosen          [][2]float64
	MedianAvailable float64
	MedianChosen    float64
}

// splitByTerminal groups observations and drops slots without a chosen
// satellite.
func splitByTerminal(obs []Observation) (map[string][]Observation, []string, error) {
	if len(obs) == 0 {
		return nil, nil, fmt.Errorf("core: no observations")
	}
	m := map[string][]Observation{}
	for _, o := range obs {
		if _, ok := o.Chosen(); !ok {
			continue
		}
		m[o.Terminal] = append(m[o.Terminal], o)
	}
	if len(m) == 0 {
		return nil, nil, fmt.Errorf("core: no observations with an identified chosen satellite")
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return m, names, nil
}

// AOEAnalysis reproduces Figure 4: the angle-of-elevation distribution
// of chosen satellites sits far above that of available ones.
type AOEAnalysis struct {
	PerTerminal []TerminalCDF
	// MedianLiftDeg averages (median chosen − median available) across
	// terminals; the paper reports 22.9°.
	MedianLiftDeg float64
	// HighBandChosenFrac / HighBandAvailableFrac are the fractions with
	// AOE in [45°, 90°]; the paper reports ~80% vs ~30%.
	HighBandChosenFrac    float64
	HighBandAvailableFrac float64
}

// AnalyzeAOE computes the Figure 4 series.
func AnalyzeAOE(obs []Observation, cdfPoints int) (*AOEAnalysis, error) {
	byTerm, names, err := splitByTerminal(obs)
	if err != nil {
		return nil, err
	}
	out := &AOEAnalysis{}
	var allChosen, allAvail []float64
	for _, name := range names {
		var avail, chosen []float64
		for _, o := range byTerm[name] {
			c, _ := o.Chosen()
			chosen = append(chosen, c.ElevationDeg)
			for _, a := range o.Available {
				avail = append(avail, a.ElevationDeg)
			}
		}
		tc, err := buildCDF(name, avail, chosen, cdfPoints)
		if err != nil {
			return nil, err
		}
		out.PerTerminal = append(out.PerTerminal, tc)
		out.MedianLiftDeg += tc.MedianChosen - tc.MedianAvailable
		allChosen = append(allChosen, chosen...)
		allAvail = append(allAvail, avail...)
	}
	out.MedianLiftDeg /= float64(len(out.PerTerminal))
	high := func(v float64) bool { return v >= 45 }
	out.HighBandChosenFrac = stats.Proportion(allChosen, high)
	out.HighBandAvailableFrac = stats.Proportion(allAvail, high)
	return out, nil
}

func buildCDF(name string, avail, chosen []float64, points int) (TerminalCDF, error) {
	ea, err := stats.NewECDF(avail)
	if err != nil {
		return TerminalCDF{}, fmt.Errorf("core: %s available: %w", name, err)
	}
	ec, err := stats.NewECDF(chosen)
	if err != nil {
		return TerminalCDF{}, fmt.Errorf("core: %s chosen: %w", name, err)
	}
	return TerminalCDF{
		Terminal:        name,
		Available:       ea.Points(points),
		Chosen:          ec.Points(points),
		MedianAvailable: stats.Median(avail),
		MedianChosen:    stats.Median(chosen),
	}, nil
}

// AzimuthAnalysis reproduces Figure 5: chosen azimuths skew north
// except where local obstructions intervene.
type AzimuthAnalysis struct {
	PerTerminal []TerminalCDF
	// NorthChosenFrac / NorthAvailableFrac are averaged over the
	// terminals in the given set (the paper: 82% vs 58%, excluding the
	// obstructed Ithaca site).
	NorthChosenFrac    map[string]float64
	NorthAvailableFrac map[string]float64
	// NWChosenFrac is the fraction of chosen satellites in the
	// northwest quadrant per terminal; the paper's Ithaca terminal
	// shows 9.7% vs 55.4% elsewhere.
	NWChosenFrac map[string]float64
}

// AnalyzeAzimuth computes the Figure 5 series.
func AnalyzeAzimuth(obs []Observation, cdfPoints int) (*AzimuthAnalysis, error) {
	byTerm, names, err := splitByTerminal(obs)
	if err != nil {
		return nil, err
	}
	out := &AzimuthAnalysis{
		NorthChosenFrac:    map[string]float64{},
		NorthAvailableFrac: map[string]float64{},
		NWChosenFrac:       map[string]float64{},
	}
	for _, name := range names {
		var avail, chosen []float64
		for _, o := range byTerm[name] {
			c, _ := o.Chosen()
			chosen = append(chosen, c.AzimuthDeg)
			for _, a := range o.Available {
				avail = append(avail, a.AzimuthDeg)
			}
		}
		tc, err := buildCDF(name, avail, chosen, cdfPoints)
		if err != nil {
			return nil, err
		}
		out.PerTerminal = append(out.PerTerminal, tc)
		north := func(az float64) bool { return isNorth(az) }
		out.NorthChosenFrac[name] = stats.Proportion(chosen, north)
		out.NorthAvailableFrac[name] = stats.Proportion(avail, north)
		out.NWChosenFrac[name] = stats.Proportion(chosen, func(az float64) bool { return quadrant(az) == "NW" })
	}
	return out, nil
}

// LaunchBin is one year-month launch batch's pick statistics.
type LaunchBin struct {
	Month     time.Time
	Picked    int // slots in which a satellite from this batch was picked
	Available int // slot-satellite pairs from this batch that were available
	Ratio     float64
}

// LaunchAnalysis reproduces Figure 6: the probability of picking a
// satellite rises with its launch date.
type LaunchAnalysis struct {
	PerTerminal map[string][]LaunchBin
	// Pearson correlates batch date (as months since the first batch)
	// with pick ratio, per terminal. The paper's mean (excluding the
	// obstructed NY site) is 0.41.
	Pearson     map[string]float64
	MeanPearson float64
	// Excluded lists terminals left out of the mean (obstructed sites).
	Excluded []string
}

// AnalyzeLaunch computes the Figure 6 series. excluded names terminals
// to keep out of the mean correlation (the paper excludes New York).
func AnalyzeLaunch(obs []Observation, excluded ...string) (*LaunchAnalysis, error) {
	byTerm, names, err := splitByTerminal(obs)
	if err != nil {
		return nil, err
	}
	skip := map[string]bool{}
	for _, e := range excluded {
		skip[e] = true
	}
	out := &LaunchAnalysis{
		PerTerminal: map[string][]LaunchBin{},
		Pearson:     map[string]float64{},
		Excluded:    excluded,
	}
	n := 0
	for _, name := range names {
		bins := map[time.Time]*LaunchBin{}
		for _, o := range byTerm[name] {
			c, _ := o.Chosen()
			for _, a := range o.Available {
				key := monthOf(a.LaunchDate)
				b := bins[key]
				if b == nil {
					b = &LaunchBin{Month: key}
					bins[key] = b
				}
				b.Available++
			}
			b := bins[monthOf(c.LaunchDate)]
			b.Picked++
		}
		list := make([]LaunchBin, 0, len(bins))
		for _, b := range bins {
			if b.Available > 0 {
				b.Ratio = float64(b.Picked) / float64(b.Available)
			}
			list = append(list, *b)
		}
		sort.Slice(list, func(i, j int) bool { return list[i].Month.Before(list[j].Month) })
		out.PerTerminal[name] = list

		if len(list) >= 2 {
			x := make([]float64, len(list))
			y := make([]float64, len(list))
			for i, b := range list {
				x[i] = b.Month.Sub(list[0].Month).Hours() / (24 * 30.44)
				y[i] = b.Ratio
			}
			if r, err := stats.Pearson(x, y); err == nil {
				out.Pearson[name] = r
				if !skip[name] {
					out.MeanPearson += r
					n++
				}
			}
		}
	}
	if n > 0 {
		out.MeanPearson /= float64(n)
	}
	return out, nil
}

func monthOf(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
}

// SunlitCDFs carries the four Figure 7 series for one terminal.
type SunlitCDFs struct {
	Terminal     string
	DarkChosen   [][2]float64
	SunlitChosen [][2]float64
	DarkAvail    [][2]float64
	SunlitAvail  [][2]float64
}

// SunlitAnalysis reproduces §5.3 and Figure 7.
type SunlitAnalysis struct {
	PerTerminal []SunlitCDFs
	// MixedSlots counts slots with at least one sunlit and one dark
	// satellite available.
	MixedSlots int
	// SunlitPickRate is the fraction of mixed slots where the scheduler
	// chose a sunlit satellite (paper: 72.3%).
	SunlitPickRate float64
	// MinDarkShareWhenDarkPicked is the smallest dark/available
	// fraction among mixed slots in which a dark satellite was chosen
	// (paper: dark picks only happen when ≥ 35% of availability is
	// dark).
	MinDarkShareWhenDarkPicked float64
	// HighAOEFracDark / HighAOEFracSunlit are the fractions of chosen
	// dark (resp. sunlit) satellites above 60° AOE (paper: 82% vs 54%).
	HighAOEFracDark   float64
	HighAOEFracSunlit float64
	// DarkChosenAOELiftDeg is the median chosen-dark AOE minus median
	// chosen-sunlit AOE (paper: ~29° averaged over locations).
	DarkChosenAOELiftDeg float64
}

// AnalyzeSunlit computes the Figure 7 series over mixed slots.
func AnalyzeSunlit(obs []Observation, cdfPoints int) (*SunlitAnalysis, error) {
	byTerm, names, err := splitByTerminal(obs)
	if err != nil {
		return nil, err
	}
	out := &SunlitAnalysis{MinDarkShareWhenDarkPicked: 1}
	var darkChosenAll, sunlitChosenAll []float64
	sunlitPicks := 0
	darkPicked := false
	for _, name := range names {
		var dc, sc, da, sa []float64
		for _, o := range byTerm[name] {
			nDark, nSunlit := 0, 0
			for _, a := range o.Available {
				if a.Sunlit {
					nSunlit++
				} else {
					nDark++
				}
			}
			if nDark == 0 || nSunlit == 0 {
				continue // not a mixed slot
			}
			out.MixedSlots++
			c, _ := o.Chosen()
			for _, a := range o.Available {
				if a.Sunlit {
					sa = append(sa, a.ElevationDeg)
				} else {
					da = append(da, a.ElevationDeg)
				}
			}
			if c.Sunlit {
				sunlitPicks++
				sc = append(sc, c.ElevationDeg)
				sunlitChosenAll = append(sunlitChosenAll, c.ElevationDeg)
			} else {
				darkPicked = true
				dc = append(dc, c.ElevationDeg)
				darkChosenAll = append(darkChosenAll, c.ElevationDeg)
				share := float64(nDark) / float64(nDark+nSunlit)
				if share < out.MinDarkShareWhenDarkPicked {
					out.MinDarkShareWhenDarkPicked = share
				}
			}
		}
		cdfs := SunlitCDFs{Terminal: name}
		// Some series can legitimately be empty (a terminal may never
		// pick a dark satellite); only build the non-empty ones.
		if e, err := stats.NewECDF(dc); err == nil {
			cdfs.DarkChosen = e.Points(cdfPoints)
		}
		if e, err := stats.NewECDF(sc); err == nil {
			cdfs.SunlitChosen = e.Points(cdfPoints)
		}
		if e, err := stats.NewECDF(da); err == nil {
			cdfs.DarkAvail = e.Points(cdfPoints)
		}
		if e, err := stats.NewECDF(sa); err == nil {
			cdfs.SunlitAvail = e.Points(cdfPoints)
		}
		out.PerTerminal = append(out.PerTerminal, cdfs)
	}
	if out.MixedSlots > 0 {
		out.SunlitPickRate = float64(sunlitPicks) / float64(out.MixedSlots)
	}
	if !darkPicked {
		out.MinDarkShareWhenDarkPicked = 0
	}
	high60 := func(v float64) bool { return v > 60 }
	out.HighAOEFracDark = stats.Proportion(darkChosenAll, high60)
	out.HighAOEFracSunlit = stats.Proportion(sunlitChosenAll, high60)
	if len(darkChosenAll) > 0 && len(sunlitChosenAll) > 0 {
		out.DarkChosenAOELiftDeg = stats.Median(darkChosenAll) - stats.Median(sunlitChosenAll)
	}
	return out, nil
}
