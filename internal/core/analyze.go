package core

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// The §5 analyses come in two shapes: incremental accumulators (see
// accumulate.go) that consume a stream of observations one at a time,
// and the batch functions below, which are thin wrappers feeding a
// slice through the matching accumulator. The wrappers exist for
// callers that already hold all observations; anything operating at
// campaign scale should push into the accumulators directly (e.g.
// through internal/pipeline) and never materialize the slice.

// TerminalCDF pairs the available-vs-chosen empirical CDFs for one
// terminal — the solid and dotted line of one color in Figures 4/5/7.
type TerminalCDF struct {
	Terminal        string
	Available       [][2]float64
	Chosen          [][2]float64
	MedianAvailable float64
	MedianChosen    float64
}

// AOEAnalysis reproduces Figure 4: the angle-of-elevation distribution
// of chosen satellites sits far above that of available ones.
type AOEAnalysis struct {
	PerTerminal []TerminalCDF
	// MedianLiftDeg averages (median chosen − median available) across
	// terminals; the paper reports 22.9°.
	MedianLiftDeg float64
	// HighBandChosenFrac / HighBandAvailableFrac are the fractions with
	// AOE in [45°, 90°]; the paper reports ~80% vs ~30%.
	HighBandChosenFrac    float64
	HighBandAvailableFrac float64
}

// AnalyzeAOE computes the Figure 4 series (batch wrapper over
// AOEAccumulator).
func AnalyzeAOE(obs []Observation, cdfPoints int) (*AOEAnalysis, error) {
	acc := NewAOEAccumulator(cdfPoints)
	feedAll(acc, obs)
	return acc.Finalize()
}

// AzimuthAnalysis reproduces Figure 5: chosen azimuths skew north
// except where local obstructions intervene.
type AzimuthAnalysis struct {
	PerTerminal []TerminalCDF
	// NorthChosenFrac / NorthAvailableFrac are averaged over the
	// terminals in the given set (the paper: 82% vs 58%, excluding the
	// obstructed Ithaca site).
	NorthChosenFrac    map[string]float64
	NorthAvailableFrac map[string]float64
	// NWChosenFrac is the fraction of chosen satellites in the
	// northwest quadrant per terminal; the paper's Ithaca terminal
	// shows 9.7% vs 55.4% elsewhere.
	NWChosenFrac map[string]float64
}

// AnalyzeAzimuth computes the Figure 5 series (batch wrapper over
// AzimuthAccumulator).
func AnalyzeAzimuth(obs []Observation, cdfPoints int) (*AzimuthAnalysis, error) {
	acc := NewAzimuthAccumulator(cdfPoints)
	feedAll(acc, obs)
	return acc.Finalize()
}

// LaunchBin is one year-month launch batch's pick statistics.
type LaunchBin struct {
	Month     time.Time
	Picked    int // slots in which a satellite from this batch was picked
	Available int // slot-satellite pairs from this batch that were available
	Ratio     float64
}

// LaunchAnalysis reproduces Figure 6: the probability of picking a
// satellite rises with its launch date.
type LaunchAnalysis struct {
	PerTerminal map[string][]LaunchBin
	// Pearson correlates batch date (as months since the first batch)
	// with pick ratio, per terminal. The paper's mean (excluding the
	// obstructed NY site) is 0.41.
	Pearson     map[string]float64
	MeanPearson float64
	// Excluded lists terminals left out of the mean (obstructed sites).
	Excluded []string
}

// AnalyzeLaunch computes the Figure 6 series (batch wrapper over
// LaunchAccumulator). excluded names terminals to keep out of the mean
// correlation (the paper excludes New York).
func AnalyzeLaunch(obs []Observation, excluded ...string) (*LaunchAnalysis, error) {
	acc := NewLaunchAccumulator(excluded...)
	feedAll(acc, obs)
	return acc.Finalize()
}

func monthOf(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
}

// SunlitCDFs carries the four Figure 7 series for one terminal.
type SunlitCDFs struct {
	Terminal     string
	DarkChosen   [][2]float64
	SunlitChosen [][2]float64
	DarkAvail    [][2]float64
	SunlitAvail  [][2]float64
}

// SunlitAnalysis reproduces §5.3 and Figure 7.
type SunlitAnalysis struct {
	PerTerminal []SunlitCDFs
	// MixedSlots counts slots with at least one sunlit and one dark
	// satellite available.
	MixedSlots int
	// SunlitPickRate is the fraction of mixed slots where the scheduler
	// chose a sunlit satellite (paper: 72.3%).
	SunlitPickRate float64
	// MinDarkShareWhenDarkPicked is the smallest dark/available
	// fraction among mixed slots in which a dark satellite was chosen
	// (paper: dark picks only happen when ≥ 35% of availability is
	// dark).
	MinDarkShareWhenDarkPicked float64
	// HighAOEFracDark / HighAOEFracSunlit are the fractions of chosen
	// dark (resp. sunlit) satellites above 60° AOE (paper: 82% vs 54%).
	HighAOEFracDark   float64
	HighAOEFracSunlit float64
	// DarkChosenAOELiftDeg is the median chosen-dark AOE minus median
	// chosen-sunlit AOE (paper: ~29° averaged over locations).
	DarkChosenAOELiftDeg float64
}

// AnalyzeSunlit computes the Figure 7 series over mixed slots (batch
// wrapper over SunlitAccumulator).
func AnalyzeSunlit(obs []Observation, cdfPoints int) (*SunlitAnalysis, error) {
	acc := NewSunlitAccumulator(cdfPoints)
	feedAll(acc, obs)
	return acc.Finalize()
}

// feedAll pushes a slice through a consumer. The §5 accumulators never
// return Add errors, so none can surface here; consumers that do error
// (e.g. DatasetBuilder) are fed explicitly by their wrappers.
func feedAll(acc ObservationConsumer, obs []Observation) {
	for i := range obs {
		_ = acc.Add(obs[i])
	}
}

func buildCDF(name string, avail, chosen []float64, points int) (TerminalCDF, error) {
	ea, err := stats.NewECDF(avail)
	if err != nil {
		return TerminalCDF{}, fmt.Errorf("core: %s available: %w", name, err)
	}
	ec, err := stats.NewECDF(chosen)
	if err != nil {
		return TerminalCDF{}, fmt.Errorf("core: %s chosen: %w", name, err)
	}
	return TerminalCDF{
		Terminal:        name,
		Available:       ea.Points(points),
		Chosen:          ec.Points(points),
		MedianAvailable: stats.Median(avail),
		MedianChosen:    stats.Median(chosen),
	}, nil
}
