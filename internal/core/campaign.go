package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/constellation"
	"repro/internal/dtw"
	"repro/internal/obstruction"
	"repro/internal/scheduler"
)

// CampaignConfig drives a measurement campaign: the scheduler runs,
// each terminal's dish paints the serving satellite's track every
// slot, snapshots are taken every 15 seconds, terminals reset every
// ResetEvery slots (the paper resets every 10 minutes to keep XOR
// diffs clean), and the identification pipeline labels each slot.
type CampaignConfig struct {
	Scheduler  *scheduler.Global
	Identifier *Identifier
	Start      time.Time
	Slots      int
	// ResetEvery is the terminal reset cadence in slots. Default 40
	// (= 10 minutes).
	ResetEvery int
	// Oracle skips obstruction-map identification and labels each slot
	// with the scheduler's ground-truth allocation. Use it when only
	// the chosen-vs-available data matters (the §5/§6 analyses) and the
	// identification step has been validated separately.
	Oracle bool
	// Workers bounds the worker pool for per-terminal slot processing
	// (track painting, XOR diffing, DTW identification). 0 selects
	// runtime.GOMAXPROCS(0); 1 forces the serial engine. Results are
	// byte-identical at every worker count: each terminal's dish state
	// is owned by exactly one worker and records merge back in
	// deterministic (slot, terminal) order.
	Workers int
}

// SlotRecord is one slot × terminal campaign outcome.
type SlotRecord struct {
	Observation
	// TrueID is the scheduler's ground-truth allocation (0 = none).
	TrueID int
	// IdentifiedID is the §4 pipeline's answer (0 when skipped).
	IdentifiedID int
	// Margin is the DTW decision margin (0 in oracle mode).
	Margin float64
	// SkipReason is non-empty when identification was not attempted or
	// failed; the record still carries the available set.
	SkipReason string
}

// CampaignResult aggregates a run.
type CampaignResult struct {
	Records []SlotRecord
	// Identification validation (non-oracle runs).
	Attempted, Correct, Failed int
}

// Accuracy returns the identification accuracy over attempted slots.
func (r *CampaignResult) Accuracy() float64 {
	if r.Attempted == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Attempted)
}

// Observations extracts the per-slot observations with a valid chosen
// satellite, ready for the §5 analyses and §6 model.
func (r *CampaignResult) Observations() []Observation {
	out := make([]Observation, 0, len(r.Records))
	for _, rec := range r.Records {
		if rec.ChosenIdx >= 0 {
			out = append(out, rec.Observation)
		}
	}
	return out
}

// RunCampaign executes the campaign. Long campaigns are cancellable
// through ctx; on cancellation the partial result is discarded and
// ctx's error returned.
func RunCampaign(ctx context.Context, cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("core: nil scheduler")
	}
	if cfg.Identifier == nil {
		return nil, fmt.Errorf("core: nil identifier")
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("core: campaign needs slots > 0, got %d", cfg.Slots)
	}
	if cfg.ResetEvery == 0 {
		cfg.ResetEvery = 40
	}
	terms := cfg.Scheduler.Terminals()
	for _, t := range terms {
		if err := validateVantagePoint(t.VantagePoint); err != nil {
			return nil, err
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(terms) {
		workers = len(terms)
	}
	if workers <= 1 {
		return runCampaignSerial(ctx, cfg, terms)
	}
	return runCampaignParallel(ctx, cfg, terms, workers)
}

// runSlotTerminal produces the record for one (slot, terminal) cell.
// It is the single slot-processing body shared by the serial and
// parallel engines, so the two cannot drift apart. m is the terminal's
// dish state; the caller guarantees exclusive ownership. matcher is
// the caller's reusable DTW engine (one per worker), likewise owned
// exclusively; results are bit-identical at any matcher because
// pruning is exact.
func runSlotTerminal(cfg *CampaignConfig, term scheduler.Terminal, m *obstruction.Map,
	matcher *dtw.Matcher, slotStart time.Time, snap []constellation.SatState,
	allocs []scheduler.Allocation, attempted, correct, failed *int) SlotRecord {
	var alloc scheduler.Allocation
	for _, a := range allocs {
		if a.Terminal == term.Name {
			alloc = a
			break
		}
	}
	rec := SlotRecord{
		Observation: Observation{
			Terminal:  term.Name,
			SlotStart: slotStart,
			LocalHour: LocalHour(term.VantagePoint, slotStart),
			Available: AvailableSet(snap, term.VantagePoint, slotStart, cfg.Identifier.MinElevationDeg),
			ChosenIdx: -1,
		},
		TrueID: alloc.SatID,
	}

	switch {
	case alloc.SatID == 0:
		rec.SkipReason = "no satellite allocated"
	case cfg.Oracle:
		rec.IdentifiedID = alloc.SatID
		rec.ChosenIdx = indexOf(rec.Available, alloc.SatID)
		if rec.ChosenIdx < 0 {
			rec.SkipReason = "allocated satellite not in public available set"
		}
	default:
		prev := m.Clone()
		if err := cfg.Identifier.PaintServingTrack(m, alloc.SatID, term.VantagePoint, slotStart); err != nil {
			rec.SkipReason = err.Error()
			break
		}
		ident, err := cfg.Identifier.IdentifyFromMapsMatcher(prev, m, term.VantagePoint, slotStart, snap, matcher)
		if err != nil {
			rec.SkipReason = err.Error()
			*failed++
			break
		}
		*attempted++
		rec.IdentifiedID = ident.SatID
		rec.Margin = ident.Margin
		if ident.SatID == alloc.SatID {
			*correct++
		}
		rec.ChosenIdx = indexOf(rec.Available, ident.SatID)
		if rec.ChosenIdx < 0 {
			rec.SkipReason = "identified satellite not in public available set"
		}
	}
	return rec
}

// runCampaignSerial is the single-threaded engine: one loop over
// slots × terminals, checking ctx once per slot.
func runCampaignSerial(ctx context.Context, cfg CampaignConfig, terms []scheduler.Terminal) (*CampaignResult, error) {
	// Per-terminal dish state; one matcher serves the whole run.
	maps := make(map[string]*obstruction.Map, len(terms))
	for _, t := range terms {
		maps[t.Name] = obstruction.New()
	}
	matcher := &dtw.Matcher{}

	res := &CampaignResult{}
	start := scheduler.EpochStart(cfg.Start)
	for slot := 0; slot < cfg.Slots; slot++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		slotStart := start.Add(time.Duration(slot) * scheduler.Period)
		snap := cfg.Identifier.cons.Snapshot(slotStart)
		allocs := cfg.Scheduler.Allocate(slotStart)

		if cfg.ResetEvery > 0 && slot%cfg.ResetEvery == 0 && slot > 0 {
			for _, m := range maps {
				m.Reset()
			}
		}

		for _, t := range terms {
			rec := runSlotTerminal(&cfg, t, maps[t.Name], matcher, slotStart, snap, allocs,
				&res.Attempted, &res.Correct, &res.Failed)
			res.Records = append(res.Records, rec)
		}
	}
	return res, nil
}

// slotItem is one slot's ground-truth inputs, produced serially and
// fanned out to every worker.
type slotItem struct {
	slot      int
	slotStart time.Time
	allocs    []scheduler.Allocation
}

// runCampaignParallel is the concurrent engine. Division of labor:
//
//   - The producer runs the scheduler serially in slot order — the
//     controller is stateful (hidden load walk, score-noise RNG), so
//     its call sequence must match the serial engine exactly.
//   - Terminals are sharded across workers by index (terminal i goes
//     to worker i % workers), so each terminal's obstruction map is
//     owned by exactly one goroutine and evolves in slot order.
//   - Constellation snapshots are pure and shared: computed once per
//     slot by whichever worker needs it first, released after the last
//     terminal consumes it so long campaigns stay bounded in memory.
//   - Records land in a preallocated slice at (slot*nTerms + terminal),
//     which is byte-identical to the serial engine's append order, and
//     counters merge after the pool drains.
func runCampaignParallel(ctx context.Context, cfg CampaignConfig, terms []scheduler.Terminal, workers int) (*CampaignResult, error) {
	nTerms := len(terms)
	records := make([]SlotRecord, cfg.Slots*nTerms)

	// Lazily computed, refcounted per-slot snapshots.
	snaps := make([][]constellation.SatState, cfg.Slots)
	snapOnce := make([]sync.Once, cfg.Slots)
	snapLeft := make([]atomic.Int32, cfg.Slots)
	for i := range snapLeft {
		snapLeft[i].Store(int32(nTerms))
	}
	start := scheduler.EpochStart(cfg.Start)
	slotTime := func(slot int) time.Time {
		return start.Add(time.Duration(slot) * scheduler.Period)
	}
	getSnap := func(slot int) []constellation.SatState {
		snapOnce[slot].Do(func() {
			snaps[slot] = cfg.Identifier.cons.Snapshot(slotTime(slot))
		})
		return snaps[slot]
	}
	releaseSnap := func(slot int) {
		if snapLeft[slot].Add(-1) == 0 {
			snaps[slot] = nil
		}
	}

	type counters struct{ attempted, correct, failed int }
	chans := make([]chan slotItem, workers)
	for w := range chans {
		// A small buffer decouples the producer from the slowest
		// worker without letting snapshots pile up.
		chans[w] = make(chan slotItem, 4)
	}
	tallies := make([]counters, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Dish state for the terminals this worker owns, plus the
			// worker's own matcher (scratch buffers are not shareable).
			maps := make(map[string]*obstruction.Map)
			for ti := w; ti < nTerms; ti += workers {
				maps[terms[ti].Name] = obstruction.New()
			}
			matcher := &dtw.Matcher{}
			var c counters
			for item := range chans[w] {
				if ctx.Err() != nil {
					continue // drain; the run is abandoned
				}
				if cfg.ResetEvery > 0 && item.slot%cfg.ResetEvery == 0 && item.slot > 0 {
					for _, m := range maps {
						m.Reset()
					}
				}
				for ti := w; ti < nTerms; ti += workers {
					t := terms[ti]
					rec := runSlotTerminal(&cfg, t, maps[t.Name], matcher, item.slotStart,
						getSnap(item.slot), item.allocs,
						&c.attempted, &c.correct, &c.failed)
					releaseSnap(item.slot)
					records[item.slot*nTerms+ti] = rec
				}
			}
			tallies[w] = c
		}(w)
	}

	var cancelErr error
produce:
	for slot := 0; slot < cfg.Slots; slot++ {
		if err := ctx.Err(); err != nil {
			cancelErr = err
			break
		}
		t := slotTime(slot)
		item := slotItem{slot: slot, slotStart: t, allocs: cfg.Scheduler.Allocate(t)}
		for _, ch := range chans {
			select {
			case ch <- item:
			case <-ctx.Done():
				cancelErr = ctx.Err()
				break produce
			}
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if cancelErr != nil {
		return nil, cancelErr
	}

	res := &CampaignResult{Records: records}
	for _, c := range tallies {
		res.Attempted += c.attempted
		res.Correct += c.correct
		res.Failed += c.failed
	}
	return res, nil
}
