package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/constellation"
	"repro/internal/dtw"
	"repro/internal/obstruction"
	"repro/internal/scheduler"
)

// CampaignConfig drives a measurement campaign: the scheduler runs,
// each terminal's dish paints the serving satellite's track every
// slot, snapshots are taken every 15 seconds, terminals reset every
// ResetEvery slots (the paper resets every 10 minutes to keep XOR
// diffs clean), and the identification pipeline labels each slot.
type CampaignConfig struct {
	Scheduler  *scheduler.Global
	Identifier *Identifier
	Start      time.Time
	Slots      int
	// ResetEvery is the terminal reset cadence in slots. Default 40
	// (= 10 minutes).
	ResetEvery int
	// Oracle skips obstruction-map identification and labels each slot
	// with the scheduler's ground-truth allocation. Use it when only
	// the chosen-vs-available data matters (the §5/§6 analyses) and the
	// identification step has been validated separately.
	Oracle bool
	// Workers bounds the worker pool for per-terminal slot processing
	// (track painting, XOR diffing, DTW identification). 0 selects
	// runtime.GOMAXPROCS(0); 1 forces the serial engine. Results are
	// byte-identical at every worker count: each terminal's dish state
	// is owned by exactly one worker and records merge back in
	// deterministic (slot, terminal) order.
	Workers int
	// SnapshotWorkers is the fan-out for the per-slot constellation
	// propagation sweep (orthogonal to Workers, which shards
	// terminals). 0 keeps the snapshot cache's current setting; <0
	// selects GOMAXPROCS; 1 forces the serial sweep. Snapshots are
	// byte-identical at every value.
	SnapshotWorkers int
	// Metrics, when non-nil, receives engine counters and the optional
	// decision trace. Purely observational: record contents, ordering,
	// and determinism are unaffected at any worker count.
	Metrics *CampaignMetrics
	// Snapshots shares propagated snapshots and spatial indexes between
	// the campaign engine and the scheduler — pass the same cache to
	// scheduler.Config.Snapshots so each slot propagates once globally.
	// Nil creates a private cache.
	Snapshots *constellation.SnapshotCache
	// DisableIndex computes available sets with the linear scan instead
	// of the spatial index (ablation / equivalence testing). Records are
	// byte-identical either way.
	DisableIndex bool
	// Shard restricts record production and emission to the contiguous
	// terminal index range [Shard.Lo, Shard.Hi) in Terminals() order.
	// The scheduler still runs the FULL fleet every slot — it is
	// stateful (hidden load walk, score-noise RNG), so every shard must
	// replay the identical Allocate sequence — but per-terminal work
	// (available sets, dish painting, identification) and emission
	// happen only inside the range. Concatenating the emissions of a
	// partition of shards slot by slot in shard order reproduces the
	// unsharded stream byte for byte. The zero value means all
	// terminals. A sharded run forces the serial engine.
	Shard ShardRange
	// EmitFromSlot suppresses emission for slots below it — the journal
	// replay knob. The engine still processes every slot from 0 (dish
	// obstruction state and identification tallies accumulate across
	// slots), so Attempted/Correct/Failed cover the whole campaign, but
	// records, Records/Served/Skips stats, and the emit callback only
	// see slots >= EmitFromSlot. A resumed run forces the serial
	// engine.
	EmitFromSlot int
}

// ShardRange is a half-open terminal index range [Lo, Hi). The zero
// value selects every terminal.
type ShardRange struct {
	Lo, Hi int
}

// bounds resolves the range against a fleet of n terminals, mapping
// the zero value to [0, n).
func (s ShardRange) bounds(n int) (lo, hi int) {
	if s.Lo == 0 && s.Hi == 0 {
		return 0, n
	}
	return s.Lo, s.Hi
}

// validate rejects unusable configs with the historical messages.
func (c *CampaignConfig) validate() error {
	if c.Scheduler == nil {
		return fmt.Errorf("core: nil scheduler")
	}
	if c.Identifier == nil {
		return fmt.Errorf("core: nil identifier")
	}
	if c.Slots <= 0 {
		return fmt.Errorf("core: campaign needs slots > 0, got %d", c.Slots)
	}
	if c.EmitFromSlot < 0 || c.EmitFromSlot > c.Slots {
		return fmt.Errorf("core: emit-from slot %d outside campaign of %d slots", c.EmitFromSlot, c.Slots)
	}
	return nil
}

// resolveWorkers turns the Workers knob into an effective pool size
// for nTerms terminals.
func (c *CampaignConfig) resolveWorkers(nTerms int) int {
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nTerms {
		workers = nTerms
	}
	return workers
}

// SlotRecord is one slot × terminal campaign outcome.
type SlotRecord struct {
	Observation
	// TrueID is the scheduler's ground-truth allocation (0 = none).
	TrueID int
	// IdentifiedID is the §4 pipeline's answer (0 when skipped).
	IdentifiedID int
	// Margin is the DTW decision margin (0 in oracle mode).
	Margin float64
	// SkipReason is non-empty when identification was not attempted or
	// failed; the record still carries the available set.
	SkipReason string
}

// CampaignResult aggregates a run.
type CampaignResult struct {
	Records []SlotRecord
	// Identification validation (non-oracle runs).
	Attempted, Correct, Failed int
	// Skips histograms the non-empty SkipReasons across Records.
	Skips map[string]int

	obsOnce sync.Once
	obs     []Observation
}

// Accuracy returns the identification accuracy over attempted slots.
func (r *CampaignResult) Accuracy() float64 {
	if r.Attempted == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Attempted)
}

// Observations extracts the per-slot observations with a valid chosen
// satellite, ready for the §5 analyses and §6 model. The slice is
// built once and cached — repeated calls return the same backing
// array, so treat it as read-only.
func (r *CampaignResult) Observations() []Observation {
	r.obsOnce.Do(func() {
		r.obs = make([]Observation, 0, len(r.Records))
		for _, rec := range r.Records {
			if rec.ChosenIdx >= 0 {
				r.obs = append(r.obs, rec.Observation)
			}
		}
	})
	return r.obs
}

// RunCampaign executes the campaign and materializes every record —
// the batch entry point, now a thin wrapper over RunCampaignStream
// (which long campaigns should use directly: it runs in O(1) memory
// in the slot count). Long campaigns are cancellable through ctx; on
// cancellation the partial result is discarded and ctx's error
// returned.
func RunCampaign(ctx context.Context, cfg CampaignConfig) (*CampaignResult, error) {
	res := &CampaignResult{}
	if cfg.Slots > 0 && cfg.Scheduler != nil {
		res.Records = make([]SlotRecord, 0, cfg.Slots*len(cfg.Scheduler.Terminals()))
	}
	stats, err := RunCampaignStream(ctx, cfg, func(rec SlotRecord) error {
		res.Records = append(res.Records, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Attempted = stats.Attempted
	res.Correct = stats.Correct
	res.Failed = stats.Failed
	res.Skips = stats.Skips
	return res, nil
}

// slotScratch is per-worker reusable buffer space for the slot loop:
// the field-of-view sweep appends into fov instead of growing a fresh
// slice per (slot, terminal) cell. Owned by exactly one goroutine.
type slotScratch struct {
	fov []constellation.Visible
}

// runSlotTerminal produces the record for one (slot, terminal) cell.
// It is the single slot-processing body shared by the serial and
// parallel engines, so the two cannot drift apart. m is the terminal's
// dish state; the caller guarantees exclusive ownership. matcher and
// scratch are the caller's reusable per-worker buffers, likewise owned
// exclusively; results are bit-identical at any matcher because
// pruning is exact, and the fov scratch never escapes (availFromFov
// copies into the record).
func runSlotTerminal(cfg *CampaignConfig, term scheduler.Terminal, m *obstruction.Map,
	matcher *dtw.Matcher, scratch *slotScratch, slotStart time.Time, shared *constellation.SharedSnapshot,
	alloc scheduler.Allocation, attempted, correct, failed *int) SlotRecord {
	if cfg.DisableIndex {
		scratch.fov = constellation.AppendObserveFrom(scratch.fov[:0], term.VantagePoint.Location, shared.States, cfg.Identifier.MinElevationDeg)
	} else {
		scratch.fov = shared.Index().AppendObserveFrom(scratch.fov[:0], term.VantagePoint.Location, cfg.Identifier.MinElevationDeg)
	}
	avail := availFromFov(scratch.fov, slotStart)
	rec := SlotRecord{
		Observation: Observation{
			Terminal:  term.Name,
			SlotStart: slotStart,
			LocalHour: LocalHour(term.VantagePoint, slotStart),
			Available: avail,
			ChosenIdx: -1,
		},
		TrueID: alloc.SatID,
	}

	switch {
	case alloc.SatID == 0:
		rec.SkipReason = "no satellite allocated"
	case cfg.Oracle:
		rec.IdentifiedID = alloc.SatID
		rec.ChosenIdx = indexOf(rec.Available, alloc.SatID)
		if rec.ChosenIdx < 0 {
			rec.SkipReason = "allocated satellite not in public available set"
		}
	default:
		prev := m.Clone()
		if err := cfg.Identifier.PaintServingTrack(m, alloc.SatID, term.VantagePoint, slotStart); err != nil {
			rec.SkipReason = err.Error()
			break
		}
		ident, err := cfg.Identifier.IdentifyFromMapsMatcher(prev, m, term.VantagePoint, slotStart, shared.States, matcher)
		if err != nil {
			rec.SkipReason = err.Error()
			*failed++
			break
		}
		*attempted++
		rec.IdentifiedID = ident.SatID
		rec.Margin = ident.Margin
		if ident.SatID == alloc.SatID {
			*correct++
		}
		rec.ChosenIdx = indexOf(rec.Available, ident.SatID)
		if rec.ChosenIdx < 0 {
			rec.SkipReason = "identified satellite not in public available set"
		}
	}
	return rec
}

// slotItem is one slot's ground-truth inputs, produced serially and
// fanned out to every worker.
type slotItem struct {
	slot      int
	slotStart time.Time
	allocs    []scheduler.Allocation
}

// allocFor picks terminal ti's allocation from a slot's Allocate
// output. Allocate returns one allocation per terminal in Terminals()
// order, so the index lookup is O(1); the name check plus linear
// fallback guards the record pairing if that contract ever changes —
// at fleet scale the old per-terminal scan was O(terminals²) per slot.
func allocFor(allocs []scheduler.Allocation, ti int, name string) scheduler.Allocation {
	if ti < len(allocs) && allocs[ti].Terminal == name {
		return allocs[ti]
	}
	for _, a := range allocs {
		if a.Terminal == name {
			return a
		}
	}
	return scheduler.Allocation{}
}
