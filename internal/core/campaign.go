package core

import (
	"fmt"
	"time"

	"repro/internal/obstruction"
	"repro/internal/scheduler"
)

// CampaignConfig drives a measurement campaign: the scheduler runs,
// each terminal's dish paints the serving satellite's track every
// slot, snapshots are taken every 15 seconds, terminals reset every
// ResetEvery slots (the paper resets every 10 minutes to keep XOR
// diffs clean), and the identification pipeline labels each slot.
type CampaignConfig struct {
	Scheduler  *scheduler.Global
	Identifier *Identifier
	Start      time.Time
	Slots      int
	// ResetEvery is the terminal reset cadence in slots. Default 40
	// (= 10 minutes).
	ResetEvery int
	// Oracle skips obstruction-map identification and labels each slot
	// with the scheduler's ground-truth allocation. Use it when only
	// the chosen-vs-available data matters (the §5/§6 analyses) and the
	// identification step has been validated separately.
	Oracle bool
}

// SlotRecord is one slot × terminal campaign outcome.
type SlotRecord struct {
	Observation
	// TrueID is the scheduler's ground-truth allocation (0 = none).
	TrueID int
	// IdentifiedID is the §4 pipeline's answer (0 when skipped).
	IdentifiedID int
	// Margin is the DTW decision margin (0 in oracle mode).
	Margin float64
	// SkipReason is non-empty when identification was not attempted or
	// failed; the record still carries the available set.
	SkipReason string
}

// CampaignResult aggregates a run.
type CampaignResult struct {
	Records []SlotRecord
	// Identification validation (non-oracle runs).
	Attempted, Correct, Failed int
}

// Accuracy returns the identification accuracy over attempted slots.
func (r *CampaignResult) Accuracy() float64 {
	if r.Attempted == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Attempted)
}

// Observations extracts the per-slot observations with a valid chosen
// satellite, ready for the §5 analyses and §6 model.
func (r *CampaignResult) Observations() []Observation {
	out := make([]Observation, 0, len(r.Records))
	for _, rec := range r.Records {
		if rec.ChosenIdx >= 0 {
			out = append(out, rec.Observation)
		}
	}
	return out
}

// RunCampaign executes the campaign.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("core: nil scheduler")
	}
	if cfg.Identifier == nil {
		return nil, fmt.Errorf("core: nil identifier")
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("core: campaign needs slots > 0, got %d", cfg.Slots)
	}
	if cfg.ResetEvery == 0 {
		cfg.ResetEvery = 40
	}
	terms := cfg.Scheduler.Terminals()
	for _, t := range terms {
		if err := validateVantagePoint(t.VantagePoint); err != nil {
			return nil, err
		}
	}

	// Per-terminal dish state.
	maps := make(map[string]*obstruction.Map, len(terms))
	for _, t := range terms {
		maps[t.Name] = obstruction.New()
	}

	res := &CampaignResult{}
	start := scheduler.EpochStart(cfg.Start)
	for slot := 0; slot < cfg.Slots; slot++ {
		slotStart := start.Add(time.Duration(slot) * scheduler.Period)
		snap := cfg.Identifier.cons.Snapshot(slotStart)
		allocs := cfg.Scheduler.Allocate(slotStart)

		if cfg.ResetEvery > 0 && slot%cfg.ResetEvery == 0 && slot > 0 {
			for _, m := range maps {
				m.Reset()
			}
		}

		for _, t := range terms {
			var alloc scheduler.Allocation
			for _, a := range allocs {
				if a.Terminal == t.Name {
					alloc = a
					break
				}
			}
			rec := SlotRecord{
				Observation: Observation{
					Terminal:  t.Name,
					SlotStart: slotStart,
					LocalHour: LocalHour(t.VantagePoint, slotStart),
					Available: AvailableSet(snap, t.VantagePoint, slotStart, cfg.Identifier.MinElevationDeg),
					ChosenIdx: -1,
				},
				TrueID: alloc.SatID,
			}

			switch {
			case alloc.SatID == 0:
				rec.SkipReason = "no satellite allocated"
			case cfg.Oracle:
				rec.IdentifiedID = alloc.SatID
				rec.ChosenIdx = indexOf(rec.Available, alloc.SatID)
				if rec.ChosenIdx < 0 {
					rec.SkipReason = "allocated satellite not in public available set"
				}
			default:
				m := maps[t.Name]
				prev := m.Clone()
				if err := cfg.Identifier.PaintServingTrack(m, alloc.SatID, t.VantagePoint, slotStart); err != nil {
					rec.SkipReason = err.Error()
					break
				}
				ident, err := cfg.Identifier.IdentifyFromMaps(prev, m, t.VantagePoint, slotStart)
				if err != nil {
					rec.SkipReason = err.Error()
					res.Failed++
					break
				}
				res.Attempted++
				rec.IdentifiedID = ident.SatID
				rec.Margin = ident.Margin
				if ident.SatID == alloc.SatID {
					res.Correct++
				}
				rec.ChosenIdx = indexOf(rec.Available, ident.SatID)
				if rec.ChosenIdx < 0 {
					rec.SkipReason = "identified satellite not in public available set"
				}
			}
			res.Records = append(res.Records, rec)
		}
	}
	return res, nil
}
