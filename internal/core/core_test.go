package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/ml"
	"repro/internal/scheduler"
)

// Shared fixture: building a meaningful constellation + campaign is
// the expensive part, so the characterization tests share one oracle
// campaign run.
var (
	fixtureOnce sync.Once
	fixture     struct {
		cons  *constellation.Constellation
		sched *scheduler.Global
		ident *Identifier
		// oracle observations over many slots
		obs []Observation
	}
)

// testConstellation is a two-shell, reduced-density constellation that
// still gives each site a handful of candidates per slot.
func setupFixture(t testing.TB) {
	t.Helper()
	fixtureOnce.Do(func() {
		cons, err := constellation.New(constellation.Config{
			Shells: []constellation.Shell{
				{Name: "s1", AltitudeKm: 550, InclinationDeg: 53, Planes: 48, SatsPerPlane: 20, PhasingF: 17},
				{Name: "s2", AltitudeKm: 540, InclinationDeg: 53.2, Planes: 40, SatsPerPlane: 18, PhasingF: 13},
				{Name: "s3", AltitudeKm: 570, InclinationDeg: 70, Planes: 14, SatsPerPlane: 14, PhasingF: 5},
			},
			Seed: 31,
		})
		if err != nil {
			panic(err)
		}
		var terms []scheduler.Terminal
		for _, vp := range geo.StudyVantagePoints() {
			terms = append(terms, scheduler.Terminal{VantagePoint: vp})
		}
		sched, err := scheduler.NewGlobal(scheduler.Config{
			Constellation: cons,
			Terminals:     terms,
			Seed:          31,
		})
		if err != nil {
			panic(err)
		}
		ident, err := NewIdentifier(cons)
		if err != nil {
			panic(err)
		}
		res, err := RunCampaign(context.Background(), CampaignConfig{
			Scheduler:  sched,
			Identifier: ident,
			Start:      cons.Epoch.Add(time.Hour),
			Slots:      500,
			Oracle:     true,
		})
		if err != nil {
			panic(err)
		}
		fixture.cons = cons
		fixture.sched = sched
		fixture.ident = ident
		fixture.obs = res.Observations()
	})
	if len(fixture.obs) == 0 {
		t.Skip("fixture produced no observations")
	}
}

func TestCampaignValidation(t *testing.T) {
	setupFixture(t)
	if _, err := RunCampaign(context.Background(), CampaignConfig{}); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := RunCampaign(context.Background(), CampaignConfig{Scheduler: fixture.sched}); err == nil {
		t.Error("nil identifier accepted")
	}
	if _, err := RunCampaign(context.Background(), CampaignConfig{Scheduler: fixture.sched, Identifier: fixture.ident}); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestOracleObservationsShape(t *testing.T) {
	setupFixture(t)
	for _, o := range fixture.obs {
		c, ok := o.Chosen()
		if !ok {
			t.Fatal("Observations() returned a slot without chosen")
		}
		if c.ElevationDeg < 25 {
			t.Fatalf("chosen below mask: %v", c.ElevationDeg)
		}
		if len(o.Available) == 0 {
			t.Fatal("empty available set")
		}
		if o.LocalHour < 0 || o.LocalHour > 23 {
			t.Fatalf("local hour %d", o.LocalHour)
		}
		found := false
		for _, a := range o.Available {
			if a.ID == c.ID {
				found = true
			}
		}
		if !found {
			t.Fatal("chosen not in available")
		}
	}
}

// TestIdentificationAccuracy is the §4 validation: the obstruction-map
// + DTW pipeline must recover the scheduler's choice almost always
// (the paper's pilot study agreed with manual inspection >99%).
func TestIdentificationAccuracy(t *testing.T) {
	setupFixture(t)
	res, err := RunCampaign(context.Background(), CampaignConfig{
		Scheduler:  mustScheduler(t, fixture.cons, 77),
		Identifier: fixture.ident,
		Start:      fixture.cons.Epoch.Add(2 * time.Hour),
		Slots:      60,
		ResetEvery: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempted < 30 {
		t.Fatalf("only %d identifications attempted", res.Attempted)
	}
	if acc := res.Accuracy(); acc < 0.9 {
		t.Errorf("identification accuracy = %v, want >= 0.9 (paper: >0.99)", acc)
	}
}

func mustScheduler(t testing.TB, cons *constellation.Constellation, seed int64) *scheduler.Global {
	t.Helper()
	var terms []scheduler.Terminal
	for _, vp := range geo.StudyVantagePoints() {
		terms = append(terms, scheduler.Terminal{VantagePoint: vp})
	}
	s, err := scheduler.NewGlobal(scheduler.Config{Constellation: cons, Terminals: terms, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAOEPreference reproduces Figure 4's shape: chosen satellites sit
// well above available ones.
func TestAOEPreference(t *testing.T) {
	setupFixture(t)
	a, err := AnalyzeAOE(fixture.obs, 30)
	if err != nil {
		t.Fatal(err)
	}
	if a.MedianLiftDeg < 5 {
		t.Errorf("median AOE lift = %v deg, want clearly positive (paper: 22.9)", a.MedianLiftDeg)
	}
	if a.HighBandChosenFrac <= a.HighBandAvailableFrac {
		t.Errorf("high-band chosen %v <= available %v", a.HighBandChosenFrac, a.HighBandAvailableFrac)
	}
	if len(a.PerTerminal) == 0 {
		t.Fatal("no per-terminal CDFs")
	}
	for _, tc := range a.PerTerminal {
		if tc.MedianChosen <= tc.MedianAvailable {
			t.Errorf("%s: chosen median %v <= available %v", tc.Terminal, tc.MedianChosen, tc.MedianAvailable)
		}
	}
}

// TestAzimuthPreference reproduces Figure 5's shape: picks skew north,
// and the masked New York site picks far less from the NW.
func TestAzimuthPreference(t *testing.T) {
	setupFixture(t)
	a, err := AnalyzeAzimuth(fixture.obs, 30)
	if err != nil {
		t.Fatal(err)
	}
	for name, chosenN := range a.NorthChosenFrac {
		if availN := a.NorthAvailableFrac[name]; chosenN <= availN {
			t.Errorf("%s: north chosen %v <= north available %v", name, chosenN, availN)
		}
	}
	// New York's NW quadrant is masked by trees: its NW pick fraction
	// must be far below the other sites'.
	nyNW := a.NWChosenFrac["New York"]
	others := 0.0
	n := 0
	for name, f := range a.NWChosenFrac {
		if name != "New York" {
			others += f
			n++
		}
	}
	others /= float64(n)
	if nyNW >= others/2 {
		t.Errorf("NY NW fraction %v not clearly below other sites' mean %v", nyNW, others)
	}
}

// TestLaunchPreference reproduces Figure 6's shape: positive
// correlation between launch date and pick probability.
func TestLaunchPreference(t *testing.T) {
	setupFixture(t)
	a, err := AnalyzeLaunch(fixture.obs, "New York")
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanPearson <= 0 {
		t.Errorf("mean Pearson = %v, want positive (paper: 0.41)", a.MeanPearson)
	}
	for name, bins := range a.PerTerminal {
		total := 0
		for _, b := range bins {
			total += b.Picked
		}
		if total == 0 {
			t.Errorf("%s: no picks binned", name)
		}
	}
}

// TestSunlitPreference reproduces §5.3's shape: sunlit satellites are
// preferred in mixed slots, and dark picks happen at higher AOE.
func TestSunlitPreference(t *testing.T) {
	setupFixture(t)
	a, err := AnalyzeSunlit(fixture.obs, 30)
	if err != nil {
		t.Fatal(err)
	}
	if a.MixedSlots < 20 {
		t.Skipf("only %d mixed slots in fixture", a.MixedSlots)
	}
	if a.SunlitPickRate < 0.5 {
		t.Errorf("sunlit pick rate = %v, want > 0.5 (paper: 0.723)", a.SunlitPickRate)
	}
}

// TestModelBeatsBaseline reproduces Figure 8's shape: the RF model's
// top-k accuracy clearly exceeds the most-populated-cluster baseline.
func TestModelBeatsBaseline(t *testing.T) {
	setupFixture(t)
	d, err := BuildDataset(fixture.obs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainModel(d, ModelConfig{
		Folds: 3,
		Grid: []ml.ForestConfig{
			{NumTrees: 30, Tree: ml.TreeConfig{MaxDepth: 10}},
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	k5Model := res.ModelTopK[4]
	k5Base := res.BaselineTopK[4]
	if k5Model <= k5Base {
		t.Errorf("model top-5 %v <= baseline top-5 %v", k5Model, k5Base)
	}
	// Curves are monotone.
	for i := 1; i < len(res.ModelTopK); i++ {
		if res.ModelTopK[i] < res.ModelTopK[i-1] {
			t.Error("model curve not monotone")
		}
	}
	if len(res.Importances) == 0 {
		t.Fatal("no importances")
	}
	if res.TrainRows+res.HoldoutRows != len(d.X) {
		t.Error("split does not cover dataset")
	}
}

func TestCandidatePolarTracks(t *testing.T) {
	setupFixture(t)
	vp := fixture.sched.Terminals()[0].VantagePoint
	start := fixture.cons.Epoch.Add(3 * time.Hour)
	tracks := fixture.ident.CandidatePolarTracks(vp, scheduler.EpochStart(start))
	if len(tracks) == 0 {
		t.Fatal("no candidate tracks")
	}
	for id, pts := range tracks {
		if len(pts) == 0 {
			t.Fatalf("satellite %d has empty track", id)
		}
		for _, p := range pts {
			if p.ElevationDeg < 25 {
				t.Fatalf("satellite %d track dips below the mask: %v", id, p.ElevationDeg)
			}
		}
	}
}

func TestPredictAllocation(t *testing.T) {
	setupFixture(t)
	d, err := BuildDataset(fixture.obs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainModel(d, ModelConfig{
		Folds: 3,
		Grid:  []ml.ForestConfig{{NumTrees: 10, Tree: ml.TreeConfig{MaxDepth: 8}}},
		Seed:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := PredictAllocation(res.Forest, &fixture.obs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("no predicted clusters")
	}
	// The ranking must enumerate distinct clusters.
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k.String()] {
			t.Fatalf("duplicate cluster %s in ranking", k)
		}
		seen[k.String()] = true
	}
	// Empty available set: error, not panic.
	if _, err := PredictAllocation(res.Forest, &Observation{}); err == nil {
		t.Error("empty observation accepted")
	}
}
