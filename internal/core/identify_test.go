package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/obstruction"
	"repro/internal/scheduler"
	"repro/internal/sgp4"
)

// TestCampaignMatcherBruteIdentical is the end-to-end exactness
// regression for the pruned matcher: two same-seed campaigns — one
// through the dtw.Matcher cascade, one through brute-force
// dtw.Identify — must produce byte-identical records and counters.
// Combined with TestParallelCampaignMatchesSerial this pins the whole
// matrix: {serial, parallel} × {pruned, brute} all agree.
func TestCampaignMatcherBruteIdentical(t *testing.T) {
	setupFixture(t)
	brute, err := NewIdentifier(fixture.cons)
	if err != nil {
		t.Fatal(err)
	}
	brute.DisablePruning = true

	run := func(ident *Identifier, workers int) *CampaignResult {
		t.Helper()
		res, err := RunCampaign(context.Background(), CampaignConfig{
			Scheduler:  mustScheduler(t, fixture.cons, 123),
			Identifier: ident,
			Start:      fixture.cons.Epoch.Add(4 * time.Hour),
			Slots:      24,
			ResetEvery: 10,
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(brute, 1)
	for _, workers := range []int{1, 4} {
		got := run(fixture.ident, workers)
		if got.Attempted != want.Attempted || got.Correct != want.Correct || got.Failed != want.Failed {
			t.Errorf("workers=%d: pruned counters (%d,%d,%d) != brute (%d,%d,%d)",
				workers, got.Attempted, got.Correct, got.Failed,
				want.Attempted, want.Correct, want.Failed)
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("workers=%d: %d records != brute %d", workers, len(got.Records), len(want.Records))
		}
		for i := range want.Records {
			if !reflect.DeepEqual(got.Records[i], want.Records[i]) {
				t.Fatalf("workers=%d: record %d differs:\npruned: %+v\nbrute:  %+v",
					workers, i, got.Records[i], want.Records[i])
			}
		}
	}
	if want.Attempted == 0 {
		t.Fatal("regression campaign attempted no identifications")
	}
}

// TestCandidateTracksSnapshotReuse: feeding a precomputed snapshot
// must be indistinguishable from letting the identifier propagate the
// constellation itself, for both the Cartesian and the polar track
// paths.
func TestCandidateTracksSnapshotReuse(t *testing.T) {
	setupFixture(t)
	vp := fixture.sched.Terminals()[0].VantagePoint
	start := scheduler.EpochStart(fixture.cons.Epoch.Add(3 * time.Hour))
	snap := fixture.cons.Snapshot(start)

	plain, droppedPlain := fixture.ident.CandidateTracks(vp, start)
	fromSnap, droppedSnap := fixture.ident.CandidateTracksFromSnapshot(snap, vp, start)
	if droppedPlain != droppedSnap {
		t.Errorf("dropped: plain %d != snapshot %d", droppedPlain, droppedSnap)
	}
	if len(plain) == 0 {
		t.Fatal("no candidates in view at the probe slot")
	}
	if !reflect.DeepEqual(plain, fromSnap) {
		t.Error("CandidateTracksFromSnapshot differs from CandidateTracks")
	}

	polarPlain := fixture.ident.CandidatePolarTracks(vp, start)
	polarSnap := fixture.ident.CandidatePolarTracksFromSnapshot(snap, vp, start)
	if len(polarPlain) == 0 {
		t.Fatal("no polar candidate tracks at the probe slot")
	}
	if !reflect.DeepEqual(polarPlain, polarSnap) {
		t.Error("CandidatePolarTracksFromSnapshot differs from CandidatePolarTracks")
	}
}

// failingEphemeris propagates successfully until the fuse blows, then
// returns an error on every call — the shape of a satellite whose
// elements go stale mid-campaign.
type failingEphemeris struct {
	inner sgp4.Ephemeris
	fuse  *int // remaining successful calls; shared across copies
}

func (f failingEphemeris) Epoch() time.Time { return f.inner.Epoch() }

func (f failingEphemeris) Propagate(tsince float64) (sgp4.State, error) {
	if *f.fuse <= 0 {
		return sgp4.State{}, errors.New("injected propagation failure")
	}
	*f.fuse--
	return f.inner.Propagate(tsince)
}

func (f failingEphemeris) PropagateAt(t time.Time) (sgp4.State, error) {
	if *f.fuse <= 0 {
		return sgp4.State{}, errors.New("injected propagation failure")
	}
	*f.fuse--
	return f.inner.PropagateAt(t)
}

// TestDroppedCandidatesSurfaced: a propagation failure mid-slot must
// be reported through the dropped count, not silently delete the
// candidate — the satellite was in view, and it may be the true
// serving one.
func TestDroppedCandidatesSurfaced(t *testing.T) {
	cons, err := constellation.New(constellation.Config{
		Shells: []constellation.Shell{
			{Name: "s1", AltitudeKm: 550, InclinationDeg: 53, Planes: 24, SatsPerPlane: 22, PhasingF: 17},
		},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ident, err := NewIdentifier(cons)
	if err != nil {
		t.Fatal(err)
	}
	vp := geo.StudyVantagePoints()[0]

	// Find a slot with at least one candidate in view.
	var slotStart time.Time
	var snap []constellation.SatState
	var inView []constellation.Visible
	for slot := 0; slot < 240; slot++ {
		slotStart = scheduler.EpochStart(cons.Epoch.Add(time.Hour)).Add(time.Duration(slot) * scheduler.Period)
		snap = cons.Snapshot(slotStart)
		inView = constellation.ObserveFrom(vp.Location, snap, ident.MinElevationDeg)
		if len(inView) > 0 {
			break
		}
	}
	if len(inView) == 0 {
		t.Skip("no slot with candidates in view")
	}
	baseline, dropped := ident.CandidateTracksFromSnapshot(snap, vp, slotStart)
	if dropped != 0 {
		t.Fatalf("healthy constellation dropped %d candidates", dropped)
	}

	// Blow the first in-view satellite's propagator: the snapshot is
	// already computed, so the failure lands inside sampleTrack.
	sat := inView[0].Sat
	orig := sat.Propagator
	fuse := 0
	sat.Propagator = failingEphemeris{inner: orig, fuse: &fuse}
	defer func() { sat.Propagator = orig }()

	cands, dropped := ident.CandidateTracksFromSnapshot(snap, vp, slotStart)
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if len(cands) != len(baseline)-1 {
		t.Errorf("%d candidates after failure, want %d", len(cands), len(baseline)-1)
	}
	for _, c := range cands {
		if c.ID == sat.ID {
			t.Errorf("failed satellite %d still in candidate set", sat.ID)
		}
	}

	// With every in-view propagator failing there are no candidates at
	// all; the error must say how many were dropped rather than claim
	// nothing was in view.
	for _, v := range inView {
		v := v
		f := 0
		if _, isFailing := v.Sat.Propagator.(failingEphemeris); !isFailing {
			keep := v.Sat.Propagator
			v.Sat.Propagator = failingEphemeris{inner: keep, fuse: &f}
			defer func() { v.Sat.Propagator = keep }()
		}
	}
	cands, dropped = ident.CandidateTracksFromSnapshot(snap, vp, slotStart)
	if len(cands) != 0 || dropped != len(inView) {
		t.Errorf("all-failing: %d candidates, dropped %d, want 0 and %d", len(cands), dropped, len(inView))
	}

	// The full identify path must report the drops, not claim nothing
	// was in view: paint a synthetic trajectory so the XOR stage
	// passes and the candidate stage is what fails.
	prev, cur := obstruction.New(), obstruction.New()
	var fake []obstruction.PolarPoint
	for i := 0; i <= 15; i++ {
		fake = append(fake, obstruction.PolarPoint{
			ElevationDeg: 35 + 2*float64(i),
			AzimuthDeg:   40 + 3*float64(i),
		})
	}
	cur.PaintTrack(fake)
	_, err = ident.IdentifyFromMapsSnapshot(prev, cur, vp, slotStart, snap)
	if err == nil {
		t.Fatal("identification succeeded with every candidate dropped")
	}
	if !strings.Contains(err.Error(), "dropped") {
		t.Errorf("error does not mention dropped candidates: %v", err)
	}
}
