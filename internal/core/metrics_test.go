package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// runMetered runs one campaign with a fresh registry + trace and
// returns the resulting snapshot and trace.
func runMetered(t *testing.T, workers int, oracle bool) (telemetry.Snapshot, []telemetry.Decision) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg := campaignCfg(t, 47, workers, oracle)
	cfg.Metrics = NewCampaignMetrics(reg)
	cfg.Metrics.Trace = telemetry.NewDecisionTrace(4096)
	if _, err := RunCampaignStream(context.Background(), cfg, func(SlotRecord) error { return nil }); err != nil {
		t.Fatal(err)
	}
	return reg.Snapshot(), cfg.Metrics.Trace.Snapshot()
}

// TestCampaignMetricsMatchStats proves the telemetry counters agree
// with the engine's own CampaignStats, and that the parallel engine
// produces byte-identical counters and decision traces to the serial
// one — instrumentation must not observe scheduling nondeterminism.
func TestCampaignMetricsMatchStats(t *testing.T) {
	setupFixture(t)
	for _, oracle := range []bool{true, false} {
		reg := telemetry.NewRegistry()
		cfg := campaignCfg(t, 47, 1, oracle)
		cfg.Metrics = NewCampaignMetrics(reg)
		cfg.Metrics.Trace = telemetry.NewDecisionTrace(4096)
		stats, err := RunCampaignStream(context.Background(), cfg, func(SlotRecord) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		s := reg.Snapshot()
		if got := s.Counter("campaign_slots_total"); got != int64(cfg.Slots) {
			t.Errorf("oracle=%v: slots counter = %d, want %d", oracle, got, cfg.Slots)
		}
		if got := s.Counter("campaign_records_total"); got != int64(stats.Records) {
			t.Errorf("oracle=%v: records counter = %d, want %d", oracle, got, stats.Records)
		}
		if got := s.Counter("campaign_served_total"); got != int64(stats.Served) {
			t.Errorf("oracle=%v: served counter = %d, want %d", oracle, got, stats.Served)
		}
		for reason, n := range stats.Skips {
			key := `campaign_skips_total{reason="` + reason + `"}`
			if got := s.Counter(key); got != int64(n) {
				t.Errorf("oracle=%v: %s = %d, want %d", oracle, key, got, n)
			}
		}
		if got := s.Gauges["campaign_queue_depth"]; got != 0 {
			t.Errorf("oracle=%v: queue depth after completion = %d, want 0", oracle, got)
		}
		if cfg.Metrics.Trace.Len() != stats.Records {
			t.Errorf("oracle=%v: trace holds %d decisions, want %d", oracle, cfg.Metrics.Trace.Len(), stats.Records)
		}
		if !oracle && s.Counter("dtw_candidates_total") == 0 {
			t.Error("measured run recorded no matcher candidates")
		}
	}
}

func TestCampaignMetricsParallelMatchesSerial(t *testing.T) {
	setupFixture(t)
	serialSnap, serialTrace := runMetered(t, 1, false)
	for _, workers := range []int{2, 4} {
		snap, trace := runMetered(t, workers, false)
		if !reflect.DeepEqual(snap.Counters, serialSnap.Counters) {
			t.Errorf("workers=%d: counters diverge from serial:\nserial:   %v\nparallel: %v",
				workers, serialSnap.Counters, snap.Counters)
		}
		if !reflect.DeepEqual(trace, serialTrace) {
			t.Errorf("workers=%d: decision trace diverges from serial", workers)
		}
	}
}

// TestDecisionTraceContent checks the trace's projection of a record:
// chosen observables, top rejected candidates by elevation, skip
// reasons, and that the JSONL dump round-trips.
func TestDecisionTraceContent(t *testing.T) {
	setupFixture(t)
	reg := telemetry.NewRegistry()
	cfg := campaignCfg(t, 47, 1, true)
	cfg.Metrics = NewCampaignMetrics(reg)
	cfg.Metrics.Trace = telemetry.NewDecisionTrace(4096)
	var recs []SlotRecord
	if _, err := RunCampaignStream(context.Background(), cfg, func(rec SlotRecord) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	decisions := cfg.Metrics.Trace.Snapshot()
	if len(decisions) != len(recs) {
		t.Fatalf("trace holds %d decisions, want %d", len(decisions), len(recs))
	}
	for i, d := range decisions {
		rec := recs[i]
		if d.Terminal != rec.Terminal || !d.SlotStart.Equal(rec.SlotStart) || d.SkipReason != rec.SkipReason {
			t.Fatalf("decision %d identity mismatch: %+v vs record %+v", i, d, rec)
		}
		if rec.ChosenIdx >= 0 {
			chosen := rec.Available[rec.ChosenIdx]
			if d.ChosenID != chosen.ID || d.ChosenAOE != chosen.ElevationDeg {
				t.Fatalf("decision %d chosen mismatch: %+v vs %+v", i, d, chosen)
			}
			if len(d.Rejected) > 3 {
				t.Fatalf("decision %d keeps %d rejected, want <= 3", i, len(d.Rejected))
			}
			for j := 1; j < len(d.Rejected); j++ {
				if d.Rejected[j].AOEDeg > d.Rejected[j-1].AOEDeg {
					t.Fatalf("decision %d rejected not sorted by elevation: %+v", i, d.Rejected)
				}
			}
			for _, r := range d.Rejected {
				if r.SatID == d.ChosenID {
					t.Fatalf("decision %d lists the chosen satellite as rejected", i)
				}
			}
		} else if d.ChosenID != 0 {
			t.Fatalf("decision %d has ChosenID %d on a skipped record", i, d.ChosenID)
		}
	}
	var buf bytes.Buffer
	if err := cfg.Metrics.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ReadDecisions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decisions, back) {
		t.Fatal("campaign decision trace does not round-trip through JSONL")
	}
}

// TestCampaignNilMetrics pins the Nop contract at the engine level: a
// nil bundle must not panic anywhere, serial or parallel.
func TestCampaignNilMetrics(t *testing.T) {
	setupFixture(t)
	for _, workers := range []int{1, 2} {
		cfg := campaignCfg(t, 47, workers, true)
		cfg.Metrics = NewCampaignMetrics(telemetry.Nop) // nil
		if cfg.Metrics != nil {
			t.Fatal("NewCampaignMetrics(Nop) must return nil")
		}
		if _, err := RunCampaignStream(context.Background(), cfg, func(SlotRecord) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
}
