package core

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// campaignCfg builds a campaign over the shared fixture constellation
// with a fresh scheduler. The scheduler is stateful (hidden load walk,
// score-noise RNG), so byte-identical comparisons need one instance
// per run, seeded the same.
func campaignCfg(t *testing.T, seed int64, workers int, oracle bool) CampaignConfig {
	t.Helper()
	return CampaignConfig{
		Scheduler:  mustScheduler(t, fixture.cons, seed),
		Identifier: fixture.ident,
		Start:      fixture.cons.Epoch.Add(4 * time.Hour),
		Slots:      24,
		ResetEvery: 10,
		Oracle:     oracle,
		Workers:    workers,
	}
}

// TestParallelCampaignMatchesSerial is the determinism guarantee for
// the worker-pool engine: record order, record content, and the
// accuracy counters must match the serial run exactly, at several
// worker counts. Run under -race it also guards the engine's
// synchronization (shared snapshots, sharded dish state, merge).
func TestParallelCampaignMatchesSerial(t *testing.T) {
	setupFixture(t)
	for _, oracle := range []bool{true, false} {
		serial, err := RunCampaign(context.Background(), campaignCfg(t, 99, 1, oracle))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 4, 8} {
			par, err := RunCampaign(context.Background(), campaignCfg(t, 99, workers, oracle))
			if err != nil {
				t.Fatal(err)
			}
			if par.Attempted != serial.Attempted || par.Correct != serial.Correct || par.Failed != serial.Failed {
				t.Errorf("oracle=%v workers=%d: counters (%d,%d,%d) != serial (%d,%d,%d)",
					oracle, workers, par.Attempted, par.Correct, par.Failed,
					serial.Attempted, serial.Correct, serial.Failed)
			}
			if len(par.Records) != len(serial.Records) {
				t.Fatalf("oracle=%v workers=%d: %d records != serial %d",
					oracle, workers, len(par.Records), len(serial.Records))
			}
			for i := range serial.Records {
				if !reflect.DeepEqual(par.Records[i], serial.Records[i]) {
					t.Fatalf("oracle=%v workers=%d: record %d differs:\nparallel: %+v\nserial:   %+v",
						oracle, workers, i, par.Records[i], serial.Records[i])
				}
			}
		}
	}
}

// TestCampaignCancellation checks ctx threading in both engines: a
// pre-canceled context aborts promptly with the context's error.
func TestCampaignCancellation(t *testing.T) {
	setupFixture(t)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := RunCampaign(ctx, campaignCfg(t, 5, workers, true))
		if err != context.Canceled {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Errorf("workers=%d: canceled run returned a result", workers)
		}
	}
}

// TestCampaignMidRunCancellation cancels while the parallel engine is
// in flight; the run must stop and report the cancellation.
func TestCampaignMidRunCancellation(t *testing.T) {
	setupFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := campaignCfg(t, 6, 4, false)
	cfg.Slots = 200
	done := make(chan error, 1)
	go func() {
		_, err := RunCampaign(ctx, cfg)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not stop after cancel")
	}
}
