package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/stats"
)

// ObservationConsumer is the incremental interface behind every §5
// analysis and the §6 feature builder: observations are pushed one at
// a time (in stream order) instead of materialized as a slice, so a
// streaming campaign can analyze itself as it runs. Each concrete
// accumulator pairs Add with a Finalize method producing the same
// result type — and bit-identical values — as its batch counterpart.
type ObservationConsumer interface {
	// Add folds one observation in. Implementations only read o and
	// the slices it carries during the call; nothing is retained, so
	// callers may reuse backing arrays. A non-nil error aborts the
	// stream.
	Add(o Observation) error
}

// terminalSeries collects per-terminal float series while preserving
// the order guarantees the batch analyzers rely on: values append in
// stream order per terminal, and finalization visits terminals in
// sorted-name order — exactly the iteration order of the batch path's
// splitByTerminal, so downstream float arithmetic reproduces bitwise.
type terminalSeries struct {
	seen  int // observations added, with or without a chosen satellite
	terms map[string]*termSlot
}

type termSlot struct {
	chosen, avail []float64
}

func newTerminalSeries() terminalSeries {
	return terminalSeries{terms: map[string]*termSlot{}}
}

// add records one chosen value and the full available series for the
// observation's terminal; observations without a chosen satellite only
// bump the seen counter (the batch path drops them the same way).
func (ts *terminalSeries) add(o *Observation, value func(*SatObs) float64) {
	ts.seen++
	c, ok := o.Chosen()
	if !ok {
		return
	}
	slot := ts.terms[o.Terminal]
	if slot == nil {
		slot = &termSlot{}
		ts.terms[o.Terminal] = slot
	}
	slot.chosen = append(slot.chosen, value(&c))
	for i := range o.Available {
		slot.avail = append(slot.avail, value(&o.Available[i]))
	}
}

// names returns the terminals in sorted order, or the batch path's
// historical errors when nothing usable accumulated.
func (ts *terminalSeries) names() ([]string, error) {
	if ts.seen == 0 {
		return nil, fmt.Errorf("core: no observations")
	}
	if len(ts.terms) == 0 {
		return nil, fmt.Errorf("core: no observations with an identified chosen satellite")
	}
	names := make([]string, 0, len(ts.terms))
	for n := range ts.terms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// AOEAccumulator builds the Figure 4 analysis incrementally. Feed it
// observations with Add, then call Finalize once; the result is
// bit-identical to AnalyzeAOE over the same observations in the same
// order.
type AOEAccumulator struct {
	points int
	series terminalSeries
}

// NewAOEAccumulator returns an accumulator rendering CDFs with
// cdfPoints points.
func NewAOEAccumulator(cdfPoints int) *AOEAccumulator {
	return &AOEAccumulator{points: cdfPoints, series: newTerminalSeries()}
}

// Add folds in one observation.
func (a *AOEAccumulator) Add(o Observation) error {
	a.series.add(&o, func(s *SatObs) float64 { return s.ElevationDeg })
	return nil
}

// Finalize computes the Figure 4 series from the accumulated state.
func (a *AOEAccumulator) Finalize() (*AOEAnalysis, error) {
	names, err := a.series.names()
	if err != nil {
		return nil, err
	}
	out := &AOEAnalysis{}
	var allChosen, allAvail []float64
	for _, name := range names {
		slot := a.series.terms[name]
		tc, err := buildCDF(name, slot.avail, slot.chosen, a.points)
		if err != nil {
			return nil, err
		}
		out.PerTerminal = append(out.PerTerminal, tc)
		out.MedianLiftDeg += tc.MedianChosen - tc.MedianAvailable
		allChosen = append(allChosen, slot.chosen...)
		allAvail = append(allAvail, slot.avail...)
	}
	out.MedianLiftDeg /= float64(len(out.PerTerminal))
	high := func(v float64) bool { return v >= 45 }
	out.HighBandChosenFrac = stats.Proportion(allChosen, high)
	out.HighBandAvailableFrac = stats.Proportion(allAvail, high)
	return out, nil
}

// AzimuthAccumulator builds the Figure 5 analysis incrementally;
// Finalize is bit-identical to AnalyzeAzimuth.
type AzimuthAccumulator struct {
	points int
	series terminalSeries
}

// NewAzimuthAccumulator returns an accumulator rendering CDFs with
// cdfPoints points.
func NewAzimuthAccumulator(cdfPoints int) *AzimuthAccumulator {
	return &AzimuthAccumulator{points: cdfPoints, series: newTerminalSeries()}
}

// Add folds in one observation.
func (a *AzimuthAccumulator) Add(o Observation) error {
	a.series.add(&o, func(s *SatObs) float64 { return s.AzimuthDeg })
	return nil
}

// Finalize computes the Figure 5 series from the accumulated state.
func (a *AzimuthAccumulator) Finalize() (*AzimuthAnalysis, error) {
	names, err := a.series.names()
	if err != nil {
		return nil, err
	}
	out := &AzimuthAnalysis{
		NorthChosenFrac:    map[string]float64{},
		NorthAvailableFrac: map[string]float64{},
		NWChosenFrac:       map[string]float64{},
	}
	for _, name := range names {
		slot := a.series.terms[name]
		tc, err := buildCDF(name, slot.avail, slot.chosen, a.points)
		if err != nil {
			return nil, err
		}
		out.PerTerminal = append(out.PerTerminal, tc)
		north := func(az float64) bool { return isNorth(az) }
		out.NorthChosenFrac[name] = stats.Proportion(slot.chosen, north)
		out.NorthAvailableFrac[name] = stats.Proportion(slot.avail, north)
		out.NWChosenFrac[name] = stats.Proportion(slot.chosen, func(az float64) bool { return quadrant(az) == "NW" })
	}
	return out, nil
}

// LaunchAccumulator builds the Figure 6 analysis incrementally;
// Finalize is bit-identical to AnalyzeLaunch. Unlike the CDF
// accumulators its state is O(terminals × launch months) — genuinely
// constant for campaigns of any length.
type LaunchAccumulator struct {
	excluded []string
	seen     int
	bins     map[string]map[time.Time]*LaunchBin
}

// NewLaunchAccumulator returns an accumulator; excluded names
// terminals left out of the mean correlation (the paper excludes New
// York).
func NewLaunchAccumulator(excluded ...string) *LaunchAccumulator {
	return &LaunchAccumulator{excluded: excluded, bins: map[string]map[time.Time]*LaunchBin{}}
}

// Add folds in one observation.
func (a *LaunchAccumulator) Add(o Observation) error {
	a.seen++
	c, ok := o.Chosen()
	if !ok {
		return nil
	}
	bins := a.bins[o.Terminal]
	if bins == nil {
		bins = map[time.Time]*LaunchBin{}
		a.bins[o.Terminal] = bins
	}
	for _, s := range o.Available {
		key := monthOf(s.LaunchDate)
		b := bins[key]
		if b == nil {
			b = &LaunchBin{Month: key}
			bins[key] = b
		}
		b.Available++
	}
	bins[monthOf(c.LaunchDate)].Picked++
	return nil
}

// Finalize computes the Figure 6 series from the accumulated state.
func (a *LaunchAccumulator) Finalize() (*LaunchAnalysis, error) {
	if a.seen == 0 {
		return nil, fmt.Errorf("core: no observations")
	}
	if len(a.bins) == 0 {
		return nil, fmt.Errorf("core: no observations with an identified chosen satellite")
	}
	names := make([]string, 0, len(a.bins))
	for n := range a.bins {
		names = append(names, n)
	}
	sort.Strings(names)
	skip := map[string]bool{}
	for _, e := range a.excluded {
		skip[e] = true
	}
	out := &LaunchAnalysis{
		PerTerminal: map[string][]LaunchBin{},
		Pearson:     map[string]float64{},
		Excluded:    a.excluded,
	}
	n := 0
	for _, name := range names {
		bins := a.bins[name]
		list := make([]LaunchBin, 0, len(bins))
		for _, b := range bins {
			if b.Available > 0 {
				b.Ratio = float64(b.Picked) / float64(b.Available)
			}
			list = append(list, *b)
		}
		sort.Slice(list, func(i, j int) bool { return list[i].Month.Before(list[j].Month) })
		out.PerTerminal[name] = list

		if len(list) >= 2 {
			x := make([]float64, len(list))
			y := make([]float64, len(list))
			for i, b := range list {
				x[i] = b.Month.Sub(list[0].Month).Hours() / (24 * 30.44)
				y[i] = b.Ratio
			}
			if r, err := stats.Pearson(x, y); err == nil {
				out.Pearson[name] = r
				if !skip[name] {
					out.MeanPearson += r
					n++
				}
			}
		}
	}
	if n > 0 {
		out.MeanPearson /= float64(n)
	}
	return out, nil
}

// sunlitTermAcc is one terminal's accumulated Figure 7 series.
type sunlitTermAcc struct {
	dc, sc, da, sa []float64
}

// SunlitAccumulator builds the §5.3 / Figure 7 analysis incrementally;
// Finalize is bit-identical to AnalyzeSunlit.
type SunlitAccumulator struct {
	points       int
	seen         int
	terms        map[string]*sunlitTermAcc
	mixedSlots   int
	sunlitPicks  int
	darkPicked   bool
	minDarkShare float64
}

// NewSunlitAccumulator returns an accumulator rendering CDFs with
// cdfPoints points.
func NewSunlitAccumulator(cdfPoints int) *SunlitAccumulator {
	return &SunlitAccumulator{points: cdfPoints, terms: map[string]*sunlitTermAcc{}, minDarkShare: 1}
}

// Add folds in one observation.
func (a *SunlitAccumulator) Add(o Observation) error {
	a.seen++
	c, ok := o.Chosen()
	if !ok {
		return nil
	}
	acc := a.terms[o.Terminal]
	if acc == nil {
		acc = &sunlitTermAcc{}
		a.terms[o.Terminal] = acc
	}
	nDark, nSunlit := 0, 0
	for _, s := range o.Available {
		if s.Sunlit {
			nSunlit++
		} else {
			nDark++
		}
	}
	if nDark == 0 || nSunlit == 0 {
		return nil // not a mixed slot
	}
	a.mixedSlots++
	for _, s := range o.Available {
		if s.Sunlit {
			acc.sa = append(acc.sa, s.ElevationDeg)
		} else {
			acc.da = append(acc.da, s.ElevationDeg)
		}
	}
	if c.Sunlit {
		a.sunlitPicks++
		acc.sc = append(acc.sc, c.ElevationDeg)
	} else {
		a.darkPicked = true
		acc.dc = append(acc.dc, c.ElevationDeg)
		share := float64(nDark) / float64(nDark+nSunlit)
		if share < a.minDarkShare {
			a.minDarkShare = share
		}
	}
	return nil
}

// Finalize computes the Figure 7 series from the accumulated state.
func (a *SunlitAccumulator) Finalize() (*SunlitAnalysis, error) {
	if a.seen == 0 {
		return nil, fmt.Errorf("core: no observations")
	}
	if len(a.terms) == 0 {
		return nil, fmt.Errorf("core: no observations with an identified chosen satellite")
	}
	names := make([]string, 0, len(a.terms))
	for n := range a.terms {
		names = append(names, n)
	}
	sort.Strings(names)
	out := &SunlitAnalysis{MixedSlots: a.mixedSlots, MinDarkShareWhenDarkPicked: a.minDarkShare}
	// The global chosen series concatenate per terminal in sorted-name
	// order, matching the batch path's append order bit for bit.
	var darkChosenAll, sunlitChosenAll []float64
	for _, name := range names {
		acc := a.terms[name]
		cdfs := SunlitCDFs{Terminal: name}
		// Some series can legitimately be empty (a terminal may never
		// pick a dark satellite); only build the non-empty ones.
		if e, err := stats.NewECDF(acc.dc); err == nil {
			cdfs.DarkChosen = e.Points(a.points)
		}
		if e, err := stats.NewECDF(acc.sc); err == nil {
			cdfs.SunlitChosen = e.Points(a.points)
		}
		if e, err := stats.NewECDF(acc.da); err == nil {
			cdfs.DarkAvail = e.Points(a.points)
		}
		if e, err := stats.NewECDF(acc.sa); err == nil {
			cdfs.SunlitAvail = e.Points(a.points)
		}
		out.PerTerminal = append(out.PerTerminal, cdfs)
		darkChosenAll = append(darkChosenAll, acc.dc...)
		sunlitChosenAll = append(sunlitChosenAll, acc.sc...)
	}
	if out.MixedSlots > 0 {
		out.SunlitPickRate = float64(a.sunlitPicks) / float64(out.MixedSlots)
	}
	if !a.darkPicked {
		out.MinDarkShareWhenDarkPicked = 0
	}
	high60 := func(v float64) bool { return v > 60 }
	out.HighAOEFracDark = stats.Proportion(darkChosenAll, high60)
	out.HighAOEFracSunlit = stats.Proportion(sunlitChosenAll, high60)
	if len(darkChosenAll) > 0 && len(sunlitChosenAll) > 0 {
		out.DarkChosenAOELiftDeg = stats.Median(darkChosenAll) - stats.Median(sunlitChosenAll)
	}
	return out, nil
}
