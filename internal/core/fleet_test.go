package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/astro"
	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/scheduler"
	"repro/internal/sgp4"
)

// fleetTerminals spreads n synthetic terminals over the inhabited
// latitudes on a golden-angle spiral — a fleet-scale stand-in for the
// paper's four study sites.
func fleetTerminals(n int) []scheduler.Terminal {
	const goldenDeg = 137.50776405003785
	terms := make([]scheduler.Terminal, 0, n)
	for i := 0; i < n; i++ {
		frac := 0.5
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		lat := -60 + 120*frac
		lon := math.Mod(float64(i)*goldenDeg, 360) - 180
		terms = append(terms, scheduler.Terminal{VantagePoint: geo.VantagePoint{
			Name:           fmt.Sprintf("fleet-%06d", i),
			Location:       astro.Geodetic{LatDeg: lat, LonDeg: lon},
			UTCOffsetHours: int(lon / 15),
		}, Priority: 1})
	}
	return terms
}

// TestCampaignFleetIdentical is the tentpole acceptance check: an
// indexed campaign must emit byte-identical records to the unindexed
// one, at every worker count, with and without a shared snapshot
// cache. Records are compared as encoded JSONL bytes, not structs, so
// even a float formatting difference would fail.
func TestCampaignFleetIdentical(t *testing.T) {
	setupFixture(t)
	run := func(disableIndex bool, workers int, share bool) []byte {
		terms := fleetTerminals(40)
		var cache *constellation.SnapshotCache
		if share {
			cache = constellation.NewSnapshotCache(0, nil)
		}
		sched, err := scheduler.NewGlobal(scheduler.Config{
			Constellation: fixture.cons,
			Terminals:     terms,
			Seed:          123,
			DisableIndex:  disableIndex,
			Snapshots:     cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := CampaignConfig{
			Scheduler:    sched,
			Identifier:   fixture.ident,
			Start:        fixture.cons.Epoch.Add(3 * time.Hour),
			Slots:        8,
			Oracle:       true,
			Workers:      workers,
			DisableIndex: disableIndex,
			Snapshots:    cache,
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		stats, err := RunCampaignStream(context.Background(), cfg, func(rec SlotRecord) error {
			return enc.Encode(rec)
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Records != cfg.Slots*len(terms) {
			t.Fatalf("emitted %d records, want %d", stats.Records, cfg.Slots*len(terms))
		}
		return buf.Bytes()
	}

	baseline := run(true, 1, false) // linear scan, serial: the reference
	cases := []struct {
		name         string
		disableIndex bool
		workers      int
		share        bool
	}{
		{"indexed serial", false, 1, false},
		{"indexed serial shared-cache", false, 1, true},
		{"indexed parallel-4", false, 4, false},
		{"indexed parallel-4 shared-cache", false, 4, true},
		{"linear parallel-4", true, 4, false},
	}
	for _, c := range cases {
		got := run(c.disableIndex, c.workers, c.share)
		if !bytes.Equal(got, baseline) {
			t.Fatalf("%s: records not byte-identical to the linear serial run (%d vs %d bytes)",
				c.name, len(got), len(baseline))
		}
	}
}

// brokenEph always fails, standing in for decayed elements.
type brokenEph struct{ epoch time.Time }

func (b brokenEph) Epoch() time.Time { return b.epoch }
func (b brokenEph) Propagate(float64) (sgp4.State, error) {
	return sgp4.State{}, errors.New("stale elements")
}
func (b brokenEph) PropagateAt(time.Time) (sgp4.State, error) {
	return sgp4.State{}, errors.New("stale elements")
}

// TestCampaignStatsPropagationSkips checks the bugfix for silently
// shrinking snapshots: a failing satellite must be counted in
// CampaignStats (once per slot) and in the constellation's per-sat
// accounting, on both engines.
func TestCampaignStatsPropagationSkips(t *testing.T) {
	for _, workers := range []int{1, 3} {
		cons, err := constellation.New(constellation.Config{
			Shells: []constellation.Shell{
				{Name: "mini", AltitudeKm: 550, InclinationDeg: 53, Planes: 8, SatsPerPlane: 8, PhasingF: 3},
			},
			Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		cons.Sats[5].Propagator = brokenEph{epoch: cons.Epoch}

		ident, err := NewIdentifier(cons)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := scheduler.NewGlobal(scheduler.Config{
			Constellation: cons,
			Terminals:     fleetTerminals(6),
			Seed:          4,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := CampaignConfig{
			Scheduler:  sched,
			Identifier: ident,
			Start:      cons.Epoch.Add(time.Hour),
			Slots:      5,
			Oracle:     true,
			Workers:    workers,
		}
		stats, err := RunCampaignStream(context.Background(), cfg, func(SlotRecord) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if stats.PropagationSkips != cfg.Slots {
			t.Fatalf("workers=%d: PropagationSkips = %d, want %d (one per slot)",
				workers, stats.PropagationSkips, cfg.Slots)
		}
		total, bySat := cons.PropagationSkips()
		if total < int64(cfg.Slots) {
			t.Fatalf("workers=%d: constellation total = %d, want >= %d", workers, total, cfg.Slots)
		}
		if len(bySat) != 1 || bySat[cons.Sats[5].ID] != "stale elements" {
			t.Fatalf("workers=%d: bySat = %v, want the one broken satellite", workers, bySat)
		}
	}
}
