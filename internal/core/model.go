package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/features"
	"repro/internal/ml"
)

// DatasetBuilder converts an observation stream into the §6
// supervised problem incrementally: X = [local hour, per-cluster
// availability counts], y = cluster of the chosen satellite. Slots
// without an identified chosen satellite are skipped. The builder
// holds only the growing dataset — one feature vector per usable
// observation — never the observations themselves.
type DatasetBuilder struct {
	d    *ml.Dataset
	sats []features.Sat // scratch, reused across Adds
}

// NewDatasetBuilder returns an empty builder.
func NewDatasetBuilder() *DatasetBuilder {
	return &DatasetBuilder{d: &ml.Dataset{NumClasses: features.NumClusters}}
}

// Add folds in one observation; it implements ObservationConsumer.
func (b *DatasetBuilder) Add(o Observation) error {
	if _, ok := o.Chosen(); !ok {
		return nil
	}
	b.sats = b.sats[:0]
	for _, a := range o.Available {
		b.sats = append(b.sats, features.Sat{
			AzimuthDeg:   a.AzimuthDeg,
			ElevationDeg: a.ElevationDeg,
			AgeYears:     a.AgeYears,
			Sunlit:       a.Sunlit,
		})
	}
	slot, err := features.Cluster(b.sats)
	if err != nil {
		return fmt.Errorf("core: slot %v at %s: %w", o.SlotStart, o.Terminal, err)
	}
	key, err := slot.KeyOf(o.ChosenIdx)
	if err != nil {
		return fmt.Errorf("core: slot %v at %s: %w", o.SlotStart, o.Terminal, err)
	}
	b.d.X = append(b.d.X, slot.Vector(o.LocalHour))
	b.d.Y = append(b.d.Y, key.Index())
	return nil
}

// Rows reports how many usable observations have been folded in.
func (b *DatasetBuilder) Rows() int { return len(b.d.X) }

// Finalize returns the dataset. The builder must not be reused after.
func (b *DatasetBuilder) Finalize() (*ml.Dataset, error) {
	if len(b.d.X) == 0 {
		return nil, fmt.Errorf("core: no usable observations for the model")
	}
	return b.d, nil
}

// BuildDataset is the batch wrapper over DatasetBuilder.
func BuildDataset(obs []Observation) (*ml.Dataset, error) {
	b := NewDatasetBuilder()
	for i := range obs {
		if err := b.Add(obs[i]); err != nil {
			return nil, err
		}
	}
	return b.Finalize()
}

// BaselineRanker is the paper's baseline: predict the cluster(s) with
// the most available satellites, straight from the feature vector.
func BaselineRanker() ml.Ranker {
	return ml.RankerFunc(func(x []float64) ([]int, error) {
		return features.BaselineRanking(x)
	})
}

// ModelConfig controls the §6 training protocol.
type ModelConfig struct {
	// HoldoutFrac is the validation split (paper: 0.2).
	HoldoutFrac float64
	// Folds for cross-validated grid search (paper: 5).
	Folds int
	// Grid lists candidate forest configurations; nil uses a default
	// grid over tree count and depth.
	Grid []ml.ForestConfig
	// GridTopK is the accuracy metric used to pick a configuration.
	// Default 5 (the paper's headline k).
	GridTopK int
	// MaxK bounds the reported top-k curves. Default 9 (Figure 8's
	// x-axis).
	MaxK int
	// Seed drives splits and training.
	Seed int64
	// Workers bounds the training worker pool shared by the grid
	// search, cross-validation, and the final forest fit (0 =
	// GOMAXPROCS, 1 = serial). Results are bit-identical at any value.
	Workers int
	// Metrics, when non-nil, receives training telemetry from every
	// forest fitted (grid-search folds and the final fit alike).
	Metrics *ml.Metrics
}

func (c *ModelConfig) applyDefaults() {
	if c.HoldoutFrac == 0 {
		c.HoldoutFrac = 0.2
	}
	if c.Folds == 0 {
		c.Folds = 5
	}
	if c.GridTopK == 0 {
		c.GridTopK = 5
	}
	if c.MaxK == 0 {
		c.MaxK = 9
	}
	if len(c.Grid) == 0 {
		c.Grid = []ml.ForestConfig{
			{NumTrees: 40, Tree: ml.TreeConfig{MaxDepth: 8}},
			{NumTrees: 40, Tree: ml.TreeConfig{MaxDepth: 14}},
			{NumTrees: 80, Tree: ml.TreeConfig{MaxDepth: 10}},
			{NumTrees: 80, Tree: ml.TreeConfig{MaxDepth: 16, MinSamplesLeaf: 2}},
		}
	}
}

// FeatureImportance is one named importance entry.
type FeatureImportance struct {
	Name       string
	Importance float64
}

// ModelResult is the §6 outcome: the Figure 8 curves plus the trained
// model and its explanation.
type ModelResult struct {
	Forest *ml.Forest
	// BestConfig is the grid-search winner and its CV score.
	BestConfig ml.GridPoint
	// ModelTopK[k-1] and BaselineTopK[k-1] are holdout top-k accuracy
	// for k = 1..MaxK — exactly Figure 8's two series.
	ModelTopK    []float64
	BaselineTopK []float64
	// Importances are the named gini importances, descending.
	Importances []FeatureImportance
	// TrainRows/HoldoutRows record the split sizes.
	TrainRows, HoldoutRows int
}

// TrainModel runs the full §6 protocol: 80/20 split, grid search with
// k-fold CV on the training side, final fit, holdout evaluation of
// model and baseline, and gini importance extraction.
func TrainModel(d *ml.Dataset, cfg ModelConfig) (*ModelResult, error) {
	return TrainModelCtx(context.Background(), d, cfg)
}

// TrainModelCtx is TrainModel on a ctx-cancellable bounded worker pool
// (cfg.Workers): the grid search fans out over (config, fold) pairs
// and the final fit trains trees concurrently, with the result
// bit-identical to the serial protocol at any worker count.
func TrainModelCtx(ctx context.Context, d *ml.Dataset, cfg ModelConfig) (*ModelResult, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	trainIdx, testIdx, err := ml.TrainTestSplit(len(d.X), cfg.HoldoutFrac, rng)
	if err != nil {
		return nil, err
	}
	train := d.Subset(trainIdx)
	test := d.Subset(testIdx)

	// Seed each grid config deterministically from the model seed.
	grid := make([]ml.ForestConfig, len(cfg.Grid))
	for i, g := range cfg.Grid {
		g.Seed = cfg.Seed + int64(i) + 1
		g.Workers = cfg.Workers
		g.Metrics = cfg.Metrics
		grid[i] = g
	}
	points, err := ml.GridSearchCtx(ctx, train, grid, cfg.Folds, cfg.GridTopK, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: grid search: %w", err)
	}
	best := points[0]

	forest, err := ml.FitForestCtx(ctx, train, best.Config)
	if err != nil {
		return nil, fmt.Errorf("core: final fit: %w", err)
	}

	modelCurve, err := ml.TopKCurve(ml.ForestRanker{Forest: forest}, test, cfg.MaxK)
	if err != nil {
		return nil, fmt.Errorf("core: model eval: %w", err)
	}
	baseCurve, err := ml.TopKCurve(BaselineRanker(), test, cfg.MaxK)
	if err != nil {
		return nil, fmt.Errorf("core: baseline eval: %w", err)
	}

	imp := forest.Importance()
	named := make([]FeatureImportance, len(imp))
	for i, v := range imp {
		named[i] = FeatureImportance{Name: features.FeatureName(i), Importance: v}
	}
	sort.SliceStable(named, func(i, j int) bool { return named[i].Importance > named[j].Importance })

	return &ModelResult{
		Forest:       forest,
		BestConfig:   best,
		ModelTopK:    modelCurve,
		BaselineTopK: baseCurve,
		Importances:  named,
		TrainRows:    len(trainIdx),
		HoldoutRows:  len(testIdx),
	}, nil
}

// PredictAllocation applies a trained model to a fresh slot: given the
// available set and local hour, it returns the predicted cluster
// indices in descending likelihood, so a caller can check whether the
// eventually chosen satellite's cluster is in the top k.
func PredictAllocation(forest *ml.Forest, o *Observation) ([]features.Key, error) {
	sats := make([]features.Sat, len(o.Available))
	for i, a := range o.Available {
		sats[i] = features.Sat{
			AzimuthDeg:   a.AzimuthDeg,
			ElevationDeg: a.ElevationDeg,
			AgeYears:     a.AgeYears,
			Sunlit:       a.Sunlit,
		}
	}
	slot, err := features.Cluster(sats)
	if err != nil {
		return nil, err
	}
	ranked, err := ml.ForestRanker{Forest: forest}.RankClasses(slot.Vector(o.LocalHour))
	if err != nil {
		return nil, err
	}
	out := make([]features.Key, 0, len(ranked))
	for _, c := range ranked {
		k, err := features.KeyFromIndex(c)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}
