// Package core is the paper's primary contribution assembled into a
// pipeline: run a measurement campaign against terminals scheduled by
// an (opaque) global controller, identify the serving satellite each
// 15-second slot from obstruction-map diffs and public TLEs (§4),
// characterize the controller's preferences from the resulting
// chosen-vs-available sets (§5), and train an offline model that
// predicts the characteristics of the next allocation (§6).
//
// The package consumes only externally observable artifacts —
// obstruction maps, TLE-derived geometry, sunlit state, launch dates,
// wall-clock time. Ground-truth allocations from internal/scheduler
// are used exclusively to *validate* the identification (the paper's
// manual pilot study) and are plumbed separately so that misuse is
// visible in call signatures.
package core

import (
	"fmt"
	"time"

	"repro/internal/astro"
	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/units"
)

// SatObs is one available satellite's publicly observable features
// during a slot.
type SatObs struct {
	ID           int
	ElevationDeg float64
	AzimuthDeg   float64
	RangeKm      float64
	AgeYears     float64
	LaunchDate   time.Time
	Sunlit       bool
}

// Observation is one slot's chosen-vs-available record for one
// terminal: the inputs every §5 analysis and the §6 model consume.
type Observation struct {
	Terminal  string
	SlotStart time.Time
	LocalHour int
	Available []SatObs
	// ChosenIdx indexes Available; -1 when identification failed or no
	// satellite was serving.
	ChosenIdx int
}

// Chosen returns the chosen satellite's observation, ok=false when
// identification failed.
func (o *Observation) Chosen() (SatObs, bool) {
	if o.ChosenIdx < 0 || o.ChosenIdx >= len(o.Available) {
		return SatObs{}, false
	}
	return o.Available[o.ChosenIdx], true
}

// AvailableSet computes the publicly derivable available set for a
// terminal and slot from a constellation snapshot: every satellite
// above the 25° mask with its look angles, age, and sunlit state.
func AvailableSet(snap []constellation.SatState, vp geo.VantagePoint, slotStart time.Time, minElevDeg float64) []SatObs {
	return availFromFov(constellation.ObserveFrom(vp.Location, snap, minElevDeg), slotStart)
}

// AvailableSetIndexed is AvailableSet answered through a spatial index
// over the same snapshot — identical output (set, order, floats) in
// near-O(visible) instead of O(constellation).
func AvailableSetIndexed(ix *constellation.SnapshotIndex, vp geo.VantagePoint, slotStart time.Time, minElevDeg float64) []SatObs {
	return availFromFov(ix.ObserveFrom(vp.Location, minElevDeg), slotStart)
}

// availFromFov converts a sorted field-of-view into the observation
// rows — the single conversion both AvailableSet paths share.
func availFromFov(fov []constellation.Visible, slotStart time.Time) []SatObs {
	out := make([]SatObs, 0, len(fov))
	for _, v := range fov {
		out = append(out, SatObs{
			ID:           v.Sat.ID,
			ElevationDeg: v.Look.ElevationDeg,
			AzimuthDeg:   v.Look.AzimuthDeg,
			RangeKm:      v.Look.RangeKm,
			AgeYears:     v.Sat.AgeYears(slotStart),
			LaunchDate:   v.Sat.Launch,
			Sunlit:       v.Sunlit,
		})
	}
	return out
}

// LocalHour converts a UTC slot time to the terminal's local hour
// using its fixed UTC offset.
func LocalHour(vp geo.VantagePoint, t time.Time) int {
	h := (t.UTC().Hour() + vp.UTCOffsetHours) % 24
	if h < 0 {
		h += 24
	}
	return h
}

// indexOf finds a satellite ID in an available set, -1 if absent.
func indexOf(avail []SatObs, id int) int {
	for i, a := range avail {
		if a.ID == id {
			return i
		}
	}
	return -1
}

// quadrant names the paper's Figure 5 azimuth quadrants.
func quadrant(azDeg float64) string {
	az := units.WrapDeg360(azDeg)
	switch {
	case az < 90:
		return "NE"
	case az < 180:
		return "SE"
	case az < 270:
		return "SW"
	default:
		return "NW"
	}
}

// isNorth reports whether an azimuth points into the northern half of
// the sky (NE or NW quadrant).
func isNorth(azDeg float64) bool {
	q := quadrant(azDeg)
	return q == "NE" || q == "NW"
}

// validateVantagePoint confirms a terminal definition is usable.
func validateVantagePoint(vp geo.VantagePoint) error {
	if vp.Name == "" {
		return fmt.Errorf("core: vantage point has no name")
	}
	if vp.Location == (astro.Geodetic{}) {
		return fmt.Errorf("core: vantage point %q has zero location", vp.Name)
	}
	return nil
}
