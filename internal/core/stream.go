package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/constellation"
	"repro/internal/dtw"
	"repro/internal/obstruction"
	"repro/internal/scheduler"
)

// EmitFunc receives one campaign record. Implementations must not
// retain rec's slices past the call; copy what outlives it. Returning
// an error aborts the campaign and surfaces the error from
// RunCampaignStream.
type EmitFunc func(rec SlotRecord) error

// CampaignStats summarizes a streamed campaign without retaining any
// records, so arbitrarily long campaigns report in O(1) memory.
type CampaignStats struct {
	Slots, Terminals int
	// Records is the number of records emitted (slots × terminals on a
	// complete run).
	Records int
	// Served counts records with a valid chosen satellite — the rows
	// the §5/§6 analyses consume.
	Served int
	// Identification validation counters (non-oracle runs), identical
	// to the batch CampaignResult's.
	Attempted, Correct, Failed int
	// Skips histograms every non-empty SkipReason, surfacing what the
	// batch path used to discard silently.
	Skips map[string]int
	// PropagationSkips counts satellites dropped from snapshots by
	// propagation failures, summed over slots (a persistently failing
	// satellite counts once per slot). Zero on healthy runs; non-zero
	// means available sets were silently smaller than the constellation.
	PropagationSkips int
}

// Accuracy returns the identification accuracy over attempted slots.
func (s *CampaignStats) Accuracy() float64 {
	if s.Attempted == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Attempted)
}

// Dropped counts emitted records without a usable chosen satellite.
func (s *CampaignStats) Dropped() int { return s.Records - s.Served }

// observe folds one emitted record into the stats. Called from exactly
// one goroutine (the serial loop or the parallel emitter), in emission
// order.
func (s *CampaignStats) observe(rec *SlotRecord) {
	s.Records++
	if rec.ChosenIdx >= 0 {
		s.Served++
	}
	if rec.SkipReason != "" {
		if s.Skips == nil {
			s.Skips = map[string]int{}
		}
		s.Skips[rec.SkipReason]++
	}
}

// RunCampaignStream executes the campaign, pushing each SlotRecord to
// emit in deterministic (slot, terminal) order — the exact sequence
// the batch RunCampaign materializes — without retaining records. With
// cfg.Workers > 1 the concurrent engine runs behind a bounded reorder
// window, so steady-state memory is O(workers × terminals), not
// O(slots): campaigns far larger than memory stream through.
//
// On ctx cancellation or an emit error the partial stream stops,
// already-emitted records stand, and the error is returned with nil
// stats.
func RunCampaignStream(ctx context.Context, cfg CampaignConfig, emit EmitFunc) (*CampaignStats, error) {
	terms, workers, err := prepareCampaign(&cfg)
	if err != nil {
		return nil, err
	}
	var t0 time.Time
	if cfg.Metrics != nil {
		t0 = time.Now()
	}
	var stats *CampaignStats
	if workers <= 1 {
		stats, err = streamSerial(ctx, cfg, terms, emit)
	} else {
		stats, err = streamParallel(ctx, cfg, terms, workers, emit)
	}
	if err == nil && cfg.Metrics != nil {
		cfg.Metrics.campaignDone(cfg.Slots, time.Since(t0))
	}
	return stats, err
}

// prepareCampaign validates the config, applies defaults, and resolves
// the worker count. Shared by the streaming engine and the batch
// wrapper so the two cannot diverge on validation.
func prepareCampaign(cfg *CampaignConfig) ([]scheduler.Terminal, int, error) {
	if err := cfg.validate(); err != nil {
		return nil, 0, err
	}
	if cfg.ResetEvery == 0 {
		cfg.ResetEvery = 40
	}
	if cfg.Snapshots == nil {
		cfg.Snapshots = constellation.NewSnapshotCache(0, nil)
	}
	if cfg.SnapshotWorkers != 0 {
		cfg.Snapshots.SetSnapshotWorkers(cfg.SnapshotWorkers)
	}
	terms := cfg.Scheduler.Terminals()
	for _, t := range terms {
		if err := validateVantagePoint(t.VantagePoint); err != nil {
			return nil, 0, err
		}
	}
	lo, hi := cfg.Shard.bounds(len(terms))
	if lo < 0 || hi > len(terms) || lo >= hi {
		return nil, 0, fmt.Errorf("core: shard [%d,%d) outside fleet of %d terminals", lo, hi, len(terms))
	}
	workers := cfg.resolveWorkers(len(terms))
	// Sharded and resumed runs take the serial engine: the parallel
	// reorder ring assumes every terminal produces a record per slot,
	// and replay determinism is easiest to audit on one goroutine.
	if lo != 0 || hi != len(terms) || cfg.EmitFromSlot > 0 {
		workers = 1
	}
	return terms, workers, nil
}

// streamSerial is the single-threaded engine: one loop over slots ×
// terminals, checking ctx once per slot and emitting records as they
// are produced. Live memory is one snapshot + one dish map per
// terminal regardless of campaign length.
func streamSerial(ctx context.Context, cfg CampaignConfig, terms []scheduler.Terminal, emit EmitFunc) (*CampaignStats, error) {
	lo, hi := cfg.Shard.bounds(len(terms))
	// Dish maps exist only for the identification path; oracle-mode
	// fleets (100k terminals) must not pay ~15 KB per terminal for maps
	// nothing reads. A shard owns maps only for its own range — the
	// scheduler's allocations for other terminals never touch a dish.
	maps := make(map[string]*obstruction.Map, hi-lo)
	if !cfg.Oracle {
		for _, t := range terms[lo:hi] {
			maps[t.Name] = obstruction.New()
		}
	}
	matcher := &dtw.Matcher{}
	scratch := &slotScratch{}

	stats := &CampaignStats{Slots: cfg.Slots, Terminals: hi - lo}
	start := scheduler.EpochStart(cfg.Start)
	for slot := 0; slot < cfg.Slots; slot++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		slotStart := start.Add(time.Duration(slot) * scheduler.Period)
		shared := cfg.Snapshots.Acquire(cfg.Identifier.cons, slotStart)
		stats.PropagationSkips += shared.Skipped()
		allocs := cfg.Scheduler.Allocate(slotStart)
		cfg.Metrics.slotProduced()

		if !cfg.Oracle && cfg.ResetEvery > 0 && slot%cfg.ResetEvery == 0 && slot > 0 {
			for _, m := range maps {
				m.Reset()
			}
		}

		for ti := lo; ti < hi; ti++ {
			t := terms[ti]
			rec := runSlotTerminal(&cfg, t, maps[t.Name], matcher, scratch, slotStart, shared,
				allocFor(allocs, ti, t.Name),
				&stats.Attempted, &stats.Correct, &stats.Failed)
			if slot < cfg.EmitFromSlot {
				continue // replayed slot: state advanced, emission suppressed
			}
			stats.observe(&rec)
			cfg.Metrics.observeRecord(&rec)
			if err := emit(rec); err != nil {
				shared.Release()
				return nil, err
			}
		}
		shared.Release()
		cfg.Metrics.slotEmitted()
	}
	cfg.Metrics.flushMatcher(matcher.Stats)
	return stats, nil
}

// streamParallel is the concurrent streaming engine. Division of
// labor, building on the batch parallel engine's invariants:
//
//   - The producer runs the scheduler serially in slot order — the
//     controller is stateful (hidden load walk, score-noise RNG), so
//     its call sequence must match the serial engine exactly.
//   - Terminals are sharded across workers by index (terminal i goes
//     to worker i % workers), so each terminal's obstruction map is
//     owned by exactly one goroutine and evolves in slot order.
//   - Records land in a reorder ring of `window` slots; a single
//     emitter drains completed slots in order, so downstream consumers
//     see exactly the serial (slot, terminal) sequence.
//   - The producer takes a token per slot and the emitter returns it
//     after the slot is fully emitted, bounding records, snapshots,
//     and scheduler outputs in flight to the window — the whole
//     campaign streams in O(window) memory however many slots it has.
func streamParallel(ctx context.Context, cfg CampaignConfig, terms []scheduler.Terminal, workers int, emit EmitFunc) (*CampaignStats, error) {
	nTerms := len(terms)
	// Each worker channel buffers 4 slots; size the reorder window so
	// the buffers plus in-flight slots never stall a worker that is
	// ahead of the emitter. At fleet scale the ring is window × nTerms
	// records (~1 KB each), so cap the total in-flight records — a
	// 100k-terminal fleet must not buffer gigabytes.
	window := workers*4 + 4
	const maxRingRecords = 1 << 18
	if nTerms > 0 && window*nTerms > maxRingRecords {
		window = maxRingRecords / nTerms
		if window < 2 {
			window = 2
		}
	}
	if window > cfg.Slots {
		window = cfg.Slots
	}

	ring := make([][]SlotRecord, window)
	for i := range ring {
		ring[i] = make([]SlotRecord, nTerms)
	}
	// left[i] counts terminals still unprocessed for the slot currently
	// occupying ring cell i; the worker that zeroes it announces the
	// slot to the emitter.
	left := make([]atomic.Int32, window)

	// Lazily acquired, refcounted shared snapshots, one ring cell per
	// in-flight slot. The producer resets the refcount before
	// dispatching a slot into a cell (the token guarantees the cell is
	// free); the last worker release returns the cache reference. The
	// scheduler's Allocate call for the same slot hits the same cache
	// entry, so propagation runs once per slot globally.
	snaps := make([]struct {
		mu     sync.Mutex
		shared *constellation.SharedSnapshot
	}, window)
	snapLeft := make([]atomic.Int32, window)
	var propSkips atomic.Int64

	start := scheduler.EpochStart(cfg.Start)
	slotTime := func(slot int) time.Time {
		return start.Add(time.Duration(slot) * scheduler.Period)
	}
	getSnap := func(slot int) *constellation.SharedSnapshot {
		c := &snaps[slot%window]
		c.mu.Lock()
		if c.shared == nil {
			c.shared = cfg.Snapshots.Acquire(cfg.Identifier.cons, slotTime(slot))
			propSkips.Add(int64(c.shared.Skipped()))
		}
		s := c.shared
		c.mu.Unlock()
		return s
	}
	releaseSnap := func(slot int) {
		i := slot % window
		if snapLeft[i].Add(-1) == 0 {
			c := &snaps[i]
			c.mu.Lock()
			c.shared.Release()
			c.shared = nil
			c.mu.Unlock()
		}
	}

	// run cancels on upstream ctx, producer exhaustion is separate; an
	// emit error must also stop the producer and workers.
	run, cancel := context.WithCancel(ctx)
	defer cancel()

	type counters struct{ attempted, correct, failed int }
	chans := make([]chan slotItem, workers)
	for w := range chans {
		chans[w] = make(chan slotItem, 4)
	}
	doneSlots := make(chan int, window)
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}

	tallies := make([]counters, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			maps := make(map[string]*obstruction.Map)
			if !cfg.Oracle {
				for ti := w; ti < nTerms; ti += workers {
					maps[terms[ti].Name] = obstruction.New()
				}
			}
			matcher := &dtw.Matcher{}
			scratch := &slotScratch{}
			var c counters
			for item := range chans[w] {
				if run.Err() != nil {
					continue // drain; the stream is abandoned
				}
				if !cfg.Oracle && cfg.ResetEvery > 0 && item.slot%cfg.ResetEvery == 0 && item.slot > 0 {
					for _, m := range maps {
						m.Reset()
					}
				}
				for ti := w; ti < nTerms; ti += workers {
					t := terms[ti]
					rec := runSlotTerminal(&cfg, t, maps[t.Name], matcher, scratch, item.slotStart,
						getSnap(item.slot), allocFor(item.allocs, ti, t.Name),
						&c.attempted, &c.correct, &c.failed)
					releaseSnap(item.slot)
					ring[item.slot%window][ti] = rec
					if left[item.slot%window].Add(-1) == 0 {
						doneSlots <- item.slot
					}
				}
			}
			tallies[w] = c
			cfg.Metrics.flushMatcher(matcher.Stats)
		}(w)
	}

	// The emitter drains completed slots in slot order and pushes each
	// record downstream, then returns the slot's token to the producer.
	stats := &CampaignStats{Slots: cfg.Slots, Terminals: nTerms}
	var emitErr error
	var emitWG sync.WaitGroup
	emitWG.Add(1)
	go func() {
		defer emitWG.Done()
		completed := make(map[int]bool, window)
		next := 0
		for next < cfg.Slots {
			select {
			case s := <-doneSlots:
				completed[s] = true
			case <-run.Done():
				return
			}
			for completed[next] {
				delete(completed, next)
				cell := ring[next%window]
				for ti := range cell {
					stats.observe(&cell[ti])
					cfg.Metrics.observeRecord(&cell[ti])
					if err := emit(cell[ti]); err != nil {
						emitErr = err
						cancel()
						return
					}
				}
				cfg.Metrics.slotEmitted()
				next++
				select {
				case tokens <- struct{}{}:
				case <-run.Done():
					return
				}
			}
		}
	}()

	var cancelErr error
produce:
	for slot := 0; slot < cfg.Slots; slot++ {
		select {
		case <-tokens:
		case <-run.Done():
			cancelErr = run.Err()
			break produce
		}
		i := slot % window
		left[i].Store(int32(nTerms))
		snapLeft[i].Store(int32(nTerms))
		t := slotTime(slot)
		item := slotItem{slot: slot, slotStart: t, allocs: cfg.Scheduler.Allocate(t)}
		cfg.Metrics.slotProduced()
		for _, ch := range chans {
			select {
			case ch <- item:
			case <-run.Done():
				cancelErr = run.Err()
				break produce
			}
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	// An abandoned run leaves dispatched slots unprocessed; return their
	// stranded snapshot references so a shared cache does not stay
	// pinned. Safe here: workers and producer are done, and the emitter
	// never touches snaps.
	for i := range snaps {
		if snaps[i].shared != nil {
			snaps[i].shared.Release()
			snaps[i].shared = nil
		}
	}
	// On an abandoned run the emitter may be blocked waiting for slots
	// that will never complete; cancel to release it. On a clean run
	// every dispatched slot completes, so the emitter drains the tail
	// on its own — cancelling early here would truncate the stream.
	if cancelErr != nil || ctx.Err() != nil {
		cancel()
	}
	emitWG.Wait()

	if emitErr != nil {
		return nil, emitErr
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, c := range tallies {
		stats.Attempted += c.attempted
		stats.Correct += c.correct
		stats.Failed += c.failed
	}
	stats.PropagationSkips = int(propSkips.Load())
	return stats, nil
}
