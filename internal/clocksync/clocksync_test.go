package clocksync

import (
	"context"
	"errors"
	"testing"
	"time"
)

func startServer(t *testing.T, clock Clock) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", clock)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go srv.Serve(ctx)
	t.Cleanup(func() { cancel(); srv.Close() })
	return srv
}

func TestPacketRoundTrip(t *testing.T) {
	p := packet{Type: typeReply, T1: 111, T2: 222, T3: 333}
	q, err := parsePacket(p.marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("round trip %+v -> %+v", p, q)
	}
}

func TestPacketValidation(t *testing.T) {
	p := packet{Type: typeRequest, T1: 1}
	buf := p.marshal(nil)
	if _, err := parsePacket(buf[:10]); !errors.Is(err, ErrBadPacket) {
		t.Error("short accepted")
	}
	bad := append([]byte(nil), buf...)
	bad[0] = 'X'
	if _, err := parsePacket(bad); !errors.Is(err, ErrBadPacket) {
		t.Error("bad magic accepted")
	}
	flip := append([]byte(nil), buf...)
	flip[7] ^= 1
	if _, err := parsePacket(flip); !errors.Is(err, ErrBadPacket) {
		t.Error("corruption accepted")
	}
}

func TestSyncZeroOffsetLoopback(t *testing.T) {
	srv := startServer(t, nil)
	res, err := Sync(context.Background(), srv.Addr().String(), Config{Probes: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Same clock on both sides: offset must be tiny relative to delay.
	if off := res.Best.Offset.Abs(); off > 5*time.Millisecond {
		t.Errorf("loopback offset = %v", off)
	}
	if res.Best.Delay <= 0 || res.Best.Delay > 100*time.Millisecond {
		t.Errorf("loopback delay = %v", res.Best.Delay)
	}
	if len(res.All) == 0 {
		t.Fatal("no measurements")
	}
}

func TestSyncRecoversInjectedSkew(t *testing.T) {
	const skew = 1500 * time.Millisecond
	srv := startServer(t, func() time.Time { return time.Now().Add(skew) })
	res, err := Sync(context.Background(), srv.Addr().String(), Config{Probes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if diff := (res.Best.Offset - skew).Abs(); diff > 10*time.Millisecond {
		t.Errorf("recovered offset %v, want ~%v", res.Best.Offset, skew)
	}
	// Negative skew too.
	srv2 := startServer(t, func() time.Time { return time.Now().Add(-skew) })
	res, err = Sync(context.Background(), srv2.Addr().String(), Config{Probes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if diff := (res.Best.Offset + skew).Abs(); diff > 10*time.Millisecond {
		t.Errorf("recovered negative offset %v, want ~%v", res.Best.Offset, -skew)
	}
}

func TestSyncBestIsMinDelay(t *testing.T) {
	srv := startServer(t, nil)
	res, err := Sync(context.Background(), srv.Addr().String(), Config{Probes: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.All {
		if m.Delay < res.Best.Delay {
			t.Errorf("Best.Delay %v not minimal (found %v)", res.Best.Delay, m.Delay)
		}
	}
}

func TestSyncNoServer(t *testing.T) {
	// Dial succeeds on UDP; all probes must time out.
	_, err := Sync(context.Background(), "127.0.0.1:1", Config{Probes: 2, Timeout: 50 * time.Millisecond})
	if !errors.Is(err, ErrNoReplies) {
		t.Errorf("err = %v, want ErrNoReplies", err)
	}
}

func TestSyncContextCancel(t *testing.T) {
	srv := startServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Canceled before start: at most one probe goes out; result may
	// still carry it. Just require no hang.
	done := make(chan struct{})
	go func() {
		Sync(ctx, srv.Addr().String(), Config{Probes: 100, Interval: time.Second})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Sync hung after cancel")
	}
}

func TestDisciplinedClock(t *testing.T) {
	base := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	local := func() time.Time { return base }
	d := NewDisciplinedClock(local, 250*time.Millisecond)
	if got := d.Now(); !got.Equal(base.Add(250 * time.Millisecond)) {
		t.Errorf("Now = %v", got)
	}
	if d.Offset() != 250*time.Millisecond {
		t.Error("Offset")
	}
	// nil local falls back to time.Now.
	d2 := NewDisciplinedClock(nil, 0)
	if d2.Now().IsZero() {
		t.Error("nil local clock broken")
	}
}

func TestEndToEndDiscipline(t *testing.T) {
	// Full workflow: a skewed "server" clock, measure, discipline the
	// local clock, verify both now agree.
	const skew = -700 * time.Millisecond
	serverClock := func() time.Time { return time.Now().Add(skew) }
	srv := startServer(t, serverClock)
	res, err := Sync(context.Background(), srv.Addr().String(), Config{Probes: 8})
	if err != nil {
		t.Fatal(err)
	}
	disciplined := NewDisciplinedClock(nil, res.Best.Offset)
	if diff := disciplined.Now().Sub(serverClock()).Abs(); diff > 15*time.Millisecond {
		t.Errorf("disciplined clock disagrees with server by %v", diff)
	}
}
