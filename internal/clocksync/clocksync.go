// Package clocksync implements the clock-offset estimation the
// paper's methodology depends on: the vantage-point Raspberry Pis and
// the PoP servers were "routinely synchronized using NTP" so that
// millisecond-granularity RTT measurements stay meaningful.
//
// The protocol is the classic four-timestamp exchange over UDP
// (SNTP-style, not wire-compatible with RFC 5905 — this repository
// speaks its own compact format):
//
//	t1   client transmit
//	t2   server receive
//	t3   server transmit
//	t4   client receive
//
//	offset = ((t2 - t1) + (t3 - t4)) / 2
//	delay  =  (t4 - t1) - (t3 - t2)
//
// A Sync run sends several probes and keeps the offset from the
// minimum-delay exchange — the standard filter against queueing noise.
//
// Wire format (fixed 37 bytes):
//
//	offset size  field
//	0      4     magic "CSYN"
//	4      1     type (1 = request, 2 = reply)
//	5      8     t1, client transmit unix nanos
//	13     8     t2, server receive unix nanos (reply only)
//	21     8     t3, server transmit unix nanos (reply only)
//	29     8     checksum: FNV-1a of bytes [0,29)
package clocksync

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"time"
)

const packetSize = 37

var magic = [4]byte{'C', 'S', 'Y', 'N'}

const (
	typeRequest = 1
	typeReply   = 2
)

// ErrBadPacket reports a malformed or foreign datagram.
var ErrBadPacket = errors.New("clocksync: malformed packet")

// ErrNoReplies is returned when a Sync run gets no valid replies.
var ErrNoReplies = errors.New("clocksync: no replies")

type packet struct {
	Type byte
	T1   int64
	T2   int64
	T3   int64
}

func (p *packet) marshal(buf []byte) []byte {
	if cap(buf) < packetSize {
		buf = make([]byte, packetSize)
	}
	buf = buf[:packetSize]
	copy(buf[0:4], magic[:])
	buf[4] = p.Type
	binary.BigEndian.PutUint64(buf[5:13], uint64(p.T1))
	binary.BigEndian.PutUint64(buf[13:21], uint64(p.T2))
	binary.BigEndian.PutUint64(buf[21:29], uint64(p.T3))
	binary.BigEndian.PutUint64(buf[29:37], fnvSum(buf[:29]))
	return buf
}

func parsePacket(b []byte) (packet, error) {
	if len(b) != packetSize {
		return packet{}, fmt.Errorf("%w: %d bytes", ErrBadPacket, len(b))
	}
	if [4]byte(b[0:4]) != magic {
		return packet{}, fmt.Errorf("%w: bad magic", ErrBadPacket)
	}
	if binary.BigEndian.Uint64(b[29:37]) != fnvSum(b[:29]) {
		return packet{}, fmt.Errorf("%w: bad checksum", ErrBadPacket)
	}
	p := packet{
		Type: b[4],
		T1:   int64(binary.BigEndian.Uint64(b[5:13])),
		T2:   int64(binary.BigEndian.Uint64(b[13:21])),
		T3:   int64(binary.BigEndian.Uint64(b[21:29])),
	}
	if p.Type != typeRequest && p.Type != typeReply {
		return packet{}, fmt.Errorf("%w: type %d", ErrBadPacket, p.Type)
	}
	return p, nil
}

func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Clock abstracts the local clock so tests can inject skew. Nil means
// time.Now.
type Clock func() time.Time

// Server answers time queries using its clock.
type Server struct {
	conn  *net.UDPConn
	clock Clock
}

// NewServer listens on addr. clock == nil uses the system clock.
func NewServer(addr string, clock Clock) (*Server, error) {
	if clock == nil {
		clock = time.Now
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("clocksync: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("clocksync: listen %q: %w", addr, err)
	}
	return &Server{conn: conn, clock: clock}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Close shuts the listener.
func (s *Server) Close() error { return s.conn.Close() }

// Serve answers until ctx is canceled or the connection closes.
func (s *Server) Serve(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		s.conn.Close()
	}()
	buf := make([]byte, 2048)
	out := make([]byte, packetSize)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("clocksync: read: %w", err)
		}
		recv := s.clock()
		p, err := parsePacket(buf[:n])
		if err != nil || p.Type != typeRequest {
			continue
		}
		reply := packet{Type: typeReply, T1: p.T1, T2: recv.UnixNano(), T3: s.clock().UnixNano()}
		if _, err := s.conn.WriteToUDP(reply.marshal(out), peer); err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// Measurement is one completed four-timestamp exchange.
type Measurement struct {
	Offset time.Duration // server clock minus client clock
	Delay  time.Duration // round-trip network delay
}

// Result summarizes a Sync run.
type Result struct {
	// Best is the measurement with the smallest delay — the standard
	// NTP-style filter.
	Best Measurement
	// All holds every completed exchange, in probe order.
	All []Measurement
}

// Config controls a Sync run.
type Config struct {
	// Probes is the number of exchanges. Default 8.
	Probes int
	// Interval between probes. Default 50 ms.
	Interval time.Duration
	// Timeout per probe. Default 500 ms.
	Timeout time.Duration
	// Clock is the local clock; nil uses time.Now.
	Clock Clock
}

func (c *Config) applyDefaults() {
	if c.Probes <= 0 {
		c.Probes = 8
	}
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 500 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// Sync measures the offset between the local clock and the server's.
func Sync(ctx context.Context, addr string, cfg Config) (*Result, error) {
	cfg.applyDefaults()
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("clocksync: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("clocksync: dial %q: %w", addr, err)
	}
	defer conn.Close()

	res := &Result{}
	buf := make([]byte, 2048)
	sendBuf := make([]byte, packetSize)
	for i := 0; i < cfg.Probes; i++ {
		if ctx.Err() != nil {
			break
		}
		t1 := cfg.Clock()
		req := packet{Type: typeRequest, T1: t1.UnixNano()}
		if _, err := conn.Write(req.marshal(sendBuf)); err != nil {
			return nil, fmt.Errorf("clocksync: send: %w", err)
		}
		conn.SetReadDeadline(time.Now().Add(cfg.Timeout))
		for {
			n, err := conn.Read(buf)
			if err != nil {
				break // timeout: lost probe
			}
			t4 := cfg.Clock()
			p, err := parsePacket(buf[:n])
			if err != nil || p.Type != typeReply || p.T1 != t1.UnixNano() {
				continue // stale or foreign datagram; keep reading
			}
			m := Measurement{
				Offset: (time.Duration(p.T2-p.T1) + time.Duration(p.T3-t4.UnixNano())) / 2,
				Delay:  time.Duration(t4.UnixNano()-p.T1) - time.Duration(p.T3-p.T2),
			}
			res.All = append(res.All, m)
			break
		}
		if i < cfg.Probes-1 {
			select {
			case <-time.After(cfg.Interval):
			case <-ctx.Done():
			}
		}
	}
	if len(res.All) == 0 {
		return nil, ErrNoReplies
	}
	res.Best = res.All[0]
	for _, m := range res.All[1:] {
		if m.Delay < res.Best.Delay {
			res.Best = m
		}
	}
	return res, nil
}

// DisciplinedClock wraps a local clock with a measured offset so
// timestamps can be expressed in the server's timebase — what the
// study's measurement boxes effectively did via NTP.
type DisciplinedClock struct {
	local  Clock
	offset time.Duration
}

// NewDisciplinedClock builds a clock correcting local by offset.
func NewDisciplinedClock(local Clock, offset time.Duration) *DisciplinedClock {
	if local == nil {
		local = time.Now
	}
	return &DisciplinedClock{local: local, offset: offset}
}

// Now returns the corrected time.
func (d *DisciplinedClock) Now() time.Time { return d.local().Add(d.offset) }

// Offset returns the applied correction.
func (d *DisciplinedClock) Offset() time.Duration { return d.offset }
