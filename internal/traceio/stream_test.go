package traceio

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scheduler"
)

// randObservation draws a structurally valid observation from rng —
// the generator behind the property-based batch-vs-streaming checks.
func randObservation(rng *rand.Rand) core.Observation {
	n := rng.Intn(6)
	o := core.Observation{
		Terminal:  []string{"Iowa", "Madrid", "New York", "Seattle"}[rng.Intn(4)],
		SlotStart: time.Date(2023, 3, 1, 0, 0, 12, 0, time.UTC).Add(time.Duration(rng.Intn(1e6)) * 15 * time.Second),
		LocalHour: rng.Intn(24),
		ChosenIdx: -1,
	}
	for i := 0; i < n; i++ {
		o.Available = append(o.Available, core.SatObs{
			ID:           rng.Intn(5000) + 1,
			ElevationDeg: 25 + 65*rng.Float64(),
			AzimuthDeg:   360 * rng.Float64(),
			RangeKm:      500 + 1500*rng.Float64(),
			AgeYears:     4 * rng.Float64(),
			LaunchDate:   time.Date(2019+rng.Intn(4), time.Month(1+rng.Intn(12)), 1, 0, 0, 0, 0, time.UTC),
			Sunlit:       rng.Intn(2) == 0,
		})
	}
	if n > 0 && rng.Intn(4) > 0 {
		o.ChosenIdx = rng.Intn(n)
	}
	return o
}

// TestObservationBatchStreamEquivalence is the property-based check
// that the streaming codec and the batch helpers are the same format:
// for random observation sets, byte-identical encodings and
// deeply-equal decodings, in both directions.
func TestObservationBatchStreamEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		obs := make([]core.Observation, rng.Intn(20))
		for i := range obs {
			obs[i] = randObservation(rng)
		}

		var batch bytes.Buffer
		if err := WriteObservations(&batch, obs); err != nil {
			t.Fatal(err)
		}
		var streamed bytes.Buffer
		enc := NewObservationEncoder(&streamed)
		for i := range obs {
			if err := enc.Encode(&obs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batch.Bytes(), streamed.Bytes()) {
			t.Fatalf("trial %d: batch and streaming encodings differ", trial)
		}

		fromBatch, err := ReadObservations(bytes.NewReader(batch.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		dec := NewObservationDecoder(bytes.NewReader(streamed.Bytes()))
		var fromStream []core.Observation
		for {
			o, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			fromStream = append(fromStream, o)
		}
		if !reflect.DeepEqual(fromBatch, fromStream) {
			t.Fatalf("trial %d: batch and streaming decodings differ", trial)
		}
		if dec.Decoded() != len(obs) {
			t.Fatalf("trial %d: Decoded() = %d, want %d", trial, dec.Decoded(), len(obs))
		}
	}
}

// TestRecordRoundTrip covers the full-SlotRecord codec: encode ->
// decode recovers every field, including the ground-truth and
// identification ones the observation codec drops.
func TestRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var in []core.SlotRecord
	for i := 0; i < 40; i++ {
		rec := core.SlotRecord{
			Observation:  randObservation(rng),
			TrueID:       rng.Intn(5000),
			IdentifiedID: rng.Intn(5000),
			Margin:       10 * rng.Float64(),
		}
		if rec.ChosenIdx < 0 {
			rec.SkipReason = "no satellite allocated"
		}
		in = append(in, rec)
	}
	var buf bytes.Buffer
	enc := NewRecordEncoder(&buf)
	for i := range in {
		if err := enc.Encode(&in[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewRecordDecoder(&buf)
	var out []core.SlotRecord
	for {
		rec, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("record round trip lost data")
	}
}

// TestStreamDecoderErrors: truncated and garbage input must error
// with a decorated message, never panic, and validation must reject
// out-of-range chosen indices record by record.
func TestStreamDecoderErrors(t *testing.T) {
	cases := []string{
		"{broken",
		`{"Terminal":"x","Available":[{"ID":1}],"ChosenIdx":5}`,
		`{"Terminal":"x","Available":null,"ChosenIdx":0}`,
		"\x00\x01\x02",
		`[1,2,3`,
	}
	for i, c := range cases {
		if _, err := NewObservationDecoder(strings.NewReader(c)).Next(); err == nil || err == io.EOF {
			t.Errorf("observation case %d: err = %v, want decode error", i, err)
		}
		if _, err := NewRecordDecoder(strings.NewReader(c)).Next(); err == nil || err == io.EOF {
			t.Errorf("record case %d: err = %v, want decode error", i, err)
		}
	}
	// A valid record followed by a truncated one: the first decodes,
	// the second errors with its 1-based index.
	input := `{"Terminal":"x","Available":[{"ID":1}],"ChosenIdx":0}` + "\n" + `{"Terminal":`
	dec := NewObservationDecoder(strings.NewReader(input))
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err == nil || !strings.Contains(err.Error(), "observation 2") {
		t.Errorf("truncated tail error = %v, want observation 2 decode error", err)
	}
}

// encodeRecords renders records the way a journal stores them.
func encodeRecords(t *testing.T, recs []core.SlotRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewRecordEncoder(&buf)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTolerantTailReplay is the crash-replay contract: a journal cut
// mid-append yields every record up to the last complete line, a clean
// io.EOF, the truncation flag, and a resumable offset that appending a
// fresh record to extends the journal seamlessly.
func TestTolerantTailReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	recs := make([]core.SlotRecord, 5)
	for i := range recs {
		recs[i] = core.SlotRecord{Observation: randObservation(rng), TrueID: i + 1}
	}
	whole := encodeRecords(t, recs)

	// Cut inside the final record: everything from just past the 4th
	// line's newline up to (but excluding) the final newline.
	lines := bytes.SplitAfter(whole, []byte("\n"))
	complete := len(whole) - len(lines[4])
	for _, cut := range []int{complete + 1, complete + len(lines[4])/2, len(whole) - 1} {
		dec := NewRecordDecoder(bytes.NewReader(whole[:cut]))
		dec.TolerateTruncatedTail()
		var got []core.SlotRecord
		for {
			rec, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("cut=%d: %v", cut, err)
			}
			got = append(got, rec)
		}
		if len(got) != 4 {
			t.Fatalf("cut=%d: replayed %d records, want 4", cut, len(got))
		}
		if !dec.Truncated() {
			t.Errorf("cut=%d: truncation not reported", cut)
		}
		if dec.Offset() != int64(complete) {
			t.Errorf("cut=%d: offset = %d, want %d", cut, dec.Offset(), complete)
		}
		// Resume: append a fresh record at the offset; the journal must
		// replay strictly to 5 records.
		resumed := append(append([]byte(nil), whole[:dec.Offset()]...), encodeRecords(t, recs[4:])...)
		strict := NewRecordDecoder(bytes.NewReader(resumed))
		n := 0
		for {
			if _, err := strict.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("cut=%d: resumed journal: %v", cut, err)
			}
			n++
		}
		if n != 5 {
			t.Fatalf("cut=%d: resumed journal has %d records, want 5", cut, n)
		}
	}

	// A clean journal in tolerant mode: no truncation, offset = size.
	dec := NewRecordDecoder(bytes.NewReader(whole))
	dec.TolerateTruncatedTail()
	for {
		if _, err := dec.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if dec.Truncated() || dec.Offset() != int64(len(whole)) {
		t.Errorf("clean journal: truncated=%v offset=%d (size %d)", dec.Truncated(), dec.Offset(), len(whole))
	}

	// Strict mode must refuse the same truncated input with
	// ErrTruncatedTail.
	strict := NewRecordDecoder(bytes.NewReader(whole[:len(whole)-1]))
	var err error
	for err == nil {
		_, err = strict.Next()
	}
	if !errors.Is(err, ErrTruncatedTail) {
		t.Errorf("strict decode of truncated journal: %v, want ErrTruncatedTail", err)
	}

	// Garbage mid-stream stays a hard error even in tolerant mode.
	bad := append(append([]byte(nil), lines[0]...), []byte("{garbage}\n")...)
	bad = append(bad, lines[1]...)
	tol := NewRecordDecoder(bytes.NewReader(bad))
	tol.TolerateTruncatedTail()
	if _, err := tol.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := tol.Next(); err == nil || err == io.EOF {
		t.Errorf("mid-stream garbage tolerated: %v", err)
	}
}

// TestAllocationWriterMatchesBatch: the streaming TSV writer and the
// batch WriteAllocations emit identical bytes, header included, even
// for empty logs.
func TestAllocationWriterMatchesBatch(t *testing.T) {
	for _, allocs := range [][]scheduler.Allocation{nil, sampleAllocations()} {
		var batch bytes.Buffer
		if err := WriteAllocations(&batch, allocs); err != nil {
			t.Fatal(err)
		}
		var streamed bytes.Buffer
		aw := NewAllocationWriter(&streamed)
		for _, a := range allocs {
			if err := aw.Write(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := aw.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batch.Bytes(), streamed.Bytes()) {
			t.Errorf("len=%d: batch and streaming allocation TSV differ", len(allocs))
		}
	}
}
