package traceio

// Record-at-a-time codecs: the streaming counterparts of the batch
// helpers in traceio.go. Each encoder/decoder holds O(1) state, so a
// multi-million-slot campaign can be persisted while it runs and
// replayed without ever materializing the trace. The batch helpers
// are thin wrappers over these, so the two formats cannot drift.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/scheduler"
)

// ErrTruncatedTail reports a JSONL stream whose final line is
// incomplete — the signature a crash mid-append leaves behind. Strict
// decoders wrap it in their error; tolerant decoders (see
// TolerateTruncatedTail) swallow it, end the stream cleanly at the
// last complete record, and report the cut through Truncated and the
// resumable append point through Offset.
var ErrTruncatedTail = errors.New("traceio: truncated journal tail")

// syncer is the optional durability hook of an encoder's destination
// (*os.File qualifies).
type syncer interface{ Sync() error }

// flushSync drains bw and, when the destination can, forces it to
// stable storage — the "acked means durable" barrier for journals.
func flushSync(bw *bufio.Writer, w io.Writer) error {
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("traceio: flush: %w", err)
	}
	if s, ok := w.(syncer); ok {
		if err := s.Sync(); err != nil {
			return fmt.Errorf("traceio: sync: %w", err)
		}
	}
	return nil
}

// jsonlReader hands out complete JSONL lines with offset tracking and
// the strict/tolerant truncated-tail policy shared by both decoders.
// Errors are sticky: after any failure the stream position is
// untrustworthy, so every later next repeats the error.
type jsonlReader struct {
	br        *bufio.Reader
	off       int64 // end of the last fully consumed line
	tolerant  bool
	truncated bool
	err       error
}

func newJSONLReader(r io.Reader) *jsonlReader {
	return &jsonlReader{br: bufio.NewReader(r)}
}

// next returns the next non-blank complete line including its
// terminating newline; io.EOF ends the stream. A final line without a
// newline is a truncated tail: tolerant mode ends the stream cleanly
// there (the line is not returned and off stays at the last complete
// line), strict mode fails with ErrTruncatedTail.
func (r *jsonlReader) next() ([]byte, error) {
	if r.err != nil {
		return nil, r.err
	}
	for {
		line, err := r.br.ReadBytes('\n')
		switch {
		case err == nil:
			r.off += int64(len(line))
			if len(bytes.TrimSpace(line)) == 0 {
				continue // blank line: nothing to decode
			}
			return line, nil
		case err == io.EOF && len(line) == 0:
			r.err = io.EOF
			return nil, io.EOF
		case err == io.EOF:
			// Partial final line: a crash mid-append cut the stream here.
			r.truncated = true
			if r.tolerant {
				r.err = io.EOF
				return nil, io.EOF
			}
			r.err = fmt.Errorf("%w: %d bytes past offset %d", ErrTruncatedTail, len(line), r.off)
			return nil, r.err
		default:
			r.err = fmt.Errorf("traceio: read line: %w", err)
			return nil, r.err
		}
	}
}

// fail makes a decode error sticky: the decoder is unusable after.
func (r *jsonlReader) fail(err error) error {
	r.err = err
	return err
}

// ObservationEncoder streams observations as JSON Lines, one record
// per Encode call. Call Flush when done; output before a Flush may sit
// in the internal buffer. Close additionally syncs destinations that
// support it, making every encoded record durable.
type ObservationEncoder struct {
	w   io.Writer
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewObservationEncoder wraps w.
func NewObservationEncoder(w io.Writer) *ObservationEncoder {
	bw := bufio.NewWriter(w)
	return &ObservationEncoder{w: w, bw: bw, enc: json.NewEncoder(bw)}
}

// Encode appends one observation line.
func (e *ObservationEncoder) Encode(o *core.Observation) error {
	if err := e.enc.Encode(o); err != nil {
		return fmt.Errorf("traceio: write observation %d: %w", e.n, err)
	}
	e.n++
	return nil
}

// Flush drains the buffer to the underlying writer.
func (e *ObservationEncoder) Flush() error { return e.bw.Flush() }

// Sync flushes and forces the destination to stable storage when it
// supports Sync (an *os.File journal); the durability barrier behind
// an acknowledgment.
func (e *ObservationEncoder) Sync() error { return flushSync(e.bw, e.w) }

// Close finishes the stream: flush plus sync where supported. The
// encoder must not be used afterwards.
func (e *ObservationEncoder) Close() error { return e.Sync() }

// ObservationDecoder streams observations back from JSON Lines,
// validating each record as it decodes.
type ObservationDecoder struct {
	r *jsonlReader
	n int
}

// NewObservationDecoder wraps r.
func NewObservationDecoder(r io.Reader) *ObservationDecoder {
	return &ObservationDecoder{r: newJSONLReader(r)}
}

// TolerateTruncatedTail switches the decoder to crash-replay mode: a
// truncated final line ends the stream cleanly instead of failing.
// After io.EOF, Truncated reports whether a tail was dropped and
// Offset the byte position replay can resume appending from.
func (d *ObservationDecoder) TolerateTruncatedTail() { d.r.tolerant = true }

// Truncated reports whether the stream ended in a partial line.
func (d *ObservationDecoder) Truncated() bool { return d.r.truncated }

// Offset returns the byte offset just past the last complete line
// consumed — the resumable append point of a truncated journal.
func (d *ObservationDecoder) Offset() int64 { return d.r.off }

// Next returns the next observation; io.EOF ends a well-formed
// stream. Truncated or malformed input returns a decorated error —
// never a panic — and the decoder is not usable afterwards (in
// tolerant mode a truncated tail counts as a well-formed end).
func (d *ObservationDecoder) Next() (core.Observation, error) {
	var o core.Observation
	line, err := d.r.next()
	if err != nil {
		if err == io.EOF {
			return o, io.EOF
		}
		return o, fmt.Errorf("traceio: read observation %d: %w", d.n+1, err)
	}
	if err := json.Unmarshal(line, &o); err != nil {
		return o, d.r.fail(fmt.Errorf("traceio: read observation %d: %w", d.n+1, err))
	}
	d.n++
	if o.ChosenIdx >= len(o.Available) {
		return o, d.r.fail(fmt.Errorf("traceio: observation %d: chosen index %d out of range (%d available)",
			d.n, o.ChosenIdx, len(o.Available)))
	}
	return o, nil
}

// Decoded reports how many records have been decoded successfully.
func (d *ObservationDecoder) Decoded() int { return d.n }

// RecordEncoder streams full campaign SlotRecords (observation plus
// ground truth, identification answer, margin, and skip reason) as
// JSON Lines. Sync/Close force durability on destinations that support
// it — the coordinator's shard journals ack through Sync.
type RecordEncoder struct {
	w   io.Writer
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewRecordEncoder wraps w.
func NewRecordEncoder(w io.Writer) *RecordEncoder {
	bw := bufio.NewWriter(w)
	return &RecordEncoder{w: w, bw: bw, enc: json.NewEncoder(bw)}
}

// Encode appends one record line.
func (e *RecordEncoder) Encode(rec *core.SlotRecord) error {
	if err := e.enc.Encode(rec); err != nil {
		return fmt.Errorf("traceio: write record %d: %w", e.n, err)
	}
	e.n++
	return nil
}

// Flush drains the buffer to the underlying writer.
func (e *RecordEncoder) Flush() error { return e.bw.Flush() }

// Sync flushes and forces the destination to stable storage when it
// supports Sync — records are only "acked" once Sync returns.
func (e *RecordEncoder) Sync() error { return flushSync(e.bw, e.w) }

// Close finishes the stream: flush plus sync where supported. The
// encoder must not be used afterwards.
func (e *RecordEncoder) Close() error { return e.Sync() }

// RecordDecoder streams SlotRecords back from JSON Lines.
type RecordDecoder struct {
	r *jsonlReader
	n int
}

// NewRecordDecoder wraps r.
func NewRecordDecoder(r io.Reader) *RecordDecoder {
	return &RecordDecoder{r: newJSONLReader(r)}
}

// TolerateTruncatedTail switches the decoder to crash-replay mode: a
// truncated final line ends the stream cleanly instead of failing.
func (d *RecordDecoder) TolerateTruncatedTail() { d.r.tolerant = true }

// Truncated reports whether the stream ended in a partial line.
func (d *RecordDecoder) Truncated() bool { return d.r.truncated }

// Offset returns the byte offset just past the last complete line
// consumed — the resumable append point of a truncated journal.
func (d *RecordDecoder) Offset() int64 { return d.r.off }

// Next returns the next record; io.EOF ends a well-formed stream.
func (d *RecordDecoder) Next() (core.SlotRecord, error) {
	var rec core.SlotRecord
	line, err := d.r.next()
	if err != nil {
		if err == io.EOF {
			return rec, io.EOF
		}
		return rec, fmt.Errorf("traceio: read record %d: %w", d.n+1, err)
	}
	if err := json.Unmarshal(line, &rec); err != nil {
		return rec, d.r.fail(fmt.Errorf("traceio: read record %d: %w", d.n+1, err))
	}
	d.n++
	if rec.ChosenIdx >= len(rec.Available) {
		return rec, d.r.fail(fmt.Errorf("traceio: record %d: chosen index %d out of range (%d available)",
			d.n, rec.ChosenIdx, len(rec.Available)))
	}
	return rec, nil
}

// Decoded reports how many records have been decoded successfully.
func (d *RecordDecoder) Decoded() int { return d.n }

// AllocationWriter streams an allocation log as TSV one row at a
// time. The header row is emitted on construction; Flush finishes the
// stream (buffered write errors, including the header's, surface
// there or on the first Write after they occur).
type AllocationWriter struct {
	bw *bufio.Writer
	n  int
}

// NewAllocationWriter wraps w and buffers the header row.
func NewAllocationWriter(w io.Writer) *AllocationWriter {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "slot_start\tterminal\tsat_id\televation_deg\tazimuth_deg\trange_km\tsunlit\tlaunch\tcandidates")
	return &AllocationWriter{bw: bw}
}

// Write appends one allocation row.
func (w *AllocationWriter) Write(a scheduler.Allocation) error {
	sunlit := 0
	if a.Sunlit {
		sunlit = 1
	}
	launch := ""
	if !a.LaunchDate.IsZero() {
		launch = a.LaunchDate.UTC().Format(timeLayout)
	}
	if _, err := fmt.Fprintf(w.bw, "%s\t%s\t%d\t%g\t%g\t%g\t%d\t%s\t%d\n",
		a.SlotStart.UTC().Format(timeLayout), a.Terminal, a.SatID,
		a.ElevationDeg, a.AzimuthDeg, a.RangeKm, sunlit, launch, a.Candidates); err != nil {
		return fmt.Errorf("traceio: write allocation: %w", err)
	}
	w.n++
	return nil
}

// Flush drains the buffer to the underlying writer.
func (w *AllocationWriter) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("traceio: flush allocations: %w", err)
	}
	return nil
}
