package traceio

// Record-at-a-time codecs: the streaming counterparts of the batch
// helpers in traceio.go. Each encoder/decoder holds O(1) state, so a
// multi-million-slot campaign can be persisted while it runs and
// replayed without ever materializing the trace. The batch helpers
// are thin wrappers over these, so the two formats cannot drift.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/scheduler"
)

// ObservationEncoder streams observations as JSON Lines, one record
// per Encode call. Call Flush when done; output before a Flush may sit
// in the internal buffer.
type ObservationEncoder struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewObservationEncoder wraps w.
func NewObservationEncoder(w io.Writer) *ObservationEncoder {
	bw := bufio.NewWriter(w)
	return &ObservationEncoder{bw: bw, enc: json.NewEncoder(bw)}
}

// Encode appends one observation line.
func (e *ObservationEncoder) Encode(o *core.Observation) error {
	if err := e.enc.Encode(o); err != nil {
		return fmt.Errorf("traceio: write observation %d: %w", e.n, err)
	}
	e.n++
	return nil
}

// Flush drains the buffer to the underlying writer.
func (e *ObservationEncoder) Flush() error { return e.bw.Flush() }

// ObservationDecoder streams observations back from JSON Lines,
// validating each record as it decodes.
type ObservationDecoder struct {
	dec *json.Decoder
	n   int
}

// NewObservationDecoder wraps r.
func NewObservationDecoder(r io.Reader) *ObservationDecoder {
	return &ObservationDecoder{dec: json.NewDecoder(r)}
}

// Next returns the next observation; io.EOF ends a well-formed
// stream. Truncated or malformed input returns a decorated error —
// never a panic — and the decoder is not usable afterwards.
func (d *ObservationDecoder) Next() (core.Observation, error) {
	var o core.Observation
	if err := d.dec.Decode(&o); err != nil {
		if err == io.EOF {
			return o, io.EOF
		}
		return o, fmt.Errorf("traceio: read observation %d: %w", d.n+1, err)
	}
	d.n++
	if o.ChosenIdx >= len(o.Available) {
		return o, fmt.Errorf("traceio: observation %d: chosen index %d out of range (%d available)",
			d.n, o.ChosenIdx, len(o.Available))
	}
	return o, nil
}

// Decoded reports how many records have been decoded successfully.
func (d *ObservationDecoder) Decoded() int { return d.n }

// RecordEncoder streams full campaign SlotRecords (observation plus
// ground truth, identification answer, margin, and skip reason) as
// JSON Lines.
type RecordEncoder struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewRecordEncoder wraps w.
func NewRecordEncoder(w io.Writer) *RecordEncoder {
	bw := bufio.NewWriter(w)
	return &RecordEncoder{bw: bw, enc: json.NewEncoder(bw)}
}

// Encode appends one record line.
func (e *RecordEncoder) Encode(rec *core.SlotRecord) error {
	if err := e.enc.Encode(rec); err != nil {
		return fmt.Errorf("traceio: write record %d: %w", e.n, err)
	}
	e.n++
	return nil
}

// Flush drains the buffer to the underlying writer.
func (e *RecordEncoder) Flush() error { return e.bw.Flush() }

// RecordDecoder streams SlotRecords back from JSON Lines.
type RecordDecoder struct {
	dec *json.Decoder
	n   int
}

// NewRecordDecoder wraps r.
func NewRecordDecoder(r io.Reader) *RecordDecoder {
	return &RecordDecoder{dec: json.NewDecoder(r)}
}

// Next returns the next record; io.EOF ends a well-formed stream.
func (d *RecordDecoder) Next() (core.SlotRecord, error) {
	var rec core.SlotRecord
	if err := d.dec.Decode(&rec); err != nil {
		if err == io.EOF {
			return rec, io.EOF
		}
		return rec, fmt.Errorf("traceio: read record %d: %w", d.n+1, err)
	}
	d.n++
	if rec.ChosenIdx >= len(rec.Available) {
		return rec, fmt.Errorf("traceio: record %d: chosen index %d out of range (%d available)",
			d.n, rec.ChosenIdx, len(rec.Available))
	}
	return rec, nil
}

// Decoded reports how many records have been decoded successfully.
func (d *RecordDecoder) Decoded() int { return d.n }

// AllocationWriter streams an allocation log as TSV one row at a
// time. The header row is emitted on construction; Flush finishes the
// stream (buffered write errors, including the header's, surface
// there or on the first Write after they occur).
type AllocationWriter struct {
	bw *bufio.Writer
	n  int
}

// NewAllocationWriter wraps w and buffers the header row.
func NewAllocationWriter(w io.Writer) *AllocationWriter {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "slot_start\tterminal\tsat_id\televation_deg\tazimuth_deg\trange_km\tsunlit\tlaunch\tcandidates")
	return &AllocationWriter{bw: bw}
}

// Write appends one allocation row.
func (w *AllocationWriter) Write(a scheduler.Allocation) error {
	sunlit := 0
	if a.Sunlit {
		sunlit = 1
	}
	launch := ""
	if !a.LaunchDate.IsZero() {
		launch = a.LaunchDate.UTC().Format(timeLayout)
	}
	if _, err := fmt.Fprintf(w.bw, "%s\t%s\t%d\t%g\t%g\t%g\t%d\t%s\t%d\n",
		a.SlotStart.UTC().Format(timeLayout), a.Terminal, a.SatID,
		a.ElevationDeg, a.AzimuthDeg, a.RangeKm, sunlit, launch, a.Candidates); err != nil {
		return fmt.Errorf("traceio: write allocation: %w", err)
	}
	w.n++
	return nil
}

// Flush drains the buffer to the underlying writer.
func (w *AllocationWriter) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("traceio: flush allocations: %w", err)
	}
	return nil
}
