package traceio

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/scheduler"
)

func sampleAllocations() []scheduler.Allocation {
	t0 := time.Date(2023, 3, 1, 1, 0, 12, 0, time.UTC)
	return []scheduler.Allocation{
		{
			Terminal: "Iowa", SlotStart: t0, SatID: 44714,
			ElevationDeg: 63.25, AzimuthDeg: 342.1, RangeKm: 612.4,
			Sunlit: true, LaunchDate: time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC),
			Candidates: 17,
		},
		{Terminal: "Madrid", SlotStart: t0, SatID: 0, Candidates: 0}, // outage row
	}
}

func TestAllocationsRoundTrip(t *testing.T) {
	in := sampleAllocations()
	var buf bytes.Buffer
	if err := WriteAllocations(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAllocations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d rows, want %d", len(out), len(in))
	}
	for i := range in {
		if !out[i].SlotStart.Equal(in[i].SlotStart) ||
			out[i].Terminal != in[i].Terminal ||
			out[i].SatID != in[i].SatID ||
			out[i].ElevationDeg != in[i].ElevationDeg ||
			out[i].Sunlit != in[i].Sunlit ||
			!out[i].LaunchDate.Equal(in[i].LaunchDate) ||
			out[i].Candidates != in[i].Candidates {
			t.Errorf("row %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestReadAllocationsErrors(t *testing.T) {
	cases := []string{
		"header\nnot\tenough\tfields\n",
		"header\nbad-time\tIowa\t1\t2\t3\t4\t1\t\t5\n",
		"header\n2023-03-01T00:00:00Z\tIowa\tNaNid\t2\t3\t4\t1\t\t5\n",
	}
	for i, c := range cases {
		if _, err := ReadAllocations(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSamplesRoundTrip(t *testing.T) {
	t0 := time.Date(2023, 3, 1, 1, 0, 12, 345678000, time.UTC)
	in := []netsim.Sample{
		{T: t0, RTTms: 31.75, SatID: 44714},
		{T: t0.Add(20 * time.Millisecond), Lost: true},
	}
	var buf bytes.Buffer
	if err := WriteSamples(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("%d rows", len(out))
	}
	if !out[0].T.Equal(in[0].T) || out[0].RTTms != 31.75 || out[0].SatID != 44714 {
		t.Errorf("row 0: %+v", out[0])
	}
	if !out[1].Lost {
		t.Error("lost flag dropped")
	}
}

func TestReadSamplesErrors(t *testing.T) {
	if _, err := ReadSamples(strings.NewReader("h\nx\ty\n")); err == nil {
		t.Error("short row accepted")
	}
}

func TestObservationsRoundTrip(t *testing.T) {
	in := []core.Observation{
		{
			Terminal:  "Iowa",
			SlotStart: time.Date(2023, 3, 1, 1, 0, 12, 0, time.UTC),
			LocalHour: 19,
			Available: []core.SatObs{
				{ID: 1, ElevationDeg: 40, AzimuthDeg: 10, AgeYears: 1.5, Sunlit: true,
					LaunchDate: time.Date(2021, 9, 1, 0, 0, 0, 0, time.UTC)},
				{ID: 2, ElevationDeg: 70, AzimuthDeg: 350, AgeYears: 0.5, Sunlit: false},
			},
			ChosenIdx: 1,
		},
		{
			Terminal:  "Madrid",
			SlotStart: time.Date(2023, 3, 1, 1, 0, 27, 0, time.UTC),
			Available: []core.SatObs{{ID: 3, ElevationDeg: 30}},
			ChosenIdx: -1, // identification failed
		},
	}
	var buf bytes.Buffer
	if err := WriteObservations(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadObservations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("%d observations", len(out))
	}
	c, ok := out[0].Chosen()
	if !ok || c.ID != 2 || c.Sunlit {
		t.Errorf("chosen = %+v ok=%v", c, ok)
	}
	if _, ok := out[1].Chosen(); ok {
		t.Error("failed identification restored as chosen")
	}
	if out[0].Available[0].LaunchDate.IsZero() {
		t.Error("launch date dropped")
	}
}

func TestReadObservationsValidation(t *testing.T) {
	bad := `{"Terminal":"x","Available":[{"ID":1}],"ChosenIdx":5}`
	if _, err := ReadObservations(strings.NewReader(bad)); err == nil {
		t.Error("out-of-range chosen index accepted")
	}
	if _, err := ReadObservations(strings.NewReader("{broken")); err == nil {
		t.Error("broken json accepted")
	}
	out, err := ReadObservations(strings.NewReader(""))
	if err != nil || len(out) != 0 {
		t.Errorf("empty input: %v, %d", err, len(out))
	}
}

// TestEndToEndReanalysis proves a persisted campaign reloads into the
// same analysis results — the workflow of the paper's data release.
func TestEndToEndReanalysis(t *testing.T) {
	in := []core.Observation{}
	base := time.Date(2023, 3, 1, 1, 0, 12, 0, time.UTC)
	for i := 0; i < 30; i++ {
		in = append(in, core.Observation{
			Terminal:  "Iowa",
			SlotStart: base.Add(time.Duration(i) * 15 * time.Second),
			LocalHour: 19,
			Available: []core.SatObs{
				{ID: 1, ElevationDeg: 30 + float64(i%20), AzimuthDeg: 100, AgeYears: 2, Sunlit: true},
				{ID: 2, ElevationDeg: 60 + float64(i%20), AzimuthDeg: 350, AgeYears: 1, Sunlit: true},
			},
			ChosenIdx: 1,
		})
	}
	a1, err := core.AnalyzeAOE(in, 11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteObservations(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadObservations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.AnalyzeAOE(out, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a1.MedianLiftDeg != a2.MedianLiftDeg {
		t.Errorf("analysis changed after round trip: %v != %v", a1.MedianLiftDeg, a2.MedianLiftDeg)
	}
}
