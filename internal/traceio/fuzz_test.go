package traceio

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
)

// FuzzRecordDecoder hammers the streaming SlotRecord decoder with
// arbitrary bytes: it must never panic, must terminate, and whatever
// it does decode must survive a re-encode/re-decode round trip
// unchanged (the codec is its own inverse on its accepted language).
func FuzzRecordDecoder(f *testing.F) {
	f.Add([]byte(`{"Terminal":"Iowa","Available":[{"ID":1,"ElevationDeg":40}],"ChosenIdx":0,"TrueID":1}` + "\n"))
	f.Add([]byte(`{"Terminal":"x","Available":null,"ChosenIdx":-1}` + "\n" + `{"Terminal":"y"`))
	f.Add([]byte("{broken"))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewRecordDecoder(bytes.NewReader(data))
		const maxRecords = 1 << 12 // arbitrary input must not loop forever
		for i := 0; i < maxRecords; i++ {
			rec, err := dec.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				// Any later Next must keep failing, not panic.
				if _, err2 := dec.Next(); err2 == nil {
					t.Error("decoder recovered after an error")
				}
				return
			}
			if rec.ChosenIdx >= len(rec.Available) {
				t.Fatalf("validation let chosen index %d through (%d available)", rec.ChosenIdx, len(rec.Available))
			}
			var buf bytes.Buffer
			enc := NewRecordEncoder(&buf)
			if err := enc.Encode(&rec); err != nil {
				t.Fatalf("re-encode of accepted record failed: %v", err)
			}
			if err := enc.Flush(); err != nil {
				t.Fatal(err)
			}
			again, err := NewRecordDecoder(&buf).Next()
			if err != nil {
				t.Fatalf("re-decode of accepted record failed: %v", err)
			}
			if !reflect.DeepEqual(rec, again) {
				t.Fatal("record changed across re-encode round trip")
			}
		}
	})
}

// FuzzJournalReplay drives the crash-replay contract with arbitrary
// journal bytes: tolerant replay must never panic, must report an
// offset that sits inside the input on a complete-line boundary, and
// re-reading the prefix up to that offset strictly must yield exactly
// the same records with no truncation — the invariant the coordinator
// relies on when it trims and resumes a dead worker's journal.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte(`{"Terminal":"Iowa","Available":[{"ID":1,"ElevationDeg":40}],"ChosenIdx":0,"TrueID":1}` + "\n"))
	f.Add([]byte(`{"Terminal":"x","Available":null,"ChosenIdx":-1}` + "\n" + `{"Terminal":"y"`))
	f.Add([]byte(`{"Terminal":"x","Available":null,"ChosenIdx":-1,"TrueID":3}`)) // valid record, no newline
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("{broken"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewRecordDecoder(bytes.NewReader(data))
		dec.TolerateTruncatedTail()
		var replayed []core.SlotRecord
		const maxRecords = 1 << 12
		clean := false
		for i := 0; i < maxRecords; i++ {
			rec, err := dec.Next()
			if err == io.EOF {
				clean = true
				break
			}
			if err != nil {
				break // malformed mid-stream: still must not panic
			}
			replayed = append(replayed, rec)
		}
		off := dec.Offset()
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("offset %d outside input of %d bytes", off, len(data))
		}
		if off > 0 && data[off-1] != '\n' {
			t.Fatalf("offset %d not on a line boundary", off)
		}
		if !clean {
			return // hard decode error: offset still bounded, nothing to replay
		}
		if dec.Truncated() && off == int64(len(data)) {
			t.Fatal("truncation reported but the whole input was consumed")
		}
		// Strict re-read of the trimmed journal: identical records, no
		// truncation, same offset.
		again := NewRecordDecoder(bytes.NewReader(data[:off]))
		var second []core.SlotRecord
		for {
			rec, err := again.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("strict replay of trimmed journal failed: %v", err)
			}
			second = append(second, rec)
		}
		if !reflect.DeepEqual(replayed, second) {
			t.Fatalf("trimmed journal replayed %d records, tolerant pass saw %d", len(second), len(replayed))
		}
		if again.Offset() != off {
			t.Fatalf("trimmed journal offset %d, want %d", again.Offset(), off)
		}
	})
}

// FuzzObservationDecoder is the same property for the observation
// codec, which faces user-supplied -load-obs files in cmd/repro.
func FuzzObservationDecoder(f *testing.F) {
	f.Add([]byte(`{"Terminal":"Iowa","Available":[{"ID":1}],"ChosenIdx":0}` + "\n"))
	f.Add([]byte(`{"ChosenIdx":7,"Available":[]}`))
	f.Add([]byte("]["))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewObservationDecoder(bytes.NewReader(data))
		const maxRecords = 1 << 12
		for i := 0; i < maxRecords; i++ {
			o, err := dec.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if o.ChosenIdx >= len(o.Available) {
				t.Fatalf("validation let chosen index %d through (%d available)", o.ChosenIdx, len(o.Available))
			}
		}
	})
}
