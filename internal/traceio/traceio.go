// Package traceio persists and reloads the reproduction's data
// artifacts — allocation logs, RTT traces, and slot observations — so
// campaigns can be captured once and re-analyzed offline, mirroring
// the paper's released model-and-data bundle.
//
// Formats: allocation logs and RTT traces are TSV with a header row
// (they are flat and meant for shell tooling); observations are JSON
// Lines (each slot carries a nested available-satellite list).
package traceio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/scheduler"
)

// timeLayout is RFC3339 with nanoseconds, lossless for our clocks.
const timeLayout = time.RFC3339Nano

// WriteAllocations writes an allocation log as TSV (batch wrapper
// over AllocationWriter).
func WriteAllocations(w io.Writer, allocs []scheduler.Allocation) error {
	aw := NewAllocationWriter(w)
	for _, a := range allocs {
		if err := aw.Write(a); err != nil {
			return err
		}
	}
	return aw.Flush()
}

// ReadAllocations parses a TSV allocation log written by
// WriteAllocations.
func ReadAllocations(r io.Reader) ([]scheduler.Allocation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []scheduler.Allocation
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if line == 1 || strings.TrimSpace(text) == "" {
			continue // header
		}
		f := strings.Split(text, "\t")
		if len(f) != 9 {
			return nil, fmt.Errorf("traceio: allocations line %d: %d fields, want 9", line, len(f))
		}
		var a scheduler.Allocation
		var err error
		if a.SlotStart, err = time.Parse(timeLayout, f[0]); err != nil {
			return nil, fmt.Errorf("traceio: allocations line %d: slot_start: %w", line, err)
		}
		a.Terminal = f[1]
		if a.SatID, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("traceio: allocations line %d: sat_id: %w", line, err)
		}
		if a.ElevationDeg, err = strconv.ParseFloat(f[3], 64); err != nil {
			return nil, fmt.Errorf("traceio: allocations line %d: elevation: %w", line, err)
		}
		if a.AzimuthDeg, err = strconv.ParseFloat(f[4], 64); err != nil {
			return nil, fmt.Errorf("traceio: allocations line %d: azimuth: %w", line, err)
		}
		if a.RangeKm, err = strconv.ParseFloat(f[5], 64); err != nil {
			return nil, fmt.Errorf("traceio: allocations line %d: range: %w", line, err)
		}
		a.Sunlit = f[6] == "1"
		if f[7] != "" {
			if a.LaunchDate, err = time.Parse(timeLayout, f[7]); err != nil {
				return nil, fmt.Errorf("traceio: allocations line %d: launch: %w", line, err)
			}
		}
		if a.Candidates, err = strconv.Atoi(f[8]); err != nil {
			return nil, fmt.Errorf("traceio: allocations line %d: candidates: %w", line, err)
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceio: read allocations: %w", err)
	}
	return out, nil
}

// WriteSamples streams an RTT trace as TSV.
func WriteSamples(w io.Writer, samples []netsim.Sample) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "time\trtt_ms\tlost\tsat_id"); err != nil {
		return fmt.Errorf("traceio: write header: %w", err)
	}
	for _, s := range samples {
		lost := 0
		if s.Lost {
			lost = 1
		}
		if _, err := fmt.Fprintf(bw, "%s\t%g\t%d\t%d\n",
			s.T.UTC().Format(timeLayout), s.RTTms, lost, s.SatID); err != nil {
			return fmt.Errorf("traceio: write sample: %w", err)
		}
	}
	return bw.Flush()
}

// ReadSamples parses a TSV RTT trace written by WriteSamples.
func ReadSamples(r io.Reader) ([]netsim.Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []netsim.Sample
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if line == 1 || strings.TrimSpace(text) == "" {
			continue
		}
		f := strings.Split(text, "\t")
		if len(f) != 4 {
			return nil, fmt.Errorf("traceio: samples line %d: %d fields, want 4", line, len(f))
		}
		var s netsim.Sample
		var err error
		if s.T, err = time.Parse(timeLayout, f[0]); err != nil {
			return nil, fmt.Errorf("traceio: samples line %d: time: %w", line, err)
		}
		if s.RTTms, err = strconv.ParseFloat(f[1], 64); err != nil {
			return nil, fmt.Errorf("traceio: samples line %d: rtt: %w", line, err)
		}
		s.Lost = f[2] == "1"
		if s.SatID, err = strconv.Atoi(f[3]); err != nil {
			return nil, fmt.Errorf("traceio: samples line %d: sat_id: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceio: read samples: %w", err)
	}
	return out, nil
}

// WriteObservations writes slot observations as JSON Lines (batch
// wrapper over ObservationEncoder).
func WriteObservations(w io.Writer, obs []core.Observation) error {
	enc := NewObservationEncoder(w)
	for i := range obs {
		if err := enc.Encode(&obs[i]); err != nil {
			return err
		}
	}
	return enc.Flush()
}

// ReadObservations parses JSON Lines written by WriteObservations and
// validates each record's chosen index (batch wrapper over
// ObservationDecoder).
func ReadObservations(r io.Reader) ([]core.Observation, error) {
	dec := NewObservationDecoder(r)
	var out []core.Observation
	for {
		o, err := dec.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
}
