// Package power models satellite energy: solar charging while sunlit,
// battery drain while eclipsed, and extra drain proportional to
// traffic load. The paper's introduction lists "satellite charge"
// among the global scheduler's inputs, and its §5.3 rationale — dark
// satellites have limited battery, so the scheduler assigns them only
// high-elevation (low-RF-power) terminals — is exactly the coupling
// this package provides to internal/scheduler.
package power

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/units"
)

// BatteryConfig sets the energy model's constants. The defaults are
// loosely calibrated to a Starlink v1.5-class bus: the battery rides
// through a ~35-minute eclipse with comfortable margin at idle but
// sags visibly under sustained load.
type BatteryConfig struct {
	CapacityWh    float64 // usable battery capacity
	SolarW        float64 // panel output while sunlit
	IdleW         float64 // bus load, always present
	ServeWPerUtil float64 // extra draw at utilization 1.0
	// InitialSoC is the starting state of charge in [MinSoC, 1].
	InitialSoC float64
	// MinSoC is the protection floor; the model clamps here and flags
	// the satellite as power-constrained.
	MinSoC float64
}

// DefaultBatteryConfig returns the calibrated defaults.
func DefaultBatteryConfig() BatteryConfig {
	return BatteryConfig{
		CapacityWh:    5000,
		SolarW:        4000,
		IdleW:         1200,
		ServeWPerUtil: 2500,
		InitialSoC:    0.85,
		MinSoC:        0.15,
	}
}

func (c *BatteryConfig) validate() error {
	if c.CapacityWh <= 0 {
		return fmt.Errorf("power: capacity %v Wh", c.CapacityWh)
	}
	if c.SolarW <= c.IdleW {
		return fmt.Errorf("power: solar %v W cannot sustain idle %v W", c.SolarW, c.IdleW)
	}
	if c.InitialSoC < c.MinSoC || c.InitialSoC > 1 {
		return fmt.Errorf("power: initial SoC %v outside [%v, 1]", c.InitialSoC, c.MinSoC)
	}
	return nil
}

// Battery is one satellite's energy state.
type Battery struct {
	cfg BatteryConfig
	soc float64
}

// NewBattery builds a battery at the configured initial state.
func NewBattery(cfg BatteryConfig) (*Battery, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Battery{cfg: cfg, soc: cfg.InitialSoC}, nil
}

// SoC returns the state of charge in [MinSoC, 1].
func (b *Battery) SoC() float64 { return b.soc }

// Constrained reports whether the battery sits at its protection
// floor.
func (b *Battery) Constrained() bool { return b.soc <= b.cfg.MinSoC+1e-9 }

// Step advances the battery by dt. sunlit selects solar input; util in
// [0,1] scales the service drain.
func (b *Battery) Step(dt time.Duration, sunlit bool, util float64) {
	util = units.Clamp(util, 0, 1)
	watts := -b.cfg.IdleW - util*b.cfg.ServeWPerUtil
	if sunlit {
		watts += b.cfg.SolarW
	}
	deltaWh := watts * dt.Hours()
	b.soc = units.Clamp(b.soc+deltaWh/b.cfg.CapacityWh, b.cfg.MinSoC, 1)
}

// Fleet tracks one battery per satellite ID.
type Fleet struct {
	cfg  BatteryConfig
	bats map[int]*Battery
	ids  []int // sorted, for deterministic iteration
}

// NewFleet builds batteries for every ID.
func NewFleet(ids []int, cfg BatteryConfig) (*Fleet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg, bats: make(map[int]*Battery, len(ids))}
	for _, id := range ids {
		if _, dup := f.bats[id]; dup {
			return nil, fmt.Errorf("power: duplicate satellite id %d", id)
		}
		b, err := NewBattery(cfg)
		if err != nil {
			return nil, err
		}
		f.bats[id] = b
		f.ids = append(f.ids, id)
	}
	sort.Ints(f.ids)
	return f, nil
}

// SoC returns a satellite's state of charge (1.0 for unknown IDs, so
// absent telemetry never penalizes a candidate).
func (f *Fleet) SoC(id int) float64 {
	if b, ok := f.bats[id]; ok {
		return b.SoC()
	}
	return 1
}

// Constrained reports the protection-floor flag for a satellite.
func (f *Fleet) Constrained(id int) bool {
	if b, ok := f.bats[id]; ok {
		return b.Constrained()
	}
	return false
}

// Step advances every battery by dt. sunlit and util report each
// satellite's state; missing entries default to sunlit idle.
func (f *Fleet) Step(dt time.Duration, sunlit map[int]bool, util map[int]float64) {
	for _, id := range f.ids {
		s, ok := sunlit[id]
		if !ok {
			s = true
		}
		f.bats[id].Step(dt, s, util[id])
	}
}

// MeanSoC returns the fleet-average state of charge.
func (f *Fleet) MeanSoC() float64 {
	if len(f.ids) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, id := range f.ids {
		sum += f.bats[id].SoC()
	}
	return sum / float64(len(f.ids))
}

// ConstrainedCount returns how many batteries sit at the floor.
func (f *Fleet) ConstrainedCount() int {
	n := 0
	for _, id := range f.ids {
		if f.bats[id].Constrained() {
			n++
		}
	}
	return n
}
