package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBatteryConfigValidation(t *testing.T) {
	bad := DefaultBatteryConfig()
	bad.CapacityWh = 0
	if _, err := NewBattery(bad); err == nil {
		t.Error("zero capacity accepted")
	}
	bad = DefaultBatteryConfig()
	bad.SolarW = 100 // below idle
	if _, err := NewBattery(bad); err == nil {
		t.Error("insufficient solar accepted")
	}
	bad = DefaultBatteryConfig()
	bad.InitialSoC = 0.01 // below floor
	if _, err := NewBattery(bad); err == nil {
		t.Error("initial below floor accepted")
	}
}

func TestBatteryChargesInSun(t *testing.T) {
	cfg := DefaultBatteryConfig()
	cfg.InitialSoC = 0.5
	b, err := NewBattery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.Step(30*time.Minute, true, 0)
	if b.SoC() <= 0.5 {
		t.Errorf("SoC after sunlit idle = %v", b.SoC())
	}
}

func TestBatteryDrainsInEclipse(t *testing.T) {
	cfg := DefaultBatteryConfig()
	b, err := NewBattery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := b.SoC()
	b.Step(30*time.Minute, false, 1)
	if b.SoC() >= start {
		t.Errorf("SoC after eclipsed full-load = %v, started %v", b.SoC(), start)
	}
}

func TestBatteryBounds(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultBatteryConfig()
		b, err := NewBattery(cfg)
		if err != nil {
			return false
		}
		// Arbitrary step sequence must stay within [MinSoC, 1].
		s := seed
		for i := 0; i < 200; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			sunlit := s&1 == 0
			util := math.Abs(float64(s%1000)) / 1000
			b.Step(10*time.Minute, sunlit, util)
			if b.SoC() < cfg.MinSoC-1e-9 || b.SoC() > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBatterySurvivesEclipseAtIdle(t *testing.T) {
	// A 35-minute eclipse at idle must not hit the protection floor
	// from a healthy state.
	cfg := DefaultBatteryConfig()
	b, err := NewBattery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.Step(35*time.Minute, false, 0)
	if b.Constrained() {
		t.Errorf("idle eclipse drained to the floor: SoC %v", b.SoC())
	}
	// But a full orbit's worth of eclipsed full-load service does.
	b2, _ := NewBattery(cfg)
	b2.Step(95*time.Minute, false, 1)
	if !b2.Constrained() {
		t.Errorf("sustained eclipsed load did not constrain: SoC %v", b2.SoC())
	}
}

func TestBatteryOrbitEquilibrium(t *testing.T) {
	// Cycling 60 sunlit + 35 eclipsed minutes at moderate load should
	// hold a healthy average SoC (the constellation is power-positive).
	cfg := DefaultBatteryConfig()
	b, err := NewBattery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for orbit := 0; orbit < 20; orbit++ {
		b.Step(60*time.Minute, true, 0.4)
		b.Step(35*time.Minute, false, 0.4)
	}
	if b.SoC() < 0.5 {
		t.Errorf("equilibrium SoC = %v, want healthy", b.SoC())
	}
}

func TestFleet(t *testing.T) {
	f, err := NewFleet([]int{3, 1, 2}, DefaultBatteryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.SoC(1) != DefaultBatteryConfig().InitialSoC {
		t.Error("initial SoC")
	}
	if f.SoC(999) != 1 {
		t.Error("unknown id should report full charge")
	}
	if f.Constrained(999) {
		t.Error("unknown id constrained")
	}
	// Eclipse satellite 1 under load; keep 2 sunlit.
	for i := 0; i < 12; i++ {
		f.Step(15*time.Second, map[int]bool{1: false, 2: true, 3: true}, map[int]float64{1: 1})
	}
	if !(f.SoC(1) < f.SoC(2)) {
		t.Errorf("loaded+eclipsed %v not below sunlit idle %v", f.SoC(1), f.SoC(2))
	}
	if f.MeanSoC() <= 0 || f.MeanSoC() > 1 {
		t.Errorf("mean SoC %v", f.MeanSoC())
	}
}

func TestFleetDuplicateIDs(t *testing.T) {
	if _, err := NewFleet([]int{1, 1}, DefaultBatteryConfig()); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestFleetConstrainedCount(t *testing.T) {
	f, err := NewFleet([]int{1, 2}, DefaultBatteryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.ConstrainedCount() != 0 {
		t.Error("fresh fleet constrained")
	}
	f.Step(10*time.Hour, map[int]bool{1: false, 2: true}, map[int]float64{1: 1})
	if f.ConstrainedCount() != 1 {
		t.Errorf("constrained count = %d", f.ConstrainedCount())
	}
}
