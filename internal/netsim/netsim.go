// Package netsim models the Starlink data path end to end — user
// terminal, serving satellite, ground station, PoP — well enough to
// reproduce the measurement artifacts in the paper's §3: round-trip
// times that shift regime every 15 seconds when the global controller
// reassigns satellites, parallel latency bands inside a slot from the
// on-satellite MAC frame ring, and loss spikes around handovers.
//
// The model is a delay oracle: given a wall-clock instant it answers
// "what RTT would a probe sent now observe". The irtt package uses it
// to inject delays under real UDP probes; the trace generator here
// samples it directly at the paper's 1 packet / 20 ms cadence.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/astro"
	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/scheduler"
	"repro/internal/units"
)

// Sample is one probe observation.
type Sample struct {
	T     time.Time
	RTTms float64
	Lost  bool
	// SatID is the satellite serving the terminal when the probe was
	// sent (ground truth, for validation only).
	SatID int
}

// Config assembles a path model for one terminal.
type Config struct {
	Constellation *constellation.Constellation
	Scheduler     *scheduler.Global
	Terminal      scheduler.Terminal
	// PoP overrides the terminal's PoP lookup; zero value uses
	// geo.PoPByName(Terminal.PoP).
	PoP geo.PoP
	// BaseDelayMs is the fixed processing + backbone overhead added to
	// every RTT. Default 12 ms (typical Starlink floor after removing
	// propagation).
	BaseDelayMs float64
	// JitterStdMs is the per-packet Gaussian jitter. Default 0.4 ms.
	JitterStdMs float64
	// LossProb is the steady-state packet loss probability. Default
	// 0.005.
	LossProb float64
	// HandoverLossProb is the loss probability during the first
	// HandoverWindow after a slot boundary. Default 0.08.
	HandoverLossProb float64
	// HandoverWindow is how long the elevated loss lasts. Default
	// 300 ms.
	HandoverWindow time.Duration
	// CoTerminalsMin/Max bound how many other terminals share the
	// serving satellite's MAC ring in a slot (drives the band count).
	// Defaults 4 and 12.
	CoTerminalsMin, CoTerminalsMax int
	// Seed drives jitter, loss, and co-terminal draws.
	Seed int64
}

func (c *Config) applyDefaults() error {
	if c.Constellation == nil {
		return fmt.Errorf("netsim: nil constellation")
	}
	if c.Scheduler == nil {
		return fmt.Errorf("netsim: nil scheduler")
	}
	if c.PoP.Name == "" {
		pop, ok := geo.PoPByName(c.Terminal.PoP)
		if !ok {
			return fmt.Errorf("netsim: terminal %q homes to unknown PoP %q", c.Terminal.Name, c.Terminal.PoP)
		}
		c.PoP = pop
	}
	if c.BaseDelayMs == 0 {
		c.BaseDelayMs = 12
	}
	if c.JitterStdMs == 0 {
		c.JitterStdMs = 0.4
	}
	if c.LossProb == 0 {
		c.LossProb = 0.005
	}
	if c.HandoverLossProb == 0 {
		c.HandoverLossProb = 0.08
	}
	if c.HandoverWindow == 0 {
		c.HandoverWindow = 300 * time.Millisecond
	}
	if c.CoTerminalsMin == 0 {
		c.CoTerminalsMin = 4
	}
	if c.CoTerminalsMax == 0 {
		c.CoTerminalsMax = 12
	}
	if c.CoTerminalsMax < c.CoTerminalsMin {
		return fmt.Errorf("netsim: co-terminal range [%d,%d] inverted", c.CoTerminalsMin, c.CoTerminalsMax)
	}
	return nil
}

// Path is the delay oracle for one terminal.
type Path struct {
	cfg Config
	rng *rand.Rand

	// Per-slot cache.
	slot      int64
	slotAlloc scheduler.Allocation
	slotMAC   *scheduler.MAC
}

// NewPath builds the oracle.
func NewPath(cfg Config) (*Path, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &Path{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), slot: -1}, nil
}

// refreshSlot advances the cached allocation to the slot containing t.
// Slots must be visited in non-decreasing order (the scheduler's load
// walk is sequential); the trace generator guarantees that.
func (p *Path) refreshSlot(t time.Time) {
	slot := scheduler.SlotIndex(t)
	if slot == p.slot {
		return
	}
	p.slot = slot
	p.slotAlloc = scheduler.Allocation{}
	for _, a := range p.cfg.Scheduler.Allocate(t) {
		if a.Terminal == p.cfg.Terminal.Name {
			p.slotAlloc = a
			break
		}
	}
	// Rebuild the MAC ring: our terminal plus a random number of
	// co-scheduled terminals on the same satellite.
	n := p.cfg.CoTerminalsMin
	if p.cfg.CoTerminalsMax > p.cfg.CoTerminalsMin {
		n += p.rng.Intn(p.cfg.CoTerminalsMax - p.cfg.CoTerminalsMin + 1)
	}
	terms := make([]scheduler.Terminal, 0, n+1)
	terms = append(terms, p.cfg.Terminal)
	for i := 0; i < n; i++ {
		terms = append(terms, scheduler.Terminal{
			VantagePoint: geo.VantagePoint{Name: fmt.Sprintf("co-%d", i)},
		})
	}
	p.slotMAC = scheduler.NewMAC(0, terms)
}

// Probe returns the RTT a probe sent at t would measure and whether it
// is lost. Returns an error when no satellite serves the terminal.
func (p *Path) Probe(t time.Time) (Sample, error) {
	p.refreshSlot(t)
	s := Sample{T: t, SatID: p.slotAlloc.SatID}
	if p.slotAlloc.SatID == 0 {
		return s, fmt.Errorf("netsim: no satellite allocated to %q in slot %v", p.cfg.Terminal.Name, scheduler.EpochStart(t))
	}

	// Loss: elevated immediately after a handover.
	lossP := p.cfg.LossProb
	if t.Sub(p.slotAlloc.SlotStart) < p.cfg.HandoverWindow {
		lossP = p.cfg.HandoverLossProb
	}
	if p.rng.Float64() < lossP {
		s.Lost = true
		return s, nil
	}

	sat := p.cfg.Constellation.ByID(p.slotAlloc.SatID)
	st, err := sat.Propagator.PropagateAt(t)
	if err != nil {
		return s, fmt.Errorf("netsim: propagate %d: %w", sat.ID, err)
	}
	satECEF, _ := astro.TEMEToECEF(st.Pos, st.Vel, t)

	upKm := satECEF.Sub(p.cfg.Terminal.Location.ToECEF()).Norm()
	downKm := satECEF.Sub(p.cfg.PoP.Location.ToECEF()).Norm()
	propMs := 2 * (upKm + downKm) / units.SpeedOfLightKmPerSec * 1000

	macMs := float64(p.slotMAC.FrameDelay(p.cfg.Terminal.Name, t)) / float64(time.Millisecond)
	jitter := p.rng.NormFloat64() * p.cfg.JitterStdMs

	s.RTTms = propMs + macMs + 2*p.cfg.PoP.WiredDelayMs + p.cfg.BaseDelayMs + jitter
	if s.RTTms < 0 {
		s.RTTms = 0
	}
	return s, nil
}

// Trace samples the path at the given cadence over [start, start+dur).
// Slots with no allocated satellite yield lost samples rather than an
// error, matching how a real probe stream observes outages.
func (p *Path) Trace(start time.Time, dur, interval time.Duration) ([]Sample, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("netsim: non-positive probe interval %v", interval)
	}
	n := int(dur / interval)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		t := start.Add(time.Duration(i) * interval)
		s, err := p.Probe(t)
		if err != nil {
			s = Sample{T: t, Lost: true}
		}
		out = append(out, s)
	}
	return out, nil
}

// SplitBySlot groups samples into their 15-second allocation windows,
// ordered by slot start — the partition the Mann-Whitney analysis
// runs over.
func SplitBySlot(samples []Sample) [][]Sample {
	var out [][]Sample
	var cur []Sample
	var curSlot int64 = -1 << 62
	for _, s := range samples {
		slot := scheduler.SlotIndex(s.T)
		if slot != curSlot {
			if len(cur) > 0 {
				out = append(out, cur)
			}
			cur = nil
			curSlot = slot
		}
		cur = append(cur, s)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// RTTs extracts the delivered (non-lost) RTT values.
func RTTs(samples []Sample) []float64 {
	var out []float64
	for _, s := range samples {
		if !s.Lost {
			out = append(out, s.RTTms)
		}
	}
	return out
}

// LossRate returns the fraction of lost samples.
func LossRate(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	lost := 0
	for _, s := range samples {
		if s.Lost {
			lost++
		}
	}
	return float64(lost) / float64(len(samples))
}
