package netsim

import (
	"testing"
	"time"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/scheduler"
	"repro/internal/stats"
)

// buildPath assembles a dense-enough constellation that the Iowa
// terminal always has a satellite.
func buildPath(t testing.TB, seed int64) (*Path, *constellation.Constellation) {
	t.Helper()
	cons, err := constellation.New(constellation.Config{
		Shells: []constellation.Shell{
			{Name: "s1", AltitudeKm: 550, InclinationDeg: 53, Planes: 36, SatsPerPlane: 20, PhasingF: 17},
		},
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var iowa scheduler.Terminal
	for _, vp := range geo.StudyVantagePoints() {
		if vp.Name == "Iowa" {
			iowa = scheduler.Terminal{VantagePoint: vp}
		}
	}
	glob, err := scheduler.NewGlobal(scheduler.Config{
		Constellation: cons,
		Terminals:     []scheduler.Terminal{iowa},
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPath(Config{
		Constellation: cons,
		Scheduler:     glob,
		Terminal:      iowa,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, cons
}

func TestNewPathValidation(t *testing.T) {
	if _, err := NewPath(Config{}); err == nil {
		t.Error("nil constellation accepted")
	}
	_, cons := buildPath(t, 1)
	if _, err := NewPath(Config{Constellation: cons}); err == nil {
		t.Error("nil scheduler accepted")
	}
}

func TestUnknownPoPRejected(t *testing.T) {
	p, cons := buildPath(t, 2)
	term := p.cfg.Terminal
	term.PoP = "atlantis"
	if _, err := NewPath(Config{Constellation: cons, Scheduler: p.cfg.Scheduler, Terminal: term}); err == nil {
		t.Error("unknown PoP accepted")
	}
}

func TestTraceRTTRange(t *testing.T) {
	p, cons := buildPath(t, 3)
	start := cons.Epoch.Add(10 * time.Minute)
	samples, err := p.Trace(start, 2*time.Minute, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 6000 {
		t.Fatalf("%d samples, want 6000", len(samples))
	}
	rtts := RTTs(samples)
	if len(rtts) < 5000 {
		t.Fatalf("only %d delivered samples", len(rtts))
	}
	med := stats.Median(rtts)
	// Starlink RTT to a PoP-colocated server: ~20-70 ms.
	if med < 15 || med > 80 {
		t.Errorf("median RTT = %v ms", med)
	}
	for _, r := range rtts {
		if r < 5 || r > 200 {
			t.Fatalf("implausible RTT %v ms", r)
		}
	}
}

func TestTraceShowsSlotRegimeChanges(t *testing.T) {
	p, cons := buildPath(t, 4)
	start := scheduler.EpochStart(cons.Epoch.Add(10 * time.Minute))
	samples, err := p.Trace(start, 2*time.Minute, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	windows := SplitBySlot(samples)
	if len(windows) < 7 {
		t.Fatalf("only %d slot windows", len(windows))
	}
	// Consecutive windows should be statistically different most of the
	// time (the paper found p < .05 everywhere; with a finite satellite
	// set two adjacent slots occasionally keep the same satellite, so
	// require a majority).
	diff := 0
	tests := 0
	for i := 1; i < len(windows); i++ {
		a := RTTs(windows[i-1])
		b := RTTs(windows[i])
		if len(a) < 8 || len(b) < 8 {
			continue
		}
		res, err := stats.MannWhitneyU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		tests++
		if res.P < 0.05 {
			diff++
		}
	}
	if tests == 0 {
		t.Fatal("no testable window pairs")
	}
	if frac := float64(diff) / float64(tests); frac < 0.6 {
		t.Errorf("only %.0f%% of consecutive windows differ (want most)", frac*100)
	}
}

func TestTraceSatelliteChangesAtBoundaries(t *testing.T) {
	p, cons := buildPath(t, 5)
	start := scheduler.EpochStart(cons.Epoch.Add(30 * time.Minute))
	samples, err := p.Trace(start, 3*time.Minute, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Within a slot the serving satellite must be constant.
	for _, w := range SplitBySlot(samples) {
		first := w[0].SatID
		for _, s := range w {
			if s.SatID != first && s.SatID != 0 && first != 0 {
				t.Fatalf("satellite changed mid-slot: %d -> %d", first, s.SatID)
			}
		}
	}
	// And across the trace it must change at least once.
	ids := map[int]bool{}
	for _, s := range samples {
		if s.SatID != 0 {
			ids[s.SatID] = true
		}
	}
	if len(ids) < 2 {
		t.Errorf("only %d distinct satellites over 3 minutes", len(ids))
	}
}

func TestMACBandsVisible(t *testing.T) {
	p, cons := buildPath(t, 6)
	start := scheduler.EpochStart(cons.Epoch.Add(45 * time.Minute))
	// Probe densely within one slot, no jitter, to expose the bands.
	p.cfg.JitterStdMs = 1e-9
	p.cfg.LossProb = 1e-9
	p.cfg.HandoverLossProb = 1e-9
	samples, err := p.Trace(start.Add(time.Second), 10*time.Second, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rtts := RTTs(samples)
	if len(rtts) < 100 {
		t.Fatalf("%d delivered", len(rtts))
	}
	// The spread inside a slot should be at least one frame (~1.3 ms)
	// because of the MAC ring, even with zero jitter.
	spread := stats.Quantile(rtts, 0.99) - stats.Quantile(rtts, 0.01)
	if spread < 1.0 {
		t.Errorf("in-slot spread = %v ms, want >= 1 (MAC bands)", spread)
	}
}

func TestHandoverLossElevated(t *testing.T) {
	p, cons := buildPath(t, 7)
	p.cfg.LossProb = 0.001
	p.cfg.HandoverLossProb = 0.5
	start := scheduler.EpochStart(cons.Epoch.Add(20 * time.Minute))
	samples, err := p.Trace(start, 5*time.Minute, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var early, late []Sample
	for _, s := range samples {
		if s.T.Sub(scheduler.EpochStart(s.T)) < 300*time.Millisecond {
			early = append(early, s)
		} else {
			late = append(late, s)
		}
	}
	if LossRate(early) < 5*LossRate(late) {
		t.Errorf("handover loss %v not elevated vs steady %v", LossRate(early), LossRate(late))
	}
}

func TestSplitBySlotPartition(t *testing.T) {
	p, cons := buildPath(t, 8)
	start := scheduler.EpochStart(cons.Epoch.Add(5 * time.Minute)).Add(3 * time.Second)
	samples, err := p.Trace(start, time.Minute, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	windows := SplitBySlot(samples)
	total := 0
	for _, w := range windows {
		total += len(w)
		slot := scheduler.SlotIndex(w[0].T)
		for _, s := range w {
			if scheduler.SlotIndex(s.T) != slot {
				t.Fatal("window mixes slots")
			}
		}
	}
	if total != len(samples) {
		t.Errorf("windows cover %d of %d samples", total, len(samples))
	}
}

func TestTraceInvalidInterval(t *testing.T) {
	p, _ := buildPath(t, 9)
	if _, err := p.Trace(time.Now(), time.Minute, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestLossRateEmpty(t *testing.T) {
	if LossRate(nil) != 0 {
		t.Error("empty loss rate")
	}
}

func TestRTTRespectsPropagationFloor(t *testing.T) {
	// No delivered RTT can be below the physical propagation floor:
	// 2 x (shortest possible up + down legs) / c. Use the generous
	// bound of 2 x 2 x 550 km (satellite directly overhead both ends).
	p, cons := buildPath(t, 10)
	start := cons.Epoch.Add(15 * time.Minute)
	samples, err := p.Trace(start, time.Minute, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	floor := 2 * 2 * 550 / 299792.458 * 1000 // ms
	for _, s := range samples {
		if s.Lost {
			continue
		}
		if s.RTTms < floor {
			t.Fatalf("RTT %v ms below the propagation floor %v", s.RTTms, floor)
		}
	}
}

func TestTraceDeterministicWithSeed(t *testing.T) {
	p1, cons := buildPath(t, 11)
	start := cons.Epoch.Add(5 * time.Minute)
	a, err := p1.Trace(start, 30*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := buildPath(t, 11)
	b, err := p2.Trace(start, 30*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].RTTms != b[i].RTTms || a[i].Lost != b[i].Lost {
			t.Fatalf("sample %d differs between identically seeded paths", i)
		}
	}
}
