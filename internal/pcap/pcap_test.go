package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	base := time.Date(2023, 3, 1, 1, 0, 12, 123456000, time.UTC)
	frames := [][]byte{
		[]byte("first frame bytes"),
		[]byte("second"),
		make([]byte, 1500),
	}
	for i, f := range frames {
		if err := w.WritePacket(base.Add(time.Duration(i)*20*time.Millisecond), f); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("link type %d", r.LinkType())
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 3 {
		t.Fatalf("%d packets", len(pkts))
	}
	for i, p := range pkts {
		if !bytes.Equal(p.Data, frames[i]) {
			t.Errorf("packet %d data mismatch", i)
		}
		want := base.Add(time.Duration(i) * 20 * time.Millisecond)
		if p.Timestamp.Sub(want).Abs() > time.Microsecond {
			t.Errorf("packet %d timestamp %v, want %v", i, p.Timestamp, want)
		}
		if p.OrigLen != len(frames[i]) {
			t.Errorf("packet %d orig len %d", i, p.OrigLen)
		}
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("Next on empty capture = %v, want EOF", err)
	}
}

func TestReaderBigEndian(t *testing.T) {
	// Hand-build a big-endian capture with one 4-byte packet.
	var buf bytes.Buffer
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], magicMicro)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.BigEndian.PutUint32(rec[0:4], 1677628812)
	binary.BigEndian.PutUint32(rec[4:8], 500000) // 0.5 s in micros
	binary.BigEndian.PutUint32(rec[8:12], 4)
	binary.BigEndian.PutUint32(rec[12:16], 4)
	buf.Write(rec[:])
	buf.Write([]byte{1, 2, 3, 4})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Timestamp.Unix() != 1677628812 || p.Timestamp.Nanosecond() != 500000000 {
		t.Errorf("timestamp %v", p.Timestamp)
	}
	if !bytes.Equal(p.Data, []byte{1, 2, 3, 4}) {
		t.Error("data mismatch")
	}
}

func TestReaderNanoMagic(t *testing.T) {
	var buf bytes.Buffer
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicNano)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], 100)
	binary.LittleEndian.PutUint32(rec[4:8], 123456789) // nanos
	binary.LittleEndian.PutUint32(rec[8:12], 1)
	binary.LittleEndian.PutUint32(rec[12:16], 1)
	buf.Write(rec[:])
	buf.WriteByte(0xAA)

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Timestamp.Nanosecond() != 123456789 {
		t.Errorf("nano timestamp %v", p.Timestamp)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(strings.NewReader("definitely not a pcap file....")); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := NewReader(strings.NewReader("x")); err == nil {
		t.Error("short header accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	if err := w.WritePacket(time.Now(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated record returned %v", err)
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	w.snapLen = 8
	big := make([]byte, 100)
	for i := range big {
		big[i] = byte(i)
	}
	if err := w.WritePacket(time.Now(), big); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 8 || p.OrigLen != 100 {
		t.Errorf("caplen %d origlen %d", len(p.Data), p.OrigLen)
	}
}
