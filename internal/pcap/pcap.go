// Package pcap reads and writes the classic libpcap capture format
// (the .pcap file Wireshark and tcpdump consume), so simulated probe
// traffic can be exported for inspection with standard tooling.
//
// Only the original 2.4 format is implemented — microsecond or
// nanosecond timestamps, both byte orders on read, little-endian
// microsecond on write. The next-generation pcapng format is out of
// scope.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers.
const (
	magicMicro = 0xa1b2c3d4
	magicNano  = 0xa1b23c4d
)

// LinkTypeEthernet is the DLT value for Ethernet frames.
const LinkTypeEthernet = 1

// DefaultSnapLen is the write-side capture length.
const DefaultSnapLen = 65535

// ErrFormat reports an unreadable capture file.
var ErrFormat = errors.New("pcap: bad format")

// Packet is one captured record.
type Packet struct {
	Timestamp time.Time
	// OrigLen is the original wire length; len(Data) may be smaller if
	// the capture was truncated at the snap length.
	OrigLen int
	Data    []byte
}

// Writer emits a pcap stream.
type Writer struct {
	w        io.Writer
	snapLen  uint32
	linkType uint32
	wroteHdr bool
}

// NewWriter creates a Writer for the given link type (use
// LinkTypeEthernet). The global header is written lazily on the first
// packet (or Flush).
func NewWriter(w io.Writer, linkType uint32) *Writer {
	return &Writer{w: w, snapLen: DefaultSnapLen, linkType: linkType}
}

func (w *Writer) writeHeader() error {
	if w.wroteHdr {
		return nil
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicro)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // version minor
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:20], w.snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], w.linkType)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: write header: %w", err)
	}
	w.wroteHdr = true
	return nil
}

// WritePacket appends one record. Data longer than the snap length is
// truncated, with OrigLen preserved.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	capLen := len(data)
	if capLen > int(w.snapLen) {
		capLen = int(w.snapLen)
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(data)))
	if _, err := w.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := w.w.Write(data[:capLen]); err != nil {
		return fmt.Errorf("pcap: write record data: %w", err)
	}
	return nil
}

// Flush ensures the global header exists even for an empty capture.
func (w *Writer) Flush() error { return w.writeHeader() }

// Reader consumes a pcap stream.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	nanos    bool
	snapLen  uint32
	linkType uint32
}

// NewReader parses the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: global header: %v", ErrFormat, err)
	}
	rd := &Reader{r: r}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == magicMicro:
		rd.order = binary.LittleEndian
	case magicLE == magicNano:
		rd.order = binary.LittleEndian
		rd.nanos = true
	case magicBE == magicMicro:
		rd.order = binary.BigEndian
	case magicBE == magicNano:
		rd.order = binary.BigEndian
		rd.nanos = true
	default:
		return nil, fmt.Errorf("%w: magic %#x", ErrFormat, magicLE)
	}
	if major := rd.order.Uint16(hdr[4:6]); major != 2 {
		return nil, fmt.Errorf("%w: version %d", ErrFormat, major)
	}
	rd.snapLen = rd.order.Uint32(hdr[16:20])
	rd.linkType = rd.order.Uint32(hdr[20:24])
	return rd, nil
}

// LinkType reports the capture's data link type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// SnapLen reports the capture's snap length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// Next returns the next record, or io.EOF at the end of the capture.
func (r *Reader) Next() (Packet, error) {
	var rec [16]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: record header: %v", ErrFormat, err)
	}
	sec := r.order.Uint32(rec[0:4])
	frac := r.order.Uint32(rec[4:8])
	capLen := r.order.Uint32(rec[8:12])
	origLen := r.order.Uint32(rec[12:16])
	if capLen > r.snapLen && r.snapLen > 0 {
		return Packet{}, fmt.Errorf("%w: captured length %d exceeds snap length %d", ErrFormat, capLen, r.snapLen)
	}
	nanos := int64(frac) * 1000
	if r.nanos {
		nanos = int64(frac)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("%w: record data: %v", ErrFormat, err)
	}
	return Packet{
		Timestamp: time.Unix(int64(sec), nanos).UTC(),
		OrigLen:   int(origLen),
		Data:      data,
	}, nil
}

// ReadAll drains the remaining records.
func (r *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
