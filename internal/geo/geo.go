// Package geo defines the study's vantage points (the four terminals
// the paper deployed), per-site obstruction masks (the Ithaca terminal
// was blocked to the northwest by trees), and the ITU geostationary
// exclusion-zone constraint that shapes where the scheduler may point
// a terminal.
package geo

import (
	"fmt"
	"math"

	"repro/internal/astro"
	"repro/internal/units"
)

// VantagePoint is one terminal deployment site.
type VantagePoint struct {
	Name     string
	Location astro.Geodetic
	// UTCOffsetHours converts UTC to the site's local standard time for
	// the model's local-hour feature. (Fixed offsets; DST ignored.)
	UTCOffsetHours int
	// Mask is the site obstruction mask, nil when the sky is clear.
	Mask *Mask
	// PoP names the point of presence the terminal homes to.
	PoP string
}

// StudyVantagePoints returns the four sites from the paper: Midwest US
// (Iowa), Northeast US (Ithaca, NY), Western Europe (Madrid), and
// Northwest US (Washington state). The Ithaca site carries the
// northwest tree mask the paper §5.1 describes.
func StudyVantagePoints() []VantagePoint {
	return []VantagePoint{
		{
			Name:           "Iowa",
			Location:       astro.Geodetic{LatDeg: 41.661, LonDeg: -91.530, AltKm: 0.20},
			UTCOffsetHours: -6,
			PoP:            "chicago",
		},
		{
			Name:           "New York",
			Location:       astro.Geodetic{LatDeg: 42.444, LonDeg: -76.501, AltKm: 0.25},
			UTCOffsetHours: -5,
			PoP:            "newyork",
			// Severe tree obstruction to the north-west (az 270-360),
			// blocking everything below ~70 deg elevation there — the
			// paper reports the site received only 9.7% of its picks
			// from this quadrant vs 55.4% at unobstructed sites.
			Mask: NewMask([]MaskSector{{AzFromDeg: 270, AzToDeg: 360, MinElevDeg: 70}}),
		},
		{
			Name:           "Madrid",
			Location:       astro.Geodetic{LatDeg: 40.417, LonDeg: -3.704, AltKm: 0.65},
			UTCOffsetHours: 1,
			PoP:            "madrid",
		},
		{
			Name:           "Washington",
			Location:       astro.Geodetic{LatDeg: 47.606, LonDeg: -122.332, AltKm: 0.05},
			UTCOffsetHours: -8,
			PoP:            "seattle",
		},
	}
}

// SouthernVantagePoints returns sites for the paper's §8 future-work
// generalization: in the southern hemisphere the GSO belt sits in the
// *northern* sky, so the exclusion zone should mirror the scheduler's
// directional preference. An equatorial site is included as the
// degenerate case (belt overhead).
func SouthernVantagePoints() []VantagePoint {
	return []VantagePoint{
		{
			Name:           "Sydney",
			Location:       astro.Geodetic{LatDeg: -33.87, LonDeg: 151.21, AltKm: 0.05},
			UTCOffsetHours: 10,
			PoP:            "sydney",
		},
		{
			Name:           "Punta Arenas",
			Location:       astro.Geodetic{LatDeg: -53.16, LonDeg: -70.91, AltKm: 0.03},
			UTCOffsetHours: -3,
			PoP:            "santiago",
		},
		{
			Name:           "Quito",
			Location:       astro.Geodetic{LatDeg: -0.18, LonDeg: -78.47, AltKm: 2.85},
			UTCOffsetHours: -5,
			PoP:            "quito",
		},
	}
}

// VantagePointByName finds a study vantage point.
func VantagePointByName(name string) (VantagePoint, error) {
	for _, vp := range StudyVantagePoints() {
		if vp.Name == name {
			return vp, nil
		}
	}
	return VantagePoint{}, fmt.Errorf("geo: unknown vantage point %q", name)
}

// MaskSector is an azimuth wedge below whose MinElevDeg the sky is
// obstructed. The wedge spans clockwise from AzFromDeg to AzToDeg
// (both degrees from north); wrap-around sectors (e.g. 350→20) are
// supported.
type MaskSector struct {
	AzFromDeg  float64
	AzToDeg    float64
	MinElevDeg float64
}

// Mask is a set of obstruction sectors for one site.
type Mask struct {
	sectors []MaskSector
}

// NewMask builds a mask from sectors.
func NewMask(sectors []MaskSector) *Mask {
	return &Mask{sectors: append([]MaskSector(nil), sectors...)}
}

// Blocked reports whether a satellite at the given azimuth/elevation
// is hidden by the mask. A nil mask blocks nothing.
func (m *Mask) Blocked(azDeg, elevDeg float64) bool {
	if m == nil {
		return false
	}
	az := units.WrapDeg360(azDeg)
	for _, s := range m.sectors {
		if inSector(az, s.AzFromDeg, s.AzToDeg) && elevDeg < s.MinElevDeg {
			return true
		}
	}
	return false
}

func inSector(az, from, to float64) bool {
	from = units.WrapDeg360(from)
	to = units.WrapDeg360(to)
	if from <= to {
		return az >= from && az <= to
	}
	return az >= from || az <= to // wrap-around
}

// GSO exclusion. 47 CFR §25.289 protects geostationary networks: an
// NGSO space station may not transmit to a terminal when it lies close
// to the line between the terminal and the GSO arc. We implement the
// standard discrimination-angle test: for a satellite seen at
// elevation el and azimuth az from a terminal at latitude lat, compute
// the minimum angular separation between the satellite direction and
// any point of the geostationary belt as seen from the terminal, and
// exclude the satellite when that separation is below the protection
// threshold.
const (
	// GSOAltKm is the geostationary orbit altitude.
	GSOAltKm = 35786.0
	// DefaultGSOProtectionDeg is the discrimination half-angle within
	// which NGSO transmissions are excluded. SpaceX filings discuss
	// avoidance angles around this magnitude.
	DefaultGSOProtectionDeg = 18.0
)

// GSOExclusion evaluates the geostationary-arc avoidance constraint
// for one observer site. Construct once per site and reuse; the belt
// is sampled at construction.
type GSOExclusion struct {
	protectionDeg float64
	// beltDirs are unit vectors (ENU frame) toward sampled GSO belt
	// positions visible from the site.
	beltDirs []units.Vec3
}

// NewGSOExclusion samples the GSO belt as seen from obs. protectionDeg
// <= 0 selects DefaultGSOProtectionDeg.
func NewGSOExclusion(obs astro.Geodetic, protectionDeg float64) *GSOExclusion {
	if protectionDeg <= 0 {
		protectionDeg = DefaultGSOProtectionDeg
	}
	g := &GSOExclusion{protectionDeg: protectionDeg}
	// Sample the belt every degree of longitude; keep points above the
	// horizon.
	for lon := -180.0; lon < 180; lon++ {
		beltPoint := astro.Geodetic{LatDeg: 0, LonDeg: lon, AltKm: GSOAltKm}
		la := astro.Observe(obs, beltPoint.ToECEF())
		if la.ElevationDeg < 0 {
			continue
		}
		g.beltDirs = append(g.beltDirs, dirFromLook(la))
	}
	return g
}

// dirFromLook converts look angles to a unit vector in the local
// east-north-up frame.
func dirFromLook(la astro.LookAngles) units.Vec3 {
	el := units.Deg2Rad(la.ElevationDeg)
	az := units.Deg2Rad(la.AzimuthDeg)
	return units.Vec3{
		X: math.Cos(el) * math.Sin(az), // east
		Y: math.Cos(el) * math.Cos(az), // north
		Z: math.Sin(el),                // up
	}
}

// Excluded reports whether a satellite seen at the given look angles
// falls inside the protected zone around the GSO arc.
func (g *GSOExclusion) Excluded(azDeg, elevDeg float64) bool {
	if len(g.beltDirs) == 0 {
		return false
	}
	d := dirFromLook(astro.LookAngles{ElevationDeg: elevDeg, AzimuthDeg: azDeg})
	min := math.Pi
	for _, b := range g.beltDirs {
		if a := d.AngleBetween(b); a < min {
			min = a
		}
	}
	return units.Rad2Deg(min) < g.protectionDeg
}

// MinSeparationDeg returns the angular distance from the given
// direction to the nearest visible GSO belt point, in degrees. Returns
// +Inf when no belt point is above the horizon (polar sites).
func (g *GSOExclusion) MinSeparationDeg(azDeg, elevDeg float64) float64 {
	if len(g.beltDirs) == 0 {
		return math.Inf(1)
	}
	d := dirFromLook(astro.LookAngles{ElevationDeg: elevDeg, AzimuthDeg: azDeg})
	min := math.Pi
	for _, b := range g.beltDirs {
		if a := d.AngleBetween(b); a < min {
			min = a
		}
	}
	return units.Rad2Deg(min)
}
