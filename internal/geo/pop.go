package geo

import "repro/internal/astro"

// PoP is a Starlink point of presence with a co-located ground
// station. The paper's measurement servers sat at these PoPs, which is
// what removed terrestrial-path noise from the RTT traces.
type PoP struct {
	Name     string
	Location astro.Geodetic
	// WiredDelayMs is the one-way ground-station-to-PoP wired latency.
	WiredDelayMs float64
}

// StudyPoPs returns the PoPs the study's terminals home to.
func StudyPoPs() []PoP {
	return []PoP{
		{Name: "chicago", Location: astro.Geodetic{LatDeg: 41.88, LonDeg: -87.63, AltKm: 0.18}, WiredDelayMs: 1.2},
		{Name: "newyork", Location: astro.Geodetic{LatDeg: 40.71, LonDeg: -74.01, AltKm: 0.01}, WiredDelayMs: 1.0},
		{Name: "madrid", Location: astro.Geodetic{LatDeg: 40.42, LonDeg: -3.70, AltKm: 0.65}, WiredDelayMs: 0.9},
		{Name: "seattle", Location: astro.Geodetic{LatDeg: 47.61, LonDeg: -122.33, AltKm: 0.05}, WiredDelayMs: 1.1},
		// Southern-hemisphere PoPs for the §8 generalization sites.
		{Name: "sydney", Location: astro.Geodetic{LatDeg: -33.87, LonDeg: 151.21, AltKm: 0.05}, WiredDelayMs: 1.0},
		{Name: "santiago", Location: astro.Geodetic{LatDeg: -33.45, LonDeg: -70.67, AltKm: 0.52}, WiredDelayMs: 2.5},
		{Name: "quito", Location: astro.Geodetic{LatDeg: -0.18, LonDeg: -78.47, AltKm: 2.85}, WiredDelayMs: 1.5},
	}
}

// PoPByName finds a study PoP.
func PoPByName(name string) (PoP, bool) {
	for _, p := range StudyPoPs() {
		if p.Name == name {
			return p, true
		}
	}
	return PoP{}, false
}
