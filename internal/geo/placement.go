package geo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/astro"
)

// Declarative terminal placement for the scenario engine: instead of
// the study's four hand-picked vantage points, campaigns can place
// terminals on a lat/lon grid or scatter them uniformly (by area)
// within a region. Both generators are pure functions of their
// parameters — the same spec always yields the same terminals.

// Region is a lat/lon bounding box. Longitudes are taken on the
// [-180, 180] branch; a box spanning the antimeridian is expressed
// with LonMinDeg > LonMaxDeg (e.g. 170 → -170).
type Region struct {
	LatMinDeg float64
	LatMaxDeg float64
	LonMinDeg float64
	LonMaxDeg float64
}

// Validate reports the first problem with the region's bounds.
func (r Region) Validate() error {
	if r.LatMinDeg < -90 || r.LatMaxDeg > 90 || r.LatMinDeg > r.LatMaxDeg {
		return fmt.Errorf("latitude range %.2f..%.2f invalid (want -90 <= min <= max <= 90)", r.LatMinDeg, r.LatMaxDeg)
	}
	if r.LonMinDeg < -180 || r.LonMinDeg > 180 || r.LonMaxDeg < -180 || r.LonMaxDeg > 180 {
		return fmt.Errorf("longitude range %.2f..%.2f outside -180..180", r.LonMinDeg, r.LonMaxDeg)
	}
	return nil
}

// lonSpan returns the eastward extent of the region in degrees,
// handling antimeridian-crossing boxes (LonMin > LonMax).
func (r Region) lonSpan() float64 {
	span := r.LonMaxDeg - r.LonMinDeg
	if span < 0 {
		span += 360
	}
	return span
}

// lonAt maps a fraction of the region's eastward extent to a
// wrapped longitude in [-180, 180).
func (r Region) lonAt(frac float64) float64 {
	lon := r.LonMinDeg + frac*r.lonSpan()
	if lon >= 180 {
		lon -= 360
	}
	return lon
}

// UTCOffsetForLon approximates a site's standard-time UTC offset from
// its longitude: one hour per 15° band, rounded to the nearest band.
// Good enough for the local-hour feature at generated sites where no
// civil timezone is specified.
func UTCOffsetForLon(lonDeg float64) int {
	off := int(math.Round(lonDeg / 15))
	if off > 12 {
		off = 12
	}
	if off < -12 {
		off = -12
	}
	return off
}

// Grid places rows x cols terminals evenly over the region, row-major
// from the southwest corner, named "<prefix>-<i>". A single row or
// column sits at the region's midline.
func Grid(prefix string, r Region, rows, cols int, altKm float64) ([]VantagePoint, error) {
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("grid %q: %w", prefix, err)
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("grid %q: non-positive shape %dx%d", prefix, rows, cols)
	}
	axis := func(min, span float64, i, n int) float64 {
		if n == 1 {
			return min + span/2
		}
		return min + span*float64(i)/float64(n-1)
	}
	out := make([]VantagePoint, 0, rows*cols)
	for i := 0; i < rows; i++ {
		lat := axis(r.LatMinDeg, r.LatMaxDeg-r.LatMinDeg, i, rows)
		for j := 0; j < cols; j++ {
			var lonFrac float64
			if cols == 1 {
				lonFrac = 0.5
			} else {
				lonFrac = float64(j) / float64(cols-1)
			}
			lon := r.lonAt(lonFrac)
			out = append(out, VantagePoint{
				Name:           fmt.Sprintf("%s-%d", prefix, len(out)),
				Location:       astro.Geodetic{LatDeg: lat, LonDeg: lon, AltKm: altKm},
				UTCOffsetHours: UTCOffsetForLon(lon),
			})
		}
	}
	return out, nil
}

// RandomInRegion scatters count terminals uniformly by surface area
// within the region (latitude drawn through its sine so high latitudes
// are not oversampled), named "<prefix>-<i>". The seed fully
// determines the placement.
func RandomInRegion(prefix string, r Region, count int, altKm float64, seed int64) ([]VantagePoint, error) {
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("random %q: %w", prefix, err)
	}
	if count <= 0 {
		return nil, fmt.Errorf("random %q: non-positive count %d", prefix, count)
	}
	rng := rand.New(rand.NewSource(seed))
	sinMin := math.Sin(r.LatMinDeg * math.Pi / 180)
	sinMax := math.Sin(r.LatMaxDeg * math.Pi / 180)
	out := make([]VantagePoint, 0, count)
	for i := 0; i < count; i++ {
		lat := math.Asin(sinMin+rng.Float64()*(sinMax-sinMin)) * 180 / math.Pi
		lon := r.lonAt(rng.Float64())
		out = append(out, VantagePoint{
			Name:           fmt.Sprintf("%s-%d", prefix, i),
			Location:       astro.Geodetic{LatDeg: lat, LonDeg: lon, AltKm: altKm},
			UTCOffsetHours: UTCOffsetForLon(lon),
		})
	}
	return out, nil
}
