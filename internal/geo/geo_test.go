package geo

import (
	"math"
	"testing"

	"repro/internal/astro"
)

func TestStudyVantagePoints(t *testing.T) {
	vps := StudyVantagePoints()
	if len(vps) != 4 {
		t.Fatalf("got %d vantage points", len(vps))
	}
	names := map[string]bool{}
	for _, vp := range vps {
		names[vp.Name] = true
		if vp.Location.LatDeg < 40 {
			t.Errorf("%s: latitude %v, the paper's sites are all above 40N", vp.Name, vp.Location.LatDeg)
		}
	}
	for _, want := range []string{"Iowa", "New York", "Madrid", "Washington"} {
		if !names[want] {
			t.Errorf("missing vantage point %q", want)
		}
	}
	ny, err := VantagePointByName("New York")
	if err != nil {
		t.Fatal(err)
	}
	if ny.Mask == nil {
		t.Error("New York should carry the NW tree mask")
	}
	if _, err := VantagePointByName("Atlantis"); err == nil {
		t.Error("expected error for unknown site")
	}
}

func TestMaskBlocked(t *testing.T) {
	m := NewMask([]MaskSector{{AzFromDeg: 270, AzToDeg: 360, MinElevDeg: 55}})
	cases := []struct {
		az, el  float64
		blocked bool
	}{
		{300, 30, true},   // inside wedge, low
		{300, 60, false},  // inside wedge, above min elev
		{200, 30, false},  // outside wedge
		{359, 54.9, true}, // boundary
		{0, 30, true},     // 0 == 360 wraps into sector
		{10, 30, false},
	}
	for _, c := range cases {
		if got := m.Blocked(c.az, c.el); got != c.blocked {
			t.Errorf("Blocked(%v,%v) = %v, want %v", c.az, c.el, got, c.blocked)
		}
	}
}

func TestMaskWrapSector(t *testing.T) {
	m := NewMask([]MaskSector{{AzFromDeg: 350, AzToDeg: 20, MinElevDeg: 40}})
	if !m.Blocked(5, 30) || !m.Blocked(355, 30) {
		t.Error("wrap-around sector should block both sides of north")
	}
	if m.Blocked(180, 30) {
		t.Error("south should not be blocked")
	}
}

func TestNilMaskBlocksNothing(t *testing.T) {
	var m *Mask
	if m.Blocked(100, 5) {
		t.Error("nil mask blocked")
	}
}

func TestGSOExclusionNorthernSite(t *testing.T) {
	// For a site above 40N, the GSO belt sits to the south at moderate
	// elevation. Directions toward the southern belt must be excluded;
	// the northern sky must be clear.
	iowa := astro.Geodetic{LatDeg: 41.661, LonDeg: -91.530, AltKm: 0.2}
	g := NewGSOExclusion(iowa, 0)

	// Belt elevation at due south for lat 41.66: roughly 41-42 deg.
	if !g.Excluded(180, 40) {
		t.Error("due-south mid-elevation direction should be excluded")
	}
	if g.Excluded(0, 40) {
		t.Error("due-north direction should not be excluded")
	}
	if g.Excluded(180, 85) {
		t.Error("near-zenith should not be excluded at 41N")
	}
}

func TestGSOExclusionSeparationMonotone(t *testing.T) {
	iowa := astro.Geodetic{LatDeg: 41.661, LonDeg: -91.530, AltKm: 0.2}
	g := NewGSOExclusion(iowa, 0)
	// Separation from the belt grows as we move up from the belt
	// elevation toward zenith at azimuth 180.
	s40 := g.MinSeparationDeg(180, 40)
	s60 := g.MinSeparationDeg(180, 60)
	s85 := g.MinSeparationDeg(180, 85)
	if !(s40 < s60 && s60 < s85) {
		t.Errorf("separations not monotone: %v %v %v", s40, s60, s85)
	}
}

func TestGSOBeltElevationSanity(t *testing.T) {
	// The GSO belt's maximum elevation from latitude L is roughly
	// 90 - L - ~7 deg (parallax). For Iowa (41.7N) that's ~42 deg: the
	// separation at (180, 42) should be near zero.
	iowa := astro.Geodetic{LatDeg: 41.661, LonDeg: -91.530, AltKm: 0.2}
	g := NewGSOExclusion(iowa, 0)
	min := math.Inf(1)
	for el := 0.0; el < 90; el += 0.5 {
		if s := g.MinSeparationDeg(180, el); s < min {
			min = s
		}
	}
	if min > 1.5 {
		t.Errorf("belt never approached due-south sky: min separation %v", min)
	}
}

func TestGSOExclusionForcesHighPointing(t *testing.T) {
	// The paper's rationale: at >40N the exclusion zone forces terminals
	// to point higher than the 25 deg minimum. Verify that a band of
	// southern sky at low-to-mid elevation is excluded while high
	// elevations stay usable.
	ny := astro.Geodetic{LatDeg: 42.444, LonDeg: -76.501, AltKm: 0.25}
	g := NewGSOExclusion(ny, 0)
	excludedLow := 0
	totalLow := 0
	for az := 120.0; az <= 240; az += 10 {
		for el := 25.0; el <= 45; el += 5 {
			totalLow++
			if g.Excluded(az, el) {
				excludedLow++
			}
		}
	}
	if frac := float64(excludedLow) / float64(totalLow); frac < 0.5 {
		t.Errorf("only %.0f%% of low southern sky excluded, want most", frac*100)
	}
	for az := 0.0; az < 360; az += 30 {
		if g.Excluded(az, 88) {
			t.Errorf("zenith-adjacent direction az=%v excluded", az)
		}
	}
}

func TestGSOExclusionCustomAngle(t *testing.T) {
	iowa := astro.Geodetic{LatDeg: 41.661, LonDeg: -91.530, AltKm: 0.2}
	narrow := NewGSOExclusion(iowa, 2)
	wide := NewGSOExclusion(iowa, 30)
	// A direction 10 deg above the belt: excluded by the wide zone only.
	if narrow.Excluded(180, 52) {
		t.Error("narrow zone should not exclude 10 deg off the belt")
	}
	if !wide.Excluded(180, 52) {
		t.Error("wide zone should exclude 10 deg off the belt")
	}
}
