package geo

import (
	"math"
	"testing"
)

func TestGridPlacement(t *testing.T) {
	r := Region{LatMinDeg: 35, LatMaxDeg: 45, LonMinDeg: -100, LonMaxDeg: -80}
	vps, err := Grid("g", r, 3, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vps) != 6 {
		t.Fatalf("got %d points, want 6", len(vps))
	}
	// Row-major from the southwest corner.
	if vps[0].Name != "g-0" || vps[0].Location.LatDeg != 35 || vps[0].Location.LonDeg != -100 {
		t.Fatalf("corner point wrong: %+v", vps[0])
	}
	last := vps[5]
	if last.Location.LatDeg != 45 || last.Location.LonDeg != -80 {
		t.Fatalf("far corner wrong: %+v", last)
	}
	for _, vp := range vps {
		if vp.Location.AltKm != 0.1 {
			t.Fatalf("altitude not applied: %+v", vp)
		}
		if vp.UTCOffsetHours != UTCOffsetForLon(vp.Location.LonDeg) {
			t.Fatalf("utc offset wrong: %+v", vp)
		}
	}
}

func TestGridSingleRowColMidline(t *testing.T) {
	r := Region{LatMinDeg: 10, LatMaxDeg: 20, LonMinDeg: 40, LonMaxDeg: 60}
	vps, err := Grid("m", r, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vps[0].Location.LatDeg != 15 || vps[0].Location.LonDeg != 50 {
		t.Fatalf("midline wrong: %+v", vps[0])
	}
}

func TestGridAntimeridian(t *testing.T) {
	r := Region{LatMinDeg: -10, LatMaxDeg: 10, LonMinDeg: 170, LonMaxDeg: -170}
	vps, err := Grid("am", r, 1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{170, -180, -170}
	for i, vp := range vps {
		if math.Abs(vp.Location.LonDeg-want[i]) > 1e-9 {
			t.Fatalf("point %d lon %.3f, want %.3f", i, vp.Location.LonDeg, want[i])
		}
	}
}

func TestRandomInRegionDeterministic(t *testing.T) {
	r := Region{LatMinDeg: -55, LatMaxDeg: 60, LonMinDeg: -120, LonMaxDeg: 30}
	a, err := RandomInRegion("r", r, 25, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RandomInRegion("r", r, 25, 0.05, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, _ := RandomInRegion("r", r, 25, 0.05, 43)
	same := true
	for i := range a {
		if a[i].Location != c[i].Location {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical placements")
	}
	for i, vp := range a {
		loc := vp.Location
		if loc.LatDeg < r.LatMinDeg || loc.LatDeg > r.LatMaxDeg {
			t.Fatalf("point %d latitude %.2f outside region", i, loc.LatDeg)
		}
		if loc.LonDeg < r.LonMinDeg || loc.LonDeg > r.LonMaxDeg {
			t.Fatalf("point %d longitude %.2f outside region", i, loc.LonDeg)
		}
	}
}

func TestRegionValidate(t *testing.T) {
	bad := []Region{
		{LatMinDeg: -95, LatMaxDeg: 0, LonMinDeg: 0, LonMaxDeg: 10},
		{LatMinDeg: 10, LatMaxDeg: 0, LonMinDeg: 0, LonMaxDeg: 10},
		{LatMinDeg: 0, LatMaxDeg: 10, LonMinDeg: -181, LonMaxDeg: 10},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Fatalf("region %d should not validate: %+v", i, r)
		}
	}
}

func TestUTCOffsetForLon(t *testing.T) {
	cases := []struct {
		lon  float64
		want int
	}{{0, 0}, {-91.5, -6}, {151.2, 10}, {179.9, 12}, {-179.9, -12}, {7.4, 0}, {7.6, 1}}
	for _, c := range cases {
		if got := UTCOffsetForLon(c.lon); got != c.want {
			t.Fatalf("UTCOffsetForLon(%.1f) = %d, want %d", c.lon, got, c.want)
		}
	}
}
