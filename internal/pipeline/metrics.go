package pipeline

import "repro/internal/telemetry"

// Metrics is the pipeline's telemetry bundle: record flow counters,
// stage/sink latency histograms, and how long the source spent blocked
// on the hand-off channel (the backpressure signal — a rising value
// means the sinks, not the source, bound throughput). A nil bundle
// (the default) keeps Run on its untimed path.
type Metrics struct {
	// In counts records the consumer received from the source; Out
	// counts records that cleared the stages and reached the sinks;
	// Dropped counts records a stage filtered out.
	In      *telemetry.Counter
	Out     *telemetry.Counter
	Dropped *telemetry.Counter
	// SourceBlockedNanos accumulates time the source spent blocked
	// pushing into the full hand-off channel.
	SourceBlockedNanos *telemetry.Counter
	// StageSeconds and SinkSeconds observe the per-record latency of the
	// whole stage chain and the whole sink chain respectively.
	StageSeconds *telemetry.Histogram
	SinkSeconds  *telemetry.Histogram
}

// NewMetrics registers the pipeline metric families. Returns nil on a
// nil registry (telemetry disabled).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		In:                 reg.Counter("pipeline_records_in_total", "records received from the source"),
		Out:                reg.Counter("pipeline_records_out_total", "records that cleared the stages and reached the sinks"),
		Dropped:            reg.Counter("pipeline_records_dropped_total", "records filtered out by a stage"),
		SourceBlockedNanos: reg.Counter("pipeline_source_blocked_nanos_total", "time the source spent blocked on the hand-off channel"),
		StageSeconds:       reg.Histogram("pipeline_stage_seconds", "per-record latency of the stage chain", nil),
		SinkSeconds:        reg.Histogram("pipeline_sink_seconds", "per-record latency of the sink chain", nil),
	}
}

// in/out/dropped are the consumer loop's nil-safe record-flow marks.
func (m *Metrics) in() {
	if m != nil {
		m.In.Inc()
	}
}

func (m *Metrics) out() {
	if m != nil {
		m.Out.Inc()
	}
}

func (m *Metrics) dropped() {
	if m != nil {
		m.Dropped.Inc()
	}
}
