package pipeline

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestPipelineMetricsFlow checks the in/out/dropped accounting against
// a known stream with a dropping stage.
func TestPipelineMetricsFlow(t *testing.T) {
	reg := telemetry.NewRegistry()
	src := SourceFunc(func(ctx context.Context, emit func(Record) error) error {
		for i := 0; i < 10; i++ {
			rec := Record{}
			if i%2 == 0 {
				rec.ChosenIdx = 0 // kept by ChosenOnly
			} else {
				rec.ChosenIdx = -1
			}
			if err := emit(rec); err != nil {
				return err
			}
		}
		return nil
	})
	var seen int
	p := &Pipeline{
		Source: src,
		Stages: []Stage{ChosenOnly()},
		Sinks: []Sink{SinkFunc(func(rec *Record) error {
			seen++
			return nil
		})},
		Metrics: NewMetrics(reg),
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Fatalf("sink saw %d records, want 5", seen)
	}
	s := reg.Snapshot()
	if got := s.Counter("pipeline_records_in_total"); got != 10 {
		t.Errorf("in = %d, want 10", got)
	}
	if got := s.Counter("pipeline_records_out_total"); got != 5 {
		t.Errorf("out = %d, want 5", got)
	}
	if got := s.Counter("pipeline_records_dropped_total"); got != 5 {
		t.Errorf("dropped = %d, want 5", got)
	}
	if h := s.Histograms["pipeline_stage_seconds"]; h.Count != 10 {
		t.Errorf("stage histogram count = %d, want 10", h.Count)
	}
	if h := s.Histograms["pipeline_sink_seconds"]; h.Count != 5 {
		t.Errorf("sink histogram count = %d, want 5", h.Count)
	}
}

// TestPipelineMetricsNil pins the disabled path: NewMetrics(Nop) is
// nil and Run works without it.
func TestPipelineMetricsNil(t *testing.T) {
	if NewMetrics(telemetry.Nop) != nil {
		t.Fatal("NewMetrics(Nop) must return nil")
	}
	src := SourceFunc(func(ctx context.Context, emit func(Record) error) error {
		return emit(Record{Observation: core.Observation{Terminal: "x"}})
	})
	n := 0
	p := &Pipeline{
		Source: src,
		Sinks:  []Sink{SinkFunc(func(*Record) error { n++; return nil })},
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("sink saw %d records, want 1", n)
	}
}
