package pipeline_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/obstruction"
	"repro/internal/pipeline"
	"repro/internal/scheduler"
)

// simDish drives the real scheduler and paints serving tracks the way
// dish firmware does, exposing only the MapFetcher surface — a live
// capture's view of the world, with the ground truth hidden.
type simDish struct {
	env  *experiments.Env
	term scheduler.Terminal
	m    *obstruction.Map
	next time.Time
}

func (d *simDish) Reset() error {
	d.m = obstruction.New()
	return nil
}

func (d *simDish) ObstructionMap() (*obstruction.Map, error) {
	allocs := d.env.Sched.Allocate(d.next)
	for _, a := range allocs {
		if a.Terminal == d.term.Name && a.SatID != 0 {
			if err := d.env.Ident.PaintServingTrack(d.m, a.SatID, d.term.VantagePoint, d.next); err != nil {
				return nil, err
			}
		}
	}
	d.next = d.next.Add(scheduler.Period)
	return d.m.Clone(), nil
}

func liveEnv(t *testing.T) *experiments.Env {
	t.Helper()
	env, err := experiments.NewEnv(experiments.Config{
		Scale:         experiments.Small,
		Seed:          11,
		Workers:       1,
		VantagePoints: geo.StudyVantagePoints()[:1],
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestLiveMatchesCampaign runs a live capture against a simulated dish
// and checks it against the campaign engine over the same slots:
// identical available sets always, and identical identifications
// wherever the campaign attempted one. The live path has no ground
// truth, so TrueID stays 0 and skip reasons differ only where the
// campaign's reason depends on the hidden allocation.
func TestLiveMatchesCampaign(t *testing.T) {
	const slots = 20
	const resetEvery = 8

	// Ground-truth reference: the campaign engine on a fresh env.
	envB := liveEnv(t)
	batch, err := core.RunCampaign(context.Background(), core.CampaignConfig{
		Scheduler:  envB.Sched,
		Identifier: envB.Ident,
		Start:      envB.Start(),
		Slots:      slots,
		ResetEvery: resetEvery,
		Workers:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Records) != slots {
		t.Fatalf("campaign produced %d records, want %d", len(batch.Records), slots)
	}

	// Live capture against an identical fresh env, seen only through
	// the dish API.
	envL := liveEnv(t)
	term := envL.Terminals[0]
	dish := &simDish{env: envL, term: term, m: obstruction.New(), next: envL.Start()}
	collect := &pipeline.Collect{}
	p := &pipeline.Pipeline{
		Source: &pipeline.Live{
			Dish:       dish,
			Ident:      envL.Ident,
			Terminal:   term,
			Start:      envL.Start(),
			Slots:      slots,
			ResetEvery: resetEvery,
			WaitSlot:   func(ctx context.Context, t time.Time) error { return nil },
		},
		Sinks: []pipeline.Sink{collect},
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(collect.Records) != slots {
		t.Fatalf("live capture produced %d records, want %d", len(collect.Records), slots)
	}

	attempted := 0
	for i, live := range collect.Records {
		ref := batch.Records[i]
		if live.TrueID != 0 {
			t.Fatalf("slot %d: live capture leaked ground truth (TrueID=%d)", i, live.TrueID)
		}
		if !live.SlotStart.Equal(ref.SlotStart) || live.Terminal != ref.Terminal || live.LocalHour != ref.LocalHour {
			t.Fatalf("slot %d: live slot metadata diverges", i)
		}
		if !reflect.DeepEqual(live.Available, ref.Available) {
			t.Fatalf("slot %d: live available set diverges from campaign", i)
		}
		if ref.IdentifiedID != 0 {
			attempted++
			if live.IdentifiedID != ref.IdentifiedID {
				t.Errorf("slot %d: live identified %d, campaign %d", i, live.IdentifiedID, ref.IdentifiedID)
			}
			if live.Margin != ref.Margin {
				t.Errorf("slot %d: live margin %g, campaign %g", i, live.Margin, ref.Margin)
			}
			if live.ChosenIdx != ref.ChosenIdx {
				t.Errorf("slot %d: live chosen index %d, campaign %d", i, live.ChosenIdx, ref.ChosenIdx)
			}
		}
	}
	if attempted == 0 {
		t.Error("campaign attempted no identifications; the comparison is vacuous")
	}
}

// TestLiveValidation: a misconfigured live source fails fast.
func TestLiveValidation(t *testing.T) {
	dish := &simDish{}
	ident := &core.Identifier{}
	term := scheduler.Terminal{VantagePoint: geo.StudyVantagePoints()[0]}
	cases := map[string]*pipeline.Live{
		"nil dish":      {Ident: ident, Terminal: term, Slots: 1},
		"nil ident":     {Dish: dish, Terminal: term, Slots: 1},
		"no name":       {Dish: dish, Ident: ident, Slots: 1},
		"no slots":      {Dish: dish, Ident: ident, Terminal: term},
		"negative slot": {Dish: dish, Ident: ident, Terminal: term, Slots: -3},
	}
	for name, src := range cases {
		p := &pipeline.Pipeline{Source: src, Sinks: []pipeline.Sink{&pipeline.Collect{}}}
		if err := p.Run(context.Background()); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
