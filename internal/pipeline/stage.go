package pipeline

// ChosenOnly keeps records with an identified chosen satellite — the
// rows the §5 analyses and the §6 model consume, matching
// core.CampaignResult.Observations semantics.
func ChosenOnly() Stage {
	return func(rec *Record) (bool, error) {
		return rec.ChosenIdx >= 0, nil
	}
}

// Terminals keeps records from the named terminals only.
func Terminals(names ...string) Stage {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return func(rec *Record) (bool, error) {
		return set[rec.Terminal], nil
	}
}

// Limit stops the run cleanly (ErrStop) once n records have passed —
// the streaming analogue of a LIMIT clause. The source is cancelled
// mid-campaign and the sinks are flushed with what they have.
func Limit(n int) Stage {
	seen := 0
	return func(rec *Record) (bool, error) {
		if seen >= n {
			return false, ErrStop
		}
		seen++
		return true, nil
	}
}
