package pipeline

import (
	"context"
	"errors"
	"testing"
)

// fakeScorer counts observations and replays a scripted update.
type fakeScorer struct {
	seen []string
	up   ScoreUpdate
	err  error
}

func (f *fakeScorer) ObserveRecord(rec *Record) (ScoreUpdate, error) {
	f.seen = append(f.seen, rec.Terminal)
	return f.up, f.err
}

func TestPredictStagePassesThrough(t *testing.T) {
	recs := fakeRecords(9)
	sc := &fakeScorer{up: ScoreUpdate{Scored: true, Rank: 1}}
	collect := &Collect{}
	p := &Pipeline{
		Source: Records(recs),
		Stages: []Stage{PredictStage(sc)},
		Sinks:  []Sink{collect},
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(sc.seen) != len(recs) {
		t.Fatalf("scorer saw %d records, want %d", len(sc.seen), len(recs))
	}
	if len(collect.Records) != len(recs) {
		t.Fatalf("stage dropped records: %d of %d survived", len(collect.Records), len(recs))
	}
}

func TestScoreSinkDeliversUpdates(t *testing.T) {
	recs := fakeRecords(6)
	sc := &fakeScorer{up: ScoreUpdate{Scored: true, Rank: 2, RecentTop1: 0.5}}
	var got []ScoreUpdate
	p := &Pipeline{
		Source: Records(recs),
		Sinks: []Sink{ScoreSink(sc, func(rec *Record, up ScoreUpdate) {
			got = append(got, up)
		})},
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("onUpdate fired %d times, want %d", len(got), len(recs))
	}
	for _, up := range got {
		if up.Rank != 2 || up.RecentTop1 != 0.5 {
			t.Fatalf("update not propagated: %+v", up)
		}
	}
}

func TestPredictErrorStopsRun(t *testing.T) {
	boom := errors.New("model exploded")
	for _, tc := range []struct {
		name string
		p    *Pipeline
	}{
		{"stage", &Pipeline{Source: Records(fakeRecords(3)), Stages: []Stage{PredictStage(&fakeScorer{err: boom})}, Sinks: []Sink{&Collect{}}}},
		{"sink", &Pipeline{Source: Records(fakeRecords(3)), Sinks: []Sink{ScoreSink(&fakeScorer{err: boom}, nil)}}},
	} {
		if err := tc.p.Run(context.Background()); !errors.Is(err, boom) {
			t.Errorf("%s: Run = %v, want scorer error", tc.name, err)
		}
	}
}
