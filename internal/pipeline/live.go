package pipeline

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obstruction"
	"repro/internal/scheduler"
)

// MapFetcher is the minimal dish-API surface a live capture needs.
// *dishrpc.Client implements it, so a Live source pointed at a dishrpc
// endpoint captures the paper's methodology over the wire; tests plug
// in simulated dishes.
type MapFetcher interface {
	ObstructionMap() (*obstruction.Map, error)
	Reset() error
}

// Live captures slots from a running dish: at each slot boundary it
// fetches the obstruction map, XORs it against the previous snapshot,
// identifies the serving satellite with the §4 DTW matcher, and emits
// one record per slot. TrueID is always 0 — a real dish exposes no
// ground truth — so live records flow through the same stages and
// sinks as simulated ones, with the identification standing in for the
// oracle.
type Live struct {
	Dish  MapFetcher
	Ident *core.Identifier
	// Terminal is the capture vantage point (name, location, UTC
	// offset).
	Terminal scheduler.Terminal
	// Start is aligned down to the allocation grid
	// (scheduler.EpochStart).
	Start time.Time
	Slots int
	// ResetEvery is the dish reset cadence in slots; default 40 (= 10
	// minutes), the campaign engines' cadence. The dish is also reset at
	// capture start so the first XOR diff is clean.
	ResetEvery int
	// WaitSlot blocks until t, the moment a slot's track is fully
	// painted, before the map is fetched. Nil waits on the wall clock —
	// which collapses to no wait when t is already past, so captures
	// against a simulated dish replay at full speed.
	WaitSlot func(ctx context.Context, t time.Time) error
}

// Stream implements Source.
func (l *Live) Stream(ctx context.Context, emit func(Record) error) error {
	if l.Dish == nil {
		return fmt.Errorf("pipeline: live capture needs a dish")
	}
	if l.Ident == nil {
		return fmt.Errorf("pipeline: live capture needs an identifier")
	}
	if l.Terminal.Name == "" {
		return fmt.Errorf("pipeline: live capture terminal has no name")
	}
	if l.Slots <= 0 {
		return fmt.Errorf("pipeline: live capture needs slots > 0, got %d", l.Slots)
	}
	resetEvery := l.ResetEvery
	if resetEvery == 0 {
		resetEvery = 40
	}
	wait := l.WaitSlot
	if wait == nil {
		wait = WaitUntil
	}

	vp := l.Terminal.VantagePoint
	start := scheduler.EpochStart(l.Start)
	prev := obstruction.New()
	for slot := 0; slot < l.Slots; slot++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		slotStart := start.Add(time.Duration(slot) * scheduler.Period)
		if resetEvery > 0 && slot%resetEvery == 0 {
			if err := l.Dish.Reset(); err != nil {
				return fmt.Errorf("pipeline: reset dish at slot %d: %w", slot, err)
			}
			prev = obstruction.New()
		}
		if err := wait(ctx, slotStart.Add(scheduler.Period)); err != nil {
			return err
		}
		cur, err := l.Dish.ObstructionMap()
		if err != nil {
			return fmt.Errorf("pipeline: fetch map at slot %d: %w", slot, err)
		}

		snap := l.Ident.Snapshot(slotStart)
		rec := Record{
			Observation: core.Observation{
				Terminal:  vp.Name,
				SlotStart: slotStart,
				LocalHour: core.LocalHour(vp, slotStart),
				Available: core.AvailableSet(snap, vp, slotStart, l.Ident.MinElevationDeg),
				ChosenIdx: -1,
			},
		}
		ident, err := l.Ident.IdentifyFromMapsSnapshot(prev, cur, vp, slotStart, snap)
		if err != nil {
			rec.SkipReason = err.Error()
		} else {
			rec.IdentifiedID = ident.SatID
			rec.Margin = ident.Margin
			rec.ChosenIdx = indexAvail(rec.Available, ident.SatID)
			if rec.ChosenIdx < 0 {
				rec.SkipReason = "identified satellite not in public available set"
			}
		}
		prev = cur
		if err := emit(rec); err != nil {
			return err
		}
	}
	return nil
}

// WaitUntil sleeps until t or ctx cancellation — the default live
// pacing. Times already past return immediately.
func WaitUntil(ctx context.Context, t time.Time) error {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// indexAvail finds a satellite ID in an available set, -1 if absent.
func indexAvail(avail []core.SatObs, id int) int {
	for i, a := range avail {
		if a.ID == id {
			return i
		}
	}
	return -1
}
