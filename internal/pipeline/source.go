package pipeline

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/traceio"
)

// Campaign streams a simulated measurement campaign straight from the
// core engine (core.RunCampaignStream): records flow downstream as the
// workers produce them and never materialize, at any worker count, in
// exact serial (slot, terminal) order.
type Campaign struct {
	Config core.CampaignConfig
	// Stats holds the O(1)-memory campaign summary — dropped records,
	// the skip-reason histogram, identification counters — after a
	// successful run.
	Stats *core.CampaignStats
}

// Stream implements Source.
func (c *Campaign) Stream(ctx context.Context, emit func(Record) error) error {
	stats, err := core.RunCampaignStream(ctx, c.Config, core.EmitFunc(emit))
	if err != nil {
		return err
	}
	c.Stats = stats
	return nil
}

// Records replays an in-memory record slice in order.
type Records []core.SlotRecord

// Stream implements Source.
func (s Records) Stream(ctx context.Context, emit func(Record) error) error {
	for i := range s {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := emit(s[i]); err != nil {
			return err
		}
	}
	return nil
}

// Observations replays in-memory observations, each wrapped in a bare
// record (no ground truth or identification metadata).
type Observations []core.Observation

// Stream implements Source.
func (s Observations) Stream(ctx context.Context, emit func(Record) error) error {
	for i := range s {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := emit(Record{Observation: s[i]}); err != nil {
			return err
		}
	}
	return nil
}

// RecordReplay streams a JSONL campaign trace (the WriteRecords /
// traceio.RecordEncoder format) record by record — the O(1)-memory
// replay path for full campaign outputs.
type RecordReplay struct{ R io.Reader }

// Stream implements Source.
func (r RecordReplay) Stream(ctx context.Context, emit func(Record) error) error {
	dec := traceio.NewRecordDecoder(r.R)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		rec, err := dec.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
}

// JournalReplay streams a shard journal: RecordReplay, but tolerant
// of a truncated final line — the state a crash mid-append leaves
// behind. After a successful Stream, Truncated reports whether a
// partial tail was dropped and Offset the byte position an appender
// can resume from (the coordinator truncates the journal there before
// handing the shard to a new worker).
type JournalReplay struct {
	R io.Reader
	// Truncated and Offset are populated by Stream.
	Truncated bool
	Offset    int64
}

// Stream implements Source.
func (r *JournalReplay) Stream(ctx context.Context, emit func(Record) error) error {
	dec := traceio.NewRecordDecoder(r.R)
	dec.TolerateTruncatedTail()
	defer func() {
		r.Truncated = dec.Truncated()
		r.Offset = dec.Offset()
	}()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		rec, err := dec.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
}

// ObservationReplay streams a JSONL observation trace (the -save-obs /
// traceio.ObservationEncoder format), wrapping each observation in a
// bare record.
type ObservationReplay struct{ R io.Reader }

// Stream implements Source.
func (r ObservationReplay) Stream(ctx context.Context, emit func(Record) error) error {
	dec := traceio.NewObservationDecoder(r.R)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		o, err := dec.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := emit(Record{Observation: o}); err != nil {
			return err
		}
	}
}
