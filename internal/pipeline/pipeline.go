// Package pipeline composes the reproduction's data path as one
// source → stage → sink streaming architecture. A Source pushes
// SlotRecords in deterministic (slot, terminal) order — a simulated
// campaign, a JSONL trace replay, or a live dish capture — stages
// filter or annotate records in flight, and sinks consume them
// incrementally: the §5 analysis accumulators, the §6 dataset builder,
// JSONL trace writers, in-memory collectors.
//
// The defining property is that no step materializes the stream: the
// source, the bounded hand-off channel, and every shipped sink hold
// O(1) state in the record count, so a campaign millions of slots long
// runs, persists, and re-analyzes in constant memory. The batch
// entry points (core.RunCampaign, the slice-taking analyzers) remain
// as thin wrappers over the same machinery.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
)

// Record is the unit flowing through a pipeline: one slot × terminal
// outcome — the observation plus whatever ground-truth and
// identification metadata the source has.
type Record = core.SlotRecord

// Source produces an ordered record stream. Implementations push each
// record to emit and stop when emit errors or ctx is cancelled;
// records must arrive in deterministic order (for campaigns, the
// serial (slot, terminal) sequence regardless of worker count).
type Source interface {
	Stream(ctx context.Context, emit func(Record) error) error
}

// SourceFunc adapts a function to Source.
type SourceFunc func(ctx context.Context, emit func(Record) error) error

// Stream implements Source.
func (f SourceFunc) Stream(ctx context.Context, emit func(Record) error) error {
	return f(ctx, emit)
}

// Stage inspects one record in flight: pass it on (keep=true), drop it
// (keep=false), or stop the run (err != nil; ErrStop stops cleanly).
// Stages may mutate the record in place — later stages and every sink
// see the mutation.
type Stage func(rec *Record) (keep bool, err error)

// Sink consumes the staged stream. The pointed-to record is reused
// between calls, so implementations must copy the struct if they
// retain it (the slices inside belong to the record and are safe to
// keep). Flush runs once after a clean end of stream — source
// exhausted or ErrStop — and never after an error.
type Sink interface {
	Consume(rec *Record) error
	Flush() error
}

// ErrStop, returned by a stage or sink, ends the run cleanly: the
// source is cancelled, sinks are flushed, and Run returns nil. Limit
// is built on it.
var ErrStop = errors.New("pipeline: stop")

// Pipeline wires one source through an ordered stage list into one or
// more sinks. Zero value is not usable; populate Source and Sinks.
type Pipeline struct {
	Source Source
	Stages []Stage
	Sinks  []Sink
	// Buffer bounds the channel between the source and the consumer
	// loop (default 64). The bound is load-bearing: a slow sink
	// backpressures the source instead of queueing the stream, which is
	// what keeps arbitrarily long runs in O(1) memory.
	Buffer int
	// Metrics, when non-nil, counts and times the record flow. Nil (the
	// default) keeps Run on its untimed path — no clock reads per
	// record.
	Metrics *Metrics
}

// Run drives the pipeline until the source is exhausted, a stage or
// sink stops it, or ctx is cancelled. Stages and sinks run on a single
// goroutine and see records in source order; sinks within one record
// run in their listed order.
func (p *Pipeline) Run(ctx context.Context) error {
	if p.Source == nil {
		return fmt.Errorf("pipeline: nil source")
	}
	if len(p.Sinks) == 0 {
		return fmt.Errorf("pipeline: no sinks")
	}
	buffer := p.Buffer
	if buffer <= 0 {
		buffer = 64
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	m := p.Metrics
	ch := make(chan Record, buffer)
	var srcErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer close(ch)
		srcErr = p.Source.Stream(ctx, func(rec Record) error {
			if m != nil {
				// Try the fast path first so the clock is only read when
				// the channel actually backpressures.
				select {
				case ch <- rec:
					return nil
				default:
				}
				t0 := time.Now()
				defer func() { m.SourceBlockedNanos.Add(time.Since(t0).Nanoseconds()) }()
			}
			select {
			case ch <- rec:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}()

	var stopErr error
consume:
	for rec := range ch {
		m.in()
		keep := true
		var stageStart time.Time
		if m != nil && len(p.Stages) > 0 {
			stageStart = time.Now()
		}
		for _, stage := range p.Stages {
			var err error
			if keep, err = stage(&rec); err != nil {
				stopErr = err
				break consume
			}
			if !keep {
				break
			}
		}
		if m != nil && len(p.Stages) > 0 {
			m.StageSeconds.Observe(time.Since(stageStart).Seconds())
		}
		if !keep {
			m.dropped()
			continue
		}
		m.out()
		var sinkStart time.Time
		if m != nil {
			sinkStart = time.Now()
		}
		for _, s := range p.Sinks {
			if err := s.Consume(&rec); err != nil {
				stopErr = err
				break consume
			}
		}
		if m != nil {
			m.SinkSeconds.Observe(time.Since(sinkStart).Seconds())
		}
	}
	if stopErr != nil {
		// Release the source: cancel, then drain anything it managed to
		// buffer before observing the cancellation.
		cancel()
		for range ch {
		}
	}
	<-done

	if stopErr != nil && stopErr != ErrStop {
		return stopErr
	}
	if stopErr == nil && srcErr != nil {
		return srcErr
	}
	for _, s := range p.Sinks {
		if err := s.Flush(); err != nil {
			return err
		}
	}
	return nil
}
