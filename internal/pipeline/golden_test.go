package pipeline_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pipeline"
)

// goldenEnv builds a small fixed-seed environment. Each campaign needs
// a fresh one: the scheduler is stateful (hidden load walk, score
// noise), so batch and streaming runs must each start from an
// identical state.
func goldenEnv(t *testing.T, workers int) *experiments.Env {
	t.Helper()
	env, err := experiments.NewEnv(experiments.Config{
		Scale:   experiments.Small,
		Seed:    7,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func goldenCfg(env *experiments.Env, slots, workers int, oracle bool) core.CampaignConfig {
	return core.CampaignConfig{
		Scheduler:  env.Sched,
		Identifier: env.Ident,
		Start:      env.Start(),
		Slots:      slots,
		Oracle:     oracle,
		Workers:    workers,
	}
}

// TestPipelineMatchesBatchGolden is the acceptance gate for the
// streaming refactor: on a fixed seed, at worker counts 1 and 4, the
// pipeline's record stream, campaign counters, and every incremental
// analyzer must be bit-identical to the batch path (core.RunCampaign
// followed by the slice analyzers). Run under -race in CI.
func TestPipelineMatchesBatchGolden(t *testing.T) {
	for _, tc := range []struct {
		oracle bool
		slots  int
	}{
		{oracle: true, slots: 40},
		{oracle: false, slots: 24},
	} {
		// Per-oracle-mode record streams, keyed by worker count: the
		// streams must also agree across worker counts.
		streams := map[int][]core.SlotRecord{}
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("oracle=%v/workers=%d", tc.oracle, workers), func(t *testing.T) {
				// Batch reference.
				envB := goldenEnv(t, workers)
				batch, err := core.RunCampaign(context.Background(), goldenCfg(envB, tc.slots, workers, tc.oracle))
				if err != nil {
					t.Fatal(err)
				}
				obs := batch.Observations()

				// Streaming pipeline on an identical fresh environment,
				// fanning one pass into every incremental consumer.
				envS := goldenEnv(t, workers)
				src := &pipeline.Campaign{Config: goldenCfg(envS, tc.slots, workers, tc.oracle)}
				collect := &pipeline.Collect{}
				counts := &pipeline.CountSkips{}
				aoe := core.NewAOEAccumulator(9)
				az := core.NewAzimuthAccumulator(9)
				la := core.NewLaunchAccumulator("New York")
				su := core.NewSunlitAccumulator(9)
				ds := core.NewDatasetBuilder()
				chosen := pipeline.ChosenOnly()
				p := &pipeline.Pipeline{
					Source: src,
					Sinks: []pipeline.Sink{
						collect,
						counts,
						pipeline.Where(chosen, pipeline.Feed(aoe)),
						pipeline.Where(chosen, pipeline.Feed(az)),
						pipeline.Where(chosen, pipeline.Feed(la)),
						pipeline.Where(chosen, pipeline.Feed(su)),
						pipeline.Where(chosen, pipeline.Feed(ds)),
					},
				}
				if err := p.Run(context.Background()); err != nil {
					t.Fatal(err)
				}

				if !reflect.DeepEqual(collect.Records, batch.Records) {
					t.Fatal("pipeline record stream diverges from batch RunCampaign")
				}
				streams[workers] = collect.Records

				stats := src.Stats
				if stats == nil {
					t.Fatal("campaign source left Stats nil after a successful run")
				}
				if stats.Attempted != batch.Attempted || stats.Correct != batch.Correct || stats.Failed != batch.Failed {
					t.Errorf("stream counters %d/%d/%d, batch %d/%d/%d",
						stats.Attempted, stats.Correct, stats.Failed,
						batch.Attempted, batch.Correct, batch.Failed)
				}
				if !reflect.DeepEqual(stats.Skips, batch.Skips) {
					t.Errorf("stream skip histogram %v, batch %v", stats.Skips, batch.Skips)
				}
				if stats.Records != len(batch.Records) || stats.Served != len(obs) {
					t.Errorf("stream saw %d records / %d served, batch %d / %d",
						stats.Records, stats.Served, len(batch.Records), len(obs))
				}
				if counts.Total != len(batch.Records) || counts.Served != len(obs) {
					t.Errorf("sink counted %d records / %d served, batch %d / %d",
						counts.Total, counts.Served, len(batch.Records), len(obs))
				}

				if len(obs) == 0 {
					t.Fatal("golden campaign produced no served observations; pick a different seed")
				}
				assertFinalizeMatches(t, "AOE", aoe.Finalize, func() (any, error) { return core.AnalyzeAOE(obs, 9) })
				assertFinalizeMatches(t, "azimuth", az.Finalize, func() (any, error) { return core.AnalyzeAzimuth(obs, 9) })
				assertFinalizeMatches(t, "launch", la.Finalize, func() (any, error) { return core.AnalyzeLaunch(obs, "New York") })
				assertFinalizeMatches(t, "sunlit", su.Finalize, func() (any, error) { return core.AnalyzeSunlit(obs, 9) })
				assertFinalizeMatches(t, "dataset", ds.Finalize, func() (any, error) { return core.BuildDataset(obs) })
			})
		}
		if len(streams[1]) > 0 && len(streams[4]) > 0 && !reflect.DeepEqual(streams[1], streams[4]) {
			t.Errorf("oracle=%v: streaming records differ between workers=1 and workers=4", tc.oracle)
		}
	}
}

// assertFinalizeMatches compares an accumulator's Finalize output with
// the batch analyzer's, bit for bit, including error parity.
func assertFinalizeMatches[T any](t *testing.T, name string, finalize func() (T, error), batch func() (any, error)) {
	t.Helper()
	got, gerr := finalize()
	want, werr := batch()
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: stream err %v, batch err %v", name, gerr, werr)
	}
	if gerr != nil {
		if gerr.Error() != werr.Error() {
			t.Errorf("%s: stream err %q, batch err %q", name, gerr, werr)
		}
		return
	}
	if !reflect.DeepEqual(any(got), want) {
		t.Errorf("%s: streamed analysis diverges from batch", name)
	}
}
