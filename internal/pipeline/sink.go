package pipeline

import (
	"io"

	"repro/internal/core"
	"repro/internal/traceio"
)

// Feed adapts an incremental observation consumer — the §5 analysis
// accumulators, the §6 DatasetBuilder, any core.ObservationConsumer —
// into a sink. Run the pipeline, then call the consumer's Finalize.
// Gate it behind Where(ChosenOnly(), …) when the consumer should see
// only analyzable rows while sibling sinks see the full stream.
func Feed(c core.ObservationConsumer) Sink { return feedSink{c} }

type feedSink struct{ c core.ObservationConsumer }

func (s feedSink) Consume(rec *Record) error { return s.c.Add(rec.Observation) }
func (s feedSink) Flush() error              { return nil }

// SinkFunc adapts a per-record function into a sink with a no-op
// Flush.
type SinkFunc func(rec *Record) error

// Consume implements Sink.
func (f SinkFunc) Consume(rec *Record) error { return f(rec) }

// Flush implements Sink.
func (f SinkFunc) Flush() error { return nil }

// Where gates one sink behind a stage, leaving the rest of the
// pipeline untouched. The stage should filter, not mutate: a mutation
// here would leak to sinks listed after this one.
func Where(st Stage, s Sink) Sink { return whereSink{st, s} }

type whereSink struct {
	st Stage
	s  Sink
}

func (w whereSink) Consume(rec *Record) error {
	keep, err := w.st(rec)
	if err != nil || !keep {
		return err
	}
	return w.s.Consume(rec)
}

func (w whereSink) Flush() error { return w.s.Flush() }

// Collect materializes the stream in memory — tests and small runs;
// long campaigns should stream into accumulators or writers instead.
type Collect struct {
	Records []core.SlotRecord
}

// Consume implements Sink.
func (c *Collect) Consume(rec *Record) error {
	c.Records = append(c.Records, *rec)
	return nil
}

// Flush implements Sink.
func (c *Collect) Flush() error { return nil }

// CollectObservations materializes only the observation half of the
// stream.
type CollectObservations struct {
	Obs []core.Observation
}

// Consume implements Sink.
func (c *CollectObservations) Consume(rec *Record) error {
	c.Obs = append(c.Obs, rec.Observation)
	return nil
}

// Flush implements Sink.
func (c *CollectObservations) Flush() error { return nil }

// WriteRecords streams full records to w as JSON Lines — the format
// RecordReplay reads back. Buffered output lands on Flush.
func WriteRecords(w io.Writer) Sink { return recordWriter{traceio.NewRecordEncoder(w)} }

type recordWriter struct{ enc *traceio.RecordEncoder }

func (s recordWriter) Consume(rec *Record) error { return s.enc.Encode(rec) }
func (s recordWriter) Flush() error              { return s.enc.Flush() }

// WriteObservations streams the observation half to w as JSON Lines —
// the -save-obs format ObservationReplay and traceio.ReadObservations
// read back.
func WriteObservations(w io.Writer) Sink {
	return obsWriter{traceio.NewObservationEncoder(w)}
}

type obsWriter struct{ enc *traceio.ObservationEncoder }

func (s obsWriter) Consume(rec *Record) error { return s.enc.Encode(&rec.Observation) }
func (s obsWriter) Flush() error              { return s.enc.Flush() }

// CountSkips tallies the stream without retaining it: record and
// served-row totals plus a skip-reason histogram — the replay-side
// counterpart of core.CampaignStats.
type CountSkips struct {
	Total, Served int
	Reasons       map[string]int
}

// Consume implements Sink.
func (c *CountSkips) Consume(rec *Record) error {
	c.Total++
	if rec.ChosenIdx >= 0 {
		c.Served++
	}
	if rec.SkipReason != "" {
		if c.Reasons == nil {
			c.Reasons = map[string]int{}
		}
		c.Reasons[rec.SkipReason]++
	}
	return nil
}

// Flush implements Sink.
func (c *CountSkips) Flush() error { return nil }
