package pipeline

// Online-inference plumbing: the predict service (internal/predict)
// implements OnlineScorer, and campaigns hang it off a stream either
// as a pass-through stage (score everything, keep flowing) or as a
// sink with a per-record callback (drift experiments that watch the
// windowed accuracy slot by slot). The pipeline package stays
// dependency-light — it sees only the interface, never the model.

// ScoreUpdate is one record's outcome through an online scorer: was it
// scored at all (records with no chosen satellite, or arriving before
// the first model is fit, are observed but not scored), where the true
// allocation ranked, and the scorer's windowed health after folding
// the outcome in.
type ScoreUpdate struct {
	// Scored reports whether a prediction was made and ranked against
	// the revealed allocation.
	Scored bool
	// Rank is the 1-based position of the true cluster in the model's
	// ranking (1 = top-1 hit). 0 when !Scored.
	Rank int
	// RecentTop1/RecentTopK are the short-window accuracies; RefTop1 is
	// the long reference window the drift detector compares against.
	RecentTop1 float64
	RecentTopK float64
	RefTop1    float64
	// Drift reports whether the detector currently considers the model
	// stale; DriftEvents counts rising edges so far.
	Drift       bool
	DriftEvents int
	// Refits counts models trained so far; ModelVersion is the serving
	// model's publication number (0 = still on baseline/none).
	Refits       int
	ModelVersion int64
}

// OnlineScorer folds one revealed slot into an online model: predict
// before looking at the answer, score the prediction, learn from the
// row. Implementations decide their own refit cadence.
type OnlineScorer interface {
	ObserveRecord(rec *Record) (ScoreUpdate, error)
}

// PredictStage feeds every record through the scorer and passes it on
// unchanged — the fire-and-forget form for campaigns that only want
// the scorer's metrics.
func PredictStage(s OnlineScorer) Stage {
	return func(rec *Record) (bool, error) {
		if _, err := s.ObserveRecord(rec); err != nil {
			return false, err
		}
		return true, nil
	}
}

// ScoreSink feeds records through the scorer and hands each update to
// onUpdate (which may be nil). Like every sink, it must not retain rec
// past the call — the pipeline reuses the record.
func ScoreSink(s OnlineScorer, onUpdate func(rec *Record, up ScoreUpdate)) Sink {
	return SinkFunc(func(rec *Record) error {
		up, err := s.ObserveRecord(rec)
		if err != nil {
			return err
		}
		if onUpdate != nil {
			onUpdate(rec, up)
		}
		return nil
	})
}
