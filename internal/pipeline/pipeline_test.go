package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// fakeRecords fabricates a deterministic mixed stream: two terminals,
// every third record skipped.
func fakeRecords(n int) []core.SlotRecord {
	base := time.Date(2023, 3, 1, 0, 0, 12, 0, time.UTC)
	out := make([]core.SlotRecord, n)
	for i := range out {
		rec := core.SlotRecord{
			Observation: core.Observation{
				Terminal:  []string{"A", "B"}[i%2],
				SlotStart: base.Add(time.Duration(i) * 15 * time.Second),
				LocalHour: i % 24,
				Available: []core.SatObs{{ID: i + 1, ElevationDeg: 40}},
				ChosenIdx: -1,
			},
		}
		if i%3 != 0 {
			rec.ChosenIdx = 0
			rec.IdentifiedID = i + 1
			rec.TrueID = i + 1
		} else {
			rec.SkipReason = "no satellite allocated"
		}
		out[i] = rec
	}
	return out
}

func TestRunOrderAndStages(t *testing.T) {
	recs := fakeRecords(20)
	var want []core.SlotRecord
	for _, r := range recs {
		if r.Terminal == "A" && r.ChosenIdx >= 0 {
			want = append(want, r)
		}
	}
	collect := &Collect{}
	p := &Pipeline{
		Source: Records(recs),
		Stages: []Stage{Terminals("A"), ChosenOnly()},
		Sinks:  []Sink{collect},
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collect.Records, want) {
		t.Fatalf("staged stream = %d records, want %d in source order", len(collect.Records), len(want))
	}
}

func TestWhereGatesOneSink(t *testing.T) {
	recs := fakeRecords(20)
	all := &Collect{}
	chosen := &CollectObservations{}
	counts := &CountSkips{}
	p := &Pipeline{
		Source: Records(recs),
		Sinks:  []Sink{all, Where(ChosenOnly(), chosen), counts},
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(all.Records) != len(recs) {
		t.Errorf("ungated sink saw %d records, want %d", len(all.Records), len(recs))
	}
	wantChosen := 0
	for _, r := range recs {
		if r.ChosenIdx >= 0 {
			wantChosen++
		}
	}
	if len(chosen.Obs) != wantChosen {
		t.Errorf("gated sink saw %d records, want %d", len(chosen.Obs), wantChosen)
	}
	if counts.Total != len(recs) || counts.Served != wantChosen {
		t.Errorf("counts = %d/%d, want %d/%d", counts.Served, counts.Total, wantChosen, len(recs))
	}
	if counts.Reasons["no satellite allocated"] != len(recs)-wantChosen {
		t.Errorf("skip histogram = %v", counts.Reasons)
	}
}

func TestLimitStopsSourceEarly(t *testing.T) {
	emitted := 0
	src := SourceFunc(func(ctx context.Context, emit func(Record) error) error {
		for i := 0; i < 1000; i++ {
			emitted++
			if err := emit(Record{}); err != nil {
				return err
			}
		}
		return nil
	})
	collect := &Collect{}
	flushed := &flushRecorder{}
	p := &Pipeline{
		Source: src,
		Stages: []Stage{Limit(10)},
		Sinks:  []Sink{collect, flushed},
		Buffer: 1,
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(collect.Records) != 10 {
		t.Errorf("collected %d records, want 10", len(collect.Records))
	}
	if emitted >= 1000 {
		t.Error("source ran to completion; Limit should have cancelled it")
	}
	if !flushed.flushed {
		t.Error("sinks not flushed after a clean ErrStop")
	}
}

// flushRecorder tracks whether Flush ran.
type flushRecorder struct{ flushed bool }

func (f *flushRecorder) Consume(rec *Record) error { return nil }
func (f *flushRecorder) Flush() error              { f.flushed = true; return nil }

func TestSinkErrorAbortsWithoutFlush(t *testing.T) {
	sentinel := errors.New("sink exploded")
	n := 0
	failing := SinkFunc(func(rec *Record) error {
		n++
		if n == 5 {
			return sentinel
		}
		return nil
	})
	flushed := &flushRecorder{}
	p := &Pipeline{
		Source: Records(fakeRecords(50)),
		Sinks:  []Sink{failing, flushed},
	}
	if err := p.Run(context.Background()); err != sentinel {
		t.Fatalf("err = %v, want the sink's error", err)
	}
	if flushed.flushed {
		t.Error("Flush ran after an error")
	}
}

func TestStageErrorAborts(t *testing.T) {
	sentinel := errors.New("stage exploded")
	bad := Stage(func(rec *Record) (bool, error) { return false, sentinel })
	p := &Pipeline{
		Source: Records(fakeRecords(5)),
		Stages: []Stage{bad},
		Sinks:  []Sink{&Collect{}},
	}
	if err := p.Run(context.Background()); err != sentinel {
		t.Fatalf("err = %v, want the stage's error", err)
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	sentinel := errors.New("source died")
	src := SourceFunc(func(ctx context.Context, emit func(Record) error) error {
		for i := 0; i < 3; i++ {
			if err := emit(Record{}); err != nil {
				return err
			}
		}
		return sentinel
	})
	collect := &Collect{}
	p := &Pipeline{Source: src, Sinks: []Sink{collect}}
	if err := p.Run(context.Background()); err != sentinel {
		t.Fatalf("err = %v, want the source's error", err)
	}
	if len(collect.Records) != 3 {
		t.Errorf("records before the failure = %d, want 3", len(collect.Records))
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Pipeline{Source: Records(fakeRecords(5)), Sinks: []Sink{&Collect{}}}
	if err := p.Run(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := (&Pipeline{Sinks: []Sink{&Collect{}}}).Run(context.Background()); err == nil {
		t.Error("nil source accepted")
	}
	if err := (&Pipeline{Source: Records(nil)}).Run(context.Background()); err == nil {
		t.Error("no sinks accepted")
	}
}

// TestRecordReplayRoundTrip: WriteRecords output replayed through
// RecordReplay reproduces the stream exactly — the persistence leg of
// the pipeline is lossless.
func TestRecordReplayRoundTrip(t *testing.T) {
	recs := fakeRecords(25)
	var buf bytes.Buffer
	p := &Pipeline{Source: Records(recs), Sinks: []Sink{WriteRecords(&buf)}}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	collect := &Collect{}
	p = &Pipeline{Source: RecordReplay{R: &buf}, Sinks: []Sink{collect}}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collect.Records, recs) {
		t.Fatal("record replay diverges from the written stream")
	}
}

// TestObservationReplayRoundTrip: the observation leg drops the
// ground-truth fields and wraps what remains in bare records.
func TestObservationReplayRoundTrip(t *testing.T) {
	recs := fakeRecords(25)
	var buf bytes.Buffer
	p := &Pipeline{Source: Records(recs), Sinks: []Sink{WriteObservations(&buf)}}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	collect := &Collect{}
	p = &Pipeline{Source: ObservationReplay{R: &buf}, Sinks: []Sink{collect}}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(collect.Records) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(collect.Records), len(recs))
	}
	for i, got := range collect.Records {
		want := Record{Observation: recs[i].Observation}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: observation replay = %+v, want bare %+v", i, got, want)
		}
	}
}

// TestReplayDecodeError: a corrupt trace surfaces the decoder's error
// through Run.
func TestReplayDecodeError(t *testing.T) {
	p := &Pipeline{
		Source: RecordReplay{R: bytes.NewReader([]byte("{broken"))},
		Sinks:  []Sink{&Collect{}},
	}
	if err := p.Run(context.Background()); err == nil {
		t.Fatal("corrupt trace replayed without error")
	}
}

// TestObservationsSourceWrap: in-memory observations stream as bare
// records.
func TestObservationsSourceWrap(t *testing.T) {
	recs := fakeRecords(6)
	obs := make([]core.Observation, len(recs))
	for i := range recs {
		obs[i] = recs[i].Observation
	}
	collect := &Collect{}
	p := &Pipeline{Source: Observations(obs), Sinks: []Sink{collect}}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := range obs {
		if !reflect.DeepEqual(collect.Records[i], Record{Observation: obs[i]}) {
			t.Fatalf("record %d: not a bare wrap", i)
		}
	}
}

// TestFeedAccumulator: the Feed sink drives a core accumulator to the
// same result as the batch analyzer over the same rows.
func TestFeedAccumulator(t *testing.T) {
	recs := fakeRecords(40)
	var obs []core.Observation
	for _, r := range recs {
		if r.ChosenIdx >= 0 {
			obs = append(obs, r.Observation)
		}
	}
	acc := core.NewAOEAccumulator(5)
	p := &Pipeline{
		Source: Records(recs),
		Stages: []Stage{ChosenOnly()},
		Sinks:  []Sink{Feed(acc)},
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want, err := core.AnalyzeAOE(obs, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := acc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fed accumulator diverges from batch analyzer")
	}
}

// TestLimitExample documents composition: campaign-shaped source,
// limit, terminal filter, two sinks — nothing blocks, nothing leaks.
func TestLimitExample(t *testing.T) {
	for _, buffer := range []int{1, 64} {
		t.Run(fmt.Sprintf("buffer=%d", buffer), func(t *testing.T) {
			counts := &CountSkips{}
			p := &Pipeline{
				Source: Records(fakeRecords(200)),
				Stages: []Stage{Terminals("B"), Limit(30)},
				Sinks:  []Sink{counts, SinkFunc(func(rec *Record) error { return nil })},
				Buffer: buffer,
			}
			if err := p.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if counts.Total != 30 {
				t.Fatalf("limited stream = %d records, want 30", counts.Total)
			}
		})
	}
}
