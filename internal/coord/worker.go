// Package coord shards a measurement campaign across worker processes
// and merges the results back into the exact byte stream a
// single-process run would produce.
//
// The design leans on one property of the ground-truth scheduler: it
// is deterministic from (scale, seed) but stateful across slots, so it
// cannot be split — every worker runs the FULL scheduler from slot 0
// and computes records only for its contiguous terminal shard
// (core.CampaignConfig.Shard). The coordinator fetches each shard's
// records over the dishrpc framed transport, journals them to
// per-shard JSONL files (traceio, Sync = ack), and merges slot by slot
// in shard order — which reproduces the serial (slot, terminal)
// sequence byte for byte.
//
// Failure semantics: a worker death surfaces as a timed-out or broken
// call; the client connection is poisoned (dishrpc.ErrPoisoned), the
// shard's journal is trimmed to its last complete-slot boundary, and
// the shard is reassigned — bounded retries with exponential backoff,
// Redial on the same worker or a ping-selected survivor — with the
// replacement worker replaying from slot 0 but emitting only from the
// first unacked slot (core.CampaignConfig.EmitFromSlot). Records
// before the ack point come out of the journal, so the merged stream
// carries no duplicated or missing (slot, terminal) cells.
package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dishrpc"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

// CampaignSpec is the campaign description the coordinator sends to
// every worker. Workers rebuild the identical environment from it, so
// the spec must pin everything determinism depends on.
type CampaignSpec struct {
	// Scale is the constellation density (experiments.Scale). Ignored
	// when Scenario is set.
	Scale string `json:"scale"`
	Seed  int64  `json:"seed"`
	Slots int    `json:"slots"`
	// Scenario, when non-nil, carries a full declarative scenario —
	// constellation design (including non-Starlink Walker-star
	// geometry), terminal placement, scheduler config — and each
	// worker rebuilds its environment from it instead of assuming the
	// Starlink shells. The coordinator-level campaign shape (Slots,
	// Oracle, ResetEvery, SnapshotWorkers) stays authoritative here:
	// the merge loop and shard journals are keyed on it.
	Scenario *scenario.Spec `json:"scenario,omitempty"`
	// Oracle labels slots with scheduler ground truth instead of running
	// obstruction-map identification.
	Oracle bool `json:"oracle"`
	// ResetEvery is the terminal reset cadence in slots (0 = default).
	ResetEvery int `json:"reset_every,omitempty"`
	// SnapshotWorkers is the per-slot propagation fan-out (0 =
	// GOMAXPROCS). Snapshots are byte-identical at every value, so this
	// is safe to vary per worker host without breaking shard replay.
	SnapshotWorkers int `json:"snapshot_workers,omitempty"`
}

// Builder turns a spec into a runnable campaign config. The returned
// config must be freshly built on every call: the scheduler is
// stateful, and a reassigned shard restarts it from slot 0.
type Builder func(CampaignSpec) (core.CampaignConfig, error)

// BuildCampaign is the default Builder: a full experiments environment
// from the scenario spec when one is attached, else from (scale,
// seed) — exactly what cmd/repro runs single-process.
func BuildCampaign(spec CampaignSpec) (core.CampaignConfig, error) {
	var env *experiments.Env
	var err error
	if spec.Scenario != nil {
		var built *scenario.Built
		built, err = spec.Scenario.Build(scenario.BuildOptions{SnapshotWorkers: spec.SnapshotWorkers})
		if err != nil {
			return core.CampaignConfig{}, err
		}
		env = built.Env
	} else {
		env, err = experiments.NewEnv(experiments.Config{
			Scale:           experiments.Scale(spec.Scale),
			Seed:            spec.Seed,
			SnapshotWorkers: spec.SnapshotWorkers,
		})
		if err != nil {
			return core.CampaignConfig{}, err
		}
	}
	return core.CampaignConfig{
		Scheduler:       env.Sched,
		Identifier:      env.Ident,
		Start:           env.Start(),
		Slots:           spec.Slots,
		Oracle:          spec.Oracle,
		ResetEvery:      spec.ResetEvery,
		SnapshotWorkers: spec.SnapshotWorkers,
		Snapshots:       env.Snaps,
	}, nil
}

// Protocol messages. The transport is the dishrpc length-prefixed
// framing; methods are dispatched by name through a Handler server.
type startParams struct {
	Shard int          `json:"shard"`
	Lo    int          `json:"lo"`
	Hi    int          `json:"hi"`
	From  int          `json:"from"` // EmitFromSlot: first unacked slot
	Spec  CampaignSpec `json:"spec"`
}

type fetchParams struct {
	Shard int `json:"shard"`
	Max   int `json:"max"`
}

type fetchResult struct {
	Records []core.SlotRecord `json:"records,omitempty"`
	// Done means the campaign finished and every record has been
	// handed out; Stats carries the worker's whole-campaign summary.
	Done  bool                `json:"done,omitempty"`
	Error string              `json:"error,omitempty"`
	Stats *core.CampaignStats `json:"stats,omitempty"`
}

type infoResult struct {
	Terminals int `json:"terminals"`
}

// Worker executes shard campaigns on behalf of a coordinator. One
// worker can hold several shards at once — after a peer dies, its
// shards land on the survivors.
type Worker struct {
	// Builder constructs campaigns from specs; nil uses BuildCampaign.
	Builder Builder
	// RecordDelay throttles record production (test and fault-injection
	// hook: a campaign slow enough to kill a worker in the middle of).
	RecordDelay time.Duration

	mu     sync.Mutex
	shards map[int]*shardRun
}

// shardRun is one in-flight shard campaign on a worker.
type shardRun struct {
	cancel context.CancelFunc

	mu    sync.Mutex
	queue []core.SlotRecord
	done  bool
	err   string
	stats *core.CampaignStats
}

func (r *shardRun) push(rec core.SlotRecord) {
	r.mu.Lock()
	r.queue = append(r.queue, rec)
	r.mu.Unlock()
}

func (r *shardRun) finish(stats *core.CampaignStats, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done = true
	r.stats = stats
	if err != nil {
		r.err = err.Error()
	}
}

// Handle is the worker's dishrpc method table.
func (w *Worker) Handle(method string, params json.RawMessage) (any, error) {
	switch method {
	case "coord_ping":
		return "ok", nil
	case "coord_info":
		var spec CampaignSpec
		if err := json.Unmarshal(params, &spec); err != nil {
			return nil, fmt.Errorf("bad spec: %v", err)
		}
		cfg, err := w.builder()(spec)
		if err != nil {
			return nil, err
		}
		return infoResult{Terminals: len(cfg.Scheduler.Terminals())}, nil
	case "coord_start":
		var p startParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad start params: %v", err)
		}
		return "ok", w.start(p)
	case "coord_fetch":
		var p fetchParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad fetch params: %v", err)
		}
		return w.fetch(p), nil
	default:
		return nil, dishrpc.UnknownMethod(method)
	}
}

func (w *Worker) builder() Builder {
	if w.Builder != nil {
		return w.Builder
	}
	return BuildCampaign
}

// start launches (or relaunches) a shard campaign. A relaunch cancels
// the previous run of the same shard id: the coordinator only
// restarts a shard it has given up on, and stale records must not mix
// with the replay.
func (w *Worker) start(p startParams) error {
	cfg, err := w.builder()(p.Spec)
	if err != nil {
		return err
	}
	cfg.Shard = core.ShardRange{Lo: p.Lo, Hi: p.Hi}
	cfg.EmitFromSlot = p.From

	ctx, cancel := context.WithCancel(context.Background())
	run := &shardRun{cancel: cancel}

	w.mu.Lock()
	if w.shards == nil {
		w.shards = make(map[int]*shardRun)
	}
	if old := w.shards[p.Shard]; old != nil {
		old.cancel()
	}
	w.shards[p.Shard] = run
	w.mu.Unlock()

	go func() {
		defer cancel()
		stats, err := core.RunCampaignStream(ctx, cfg, func(rec core.SlotRecord) error {
			if w.RecordDelay > 0 {
				time.Sleep(w.RecordDelay)
			}
			run.push(rec)
			return nil
		})
		run.finish(stats, err)
	}()
	return nil
}

// fetch hands out up to Max queued records, waiting briefly when the
// queue is empty so the coordinator's poll loop is not a hot spin.
// Done is only reported once the campaign has finished AND the queue
// has drained, so Done implies "no record left behind".
func (w *Worker) fetch(p fetchParams) fetchResult {
	w.mu.Lock()
	run := w.shards[p.Shard]
	w.mu.Unlock()
	if run == nil {
		return fetchResult{Error: fmt.Sprintf("shard %d not started", p.Shard)}
	}
	if p.Max <= 0 {
		p.Max = 128
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for {
		run.mu.Lock()
		if len(run.queue) > 0 {
			n := len(run.queue)
			if n > p.Max {
				n = p.Max
			}
			recs := run.queue[:n:n]
			run.queue = run.queue[n:]
			run.mu.Unlock()
			return fetchResult{Records: recs}
		}
		if run.done {
			res := fetchResult{Done: true, Error: run.err, Stats: run.stats}
			run.mu.Unlock()
			return res
		}
		run.mu.Unlock()
		if !time.Now().Before(deadline) {
			return fetchResult{} // empty poll: campaign still producing
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// NewWorkerServer serves w's shard protocol on addr over the dishrpc
// framing. Run it with Serve; a coordinator connects with Dial.
func NewWorkerServer(addr string, w *Worker) (*dishrpc.Server, error) {
	return dishrpc.NewHandlerServer(addr, w.Handle)
}
