package coord

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dishrpc"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/traceio"
)

// testSpec is small and oracle-mode so a full campaign runs in
// milliseconds per worker while still exercising every layer.
func testSpec(slots int) CampaignSpec {
	return CampaignSpec{Scale: "small", Seed: 41, Slots: slots, Oracle: true}
}

// serialBytes runs the spec single-process and returns the traceio
// JSONL encoding — the golden stream every distributed run must match
// byte for byte.
func serialBytes(t *testing.T, spec CampaignSpec) []byte {
	t.Helper()
	cfg, err := BuildCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := traceio.NewRecordEncoder(&buf)
	if _, err := core.RunCampaignStream(context.Background(), cfg, func(rec core.SlotRecord) error {
		return enc.Encode(&rec)
	}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startWorker serves one in-process worker and returns its server (for
// address and for killing it mid-campaign).
func startWorker(t *testing.T, delay time.Duration) *dishrpc.Server {
	t.Helper()
	srv, err := NewWorkerServer("127.0.0.1:0", &Worker{RecordDelay: delay})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background())
	t.Cleanup(func() { srv.Close() })
	return srv
}

func addrs(servers []*dishrpc.Server) []string {
	out := make([]string, len(servers))
	for i, s := range servers {
		out[i] = s.Addr().String()
	}
	return out
}

// TestCoordinatorMatchesSerial: distributed runs at several
// shard/worker shapes produce the byte-identical merged stream, and
// the per-shard gauges land on the metrics registry.
func TestCoordinatorMatchesSerial(t *testing.T) {
	spec := testSpec(6)
	golden := serialBytes(t, spec)
	for _, tc := range []struct{ workers, shards int }{
		{1, 1}, {2, 2}, {3, 3}, {2, 3},
	} {
		servers := make([]*dishrpc.Server, tc.workers)
		for i := range servers {
			servers[i] = startWorker(t, 0)
		}
		reg := telemetry.NewRegistry()
		var out bytes.Buffer
		c := &Coordinator{
			Workers:    addrs(servers),
			Spec:       spec,
			Shards:     tc.shards,
			JournalDir: t.TempDir(),
			Registry:   reg,
			Out:        &out,
		}
		res, err := c.Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v", tc.workers, tc.shards, err)
		}
		if !bytes.Equal(out.Bytes(), golden) {
			t.Fatalf("workers=%d shards=%d: merged stream differs from serial (%d vs %d bytes)",
				tc.workers, tc.shards, out.Len(), len(golden))
		}
		if res.Records != res.Terminals*spec.Slots {
			t.Errorf("records = %d, want %d", res.Records, res.Terminals*spec.Slots)
		}
		if res.Reassigned != 0 {
			t.Errorf("healthy run reassigned %d shards", res.Reassigned)
		}
		var prom bytes.Buffer
		if err := reg.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{
			`coord_shard_queue_depth{shard="0"}`,
			`coord_shard_lag_slots{shard="0"}`,
		} {
			if !strings.Contains(prom.String(), want) {
				t.Errorf("workers=%d shards=%d: /metrics missing %s", tc.workers, tc.shards, want)
			}
		}
	}
}

// TestCoordinatorWorkerDeath is the tentpole acceptance test: a
// 3-worker campaign with one worker killed mid-run must produce
// byte-identical output to the serial single-process run, with the
// dead worker's shard replayed from the journal onto a survivor — no
// duplicated or missing (slot, terminal) records.
func TestCoordinatorWorkerDeath(t *testing.T) {
	// The throttle × slot count must keep every shard's campaign running
	// well past the 60 ms kill below — the snapshot engine is fast
	// enough that an unthrottled run finishes first.
	spec := testSpec(30)
	golden := serialBytes(t, spec)

	servers := make([]*dishrpc.Server, 3)
	for i := range servers {
		servers[i] = startWorker(t, 5*time.Millisecond)
	}
	journals := t.TempDir()
	var out bytes.Buffer
	c := &Coordinator{
		Workers:     addrs(servers),
		Spec:        spec,
		Shards:      3,
		JournalDir:  journals,
		CallTimeout: 2 * time.Second,
		Backoff:     20 * time.Millisecond,
		Out:         &out,
	}

	// SIGKILL stand-in: closing the server tears down its listener and
	// every open connection, exactly what the coordinator sees when the
	// process dies.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(60 * time.Millisecond)
		servers[1].Close()
	}()

	res, err := c.Run(context.Background())
	<-killed
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Fatalf("merged stream differs from serial after worker death (%d vs %d bytes)", out.Len(), len(golden))
	}
	if res.Reassigned == 0 {
		t.Error("worker death did not trigger a reassignment (kill landed too late?)")
	}

	// Every shard journal must strictly decode to exactly its share of
	// the serial stream — the no-dup/no-gap proof at the durable layer.
	goldenRecs := decodeAll(t, bytes.NewReader(golden))
	nTerms := res.Terminals
	for s := 0; s < res.Shards; s++ {
		lo, hi := s*nTerms/res.Shards, (s+1)*nTerms/res.Shards
		f, err := os.Open(filepath.Join(journals, "shard-"+string(rune('0'+s))+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		got := decodeAll(t, f)
		f.Close()
		var want []core.SlotRecord
		for slot := 0; slot < spec.Slots; slot++ {
			want = append(want, goldenRecs[slot*nTerms+lo:slot*nTerms+hi]...)
		}
		if len(got) != len(want) {
			t.Fatalf("shard %d journal has %d records, want %d", s, len(got), len(want))
		}
		for i := range got {
			if got[i].Terminal != want[i].Terminal || !got[i].SlotStart.Equal(want[i].SlotStart) ||
				got[i].TrueID != want[i].TrueID {
				t.Fatalf("shard %d journal record %d: (%s, %v, %d) want (%s, %v, %d)",
					s, i, got[i].Terminal, got[i].SlotStart, got[i].TrueID,
					want[i].Terminal, want[i].SlotStart, want[i].TrueID)
			}
		}
	}
}

func decodeAll(t *testing.T, r io.Reader) []core.SlotRecord {
	t.Helper()
	dec := traceio.NewRecordDecoder(r)
	var out []core.SlotRecord
	for {
		rec, err := dec.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

// TestCoordinatorResumeFromJournal: rerunning a completed campaign
// against the same journal dir serves every record from the journals
// (workers re-run the scheduler but emit nothing) and still produces
// the byte-identical stream — the coordinator-crash recovery path.
func TestCoordinatorResumeFromJournal(t *testing.T) {
	spec := testSpec(5)
	golden := serialBytes(t, spec)
	servers := []*dishrpc.Server{startWorker(t, 0), startWorker(t, 0)}
	journals := t.TempDir()
	run := func() (*Result, []byte) {
		var out bytes.Buffer
		c := &Coordinator{
			Workers: addrs(servers), Spec: spec, Shards: 2,
			JournalDir: journals, Out: &out,
		}
		res, err := c.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res, out.Bytes()
	}
	res1, out1 := run()
	if res1.Replayed != 0 {
		t.Fatalf("fresh run replayed %d records", res1.Replayed)
	}
	if !bytes.Equal(out1, golden) {
		t.Fatal("fresh run diverged from serial")
	}

	// Corrupt one journal's tail the way a crash mid-append would:
	// chop bytes off the final line. The resume must drop the partial
	// slot, refetch it, and still match.
	path := filepath.Join(journals, "shard-0.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	res2, out2 := run()
	if res2.Replayed == 0 {
		t.Fatal("resume run replayed nothing from the journals")
	}
	if res2.Replayed >= res2.Records {
		t.Fatalf("resume replayed %d of %d records; the truncated slot should have been refetched",
			res2.Replayed, res2.Records)
	}
	if !bytes.Equal(out2, golden) {
		t.Fatal("journal-resumed run diverged from serial")
	}
}

// TestCoordinatorAllWorkersDead: with no reachable worker the run
// fails with a bounded, decorated error instead of hanging.
func TestCoordinatorAllWorkersDead(t *testing.T) {
	srv := startWorker(t, 0)
	addr := srv.Addr().String()
	srv.Close()
	c := &Coordinator{
		Workers: []string{addr}, Spec: testSpec(2),
		JournalDir: t.TempDir(), CallTimeout: 200 * time.Millisecond,
		MaxAttempts: 2, Backoff: 10 * time.Millisecond,
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run succeeded with every worker dead")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run hung with every worker dead")
	}
}

// TestCoordinatorScenarioSpec: the coordinator runs a non-Starlink
// scenario — workers rebuild a Walker-star constellation and
// grid-placed terminals from the spec carried in CampaignSpec, not
// from the baked-in Starlink shells — and the distributed merge is
// byte-identical to the serial scenario run.
func TestCoordinatorScenarioSpec(t *testing.T) {
	scn := &scenario.Spec{
		Version: scenario.SpecVersion,
		Name:    "coord-star",
		Seed:    5,
		Constellation: scenario.ConstellationSpec{
			NamePrefix: "STAR",
			Shells: []scenario.ShellSpec{
				{Name: "cs", Geometry: "walker-star", AltitudeKm: 1200, InclinationDeg: 86.4,
					Planes: 10, SatsPerPlane: 12, PhasingF: 1},
			},
		},
		Terminals: scenario.TerminalsSpec{
			Grids: []scenario.GridSpec{
				{Prefix: "g", Region: scenario.RegionSpec{LatMinDeg: 35, LatMaxDeg: 48, LonMinDeg: -100, LonMaxDeg: -80},
					Rows: 2, Cols: 2},
			},
		},
		Scheduler: scenario.SchedulerSpec{DisableGroundStations: true},
		Campaign:  scenario.CampaignSpec{Slots: 6, Oracle: true},
	}
	if err := scn.Validate(); err != nil {
		t.Fatal(err)
	}
	spec := CampaignSpec{Scenario: scn, Seed: scn.Seed, Slots: scn.Campaign.Slots, Oracle: true}
	golden := serialBytes(t, spec)
	if len(golden) == 0 {
		t.Fatal("empty golden scenario stream")
	}
	// The stream must really be the scenario's placement, and the
	// builder must really produce the Walker-star fleet.
	if !bytes.Contains(golden, []byte(`"g-0"`)) || !bytes.Contains(golden, []byte(`"g-3"`)) {
		t.Fatal("scenario stream does not carry the grid-placed terminals")
	}
	built, err := scn.Build(scenario.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if built.Env.Cons.Len() != 120 || built.Env.Cons.Sats[0].Name != "STAR-1000" {
		t.Fatalf("scenario built %d sats, first %q; want 120 STAR-prefixed",
			built.Env.Cons.Len(), built.Env.Cons.Sats[0].Name)
	}

	servers := []*dishrpc.Server{startWorker(t, 0), startWorker(t, 0)}
	var out bytes.Buffer
	c := &Coordinator{
		Workers:    addrs(servers),
		Spec:       spec,
		Shards:     2,
		JournalDir: t.TempDir(),
		Out:        &out,
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminals != 4 {
		t.Fatalf("workers saw %d terminals, want the 4 grid-placed ones", res.Terminals)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Fatalf("distributed scenario stream differs from serial (%d vs %d bytes)", out.Len(), len(golden))
	}
}
