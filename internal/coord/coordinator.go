package coord

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dishrpc"
	"repro/internal/telemetry"
	"repro/internal/traceio"
)

// Coordinator shards one campaign over worker processes and merges the
// record streams back in deterministic order. See the package comment
// for the architecture and failure semantics.
type Coordinator struct {
	// Workers are the worker server addresses. Required.
	Workers []string
	// Spec describes the campaign; every worker rebuilds it verbatim.
	Spec CampaignSpec
	// Shards is the number of terminal shards; 0 uses len(Workers).
	// Shard i starts on worker i mod len(Workers).
	Shards int
	// JournalDir holds one JSONL journal per shard
	// (shard-<id>.jsonl). Journals surviving from a previous run are
	// replayed: complete-slot records feed the merge without refetching,
	// and workers start past them. Required.
	JournalDir string
	// CallTimeout bounds every worker RPC — the death detector. 0 uses
	// 5s.
	CallTimeout time.Duration
	// MaxAttempts bounds how many times one shard may be (re)started
	// before the campaign fails. 0 uses 4.
	MaxAttempts int
	// Backoff is the first retry delay, doubling per attempt. 0 uses
	// 100ms.
	Backoff time.Duration
	// FetchMax caps records per fetch (frame-size guard). 0 uses 128.
	FetchMax int
	// Registry, when non-nil, exposes per-shard queue-depth and lag
	// gauges (coord_shard_queue_depth, coord_shard_lag_slots).
	Registry *telemetry.Registry
	// Out, when non-nil, receives the merged record stream as JSONL —
	// byte-identical to a single-process run's traceio encoding.
	Out io.Writer
	// Emit, when non-nil, receives every merged record in order.
	Emit core.EmitFunc

	// resMu guards the Result fields shard goroutines touch.
	resMu sync.Mutex
}

// Result summarizes a distributed campaign.
type Result struct {
	// Terminals and Shards describe the partition.
	Terminals, Shards int
	// Records/Served/Skips are recomputed from the merged stream, so
	// they describe exactly what went downstream.
	Records, Served int
	Skips           map[string]int
	// Attempted/Correct/Failed sum the per-shard identification
	// tallies reported by each shard's completing worker (whole-campaign
	// tallies even when the shard was replayed).
	Attempted, Correct, Failed int
	// Reassigned counts shard (re)starts beyond the first, Replayed the
	// records served from journals instead of workers.
	Reassigned, Replayed int
}

// shardState is the coordinator's view of one shard.
type shardState struct {
	id     int
	lo, hi int
	worker int // index into Coordinator.Workers

	client *dishrpc.Client
	// Journal: every fetched record is appended and fsynced before it
	// becomes visible to the merger — "acked" means durable.
	file        *os.File
	cw          *countingWriter
	enc         *traceio.RecordEncoder
	boundaryOff int64 // byte offset at the last complete-slot boundary

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []core.SlotRecord // acked, not yet merged
	pushed int               // records acked since campaign start
	merged int               // slots merged downstream
	failed error
	stats  *core.CampaignStats

	depth, lag *telemetry.Gauge
}

func (s *shardState) width() int { return s.hi - s.lo }

// ackedSlots is the replay point: slots fully journaled and pushed.
func (s *shardState) ackedSlots() int { return s.pushed / s.width() }

// countingWriter tracks the journal's byte length so complete-slot
// boundaries map to truncation offsets, and forwards Sync so the
// traceio encoder's ack barrier reaches the file.
type countingWriter struct {
	f *os.File
	n int64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.n += int64(n)
	return n, err
}

func (w *countingWriter) Sync() error { return w.f.Sync() }

// Run executes the campaign: shard goroutines drive the workers while
// this goroutine merges, journals having been replayed first. It
// returns when every (slot, terminal) record has been merged, or with
// the first terminal error.
func (c *Coordinator) Run(ctx context.Context) (*Result, error) {
	if len(c.Workers) == 0 {
		return nil, fmt.Errorf("coord: no workers")
	}
	if c.JournalDir == "" {
		return nil, fmt.Errorf("coord: journal dir required")
	}
	if err := os.MkdirAll(c.JournalDir, 0o755); err != nil {
		return nil, fmt.Errorf("coord: journal dir: %w", err)
	}
	callTimeout := c.CallTimeout
	if callTimeout <= 0 {
		callTimeout = 5 * time.Second
	}
	maxAttempts := c.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 4
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	fetchMax := c.FetchMax
	if fetchMax <= 0 {
		fetchMax = 128
	}
	nShards := c.Shards
	if nShards <= 0 {
		nShards = len(c.Workers)
	}

	nTerms, err := c.fleetSize(callTimeout)
	if err != nil {
		return nil, err
	}
	if nShards > nTerms {
		nShards = nTerms
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	res := &Result{Terminals: nTerms, Shards: nShards, Skips: map[string]int{}}
	depthVec := c.Registry.GaugeVec("coord_shard_queue_depth",
		"records acked but not yet merged, per shard", "shard")
	lagVec := c.Registry.GaugeVec("coord_shard_lag_slots",
		"slots acked but not yet merged, per shard", "shard")

	shards := make([]*shardState, nShards)
	for i := range shards {
		s := &shardState{
			id: i,
			lo: i * nTerms / nShards, hi: (i + 1) * nTerms / nShards,
			worker: i % len(c.Workers),
			depth:  depthVec.With(fmt.Sprint(i)),
			lag:    lagVec.With(fmt.Sprint(i)),
		}
		s.cond = sync.NewCond(&s.mu)
		if err := c.openJournal(s, res); err != nil {
			return nil, err
		}
		defer s.file.Close()
		// cond.Wait cannot watch ctx; wake waiters on cancellation.
		go func() { <-ctx.Done(); s.cond.Broadcast() }()
		shards[i] = s
	}

	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(s *shardState) {
			defer wg.Done()
			if err := c.runShard(ctx, s, callTimeout, maxAttempts, backoff, fetchMax, res); err != nil {
				s.fail(err)
			}
		}(s)
	}
	defer wg.Wait()
	defer cancel() // on a merge error, release shard goroutines first

	var enc *traceio.RecordEncoder
	if c.Out != nil {
		enc = traceio.NewRecordEncoder(c.Out)
	}
	for slot := 0; slot < c.Spec.Slots; slot++ {
		for _, s := range shards {
			recs, err := s.take(ctx, s.width())
			if err != nil {
				return nil, err
			}
			for i := range recs {
				if enc != nil {
					if err := enc.Encode(&recs[i]); err != nil {
						return nil, err
					}
				}
				if c.Emit != nil {
					if err := c.Emit(recs[i]); err != nil {
						return nil, err
					}
				}
				res.Records++
				if recs[i].ChosenIdx >= 0 {
					res.Served++
				}
				if recs[i].SkipReason != "" {
					res.Skips[recs[i].SkipReason]++
				}
			}
		}
	}
	if enc != nil {
		if err := enc.Close(); err != nil {
			return nil, err
		}
	}
	wg.Wait()
	for _, s := range shards {
		if err := s.err(); err != nil {
			return nil, err
		}
		if s.stats != nil {
			res.Attempted += s.stats.Attempted
			res.Correct += s.stats.Correct
			res.Failed += s.stats.Failed
		}
	}
	return res, nil
}

// fleetSize asks any reachable worker for the terminal count of the
// spec's environment — the coordinator never builds the constellation
// itself.
func (c *Coordinator) fleetSize(callTimeout time.Duration) (int, error) {
	var lastErr error
	for _, addr := range c.Workers {
		client, err := dishrpc.Dial(addr)
		if err != nil {
			lastErr = err
			continue
		}
		client.SetCallTimeout(callTimeout)
		var info infoResult
		err = client.Call("coord_info", c.Spec, &info)
		client.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if info.Terminals <= 0 {
			return 0, fmt.Errorf("coord: worker %s reports %d terminals", addr, info.Terminals)
		}
		return info.Terminals, nil
	}
	return 0, fmt.Errorf("coord: no worker reachable for fleet info: %w", lastErr)
}

// openJournal opens (creating if needed) a shard's journal and replays
// what a previous coordinator run acked: records up to the last
// complete slot feed the merge queue directly; anything past that
// boundary — a partial slot, or a line cut by a crash mid-append — is
// truncated away and refetched from a worker.
func (c *Coordinator) openJournal(s *shardState, res *Result) error {
	path := filepath.Join(c.JournalDir, fmt.Sprintf("shard-%d.jsonl", s.id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("coord: open journal: %w", err)
	}
	dec := traceio.NewRecordDecoder(f)
	dec.TolerateTruncatedTail()
	var recs []core.SlotRecord
	var boundary int64
	for {
		rec, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("coord: journal %s: %w", path, err)
		}
		recs = append(recs, rec)
		if len(recs)%s.width() == 0 {
			boundary = dec.Offset()
		}
	}
	acked := (len(recs) / s.width()) * s.width()
	if err := f.Truncate(boundary); err != nil {
		f.Close()
		return fmt.Errorf("coord: trim journal: %w", err)
	}
	if _, err := f.Seek(boundary, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("coord: seek journal: %w", err)
	}
	s.file = f
	s.cw = &countingWriter{f: f, n: boundary}
	s.enc = traceio.NewRecordEncoder(s.cw)
	s.boundaryOff = boundary
	s.queue = recs[:acked]
	s.pushed = acked
	s.depth.Set(int64(acked))
	s.lag.Set(int64(s.ackedSlots()))
	res.Replayed += acked
	return nil
}

// take blocks until n acked records are available and pops them — the
// merger's per-(slot, shard) read.
func (s *shardState) take(ctx context.Context, n int) ([]core.SlotRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) < n && s.failed == nil && ctx.Err() == nil {
		s.cond.Wait()
	}
	if s.failed != nil {
		return nil, s.failed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	recs := s.queue[:n:n]
	s.queue = s.queue[n:]
	s.merged++
	s.depth.Set(int64(len(s.queue)))
	s.lag.Set(int64(s.pushed/s.width() - s.merged))
	return recs, nil
}

func (s *shardState) fail(err error) {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = err
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *shardState) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// runShard drives one shard to completion: start it on its worker,
// fetch-journal-push until done, and on any transport failure retry
// with exponential backoff — Redial first, then reassign to a
// ping-responsive survivor — replaying from the journal's last
// complete slot.
func (c *Coordinator) runShard(ctx context.Context, s *shardState,
	callTimeout time.Duration, maxAttempts int, backoff time.Duration,
	fetchMax int, res *Result) error {
	defer func() {
		if s.client != nil {
			s.client.Close()
		}
	}()
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			// Exponential backoff before touching the fleet again.
			d := backoff << (attempt - 1)
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return ctx.Err()
			}
			s.trimToBoundary()
			s.worker = c.pickWorker(s.worker, callTimeout)
			c.noteReassign(res)
		}
		err := c.driveShard(ctx, s, callTimeout, fetchMax)
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return fmt.Errorf("coord: shard %d failed after %d attempts: %w", s.id, maxAttempts, lastErr)
}

func (c *Coordinator) noteReassign(res *Result) {
	c.resMu.Lock()
	res.Reassigned++
	c.resMu.Unlock()
}

// driveShard runs one attempt: connect (Redial if poisoned), start the
// worker past the acked slots, then fetch, journal, ack, and push
// until the worker reports done.
func (c *Coordinator) driveShard(ctx context.Context, s *shardState,
	callTimeout time.Duration, fetchMax int) error {
	addr := c.Workers[s.worker]
	switch {
	case s.client == nil:
		client, err := dishrpc.Dial(addr)
		if err != nil {
			return err
		}
		client.SetCallTimeout(callTimeout)
		s.client = client
	case s.client.Addr() != addr:
		s.client.Close()
		client, err := dishrpc.Dial(addr)
		if err != nil {
			return err
		}
		client.SetCallTimeout(callTimeout)
		s.client = client
	case s.client.Err() != nil:
		// Same worker, poisoned stream: a fresh connection, same client.
		if err := s.client.Redial(); err != nil {
			return err
		}
	}

	start := startParams{Shard: s.id, Lo: s.lo, Hi: s.hi, From: s.ackedSlots(), Spec: c.Spec}
	if err := s.client.Call("coord_start", start, nil); err != nil {
		return err
	}
	want := s.width() * c.Spec.Slots
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var fr fetchResult
		if err := s.client.Call("coord_fetch", fetchParams{Shard: s.id, Max: fetchMax}, &fr); err != nil {
			return err
		}
		if len(fr.Records) > 0 {
			if err := s.ack(fr.Records); err != nil {
				return err
			}
		}
		if fr.Done {
			if fr.Error != "" {
				return fmt.Errorf("coord: shard %d worker campaign: %s", s.id, fr.Error)
			}
			if got := s.acked(); got != want {
				return fmt.Errorf("coord: shard %d: worker done with %d/%d records", s.id, got, want)
			}
			s.mu.Lock()
			s.stats = fr.Stats
			s.mu.Unlock()
			return nil
		}
	}
}

// ack journals a fetched batch — flushing at every complete-slot
// boundary so the truncation offset tracks the ack point — then syncs
// (the durability barrier) and only then exposes the records to the
// merger.
func (s *shardState) ack(recs []core.SlotRecord) error {
	// The new boundary is committed only after Sync succeeds: a failed
	// batch leaves boundaryOff at the previous ack point, and the next
	// trimToBoundary cuts the partial bytes away.
	boundary := s.boundaryOff
	for i := range recs {
		if err := s.enc.Encode(&recs[i]); err != nil {
			return err
		}
		if (s.pushed+i+1)%s.width() == 0 {
			if err := s.enc.Flush(); err != nil {
				return err
			}
			boundary = s.cw.n
		}
	}
	if err := s.enc.Sync(); err != nil {
		return err
	}
	s.boundaryOff = boundary
	s.mu.Lock()
	s.queue = append(s.queue, recs...)
	s.pushed += len(recs)
	s.depth.Set(int64(len(s.queue)))
	s.lag.Set(int64(s.pushed/s.width() - s.merged))
	s.mu.Unlock()
	s.cond.Broadcast()
	return nil
}

func (s *shardState) acked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushed
}

// trimToBoundary drops the partial slot at the journal's tail — both
// the queued records the merger has not consumed (it only ever takes
// whole slots, so they are still there) and the journal bytes past the
// last complete-slot boundary. The replacement worker re-emits from
// the boundary slot.
func (s *shardState) trimToBoundary() {
	s.mu.Lock()
	excess := s.pushed % s.width()
	if excess > 0 {
		s.queue = s.queue[:len(s.queue)-excess]
		s.pushed -= excess
		s.depth.Set(int64(len(s.queue)))
	}
	s.mu.Unlock()
	if s.cw.n != s.boundaryOff || excess > 0 {
		s.file.Truncate(s.boundaryOff)
		s.file.Seek(s.boundaryOff, io.SeekStart)
		s.cw.n = s.boundaryOff
		s.enc = traceio.NewRecordEncoder(s.cw)
	}
}

// pickWorker returns the next worker, preferring one that answers a
// ping: reassignment should land on a live survivor, falling back to
// the original address (the worker may simply have restarted).
func (c *Coordinator) pickWorker(current int, callTimeout time.Duration) int {
	for i := 1; i <= len(c.Workers); i++ {
		cand := (current + i) % len(c.Workers)
		if c.ping(c.Workers[cand], callTimeout) {
			return cand
		}
	}
	return current
}

func (c *Coordinator) ping(addr string, callTimeout time.Duration) bool {
	client, err := dishrpc.Dial(addr)
	if err != nil {
		return false
	}
	defer client.Close()
	client.SetCallTimeout(callTimeout)
	return client.Call("coord_ping", nil, nil) == nil
}
