package ml

import (
	"testing"

	"repro/internal/telemetry"
)

// TestForestMetrics checks the training counters: every tree counted
// once, every tree attributed to exactly one split strategy, and the
// fit duration observed — identically at any worker count.
func TestForestMetrics(t *testing.T) {
	d := gaussDataset(200, 9)
	for _, workers := range []int{1, 4} {
		reg := telemetry.NewRegistry()
		cfg := ForestConfig{NumTrees: 12, Seed: 5, Workers: workers, Metrics: NewMetrics(reg)}
		if _, err := FitForest(d, cfg); err != nil {
			t.Fatal(err)
		}
		s := reg.Snapshot()
		if got := s.Counter("ml_trees_fitted_total"); got != 12 {
			t.Errorf("workers=%d: trees fitted = %d, want 12", workers, got)
		}
		extract := s.Counter(`ml_split_strategy_total{strategy="extract"}`)
		partition := s.Counter(`ml_split_strategy_total{strategy="partition"}`)
		if extract+partition != 12 {
			t.Errorf("workers=%d: strategy counts %d+%d != 12", workers, extract, partition)
		}
		if h := s.Histograms["ml_fit_seconds"]; h.Count != 1 {
			t.Errorf("workers=%d: fit histogram count = %d, want 1", workers, h.Count)
		}
	}
}

// TestForestMetricsNil pins the disabled path.
func TestForestMetricsNil(t *testing.T) {
	if NewMetrics(telemetry.Nop) != nil {
		t.Fatal("NewMetrics(Nop) must return nil")
	}
	d := gaussDataset(80, 3)
	if _, err := FitForest(d, ForestConfig{NumTrees: 3, Seed: 1, Workers: 2}); err != nil {
		t.Fatal(err)
	}
}
