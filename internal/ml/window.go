package ml

import (
	"context"
	"fmt"
)

// WindowConfig sizes a sliding-window trainer.
type WindowConfig struct {
	// Capacity is the maximum rows retained; older rows fall off as new
	// ones arrive.
	Capacity int
	// NumClasses is the label-space size of every dataset the window
	// materializes.
	NumClasses int
	// Forest is the per-refit training configuration. Forest.Seed is a
	// BASE seed: refit i trains with Seed + i, so consecutive refits
	// draw fresh bootstraps while the whole sequence stays reproducible
	// from the base.
	Forest ForestConfig
}

// WindowTrainer accumulates labelled rows in a fixed-capacity ring and
// refits a forest on the current window on demand — the online
// counterpart of the §6 batch protocol. It is the deterministic half
// of the serving loop: Fit(i-th call) is a pure function of (window
// contents, base seed, i), bit-identical at any worker count, so two
// services fed the same stream publish byte-identical models.
//
// Not safe for concurrent use; the caller (predict.Service) serializes
// Add/Fit behind its own mutex and publishes the result through a
// SwapForest.
type WindowTrainer struct {
	cfg  WindowConfig
	xs   [][]float64 // ring, insertion order
	ys   []int
	head int // next write position once the ring is full
	full bool
	fits int
}

// NewWindowTrainer validates the configuration and returns an empty
// trainer.
func NewWindowTrainer(cfg WindowConfig) (*WindowTrainer, error) {
	if cfg.Capacity <= 1 {
		return nil, fmt.Errorf("ml: window capacity %d, need >= 2", cfg.Capacity)
	}
	if cfg.NumClasses <= 0 {
		return nil, fmt.Errorf("ml: window needs a positive class count, got %d", cfg.NumClasses)
	}
	return &WindowTrainer{
		cfg: cfg,
		xs:  make([][]float64, 0, cfg.Capacity),
		ys:  make([]int, 0, cfg.Capacity),
	}, nil
}

// Add folds one labelled row into the window, evicting the oldest row
// once capacity is reached. The vector is copied: callers reuse their
// scratch freely.
func (w *WindowTrainer) Add(x []float64, y int) {
	if !w.full {
		w.xs = append(w.xs, append([]float64(nil), x...))
		w.ys = append(w.ys, y)
		if len(w.xs) == w.cfg.Capacity {
			w.full = true
		}
		return
	}
	// Reuse the evicted row's backing array when it fits.
	dst := w.xs[w.head][:0]
	w.xs[w.head] = append(dst, x...)
	w.ys[w.head] = y
	w.head = (w.head + 1) % w.cfg.Capacity
}

// Len reports the rows currently in the window.
func (w *WindowTrainer) Len() int { return len(w.xs) }

// Fits reports how many refits have been claimed (Plan calls).
func (w *WindowTrainer) Fits() int { return w.fits }

// WindowFit is one claimed refit: a deep copy of the window at Plan
// time plus the refit's derived seed. The copy is what makes
// no-serving-stall refits safe — training reads the snapshot while the
// trainer's ring keeps absorbing (and overwriting) rows.
type WindowFit struct {
	d     *Dataset
	cfg   ForestConfig
	index int
}

// Index is the refit's sequence number (0 for the first).
func (p *WindowFit) Index() int { return p.index }

// Rows reports the snapshot size.
func (p *WindowFit) Rows() int { return len(p.d.X) }

// Fit trains the claimed refit. workers overrides the configured pool
// size when > 0; the forest is bit-identical at any value.
func (p *WindowFit) Fit(ctx context.Context, workers int) (*Forest, error) {
	cfg := p.cfg
	if workers > 0 {
		cfg.Workers = workers
	}
	f, err := FitForestCtx(ctx, p.d, cfg)
	if err != nil {
		return nil, fmt.Errorf("ml: window refit %d: %w", p.index, err)
	}
	return f, nil
}

// Plan snapshots the window oldest-to-newest and claims the next refit
// index; the rows are deep-copied so the caller may release its lock
// and keep Adding while the fit runs. Refit i is a pure function of
// (window contents at Plan time, base seed, i) — bit-identical at any
// worker count.
func (w *WindowTrainer) Plan() *WindowFit {
	n := len(w.xs)
	d := &Dataset{
		X:          make([][]float64, n),
		Y:          make([]int, n),
		NumClasses: w.cfg.NumClasses,
	}
	var flat []float64
	if n > 0 {
		flat = make([]float64, 0, n*len(w.xs[0]))
	}
	// head is the oldest row once the ring wrapped, 0 before.
	for i := 0; i < n; i++ {
		j := i
		if w.full {
			j = (w.head + i) % n
		}
		flat = append(flat, w.xs[j]...)
		d.X[i] = flat[len(flat)-len(w.xs[j]):]
		d.Y[i] = w.ys[j]
	}
	cfg := w.cfg.Forest
	cfg.Seed = w.cfg.Forest.Seed + int64(w.fits)
	p := &WindowFit{d: d, cfg: cfg, index: w.fits}
	w.fits++
	return p
}

// Fit is Plan().Fit(...) — the synchronous path for callers that hold
// their lock across the refit (deterministic experiments).
func (w *WindowTrainer) Fit(ctx context.Context, workers int) (*Forest, error) {
	return w.Plan().Fit(ctx, workers)
}
