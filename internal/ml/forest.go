package ml

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	NumTrees int // default 100
	Tree     TreeConfig
	// Seed drives bootstrap sampling and feature subsampling.
	Seed int64
	// Workers bounds the training worker pool: 0 means GOMAXPROCS,
	// 1 forces the serial path. The trained forest is bit-identical at
	// any worker count — every random draw happens serially up front.
	Workers int
	// Metrics, when non-nil, receives training counters and timings.
	// Observational only; the fitted forest is unaffected.
	Metrics *Metrics
}

func (c ForestConfig) normalized() ForestConfig {
	if c.NumTrees <= 0 {
		c.NumTrees = 100
	}
	if c.Tree.MaxFeatures == 0 {
		c.Tree.MaxFeatures = -1 // sqrt, the forest default
	}
	return c
}

// resolveWorkers maps a Workers knob to a pool size bounded by the job
// count.
func resolveWorkers(w, jobs int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Forest is a trained random-forest classifier.
type Forest struct {
	trees       []*Tree
	numClasses  int
	numFeatures int
}

// FitForest trains a bagged ensemble of CART trees.
func FitForest(d *Dataset, cfg ForestConfig) (*Forest, error) {
	return FitForestCtx(context.Background(), d, cfg)
}

// FitForestCtx trains a bagged ensemble of CART trees on a bounded
// worker pool (cfg.Workers), honouring ctx cancellation between trees.
//
// Determinism scheme: every tree's bootstrap indices and subsampling
// seed are drawn serially from cfg.Seed — in exactly the order the
// serial loop draws them — before any tree fits. Workers then claim
// tree indices and write each finished tree into its slot, so the
// ensemble (and everything downstream: probabilities, rankings,
// importances, serialized bytes) is bit-identical at any worker count.
func FitForestCtx(ctx context.Context, d *Dataset, cfg ForestConfig) (*Forest, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(d.X)
	boots := make([][]int, cfg.NumTrees)
	seeds := make([]int64, cfg.NumTrees)
	bootFlat := make([]int, cfg.NumTrees*n)
	for i := range boots {
		boot := bootFlat[i*n : (i+1)*n : (i+1)*n]
		for j := range boot {
			boot[j] = rng.Intn(n)
		}
		boots[i] = boot
		seeds[i] = rng.Int63()
	}

	fc := newFitContext(d)
	f := &Forest{
		trees:       make([]*Tree, cfg.NumTrees),
		numClasses:  d.NumClasses,
		numFeatures: len(d.X[0]),
	}

	var fitStart time.Time
	if cfg.Metrics != nil {
		fitStart = time.Now()
	}
	workers := resolveWorkers(cfg.Workers, cfg.NumTrees)
	if workers == 1 {
		b := &treeBuilder{}
		for i := range boots {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			t, err := b.fitTree(fc, cfg.Tree, rand.New(rand.NewSource(seeds[i])), boots[i])
			if err != nil {
				return nil, fmt.Errorf("ml: tree %d: %w", i, err)
			}
			cfg.Metrics.treeFitted(b.extract)
			f.trees[i] = t
		}
		if cfg.Metrics != nil {
			cfg.Metrics.observeFit(time.Since(fitStart))
		}
		return f, nil
	}

	var next atomic.Int64
	errs := make([]error, cfg.NumTrees)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := &treeBuilder{} // scratch reused across this worker's trees
			for {
				i := int(next.Add(1) - 1)
				if i >= cfg.NumTrees || ctx.Err() != nil {
					return
				}
				t, err := b.fitTree(fc, cfg.Tree, rand.New(rand.NewSource(seeds[i])), boots[i])
				if err != nil {
					errs[i] = err
					return
				}
				cfg.Metrics.treeFitted(b.extract)
				f.trees[i] = t
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ml: tree %d: %w", i, err)
		}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.observeFit(time.Since(fitStart))
	}
	return f, nil
}

// NumClasses reports the label-space size the forest was trained on.
func (f *Forest) NumClasses() int { return f.numClasses }

// NumFeatures reports the input width the forest was trained on.
func (f *Forest) NumFeatures() int { return f.numFeatures }

// checkWidth validates an input vector once at the forest level; the
// per-tree descent then runs unchecked (every tree shares numFeatures).
func (f *Forest) checkWidth(x []float64) error {
	if len(x) != f.numFeatures {
		return fmt.Errorf("ml: input has %d features, forest trained on %d", len(x), f.numFeatures)
	}
	return nil
}

// PredictProbaInto averages the trees' leaf distributions into out
// (length NumClasses) without allocating.
func (f *Forest) PredictProbaInto(x []float64, out []float64) error {
	if err := f.checkWidth(x); err != nil {
		return err
	}
	if len(out) != f.numClasses {
		return fmt.Errorf("ml: output has %d slots, forest has %d classes", len(out), f.numClasses)
	}
	for i := range out {
		out[i] = 0
	}
	for _, t := range f.trees {
		for i, v := range t.leaf(x).probs {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(f.trees))
	}
	return nil
}

// PredictProba averages the trees' leaf distributions.
func (f *Forest) PredictProba(x []float64) ([]float64, error) {
	out := make([]float64, f.numClasses)
	if err := f.PredictProbaInto(x, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Predict returns the most probable class.
func (f *Forest) Predict(x []float64) (int, error) {
	p, err := f.PredictProba(x)
	if err != nil {
		return 0, err
	}
	return argmax(p), nil
}

// TopK returns the k most probable classes, descending; ties break by
// lower class index for determinism.
func (f *Forest) TopK(x []float64, k int) ([]int, error) {
	p, err := f.PredictProba(x)
	if err != nil {
		return nil, err
	}
	return TopKOf(p, k), nil
}

// TopKOf ranks a probability/count vector and returns the first k
// indices (all of them when k <= 0 or k > len).
func TopKOf(p []float64, k int) []int {
	idx := make([]int, len(p))
	argsortDesc(p, idx)
	if k <= 0 || k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// argsortDesc fills idx with the indices of p ordered by descending
// value, ties by ascending index — the (value desc, index asc) key is a
// total order, so the result is unique and any correct sort reproduces
// the old stable-sort ranking. The scratch-free quicksort keeps the
// batch evaluation path at zero allocations per row.
func argsortDesc(p []float64, idx []int) {
	for i := range idx {
		idx[i] = i
	}
	argsortRange(p, idx)
}

// argRanks reports whether index a sorts before index b.
func argRanks(p []float64, a, b int) bool {
	if p[a] != p[b] {
		return p[a] > p[b]
	}
	return a < b
}

func argsortRange(p []float64, idx []int) {
	for len(idx) > 12 {
		// Median-of-three pivot, then Hoare-style partition.
		mid := len(idx) / 2
		last := len(idx) - 1
		if argRanks(p, idx[mid], idx[0]) {
			idx[mid], idx[0] = idx[0], idx[mid]
		}
		if argRanks(p, idx[last], idx[0]) {
			idx[last], idx[0] = idx[0], idx[last]
		}
		if argRanks(p, idx[last], idx[mid]) {
			idx[last], idx[mid] = idx[mid], idx[last]
		}
		pivot := idx[mid]
		i, j := 0, last
		for i <= j {
			for argRanks(p, idx[i], pivot) {
				i++
			}
			for argRanks(p, pivot, idx[j]) {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j < len(idx)-i {
			argsortRange(p, idx[:j+1])
			idx = idx[i:]
		} else {
			argsortRange(p, idx[i:])
			idx = idx[:j+1]
		}
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && argRanks(p, idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// NumTrees reports ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Importance averages the trees' normalized gini importances.
func (f *Forest) Importance() []float64 {
	out := make([]float64, f.numFeatures)
	for _, t := range f.trees {
		for i, v := range t.Importance() {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(f.trees))
	}
	return out
}

// ImportanceRanking returns feature indices sorted by descending
// importance.
func (f *Forest) ImportanceRanking() []int {
	return TopKOf(f.Importance(), 0)
}
