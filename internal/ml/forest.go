package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	NumTrees int // default 100
	Tree     TreeConfig
	// Seed drives bootstrap sampling and feature subsampling.
	Seed int64
}

func (c ForestConfig) normalized() ForestConfig {
	if c.NumTrees <= 0 {
		c.NumTrees = 100
	}
	if c.Tree.MaxFeatures == 0 {
		c.Tree.MaxFeatures = -1 // sqrt, the forest default
	}
	return c
}

// Forest is a trained random-forest classifier.
type Forest struct {
	trees       []*Tree
	numClasses  int
	numFeatures int
}

// FitForest trains a bagged ensemble of CART trees.
func FitForest(d *Dataset, cfg ForestConfig) (*Forest, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{numClasses: d.NumClasses, numFeatures: len(d.X[0])}
	n := len(d.X)
	for i := 0; i < cfg.NumTrees; i++ {
		boot := make([]int, n)
		for j := range boot {
			boot[j] = rng.Intn(n)
		}
		treeRng := rand.New(rand.NewSource(rng.Int63()))
		t, err := FitTree(d.Subset(boot), cfg.Tree, treeRng)
		if err != nil {
			return nil, fmt.Errorf("ml: tree %d: %w", i, err)
		}
		f.trees = append(f.trees, t)
	}
	return f, nil
}

// PredictProba averages the trees' leaf distributions.
func (f *Forest) PredictProba(x []float64) ([]float64, error) {
	if len(x) != f.numFeatures {
		return nil, fmt.Errorf("ml: input has %d features, forest trained on %d", len(x), f.numFeatures)
	}
	out := make([]float64, f.numClasses)
	for _, t := range f.trees {
		p, err := t.PredictProba(x)
		if err != nil {
			return nil, err
		}
		for i, v := range p {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(f.trees))
	}
	return out, nil
}

// Predict returns the most probable class.
func (f *Forest) Predict(x []float64) (int, error) {
	p, err := f.PredictProba(x)
	if err != nil {
		return 0, err
	}
	return argmax(p), nil
}

// TopK returns the k most probable classes, descending; ties break by
// lower class index for determinism.
func (f *Forest) TopK(x []float64, k int) ([]int, error) {
	p, err := f.PredictProba(x)
	if err != nil {
		return nil, err
	}
	return TopKOf(p, k), nil
}

// TopKOf ranks a probability/count vector and returns the first k
// indices (all of them when k <= 0 or k > len).
func TopKOf(p []float64, k int) []int {
	idx := make([]int, len(p))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return p[idx[a]] > p[idx[b]] })
	if k <= 0 || k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// NumTrees reports ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Importance averages the trees' normalized gini importances.
func (f *Forest) Importance() []float64 {
	out := make([]float64, f.numFeatures)
	for _, t := range f.trees {
		for i, v := range t.Importance() {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(f.trees))
	}
	return out
}

// ImportanceRanking returns feature indices sorted by descending
// importance.
func (f *Forest) ImportanceRanking() []int {
	return TopKOf(f.Importance(), 0)
}
