package ml

import (
	"math"
	"math/rand"
	"testing"
)

// xorDataset is learnable by a depth-2 tree but not by any single
// split: y = (x0 > 0.5) XOR (x1 > 0.5).
func xorDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{NumClasses: 2}
	for i := 0; i < n; i++ {
		x0 := rng.Float64()
		x1 := rng.Float64()
		y := 0
		if (x0 > 0.5) != (x1 > 0.5) {
			y = 1
		}
		d.X = append(d.X, []float64{x0, x1})
		d.Y = append(d.Y, y)
	}
	return d
}

// gaussDataset: three well-separated Gaussian blobs, 4 features of
// which only the first two are informative.
func gaussDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]float64{{0, 0}, {6, 0}, {0, 6}}
	d := &Dataset{NumClasses: 3}
	for i := 0; i < n; i++ {
		c := i % 3
		d.X = append(d.X, []float64{
			centers[c][0] + rng.NormFloat64(),
			centers[c][1] + rng.NormFloat64(),
			rng.NormFloat64(), // noise
			rng.NormFloat64(), // noise
		})
		d.Y = append(d.Y, c)
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	good := &Dataset{X: [][]float64{{1}, {2}}, Y: []int{0, 1}, NumClasses: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Dataset{
		{},
		{X: [][]float64{{1}}, Y: []int{0, 1}, NumClasses: 2},
		{X: [][]float64{{1}, {2}}, Y: []int{0, 1}, NumClasses: 0},
		{X: [][]float64{{1}, {2, 3}}, Y: []int{0, 1}, NumClasses: 2},
		{X: [][]float64{{1}, {2}}, Y: []int{0, 5}, NumClasses: 2},
	}
	for i, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestTreeLearnsXOR(t *testing.T) {
	d := xorDataset(400, 1)
	tree, err := FitTree(d, TreeConfig{MaxDepth: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	test := xorDataset(200, 2)
	correct := 0
	for i, x := range test.X {
		y, err := tree.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if y == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test.X)); acc < 0.95 {
		t.Errorf("XOR accuracy = %v", acc)
	}
	if tree.NumNodes() < 3 {
		t.Errorf("tree has %d nodes", tree.NumNodes())
	}
}

func TestTreePureLeafShortCircuit(t *testing.T) {
	d := &Dataset{
		X:          [][]float64{{1}, {2}, {3}},
		Y:          []int{1, 1, 1},
		NumClasses: 2,
	}
	tree, err := FitTree(d, TreeConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 1 {
		t.Errorf("pure dataset grew %d nodes", tree.NumNodes())
	}
	p, err := tree.PredictProba([]float64{9})
	if err != nil {
		t.Fatal(err)
	}
	if p[1] != 1 {
		t.Errorf("probs = %v", p)
	}
}

func TestTreeMaxDepth(t *testing.T) {
	d := gaussDataset(300, 3)
	stump, err := FitTree(d, TreeConfig{MaxDepth: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Depth 1 => at most 3 nodes (root + 2 leaves).
	if stump.NumNodes() > 3 {
		t.Errorf("depth-1 tree has %d nodes", stump.NumNodes())
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	d := gaussDataset(60, 4)
	tree, err := FitTree(d, TreeConfig{MinSamplesLeaf: 25}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With 60 rows and min leaf 25, at most one split is possible.
	if tree.NumNodes() > 3 {
		t.Errorf("min-leaf tree has %d nodes", tree.NumNodes())
	}
}

func TestTreeFeatureSubsamplingNeedsRNG(t *testing.T) {
	d := gaussDataset(50, 5)
	if _, err := FitTree(d, TreeConfig{MaxFeatures: 1}, nil); err == nil {
		t.Error("subsampling without rng accepted")
	}
	if _, err := FitTree(d, TreeConfig{MaxFeatures: 1}, rand.New(rand.NewSource(1))); err != nil {
		t.Errorf("subsampling with rng failed: %v", err)
	}
}

func TestTreePredictWrongWidth(t *testing.T) {
	d := gaussDataset(50, 6)
	tree, err := FitTree(d, TreeConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Predict([]float64{1}); err == nil {
		t.Error("wrong-width input accepted")
	}
}

func TestTreeImportanceInformativeFeatures(t *testing.T) {
	d := gaussDataset(600, 7)
	tree, err := FitTree(d, TreeConfig{MaxDepth: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	imp := tree.Importance()
	if len(imp) != 4 {
		t.Fatalf("importance length %d", len(imp))
	}
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance sums to %v", sum)
	}
	// Features 0 and 1 carry all the signal.
	if imp[0]+imp[1] < 0.9 {
		t.Errorf("informative features importance = %v", imp)
	}
}

func TestForestBeatsOrMatchesTreeOnGauss(t *testing.T) {
	train := gaussDataset(500, 8)
	test := gaussDataset(300, 9)
	forest, err := FitForest(train, ForestConfig{NumTrees: 30, Tree: TreeConfig{MaxDepth: 6}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := TopKAccuracy(ForestRanker{forest}, test, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("forest accuracy = %v", acc)
	}
	if forest.NumTrees() != 30 {
		t.Errorf("NumTrees = %d", forest.NumTrees())
	}
}

func TestForestProbaSumsToOne(t *testing.T) {
	d := gaussDataset(200, 10)
	forest, err := FitForest(d, ForestConfig{NumTrees: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p, err := forest.PredictProba(d.X[i])
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				t.Fatalf("negative probability %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	d := gaussDataset(200, 11)
	f1, err := FitForest(d, ForestConfig{NumTrees: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FitForest(d, ForestConfig{NumTrees: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p1, _ := f1.PredictProba(d.X[i])
		p2, _ := f2.PredictProba(d.X[i])
		for j := range p1 {
			if p1[j] != p2[j] {
				t.Fatalf("row %d class %d: %v != %v", i, j, p1[j], p2[j])
			}
		}
	}
}

func TestTopKOf(t *testing.T) {
	p := []float64{0.1, 0.5, 0.2, 0.2}
	top := TopKOf(p, 2)
	if top[0] != 1 {
		t.Errorf("top[0] = %d", top[0])
	}
	// Tie between 2 and 3 breaks to lower index.
	if top[1] != 2 {
		t.Errorf("top[1] = %d", top[1])
	}
	if got := TopKOf(p, 0); len(got) != 4 {
		t.Errorf("k=0 gives %d", len(got))
	}
	if got := TopKOf(p, 99); len(got) != 4 {
		t.Errorf("k=99 gives %d", len(got))
	}
}

func TestTopKAccuracyMonotoneInK(t *testing.T) {
	d := gaussDataset(300, 12)
	forest, err := FitForest(d, ForestConfig{NumTrees: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	curve, err := TopKCurve(ForestRanker{forest}, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Errorf("curve not monotone: %v", curve)
		}
	}
	// k = numClasses must be 100%.
	if curve[2] != 1 {
		t.Errorf("top-3 of 3 classes = %v", curve[2])
	}
	// Consistency with single-k calls.
	acc1, err := TopKAccuracy(ForestRanker{forest}, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc1-curve[0]) > 1e-12 {
		t.Errorf("TopKAccuracy(1) = %v, curve[0] = %v", acc1, curve[0])
	}
}

func TestTopKAccuracyErrors(t *testing.T) {
	d := gaussDataset(50, 13)
	forest, _ := FitForest(d, ForestConfig{NumTrees: 2, Seed: 1})
	if _, err := TopKAccuracy(ForestRanker{forest}, d, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopKCurve(ForestRanker{forest}, d, 0); err == nil {
		t.Error("maxK=0 accepted")
	}
}

func TestTrainTestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train, test, err := TrainTestSplit(100, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(test) != 20 || len(train) != 80 {
		t.Errorf("split sizes %d/%d", len(train), len(test))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatalf("index %d duplicated", i)
		}
		seen[i] = true
	}
	if len(seen) != 100 {
		t.Errorf("covered %d indices", len(seen))
	}
	if _, _, err := TrainTestSplit(1, 0.2, rng); err == nil {
		t.Error("n=1 accepted")
	}
	if _, _, err := TrainTestSplit(10, 0, rng); err == nil {
		t.Error("frac=0 accepted")
	}
}

func TestStratifiedKFold(t *testing.T) {
	d := gaussDataset(90, 14) // 30 per class
	rng := rand.New(rand.NewSource(5))
	folds, err := StratifiedKFold(d, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	total := 0
	for _, f := range folds {
		total += len(f)
		// Each fold should hold ~6 of each class (90/5/3).
		counts := map[int]int{}
		for _, i := range f {
			counts[d.Y[i]]++
		}
		for c, n := range counts {
			if n < 4 || n > 8 {
				t.Errorf("fold has %d of class %d", n, c)
			}
		}
	}
	if total != 90 {
		t.Errorf("folds cover %d rows", total)
	}
	if _, err := StratifiedKFold(d, 1, rng); err == nil {
		t.Error("k=1 accepted")
	}
}

func TestCrossValidateForest(t *testing.T) {
	d := gaussDataset(150, 15)
	rng := rand.New(rand.NewSource(6))
	folds, err := StratifiedKFold(d, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	score, err := CrossValidateForest(d, ForestConfig{NumTrees: 10, Tree: TreeConfig{MaxDepth: 5}, Seed: 7}, folds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.85 {
		t.Errorf("CV score = %v", score)
	}
}

func TestGridSearchPicksReasonableConfig(t *testing.T) {
	d := gaussDataset(200, 16)
	grid := []ForestConfig{
		{NumTrees: 1, Tree: TreeConfig{MaxDepth: 1}, Seed: 1},  // weak
		{NumTrees: 15, Tree: TreeConfig{MaxDepth: 6}, Seed: 1}, // strong
	}
	points, err := GridSearch(d, grid, 3, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d grid points", len(points))
	}
	if points[0].Score < points[1].Score {
		t.Error("grid not sorted by score")
	}
	if points[0].Config.NumTrees != 15 {
		t.Errorf("grid search picked the weak config: %+v", points[0])
	}
	if _, err := GridSearch(d, nil, 3, 1, 0); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestForestImportanceSums(t *testing.T) {
	d := gaussDataset(300, 17)
	forest, err := FitForest(d, ForestConfig{NumTrees: 10, Tree: TreeConfig{MaxDepth: 5}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	imp := forest.Importance()
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("forest importance sums to %v", sum)
	}
	ranking := forest.ImportanceRanking()
	if ranking[0] != 0 && ranking[0] != 1 {
		t.Errorf("most important feature = %d, want 0 or 1", ranking[0])
	}
}

func TestRankerFunc(t *testing.T) {
	r := RankerFunc(func(x []float64) ([]int, error) { return []int{2, 1, 0}, nil })
	d := &Dataset{X: [][]float64{{0}}, Y: []int{2}, NumClasses: 3}
	acc, err := TopKAccuracy(r, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Errorf("acc = %v", acc)
	}
}

func BenchmarkForestFit(b *testing.B) {
	d := gaussDataset(300, 18)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FitForest(d, ForestConfig{NumTrees: 10, Tree: TreeConfig{MaxDepth: 6}, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchForestFitWorkers trains a paper-shaped forest (100 trees) at a
// fixed worker count; compare Serial vs Parallel ns/op for the pool
// speedup (the forests are bit-identical).
func benchForestFitWorkers(b *testing.B, workers int) {
	d := gaussDataset(600, 18)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitForest(d, ForestConfig{NumTrees: 100, Tree: TreeConfig{MaxDepth: 10}, Seed: 7, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestFitSerial(b *testing.B)   { benchForestFitWorkers(b, 1) }
func BenchmarkForestFitParallel(b *testing.B) { benchForestFitWorkers(b, 0) }

func BenchmarkForestPredict(b *testing.B) {
	d := gaussDataset(300, 19)
	forest, err := FitForest(d, ForestConfig{NumTrees: 50, Tree: TreeConfig{MaxDepth: 6}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forest.PredictProba(d.X[i%len(d.X)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestPredictBatch is the zero-allocation batch path
// TopKAccuracy/TopKCurve evaluate through: probabilities and ranking
// land in caller scratch (0 allocs/op).
func BenchmarkForestPredictBatch(b *testing.B) {
	d := gaussDataset(300, 19)
	forest, err := FitForest(d, ForestConfig{NumTrees: 50, Tree: TreeConfig{MaxDepth: 6}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	probs := make([]float64, forest.NumClasses())
	idx := make([]int, forest.NumClasses())
	ranker := ForestRanker{forest}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ranker.RankClassesInto(d.X[i%len(d.X)], probs, idx); err != nil {
			b.Fatal(err)
		}
	}
}
