package ml

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// SwapForest is the serving-side model holder: readers load the
// current forest wait-free while a trainer publishes replacements
// atomically. A Forest is immutable after training, so the swap needs
// no copying and no reader-side locks — a predict call either sees the
// whole old model or the whole new one, never a torn mix, and serving
// never stalls during a refit.
type SwapForest struct {
	p atomic.Pointer[Forest]
	// version counts publications; readers pair it with the pointer to
	// report which model answered (approximately — a swap between the
	// two loads can skew the pairing by one, which is fine for
	// observability).
	version atomic.Int64
}

// Load returns the current forest, nil before the first Store.
func (s *SwapForest) Load() *Forest { return s.p.Load() }

// Store publishes f as the serving model and returns the new version
// number (1 for the first model).
func (s *SwapForest) Store(f *Forest) int64 {
	s.p.Store(f)
	return s.version.Add(1)
}

// Version reports how many models have been published.
func (s *SwapForest) Version() int64 { return s.version.Load() }

// Fingerprint hashes the forest's serialized form: two forests share a
// fingerprint iff every node's feature, threshold, children, leaf
// distribution, and per-tree importance are bit-identical. It is the
// identity the retrain-determinism contract is stated in (same window
// contents => same fingerprint at any worker count).
func Fingerprint(f *Forest) (string, error) {
	h := sha256.New()
	if err := f.Save(h); err != nil {
		return "", fmt.Errorf("ml: fingerprint: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
