package ml

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
)

// windowRows synthesizes a labelled stream with learnable structure.
func windowRows(n, width, classes int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		x := make([]float64, width)
		y := rng.Intn(classes)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		x[y%width] += 3 // signal
		xs[i], ys[i] = x, y
	}
	return xs, ys
}

// TestWindowRetrainDeterministic is the sliding-window half of the
// serving determinism contract: two trainers fed the same stream
// produce bit-identical forest fingerprints at every refit, whether
// each fit runs serial or on four workers.
func TestWindowRetrainDeterministic(t *testing.T) {
	xs, ys := windowRows(300, 12, 5, 11)
	cfg := WindowConfig{
		Capacity:   128,
		NumClasses: 5,
		Forest:     ForestConfig{NumTrees: 15, Tree: TreeConfig{MaxDepth: 6}, Seed: 42},
	}
	fingerprints := func(workers int) []string {
		t.Helper()
		w, err := NewWindowTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for i := range xs {
			w.Add(xs[i], ys[i])
			if w.Len() >= 64 && (i+1)%100 == 0 {
				f, err := w.Fit(context.Background(), workers)
				if err != nil {
					t.Fatal(err)
				}
				fp, err := Fingerprint(f)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, fp)
			}
		}
		return out
	}
	serial := fingerprints(1)
	parallel := fingerprints(4)
	if len(serial) != 3 {
		t.Fatalf("expected 3 refits, got %d", len(serial))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("refit %d: workers=1 fingerprint %s != workers=4 %s", i, serial[i], parallel[i])
		}
	}
	// Consecutive refits must differ (the derived seed advances even
	// when the window barely changes).
	if serial[1] == serial[2] && serial[0] == serial[1] {
		t.Error("every refit produced the same forest; derived seeds look stuck")
	}
}

// TestWindowEviction pins the ring semantics: capacity bounds the
// window and the snapshot is oldest-to-newest.
func TestWindowEviction(t *testing.T) {
	w, err := NewWindowTrainer(WindowConfig{Capacity: 4, NumClasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Add([]float64{float64(i)}, i)
	}
	if w.Len() != 4 {
		t.Fatalf("Len = %d, want 4", w.Len())
	}
	p := w.Plan()
	if p.Rows() != 4 {
		t.Fatalf("snapshot rows = %d, want 4", p.Rows())
	}
	for i, want := range []int{6, 7, 8, 9} {
		if p.d.Y[i] != want || p.d.X[i][0] != float64(want) {
			t.Errorf("row %d = (%v, %d), want (%v, %d)", i, p.d.X[i], p.d.Y[i], float64(want), want)
		}
	}
}

// TestWindowPlanSnapshotIsolated: rows added (and evicted over) after
// Plan must not disturb the claimed snapshot — the guarantee that lets
// refits run outside the service lock.
func TestWindowPlanSnapshotIsolated(t *testing.T) {
	w, err := NewWindowTrainer(WindowConfig{Capacity: 3, NumClasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		w.Add([]float64{float64(i)}, i)
	}
	p := w.Plan()
	for i := 5; i < 20; i++ {
		w.Add([]float64{float64(i)}, i) // overwrites every ring slot
	}
	for i, want := range []int{2, 3, 4} {
		if p.d.X[i][0] != float64(want) {
			t.Errorf("snapshot row %d mutated: %v, want %v", i, p.d.X[i][0], float64(want))
		}
	}
}

// TestWindowTrainerValidation covers the config gates.
func TestWindowTrainerValidation(t *testing.T) {
	if _, err := NewWindowTrainer(WindowConfig{Capacity: 1, NumClasses: 2}); err == nil {
		t.Error("capacity 1 accepted")
	}
	if _, err := NewWindowTrainer(WindowConfig{Capacity: 8}); err == nil {
		t.Error("zero classes accepted")
	}
}

// TestSwapForestVersioning pins the publish counter.
func TestSwapForestVersioning(t *testing.T) {
	var s SwapForest
	if s.Load() != nil || s.Version() != 0 {
		t.Fatal("fresh SwapForest not empty")
	}
	f := &Forest{numClasses: 2, numFeatures: 1}
	if v := s.Store(f); v != 1 {
		t.Errorf("first Store version = %d, want 1", v)
	}
	if s.Load() != f {
		t.Error("Load returned a different forest")
	}
	if v := s.Store(f); v != 2 || s.Version() != 2 {
		t.Errorf("second Store version = %d (Version %d), want 2", v, s.Version())
	}
}

// TestLoadForestForShapeGate: a serialized forest whose feature width
// or class count disagrees with the serving schema must be rejected at
// load time with ErrModelShape, not at predict time.
func TestLoadForestForShapeGate(t *testing.T) {
	xs, ys := windowRows(60, 7, 3, 5)
	d := &Dataset{X: xs, Y: ys, NumClasses: 3}
	f, err := FitForest(d, ForestConfig{NumTrees: 3, Tree: TreeConfig{MaxDepth: 3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := LoadForestFor(bytes.NewReader(raw), 7, 3); err != nil {
		t.Fatalf("matching shape rejected: %v", err)
	}
	if _, err := LoadForestFor(bytes.NewReader(raw), 0, 0); err != nil {
		t.Fatalf("unchecked load rejected: %v", err)
	}
	_, err = LoadForestFor(bytes.NewReader(raw), 251, 3)
	if !errors.Is(err, ErrModelShape) {
		t.Errorf("feature mismatch = %v, want ErrModelShape", err)
	}
	_, err = LoadForestFor(bytes.NewReader(raw), 7, 250)
	if !errors.Is(err, ErrModelShape) {
		t.Errorf("class mismatch = %v, want ErrModelShape", err)
	}
}
