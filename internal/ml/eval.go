package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// Ranker is anything that can rank classes for an input — the trained
// forest and the availability baseline both satisfy it, which is what
// lets the Figure 8 comparison treat them symmetrically.
type Ranker interface {
	// RankClasses returns class indices in descending preference.
	RankClasses(x []float64) ([]int, error)
}

// ForestRanker adapts a Forest to the Ranker interface.
type ForestRanker struct{ *Forest }

// RankClasses ranks by predicted probability.
func (f ForestRanker) RankClasses(x []float64) ([]int, error) {
	p, err := f.PredictProba(x)
	if err != nil {
		return nil, err
	}
	return TopKOf(p, 0), nil
}

// RankerFunc adapts a function to Ranker.
type RankerFunc func(x []float64) ([]int, error)

// RankClasses calls the function.
func (fn RankerFunc) RankClasses(x []float64) ([]int, error) { return fn(x) }

// TopKAccuracy returns the fraction of test rows whose true label
// appears in the ranker's first k classes.
func TopKAccuracy(r Ranker, d *Dataset, k int) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if k <= 0 {
		return 0, fmt.Errorf("ml: top-k needs k >= 1, got %d", k)
	}
	hit := 0
	for i, x := range d.X {
		ranked, err := r.RankClasses(x)
		if err != nil {
			return 0, fmt.Errorf("ml: ranking row %d: %w", i, err)
		}
		top := ranked
		if k < len(top) {
			top = top[:k]
		}
		for _, c := range top {
			if c == d.Y[i] {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(d.X)), nil
}

// TopKCurve evaluates TopKAccuracy for k = 1..maxK in one pass per row.
func TopKCurve(r Ranker, d *Dataset, maxK int) ([]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if maxK <= 0 {
		return nil, fmt.Errorf("ml: maxK = %d", maxK)
	}
	hits := make([]int, maxK)
	for i, x := range d.X {
		ranked, err := r.RankClasses(x)
		if err != nil {
			return nil, fmt.Errorf("ml: ranking row %d: %w", i, err)
		}
		for pos, c := range ranked {
			if pos >= maxK {
				break
			}
			if c == d.Y[i] {
				for k := pos; k < maxK; k++ {
					hits[k]++
				}
				break
			}
		}
	}
	out := make([]float64, maxK)
	for k := range out {
		out[k] = float64(hits[k]) / float64(len(d.X))
	}
	return out, nil
}

// TrainTestSplit shuffles row indices and splits them with the given
// holdout fraction (e.g. 0.2 for the paper's 80/20 protocol).
func TrainTestSplit(n int, holdoutFrac float64, rng *rand.Rand) (train, test []int, err error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("ml: cannot split %d rows", n)
	}
	if holdoutFrac <= 0 || holdoutFrac >= 1 {
		return nil, nil, fmt.Errorf("ml: holdout fraction %v out of (0,1)", holdoutFrac)
	}
	perm := rng.Perm(n)
	nTest := int(float64(n) * holdoutFrac)
	if nTest < 1 {
		nTest = 1
	}
	return perm[nTest:], perm[:nTest], nil
}

// StratifiedKFold partitions row indices into k folds with per-class
// round-robin assignment, so each fold sees every class in proportion.
func StratifiedKFold(d *Dataset, k int, rng *rand.Rand) ([][]int, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if k < 2 || k > len(d.Y) {
		return nil, fmt.Errorf("ml: k = %d folds for %d rows", k, len(d.Y))
	}
	byClass := map[int][]int{}
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	folds := make([][]int, k)
	next := 0
	for _, c := range classes {
		rows := byClass[c]
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		for _, r := range rows {
			folds[next%k] = append(folds[next%k], r)
			next++
		}
	}
	return folds, nil
}

// CrossValidateForest trains on k-1 folds and evaluates top-k accuracy
// on the held-out fold, returning the mean across folds.
func CrossValidateForest(d *Dataset, cfg ForestConfig, folds [][]int, topK int) (float64, error) {
	if len(folds) < 2 {
		return 0, fmt.Errorf("ml: need >= 2 folds, got %d", len(folds))
	}
	total := 0.0
	for i := range folds {
		var trainIdx []int
		for j, f := range folds {
			if j != i {
				trainIdx = append(trainIdx, f...)
			}
		}
		if len(trainIdx) == 0 || len(folds[i]) == 0 {
			return 0, fmt.Errorf("ml: fold %d is degenerate", i)
		}
		forest, err := FitForest(d.Subset(trainIdx), cfg)
		if err != nil {
			return 0, err
		}
		acc, err := TopKAccuracy(ForestRanker{forest}, d.Subset(folds[i]), topK)
		if err != nil {
			return 0, err
		}
		total += acc
	}
	return total / float64(len(folds)), nil
}

// GridPoint is one hyperparameter combination with its CV score.
type GridPoint struct {
	Config ForestConfig
	Score  float64
}

// GridSearch cross-validates every config and returns them sorted by
// descending score (best first). Ties keep input order.
func GridSearch(d *Dataset, configs []ForestConfig, numFolds, topK int, seed int64) ([]GridPoint, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("ml: empty grid")
	}
	rng := rand.New(rand.NewSource(seed))
	folds, err := StratifiedKFold(d, numFolds, rng)
	if err != nil {
		return nil, err
	}
	out := make([]GridPoint, 0, len(configs))
	for _, cfg := range configs {
		score, err := CrossValidateForest(d, cfg, folds, topK)
		if err != nil {
			return nil, err
		}
		out = append(out, GridPoint{Config: cfg, Score: score})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}
