package ml

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Ranker is anything that can rank classes for an input — the trained
// forest and the availability baseline both satisfy it, which is what
// lets the Figure 8 comparison treat them symmetrically.
type Ranker interface {
	// RankClasses returns class indices in descending preference.
	RankClasses(x []float64) ([]int, error)
}

// ForestRanker adapts a Forest to the Ranker interface.
type ForestRanker struct{ *Forest }

// RankClasses ranks by predicted probability.
func (f ForestRanker) RankClasses(x []float64) ([]int, error) {
	p, err := f.PredictProba(x)
	if err != nil {
		return nil, err
	}
	return TopKOf(p, 0), nil
}

// RankClassesInto computes the same ranking as RankClasses without
// allocating: probs and idx are caller scratch of length NumClasses().
func (f ForestRanker) RankClassesInto(x []float64, probs []float64, idx []int) error {
	if err := f.PredictProbaInto(x, probs); err != nil {
		return err
	}
	if len(idx) != len(probs) {
		return fmt.Errorf("ml: rank scratch has %d slots, forest has %d classes", len(idx), len(probs))
	}
	argsortDesc(probs, idx)
	return nil
}

// rankerInto is the optional fast path TopKAccuracy/TopKCurve use when
// the ranker can fill caller-owned scratch instead of allocating a
// fresh ranking per row.
type rankerInto interface {
	NumClasses() int
	RankClassesInto(x []float64, probs []float64, idx []int) error
}

// RankerFunc adapts a function to Ranker.
type RankerFunc func(x []float64) ([]int, error)

// RankClasses calls the function.
func (fn RankerFunc) RankClasses(x []float64) ([]int, error) { return fn(x) }

// topKHit reports whether label y appears in the first k entries of
// ranked.
func topKHit(ranked []int, y, k int) bool {
	if k < len(ranked) {
		ranked = ranked[:k]
	}
	for _, c := range ranked {
		if c == y {
			return true
		}
	}
	return false
}

// TopKAccuracy returns the fraction of test rows whose true label
// appears in the ranker's first k classes. Rankers that implement the
// scratch-filling fast path (the forest does) are evaluated with zero
// allocations per row.
func TopKAccuracy(r Ranker, d *Dataset, k int) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if k <= 0 {
		return 0, fmt.Errorf("ml: top-k needs k >= 1, got %d", k)
	}
	hit := 0
	if ri, ok := r.(rankerInto); ok {
		probs := make([]float64, ri.NumClasses())
		idx := make([]int, ri.NumClasses())
		for i, x := range d.X {
			if err := ri.RankClassesInto(x, probs, idx); err != nil {
				return 0, fmt.Errorf("ml: ranking row %d: %w", i, err)
			}
			if topKHit(idx, d.Y[i], k) {
				hit++
			}
		}
		return float64(hit) / float64(len(d.X)), nil
	}
	for i, x := range d.X {
		ranked, err := r.RankClasses(x)
		if err != nil {
			return 0, fmt.Errorf("ml: ranking row %d: %w", i, err)
		}
		if topKHit(ranked, d.Y[i], k) {
			hit++
		}
	}
	return float64(hit) / float64(len(d.X)), nil
}

// TopKCurve evaluates TopKAccuracy for k = 1..maxK in one pass per row.
func TopKCurve(r Ranker, d *Dataset, maxK int) ([]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if maxK <= 0 {
		return nil, fmt.Errorf("ml: maxK = %d", maxK)
	}
	hits := make([]int, maxK)
	tally := func(ranked []int, y int) {
		for pos, c := range ranked {
			if pos >= maxK {
				return
			}
			if c == y {
				for k := pos; k < maxK; k++ {
					hits[k]++
				}
				return
			}
		}
	}
	if ri, ok := r.(rankerInto); ok {
		probs := make([]float64, ri.NumClasses())
		idx := make([]int, ri.NumClasses())
		for i, x := range d.X {
			if err := ri.RankClassesInto(x, probs, idx); err != nil {
				return nil, fmt.Errorf("ml: ranking row %d: %w", i, err)
			}
			tally(idx, d.Y[i])
		}
	} else {
		for i, x := range d.X {
			ranked, err := r.RankClasses(x)
			if err != nil {
				return nil, fmt.Errorf("ml: ranking row %d: %w", i, err)
			}
			tally(ranked, d.Y[i])
		}
	}
	out := make([]float64, maxK)
	for k := range out {
		out[k] = float64(hits[k]) / float64(len(d.X))
	}
	return out, nil
}

// TrainTestSplit shuffles row indices and splits them with the given
// holdout fraction (e.g. 0.2 for the paper's 80/20 protocol).
func TrainTestSplit(n int, holdoutFrac float64, rng *rand.Rand) (train, test []int, err error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("ml: cannot split %d rows", n)
	}
	if holdoutFrac <= 0 || holdoutFrac >= 1 {
		return nil, nil, fmt.Errorf("ml: holdout fraction %v out of (0,1)", holdoutFrac)
	}
	perm := rng.Perm(n)
	nTest := int(float64(n) * holdoutFrac)
	if nTest < 1 {
		nTest = 1
	}
	return perm[nTest:], perm[:nTest], nil
}

// StratifiedKFold partitions row indices into k folds with per-class
// round-robin assignment, so each fold sees every class in proportion.
func StratifiedKFold(d *Dataset, k int, rng *rand.Rand) ([][]int, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if k < 2 || k > len(d.Y) {
		return nil, fmt.Errorf("ml: k = %d folds for %d rows", k, len(d.Y))
	}
	byClass := map[int][]int{}
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	folds := make([][]int, k)
	next := 0
	for _, c := range classes {
		rows := byClass[c]
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		for _, r := range rows {
			folds[next%k] = append(folds[next%k], r)
			next++
		}
	}
	return folds, nil
}

// foldSplit is one fold's precomputed train/test subsets, shared
// read-only by every config that cross-validates over it.
type foldSplit struct {
	train *Dataset
	test  *Dataset
	size  int // held-out rows, the fold's weight in the CV mean
}

// splitFolds materializes each fold's train/test subsets.
func splitFolds(d *Dataset, folds [][]int) ([]foldSplit, error) {
	if len(folds) < 2 {
		return nil, fmt.Errorf("ml: need >= 2 folds, got %d", len(folds))
	}
	out := make([]foldSplit, len(folds))
	for i := range folds {
		var trainIdx []int
		for j, f := range folds {
			if j != i {
				trainIdx = append(trainIdx, f...)
			}
		}
		if len(trainIdx) == 0 || len(folds[i]) == 0 {
			return nil, fmt.Errorf("ml: fold %d is degenerate", i)
		}
		out[i] = foldSplit{train: d.Subset(trainIdx), test: d.Subset(folds[i]), size: len(folds[i])}
	}
	return out, nil
}

// runPool runs jobs 0..n-1 on `workers` goroutines and returns the
// first error in job order (or ctx's error on cancellation). Jobs are
// claimed by atomic counter, so completion order is nondeterministic
// but every result lands in a caller-owned slot.
func runPool(ctx context.Context, n, workers int, job func(i int) error) error {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || ctx.Err() != nil {
					return
				}
				if errs[i] = job(i); errs[i] != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// splitWorkers divides a total worker budget between a job-level pool
// and the forest training inside each job: outer pool first, leftover
// parallelism nested into each fit.
func splitWorkers(total, jobs int) (outer, inner int) {
	outer = resolveWorkers(total, jobs)
	if total <= 0 {
		total = resolveWorkers(0, 1<<30)
	}
	inner = total / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// CrossValidateForest trains on k-1 folds and evaluates top-k accuracy
// on the held-out fold, returning the mean across folds weighted by
// held-out fold size (folds are unequal when n % k != 0; an unweighted
// mean would over-count the small folds).
func CrossValidateForest(d *Dataset, cfg ForestConfig, folds [][]int, topK int) (float64, error) {
	return CrossValidateForestCtx(context.Background(), d, cfg, folds, topK)
}

// CrossValidateForestCtx is CrossValidateForest on a bounded worker
// pool: folds evaluate concurrently (cfg.Workers total parallelism,
// shared between the fold pool and each fold's forest fit) with the
// score identical at any worker count.
func CrossValidateForestCtx(ctx context.Context, d *Dataset, cfg ForestConfig, folds [][]int, topK int) (float64, error) {
	splits, err := splitFolds(d, folds)
	if err != nil {
		return 0, err
	}
	outer, inner := splitWorkers(cfg.Workers, len(splits))
	fitCfg := cfg
	fitCfg.Workers = inner
	scores := make([]float64, len(splits))
	err = runPool(ctx, len(splits), outer, func(i int) error {
		forest, err := FitForestCtx(ctx, splits[i].train, fitCfg)
		if err != nil {
			return err
		}
		acc, err := TopKAccuracy(ForestRanker{forest}, splits[i].test, topK)
		if err != nil {
			return err
		}
		scores[i] = acc
		return nil
	})
	if err != nil {
		return 0, err
	}
	return weightedFoldMean(scores, splits), nil
}

// weightedFoldMean averages fold scores weighted by held-out size.
func weightedFoldMean(scores []float64, splits []foldSplit) float64 {
	num, den := 0.0, 0.0
	for i, s := range scores {
		w := float64(splits[i].size)
		num += s * w
		den += w
	}
	return num / den
}

// GridPoint is one hyperparameter combination with its CV score.
type GridPoint struct {
	Config ForestConfig
	Score  float64
}

// GridSearch cross-validates every config and returns them sorted by
// descending score (best first). Ties keep input order.
func GridSearch(d *Dataset, configs []ForestConfig, numFolds, topK int, seed int64) ([]GridPoint, error) {
	return GridSearchCtx(context.Background(), d, configs, numFolds, topK, seed, 0)
}

// GridSearchCtx is GridSearch fanned out over every (config, fold)
// pair on a bounded worker pool of `workers` total parallelism (0 =
// GOMAXPROCS, shared between the pair pool and each pair's forest
// fit). Scores and ordering are identical at any worker count: every
// pair's forest is deterministic in (config, fold), results land in
// indexed slots, and the final sort is stable over input order.
func GridSearchCtx(ctx context.Context, d *Dataset, configs []ForestConfig, numFolds, topK int, seed int64, workers int) ([]GridPoint, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("ml: empty grid")
	}
	rng := rand.New(rand.NewSource(seed))
	folds, err := StratifiedKFold(d, numFolds, rng)
	if err != nil {
		return nil, err
	}
	splits, err := splitFolds(d, folds)
	if err != nil {
		return nil, err
	}
	jobs := len(configs) * len(splits)
	outer, inner := splitWorkers(workers, jobs)
	scores := make([]float64, jobs)
	err = runPool(ctx, jobs, outer, func(i int) error {
		ci, fi := i/len(splits), i%len(splits)
		fitCfg := configs[ci]
		fitCfg.Workers = inner
		forest, err := FitForestCtx(ctx, splits[fi].train, fitCfg)
		if err != nil {
			return err
		}
		acc, err := TopKAccuracy(ForestRanker{forest}, splits[fi].test, topK)
		if err != nil {
			return err
		}
		scores[i] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]GridPoint, 0, len(configs))
	for ci, cfg := range configs {
		out = append(out, GridPoint{
			Config: cfg,
			Score:  weightedFoldMean(scores[ci*len(splits):(ci+1)*len(splits)], splits),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}
