package ml

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// forestFingerprint hashes the serialized forest: every node's feature,
// threshold, children, leaf distribution, and per-tree importance go
// through the JSON encoder, so two forests share a fingerprint iff they
// are structurally bit-identical.
func forestFingerprint(t *testing.T, f *Forest) string {
	t.Helper()
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestForestGoldenFingerprint pins the exact forests the seed's serial
// trainer produced. The parallel/presorted engine must keep every one
// of these hashes: they cover feature subsampling (sqrt default), full
// features, depth limits, leaf-size limits, and multiclass leaves.
func TestForestGoldenFingerprint(t *testing.T) {
	cases := []struct {
		name string
		d    *Dataset
		cfg  ForestConfig
		want string
	}{
		{
			name: "gauss-default-subsample",
			d:    gaussDataset(200, 42),
			cfg:  ForestConfig{NumTrees: 20, Tree: TreeConfig{MaxDepth: 8}, Seed: 99},
			want: "8246e3f2a34e70b16af26f6a579cebd21763ad17a5cb42bba320be0082c71fcc",
		},
		{
			name: "gauss-all-features-minleaf",
			d:    gaussDataset(150, 43),
			cfg:  ForestConfig{NumTrees: 10, Tree: TreeConfig{MaxDepth: 12, MinSamplesLeaf: 3, MaxFeatures: 4}, Seed: 7},
			want: "024974203ccbfb5242cd69fa3bdf19b1e8b306ba95095e3e2a1c94d732949245",
		},
		{
			name: "xor-deep",
			d:    xorDataset(300, 44),
			cfg:  ForestConfig{NumTrees: 15, Tree: TreeConfig{MaxDepth: 10, MinSamplesSplit: 4}, Seed: 1234},
			want: "4f6c9d17b6a1e78a9badeac2916d29100de6458911dee4b99d36a773374f5f67",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := FitForest(tc.d, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := forestFingerprint(t, f); got != tc.want {
				t.Errorf("fingerprint = %s, want %s", got, tc.want)
			}
		})
	}
}
