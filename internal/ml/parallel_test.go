package ml

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// ---------------------------------------------------------------------
// Reference engine: the seed's sort-per-node CART builder, transcribed
// verbatim. The presorted production engine must reproduce its trees
// bit for bit; these tests hold the two together on randomized inputs.
// ---------------------------------------------------------------------

type refBuilder struct {
	d     *Dataset
	cfg   TreeConfig
	rng   *rand.Rand
	t     *Tree
	total float64
}

func refFitTree(d *Dataset, cfg TreeConfig, rng *rand.Rand) (*Tree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	numFeatures := len(d.X[0])
	cfg = cfg.normalized(numFeatures)
	if cfg.MaxFeatures < numFeatures && rng == nil {
		return nil, nil
	}
	t := &Tree{
		numClasses:  d.NumClasses,
		numFeatures: numFeatures,
		importance:  make([]float64, numFeatures),
	}
	idx := make([]int, len(d.X))
	for i := range idx {
		idx[i] = i
	}
	b := &refBuilder{d: d, cfg: cfg, rng: rng, t: t, total: float64(len(idx))}
	b.grow(idx, 0)
	return t, nil
}

func (b *refBuilder) classCounts(idx []int) []float64 {
	counts := make([]float64, b.d.NumClasses)
	for _, i := range idx {
		counts[b.d.Y[i]]++
	}
	return counts
}

func (b *refBuilder) grow(idx []int, depth int) int32 {
	counts := b.classCounts(idx)
	n := float64(len(idx))

	makeLeaf := func() int32 {
		probs := make([]float64, len(counts))
		for i, c := range counts {
			probs[i] = c / n
		}
		b.t.nodes = append(b.t.nodes, node{feature: -1, probs: probs})
		return int32(len(b.t.nodes) - 1)
	}

	if len(idx) < b.cfg.MinSamplesSplit ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) ||
		pure(counts) {
		return makeLeaf()
	}

	feature, threshold, gain := b.bestSplit(idx, counts, n)
	if feature < 0 {
		return makeLeaf()
	}

	var left, right []int
	for _, i := range idx {
		if b.d.X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinSamplesLeaf || len(right) < b.cfg.MinSamplesLeaf {
		return makeLeaf()
	}

	b.t.importance[feature] += n / b.total * gain

	me := int32(len(b.t.nodes))
	b.t.nodes = append(b.t.nodes, node{feature: feature, threshold: threshold})
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.t.nodes[me].left = l
	b.t.nodes[me].right = r
	return me
}

func (b *refBuilder) bestSplit(idx []int, parentCounts []float64, n float64) (int, float64, float64) {
	parentGini := gini(parentCounts, n)
	bestFeature := -1
	bestThreshold := 0.0
	bestGain := 1e-12

	features := b.sampleFeatures()
	type pair struct {
		v float64
		y int
	}
	pairs := make([]pair, len(idx))
	leftCounts := make([]float64, b.d.NumClasses)

	for _, f := range features {
		for i, r := range idx {
			pairs[i] = pair{v: b.d.X[r][f], y: b.d.Y[r]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue
		}
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		rightCounts := append([]float64(nil), parentCounts...)
		for i := 0; i < len(pairs)-1; i++ {
			leftCounts[pairs[i].y]++
			rightCounts[pairs[i].y]--
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			nl := float64(i + 1)
			nr := n - nl
			if int(nl) < b.cfg.MinSamplesLeaf || int(nr) < b.cfg.MinSamplesLeaf {
				continue
			}
			g := parentGini - (nl/n)*gini(leftCounts, nl) - (nr/n)*gini(rightCounts, nr)
			if g > bestGain {
				bestGain = g
				bestFeature = f
				bestThreshold = (pairs[i].v + pairs[i+1].v) / 2
			}
		}
	}
	return bestFeature, bestThreshold, bestGain
}

func (b *refBuilder) sampleFeatures() []int {
	nf := b.t.numFeatures
	if b.cfg.MaxFeatures >= nf {
		out := make([]int, nf)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return b.rng.Perm(nf)[:b.cfg.MaxFeatures]
}

// randomDataset draws a tie-heavy random dataset: values rounded to one
// decimal so equal feature values (the delicate case for the presorted
// scan) occur constantly.
func randomDataset(rng *rand.Rand, n, nf, nc int) *Dataset {
	d := &Dataset{NumClasses: nc}
	for i := 0; i < n; i++ {
		row := make([]float64, nf)
		for f := range row {
			row[f] = math.Round(rng.Float64()*40) / 10
		}
		d.X = append(d.X, row)
		d.Y = append(d.Y, rng.Intn(nc))
	}
	return d
}

func treesEqual(t *testing.T, got, want *Tree) {
	t.Helper()
	if len(got.nodes) != len(want.nodes) {
		t.Fatalf("node count %d, want %d", len(got.nodes), len(want.nodes))
	}
	for i := range got.nodes {
		g, w := &got.nodes[i], &want.nodes[i]
		if g.feature != w.feature || g.threshold != w.threshold || g.left != w.left || g.right != w.right {
			t.Fatalf("node %d: {f:%d t:%v l:%d r:%d}, want {f:%d t:%v l:%d r:%d}",
				i, g.feature, g.threshold, g.left, g.right, w.feature, w.threshold, w.left, w.right)
		}
		if g.feature < 0 && !reflect.DeepEqual(g.probs, w.probs) {
			t.Fatalf("leaf %d probs %v, want %v", i, g.probs, w.probs)
		}
	}
	if !reflect.DeepEqual(got.importance, want.importance) {
		t.Fatalf("importance %v, want %v", got.importance, want.importance)
	}
}

// TestBestSplitPresortIdentical holds the presorted split finder to the
// sort-per-node reference at the root of randomized, tie-heavy
// datasets: same (feature, threshold, gain) bit for bit.
func TestBestSplitPresortIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(120)
		nf := 1 + rng.Intn(6)
		nc := 2 + rng.Intn(4)
		d := randomDataset(rng, n, nf, nc)
		cfg := TreeConfig{MinSamplesLeaf: 1 + rng.Intn(3)}.normalized(nf)

		ref := &refBuilder{d: d, cfg: cfg, t: &Tree{numFeatures: nf}, total: float64(n)}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		counts := ref.classCounts(idx)
		wf, wt, wg := ref.bestSplit(idx, counts, float64(n))

		b := &treeBuilder{}
		b.fc, b.cfg, b.t = newFitContext(d), cfg, &Tree{numFeatures: nf}
		b.n, b.total = n, float64(n)
		b.reset(nil)
		gf, gt, gg := b.bestSplit(0, int32(n), counts, float64(n))

		if gf != wf || gt != wt || gg != wg {
			t.Fatalf("trial %d (n=%d nf=%d nc=%d): presort (%d, %v, %v), reference (%d, %v, %v)",
				trial, n, nf, nc, gf, gt, gg, wf, wt, wg)
		}
	}
}

// TestFitTreePresortIdentical grows whole trees both ways — including
// feature subsampling fed by identical rng streams — and requires
// node-for-node equality.
func TestFitTreePresortIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		n := 10 + rng.Intn(150)
		nf := 2 + rng.Intn(6)
		nc := 2 + rng.Intn(4)
		d := randomDataset(rng, n, nf, nc)
		cfg := TreeConfig{
			MaxDepth:        rng.Intn(10),
			MinSamplesLeaf:  1 + rng.Intn(3),
			MinSamplesSplit: rng.Intn(6),
			MaxFeatures:     []int{0, -1, 1 + rng.Intn(nf)}[rng.Intn(3)],
		}
		seed := rng.Int63()
		want, err := refFitTree(d, cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := FitTree(d, cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		treesEqual(t, got, want)
	}
}

// TestForestFitParallelIdentical trains the same forest at Workers 1,
// 2, 4, and GOMAXPROCS and requires bit-identical trees,
// probabilities, and importances — the determinism contract the
// campaign engine set and FitForestCtx inherits.
func TestForestFitParallelIdentical(t *testing.T) {
	d := gaussDataset(240, 21)
	base := ForestConfig{NumTrees: 24, Tree: TreeConfig{MaxDepth: 9}, Seed: 5, Workers: 1}
	want, err := FitForest(d, base)
	if err != nil {
		t.Fatal(err)
	}
	wantFP := forestFingerprint(t, want)
	wantImp := want.Importance()
	for _, workers := range []int{2, 4, 0} {
		cfg := base
		cfg.Workers = workers
		got, err := FitForest(d, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if fp := forestFingerprint(t, got); fp != wantFP {
			t.Errorf("workers=%d: fingerprint %s, want %s", workers, fp, wantFP)
		}
		if imp := got.Importance(); !reflect.DeepEqual(imp, wantImp) {
			t.Errorf("workers=%d: importance diverged", workers)
		}
		for i := 0; i < 40; i++ {
			p1, err1 := want.PredictProba(d.X[i])
			p2, err2 := got.PredictProba(d.X[i])
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !reflect.DeepEqual(p1, p2) {
				t.Fatalf("workers=%d row %d: %v != %v", workers, i, p1, p2)
			}
		}
	}
}

// TestFitForestCtxCancel: a canceled context aborts training.
func TestFitForestCtxCancel(t *testing.T) {
	d := gaussDataset(100, 22)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := FitForestCtx(ctx, d, ForestConfig{NumTrees: 8, Seed: 1, Workers: workers}); err == nil {
			t.Errorf("workers=%d: canceled fit succeeded", workers)
		}
	}
}

// TestCrossValidateForestWeightedMean pins the fold-size weighting: 13
// rows over 3 stratified folds gives 5/4/4 held-out rows, so the CV
// score must be sum(acc_i * size_i) / 13 — not the unweighted mean
// that over-counted the 4-row folds.
func TestCrossValidateForestWeightedMean(t *testing.T) {
	d := gaussDataset(13, 23) // 13 % 3 != 0 forces unequal folds
	rng := rand.New(rand.NewSource(9))
	folds, err := StratifiedKFold(d, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{len(folds[0]), len(folds[1]), len(folds[2])}
	if sizes[0] == sizes[1] && sizes[1] == sizes[2] {
		t.Fatalf("folds are equal-sized (%v); the regression needs n %% k != 0", sizes)
	}
	cfg := ForestConfig{NumTrees: 5, Tree: TreeConfig{MaxDepth: 4}, Seed: 3, Workers: 1}

	// Expected: per-fold holdout accuracy weighted by held-out size.
	num, den := 0.0, 0.0
	for i := range folds {
		var trainIdx []int
		for j, f := range folds {
			if j != i {
				trainIdx = append(trainIdx, f...)
			}
		}
		forest, err := FitForest(d.Subset(trainIdx), cfg)
		if err != nil {
			t.Fatal(err)
		}
		acc, err := TopKAccuracy(ForestRanker{forest}, d.Subset(folds[i]), 1)
		if err != nil {
			t.Fatal(err)
		}
		num += acc * float64(len(folds[i]))
		den += float64(len(folds[i]))
	}
	want := num / den

	got, err := CrossValidateForest(d, cfg, folds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("CV score = %v, want fold-size-weighted %v", got, want)
	}
}

// TestCrossValidateForestParallelIdentical: the fold pool must not
// change the score.
func TestCrossValidateForestParallelIdentical(t *testing.T) {
	d := gaussDataset(100, 24)
	rng := rand.New(rand.NewSource(10))
	folds, err := StratifiedKFold(d, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i, workers := range []int{1, 2, 4, 0} {
		cfg := ForestConfig{NumTrees: 8, Tree: TreeConfig{MaxDepth: 5}, Seed: 11, Workers: workers}
		got, err := CrossValidateForest(d, cfg, folds, 1)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got
		} else if got != want {
			t.Errorf("workers=%d: score %v, want %v", workers, got, want)
		}
	}
}

// TestGridSearchParallelIdentical: fanning (config, fold) pairs over
// the pool keeps every score and the ranking bitwise stable.
func TestGridSearchParallelIdentical(t *testing.T) {
	d := gaussDataset(120, 25)
	grid := []ForestConfig{
		{NumTrees: 4, Tree: TreeConfig{MaxDepth: 2}, Seed: 1},
		{NumTrees: 10, Tree: TreeConfig{MaxDepth: 6}, Seed: 2},
		{NumTrees: 6, Tree: TreeConfig{MaxDepth: 4}, Seed: 3},
	}
	want, err := GridSearchCtx(context.Background(), d, grid, 3, 1, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := GridSearchCtx(context.Background(), d, grid, 3, 1, 42, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(stripWorkers(got), stripWorkers(want)) {
			t.Errorf("workers=%d: grid points diverged:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// stripWorkers zeroes the Workers knob grid points echo back, so
// comparisons see only scores and model hyperparameters.
func stripWorkers(points []GridPoint) []GridPoint {
	out := append([]GridPoint(nil), points...)
	for i := range out {
		out[i].Config.Workers = 0
	}
	return out
}

// TestForestPredictProbaInto: the batch path matches PredictProba
// exactly, rejects bad widths at the forest level, and allocates
// nothing per row.
func TestForestPredictProbaInto(t *testing.T) {
	d := gaussDataset(150, 26)
	forest, err := FitForest(d, ForestConfig{NumTrees: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	probs := make([]float64, forest.NumClasses())
	idx := make([]int, forest.NumClasses())
	for i := 0; i < 30; i++ {
		want, err := forest.PredictProba(d.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := forest.PredictProbaInto(d.X[i], probs); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(probs, want) {
			t.Fatalf("row %d: into=%v, alloc=%v", i, probs, want)
		}
		wantRank := TopKOf(want, 0)
		if err := (ForestRanker{forest}).RankClassesInto(d.X[i], probs, idx); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(idx, wantRank) {
			t.Fatalf("row %d: rank into=%v, want %v", i, idx, wantRank)
		}
	}

	if err := forest.PredictProbaInto([]float64{1}, probs); err == nil {
		t.Error("wrong input width accepted")
	}
	if err := forest.PredictProbaInto(d.X[0], make([]float64, 1)); err == nil {
		t.Error("wrong output width accepted")
	}
	if _, err := forest.PredictProba([]float64{1}); err == nil {
		t.Error("forest-level width check missing")
	}

	allocs := testing.AllocsPerRun(100, func() {
		if err := (ForestRanker{forest}).RankClassesInto(d.X[0], probs, idx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("batch predict+rank allocates %v per run, want 0", allocs)
	}
}

// TestTopKEvalFastPathMatchesGeneric: the scratch-based evaluation the
// forest triggers must score exactly like the allocation path a plain
// Ranker takes.
func TestTopKEvalFastPathMatchesGeneric(t *testing.T) {
	d := gaussDataset(200, 27)
	forest, err := FitForest(d, ForestConfig{NumTrees: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	generic := RankerFunc(ForestRanker{forest}.RankClasses) // hides the fast path
	for _, k := range []int{1, 2, 3} {
		fast, err := TopKAccuracy(ForestRanker{forest}, d, k)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := TopKAccuracy(generic, d, k)
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Errorf("k=%d: fast %v != generic %v", k, fast, slow)
		}
	}
	fastCurve, err := TopKCurve(ForestRanker{forest}, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	slowCurve, err := TopKCurve(generic, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fastCurve, slowCurve) {
		t.Errorf("curves diverge: fast %v, generic %v", fastCurve, slowCurve)
	}
}

// TestArgsortDescMatchesStableSort cross-checks the allocation-free
// argsort against the stable library sort on adversarial inputs.
func TestArgsortDescMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(300)
		p := make([]float64, n)
		for i := range p {
			p[i] = math.Round(rng.Float64()*10) / 10 // heavy ties
		}
		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool { return p[want[a]] > p[want[b]] })
		got := make([]int, n)
		argsortDesc(p, got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: argsort %v, stable %v (p=%v)", trial, got, want, p)
		}
	}
}

// TestFitTreeExtractionIdentical pins the wide-data extraction
// strategy — membership-only recursion with sampled-feature segments
// derived on demand — to the sort-per-node reference. Feature counts
// far above MaxFeatures force the extraction path, and the node-size
// mix inside each tree exercises both the dense-node filter route and
// the small-node sort route.
func TestFitTreeExtractionIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		n := 40 + rng.Intn(160)
		nf := 16 + rng.Intn(25)
		nc := 2 + rng.Intn(5)
		d := randomDataset(rng, n, nf, nc)
		cfg := TreeConfig{
			MaxDepth:       rng.Intn(12),
			MinSamplesLeaf: 1 + rng.Intn(2),
			MaxFeatures:    1 + rng.Intn(3),
		}
		seed := rng.Int63()
		want, err := refFitTree(d, cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := FitTree(d, cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		treesEqual(t, got, want)
	}
}

// TestForestExtractionIdentical replays FitForestCtx's exact draw
// order (per tree: n bootstrap draws, then a tree seed) through the
// reference engine, covering the extraction strategy under bootstrap
// sampling — the shape §6 training actually runs.
func TestForestExtractionIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	d := randomDataset(rng, 150, 30, 4)
	cfg := ForestConfig{NumTrees: 12, Tree: TreeConfig{MaxDepth: 8, MaxFeatures: 2}, Seed: 13}
	got, err := FitForest(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	draw := rand.New(rand.NewSource(cfg.Seed))
	n := len(d.X)
	for i := 0; i < cfg.NumTrees; i++ {
		boot := make([]int, n)
		for j := range boot {
			boot[j] = draw.Intn(n)
		}
		treeSeed := draw.Int63()
		want, err := refFitTree(d.Subset(boot), cfg.Tree, rand.New(rand.NewSource(treeSeed)))
		if err != nil {
			t.Fatal(err)
		}
		treesEqual(t, got.trees[i], want)
	}
}
