package ml

import (
	"time"

	"repro/internal/telemetry"
)

// Metrics is the learning engine's telemetry bundle: trees fitted,
// which exact split-search strategy each tree's builder chose (the
// perf-only extraction-vs-partition decision in treeBuilder.reset), and
// end-to-end forest fit duration. The strategy counters are label
// handles pre-resolved at construction, so the per-tree record is two
// atomic increments.
type Metrics struct {
	TreesFitted    *telemetry.Counter
	SplitExtract   *telemetry.Counter
	SplitPartition *telemetry.Counter
	FitSeconds     *telemetry.Histogram
}

// NewMetrics registers the training metric families. Returns nil on a
// nil registry (telemetry disabled); all methods are nil-safe.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	strategy := reg.CounterVec("ml_split_strategy_total", "trees fitted, by split-search strategy", "strategy")
	return &Metrics{
		TreesFitted:    reg.Counter("ml_trees_fitted_total", "decision trees fitted"),
		SplitExtract:   strategy.With("extract"),
		SplitPartition: strategy.With("partition"),
		FitSeconds:     reg.Histogram("ml_fit_seconds", "end-to-end forest fit duration", nil),
	}
}

// treeFitted records one finished tree and its builder's strategy.
// Safe for concurrent use (workers call it as trees complete).
func (m *Metrics) treeFitted(extract bool) {
	if m == nil {
		return
	}
	m.TreesFitted.Inc()
	if extract {
		m.SplitExtract.Inc()
	} else {
		m.SplitPartition.Inc()
	}
}

// observeFit records one whole-forest fit duration.
func (m *Metrics) observeFit(d time.Duration) {
	if m != nil {
		m.FitSeconds.Observe(d.Seconds())
	}
}
