package ml

import (
	"bytes"
	"strings"
	"testing"
)

func TestForestSaveLoadRoundTrip(t *testing.T) {
	d := gaussDataset(200, 30)
	f1, err := FitForest(d, ForestConfig{NumTrees: 8, Tree: TreeConfig{MaxDepth: 6}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	f2, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumTrees() != f1.NumTrees() {
		t.Fatalf("tree count %d != %d", f2.NumTrees(), f1.NumTrees())
	}
	// Identical predictions on every training row.
	for i, x := range d.X {
		p1, err1 := f1.PredictProba(x)
		p2, err2 := f2.PredictProba(x)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for j := range p1 {
			if p1[j] != p2[j] {
				t.Fatalf("row %d class %d: %v != %v", i, j, p1[j], p2[j])
			}
		}
	}
	// Importances survive.
	i1, i2 := f1.Importance(), f2.Importance()
	for j := range i1 {
		if i1[j] != i2[j] {
			t.Fatalf("importance %d: %v != %v", j, i1[j], i2[j])
		}
	}
}

func TestLoadForestRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"version":99,"num_classes":2,"num_features":1,"trees":[{"nodes":[{"f":-1,"p":[1,0]}]}]}`,
		`{"version":1,"num_classes":0,"num_features":1,"trees":[{"nodes":[{"f":-1,"p":[]}]}]}`,
		`{"version":1,"num_classes":2,"num_features":1,"trees":[]}`,
		// leaf with wrong prob arity
		`{"version":1,"num_classes":2,"num_features":1,"trees":[{"importance":[0],"nodes":[{"f":-1,"p":[1]}]}]}`,
		// split referencing missing feature
		`{"version":1,"num_classes":2,"num_features":1,"trees":[{"importance":[0],"nodes":[{"f":5,"l":0,"r":0}]}]}`,
		// self-referential node
		`{"version":1,"num_classes":2,"num_features":1,"trees":[{"importance":[0],"nodes":[{"f":0,"l":0,"r":0}]}]}`,
		// out-of-range child
		`{"version":1,"num_classes":2,"num_features":1,"trees":[{"importance":[0],"nodes":[{"f":0,"l":1,"r":9}]}]}`,
		// empty tree
		`{"version":1,"num_classes":2,"num_features":1,"trees":[{"importance":[0],"nodes":[]}]}`,
		// importance arity mismatch
		`{"version":1,"num_classes":2,"num_features":2,"trees":[{"importance":[0],"nodes":[{"f":-1,"p":[1,0]}]}]}`,
	}
	for i, c := range cases {
		if _, err := LoadForest(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLoadedForestStillRanks(t *testing.T) {
	d := gaussDataset(150, 31)
	f, err := FitForest(d, ForestConfig{NumTrees: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := TopKAccuracy(ForestRanker{loaded}, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("loaded forest accuracy %v", acc)
	}
}
