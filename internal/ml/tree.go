// Package ml implements the learning stack the paper's §6 model needs,
// from scratch on the standard library: CART decision trees split on
// gini impurity, bootstrap-aggregated random forests with feature
// subsampling, gini feature importance, stratified k-fold
// cross-validation, grid search, and the top-k accuracy metric used to
// compare the model against the most-populated-cluster baseline.
package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dataset is a supervised classification dataset. Rows of X are
// feature vectors; Y holds class labels in [0, NumClasses).
type Dataset struct {
	X          [][]float64
	Y          []int
	NumClasses int
}

// Validate checks shape invariants.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return fmt.Errorf("ml: empty dataset")
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d feature rows but %d labels", len(d.X), len(d.Y))
	}
	if d.NumClasses <= 0 {
		return fmt.Errorf("ml: NumClasses = %d", d.NumClasses)
	}
	width := len(d.X[0])
	for i, row := range d.X {
		if len(row) != width {
			return fmt.Errorf("ml: row %d has %d features, row 0 has %d", i, len(row), width)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.NumClasses {
			return fmt.Errorf("ml: label %d at row %d out of [0,%d)", y, i, d.NumClasses)
		}
	}
	return nil
}

// Subset returns the dataset restricted to the given row indices
// (shared backing arrays; do not mutate rows).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{NumClasses: d.NumClasses}
	out.X = make([][]float64, len(idx))
	out.Y = make([]int, len(idx))
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// TreeConfig controls CART growth.
type TreeConfig struct {
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinSamplesLeaf is the minimum samples in a leaf; 0 means 1.
	MinSamplesLeaf int
	// MinSamplesSplit is the minimum samples to attempt a split; 0
	// means 2.
	MinSamplesSplit int
	// MaxFeatures is the number of features considered per split; 0
	// means all, -1 means floor(sqrt(numFeatures)) (the random-forest
	// default).
	MaxFeatures int
}

func (c TreeConfig) normalized(numFeatures int) TreeConfig {
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 1
	}
	if c.MinSamplesSplit < 2 {
		c.MinSamplesSplit = 2
	}
	switch {
	case c.MaxFeatures == 0 || c.MaxFeatures > numFeatures:
		c.MaxFeatures = numFeatures
	case c.MaxFeatures < 0:
		c.MaxFeatures = int(math.Sqrt(float64(numFeatures)))
		if c.MaxFeatures < 1 {
			c.MaxFeatures = 1
		}
	}
	return c
}

// node is one tree node; leaves carry the class distribution.
type node struct {
	feature   int // -1 for leaf
	threshold float64
	left      int32
	right     int32
	probs     []float64 // leaf class distribution
}

// Tree is a trained CART classifier.
type Tree struct {
	nodes       []node
	numClasses  int
	numFeatures int
	importance  []float64 // unnormalized gini-decrease per feature
}

// FitTree grows a CART tree. The rng drives feature subsampling; pass
// nil for deterministic all-features behaviour.
func FitTree(d *Dataset, cfg TreeConfig, rng *rand.Rand) (*Tree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	numFeatures := len(d.X[0])
	cfg = cfg.normalized(numFeatures)
	if cfg.MaxFeatures < numFeatures && rng == nil {
		return nil, fmt.Errorf("ml: feature subsampling requires an rng")
	}
	t := &Tree{
		numClasses:  d.NumClasses,
		numFeatures: numFeatures,
		importance:  make([]float64, numFeatures),
	}
	idx := make([]int, len(d.X))
	for i := range idx {
		idx[i] = i
	}
	b := &treeBuilder{d: d, cfg: cfg, rng: rng, t: t, total: float64(len(idx))}
	b.grow(idx, 0)
	return t, nil
}

type treeBuilder struct {
	d     *Dataset
	cfg   TreeConfig
	rng   *rand.Rand
	t     *Tree
	total float64
}

// classCounts tallies labels of the subset.
func (b *treeBuilder) classCounts(idx []int) []float64 {
	counts := make([]float64, b.d.NumClasses)
	for _, i := range idx {
		counts[b.d.Y[i]]++
	}
	return counts
}

func gini(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

func pure(counts []float64) bool {
	seen := false
	for _, c := range counts {
		if c > 0 {
			if seen {
				return false
			}
			seen = true
		}
	}
	return true
}

// grow builds the subtree for idx and returns its node index.
func (b *treeBuilder) grow(idx []int, depth int) int32 {
	counts := b.classCounts(idx)
	n := float64(len(idx))

	makeLeaf := func() int32 {
		probs := make([]float64, len(counts))
		for i, c := range counts {
			probs[i] = c / n
		}
		b.t.nodes = append(b.t.nodes, node{feature: -1, probs: probs})
		return int32(len(b.t.nodes) - 1)
	}

	if len(idx) < b.cfg.MinSamplesSplit ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) ||
		pure(counts) {
		return makeLeaf()
	}

	feature, threshold, gain := b.bestSplit(idx, counts, n)
	if feature < 0 {
		return makeLeaf()
	}

	var left, right []int
	for _, i := range idx {
		if b.d.X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinSamplesLeaf || len(right) < b.cfg.MinSamplesLeaf {
		return makeLeaf()
	}

	// Importance: impurity decrease weighted by the node's share of
	// training samples (scikit-learn's convention).
	b.t.importance[feature] += n / b.total * gain

	// Reserve this node's slot before growing children.
	me := int32(len(b.t.nodes))
	b.t.nodes = append(b.t.nodes, node{feature: feature, threshold: threshold})
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.t.nodes[me].left = l
	b.t.nodes[me].right = r
	return me
}

// bestSplit searches the sampled features for the gini-optimal
// threshold. Returns feature -1 when no split improves impurity.
func (b *treeBuilder) bestSplit(idx []int, parentCounts []float64, n float64) (int, float64, float64) {
	parentGini := gini(parentCounts, n)
	bestFeature := -1
	bestThreshold := 0.0
	bestGain := 1e-12 // require a strictly positive gain

	features := b.sampleFeatures()
	// Reusable buffers for the scan.
	type pair struct {
		v float64
		y int
	}
	pairs := make([]pair, len(idx))
	leftCounts := make([]float64, b.d.NumClasses)

	for _, f := range features {
		for i, r := range idx {
			pairs[i] = pair{v: b.d.X[r][f], y: b.d.Y[r]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue // constant feature
		}
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		rightCounts := append([]float64(nil), parentCounts...)
		for i := 0; i < len(pairs)-1; i++ {
			leftCounts[pairs[i].y]++
			rightCounts[pairs[i].y]--
			if pairs[i].v == pairs[i+1].v {
				continue // can't split between equal values
			}
			nl := float64(i + 1)
			nr := n - nl
			if int(nl) < b.cfg.MinSamplesLeaf || int(nr) < b.cfg.MinSamplesLeaf {
				continue
			}
			g := parentGini - (nl/n)*gini(leftCounts, nl) - (nr/n)*gini(rightCounts, nr)
			if g > bestGain {
				bestGain = g
				bestFeature = f
				bestThreshold = (pairs[i].v + pairs[i+1].v) / 2
			}
		}
	}
	return bestFeature, bestThreshold, bestGain
}

// sampleFeatures picks cfg.MaxFeatures distinct feature indices.
func (b *treeBuilder) sampleFeatures() []int {
	nf := b.t.numFeatures
	if b.cfg.MaxFeatures >= nf {
		out := make([]int, nf)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return b.rng.Perm(nf)[:b.cfg.MaxFeatures]
}

// PredictProba returns the class distribution for one feature vector.
func (t *Tree) PredictProba(x []float64) ([]float64, error) {
	if len(x) != t.numFeatures {
		return nil, fmt.Errorf("ml: input has %d features, tree trained on %d", len(x), t.numFeatures)
	}
	i := int32(0)
	for {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return nd.probs, nil
		}
		if x[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// Predict returns the most probable class.
func (t *Tree) Predict(x []float64) (int, error) {
	p, err := t.PredictProba(x)
	if err != nil {
		return 0, err
	}
	return argmax(p), nil
}

// NumNodes reports tree size.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Importance returns the normalized gini importance per feature
// (sums to 1 when any split happened).
func (t *Tree) Importance() []float64 {
	out := append([]float64(nil), t.importance...)
	normalize(out)
	return out
}

func normalize(xs []float64) {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		return
	}
	for i := range xs {
		xs[i] /= s
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
