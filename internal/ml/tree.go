// Package ml implements the learning stack the paper's §6 model needs,
// from scratch on the standard library: CART decision trees split on
// gini impurity, bootstrap-aggregated random forests with feature
// subsampling, gini feature importance, stratified k-fold
// cross-validation, grid search, and the top-k accuracy metric used to
// compare the model against the most-populated-cluster baseline.
//
// Training is built for throughput without giving up reproducibility:
// forests train on a bounded worker pool with every random draw made
// serially up front, split search runs over presorted per-feature
// index arrays partitioned down the recursion instead of re-sorting at
// every node, and the batch prediction path is allocation-free. All of
// it is bit-identical to the straightforward serial implementation —
// see README "Learning engine internals".
package ml

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
)

// Dataset is a supervised classification dataset. Rows of X are
// feature vectors; Y holds class labels in [0, NumClasses).
type Dataset struct {
	X          [][]float64
	Y          []int
	NumClasses int
}

// Validate checks shape invariants.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return fmt.Errorf("ml: empty dataset")
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d feature rows but %d labels", len(d.X), len(d.Y))
	}
	if d.NumClasses <= 0 {
		return fmt.Errorf("ml: NumClasses = %d", d.NumClasses)
	}
	width := len(d.X[0])
	for i, row := range d.X {
		if len(row) != width {
			return fmt.Errorf("ml: row %d has %d features, row 0 has %d", i, len(row), width)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.NumClasses {
			return fmt.Errorf("ml: label %d at row %d out of [0,%d)", y, i, d.NumClasses)
		}
	}
	return nil
}

// Subset returns the dataset restricted to the given row indices
// (shared backing arrays; do not mutate rows).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{NumClasses: d.NumClasses}
	out.X = make([][]float64, len(idx))
	out.Y = make([]int, len(idx))
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// TreeConfig controls CART growth.
type TreeConfig struct {
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinSamplesLeaf is the minimum samples in a leaf; 0 means 1.
	MinSamplesLeaf int
	// MinSamplesSplit is the minimum samples to attempt a split; 0
	// means 2.
	MinSamplesSplit int
	// MaxFeatures is the number of features considered per split; 0
	// means all, -1 means floor(sqrt(numFeatures)) (the random-forest
	// default).
	MaxFeatures int
}

func (c TreeConfig) normalized(numFeatures int) TreeConfig {
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 1
	}
	if c.MinSamplesSplit < 2 {
		c.MinSamplesSplit = 2
	}
	switch {
	case c.MaxFeatures == 0 || c.MaxFeatures > numFeatures:
		c.MaxFeatures = numFeatures
	case c.MaxFeatures < 0:
		c.MaxFeatures = int(math.Sqrt(float64(numFeatures)))
		if c.MaxFeatures < 1 {
			c.MaxFeatures = 1
		}
	}
	return c
}

// node is one tree node; leaves carry the class distribution.
type node struct {
	feature   int // -1 for leaf
	threshold float64
	left      int32
	right     int32
	probs     []float64 // leaf class distribution (view into Tree.leafProbs)
}

// Tree is a trained CART classifier.
type Tree struct {
	nodes       []node
	numClasses  int
	numFeatures int
	importance  []float64 // unnormalized gini-decrease per feature
	// leafProbs is the single backing array every leaf's probs slice
	// points into: one numClasses-wide block per leaf in node order.
	leafProbs []float64
}

// fitContext is the per-dataset presort shared by every tree of a fit:
// a column-major copy of X plus, per feature, the row indices sorted
// ascending by that feature's value. Columns that are constant across
// the dataset (most of the §6 cluster-count features are) can never
// host a split, so they are flagged and never sorted, materialized, or
// partitioned. Immutable after construction; concurrent tree builders
// share one instance.
type fitContext struct {
	d           *Dataset
	numFeatures int
	cols        [][]float64 // cols[f][row] = X[row][f]
	order       [][]int32   // order[f] = rows sorted ascending by cols[f]; nil when constant
	constant    []bool      // constant[f]: column f has a single value
}

// newFitContext builds the column store and sorts each varying feature
// column once. O(active features * n log n), paid once per
// FitForest/FitTree call instead of once per node as the sort-per-node
// engine did.
func newFitContext(d *Dataset) *fitContext {
	n := len(d.X)
	nf := len(d.X[0])
	fc := &fitContext{d: d, numFeatures: nf}
	colsFlat := make([]float64, nf*n)
	fc.cols = make([][]float64, nf)
	fc.order = make([][]int32, nf)
	fc.constant = make([]bool, nf)
	for f := 0; f < nf; f++ {
		col := colsFlat[f*n : (f+1)*n : (f+1)*n]
		constant := true
		for r, row := range d.X {
			col[r] = row[f]
			if row[f] != col[0] {
				constant = false
			}
		}
		fc.cols[f] = col
		fc.constant[f] = constant
	}
	active := 0
	for f := 0; f < nf; f++ {
		if !fc.constant[f] {
			active++
		}
	}
	ordFlat := make([]int32, active*n)
	k := 0
	for f := 0; f < nf; f++ {
		if fc.constant[f] {
			continue
		}
		ord := ordFlat[k*n : (k+1)*n : (k+1)*n]
		k++
		for r := range ord {
			ord[r] = int32(r)
		}
		sortIdxByKey(fc.cols[f], ord)
		fc.order[f] = ord
	}
	return fc
}

// sortIdxByKey sorts idx ascending by key[idx[i]] with a fat-pivot
// (three-way) quicksort: no closure dispatch, and duplicate-heavy
// columns — the common case for cluster-count features — collapse in
// one partition pass. Equal keys land in arbitrary order, which the
// split scan is insensitive to.
func sortIdxByKey(key []float64, idx []int32) {
	for len(idx) > 16 {
		a, b, c := key[idx[0]], key[idx[len(idx)/2]], key[idx[len(idx)-1]]
		// Median of three as the fat pivot.
		pivot := a
		switch {
		case (a <= b && b <= c) || (c <= b && b <= a):
			pivot = b
		case (a <= c && c <= b) || (b <= c && c <= a):
			pivot = c
		}
		lt, i, gt := 0, 0, len(idx)
		for i < gt {
			k := key[idx[i]]
			switch {
			case k < pivot:
				idx[lt], idx[i] = idx[i], idx[lt]
				lt++
				i++
			case k > pivot:
				gt--
				idx[i], idx[gt] = idx[gt], idx[i]
			default:
				i++
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if lt < len(idx)-gt {
			sortIdxByKey(key, idx[:lt])
			idx = idx[gt:]
		} else {
			sortIdxByKey(key, idx[gt:])
			idx = idx[:lt]
		}
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && key[idx[j]] < key[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// FitTree grows a CART tree. The rng drives feature subsampling; pass
// nil for deterministic all-features behaviour.
func FitTree(d *Dataset, cfg TreeConfig, rng *rand.Rand) (*Tree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	b := &treeBuilder{}
	return b.fitTree(newFitContext(d), cfg, rng, nil)
}

// treeBuilder grows trees from a fitContext. All of its buffers are
// reused across trees, so a worker that fits many trees allocates the
// scratch once. Not safe for concurrent use; the pool gives each
// worker its own builder.
type treeBuilder struct {
	fc    *fitContext
	cfg   TreeConfig
	rng   *rand.Rand
	t     *Tree
	n     int
	total float64

	cols [][]float64 // per-tree column store: cols[f][pos] over sample positions
	y    []int32     // label per sample position
	ord  [][]int32   // per-feature positions sorted by value, partitioned in place
	pos  []int32     // membership order: the node's positions, partitioned with ord
	tmp  []int32     // stable-partition scratch (right-child spill)
	mark []bool      // per-position left/right marks for the current split

	// Features constant within this tree's sample can never host a split
	// (the scan skipped them via its equal-endpoints check), so only the
	// active remainder is sorted, stored, and partitioned.
	activeMask []bool
	activeList []int32

	// extract switches the engine between its two exact strategies.
	// Narrow data (active features ≲ features sampled per split) keeps
	// every feature's order array partitioned down the recursion; wide
	// data (the §6 shape: ~200 varying columns, ~15 sampled per node)
	// maintains only the membership array and derives each sampled
	// feature's sorted segment on demand — by filtering the global value
	// order for dense nodes or sorting the node's positions for small
	// ones. Both orderings visit identical split candidates, so the
	// choice never changes the tree.
	extract  bool
	identity bool    // boot was nil: positions are dataset rows
	invPos   []int32 // invPos[pos] = current index of pos in b.pos
	segBuf   []int32 // extraction scratch for one feature's sorted segment

	rowCnt   []int32 // bootstrap multiplicity per dataset row
	rowStart []int32 // prefix offsets into posByRow
	posByRow []int32 // sample positions grouped by dataset row

	counts      []float64 // class counts of the current node
	leftCounts  []float64
	rightCounts []float64
	allFeatures []int // identity feature list when MaxFeatures >= numFeatures

	colsFlat []float64
	ordFlat  []int32
}

// fitTree grows one tree over the sample positions boot (nil = the
// identity sample, i.e. the whole dataset). The result is bit-identical
// to growing on d.Subset(boot) with the sort-per-node engine.
func (b *treeBuilder) fitTree(fc *fitContext, cfg TreeConfig, rng *rand.Rand, boot []int) (*Tree, error) {
	cfg = cfg.normalized(fc.numFeatures)
	if cfg.MaxFeatures < fc.numFeatures && rng == nil {
		return nil, fmt.Errorf("ml: feature subsampling requires an rng")
	}
	n := len(boot)
	if boot == nil {
		n = len(fc.d.X)
	}
	t := &Tree{
		numClasses:  fc.d.NumClasses,
		numFeatures: fc.numFeatures,
		importance:  make([]float64, fc.numFeatures),
	}
	b.fc, b.cfg, b.rng, b.t = fc, cfg, rng, t
	b.n, b.total = n, float64(n)
	b.reset(boot)
	b.grow(0, int32(n), 0)
	// The backing array is final now, so leaf views are stable: hand
	// each leaf its numClasses-wide block in node (= DFS) order.
	off := 0
	for i := range t.nodes {
		if t.nodes[i].feature < 0 {
			t.nodes[i].probs = t.leafProbs[off : off+t.numClasses : off+t.numClasses]
			off += t.numClasses
		}
	}
	return t, nil
}

// reset sizes the scratch for the current (fc, boot) pair, materializes
// the per-tree column store, and derives each feature's presorted
// position list from the fitContext's global order in O(n) per feature:
// bucket the bootstrap positions by row (a counting sort), then walk
// the globally sorted rows emitting each row's positions.
func (b *treeBuilder) reset(boot []int) {
	n, nf, nc := b.n, b.fc.numFeatures, b.fc.d.NumClasses
	nRows := len(b.fc.d.X)
	if cap(b.colsFlat) < nf*n {
		b.colsFlat = make([]float64, nf*n)
	}
	if len(b.cols) != nf {
		b.cols = make([][]float64, nf)
		b.ord = make([][]int32, nf)
	}
	if cap(b.tmp) < n {
		b.tmp = make([]int32, n)
		b.mark = make([]bool, n)
		b.posByRow = make([]int32, n)
		b.pos = make([]int32, n)
	}
	if len(b.activeMask) != nf {
		b.activeMask = make([]bool, nf)
		b.activeList = make([]int32, 0, nf)
	}
	b.activeList = b.activeList[:0]
	if cap(b.rowCnt) < nRows+1 {
		b.rowCnt = make([]int32, nRows+1)
		b.rowStart = make([]int32, nRows+1)
	}
	if cap(b.counts) < nc {
		b.counts = make([]float64, nc)
		b.leftCounts = make([]float64, nc)
		b.rightCounts = make([]float64, nc)
	}
	b.counts = b.counts[:nc]
	b.leftCounts = b.leftCounts[:nc]
	b.rightCounts = b.rightCounts[:nc]
	if cap(b.y) < n {
		b.y = make([]int32, n)
	}
	b.y = b.y[:n]
	if len(b.allFeatures) != nf {
		b.allFeatures = make([]int, nf)
		for f := range b.allFeatures {
			b.allFeatures[f] = f
		}
	}

	b.identity = boot == nil
	if b.identity {
		// Identity sample: positions are rows; the global order is the
		// tree's order.
		for pos := 0; pos < n; pos++ {
			b.y[pos] = int32(b.fc.d.Y[pos])
		}
		for f := 0; f < nf; f++ {
			if b.fc.constant[f] {
				b.activeMask[f] = false
				b.cols[f], b.ord[f] = nil, nil
				continue
			}
			b.activeMask[f] = true
			b.activeList = append(b.activeList, int32(f))
			b.cols[f] = b.fc.cols[f]
		}
	} else {
		cnt := b.rowCnt[:nRows]
		for i := range cnt {
			cnt[i] = 0
		}
		for _, r := range boot {
			cnt[r]++
		}
		start := b.rowStart[:nRows+1]
		var acc int32
		for r, c := range cnt {
			start[r] = acc
			acc += c
		}
		start[nRows] = acc
		// Group positions by row, keeping ascending position order within
		// a row (ties within equal feature values are order-insensitive
		// for split search, but a fixed order keeps the layout
		// deterministic).
		next := cnt // reuse as cursor: next[r] = start[r] while filling
		copy(next, start[:nRows])
		byRow := b.posByRow[:n]
		for pos, r := range boot {
			byRow[next[r]] = int32(pos)
			next[r]++
		}
		for pos, r := range boot {
			b.y[pos] = int32(b.fc.d.Y[r])
		}
		slot := 0
		for f := 0; f < nf; f++ {
			if b.fc.constant[f] {
				b.activeMask[f] = false
				b.cols[f], b.ord[f] = nil, nil
				continue
			}
			col := b.colsFlat[slot*n : (slot+1)*n : (slot+1)*n]
			src := b.fc.cols[f]
			constant := true
			for pos, r := range boot {
				col[pos] = src[r]
				if src[r] != col[0] {
					constant = false
				}
			}
			if constant {
				// Varies in the dataset but not in this bootstrap sample;
				// the slot is reused by the next feature.
				b.activeMask[f] = false
				b.cols[f], b.ord[f] = nil, nil
				continue
			}
			b.activeMask[f] = true
			b.activeList = append(b.activeList, int32(f))
			b.cols[f] = col
			slot++
		}
	}

	// Strategy choice (perf-only; both paths grow identical trees): when
	// far more features vary than each split samples, maintaining every
	// order array down the recursion costs more than deriving the few
	// sampled segments on demand.
	b.extract = len(b.activeList) > 4*b.cfg.MaxFeatures
	if b.extract || len(b.activeList) == 0 {
		// The membership array is only maintained in extraction mode; the
		// partitioned engine reads membership off its first active
		// feature's order array (any feature's segment holds the node's
		// position set). The all-constant case keeps it as a fallback.
		b.pos = b.pos[:n]
		for i := range b.pos {
			b.pos[i] = int32(i)
		}
	}
	if b.extract {
		if cap(b.invPos) < n {
			b.invPos = make([]int32, n)
			b.segBuf = make([]int32, n)
		}
		b.invPos = b.invPos[:n]
		for i := range b.invPos {
			b.invPos[i] = int32(i)
		}
		return
	}

	if cap(b.ordFlat) < nf*n {
		b.ordFlat = make([]int32, nf*n)
	}
	for slot, fi := range b.activeList {
		f := int(fi)
		ord := b.ordFlat[slot*n : (slot+1)*n : (slot+1)*n]
		if b.identity {
			copy(ord, b.fc.order[f])
		} else {
			start, byRow := b.rowStart[:nRows+1], b.posByRow[:n]
			k := 0
			for _, r := range b.fc.order[f] {
				for i := start[r]; i < start[r+1]; i++ {
					ord[k] = byRow[i]
					k++
				}
			}
		}
		b.ord[f] = ord
	}
}

func gini(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

func pure(counts []float64) bool {
	seen := false
	for _, c := range counts {
		if c > 0 {
			if seen {
				return false
			}
			seen = true
		}
	}
	return true
}

// grow builds the subtree over the position range [lo, hi) — the same
// contiguous segment of every feature's presorted order — and returns
// its node index.
func (b *treeBuilder) grow(lo, hi int32, depth int) int32 {
	var seg []int32
	if b.extract || len(b.activeList) == 0 {
		seg = b.pos[lo:hi]
	} else {
		seg = b.ord[b.activeList[0]][lo:hi]
	}
	counts := b.counts
	for i := range counts {
		counts[i] = 0
	}
	for _, pos := range seg {
		counts[b.y[pos]]++
	}
	n := float64(hi - lo)

	makeLeaf := func() int32 {
		for _, c := range counts {
			b.t.leafProbs = append(b.t.leafProbs, c/n)
		}
		b.t.nodes = append(b.t.nodes, node{feature: -1})
		return int32(len(b.t.nodes) - 1)
	}

	if int(hi-lo) < b.cfg.MinSamplesSplit ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) ||
		pure(counts) {
		return makeLeaf()
	}

	feature, threshold, gain := b.bestSplit(lo, hi, counts, n)
	if feature < 0 {
		return makeLeaf()
	}

	// Mark each position's side once; every feature's segment is then
	// partitioned by the marks.
	nLeft := int32(0)
	col := b.cols[feature]
	for _, pos := range seg {
		left := col[pos] <= threshold
		b.mark[pos] = left
		if left {
			nLeft++
		}
	}
	nRight := (hi - lo) - nLeft
	if int(nLeft) < b.cfg.MinSamplesLeaf || int(nRight) < b.cfg.MinSamplesLeaf {
		return makeLeaf()
	}

	// Importance: impurity decrease weighted by the node's share of
	// training samples (scikit-learn's convention).
	b.t.importance[feature] += n / b.total * gain

	// Stable partition keeps each child's segment sorted per feature:
	// left positions compact forward, right positions spill to scratch
	// and append behind. Extraction mode only carries the membership
	// array (plus its inverse) down the recursion; the partitioned
	// engine carries every active feature's order array, the first of
	// which doubles as membership.
	if b.extract {
		k, m := 0, 0
		for _, pos := range seg {
			if b.mark[pos] {
				seg[k] = pos
				k++
			} else {
				b.tmp[m] = pos
				m++
			}
		}
		copy(seg[k:], b.tmp[:m])
		for i := lo; i < hi; i++ {
			b.invPos[b.pos[i]] = i
		}
	} else {
		for _, fi := range b.activeList {
			fseg := b.ord[fi][lo:hi]
			k, m := 0, 0
			for _, pos := range fseg {
				if b.mark[pos] {
					fseg[k] = pos
					k++
				} else {
					b.tmp[m] = pos
					m++
				}
			}
			copy(fseg[k:], b.tmp[:m])
		}
	}

	// Reserve this node's slot before growing children.
	me := int32(len(b.t.nodes))
	b.t.nodes = append(b.t.nodes, node{feature: feature, threshold: threshold})
	l := b.grow(lo, lo+nLeft, depth+1)
	r := b.grow(lo+nLeft, hi, depth+1)
	b.t.nodes[me].left = l
	b.t.nodes[me].right = r
	return me
}

// bestSplit searches the sampled features for the gini-optimal
// threshold. Returns feature -1 when no split improves impurity.
//
// Each feature's candidate scan walks its presorted segment directly —
// O(n) per feature — instead of sorting (value, label) pairs per node.
// The scan visits the same value boundaries with the same class counts
// as a freshly sorted copy would (equal-value runs contribute no
// candidates), so the chosen split is bit-identical to the
// sort-per-node engine's; TestBestSplitPresortIdentical holds the two
// together.
func (b *treeBuilder) bestSplit(lo, hi int32, parentCounts []float64, n float64) (int, float64, float64) {
	parentGini := gini(parentCounts, n)
	bestFeature := -1
	bestThreshold := 0.0
	bestGain := 1e-12 // require a strictly positive gain

	leftCounts, rightCounts := b.leftCounts, b.rightCounts
	for _, f := range b.sampleFeatures() {
		if !b.activeMask[f] {
			continue // constant across the tree's sample
		}
		var seg []int32
		if b.extract {
			seg = b.extractSeg(f, lo, hi)
		} else {
			seg = b.ord[f][lo:hi]
		}
		col := b.cols[f]
		if col[seg[0]] == col[seg[len(seg)-1]] {
			continue // constant within this node
		}
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		copy(rightCounts, parentCounts)
		for i := 0; i < len(seg)-1; i++ {
			yi := b.y[seg[i]]
			leftCounts[yi]++
			rightCounts[yi]--
			v := col[seg[i]]
			if v == col[seg[i+1]] {
				continue // can't split between equal values
			}
			nl := float64(i + 1)
			nr := n - nl
			if int(nl) < b.cfg.MinSamplesLeaf || int(nr) < b.cfg.MinSamplesLeaf {
				continue
			}
			g := parentGini - (nl/n)*gini(leftCounts, nl) - (nr/n)*gini(rightCounts, nr)
			if g > bestGain {
				bestGain = g
				bestFeature = f
				bestThreshold = (v + col[seg[i+1]]) / 2
			}
		}
	}
	return bestFeature, bestThreshold, bestGain
}

// extractSeg returns the node's positions sorted ascending by feature
// f's value, derived on demand in extraction mode. Dense nodes filter
// the fitContext's global value order by membership in [lo, hi) — O(n)
// regardless of node size — while small nodes sort their positions
// directly. Ties land in arbitrary order either way, which the split
// scan is insensitive to, so both routes match the partitioned engine
// bit for bit.
func (b *treeBuilder) extractSeg(f int, lo, hi int32) []int32 {
	s := int(hi - lo)
	seg := b.segBuf[:s]
	if s*bits.Len(uint(s)) <= 3*b.n {
		copy(seg, b.pos[lo:hi])
		sortIdxByKey(b.cols[f], seg)
		return seg
	}
	k := 0
	if b.identity {
		for _, r := range b.fc.order[f] {
			if ip := b.invPos[r]; ip >= lo && ip < hi {
				seg[k] = r
				k++
			}
		}
		return seg
	}
	start, byRow := b.rowStart, b.posByRow
	for _, r := range b.fc.order[f] {
		for i := start[r]; i < start[r+1]; i++ {
			p := byRow[i]
			if ip := b.invPos[p]; ip >= lo && ip < hi {
				seg[k] = p
				k++
			}
		}
	}
	return seg
}

// sampleFeatures picks cfg.MaxFeatures distinct feature indices.
func (b *treeBuilder) sampleFeatures() []int {
	nf := b.fc.numFeatures
	if b.cfg.MaxFeatures >= nf {
		return b.allFeatures
	}
	return b.rng.Perm(nf)[:b.cfg.MaxFeatures]
}

// leaf descends to the leaf for x without width validation; callers
// (Forest's batch path) validate once at the ensemble level.
func (t *Tree) leaf(x []float64) *node {
	i := int32(0)
	for {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return nd
		}
		if x[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// PredictProba returns the class distribution for one feature vector.
func (t *Tree) PredictProba(x []float64) ([]float64, error) {
	if len(x) != t.numFeatures {
		return nil, fmt.Errorf("ml: input has %d features, tree trained on %d", len(x), t.numFeatures)
	}
	return t.leaf(x).probs, nil
}

// Predict returns the most probable class.
func (t *Tree) Predict(x []float64) (int, error) {
	p, err := t.PredictProba(x)
	if err != nil {
		return 0, err
	}
	return argmax(p), nil
}

// NumNodes reports tree size.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Importance returns the normalized gini importance per feature
// (sums to 1 when any split happened).
func (t *Tree) Importance() []float64 {
	out := append([]float64(nil), t.importance...)
	normalize(out)
	return out
}

func normalize(xs []float64) {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		return
	}
	for i := range xs {
		xs[i] /= s
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
