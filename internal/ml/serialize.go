package ml

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Wire DTOs for model persistence ("Model release", paper §6: the
// trained model is published for future simulations). JSON keeps the
// artifact inspectable; trees serialize as flat node arrays.

type nodeDTO struct {
	Feature   int       `json:"f"`
	Threshold float64   `json:"t,omitempty"`
	Left      int32     `json:"l,omitempty"`
	Right     int32     `json:"r,omitempty"`
	Probs     []float64 `json:"p,omitempty"`
}

type treeDTO struct {
	Nodes      []nodeDTO `json:"nodes"`
	Importance []float64 `json:"importance"`
}

type forestDTO struct {
	Version     int       `json:"version"`
	NumClasses  int       `json:"num_classes"`
	NumFeatures int       `json:"num_features"`
	Trees       []treeDTO `json:"trees"`
}

// forestVersion guards the on-disk format.
const forestVersion = 1

// Save writes the forest as JSON.
func (f *Forest) Save(w io.Writer) error {
	dto := forestDTO{
		Version:     forestVersion,
		NumClasses:  f.numClasses,
		NumFeatures: f.numFeatures,
	}
	for _, t := range f.trees {
		td := treeDTO{Importance: t.importance}
		for _, n := range t.nodes {
			td.Nodes = append(td.Nodes, nodeDTO{
				Feature: n.feature, Threshold: n.threshold,
				Left: n.left, Right: n.right, Probs: n.probs,
			})
		}
		dto.Trees = append(dto.Trees, td)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&dto); err != nil {
		return fmt.Errorf("ml: save forest: %w", err)
	}
	return nil
}

// ErrModelShape reports a serialized forest whose header does not
// match the feature schema the caller serves — a model trained against
// a different feature extraction. Callers that load models for serving
// (predictd) check with errors.Is and refuse the artifact up front,
// instead of failing per-prediction at checkWidth time.
var ErrModelShape = errors.New("ml: model shape mismatch")

// LoadForest reads a forest written by Save and validates its
// structure.
func LoadForest(r io.Reader) (*Forest, error) {
	return LoadForestFor(r, 0, 0)
}

// LoadForestFor is LoadForest plus a load-time schema gate: the
// serialized header's format version, feature width, and class count
// are checked before any tree decodes. wantFeatures/wantClasses of 0
// skip that dimension (LoadForest's behaviour). A mismatch returns an
// error wrapping ErrModelShape that names both shapes, so "wrong model
// file" fails at startup with a clear message rather than surfacing as
// a per-input width error mid-serve.
func LoadForestFor(r io.Reader, wantFeatures, wantClasses int) (*Forest, error) {
	var dto forestDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("ml: load forest: %w", err)
	}
	if dto.Version != forestVersion {
		return nil, fmt.Errorf("ml: forest format version %d, want %d", dto.Version, forestVersion)
	}
	if wantFeatures > 0 && dto.NumFeatures != wantFeatures {
		return nil, fmt.Errorf("%w: forest trained on %d features, caller serves %d",
			ErrModelShape, dto.NumFeatures, wantFeatures)
	}
	if wantClasses > 0 && dto.NumClasses != wantClasses {
		return nil, fmt.Errorf("%w: forest predicts %d classes, caller serves %d",
			ErrModelShape, dto.NumClasses, wantClasses)
	}
	if dto.NumClasses <= 0 || dto.NumFeatures <= 0 || len(dto.Trees) == 0 {
		return nil, fmt.Errorf("ml: forest header invalid (%d classes, %d features, %d trees)",
			dto.NumClasses, dto.NumFeatures, len(dto.Trees))
	}
	f := &Forest{numClasses: dto.NumClasses, numFeatures: dto.NumFeatures}
	for ti, td := range dto.Trees {
		t := &Tree{numClasses: dto.NumClasses, numFeatures: dto.NumFeatures, importance: td.Importance}
		if t.importance == nil {
			t.importance = make([]float64, dto.NumFeatures)
		}
		if len(t.importance) != dto.NumFeatures {
			return nil, fmt.Errorf("ml: tree %d importance length %d, want %d", ti, len(t.importance), dto.NumFeatures)
		}
		n := int32(len(td.Nodes))
		if n == 0 {
			return nil, fmt.Errorf("ml: tree %d has no nodes", ti)
		}
		for ni, nd := range td.Nodes {
			if nd.Feature >= dto.NumFeatures {
				return nil, fmt.Errorf("ml: tree %d node %d references feature %d", ti, ni, nd.Feature)
			}
			if nd.Feature >= 0 {
				if nd.Left < 0 || nd.Left >= n || nd.Right < 0 || nd.Right >= n {
					return nil, fmt.Errorf("ml: tree %d node %d has out-of-range children", ti, ni)
				}
				if nd.Left == int32(ni) || nd.Right == int32(ni) {
					return nil, fmt.Errorf("ml: tree %d node %d is self-referential", ti, ni)
				}
			} else if len(nd.Probs) != dto.NumClasses {
				return nil, fmt.Errorf("ml: tree %d leaf %d has %d probs, want %d", ti, ni, len(nd.Probs), dto.NumClasses)
			}
			t.nodes = append(t.nodes, node{
				feature: nd.Feature, threshold: nd.Threshold,
				left: nd.Left, right: nd.Right, probs: nd.Probs,
			})
		}
		f.trees = append(f.trees, t)
	}
	return f, nil
}
