package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("variance = %v", v)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs should be NaN")
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, s := MeanStd(xs)
	if m != 5 || s != 2 { // population std of this classic example is 2
		t.Errorf("MeanStd = %v, %v", m, s)
	}
	_, s1 := MeanStd([]float64{3})
	if s1 != 0 {
		t.Errorf("single-sample std = %v", s1)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated median = %v", got)
	}
	if Median(xs) != 3 {
		t.Error("median")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v", r)
	}
	for i := range y {
		y[i] = -y[i]
	}
	r, _ = Pearson(x, y)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r, err := Pearson(x, y)
		if err != nil {
			return true
		}
		return r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMannWhitneySameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	rejects := 0
	trials := 200
	for i := 0; i < trials; i++ {
		a := make([]float64, 40)
		b := make([]float64, 40)
		for j := range a {
			a[j] = rng.NormFloat64()
			b[j] = rng.NormFloat64()
		}
		res, err := MannWhitneyU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejects++
		}
	}
	// Under H0 the rejection rate should be ~5%.
	rate := float64(rejects) / float64(trials)
	if rate > 0.12 {
		t.Errorf("false rejection rate = %v", rate)
	}
}

func TestMannWhitneyShiftedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := make([]float64, 60)
	b := make([]float64, 60)
	for j := range a {
		a[j] = rng.NormFloat64()
		b[j] = rng.NormFloat64() + 1.2 // clearly shifted
	}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.001 {
		t.Errorf("p = %v for strongly shifted samples", res.P)
	}
}

func TestMannWhitneyTies(t *testing.T) {
	// Heavily tied data should still work (tie correction).
	a := []float64{1, 1, 1, 2, 2, 2, 3, 3, 3, 4}
	b := []float64{3, 3, 4, 4, 4, 5, 5, 5, 6, 6}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.01 {
		t.Errorf("p = %v for shifted tied samples", res.P)
	}
	// All-identical samples: p = 1.
	c := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	res, err = MannWhitneyU(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.99 {
		t.Errorf("p = %v for identical constant samples", res.P)
	}
}

func TestMannWhitneyTooFew(t *testing.T) {
	if _, err := MannWhitneyU([]float64{1, 2, 3}, []float64{4, 5, 6, 7, 8, 9, 10, 11}); err == nil {
		t.Error("small sample accepted")
	}
}

func TestMannWhitneyUStatisticRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1 := 8 + rng.Intn(20)
		n2 := 8 + rng.Intn(20)
		a := make([]float64, n1)
		b := make([]float64, n2)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		res, err := MannWhitneyU(a, b)
		if err != nil {
			return false
		}
		// U ranges in [0, n1*n2/2] for the min convention; p in [0,1].
		return res.U >= 0 && res.U <= float64(n1*n2)/2+1e-9 && res.P >= 0 && res.P <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("F(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Error("Len")
	}
	if _, err := NewECDF(nil); err == nil {
		t.Error("empty ECDF accepted")
	}
}

func TestECDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 5+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		pts := e.Points(30)
		for i := 1; i < len(pts); i++ {
			if pts[i][1] < pts[i-1][1] {
				return false
			}
		}
		return pts[len(pts)-1][1] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, skipped, err := Histogram([]float64{0, 1, 2, 3, 4, 5, 9, 10, -3}, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d for NaN-free input", skipped)
	}
	// bins: [0,2) [2,4) [4,6) [6,8) [8,10]; -3 clamps low, 10 clamps high.
	want := []int{3, 2, 2, 0, 2}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("bin %d = %d, want %d (h=%v)", i, h[i], want[i], h)
		}
	}
	if _, _, err := Histogram(nil, 0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, _, err := Histogram(nil, 5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
}

// TestHistogramNaN pins the NaN contract: int(NaN) is
// implementation-defined (it lands in bin 0 on amd64), so NaN samples
// must be skipped and counted, never binned.
func TestHistogramNaN(t *testing.T) {
	nan := math.NaN()
	h, skipped, err := Histogram([]float64{nan, 1, nan, 9, nan}, 0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 3 {
		t.Errorf("skipped = %d, want 3", skipped)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 2 {
		t.Errorf("binned %d values, want 2 (h=%v)", total, h)
	}
	if h[0] != 1 || h[1] != 1 {
		t.Errorf("h = %v, want [1 1]", h)
	}
	// All-NaN input: every sample skipped, no error, empty bins.
	h, skipped, err = Histogram([]float64{nan, nan}, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 || h[0]+h[1]+h[2] != 0 {
		t.Errorf("all-NaN: skipped=%d h=%v", skipped, h)
	}
}

func TestProportion(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if p := Proportion(xs, func(v float64) bool { return v > 2 }); p != 0.5 {
		t.Errorf("proportion = %v", p)
	}
	if !math.IsNaN(Proportion(nil, func(float64) bool { return true })) {
		t.Error("empty proportion should be NaN")
	}
}
