// Package stats provides the statistical machinery the paper's
// analyses use: the Mann-Whitney U test (with normal approximation and
// tie correction) that demonstrates consecutive 15-second windows
// carry different latency distributions, Pearson correlation for the
// launch-date preference, empirical CDFs for the figure
// reproductions, and basic summary statistics.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrTooFewSamples is returned when a test needs more data.
var ErrTooFewSamples = errors.New("stats: too few samples")

// Mean returns the arithmetic mean. NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance. NaN for n < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanStd returns mean and population standard deviation in one pass —
// the normalization the paper's feature clustering uses. For n = 1 the
// std is 0.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	mean = Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mean
		s += d * d
	}
	return mean, math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear
// interpolation between order statistics. NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median is the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Pearson returns the Pearson correlation coefficient between two
// equal-length samples.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: pearson inputs have lengths %d and %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, ErrTooFewSamples
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: pearson input has zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// MannWhitneyResult reports the U statistic and two-sided p-value of
// the Mann-Whitney U test (normal approximation with tie and
// continuity corrections, appropriate for the sample sizes here).
type MannWhitneyResult struct {
	U float64 // the smaller of U1 and U2
	Z float64 // standardized statistic
	P float64 // two-sided p-value
	// N1, N2 are the sample sizes.
	N1, N2 int
}

// MannWhitneyU tests whether two independent samples come from the
// same distribution. Requires at least 8 observations per side for the
// normal approximation to be meaningful.
func MannWhitneyU(a, b []float64) (MannWhitneyResult, error) {
	n1, n2 := len(a), len(b)
	if n1 < 8 || n2 < 8 {
		return MannWhitneyResult{}, fmt.Errorf("%w: mann-whitney needs >= 8 per group, got %d and %d", ErrTooFewSamples, n1, n2)
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign midranks; accumulate tie correction.
	ranks := make([]float64, len(all))
	tieCorrection := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	u2 := fn1*fn2 - u1
	u := math.Min(u1, u2)

	mu := fn1 * fn2 / 2
	n := fn1 + fn2
	sigma2 := fn1 * fn2 / 12 * ((n + 1) - tieCorrection/(n*(n-1)))
	if sigma2 <= 0 {
		// All values tied: the distributions are indistinguishable.
		return MannWhitneyResult{U: u, Z: 0, P: 1, N1: n1, N2: n2}, nil
	}
	// Continuity correction.
	z := (u - mu + 0.5) / math.Sqrt(sigma2)
	p := 2 * normalCDF(-math.Abs(z))
	if p > 1 {
		p = 1
	}
	return MannWhitneyResult{U: u, Z: z, P: p, N1: n1, N2: n2}, nil
}

// normalCDF is the standard normal CDF via erfc.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample (which it copies and sorts).
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: ecdf of empty sample", ErrTooFewSamples)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	// Index of first element > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Points renders the ECDF as n evenly spaced (x, F(x)) pairs spanning
// the sample range — the series the figure reproductions print.
func (e *ECDF) Points(n int) [][2]float64 {
	if n < 2 {
		n = 2
	}
	lo := e.sorted[0]
	hi := e.sorted[len(e.sorted)-1]
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		if i == n-1 {
			x = hi // avoid floating-point rounding below the max
		}
		out[i] = [2]float64{x, e.At(x)}
	}
	return out
}

// Histogram bins values into equal-width bins over [lo, hi]; values
// outside the range clamp into the edge bins. NaN values carry no
// ordering information and float→int conversion of NaN is
// implementation-defined in Go (bin 0 on amd64, unspecified
// elsewhere), so they are never binned; the second return value
// reports how many were skipped.
func Histogram(xs []float64, lo, hi float64, bins int) (counts []int, skipped int, err error) {
	if bins <= 0 {
		return nil, 0, fmt.Errorf("stats: non-positive bin count %d", bins)
	}
	if hi <= lo {
		return nil, 0, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	counts = make([]int, bins)
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		if math.IsNaN(x) {
			skipped++
			continue
		}
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts, skipped, nil
}

// Proportion returns the fraction of xs for which pred holds. NaN for
// empty input.
func Proportion(xs []float64, pred func(float64) bool) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if pred(x) {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
