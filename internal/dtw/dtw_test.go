package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/obstruction"
)

func line(x0, y0, x1, y1 float64, n int) []Point {
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		out[i] = Point{X: x0 + f*(x1-x0), Y: y0 + f*(y1-y0)}
	}
	return out
}

func TestDistanceIdentical(t *testing.T) {
	a := line(0, 0, 10, 10, 20)
	if d := Distance(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestDistanceEmpty(t *testing.T) {
	a := line(0, 0, 1, 1, 5)
	if !math.IsInf(Distance(a, nil), 1) || !math.IsInf(Distance(nil, a), 1) {
		t.Error("empty sequence should give +Inf")
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]Point, 5+rng.Intn(10))
		b := make([]Point, 5+rng.Intn(10))
		for i := range a {
			a[i] = Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		}
		for i := range b {
			b[i] = Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		}
		return math.Abs(Distance(a, b)-Distance(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceNonNegativeAndZeroOnlyForEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]Point, 3+rng.Intn(8))
		for i := range a {
			a[i] = Point{rng.NormFloat64(), rng.NormFloat64()}
		}
		b := append([]Point(nil), a...)
		b[0].X += 5 // clearly different
		return Distance(a, a) == 0 && Distance(a, b) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceHandlesTimeWarp(t *testing.T) {
	// The same path sampled at different rates should match closely,
	// much more closely than a parallel path offset by 5 units.
	path1 := line(0, 0, 10, 0, 10)
	path2 := line(0, 0, 10, 0, 37) // same geometry, finer sampling
	offset := line(0, 5, 10, 5, 10)
	dSame := NormalizedDistance(path1, path2)
	dOff := NormalizedDistance(path1, offset)
	if dSame >= dOff {
		t.Errorf("resampled path (%v) not closer than offset path (%v)", dSame, dOff)
	}
	if dSame > 0.5 {
		t.Errorf("resampled path normalized distance = %v, want near 0", dSame)
	}
}

func TestReverseInsensitive(t *testing.T) {
	a := line(0, 0, 10, 10, 15)
	rev := make([]Point, len(a))
	for i, p := range a {
		rev[len(a)-1-i] = p
	}
	if d := ReverseInsensitiveDistance(a, rev); d > 1e-9 {
		t.Errorf("reverse-insensitive distance to reversed self = %v", d)
	}
}

func TestFromPolarGeometry(t *testing.T) {
	// North at elevation 40 => radius 50 along +Y.
	p := FromPolar(obstruction.PolarPoint{ElevationDeg: 40, AzimuthDeg: 0})
	if math.Abs(p.X) > 1e-9 || math.Abs(p.Y-50) > 1e-9 {
		t.Errorf("north: %+v", p)
	}
	// East => +X.
	p = FromPolar(obstruction.PolarPoint{ElevationDeg: 40, AzimuthDeg: 90})
	if math.Abs(p.X-50) > 1e-9 || math.Abs(p.Y) > 1e-9 {
		t.Errorf("east: %+v", p)
	}
	// Zenith => origin.
	p = FromPolar(obstruction.PolarPoint{ElevationDeg: 90, AzimuthDeg: 123})
	if math.Hypot(p.X, p.Y) > 1e-9 {
		t.Errorf("zenith: %+v", p)
	}
}

func TestRankOrdersByDistance(t *testing.T) {
	obs := line(0, 0, 10, 0, 12)
	cands := []Candidate{
		{ID: 1, Track: line(0, 8, 10, 8, 12)},     // far
		{ID: 2, Track: line(0, 0.5, 10, 0.5, 12)}, // close
		{ID: 3, Track: line(0, 3, 10, 3, 12)},     // middle
	}
	ranked, err := Rank(obs, cands)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].ID != 2 || ranked[1].ID != 3 || ranked[2].ID != 1 {
		t.Errorf("rank order = %v", ranked)
	}
}

func TestRankErrors(t *testing.T) {
	if _, err := Rank(nil, []Candidate{{ID: 1, Track: line(0, 0, 1, 1, 5)}}); err == nil {
		t.Error("expected error for empty observed")
	}
	if _, err := Rank(line(0, 0, 1, 1, 5), nil); err == nil {
		t.Error("expected error for no candidates")
	}
}

func TestIdentifyMargin(t *testing.T) {
	obs := line(0, 0, 10, 0, 12)
	cands := []Candidate{
		{ID: 1, Track: line(0, 0.2, 10, 0.2, 12)},
		{ID: 2, Track: line(0, 9, 10, 9, 12)},
	}
	best, margin, err := Identify(obs, cands)
	if err != nil {
		t.Fatal(err)
	}
	if best.ID != 1 {
		t.Errorf("best = %d", best.ID)
	}
	if margin < 3 {
		t.Errorf("margin = %v, want decisive", margin)
	}
	// Single candidate: margin 0.
	_, margin, err = Identify(obs, cands[:1])
	if err != nil {
		t.Fatal(err)
	}
	if margin != 0 {
		t.Errorf("single-candidate margin = %v", margin)
	}
}

func TestNaiveNearestEndpoint(t *testing.T) {
	obs := line(0, 0, 10, 0, 12)
	cands := []Candidate{
		{ID: 1, Track: line(0, 1, 10, 1, 12)},
		{ID: 2, Track: line(20, 20, 30, 20, 12)},
		{ID: 3, Track: nil},
	}
	m, err := NaiveNearestEndpoint(obs, cands)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 1 {
		t.Errorf("naive best = %d", m.ID)
	}
	if _, err := NaiveNearestEndpoint(obs, []Candidate{{ID: 3}}); err == nil {
		t.Error("expected error when all tracks empty")
	}
}

// TestNaiveWorseOnCrossingTracks demonstrates why DTW is needed: two
// candidates start at the same point but follow different paths.
func TestNaiveWorseOnCrossingTracks(t *testing.T) {
	// Observed follows candidate 1's curve.
	obs := []Point{{0, 0}, {2, 1}, {4, 3}, {6, 6}, {8, 10}}
	c1 := Candidate{ID: 1, Track: []Point{{0, 0}, {2, 1}, {4, 3}, {6, 6}, {8, 10}}}
	c2 := Candidate{ID: 2, Track: []Point{{0, 0}, {2, -1}, {4, -3}, {6, -6}, {8, -10}}}
	best, _, err := Identify(obs, []Candidate{c2, c1})
	if err != nil {
		t.Fatal(err)
	}
	if best.ID != 1 {
		t.Errorf("DTW best = %d, want 1", best.ID)
	}
	// The naive matcher cannot distinguish them (same endpoints origin).
	naive, err := NaiveNearestEndpoint(obs, []Candidate{c2, c1})
	if err != nil {
		t.Fatal(err)
	}
	_ = naive // either answer is acceptable; the point is DTW is decisive.
}

// TestDistanceInvariantsTable pins the degenerate-shape contracts of
// Distance and ReverseInsensitiveDistance: empty tracks are +Inf,
// one-point tracks reduce to summed point distances, and reversing a
// one-point or palindromic track changes nothing.
func TestDistanceInvariantsTable(t *testing.T) {
	p := func(x, y float64) Point { return Point{x, y} }
	cases := []struct {
		name string
		a, b []Point
		want float64 // expected Distance; NaN means "+Inf expected"
	}{
		{"both empty", nil, nil, math.NaN()},
		{"empty a", nil, []Point{p(1, 1)}, math.NaN()},
		{"empty b", []Point{p(1, 1)}, nil, math.NaN()},
		{"single equal", []Point{p(2, 3)}, []Point{p(2, 3)}, 0},
		{"single apart", []Point{p(0, 0)}, []Point{p(3, 4)}, 5},
		// One point vs a track: every track point must match the
		// single point, so the distance is the sum of point distances.
		{"point vs track", []Point{p(0, 0)}, []Point{p(3, 4), p(0, 5), p(6, 8)}, 5 + 5 + 10},
		{"identical tracks", line(0, 0, 9, 9, 7), line(0, 0, 9, 9, 7), 0},
	}
	for _, c := range cases {
		got := Distance(c.a, c.b)
		if math.IsNaN(c.want) {
			if !math.IsInf(got, 1) {
				t.Errorf("%s: Distance = %v, want +Inf", c.name, got)
			}
			if !math.IsInf(ReverseInsensitiveDistance(c.a, c.b), 1) {
				t.Errorf("%s: ReverseInsensitiveDistance not +Inf", c.name)
			}
			continue
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Distance = %v, want %v", c.name, got, c.want)
		}
		// Reversing either input of a <=1-point pair is a no-op, and
		// ReverseInsensitiveDistance can never exceed the normalized
		// forward distance.
		rid := ReverseInsensitiveDistance(c.a, c.b)
		if nd := NormalizedDistance(c.a, c.b); rid > nd {
			t.Errorf("%s: reverse-insensitive %v > forward %v", c.name, rid, nd)
		}
	}
}

// TestReverseInsensitiveSymmetry: reversing the candidate must never
// change the result (bitwise), because the function minimizes over
// both directions.
func TestReverseInsensitiveSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randWalkTrack(rng, 1+rng.Intn(12))
		b := randWalkTrack(rng, 1+rng.Intn(12))
		rb := make([]Point, len(b))
		for i, p := range b {
			rb[len(b)-1-i] = p
		}
		d1 := ReverseInsensitiveDistance(a, b)
		d2 := ReverseInsensitiveDistance(a, rb)
		return math.Float64bits(d1) == math.Float64bits(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDistance50x50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := make([]Point, 50)
	c := make([]Point, 50)
	for i := range a {
		a[i] = Point{rng.NormFloat64() * 30, rng.NormFloat64() * 30}
		c[i] = Point{rng.NormFloat64() * 30, rng.NormFloat64() * 30}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distance(a, c)
	}
}
