package dtw

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzPoints decodes a byte stream into a track of up to maxPts
// points, rejecting non-finite coordinates (the pipeline never
// produces them, and they would make every distance NaN/Inf by
// construction rather than by algorithm).
func fuzzPoints(data []byte, maxPts int) ([]Point, []byte) {
	var out []Point
	for len(data) >= 16 && len(out) < maxPts {
		x := math.Float64frombits(binary.LittleEndian.Uint64(data))
		y := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
		data = data[16:]
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			continue
		}
		// Clamp into the plot disk's magnitude range so sums cannot
		// overflow to +Inf and mask a real invariant violation.
		out = append(out, Point{math.Mod(x, 1e6), math.Mod(y, 1e6)})
	}
	return out, data
}

// FuzzDistanceInvariants checks the metric-style invariants of the
// DTW primitives on arbitrary finite tracks: symmetry, identity,
// non-negativity, normalization, and bitwise reversal insensitivity.
func FuzzDistanceInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(make([]byte, 96))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, rest := fuzzPoints(data, 12)
		b, _ := fuzzPoints(rest, 12)
		if len(a) == 0 || len(b) == 0 {
			return
		}
		if d := Distance(a, a); d != 0 {
			t.Fatalf("Distance(a, a) = %v", d)
		}
		dab, dba := Distance(a, b), Distance(b, a)
		if dab < 0 {
			t.Fatalf("negative distance %v", dab)
		}
		// The recurrence is symmetric up to summation order.
		if diff := math.Abs(dab - dba); diff > 1e-9*(1+math.Abs(dab)) {
			t.Fatalf("asymmetry: %v vs %v", dab, dba)
		}
		if nd := NormalizedDistance(a, b); nd > dab {
			t.Fatalf("normalized %v exceeds raw %v", nd, dab)
		}
		rb := make([]Point, len(b))
		for i, p := range b {
			rb[len(b)-1-i] = p
		}
		d1, d2 := ReverseInsensitiveDistance(a, b), ReverseInsensitiveDistance(a, rb)
		if math.Float64bits(d1) != math.Float64bits(d2) {
			t.Fatalf("reversal changed result: %v vs %v", d1, d2)
		}
	})
}

// FuzzMatcherExactness derives an identification problem from the fuzz
// input and demands the pruned matcher be bit-identical to the brute
// force — winner, distance bits, margin bits, and error presence.
func FuzzMatcherExactness(f *testing.F) {
	f.Add(make([]byte, 200))
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		obs, rest := fuzzPoints(data, 10)
		var cands []Candidate
		for i := 0; len(rest) > 0 && i < 8; i++ {
			var track []Point
			track, rest = fuzzPoints(rest, 6)
			cands = append(cands, Candidate{ID: i + 1, Track: track})
		}
		if len(cands) > 1 { // force an exact tie into most cases
			cands = append(cands, Candidate{ID: len(cands) + 1, Track: cands[0].Track})
		}
		wantBest, wantMargin, wantErr := Identify(obs, cands)
		mt := &Matcher{}
		gotBest, gotMargin, gotErr := mt.Identify(obs, cands)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("err mismatch: brute %v, matcher %v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if gotBest.ID != wantBest.ID ||
			math.Float64bits(gotBest.Distance) != math.Float64bits(wantBest.Distance) ||
			math.Float64bits(gotMargin) != math.Float64bits(wantMargin) {
			t.Fatalf("matcher (%v, %v) != brute (%v, %v)", gotBest, gotMargin, wantBest, wantMargin)
		}
	})
}
