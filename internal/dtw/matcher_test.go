package dtw

import (
	"math"
	"math/rand"
	"testing"
)

// randWalkTrack generates a smooth-ish trajectory: a start point plus
// a correlated walk, which is the shape sky-tracks actually have and
// what gives the lower-bound cascade something to prune.
func randWalkTrack(rng *rand.Rand, n int) []Point {
	out := make([]Point, n)
	p := Point{rng.NormFloat64() * 30, rng.NormFloat64() * 30}
	vx, vy := rng.NormFloat64()*2, rng.NormFloat64()*2
	for i := 0; i < n; i++ {
		out[i] = p
		vx += rng.NormFloat64() * 0.5
		vy += rng.NormFloat64() * 0.5
		p = Point{p.X + vx, p.Y + vy}
	}
	return out
}

// randCase generates one identification problem, deliberately mixing
// in the structural edge cases (empty tracks, exact duplicate tracks,
// candidate identical to the observed track) that exercise the tie and
// error paths.
func randCase(rng *rand.Rand) ([]Point, []Candidate) {
	obs := randWalkTrack(rng, 1+rng.Intn(24))
	k := 1 + rng.Intn(14)
	cands := make([]Candidate, k)
	for i := range cands {
		switch {
		case rng.Float64() < 0.08:
			cands[i] = Candidate{ID: i + 1} // empty track
		case rng.Float64() < 0.08 && i > 0:
			cands[i] = Candidate{ID: i + 1, Track: cands[i-1].Track} // duplicate → exact tie
		case rng.Float64() < 0.08:
			cands[i] = Candidate{ID: i + 1, Track: append([]Point(nil), obs...)} // perfect match
		default:
			cands[i] = Candidate{ID: i + 1, Track: randWalkTrack(rng, 1+rng.Intn(20))}
		}
	}
	return obs, cands
}

// assertIdentical asserts the matcher's outcome is bit-identical to
// the brute force's: same error presence, same winner, same distance
// bits, same margin bits.
func assertIdentical(t *testing.T, tag string, obs []Point, cands []Candidate, mt *Matcher) {
	t.Helper()
	wantBest, wantMargin, wantErr := Identify(obs, cands)
	gotBest, gotMargin, gotErr := mt.Identify(obs, cands)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: brute err = %v, matcher err = %v", tag, wantErr, gotErr)
	}
	if wantErr != nil {
		return
	}
	if gotBest.ID != wantBest.ID {
		t.Fatalf("%s: winner %d != brute %d (got %v want %v)", tag, gotBest.ID, wantBest.ID, gotBest, wantBest)
	}
	if math.Float64bits(gotBest.Distance) != math.Float64bits(wantBest.Distance) {
		t.Fatalf("%s: distance %v != brute %v", tag, gotBest.Distance, wantBest.Distance)
	}
	if math.Float64bits(gotMargin) != math.Float64bits(wantMargin) {
		t.Fatalf("%s: margin %v != brute %v", tag, gotMargin, wantMargin)
	}
	// The winner must also head the brute-force ranking.
	ranked, err := Rank(obs, cands)
	if err != nil {
		t.Fatalf("%s: rank err %v after identify succeeded", tag, err)
	}
	if ranked[0].ID != gotBest.ID {
		t.Fatalf("%s: matcher winner %d != Rank()[0] %d", tag, gotBest.ID, ranked[0].ID)
	}
}

// TestMatcherExactness is the exactness guarantee: across thousands of
// randomized identification problems — including empty tracks, exact
// duplicates, and perfect matches — the pruned matcher must return
// bit-identical winner, distance, and margin to the brute force, while
// one matcher instance is reused for every case (which also proves the
// scratch buffers carry no state between calls).
func TestMatcherExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mt := &Matcher{}
	for i := 0; i < 3000; i++ {
		obs, cands := randCase(rng)
		assertIdentical(t, "case", obs, cands, mt)
	}
	if mt.Stats.KimPruned+mt.Stats.EnvelopePruned+mt.Stats.PassesAbandoned == 0 {
		t.Error("cascade never pruned anything: the exactness test is not exercising the pruned paths")
	}
}

func TestMatcherErrors(t *testing.T) {
	track := randWalkTrack(rand.New(rand.NewSource(1)), 8)
	mt := &Matcher{}
	if _, _, err := mt.Identify(nil, []Candidate{{ID: 1, Track: track}}); err == nil {
		t.Error("empty observed accepted")
	}
	if _, _, err := mt.Identify(track, nil); err == nil {
		t.Error("no candidates accepted")
	}
	// All-empty candidate set: an error, exactly like the fixed brute
	// force — a +Inf "match" is not an identification.
	if _, _, err := mt.Identify(track, []Candidate{{ID: 1}, {ID: 2}}); err == nil {
		t.Error("all-empty candidates accepted")
	}
	if _, _, err := Identify(track, []Candidate{{ID: 1}, {ID: 2}}); err == nil {
		t.Error("brute force accepted all-empty candidates")
	}
	if _, err := Rank(track, []Candidate{{ID: 1}, {ID: 2}}); err == nil {
		t.Error("Rank accepted all-empty candidates")
	}
}

// TestMatcherMarginSemantics pins the three margin regimes on both
// implementations: single candidate → 0, unrankable runner-up → +Inf,
// rankable runner-up → distance difference.
func TestMatcherMarginSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	obs := randWalkTrack(rng, 10)
	near := Candidate{ID: 1, Track: append([]Point(nil), obs...)}
	far := Candidate{ID: 2, Track: randWalkTrack(rng, 10)}
	empty := Candidate{ID: 3}
	for name, identify := range map[string]func([]Point, []Candidate) (Match, float64, error){
		"brute":   Identify,
		"matcher": (&Matcher{}).Identify,
	} {
		_, margin, err := identify(obs, []Candidate{near})
		if err != nil || margin != 0 {
			t.Errorf("%s single candidate: margin=%v err=%v, want 0, nil", name, margin, err)
		}
		_, margin, err = identify(obs, []Candidate{near, empty})
		if err != nil || !math.IsInf(margin, 1) {
			t.Errorf("%s unrankable runner-up: margin=%v err=%v, want +Inf, nil", name, margin, err)
		}
		best, margin, err := identify(obs, []Candidate{far, near, empty})
		if err != nil || best.ID != 1 || math.IsInf(margin, 1) || margin <= 0 {
			t.Errorf("%s rankable runner-up: best=%v margin=%v err=%v", name, best, margin, err)
		}
	}
}

// TestMatcherBandWideIsExact: a band at least as wide as the longer
// track admits every warping path, so the banded matcher must stay
// bit-identical to the brute force.
func TestMatcherBandWideIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	mt := &Matcher{Band: 1000}
	for i := 0; i < 500; i++ {
		obs, cands := randCase(rng)
		assertIdentical(t, "banded", obs, cands, mt)
	}
}

// TestMatcherBandIsRestriction: a narrow band minimizes over fewer
// warping paths, so a banded distance can only be >= the exact one.
func TestMatcherBandIsRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		obs := randWalkTrack(rng, 4+rng.Intn(16))
		cand := Candidate{ID: 1, Track: randWalkTrack(rng, 4+rng.Intn(16))}
		exactBest, _, err := Identify(obs, []Candidate{cand})
		if err != nil {
			t.Fatal(err)
		}
		banded := &Matcher{Band: 1 + rng.Intn(3)}
		gotBest, _, err := banded.Identify(obs, []Candidate{cand})
		if err != nil {
			t.Fatal(err)
		}
		if gotBest.Distance < exactBest.Distance*(1-1e-12) {
			t.Fatalf("banded distance %v below exact %v", gotBest.Distance, exactBest.Distance)
		}
	}
}

// TestMatcherPrunes is the perf contract in miniature: once the
// winner and runner-up are both plausible (small distances), the bar
// is tight and the cascade must prune every distant candidate without
// running their DTW passes. The bar is the runner-up's distance — with
// only one plausible candidate the far ones legitimately compete for
// the margin and must still be scored.
func TestMatcherPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	obs := randWalkTrack(rng, 16)
	near := append([]Point(nil), obs...)
	for j := range near {
		near[j].X += 0.5 // plausible runner-up: tiny offset from the winner
	}
	cands := []Candidate{
		{ID: 1, Track: append([]Point(nil), obs...)},
		{ID: 2, Track: near},
	}
	for i := 3; i <= 30; i++ {
		far := randWalkTrack(rng, 16)
		for j := range far {
			far[j].X += 500 // push the track far off the plot
			far[j].Y -= 500
		}
		cands = append(cands, Candidate{ID: i, Track: far})
	}
	mt := &Matcher{}
	best, margin, err := mt.Identify(obs, cands)
	if err != nil {
		t.Fatal(err)
	}
	if best.ID != 1 || best.Distance != 0 {
		t.Fatalf("best = %+v, want exact match on candidate 1", best)
	}
	if margin <= 0 || margin > 1 {
		t.Fatalf("margin = %v, want the runner-up's small offset", margin)
	}
	pruned := mt.Stats.KimPruned + mt.Stats.EnvelopePruned
	if pruned != 28 {
		t.Errorf("pruned %d of 28 distant candidates (stats %+v)", pruned, mt.Stats)
	}
	if mt.Stats.PassesRun > 4 {
		t.Errorf("%d DTW passes for a 30-candidate slot with two plausible tracks (stats %+v)", mt.Stats.PassesRun, mt.Stats)
	}
}

// benchSlot builds a representative identification problem: nCands
// satellite arcs across the plot disk (radius 65 = the 25-degree
// mask), one of which the observed track noisily follows.
func benchSlot(rng *rand.Rand, nCands, trackLen, obsLen int) ([]Point, []Candidate) {
	arc := func() []Point {
		a0 := rng.Float64() * 2 * math.Pi
		a1 := a0 + math.Pi*(0.5+rng.Float64())
		p0 := Point{65 * math.Cos(a0), 65 * math.Sin(a0)}
		p1 := Point{65 * math.Cos(a1), 65 * math.Sin(a1)}
		out := make([]Point, trackLen)
		for i := range out {
			f := float64(i) / float64(trackLen-1)
			out[i] = Point{p0.X + f*(p1.X-p0.X), p0.Y + f*(p1.Y-p0.Y)}
		}
		return out
	}
	cands := make([]Candidate, nCands)
	for i := range cands {
		cands[i] = Candidate{ID: i + 1, Track: arc()}
	}
	src := cands[rng.Intn(nCands)].Track
	obs := make([]Point, obsLen)
	for j := range obs {
		p := src[j*(trackLen-1)/(obsLen-1)]
		obs[j] = Point{p.X + rng.NormFloat64()*0.5, p.Y + rng.NormFloat64()*0.5}
	}
	return obs, cands
}

// BenchmarkRank is the brute-force baseline on a representative slot
// (~30 candidates, 16-point tracks): every candidate costs two full
// DTW evaluations plus a reversed copy.
func BenchmarkRank(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	obs, cands := benchSlot(rng, 30, 16, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rank(obs, cands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatcherIdentify is the same slot through the pruned
// matcher; compare ns/op against BenchmarkRank for the speedup (the
// results are bit-identical).
func BenchmarkMatcherIdentify(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	obs, cands := benchSlot(rng, 30, 16, 24)
	mt := &Matcher{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mt.Identify(obs, cands); err != nil {
			b.Fatal(err)
		}
	}
}
