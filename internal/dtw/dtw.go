// Package dtw implements dynamic time warping over 2-D point
// sequences and the satellite-identification matcher built on it: the
// isolated obstruction-map trajectory is compared against the
// projected sky-tracks of every candidate satellite, and the candidate
// with the smallest DTW distance is declared the serving satellite
// (paper §4, "Identifying serving satellite").
//
// Positions are converted from polar sky coordinates to Cartesian
// before matching, exactly as the paper notes is required.
package dtw

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obstruction"
	"repro/internal/units"
)

// Point is a 2-D Cartesian position on the polar-plot plane.
type Point struct {
	X, Y float64
}

// FromPolar projects a sky direction onto the plot plane: radius is
// the zenith distance (90° − elevation), angle is the azimuth
// clockwise from north (+Y).
func FromPolar(p obstruction.PolarPoint) Point {
	r := 90 - p.ElevationDeg
	az := units.Deg2Rad(p.AzimuthDeg)
	return Point{X: r * math.Sin(az), Y: r * math.Cos(az)}
}

// FromPolarTrack converts a whole trajectory.
func FromPolarTrack(track []obstruction.PolarPoint) []Point {
	out := make([]Point, len(track))
	for i, p := range track {
		out[i] = FromPolar(p)
	}
	return out
}

func dist(a, b Point) float64 {
	dx := a.X - b.X
	dy := a.Y - b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Distance computes the classic O(len(a)·len(b)) DTW distance with a
// Euclidean point metric and unit step weights. Both sequences must be
// non-empty; it returns +Inf otherwise. The two rolling rows keep the
// computation allocation-light for repeated matching.
func Distance(a, b []Point) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		for j := 1; j <= m; j++ {
			d := dist(a[i-1], b[j-1])
			cur[j] = d + math.Min(prev[j], math.Min(cur[j-1], prev[j-1]))
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// NormalizedDistance divides the DTW distance by the warping-path
// length upper bound (n+m), giving a per-step cost that is comparable
// across trajectories of different lengths.
func NormalizedDistance(a, b []Point) float64 {
	d := Distance(a, b)
	if math.IsInf(d, 1) {
		return d
	}
	return d / float64(len(a)+len(b))
}

// ReverseInsensitiveDistance returns the smaller of the DTW distances
// against b and reversed b. The obstruction-map track recovery orders
// points along the trajectory's principal axis with arbitrary sign, so
// the matcher must accept either direction.
func ReverseInsensitiveDistance(a, b []Point) float64 {
	d1 := NormalizedDistance(a, b)
	rb := make([]Point, len(b))
	for i, p := range b {
		rb[len(b)-1-i] = p
	}
	d2 := NormalizedDistance(a, rb)
	return math.Min(d1, d2)
}

// Candidate pairs an identifier with its projected track.
type Candidate struct {
	ID    int
	Track []Point
}

// Match is a ranked identification outcome.
type Match struct {
	ID       int
	Distance float64
}

// Rank scores every candidate against the observed track and returns
// them sorted by ascending distance. Empty candidate tracks score +Inf
// and rank last; when every candidate track is empty there is nothing
// to rank and Rank returns an error (a +Inf "winner" is not a match).
// The sort is stable, so equal-distance candidates keep their input
// order — this makes the ranking deterministic and is the tie rule the
// pruned Matcher reproduces.
func Rank(observed []Point, cands []Candidate) ([]Match, error) {
	if len(observed) == 0 {
		return nil, fmt.Errorf("dtw: empty observed track")
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("dtw: no candidates")
	}
	out := make([]Match, len(cands))
	allEmpty := true
	for i, c := range cands {
		out[i] = Match{ID: c.ID, Distance: ReverseInsensitiveDistance(observed, c.Track)}
		if !math.IsInf(out[i].Distance, 1) {
			allEmpty = false
		}
	}
	if allEmpty {
		return nil, fmt.Errorf("dtw: all candidate tracks empty")
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out, nil
}

// Identify returns the best match plus the margin to the runner-up.
// A large margin indicates a confident identification; the paper's
// visual validation corresponds to checking that margins are decisive.
// Margin 0 means there was a single candidate, so confidence is
// meaningless; margin +Inf means there were other candidates but none
// of them was rankable (empty tracks), so the winner was unopposed.
func Identify(observed []Point, cands []Candidate) (best Match, margin float64, err error) {
	ranked, err := Rank(observed, cands)
	if err != nil {
		return Match{}, 0, err
	}
	best = ranked[0]
	if len(ranked) > 1 {
		if math.IsInf(ranked[1].Distance, 1) {
			margin = math.Inf(1)
		} else {
			margin = ranked[1].Distance - best.Distance
		}
	}
	return best, margin, nil
}

// NaiveNearestEndpoint is the ablation baseline matcher: it ignores
// trajectory shape and picks the candidate whose first point is
// nearest to the observed track's first point (direction-insensitive).
func NaiveNearestEndpoint(observed []Point, cands []Candidate) (Match, error) {
	if len(observed) == 0 {
		return Match{}, fmt.Errorf("dtw: empty observed track")
	}
	if len(cands) == 0 {
		return Match{}, fmt.Errorf("dtw: no candidates")
	}
	best := Match{Distance: math.Inf(1)}
	for _, c := range cands {
		if len(c.Track) == 0 {
			continue
		}
		d := math.Min(
			math.Min(dist(observed[0], c.Track[0]), dist(observed[0], c.Track[len(c.Track)-1])),
			math.Min(dist(observed[len(observed)-1], c.Track[0]), dist(observed[len(observed)-1], c.Track[len(c.Track)-1])),
		)
		if d < best.Distance {
			best = Match{ID: c.ID, Distance: d}
		}
	}
	if math.IsInf(best.Distance, 1) {
		return Match{}, fmt.Errorf("dtw: all candidate tracks empty")
	}
	return best, nil
}
