package dtw

import (
	"fmt"
	"math"
)

// MatcherStats counts what the pruning cascade did across a matcher's
// lifetime. The counters are diagnostic only; they never influence
// results.
type MatcherStats struct {
	// Candidates is the number of candidate tracks scored.
	Candidates int
	// EmptyTracks counts candidates with no points (distance +Inf by
	// definition, no DTW needed).
	EmptyTracks int
	// KimPruned counts candidates dropped by the O(1) endpoint bound
	// alone.
	KimPruned int
	// EnvelopePruned counts candidates whose drop needed the O(n+m)
	// envelope bound.
	EnvelopePruned int
	// PassesRun counts DTW passes started (up to two per candidate:
	// forward and reversed).
	PassesRun int
	// PassesAbandoned counts started passes cut short by the
	// early-abandoning row check.
	PassesAbandoned int
	// PassesSkipped counts directional passes skipped because that
	// direction's endpoint bound alone cleared the bar.
	PassesSkipped int
	// Cells counts DTW cost-matrix cells actually evaluated — the
	// ground-truth work metric the pruning cascade exists to shrink
	// (a brute-force pass evaluates n×m of them).
	Cells int64
}

// Matcher is a reusable satellite-identification engine that produces
// results bit-identical to the brute-force Identify but prunes most of
// the work. It keeps a best-so-far threshold (the runner-up's
// normalized distance, since both winner and margin must stay exact)
// and runs a lower-bound cascade:
//
//  1. LB_Kim: every warping path matches the two start points and the
//     two end points, so their costs are an O(1) lower bound on the
//     raw DTW distance. Computed for both the forward and the
//     reversed alignment.
//  2. Envelope bound (LB_Keogh degenerate form): unconstrained DTW
//     lets any index pair align, so the per-index Keogh envelope
//     collapses to the whole track's bounding box. Every point of one
//     track is matched against some point of the other on a distinct
//     path cell, so the summed point-to-box distances lower-bound the
//     raw DTW cost in O(n+m). The box is order-invariant, so one
//     envelope — precomputed once per query — serves both the forward
//     and the reversed comparison.
//  3. Bound-ordered scan: candidates are visited in ascending
//     lower-bound order, so the winner and runner-up are found early,
//     the bar tightens immediately, and — the bounds being sorted —
//     the first candidate whose bound exceeds the bar proves every
//     remaining candidate can be dropped in one step.
//  4. Early-abandoning DTW: every warping path crosses every row of
//     the cost matrix, so once a completed row's minimum (normalized
//     by n+m) exceeds the bar, the final distance cannot come back
//     under it and the pass stops. The reversed pass additionally
//     tightens its bar to the forward pass's result, because only the
//     smaller of the two matters; the reversal itself is an O(m) copy
//     into a scratch buffer, never a fresh allocation.
//
// A candidate is pruned only when a proven lower bound strictly
// exceeds the current runner-up distance, and exact-distance ties are
// broken by input position exactly like the stable ranking's tie rule,
// so pruning and reordering can never change which candidate wins, its
// distance, or the margin (see TestMatcherExactness). Scratch buffers
// are reused across candidates and calls; the zero value is ready to
// use. A Matcher is not safe for concurrent use — the campaign engine
// holds one per worker.
type Matcher struct {
	// Band, when > 0, restricts the DTW recurrence to a Sakoe–Chiba
	// band of radius max(Band, |n−m|) around the scaled diagonal (the
	// widening keeps the corner-to-corner path feasible for unequal
	// track lengths). A banded distance is computed over fewer warping
	// paths, so it is >= the unconstrained distance: exact whenever
	// the optimal path stays inside the band — guaranteed for
	// Band >= max(n, m) — and a documented approximation otherwise.
	// Band == 0 (the default, and what the identification pipeline
	// uses) evaluates the full matrix and is always exact.
	Band int
	// Stats accumulates pruning counters across calls.
	Stats MatcherStats
	// Scratch rows for the DTW recurrence, grown on demand.
	prev, cur []float64
	// rev is the scratch buffer for reversed candidate tracks.
	rev []Point
	// order is the scratch slice of per-candidate bounds.
	order []candBound
}

// candBound carries one candidate's precomputed lower bounds through
// the bound-ordered scan. All values are normalized by (n+m) and
// pre-scaled by lbSafety so they compare directly against the bar.
type candBound struct {
	idx        int     // position in the caller's candidate slice
	lb         float64 // overall bound: max(envelope, min(kimF, kimR))
	kimF, kimR float64 // per-direction endpoint bounds
	kimOnly    bool    // the endpoint bound alone equals lb
}

// lbSafety shaves a relative hair off every lower bound before it is
// compared against the bar. The bounds dominate the DTW distance by
// construction in real arithmetic, but both sides are computed in
// floats with different operation orders; the margin makes an
// ulp-level rounding inversion harmless while costing no measurable
// pruning power (the useful slack of a bound is many orders of
// magnitude larger).
const lbSafety = 1 - 1e-12

// Identify scores every candidate against the observed track and
// returns the best match plus the margin to the runner-up, exactly as
// the package-level Identify does (same winner, same distance bits,
// same margin bits, same errors) but with the pruning cascade applied.
func (mt *Matcher) Identify(observed []Point, cands []Candidate) (Match, float64, error) {
	if len(observed) == 0 {
		return Match{}, 0, fmt.Errorf("dtw: empty observed track")
	}
	if len(cands) == 0 {
		return Match{}, 0, fmt.Errorf("dtw: no candidates")
	}
	n := len(observed)
	qlo, qhi := boundingBox(observed) // query envelope, shared by all candidates and both directions

	// Pass 1: O(points) lower bounds for every candidate, kept sorted
	// ascending (insertion sort: the slice is small, the scratch is
	// reused, and stability keeps the scan deterministic).
	mt.order = mt.order[:0]
	for i, c := range cands {
		mt.Stats.Candidates++
		m := len(c.Track)
		if m == 0 {
			mt.Stats.EmptyTracks++
			continue // distance +Inf: never displaces best or runner-up
		}
		nm := float64(n + m)
		kimF := lbKim(observed, c.Track, false) * lbSafety / nm
		kimR := lbKim(observed, c.Track, true) * lbSafety / nm
		kim := math.Min(kimF, kimR)
		clo, chi := boundingBox(c.Track)
		env := math.Max(envelopeSum(c.Track, qlo, qhi), envelopeSum(observed, clo, chi)) * lbSafety / nm
		cb := candBound{idx: i, lb: math.Max(env, kim), kimF: kimF, kimR: kimR, kimOnly: kim >= env}
		j := len(mt.order)
		mt.order = append(mt.order, cb)
		for j > 0 && mt.order[j-1].lb > cb.lb {
			mt.order[j] = mt.order[j-1]
			j--
		}
		mt.order[j] = cb
	}

	// Pass 2: bound-ordered scan with exact top-2 tracking.
	best := Match{Distance: math.Inf(1)}
	bestIdx := -1
	second := math.Inf(1) // exact runner-up distance: the pruning bar
	for oi, cb := range mt.order {
		if cb.lb > second {
			// Bounds are sorted and the bar only tightens: every
			// remaining candidate is proven worse than the runner-up.
			for _, rest := range mt.order[oi:] {
				if rest.kimOnly {
					mt.Stats.KimPruned++
				} else {
					mt.Stats.EnvelopePruned++
				}
			}
			break
		}
		c := cands[cb.idx]
		m := len(c.Track)
		nm := float64(n + m)

		d := math.Inf(1)
		if cb.kimF <= second {
			if raw, ok := mt.abandoningDistance(observed, c.Track, second); ok {
				d = raw / nm
			}
		} else {
			mt.Stats.PassesSkipped++
		}
		// Only the smaller of the two directions matters, so the
		// reversed pass's bar tightens to the forward result.
		bar := math.Min(second, d)
		if cb.kimR <= bar {
			if raw, ok := mt.abandoningDistance(observed, mt.reversed(c.Track), bar); ok {
				if rd := raw / nm; rd < d {
					d = rd
				}
			}
		} else {
			mt.Stats.PassesSkipped++
		}

		// Exact ties go to the earlier input position — the stable
		// ranking's tie rule — so the bound-ordered scan cannot change
		// the winner.
		if d < best.Distance || (d == best.Distance && cb.idx < bestIdx) {
			second = best.Distance
			best = Match{ID: c.ID, Distance: d}
			bestIdx = cb.idx
		} else if d < second {
			second = d
		}
	}
	if math.IsInf(best.Distance, 1) {
		return Match{}, 0, fmt.Errorf("dtw: all candidate tracks empty")
	}
	margin := 0.0
	if len(cands) > 1 {
		if math.IsInf(second, 1) {
			margin = math.Inf(1)
		} else {
			margin = second - best.Distance
		}
	}
	return best, margin, nil
}

// reversed copies track back to front into the matcher's scratch
// buffer (no allocation after the first growth).
func (mt *Matcher) reversed(track []Point) []Point {
	m := len(track)
	if cap(mt.rev) < m {
		mt.rev = make([]Point, m)
	}
	rb := mt.rev[:m]
	for i, p := range track {
		rb[m-1-i] = p
	}
	return rb
}

// lbKim is the O(1) endpoint lower bound on the raw DTW distance:
// every warping path starts by matching the first points and ends by
// matching the last points, so those two cell costs are unavoidable.
// When both tracks are single points the start and end cells coincide
// and are counted once. rev aligns the candidate back to front.
func lbKim(a, b []Point, rev bool) float64 {
	n, m := len(a), len(b)
	b0, bLast := b[0], b[m-1]
	if rev {
		b0, bLast = bLast, b0
	}
	if n == 1 && m == 1 {
		return dist(a[0], b0)
	}
	return dist(a[0], b0) + dist(a[n-1], bLast)
}

// boundingBox returns the axis-aligned bounding box of a track — the
// degenerate Keogh envelope of unconstrained DTW, where the warping
// window spans the whole sequence.
func boundingBox(pts []Point) (lo, hi Point) {
	lo, hi = pts[0], pts[0]
	for _, p := range pts[1:] {
		if p.X < lo.X {
			lo.X = p.X
		} else if p.X > hi.X {
			hi.X = p.X
		}
		if p.Y < lo.Y {
			lo.Y = p.Y
		} else if p.Y > hi.Y {
			hi.Y = p.Y
		}
	}
	return lo, hi
}

// envelopeSum lower-bounds the raw DTW distance: a warping path covers
// every index of pts, each on a distinct cell, and no match can cost
// less than the distance from the point to the other track's bounding
// box. Order-invariant, so it holds for the reversed alignment too.
func envelopeSum(pts []Point, lo, hi Point) float64 {
	s := 0.0
	for _, p := range pts {
		var dx, dy float64
		if p.X < lo.X {
			dx = lo.X - p.X
		} else if p.X > hi.X {
			dx = p.X - hi.X
		}
		if p.Y < lo.Y {
			dy = lo.Y - p.Y
		} else if p.Y > hi.Y {
			dy = p.Y - hi.Y
		}
		s += math.Sqrt(dx*dx + dy*dy)
	}
	return s
}

// abandoningDistance runs the DTW recurrence of Distance over a and b,
// reusing the matcher's scratch rows. It abandons as soon as a
// completed row's minimum, normalized by len(a)+len(b), exceeds bar:
// every warping path crosses every row and step costs are
// non-negative, so the final distance cannot drop back under the bar
// (this holds in float arithmetic too — the accumulation is monotone).
// The returned bool is false when the pass was abandoned.
//
// With Band == 0 the inner loop performs operation-for-operation the
// same arithmetic as Distance, so a completed pass is bit-identical to
// the brute force. With Band > 0 the recurrence is restricted to a
// Sakoe–Chiba band (see the Band field for its exactness contract).
func (mt *Matcher) abandoningDistance(a, b []Point, bar float64) (raw float64, ok bool) {
	n, m := len(a), len(b)
	if cap(mt.prev) < m+1 {
		mt.prev = make([]float64, m+1)
		mt.cur = make([]float64, m+1)
	}
	prev, cur := mt.prev[:m+1], mt.cur[:m+1]
	inf := math.Inf(1)
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = inf
	}
	radius := 0
	if mt.Band > 0 {
		radius = mt.Band
		if d := n - m; d > radius {
			radius = d
		} else if -d > radius {
			radius = -d
		}
	}
	nm := float64(n + m)
	mt.Stats.PassesRun++
	for i := 1; i <= n; i++ {
		lo, hi := 1, m
		if radius > 0 {
			center := 1
			if n > 1 {
				center = 1 + (i-1)*(m-1)/(n-1)
			}
			if c := center - radius; c > lo {
				lo = c
			}
			if c := center + radius; c < hi {
				hi = c
			}
			cur[lo-1] = inf // the in-band recurrence must not see a stale cell
		}
		cur[0] = inf
		rowMin := inf
		mt.Stats.Cells += int64(hi - lo + 1)
		for j := lo; j <= hi; j++ {
			d := dist(a[i-1], b[j-1])
			v := d + math.Min(prev[j], math.Min(cur[j-1], prev[j-1]))
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		for j := hi + 1; j <= m; j++ {
			cur[j] = inf // out-of-band cells must not leak into the next row
		}
		if rowMin/nm > bar {
			mt.Stats.PassesAbandoned++
			return 0, false
		}
		prev, cur = cur, prev
	}
	mt.prev, mt.cur = prev, cur
	return prev[m], true
}
