package dtw

import "repro/internal/telemetry"

// Metrics is the matcher's telemetry bundle: one counter per
// MatcherStats field, pre-resolved at wiring time. Matchers are
// single-goroutine engines, so they accumulate into their local Stats
// on the hot path and the owner folds the totals in with AddStats —
// typically once per worker at exit — keeping the identification loop
// free of atomics.
type Metrics struct {
	Candidates      *telemetry.Counter
	EmptyTracks     *telemetry.Counter
	KimPruned       *telemetry.Counter
	EnvelopePruned  *telemetry.Counter
	PassesRun       *telemetry.Counter
	PassesAbandoned *telemetry.Counter
	PassesSkipped   *telemetry.Counter
	Cells           *telemetry.Counter
}

// NewMetrics registers the matcher counters. Returns nil on a nil
// registry (telemetry disabled); AddStats on a nil bundle is a no-op.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Candidates:      reg.Counter("dtw_candidates_total", "candidate tracks scored by the matcher"),
		EmptyTracks:     reg.Counter("dtw_empty_tracks_total", "candidates with no points (distance +Inf, no DTW)"),
		KimPruned:       reg.Counter("dtw_kim_pruned_total", "candidates dropped by the O(1) endpoint bound alone"),
		EnvelopePruned:  reg.Counter("dtw_envelope_pruned_total", "candidates whose drop needed the envelope bound"),
		PassesRun:       reg.Counter("dtw_passes_run_total", "DTW passes started (up to two per candidate)"),
		PassesAbandoned: reg.Counter("dtw_passes_abandoned_total", "started passes cut short by the early-abandon row check"),
		PassesSkipped:   reg.Counter("dtw_passes_skipped_total", "directional passes skipped by the per-direction endpoint bound"),
		Cells:           reg.Counter("dtw_cells_total", "DTW cost-matrix cells evaluated"),
	}
}

// AddStats folds one matcher's lifetime counters into the registry.
// Safe for concurrent use (counters are atomic) and on a nil bundle.
func (m *Metrics) AddStats(s MatcherStats) {
	if m == nil {
		return
	}
	m.Candidates.Add(int64(s.Candidates))
	m.EmptyTracks.Add(int64(s.EmptyTracks))
	m.KimPruned.Add(int64(s.KimPruned))
	m.EnvelopePruned.Add(int64(s.EnvelopePruned))
	m.PassesRun.Add(int64(s.PassesRun))
	m.PassesAbandoned.Add(int64(s.PassesAbandoned))
	m.PassesSkipped.Add(int64(s.PassesSkipped))
	m.Cells.Add(s.Cells)
}
