package obstruction

import (
	"bytes"
	"image"
	"image/png"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestPixelSkyRoundTrip(t *testing.T) {
	for el := 26.0; el <= 89; el += 7 {
		for az := 0.0; az < 360; az += 13 {
			x, y, ok := pixelOf(PolarPoint{ElevationDeg: el, AzimuthDeg: az})
			if !ok {
				t.Fatalf("pixelOf(%v,%v) not ok", el, az)
			}
			sky, ok := SkyOf(x, y)
			if !ok {
				t.Fatalf("SkyOf(%d,%d) not ok", x, y)
			}
			// One pixel of quantization ~ (65/45) deg elevation; azimuth
			// error grows toward the center.
			if math.Abs(sky.ElevationDeg-el) > 2.5 {
				t.Errorf("el %v -> %v", el, sky.ElevationDeg)
			}
			r := (90 - el) / 65 * PlotRadius
			azTol := units.Rad2Deg(1.5 / math.Max(r, 1))
			if d := units.AngularDistDeg(sky.AzimuthDeg, az); d > math.Max(azTol, 2) {
				t.Errorf("el %v az %v -> %v (tol %v)", el, az, sky.AzimuthDeg, azTol)
			}
		}
	}
}

func TestPixelOfDirections(t *testing.T) {
	// Zenith at the center.
	x, y, ok := pixelOf(PolarPoint{ElevationDeg: 90, AzimuthDeg: 0})
	if !ok || x != center || y != center {
		t.Errorf("zenith at (%d,%d)", x, y)
	}
	// North at the rim is straight up the image.
	x, y, ok = pixelOf(PolarPoint{ElevationDeg: 25, AzimuthDeg: 0})
	if !ok || x != center || y != center-PlotRadius {
		t.Errorf("north rim at (%d,%d)", x, y)
	}
	// East at the rim is to the right.
	x, y, ok = pixelOf(PolarPoint{ElevationDeg: 25, AzimuthDeg: 90})
	if !ok || x != center+PlotRadius || y != center {
		t.Errorf("east rim at (%d,%d)", x, y)
	}
	// South: down. West: left.
	x, y, _ = pixelOf(PolarPoint{ElevationDeg: 25, AzimuthDeg: 180})
	if x != center || y != center+PlotRadius {
		t.Errorf("south rim at (%d,%d)", x, y)
	}
	x, y, _ = pixelOf(PolarPoint{ElevationDeg: 25, AzimuthDeg: 270})
	if x != center-PlotRadius || y != center {
		t.Errorf("west rim at (%d,%d)", x, y)
	}
	// Below the mask: not painted.
	if _, _, ok := pixelOf(PolarPoint{ElevationDeg: 20, AzimuthDeg: 0}); ok {
		t.Error("below-mask direction mapped to a pixel")
	}
}

func TestPaintTrackContinuity(t *testing.T) {
	m := New()
	// A sparse arc across the sky: segments must be connected.
	m.PaintTrack([]PolarPoint{
		{ElevationDeg: 30, AzimuthDeg: 300},
		{ElevationDeg: 60, AzimuthDeg: 330},
		{ElevationDeg: 80, AzimuthDeg: 30},
		{ElevationDeg: 55, AzimuthDeg: 70},
	})
	if m.Count() < 30 {
		t.Errorf("track painted only %d pixels; segments not connected?", m.Count())
	}
	// Connectivity: every painted pixel has a painted 8-neighbour
	// (a 1-px line is 8-connected).
	for _, p := range m.Pixels() {
		if m.Count() == 1 {
			break
		}
		found := false
		for dy := -1; dy <= 1 && !found; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				if m.At(p[0]+dx, p[1]+dy) {
					found = true
					break
				}
			}
		}
		if !found {
			t.Fatalf("isolated pixel at %v", p)
		}
	}
}

func TestXORIsolatesNewTrack(t *testing.T) {
	prev := New()
	prev.PaintTrack([]PolarPoint{{ElevationDeg: 40, AzimuthDeg: 10}, {ElevationDeg: 70, AzimuthDeg: 40}})

	cur := prev.Clone()
	newTrack := []PolarPoint{{ElevationDeg: 35, AzimuthDeg: 200}, {ElevationDeg: 60, AzimuthDeg: 240}}
	cur.PaintTrack(newTrack)

	diff := XOR(prev, cur)
	// The isolated pixels must be exactly the ones painted by newTrack.
	want := New()
	want.PaintTrack(newTrack)
	if !diff.Equal(want) {
		t.Error("XOR did not isolate the new trajectory")
	}
}

func TestXORSelfIsEmpty(t *testing.T) {
	m := New()
	m.PaintTrack([]PolarPoint{{ElevationDeg: 40, AzimuthDeg: 10}, {ElevationDeg: 70, AzimuthDeg: 40}})
	if XOR(m, m).Count() != 0 {
		t.Error("XOR with self not empty")
	}
}

func TestXORPropertySymmetric(t *testing.T) {
	f := func(seeds [8]uint8) bool {
		rng := rand.New(rand.NewSource(int64(seeds[0])))
		a, b := New(), New()
		for i := 0; i < 50; i++ {
			a.Set(rng.Intn(Size), rng.Intn(Size))
			b.Set(rng.Intn(Size), rng.Intn(Size))
		}
		return XOR(a, b).Equal(XOR(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnion(t *testing.T) {
	a, b := New(), New()
	a.Set(1, 1)
	b.Set(2, 2)
	u := Union(a, b)
	if !u.At(1, 1) || !u.At(2, 2) || u.Count() != 2 {
		t.Error("union wrong")
	}
}

func TestTrackOrdering(t *testing.T) {
	// Paint a straight-ish arc and verify Track returns points in
	// along-track order (monotone elevation for this arc).
	m := New()
	var pts []PolarPoint
	for i := 0; i <= 20; i++ {
		pts = append(pts, PolarPoint{
			ElevationDeg: 30 + float64(i)*2.5,
			AzimuthDeg:   45,
		})
	}
	m.PaintTrack(pts)
	got := m.Track()
	if len(got) < 10 {
		t.Fatalf("track too short: %d", len(got))
	}
	// Elevation along the ordered track must be monotone (either
	// direction, as PCA axis sign is arbitrary).
	inc, dec := 0, 0
	for i := 1; i < len(got); i++ {
		if got[i].ElevationDeg > got[i-1].ElevationDeg {
			inc++
		} else if got[i].ElevationDeg < got[i-1].ElevationDeg {
			dec++
		}
	}
	if inc > 0 && dec > 0 && min(inc, dec) > len(got)/10 {
		t.Errorf("track order not monotone: %d up, %d down", inc, dec)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRecoverParams(t *testing.T) {
	// Fill the full plot disk (two days of tracks) and recover.
	m := New()
	for el := 25.0; el <= 90; el += 0.5 {
		for az := 0.0; az < 360; az += 0.5 {
			m.PaintPoint(PolarPoint{ElevationDeg: el, AzimuthDeg: az})
		}
	}
	p, err := RecoverParams(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.CenterX-center) > 1 || math.Abs(p.CenterY-center) > 1 {
		t.Errorf("recovered center (%v,%v), want (%d,%d)", p.CenterX, p.CenterY, center, center)
	}
	if math.Abs(p.RadiusPx-PlotRadius) > 1 {
		t.Errorf("recovered radius %v, want %d", p.RadiusPx, PlotRadius)
	}
}

func TestRecoverParamsEmpty(t *testing.T) {
	if _, err := RecoverParams(New()); err == nil {
		t.Error("expected error on empty map")
	}
}

func TestPNGRoundTrip(t *testing.T) {
	m := New()
	m.PaintTrack([]PolarPoint{
		{ElevationDeg: 30, AzimuthDeg: 100},
		{ElevationDeg: 80, AzimuthDeg: 150},
	})
	var buf bytes.Buffer
	if err := m.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Error("PNG round trip lost pixels")
	}
}

func TestDecodePNGWrongSize(t *testing.T) {
	var buf bytes.Buffer
	small := image.NewGray(image.Rect(0, 0, 64, 64))
	if err := png.Encode(&buf, small); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePNG(&buf); err == nil {
		t.Error("expected size error")
	}
	if _, err := DecodePNG(bytes.NewReader([]byte("not a png"))); err == nil {
		t.Error("expected decode error")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := New()
	for i := 0; i < 400; i++ {
		m.Set(rng.Intn(Size), rng.Intn(Size))
	}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back := New()
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Error("binary round trip mismatch")
	}
	if err := back.UnmarshalBinary(data[:10]); err == nil {
		t.Error("expected length error")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New()
	a.Set(5, 5)
	b := a.Clone()
	b.Set(6, 6)
	if a.At(6, 6) {
		t.Error("clone shares storage")
	}
	if !b.At(5, 5) {
		t.Error("clone missing original pixel")
	}
}

func TestResetClears(t *testing.T) {
	m := New()
	m.Set(3, 3)
	m.Reset()
	if m.Count() != 0 {
		t.Error("reset did not clear")
	}
}

func TestSetOutOfRangeIgnored(t *testing.T) {
	m := New()
	m.Set(-1, 5)
	m.Set(5, Size)
	if m.Count() != 0 {
		t.Error("out-of-range set painted something")
	}
	if m.At(-1, 0) || m.At(0, Size) {
		t.Error("out-of-range At returned true")
	}
}
