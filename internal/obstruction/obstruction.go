// Package obstruction implements the Starlink dish obstruction map:
// a 123×123 1-bit image on which the terminal paints the sky-track of
// every satellite it has connected to since its last reset. The image
// is a polar plot — the radius encodes angle of elevation from 90° at
// the center to 25° at the rim (45 px out), and the angle encodes
// azimuth clockwise from north.
//
// The paper's §4 methodology lives here: painting tracks with
// overwrite-until-reset semantics, XOR-ing consecutive snapshots to
// isolate the newest trajectory, recovering the plot parameters from a
// filled map (bounding-box method), and converting pixels back to
// (elevation, azimuth) pairs.
package obstruction

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"sort"

	"repro/internal/units"
)

// Geometry of the gRPC obstruction map, as recovered in the paper.
const (
	// Size is the image width and height in pixels.
	Size = 123
	// PlotRadius is the radius of the contained polar plot in pixels.
	PlotRadius = 45
	// MaxElevDeg is the elevation at the plot center.
	MaxElevDeg = 90
	// MinElevDeg is the elevation at the plot rim (the terminal's
	// visibility mask).
	MinElevDeg = 25
)

// center of the polar plot, 0-indexed. The paper reports the center as
// 62×62 counting pixels from 1; 0-indexed that is (61, 61).
const center = (Size - 1) / 2

// Map is one obstruction map snapshot. Pixels are addressed [y][x]
// with y growing downward (image convention); north is up.
type Map struct {
	pix [Size * Size]bool
}

// New returns an empty map (fresh after terminal reset).
func New() *Map { return &Map{} }

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	out := &Map{}
	out.pix = m.pix
	return out
}

// Reset clears every pixel, as a terminal reboot does.
func (m *Map) Reset() { m.pix = [Size * Size]bool{} }

// At reports whether pixel (x, y) is set. Out-of-range is false.
func (m *Map) At(x, y int) bool {
	if x < 0 || x >= Size || y < 0 || y >= Size {
		return false
	}
	return m.pix[y*Size+x]
}

// Set marks pixel (x, y). Out-of-range is ignored.
func (m *Map) Set(x, y int) {
	if x < 0 || x >= Size || y < 0 || y >= Size {
		return
	}
	m.pix[y*Size+x] = true
}

// Count returns the number of set pixels.
func (m *Map) Count() int {
	n := 0
	for _, p := range m.pix {
		if p {
			n++
		}
	}
	return n
}

// Equal reports pixel-exact equality.
func (m *Map) Equal(o *Map) bool { return m.pix == o.pix }

// PolarPoint is a sky direction in terminal-topocentric coordinates.
type PolarPoint struct {
	ElevationDeg float64
	AzimuthDeg   float64
}

// pixelOf converts a sky direction to image coordinates. ok is false
// when the direction is outside the plot (below the mask).
func pixelOf(p PolarPoint) (x, y int, ok bool) {
	if p.ElevationDeg < MinElevDeg || p.ElevationDeg > MaxElevDeg {
		return 0, 0, false
	}
	r := (MaxElevDeg - p.ElevationDeg) / (MaxElevDeg - MinElevDeg) * PlotRadius
	az := units.Deg2Rad(p.AzimuthDeg)
	fx := float64(center) + r*math.Sin(az)
	fy := float64(center) - r*math.Cos(az)
	return int(math.Round(fx)), int(math.Round(fy)), true
}

// SkyOf converts a pixel back to a sky direction; ok is false for
// pixels outside the plot disk.
func SkyOf(x, y int) (PolarPoint, bool) {
	dx := float64(x - center)
	dy := float64(y - center)
	r := math.Hypot(dx, dy)
	if r > PlotRadius+0.5 {
		return PolarPoint{}, false
	}
	el := MaxElevDeg - r/PlotRadius*(MaxElevDeg-MinElevDeg)
	az := units.Rad2Deg(math.Atan2(dx, -dy))
	return PolarPoint{ElevationDeg: el, AzimuthDeg: units.WrapDeg360(az)}, true
}

// PaintPoint marks the pixel under a sky direction (no-op below the
// mask).
func (m *Map) PaintPoint(p PolarPoint) {
	if x, y, ok := pixelOf(p); ok {
		m.Set(x, y)
	}
}

// PaintTrack paints a polyline through consecutive sky samples,
// connecting them with Bresenham segments so a sampled trajectory
// appears as the continuous stroke the dish records.
func (m *Map) PaintTrack(points []PolarPoint) {
	var prevX, prevY int
	havePrev := false
	for _, p := range points {
		x, y, ok := pixelOf(p)
		if !ok {
			havePrev = false
			continue
		}
		if havePrev {
			m.line(prevX, prevY, x, y)
		} else {
			m.Set(x, y)
		}
		prevX, prevY = x, y
		havePrev = true
	}
}

// line draws with the classic integer Bresenham algorithm.
func (m *Map) line(x0, y0, x1, y1 int) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		m.Set(x0, y0)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// XOR returns the symmetric difference of two snapshots. Because the
// dish only ever adds pixels between resets, XOR(prev, cur) isolates
// exactly the pixels painted since prev — the trajectory of the
// satellite serving the terminal in the newest slot (paper Fig. 3d).
func XOR(prev, cur *Map) *Map {
	out := &Map{}
	for i := range out.pix {
		out.pix[i] = prev.pix[i] != cur.pix[i]
	}
	return out
}

// Union returns the overlay of two snapshots.
func Union(a, b *Map) *Map {
	out := &Map{}
	for i := range out.pix {
		out.pix[i] = a.pix[i] || b.pix[i]
	}
	return out
}

// Pixels returns the coordinates of all set pixels in scan order.
func (m *Map) Pixels() [][2]int {
	var out [][2]int
	for y := 0; y < Size; y++ {
		for x := 0; x < Size; x++ {
			if m.pix[y*Size+x] {
				out = append(out, [2]int{x, y})
			}
		}
	}
	return out
}

// Track converts the set pixels to sky directions ordered along the
// trajectory. Pixel sets are unordered, so the points are sorted by
// their projection onto the principal axis of the point cloud, which
// recovers the along-track order for the short, nearly straight arcs
// a 15-second slot paints.
func (m *Map) Track() []PolarPoint {
	px := m.Pixels()
	if len(px) == 0 {
		return nil
	}
	// Principal axis via the 2x2 covariance eigenvector.
	var mx, my float64
	for _, p := range px {
		mx += float64(p[0])
		my += float64(p[1])
	}
	n := float64(len(px))
	mx /= n
	my /= n
	var sxx, sxy, syy float64
	for _, p := range px {
		dx := float64(p[0]) - mx
		dy := float64(p[1]) - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	// Leading eigenvector of [[sxx sxy][sxy syy]].
	theta := 0.5 * math.Atan2(2*sxy, sxx-syy)
	ux, uy := math.Cos(theta), math.Sin(theta)

	type proj struct {
		t float64
		p [2]int
	}
	ps := make([]proj, len(px))
	for i, p := range px {
		ps[i] = proj{
			t: (float64(p[0])-mx)*ux + (float64(p[1])-my)*uy,
			p: p,
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].t < ps[j].t })

	out := make([]PolarPoint, 0, len(ps))
	for _, pr := range ps {
		if sky, ok := SkyOf(pr.p[0], pr.p[1]); ok {
			out = append(out, sky)
		}
	}
	return out
}

// Params are the polar-plot parameters recovered from a filled map —
// the quantities the paper derives by leaving a terminal up for two
// days (§4, "Uncovering gRPC obstruction map parameters").
type Params struct {
	CenterX, CenterY float64
	RadiusPx         float64
}

// RecoverParams estimates the plot center and radius from the bounding
// box of the set pixels. On a map whose sky coverage has filled the
// plot disk, the bounding box edges touch the disk, so its center and
// half-extent recover the plot geometry.
func RecoverParams(m *Map) (Params, error) {
	minX, minY := Size, Size
	maxX, maxY := -1, -1
	for y := 0; y < Size; y++ {
		for x := 0; x < Size; x++ {
			if m.pix[y*Size+x] {
				if x < minX {
					minX = x
				}
				if x > maxX {
					maxX = x
				}
				if y < minY {
					minY = y
				}
				if y > maxY {
					maxY = y
				}
			}
		}
	}
	if maxX < 0 {
		return Params{}, fmt.Errorf("obstruction: empty map")
	}
	return Params{
		CenterX:  float64(minX+maxX) / 2,
		CenterY:  float64(minY+maxY) / 2,
		RadiusPx: (float64(maxX-minX) + float64(maxY-minY)) / 4,
	}, nil
}

// Image renders the map as a grayscale image (white = painted), the
// same rendering the dish returns over gRPC.
func (m *Map) Image() *image.Gray {
	img := image.NewGray(image.Rect(0, 0, Size, Size))
	for y := 0; y < Size; y++ {
		for x := 0; x < Size; x++ {
			if m.pix[y*Size+x] {
				img.SetGray(x, y, color.Gray{Y: 255})
			}
		}
	}
	return img
}

// EncodePNG writes the map as a PNG.
func (m *Map) EncodePNG(w io.Writer) error {
	if err := png.Encode(w, m.Image()); err != nil {
		return fmt.Errorf("obstruction: encode png: %w", err)
	}
	return nil
}

// DecodePNG reads a map from PNG data produced by EncodePNG (or any
// image of the right size; pixels with luma >= 128 count as painted).
func DecodePNG(r io.Reader) (*Map, error) {
	img, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("obstruction: decode png: %w", err)
	}
	b := img.Bounds()
	if b.Dx() != Size || b.Dy() != Size {
		return nil, fmt.Errorf("obstruction: image is %dx%d, want %dx%d", b.Dx(), b.Dy(), Size, Size)
	}
	m := New()
	for y := 0; y < Size; y++ {
		for x := 0; x < Size; x++ {
			c := color.GrayModel.Convert(img.At(b.Min.X+x, b.Min.Y+y)).(color.Gray)
			if c.Y >= 128 {
				m.Set(x, y)
			}
		}
	}
	return m, nil
}

// MarshalBinary implements a compact 1-bit wire encoding used by the
// dishrpc protocol.
func (m *Map) MarshalBinary() ([]byte, error) {
	out := make([]byte, (Size*Size+7)/8)
	for i, p := range m.pix {
		if p {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out, nil
}

// UnmarshalBinary decodes the MarshalBinary format.
func (m *Map) UnmarshalBinary(data []byte) error {
	want := (Size*Size + 7) / 8
	if len(data) != want {
		return fmt.Errorf("obstruction: binary map is %d bytes, want %d", len(data), want)
	}
	for i := range m.pix {
		m.pix[i] = data[i/8]&(1<<(i%8)) != 0
	}
	return nil
}

// String renders a debug view (rows of '.' and '#'), useful in test
// failures. Kept small: every second pixel.
func (m *Map) String() string {
	var buf bytes.Buffer
	for y := 0; y < Size; y += 2 {
		for x := 0; x < Size; x += 2 {
			if m.At(x, y) || m.At(x+1, y) || m.At(x, y+1) || m.At(x+1, y+1) {
				buf.WriteByte('#')
			} else {
				buf.WriteByte('.')
			}
		}
		buf.WriteByte('\n')
	}
	return buf.String()
}
