package obstruction

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalBinary checks the compact wire decoder against
// arbitrary input: never panic, and accepted payloads must round-trip.
func FuzzUnmarshalBinary(f *testing.F) {
	m := New()
	m.PaintTrack([]PolarPoint{{ElevationDeg: 40, AzimuthDeg: 10}, {ElevationDeg: 70, AzimuthDeg: 90}})
	raw, _ := m.MarshalBinary()
	f.Add(raw)
	f.Add([]byte{})
	f.Add(make([]byte, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		got := New()
		if err := got.UnmarshalBinary(data); err != nil {
			return
		}
		back, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("accepted payload did not round-trip")
		}
	})
}

// FuzzDecodePNG checks the PNG path tolerates arbitrary bytes.
func FuzzDecodePNG(f *testing.F) {
	var buf bytes.Buffer
	m := New()
	m.Set(10, 10)
	m.EncodePNG(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("not a png"))
	f.Fuzz(func(t *testing.T, data []byte) {
		DecodePNG(bytes.NewReader(data)) // must not panic
	})
}
