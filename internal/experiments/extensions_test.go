package experiments

import "testing"

func TestHemisphereComparison(t *testing.T) {
	e, _ := smallEnv(t)
	res, err := e.HemisphereComparison(150)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Northern) == 0 || len(res.Southern) == 0 {
		t.Fatalf("sites: %d northern, %d southern", len(res.Northern), len(res.Southern))
	}
	// Relative to what the sky offers, unobstructed northern (>40N)
	// sites skew their picks north (New York's NW tree mask suppresses
	// its skew, as the paper found for Ithaca).
	for _, s := range res.Northern {
		if s.Terminal == "New York" {
			continue
		}
		if s.NorthSkew() <= 0 {
			t.Errorf("%s (lat %.0f): north skew %.2f (picked %.2f vs available %.2f), want positive",
				s.Terminal, s.LatDeg, s.NorthSkew(), s.NorthFrac, s.AvailNorthFrac)
		}
	}
	// The mid-latitude southern site mirrors the preference: the GSO
	// belt is in its northern sky, so picks skew south. (Punta Arenas,
	// at the 53°-shell coverage edge, is dominated by the elevation
	// preference — nearly all high-elevation satellites there culminate
	// north of the site — so it carries no directional assertion; the
	// equatorial site sees the belt near zenith and shows no skew.)
	for _, s := range res.Southern {
		switch s.Terminal {
		case "Sydney":
			if s.NorthSkew() >= 0 {
				t.Errorf("Sydney: north skew %.2f (picked %.2f vs available %.2f), want negative (belt is north)",
					s.NorthSkew(), s.NorthFrac, s.AvailNorthFrac)
			}
		case "Quito":
			if s.NorthSkew() > 0.15 || s.NorthSkew() < -0.15 {
				t.Errorf("Quito: |north skew| = %.2f, want ~0 at the equator", s.NorthSkew())
			}
		}
	}
}

func TestGSOAblation(t *testing.T) {
	e, _ := smallEnv(t)
	res, err := e.GSOAblation(120)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots == 0 {
		t.Fatal("no slots analyzed")
	}
	// Removing the exclusion zone must not increase the north skew.
	if res.NorthFracWithoutGSO > res.NorthFracWithGSO {
		t.Errorf("north fraction rose without GSO: %.2f -> %.2f",
			res.NorthFracWithGSO, res.NorthFracWithoutGSO)
	}
}

func TestLoadSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("model training is slow")
	}
	e, _ := smallEnv(t)
	res, err := e.LoadSensitivity(250)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == 0 {
		t.Fatal("no rows")
	}
	// The paper's hypothesis: the unobservable terms bound model
	// accuracy. Removing load alone may be inside evaluation noise, but
	// the fully deterministic scheduler must be clearly easier to
	// predict.
	if res.WithoutHiddenLoad < res.WithHiddenLoad-0.05 {
		t.Errorf("accuracy without hidden load (%.2f) below with (%.2f)",
			res.WithoutHiddenLoad, res.WithHiddenLoad)
	}
	if res.Deterministic < res.WithHiddenLoad-0.02 {
		t.Errorf("deterministic-scheduler top-5 (%.2f) below default (%.2f)",
			res.Deterministic, res.WithHiddenLoad)
	}
	// Top-1 is where determinism must show: identical features now map
	// to one deterministic choice.
	if res.DeterministicTop1 < res.WithHiddenLoadTop1+0.03 {
		t.Errorf("deterministic-scheduler top-1 (%.2f) not clearly above default (%.2f)",
			res.DeterministicTop1, res.WithHiddenLoadTop1)
	}
}

func TestHandoverAnalysis(t *testing.T) {
	e, _ := smallEnv(t)
	res, err := e.HandoverAnalysis("Iowa", 4*60*1e9) // 4 minutes
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes < 1000 {
		t.Fatalf("only %d probes", res.Probes)
	}
	if len(res.LossByOffset) != 60 {
		t.Fatalf("%d bins", len(res.LossByOffset))
	}
	if res.EarlyLoss <= res.SteadyLoss {
		t.Errorf("early loss %.3f not above steady %.3f", res.EarlyLoss, res.SteadyLoss)
	}
	if _, err := e.HandoverAnalysis("Atlantis", 0); err == nil {
		t.Error("unknown terminal accepted")
	}
}

// TestMotionVsReallocation validates the paper's §3 argument
// quantitatively: reallocation jumps dominate within-slot motion
// drift.
func TestMotionVsReallocation(t *testing.T) {
	e, _ := smallEnv(t)
	res, err := e.MotionVsReallocation("Iowa", 160)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots < 50 || res.Handovers < 5 {
		t.Skipf("too few samples: %d slots, %d handovers", res.Slots, res.Handovers)
	}
	// Within 15 s a LEO satellite's range to a fixed pair of ground
	// points changes slowly: the propagation-RTT drift should be well
	// under a millisecond.
	if res.MedianMotionDriftMs > 1.0 {
		t.Errorf("median motion drift = %v ms, expected < 1", res.MedianMotionDriftMs)
	}
	// Reallocation must dominate motion by a clear factor.
	if res.Ratio < 3 {
		t.Errorf("realloc/motion ratio = %v, want >> 1 (paper's §3 argument)", res.Ratio)
	}
	if _, err := e.MotionVsReallocation("Atlantis", 10); err == nil {
		t.Error("unknown terminal accepted")
	}
}
