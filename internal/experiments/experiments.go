// Package experiments wires the full reproduction together: one
// environment (constellation + terminals + ground-truth scheduler +
// identification pipeline) and one entry point per paper figure or
// table. cmd/repro renders these results as text; bench_test.go times
// them; EXPERIMENTS.md records paper-vs-measured numbers from the same
// code paths.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/astro"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/ml"
	"repro/internal/netsim"
	"repro/internal/obstruction"
	"repro/internal/pipeline"
	"repro/internal/scheduler"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Scale selects constellation density. The analyses' shapes are stable
// across scales; Full matches the 2023 Starlink constellation count
// and the paper's ~40 satellites in view.
type Scale string

// Scales.
const (
	// Small: ~700 satellites, a few in view. Fast smoke tests.
	Small Scale = "small"
	// Medium: ~1800 satellites, ~15 in view. Default: paper-shaped
	// results in seconds.
	Medium Scale = "medium"
	// Full: ~4400 satellites, ~40 in view, matches the paper's density.
	Full Scale = "full"
)

func shellsFor(s Scale) ([]constellation.Shell, error) {
	switch s {
	case Small:
		return []constellation.Shell{
			{Name: "s1", AltitudeKm: 550, InclinationDeg: 53, Planes: 30, SatsPerPlane: 18, PhasingF: 13},
			{Name: "s3", AltitudeKm: 570, InclinationDeg: 70, Planes: 12, SatsPerPlane: 12, PhasingF: 5},
		}, nil
	case Medium, "":
		return []constellation.Shell{
			{Name: "s1", AltitudeKm: 550, InclinationDeg: 53, Planes: 48, SatsPerPlane: 20, PhasingF: 17},
			{Name: "s2", AltitudeKm: 540, InclinationDeg: 53.2, Planes: 40, SatsPerPlane: 18, PhasingF: 13},
			{Name: "s3", AltitudeKm: 570, InclinationDeg: 70, Planes: 14, SatsPerPlane: 14, PhasingF: 5},
		}, nil
	case Full:
		return constellation.StarlinkShells(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown scale %q (want small|medium|full)", s)
	}
}

// ShellsFor exposes the scale→shell-design mapping to spec-driven
// callers (internal/scenario lowers constellation presets through it).
func ShellsFor(s Scale) ([]constellation.Shell, error) { return shellsFor(s) }

// Config assembles an environment.
type Config struct {
	Scale Scale
	Seed  int64
	// Shells overrides Scale with an explicit constellation design
	// (the scenario engine's non-Starlink geometries). Scale is
	// ignored when set.
	Shells []constellation.Shell
	// NamePrefix names synthetic satellites "<prefix>-<n>"; empty
	// keeps the STARLINK catalog naming.
	NamePrefix string
	// Epoch overrides the constellation TLE epoch (zero keeps the
	// 2023-03-01 study epoch).
	Epoch time.Time
	// JitterDeg overrides the constellation's orbital-element jitter
	// sigma (0 keeps the 0.15° default).
	JitterDeg float64
	// UseKeplerJ2 swaps the ablation propagator into the constellation.
	UseKeplerJ2 bool
	// Weights overrides the scheduler's preferences (ablations); zero
	// value uses the defaults.
	Weights scheduler.Weights
	// MinElevationDeg overrides the terminal hardware mask for both
	// the scheduler and the identifier's available sets (0 keeps the
	// study's 25°).
	MinElevationDeg float64
	// GSOProtectionDeg < 0 disables the exclusion zone (ablation).
	GSOProtectionDeg float64
	// GroundStations overrides the gateway sites for the bent-pipe
	// constraint; nil keeps the study PoPs' co-located gateways.
	GroundStations []astro.Geodetic
	// DisableGroundStations removes the bent-pipe constraint entirely
	// (lowered to scheduler.Config's explicit empty slice).
	DisableGroundStations bool
	// GSMinElevationDeg is the gateway visibility mask (0 keeps 25°).
	GSMinElevationDeg float64
	// DisableBattery removes the satellite energy model (ablation).
	DisableBattery bool
	// VantagePoints overrides the study's four sites (e.g. the §8
	// southern-hemisphere generalization, or scenario placements).
	VantagePoints []geo.VantagePoint
	// Workers bounds the campaign worker pool (see
	// core.CampaignConfig.Workers). 0 uses all CPUs; 1 forces the
	// serial engine.
	Workers int
	// SnapshotWorkers is the fan-out for the per-slot constellation
	// propagation sweep (see core.CampaignConfig.SnapshotWorkers). 0
	// selects GOMAXPROCS; 1 forces the serial sweep. Byte-identical
	// output at every value.
	SnapshotWorkers int
	// Telemetry, when non-nil, wires the environment's scheduler,
	// campaigns, pipelines, and model training into the registry. Nil
	// (the default) keeps every hot path on its uninstrumented branch.
	Telemetry *telemetry.Registry
	// TraceDecisions, when > 0, records the last N campaign decisions
	// into a telemetry.DecisionTrace ring (Env.Trace).
	TraceDecisions int
	// DisableIndex forces linear visibility scans instead of the
	// spatial index (ablation / equivalence checks). Results are
	// identical either way.
	DisableIndex bool
}

// Env is a ready-to-run reproduction environment.
type Env struct {
	Cons      *constellation.Constellation
	Sched     *scheduler.Global
	Ident     *core.Identifier
	Terminals []scheduler.Terminal
	Seed      int64
	// Workers is passed to every campaign this environment runs.
	Workers int
	// Ctx, when non-nil, cancels this environment's campaign loops
	// (cmd/repro wires Ctrl-C here). Nil means context.Background().
	Ctx context.Context
	// Telemetry is the registry every layer reports into (nil when
	// disabled).
	Telemetry *telemetry.Registry
	// Metrics is the campaign instrumentation bundle shared by every
	// campaign this environment runs (nil when telemetry is disabled).
	Metrics *core.CampaignMetrics
	// Snaps is the snapshot cache shared by the scheduler and every
	// campaign this environment runs, so each slot propagates (and
	// indexes) the constellation once globally.
	Snaps *constellation.SnapshotCache
	// DisableIndex forces linear visibility scans everywhere (ablation;
	// results are identical, only slower).
	DisableIndex bool
}

// Trace returns the decision-trace ring, nil when tracing is off.
func (e *Env) Trace() *telemetry.DecisionTrace {
	if e.Metrics == nil {
		return nil
	}
	return e.Metrics.Trace
}

// ctx returns the environment's cancellation context.
func (e *Env) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// NewEnv builds the constellation, terminals, scheduler, and
// identifier.
func NewEnv(cfg Config) (*Env, error) {
	shells := cfg.Shells
	if len(shells) == 0 {
		var err error
		if shells, err = shellsFor(cfg.Scale); err != nil {
			return nil, err
		}
	}
	cons, err := constellation.New(constellation.Config{
		Shells:      shells,
		Seed:        cfg.Seed,
		UseKeplerJ2: cfg.UseKeplerJ2,
		NamePrefix:  cfg.NamePrefix,
		Epoch:       cfg.Epoch,
		JitterDeg:   cfg.JitterDeg,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: build constellation: %w", err)
	}
	vps := cfg.VantagePoints
	if len(vps) == 0 {
		vps = geo.StudyVantagePoints()
	}
	var terms []scheduler.Terminal
	for _, vp := range vps {
		terms = append(terms, scheduler.Terminal{VantagePoint: vp, Priority: 1})
	}
	gs := cfg.GroundStations
	if cfg.DisableGroundStations {
		gs = []astro.Geodetic{} // non-nil empty = constraint off
	}
	snaps := constellation.NewSnapshotCache(0, cfg.Telemetry)
	snaps.SetSnapshotWorkers(cfg.SnapshotWorkers)
	sched, err := scheduler.NewGlobal(scheduler.Config{
		Constellation:     cons,
		Terminals:         terms,
		Weights:           cfg.Weights,
		MinElevationDeg:   cfg.MinElevationDeg,
		GSOProtectionDeg:  cfg.GSOProtectionDeg,
		GroundStations:    gs,
		GSMinElevationDeg: cfg.GSMinElevationDeg,
		DisableBattery:    cfg.DisableBattery,
		Seed:              cfg.Seed,
		Telemetry:         cfg.Telemetry,
		Snapshots:         snaps,
		DisableIndex:      cfg.DisableIndex,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: build scheduler: %w", err)
	}
	ident, err := core.NewIdentifier(cons)
	if err != nil {
		return nil, err
	}
	if cfg.MinElevationDeg != 0 {
		ident.MinElevationDeg = cfg.MinElevationDeg
	}
	e := &Env{Cons: cons, Sched: sched, Ident: ident, Terminals: terms, Seed: cfg.Seed,
		Workers: cfg.Workers, Telemetry: cfg.Telemetry,
		Snaps: snaps, DisableIndex: cfg.DisableIndex}
	e.Metrics = core.NewCampaignMetrics(cfg.Telemetry)
	if cfg.TraceDecisions > 0 {
		if e.Metrics == nil {
			// Tracing without a registry: an otherwise-empty bundle still
			// carries the ring (all metric handles nil-safe no-ops).
			e.Metrics = &core.CampaignMetrics{}
		}
		e.Metrics.Trace = telemetry.NewDecisionTrace(cfg.TraceDecisions)
	}
	return e, nil
}

// Start returns the campaign start time (one hour past the TLE epoch,
// aligned to the allocation grid).
func (e *Env) Start() time.Time {
	return scheduler.EpochStart(e.Cons.Epoch.Add(time.Hour))
}

// terminal finds a terminal by name.
func (e *Env) terminal(name string) (scheduler.Terminal, error) {
	for _, t := range e.Terminals {
		if t.Name == name {
			return t, nil
		}
	}
	return scheduler.Terminal{}, fmt.Errorf("experiments: unknown terminal %q", name)
}

// Fig2Result is the Figure 2 artifact: a two-minute high-frequency RTT
// trace from one terminal with per-slot statistics.
type Fig2Result struct {
	Terminal string
	Samples  []netsim.Sample
	// BoundarySeconds are the seconds-past-the-minute at which slot
	// boundaries fall (the paper: 12, 27, 42, 57).
	BoundarySeconds []int
	// WindowMedians holds the median RTT of each 15-second window —
	// the regime levels visible in the figure.
	WindowMedians []float64
}

// Fig2 generates the Figure 2 trace (default: EU terminal = Madrid,
// 2 minutes at 1 probe / 20 ms).
func (e *Env) Fig2(terminalName string, dur time.Duration) (*Fig2Result, error) {
	if terminalName == "" {
		terminalName = "Madrid"
	}
	if dur == 0 {
		dur = 2 * time.Minute
	}
	term, err := e.terminal(terminalName)
	if err != nil {
		return nil, err
	}
	path, err := netsim.NewPath(netsim.Config{
		Constellation: e.Cons,
		Scheduler:     e.Sched,
		Terminal:      term,
		Seed:          e.Seed,
	})
	if err != nil {
		return nil, err
	}
	samples, err := path.Trace(e.Start(), dur, 20*time.Millisecond)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{Terminal: terminalName, Samples: samples}
	seen := map[int]bool{}
	for _, w := range netsim.SplitBySlot(samples) {
		res.WindowMedians = append(res.WindowMedians, stats.Median(netsim.RTTs(w)))
		sec := scheduler.EpochStart(w[0].T).Second()
		if !seen[sec] {
			seen[sec] = true
			res.BoundarySeconds = append(res.BoundarySeconds, sec)
		}
	}
	return res, nil
}

// WindowStatsResult is the §3 statistical test: Mann-Whitney U between
// consecutive 15-second windows per terminal.
type WindowStatsResult struct {
	Terminal        string
	Windows         int
	Comparisons     int
	SignificantFrac float64 // fraction with p < 0.05
	MedianP         float64
}

// WindowStats runs the §3 test over a trace of the given duration for
// every terminal.
func (e *Env) WindowStats(dur time.Duration) ([]WindowStatsResult, error) {
	if dur == 0 {
		dur = 5 * time.Minute
	}
	var out []WindowStatsResult
	for _, term := range e.Terminals {
		path, err := netsim.NewPath(netsim.Config{
			Constellation: e.Cons,
			Scheduler:     e.Sched,
			Terminal:      term,
			Seed:          e.Seed,
		})
		if err != nil {
			return nil, err
		}
		samples, err := path.Trace(e.Start(), dur, 20*time.Millisecond)
		if err != nil {
			return nil, err
		}
		windows := netsim.SplitBySlot(samples)
		res := WindowStatsResult{Terminal: term.Name, Windows: len(windows)}
		var ps []float64
		for i := 1; i < len(windows); i++ {
			a, b := netsim.RTTs(windows[i-1]), netsim.RTTs(windows[i])
			if len(a) < 8 || len(b) < 8 {
				continue
			}
			mw, err := stats.MannWhitneyU(a, b)
			if err != nil {
				continue
			}
			res.Comparisons++
			ps = append(ps, mw.P)
			if mw.P < 0.05 {
				res.SignificantFrac++
			}
		}
		if res.Comparisons > 0 {
			res.SignificantFrac /= float64(res.Comparisons)
			res.MedianP = stats.Median(ps)
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig3Result is the obstruction-map walkthrough: two consecutive
// snapshots, their XOR, a two-day filled map, and the parameters
// recovered from it.
type Fig3Result struct {
	Prev, Cur, Diff *obstruction.Map
	Filled          *obstruction.Map
	Recovered       obstruction.Params
}

// Fig3 reproduces the §4 obstruction-map methodology for one terminal.
func (e *Env) Fig3(terminalName string) (*Fig3Result, error) {
	if terminalName == "" {
		terminalName = "Iowa"
	}
	term, err := e.terminal(terminalName)
	if err != nil {
		return nil, err
	}
	start := e.Start()
	// Slot t-1 and t: paint the true serving satellite's track.
	m := obstruction.New()
	allocs := e.Sched.Allocate(start)
	var a0 scheduler.Allocation
	for _, a := range allocs {
		if a.Terminal == term.Name {
			a0 = a
		}
	}
	if a0.SatID == 0 {
		return nil, fmt.Errorf("experiments: no allocation for %s", term.Name)
	}
	if err := e.Ident.PaintServingTrack(m, a0.SatID, term.VantagePoint, start); err != nil {
		return nil, err
	}
	prev := m.Clone()

	next := start.Add(scheduler.Period)
	allocs = e.Sched.Allocate(next)
	var a1 scheduler.Allocation
	for _, a := range allocs {
		if a.Terminal == term.Name {
			a1 = a
		}
	}
	if a1.SatID == 0 {
		return nil, fmt.Errorf("experiments: no allocation for %s in second slot", term.Name)
	}
	if err := e.Ident.PaintServingTrack(m, a1.SatID, term.VantagePoint, next); err != nil {
		return nil, err
	}
	cur := m.Clone()

	// "Two days without reset": fill the plot disk by sweeping the sky.
	filled := obstruction.New()
	for el := 25.0; el <= 90; el += 0.4 {
		for az := 0.0; az < 360; az += 0.4 {
			filled.PaintPoint(obstruction.PolarPoint{ElevationDeg: el, AzimuthDeg: az})
		}
	}
	params, err := obstruction.RecoverParams(filled)
	if err != nil {
		return nil, err
	}
	return &Fig3Result{
		Prev: prev, Cur: cur, Diff: obstruction.XOR(prev, cur),
		Filled: filled, Recovered: params,
	}, nil
}

// IdentResult is the §4 validation: identification accuracy against
// ground truth, the reproduction's version of the 500-sample pilot
// study.
type IdentResult struct {
	Attempted, Correct, Failed int
	Accuracy                   float64
	MedianMargin               float64
}

// IdentValidation runs a measured (non-oracle) campaign through the
// streaming pipeline and scores the identifications — records are
// folded into the margin series as they arrive and never materialize.
// naive switches to the nearest-endpoint ablation.
func (e *Env) IdentValidation(slots int, naive bool) (*IdentResult, error) {
	if slots == 0 {
		slots = 125 // 125 slots x 4 terminals = 500 identifications
	}
	ident := *e.Ident
	ident.UseNaiveMatcher = naive
	src := &pipeline.Campaign{Config: core.CampaignConfig{
		Scheduler:    e.Sched,
		Identifier:   &ident,
		Start:        e.Start(),
		Slots:        slots,
		Workers:      e.Workers,
		Metrics:      e.Metrics,
		Snapshots:    e.Snaps,
		DisableIndex: e.DisableIndex,
	}}
	var margins []float64
	p := &pipeline.Pipeline{
		Source:  src,
		Metrics: pipeline.NewMetrics(e.Telemetry),
		Sinks: []pipeline.Sink{pipeline.SinkFunc(func(rec *pipeline.Record) error {
			if rec.SkipReason == "" && rec.Margin > 0 {
				margins = append(margins, rec.Margin)
			}
			return nil
		})},
	}
	if err := p.Run(e.ctx()); err != nil {
		return nil, err
	}
	out := &IdentResult{
		Attempted: src.Stats.Attempted,
		Correct:   src.Stats.Correct,
		Failed:    src.Stats.Failed,
		Accuracy:  src.Stats.Accuracy(),
	}
	if len(margins) > 0 {
		out.MedianMargin = stats.Median(margins)
	}
	return out, nil
}

// CampaignSource returns a pipeline source for one of this
// environment's campaigns, ready to wire into arbitrary stages and
// sinks. slots 0 defaults to 500.
func (e *Env) CampaignSource(slots int, oracle bool) *pipeline.Campaign {
	if slots == 0 {
		slots = 500
	}
	return &pipeline.Campaign{Config: core.CampaignConfig{
		Scheduler:    e.Sched,
		Identifier:   e.Ident,
		Start:        e.Start(),
		Slots:        slots,
		Oracle:       oracle,
		Workers:      e.Workers,
		Metrics:      e.Metrics,
		Snapshots:    e.Snaps,
		DisableIndex: e.DisableIndex,
	}}
}

// StreamObservations drives one oracle campaign through the pipeline,
// feeding every sink the chosen-only observation stream (the §5/§6
// input rows), and returns the campaign's O(1)-memory summary —
// including how many records were dropped on the way and why.
func (e *Env) StreamObservations(slots int, sinks ...pipeline.Sink) (*core.CampaignStats, error) {
	src := e.CampaignSource(slots, true)
	p := &pipeline.Pipeline{
		Source:  src,
		Stages:  []pipeline.Stage{pipeline.ChosenOnly()},
		Sinks:   sinks,
		Metrics: pipeline.NewMetrics(e.Telemetry),
	}
	if err := p.Run(e.ctx()); err != nil {
		return nil, err
	}
	return src.Stats, nil
}

// Observations runs an oracle campaign and returns the §5/§6 inputs
// (batch wrapper over StreamObservations).
func (e *Env) Observations(slots int) ([]core.Observation, error) {
	obs, _, err := e.ObservationsWithStats(slots)
	return obs, err
}

// ObservationsWithStats is Observations plus the campaign summary:
// record and served-row totals and the skip-reason histogram behind
// every dropped slot.
func (e *Env) ObservationsWithStats(slots int) ([]core.Observation, *core.CampaignStats, error) {
	collect := &pipeline.CollectObservations{}
	st, err := e.StreamObservations(slots, collect)
	if err != nil {
		return nil, nil, err
	}
	return collect.Obs, st, nil
}

// StreamResult is one single-pass run of every §5 analysis and the §6
// dataset build over a streaming campaign: no record or observation
// slice ever materializes, so the campaign length is bounded by time,
// not memory.
type StreamResult struct {
	Stats   *core.CampaignStats
	AOE     *core.AOEAnalysis
	Azimuth *core.AzimuthAnalysis
	Launch  *core.LaunchAnalysis
	Sunlit  *core.SunlitAnalysis
	Dataset *ml.Dataset
}

// StreamAnalyses runs one oracle campaign and computes every §5
// analysis plus the §6 dataset in a single streaming pass. The outputs
// are bit-identical to running Observations and the batch analyzers
// (the pipeline golden tests hold this), at O(1) memory in the slot
// count.
func (e *Env) StreamAnalyses(slots int) (*StreamResult, error) {
	aoe := core.NewAOEAccumulator(27)
	az := core.NewAzimuthAccumulator(27)
	la := core.NewLaunchAccumulator("New York")
	su := core.NewSunlitAccumulator(27)
	ds := core.NewDatasetBuilder()
	st, err := e.StreamObservations(slots,
		pipeline.Feed(aoe), pipeline.Feed(az), pipeline.Feed(la), pipeline.Feed(su), pipeline.Feed(ds))
	if err != nil {
		return nil, err
	}
	out := &StreamResult{Stats: st}
	if out.AOE, err = aoe.Finalize(); err != nil {
		return nil, err
	}
	if out.Azimuth, err = az.Finalize(); err != nil {
		return nil, err
	}
	if out.Launch, err = la.Finalize(); err != nil {
		return nil, err
	}
	if out.Sunlit, err = su.Finalize(); err != nil {
		return nil, err
	}
	if out.Dataset, err = ds.Finalize(); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig4 computes the angle-of-elevation analysis.
func (e *Env) Fig4(obs []core.Observation) (*core.AOEAnalysis, error) {
	return core.AnalyzeAOE(obs, 27)
}

// Fig5 computes the azimuth analysis.
func (e *Env) Fig5(obs []core.Observation) (*core.AzimuthAnalysis, error) {
	return core.AnalyzeAzimuth(obs, 27)
}

// Fig6 computes the launch-date analysis, excluding the obstructed
// New York site from the mean as the paper does.
func (e *Env) Fig6(obs []core.Observation) (*core.LaunchAnalysis, error) {
	return core.AnalyzeLaunch(obs, "New York")
}

// Fig7 computes the sunlit analysis.
func (e *Env) Fig7(obs []core.Observation) (*core.SunlitAnalysis, error) {
	return core.AnalyzeSunlit(obs, 27)
}

// Fig8 trains and evaluates the §6 model on the environment's worker
// pool (Env.Workers; results are bit-identical at any pool size).
func (e *Env) Fig8(obs []core.Observation, cfg core.ModelConfig) (*core.ModelResult, error) {
	d, err := core.BuildDataset(obs)
	if err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = e.Seed + 1
	}
	if cfg.Workers == 0 {
		cfg.Workers = e.Workers
	}
	if cfg.Metrics == nil {
		cfg.Metrics = ml.NewMetrics(e.Telemetry)
	}
	return core.TrainModelCtx(e.ctx(), d, cfg)
}

// QuickModelConfig is a reduced grid for tests and benches.
func QuickModelConfig(seed int64) core.ModelConfig {
	return core.ModelConfig{
		Folds: 3,
		Grid:  []ml.ForestConfig{{NumTrees: 30, Tree: ml.TreeConfig{MaxDepth: 10}}},
		Seed:  seed,
	}
}
