package experiments

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

var (
	envOnce sync.Once
	envS    *Env
	envObs  []core.Observation
)

func smallEnv(t testing.TB) (*Env, []core.Observation) {
	t.Helper()
	envOnce.Do(func() {
		e, err := NewEnv(Config{Scale: Small, Seed: 3})
		if err != nil {
			panic(err)
		}
		obs, err := e.Observations(200)
		if err != nil {
			panic(err)
		}
		envS = e
		envObs = obs
	})
	return envS, envObs
}

func TestNewEnvScales(t *testing.T) {
	for _, s := range []Scale{Small, Medium} {
		e, err := NewEnv(Config{Scale: s, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if e.Cons.Len() == 0 {
			t.Fatalf("%s: empty constellation", s)
		}
	}
	if _, err := NewEnv(Config{Scale: "bogus"}); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestFig2TraceShape(t *testing.T) {
	e, _ := smallEnv(t)
	res, err := e.Fig2("Madrid", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 3000 {
		t.Errorf("%d samples", len(res.Samples))
	}
	// Boundary seconds must be within the paper's grid.
	want := map[int]bool{12: true, 27: true, 42: true, 57: true}
	for _, s := range res.BoundarySeconds {
		if !want[s] {
			t.Errorf("boundary at second %d", s)
		}
	}
	if len(res.WindowMedians) < 4 {
		t.Errorf("%d window medians", len(res.WindowMedians))
	}
}

func TestFig2UnknownTerminal(t *testing.T) {
	e, _ := smallEnv(t)
	if _, err := e.Fig2("Atlantis", time.Minute); err == nil {
		t.Error("unknown terminal accepted")
	}
}

func TestWindowStats(t *testing.T) {
	e, _ := smallEnv(t)
	res, err := e.WindowStats(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d terminals", len(res))
	}
	for _, r := range res {
		if r.Comparisons == 0 {
			t.Errorf("%s: no comparisons", r.Terminal)
			continue
		}
		if r.SignificantFrac < 0.5 {
			t.Errorf("%s: only %.0f%% of windows significant", r.Terminal, r.SignificantFrac*100)
		}
	}
}

func TestFig3(t *testing.T) {
	e, _ := smallEnv(t)
	res, err := e.Fig3("Iowa")
	if err != nil {
		t.Fatal(err)
	}
	if res.Diff.Count() == 0 {
		t.Error("XOR diff empty")
	}
	if res.Recovered.RadiusPx < 44 || res.Recovered.RadiusPx > 46 {
		t.Errorf("recovered radius %v", res.Recovered.RadiusPx)
	}
	if res.Recovered.CenterX < 60 || res.Recovered.CenterX > 62 {
		t.Errorf("recovered center x %v", res.Recovered.CenterX)
	}
}

func TestIdentValidationDTWBeatsNaive(t *testing.T) {
	e, _ := smallEnv(t)
	dtwRes, err := e.IdentValidation(25, false)
	if err != nil {
		t.Fatal(err)
	}
	naiveRes, err := e.IdentValidation(25, true)
	if err != nil {
		t.Fatal(err)
	}
	if dtwRes.Attempted == 0 {
		t.Fatal("no identifications attempted")
	}
	if dtwRes.Accuracy < 0.9 {
		t.Errorf("DTW accuracy = %v", dtwRes.Accuracy)
	}
	if dtwRes.Accuracy < naiveRes.Accuracy {
		t.Errorf("DTW (%v) worse than naive (%v)", dtwRes.Accuracy, naiveRes.Accuracy)
	}
}

func TestFigs4Through7(t *testing.T) {
	e, obs := smallEnv(t)
	if len(obs) == 0 {
		t.Skip("no observations at small scale")
	}
	f4, err := e.Fig4(obs)
	if err != nil {
		t.Fatal(err)
	}
	if f4.MedianLiftDeg <= 0 {
		t.Errorf("fig4 lift %v", f4.MedianLiftDeg)
	}
	f5, err := e.Fig5(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.PerTerminal) == 0 {
		t.Error("fig5 empty")
	}
	f6, err := e.Fig6(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.PerTerminal) == 0 {
		t.Error("fig6 empty")
	}
	if _, err := e.Fig7(obs); err != nil {
		t.Fatal(err)
	}
}

func TestFig8QuickModel(t *testing.T) {
	e, obs := smallEnv(t)
	if len(obs) < 100 {
		t.Skip("not enough observations")
	}
	res, err := e.Fig8(obs, QuickModelConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelTopK[0] <= 0 {
		t.Error("model top-1 is zero")
	}
	if res.ModelTopK[0] <= res.BaselineTopK[0] {
		t.Errorf("model top-1 %v <= baseline %v", res.ModelTopK[0], res.BaselineTopK[0])
	}
}

func TestAblationEnvs(t *testing.T) {
	// The ablation switches must produce working environments.
	kep, err := NewEnv(Config{Scale: Small, Seed: 4, UseKeplerJ2: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kep.Observations(10); err != nil {
		t.Fatal(err)
	}
	noGSO, err := NewEnv(Config{Scale: Small, Seed: 4, GSOProtectionDeg: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noGSO.Observations(10); err != nil {
		t.Fatal(err)
	}
}
