package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/astro"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/scheduler"
	"repro/internal/stats"
	"repro/internal/units"
)

// Extensions: the paper's §8 future work, implemented.
//
//   - Hemisphere generalization: the GSO exclusion zone sits in the
//     southern sky for northern terminals and in the northern sky for
//     southern terminals, so the scheduler's directional preference
//     should flip across the equator.
//   - Load sensitivity: the paper hypothesizes that unobservable
//     satellite load bounds the model's accuracy. With our simulated
//     controller the hypothesis is testable: remove the hidden load
//     term and the model should get more accurate.
//   - GSO ablation: disabling the exclusion zone should erase most of
//     the north preference, confirming the paper's §5.1 rationale.

// HemisphereSite is one site's directional statistics. NorthFrac must
// be read against AvailNorthFrac: at extreme latitudes a 53°-shell
// constellation is only visible equator-ward, so the availability
// baseline — not 50% — is the neutral point.
type HemisphereSite struct {
	Terminal       string
	LatDeg         float64
	NorthFrac      float64 // fraction of picks in the northern half-sky
	AvailNorthFrac float64 // fraction of available satellites there
	Slots          int
}

// NorthSkew is the pick skew relative to availability: positive means
// the scheduler prefers the northern sky beyond what geometry offers.
func (s HemisphereSite) NorthSkew() float64 { return s.NorthFrac - s.AvailNorthFrac }

// HemisphereResult compares directional preference across the equator.
type HemisphereResult struct {
	Northern []HemisphereSite // the paper's sites (>40N)
	Southern []HemisphereSite // Sydney, Punta Arenas, Quito
}

// HemisphereComparison runs two campaigns — the paper's northern sites
// and the §8 southern sites — and measures where each site's picks
// point.
func (e *Env) HemisphereComparison(slots int) (*HemisphereResult, error) {
	if slots == 0 {
		slots = 200
	}
	south, err := NewEnv(Config{
		Scale:         scaleOf(e),
		Seed:          e.Seed,
		VantagePoints: geo.SouthernVantagePoints(),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: southern env: %w", err)
	}
	res := &HemisphereResult{}
	for _, pair := range []struct {
		env *Env
		out *[]HemisphereSite
	}{{e, &res.Northern}, {south, &res.Southern}} {
		obs, err := pair.env.Observations(slots)
		if err != nil {
			return nil, err
		}
		chosenByTerm := map[string][]float64{}
		availByTerm := map[string][]float64{}
		for _, o := range obs {
			c, ok := o.Chosen()
			if !ok {
				continue
			}
			chosenByTerm[o.Terminal] = append(chosenByTerm[o.Terminal], c.AzimuthDeg)
			for _, a := range o.Available {
				availByTerm[o.Terminal] = append(availByTerm[o.Terminal], a.AzimuthDeg)
			}
		}
		isNorth := func(a float64) bool { return a < 90 || a >= 270 }
		for _, t := range pair.env.Terminals {
			az := chosenByTerm[t.Name]
			if len(az) == 0 {
				continue
			}
			*pair.out = append(*pair.out, HemisphereSite{
				Terminal:       t.Name,
				LatDeg:         t.Location.LatDeg,
				NorthFrac:      stats.Proportion(az, isNorth),
				AvailNorthFrac: stats.Proportion(availByTerm[t.Name], isNorth),
				Slots:          len(az),
			})
		}
	}
	return res, nil
}

// scaleOf recovers the scale used to build an Env by satellite count —
// good enough for spawning a sibling environment.
func scaleOf(e *Env) Scale {
	switch n := e.Cons.Len(); {
	case n <= 900:
		return Small
	case n <= 2500:
		return Medium
	default:
		return Full
	}
}

// LoadSensitivityResult is the §8 load-hypothesis test.
type LoadSensitivityResult struct {
	// WithHiddenLoad is holdout top-5 accuracy against the default
	// scheduler (hidden load + score noise active).
	WithHiddenLoad float64
	// WithoutHiddenLoad is the same protocol against a scheduler whose
	// load term is zeroed (score noise remains).
	WithoutHiddenLoad float64
	// Deterministic removes every unobservable term (load, battery,
	// noise): the ceiling the model could reach if the scheduler
	// depended only on public features.
	Deterministic float64
	// Top-1 variants of the same three accuracies; determinism shows
	// up most strongly here.
	WithHiddenLoadTop1    float64
	WithoutHiddenLoadTop1 float64
	DeterministicTop1     float64
	Rows                  int
}

// LoadSensitivity trains the §6 model against schedulers with
// progressively fewer unobservable factors. The paper predicts the
// unobservables are what bound model accuracy; Deterministic should
// clearly exceed WithHiddenLoad.
func (e *Env) LoadSensitivity(slots int) (*LoadSensitivityResult, error) {
	if slots == 0 {
		slots = 400
	}
	noLoad := scheduler.DefaultWeights()
	noLoad.Load = 0
	quiet, err := NewEnv(Config{Scale: scaleOf(e), Seed: e.Seed, Weights: noLoad})
	if err != nil {
		return nil, fmt.Errorf("experiments: no-load env: %w", err)
	}
	det := noLoad
	det.NoiseStd = 1e-9
	det.Charge = 0 // battery state is as unobservable as load
	deterministic, err := NewEnv(Config{Scale: scaleOf(e), Seed: e.Seed, Weights: det})
	if err != nil {
		return nil, fmt.Errorf("experiments: deterministic env: %w", err)
	}
	out := &LoadSensitivityResult{}
	for _, pair := range []struct {
		env  *Env
		acc  *float64
		top1 *float64
	}{
		{e, &out.WithHiddenLoad, &out.WithHiddenLoadTop1},
		{quiet, &out.WithoutHiddenLoad, &out.WithoutHiddenLoadTop1},
		{deterministic, &out.Deterministic, &out.DeterministicTop1},
	} {
		obs, err := pair.env.Observations(slots)
		if err != nil {
			return nil, err
		}
		d, err := core.BuildDataset(obs)
		if err != nil {
			return nil, err
		}
		mc := QuickModelConfig(pair.env.Seed + 1)
		mc.Workers = e.Workers
		res, err := core.TrainModelCtx(e.ctx(), d, mc)
		if err != nil {
			return nil, err
		}
		*pair.acc = res.ModelTopK[4]
		*pair.top1 = res.ModelTopK[0]
		out.Rows = len(d.X)
	}
	return out, nil
}

// GSOAblationResult compares the north preference with the exclusion
// zone on and off.
type GSOAblationResult struct {
	NorthFracWithGSO    float64
	NorthFracWithoutGSO float64
	Slots               int
}

// GSOAblation measures how much of the scheduler's north preference
// the exclusion zone explains (the paper's §5.1 rationale). The
// residual preference without the zone comes from the explicit north
// weight alone.
func (e *Env) GSOAblation(slots int) (*GSOAblationResult, error) {
	if slots == 0 {
		slots = 200
	}
	noGSO, err := NewEnv(Config{Scale: scaleOf(e), Seed: e.Seed, GSOProtectionDeg: -1})
	if err != nil {
		return nil, fmt.Errorf("experiments: no-GSO env: %w", err)
	}
	out := &GSOAblationResult{}
	for _, pair := range []struct {
		env  *Env
		frac *float64
	}{{e, &out.NorthFracWithGSO}, {noGSO, &out.NorthFracWithoutGSO}} {
		obs, err := pair.env.Observations(slots)
		if err != nil {
			return nil, err
		}
		var az []float64
		for _, o := range obs {
			if c, ok := o.Chosen(); ok {
				az = append(az, c.AzimuthDeg)
			}
		}
		if len(az) == 0 {
			return nil, fmt.Errorf("experiments: no picks in GSO ablation")
		}
		*pair.frac = stats.Proportion(az, func(a float64) bool { return a < 90 || a >= 270 })
		out.Slots = len(az)
	}
	return out, nil
}

// HandoverResult characterizes loss around the 15-second reallocation
// boundary: the netsim path (like the real network) drops more packets
// in the moments after a handover.
type HandoverResult struct {
	// BinMs is the width of each offset-within-slot bin.
	BinMs float64
	// LossByOffset[i] is the loss rate of probes sent in
	// [i*BinMs, (i+1)*BinMs) past the slot boundary.
	LossByOffset []float64
	// EarlyLoss / SteadyLoss summarize the first 300 ms vs the rest.
	EarlyLoss, SteadyLoss float64
	Probes                int
}

// HandoverAnalysis probes one terminal for dur and bins loss by offset
// within the slot.
func (e *Env) HandoverAnalysis(terminalName string, dur time.Duration) (*HandoverResult, error) {
	if terminalName == "" {
		terminalName = "Iowa"
	}
	if dur == 0 {
		dur = 10 * time.Minute
	}
	term, err := e.terminal(terminalName)
	if err != nil {
		return nil, err
	}
	path, err := netsim.NewPath(netsim.Config{
		Constellation: e.Cons,
		Scheduler:     e.Sched,
		Terminal:      term,
		Seed:          e.Seed,
	})
	if err != nil {
		return nil, err
	}
	samples, err := path.Trace(e.Start(), dur, 20*time.Millisecond)
	if err != nil {
		return nil, err
	}
	const binMs = 250.0
	nBins := int(float64(scheduler.Period/time.Millisecond) / binMs)
	lost := make([]int, nBins)
	total := make([]int, nBins)
	var earlyLost, earlyTotal, steadyLost, steadyTotal int
	for _, s := range samples {
		off := s.T.Sub(scheduler.EpochStart(s.T))
		bin := int(float64(off/time.Millisecond) / binMs)
		if bin >= nBins {
			bin = nBins - 1
		}
		total[bin]++
		if off < 300*time.Millisecond {
			earlyTotal++
		} else {
			steadyTotal++
		}
		if s.Lost {
			lost[bin]++
			if off < 300*time.Millisecond {
				earlyLost++
			} else {
				steadyLost++
			}
		}
	}
	res := &HandoverResult{BinMs: binMs, Probes: len(samples)}
	for i := range lost {
		if total[i] > 0 {
			res.LossByOffset = append(res.LossByOffset, float64(lost[i])/float64(total[i]))
		} else {
			res.LossByOffset = append(res.LossByOffset, 0)
		}
	}
	if earlyTotal > 0 {
		res.EarlyLoss = float64(earlyLost) / float64(earlyTotal)
	}
	if steadyTotal > 0 {
		res.SteadyLoss = float64(steadyLost) / float64(steadyTotal)
	}
	return res, nil
}

// MotionResult quantifies the paper's §3 argument that satellite
// motion cannot explain the 15-second latency regime changes: within a
// slot the serving satellite's propagation delay drifts by a fraction
// of a millisecond, while reallocation to a different satellite jumps
// it by several.
type MotionResult struct {
	// MedianMotionDriftMs is the median |propagation-RTT change| from
	// the serving satellite's own movement across one 15 s slot.
	MedianMotionDriftMs float64
	// MedianReallocJumpMs is the median |propagation-RTT change| across
	// slot boundaries where the satellite changed.
	MedianReallocJumpMs float64
	// Ratio is jump / drift.
	Ratio float64
	// Slots and Handovers count the samples behind each median.
	Slots, Handovers int
}

// MotionVsReallocation measures propagation-only RTT (no jitter, no
// MAC) at both edges of every slot for one terminal.
func (e *Env) MotionVsReallocation(terminalName string, slots int) (*MotionResult, error) {
	if terminalName == "" {
		terminalName = "Iowa"
	}
	if slots == 0 {
		slots = 200
	}
	term, err := e.terminal(terminalName)
	if err != nil {
		return nil, err
	}
	pop, ok := geo.PoPByName(term.PoP)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown PoP %q", term.PoP)
	}

	// Propagation-only RTT for a satellite at time t, in ms.
	propRTT := func(satID int, t time.Time) (float64, error) {
		sat := e.Cons.ByID(satID)
		if sat == nil {
			return 0, fmt.Errorf("experiments: unknown satellite %d", satID)
		}
		st, err := sat.Propagator.PropagateAt(t)
		if err != nil {
			return 0, err
		}
		ecef, _ := astro.TEMEToECEF(st.Pos, st.Vel, t)
		up := ecef.Sub(term.Location.ToECEF()).Norm()
		down := ecef.Sub(pop.Location.ToECEF()).Norm()
		return 2 * (up + down) / units.SpeedOfLightKmPerSec * 1000, nil
	}

	var drifts, jumps []float64
	prevID := 0
	prevEndRTT := 0.0
	start := e.Start()
	for i := 0; i < slots; i++ {
		slotStart := start.Add(time.Duration(i) * scheduler.Period)
		var alloc scheduler.Allocation
		for _, a := range e.Sched.Allocate(slotStart) {
			if a.Terminal == term.Name {
				alloc = a
			}
		}
		if alloc.SatID == 0 {
			prevID = 0
			continue
		}
		rttStart, err1 := propRTT(alloc.SatID, slotStart)
		rttEnd, err2 := propRTT(alloc.SatID, slotStart.Add(scheduler.Period))
		if err1 != nil || err2 != nil {
			prevID = 0
			continue
		}
		drifts = append(drifts, math.Abs(rttEnd-rttStart))
		if prevID != 0 && prevID != alloc.SatID {
			jumps = append(jumps, math.Abs(rttStart-prevEndRTT))
		}
		prevID = alloc.SatID
		prevEndRTT = rttEnd
	}
	if len(drifts) == 0 || len(jumps) == 0 {
		return nil, fmt.Errorf("experiments: motion analysis needs served slots (%d) and handovers (%d)", len(drifts), len(jumps))
	}
	res := &MotionResult{
		MedianMotionDriftMs: stats.Median(drifts),
		MedianReallocJumpMs: stats.Median(jumps),
		Slots:               len(drifts),
		Handovers:           len(jumps),
	}
	if res.MedianMotionDriftMs > 0 {
		res.Ratio = res.MedianReallocJumpMs / res.MedianMotionDriftMs
	}
	return res, nil
}
