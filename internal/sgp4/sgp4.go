// Package sgp4 implements the near-earth SGP4 satellite propagator in
// the standard Vallado formulation (WGS-72 constants), taking mean
// elements from a two-line element set and producing position and
// velocity in the TEME frame.
//
// Scope: near-earth only. Satellites with orbital periods >= 225
// minutes need the deep-space extension (SDP4) and are rejected at
// construction. Every Starlink shell orbits in ~95 minutes, so the
// deep-space branch is deliberately out of scope for this
// reproduction; the constructor error keeps misuse loud.
//
// The propagator is immutable after construction and safe for
// concurrent use; Propagate allocates nothing.
package sgp4

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/tle"
	"repro/internal/units"
)

// Gravitational constants (WGS-72, the set SGP4 is defined against).
const (
	earthRadiusKm = 6378.135
	mu            = 398600.8 // km^3/s^2
	j2            = 0.001082616
	j3            = -0.00000253881
	j4            = -0.00000165597
)

var (
	xke   = 60.0 / math.Sqrt(earthRadiusKm*earthRadiusKm*earthRadiusKm/mu) // sqrt(GM) in (earth radii)^1.5/min
	j3oj2 = j3 / j2
	// vkmps converts canonical velocity units to km/s.
	vkmps = earthRadiusKm * xke / 60.0
)

// ErrDecayed is returned by Propagate when the mean orbit has decayed
// below the Earth's surface at the requested time.
var ErrDecayed = errors.New("sgp4: satellite has decayed")

// ErrDeepSpace is returned by New for element sets with periods >= 225
// minutes, which require the (unimplemented) deep-space corrections.
var ErrDeepSpace = errors.New("sgp4: deep-space elements not supported (period >= 225 min)")

// State is the propagated position (km) and velocity (km/s) in the
// true-equator mean-equinox (TEME) frame.
type State struct {
	Pos units.Vec3 // km, TEME
	Vel units.Vec3 // km/s, TEME
}

// Propagator holds the initialized SGP4 constants for one element set.
type Propagator struct {
	epoch time.Time

	// Recovered (un-Kozai'd) mean motion and semi-major axis.
	noUnkozai float64 // rad/min
	ao        float64 // earth radii

	// Orbital elements at epoch (radians, internal units).
	ecco  float64
	inclo float64
	nodeo float64
	argpo float64
	mo    float64
	bstar float64

	// Derived initialization constants.
	isimp                  bool
	cosio, sinio           float64
	x3thm1, x1mth2, x7thm1 float64
	c1, c4, c5             float64
	d2, d3, d4             float64
	t2cof, t3cof, t4cof    float64
	t5cof                  float64
	mdot, argpdot, nodedot float64
	nodecf                 float64
	omgcof, xmcof          float64
	eta, delmo, sinmao     float64
	aycof, xlcof           float64
}

// New initializes an SGP4 propagator from a parsed TLE.
func New(t *tle.TLE) (*Propagator, error) {
	if t.MeanMotion <= 0 {
		return nil, fmt.Errorf("sgp4: mean motion %v rev/day is not positive", t.MeanMotion)
	}
	periodMin := units.MinutesPerDay / t.MeanMotion
	if periodMin >= 225 {
		return nil, fmt.Errorf("%w: period %.1f min", ErrDeepSpace, periodMin)
	}
	if t.Eccentricity < 0 || t.Eccentricity >= 1 {
		return nil, fmt.Errorf("sgp4: eccentricity %v out of [0,1)", t.Eccentricity)
	}

	p := &Propagator{
		epoch: t.Epoch,
		ecco:  t.Eccentricity,
		inclo: units.Deg2Rad(t.InclinationDeg),
		nodeo: units.Deg2Rad(t.RAANDeg),
		argpo: units.Deg2Rad(t.ArgPerigeeDeg),
		mo:    units.Deg2Rad(t.MeanAnomalyDeg),
		bstar: t.BStar,
	}
	noKozai := t.MeanMotion * 2 * math.Pi / units.MinutesPerDay // rad/min

	// Recover the original (Brouwer) mean motion from the Kozai value.
	cosio := math.Cos(p.inclo)
	theta2 := cosio * cosio
	x3thm1 := 3*theta2 - 1
	eosq := p.ecco * p.ecco
	betao2 := 1 - eosq
	betao := math.Sqrt(betao2)

	ak := math.Pow(xke/noKozai, 2.0/3.0)
	d1 := 0.75 * j2 * x3thm1 / (betao * betao2)
	del := d1 / (ak * ak)
	adel := ak * (1 - del*del - del*(1.0/3.0+134.0*del*del/81.0))
	del = d1 / (adel * adel)
	p.noUnkozai = noKozai / (1 + del)
	p.ao = math.Pow(xke/p.noUnkozai, 2.0/3.0)

	sinio := math.Sin(p.inclo)
	po := p.ao * betao2
	posq := po * po
	pinvsq := 1 / posq
	rp := p.ao * (1 - p.ecco) // perigee radius, earth radii

	if (rp-1)*earthRadiusKm < 0 {
		return nil, fmt.Errorf("sgp4: perigee below the surface (%.1f km)", (rp-1)*earthRadiusKm)
	}

	p.cosio, p.sinio = cosio, sinio
	p.x3thm1 = x3thm1
	p.x1mth2 = 1 - theta2
	p.x7thm1 = 7*theta2 - 1

	// Drag coefficient setup. s4 and qzms24 follow the standard
	// perigee-dependent switch.
	perigeeKm := (rp - 1) * earthRadiusKm
	s4 := 78.0
	qzms24 := math.Pow((120.0-78.0)/earthRadiusKm, 4)
	if perigeeKm < 156 {
		s4 = perigeeKm - 78
		if perigeeKm < 98 {
			s4 = 20
		}
		qzms24 = math.Pow((120-s4)/earthRadiusKm, 4)
	}
	s4 = s4/earthRadiusKm + 1

	p.isimp = rp < 220.0/earthRadiusKm+1

	tsi := 1 / (p.ao - s4)
	p.eta = p.ao * p.ecco * tsi
	etasq := p.eta * p.eta
	eeta := p.ecco * p.eta
	psisq := math.Abs(1 - etasq)
	coef := qzms24 * math.Pow(tsi, 4)
	coef1 := coef / math.Pow(psisq, 3.5)
	c2 := coef1 * p.noUnkozai * (p.ao*(1+1.5*etasq+eeta*(4+etasq)) +
		0.375*j2*tsi/psisq*x3thm1*(8+3*etasq*(8+etasq)))
	p.c1 = p.bstar * c2
	var c3 float64
	if p.ecco > 1e-4 {
		c3 = -2 * coef * tsi * j3oj2 * p.noUnkozai * sinio / p.ecco
	}
	p.c4 = 2 * p.noUnkozai * coef1 * p.ao * betao2 *
		(p.eta*(2+0.5*etasq) + p.ecco*(0.5+2*etasq) -
			j2*tsi/(p.ao*psisq)*
				(-3*x3thm1*(1-2*eeta+etasq*(1.5-0.5*eeta))+
					0.75*p.x1mth2*(2*etasq-eeta*(1+etasq))*math.Cos(2*p.argpo)))
	p.c5 = 2 * coef1 * p.ao * betao2 * (1 + 2.75*(etasq+eeta) + eeta*etasq)

	theta4 := theta2 * theta2
	temp1 := 1.5 * j2 * pinvsq * p.noUnkozai
	temp2 := 0.5 * temp1 * j2 * pinvsq
	temp3 := -0.46875 * j4 * pinvsq * pinvsq * p.noUnkozai
	p.mdot = p.noUnkozai + 0.5*temp1*betao*x3thm1 +
		0.0625*temp2*betao*(13-78*theta2+137*theta4)
	p.argpdot = -0.5*temp1*(1-5*theta2) +
		0.0625*temp2*(7-114*theta2+395*theta4) +
		temp3*(3-36*theta2+49*theta4)
	xhdot1 := -temp1 * cosio
	p.nodedot = xhdot1 + (0.5*temp2*(4-19*theta2)+2*temp3*(3-7*theta2))*cosio
	p.omgcof = p.bstar * c3 * math.Cos(p.argpo)
	if p.ecco > 1e-4 {
		p.xmcof = -2.0 / 3.0 * coef * p.bstar / eeta
	}
	p.nodecf = 3.5 * betao2 * xhdot1 * p.c1
	p.t2cof = 1.5 * p.c1
	// Avoid division by zero for i = 180 deg.
	div := 1 + cosio
	if math.Abs(div) < 1.5e-12 {
		div = 1.5e-12
	}
	p.xlcof = -0.25 * j3oj2 * sinio * (3 + 5*cosio) / div
	p.aycof = -0.5 * j3oj2 * sinio
	p.delmo = math.Pow(1+p.eta*math.Cos(p.mo), 3)
	p.sinmao = math.Sin(p.mo)

	if !p.isimp {
		cc1sq := p.c1 * p.c1
		p.d2 = 4 * p.ao * tsi * cc1sq
		temp := p.d2 * tsi * p.c1 / 3
		p.d3 = (17*p.ao + s4) * temp
		p.d4 = 0.5 * temp * p.ao * tsi * (221*p.ao + 31*s4) * p.c1
		p.t3cof = p.d2 + 2*cc1sq
		p.t4cof = 0.25 * (3*p.d3 + p.c1*(12*p.d2+10*cc1sq))
		p.t5cof = 0.2 * (3*p.d4 + 12*p.c1*p.d3 + 6*p.d2*p.d2 +
			15*cc1sq*(2*p.d2+cc1sq))
	}
	return p, nil
}

// Epoch returns the element-set epoch the propagation time is measured
// from.
func (p *Propagator) Epoch() time.Time { return p.epoch }

// PropagateAt propagates to an absolute time.
func (p *Propagator) PropagateAt(t time.Time) (State, error) {
	return p.Propagate(t.Sub(p.epoch).Minutes())
}

// PropagateAtInto is PropagateAt writing the state into caller-owned
// scratch — the snapshot hot loop's entry point. On error the scratch
// is left untouched; on success it holds exactly what PropagateAt
// would have returned.
func (p *Propagator) PropagateAtInto(t time.Time, st *State) error {
	s, err := p.Propagate(t.Sub(p.epoch).Minutes())
	if err != nil {
		return err
	}
	*st = s
	return nil
}

// Propagate advances the mean elements tsince minutes past the epoch
// (negative values propagate backwards) and returns the osculating
// TEME state.
func (p *Propagator) Propagate(tsince float64) (State, error) {
	t := tsince

	// Secular gravity and drag.
	xmdf := p.mo + p.mdot*t
	argpdf := p.argpo + p.argpdot*t
	nodedf := p.nodeo + p.nodedot*t
	argpm := argpdf
	mm := xmdf
	t2 := t * t
	nodem := nodedf + p.nodecf*t2
	tempa := 1 - p.c1*t
	tempe := p.bstar * p.c4 * t
	templ := p.t2cof * t2

	if !p.isimp {
		delomg := p.omgcof * t
		delm := p.xmcof * (math.Pow(1+p.eta*math.Cos(xmdf), 3) - p.delmo)
		temp := delomg + delm
		mm = xmdf + temp
		argpm = argpdf - temp
		t3 := t2 * t
		t4 := t3 * t
		tempa = tempa - p.d2*t2 - p.d3*t3 - p.d4*t4
		tempe += p.bstar * p.c5 * (math.Sin(mm) - p.sinmao)
		templ += p.t3cof*t3 + t4*(p.t4cof+t*p.t5cof)
	}

	nm := p.noUnkozai
	am := math.Pow(xke/nm, 2.0/3.0) * tempa * tempa
	nm = xke / math.Pow(am, 1.5)
	em := p.ecco - tempe
	if em >= 1.0 || em < -0.001 {
		return State{}, fmt.Errorf("sgp4: mean eccentricity %v out of range at t=%v min", em, t)
	}
	if em < 1e-6 {
		em = 1e-6
	}
	mm += p.noUnkozai * templ
	xlm := mm + argpm + nodem
	nodem = units.WrapRadTwoPi(nodem)
	argpm = units.WrapRadTwoPi(argpm)
	xlm = units.WrapRadTwoPi(xlm)
	mm = units.WrapRadTwoPi(xlm - argpm - nodem)

	// Long-period periodics.
	sinip, cosip := p.sinio, p.cosio
	axnl := em * math.Cos(argpm)
	temp := 1 / (am * (1 - em*em))
	aynl := em*math.Sin(argpm) + temp*p.aycof
	xl := mm + argpm + nodem + temp*p.xlcof*axnl

	// Kepler's equation for the longitude-form anomaly.
	u := units.WrapRadTwoPi(xl - nodem)
	eo1 := u
	var sineo1, coseo1 float64
	for ktr := 0; ktr < 10; ktr++ {
		sineo1 = math.Sin(eo1)
		coseo1 = math.Cos(eo1)
		tem5 := (u - aynl*coseo1 + axnl*sineo1 - eo1) /
			(1 - coseo1*axnl - sineo1*aynl)
		if math.Abs(tem5) >= 0.95 {
			if tem5 > 0 {
				tem5 = 0.95
			} else {
				tem5 = -0.95
			}
		}
		eo1 += tem5
		if math.Abs(tem5) < 1e-12 {
			break
		}
	}

	// Short-period preliminary quantities.
	ecose := axnl*coseo1 + aynl*sineo1
	esine := axnl*sineo1 - aynl*coseo1
	el2 := axnl*axnl + aynl*aynl
	pl := am * (1 - el2)
	if pl < 0 {
		return State{}, fmt.Errorf("sgp4: semi-latus rectum %v negative at t=%v min", pl, t)
	}
	rl := am * (1 - ecose)
	rdotl := math.Sqrt(am) * esine / rl
	rvdotl := math.Sqrt(pl) / rl
	betal := math.Sqrt(1 - el2)
	temp = esine / (1 + betal)
	sinu := am / rl * (sineo1 - aynl - axnl*temp)
	cosu := am / rl * (coseo1 - axnl + aynl*temp)
	su := math.Atan2(sinu, cosu)
	sin2u := (cosu + cosu) * sinu
	cos2u := 1 - 2*sinu*sinu
	temp = 1 / pl
	temp1 := 0.5 * j2 * temp
	temp2 := temp1 * temp

	// Short-period periodics.
	mrt := rl*(1-1.5*temp2*betal*p.x3thm1) + 0.5*temp1*p.x1mth2*cos2u
	su -= 0.25 * temp2 * p.x7thm1 * sin2u
	xnode := nodem + 1.5*temp2*cosip*sin2u
	xinc := p.inclo + 1.5*temp2*cosip*sinip*cos2u
	mvt := rdotl - nm*temp1*p.x1mth2*sin2u/xke
	rvdot := rvdotl + nm*temp1*(p.x1mth2*cos2u+1.5*p.x3thm1)/xke

	// Orientation vectors and state.
	sinsu, cossu := math.Sin(su), math.Cos(su)
	snod, cnod := math.Sin(xnode), math.Cos(xnode)
	sini, cosi := math.Sin(xinc), math.Cos(xinc)
	xmx := -snod * cosi
	xmy := cnod * cosi
	ux := xmx*sinsu + cnod*cossu
	uy := xmy*sinsu + snod*cossu
	uz := sini * sinsu
	vx := xmx*cossu - cnod*sinsu
	vy := xmy*cossu - snod*sinsu
	vz := sini * cossu

	if mrt < 1 {
		return State{}, fmt.Errorf("%w (mrt=%v at t=%v min)", ErrDecayed, mrt, t)
	}

	return State{
		Pos: units.Vec3{
			X: mrt * ux * earthRadiusKm,
			Y: mrt * uy * earthRadiusKm,
			Z: mrt * uz * earthRadiusKm,
		},
		Vel: units.Vec3{
			X: (mvt*ux + rvdot*vx) * vkmps,
			Y: (mvt*uy + rvdot*vy) * vkmps,
			Z: (mvt*uz + rvdot*vz) * vkmps,
		},
	}, nil
}
