package sgp4

import (
	"fmt"
	"math"
	"time"

	"repro/internal/tle"
	"repro/internal/units"
)

// KeplerJ2 is a deliberately simpler propagator used as the ablation
// baseline: two-body Keplerian motion plus J2 secular rates on RAAN,
// argument of perigee and mean anomaly, with no drag and no periodic
// corrections. It shares the TLE input so the two propagators can be
// swapped behind the Ephemeris interface.
type KeplerJ2 struct {
	epoch time.Time

	n     float64 // mean motion, rad/min
	a     float64 // semi-major axis, earth radii
	ecc   float64
	incl  float64
	node0 float64
	argp0 float64
	m0    float64

	nodeDot float64 // rad/min
	argpDot float64
	mDot    float64
}

// NewKeplerJ2 builds the baseline propagator from a TLE.
func NewKeplerJ2(t *tle.TLE) (*KeplerJ2, error) {
	if t.MeanMotion <= 0 {
		return nil, fmt.Errorf("sgp4: mean motion %v rev/day is not positive", t.MeanMotion)
	}
	k := &KeplerJ2{
		epoch: t.Epoch,
		n:     t.MeanMotion * 2 * math.Pi / units.MinutesPerDay,
		ecc:   t.Eccentricity,
		incl:  units.Deg2Rad(t.InclinationDeg),
		node0: units.Deg2Rad(t.RAANDeg),
		argp0: units.Deg2Rad(t.ArgPerigeeDeg),
		m0:    units.Deg2Rad(t.MeanAnomalyDeg),
	}
	k.a = math.Pow(xke/k.n, 2.0/3.0)
	p := k.a * (1 - k.ecc*k.ecc)
	cosi := math.Cos(k.incl)
	// Standard J2 secular rates.
	base := 1.5 * j2 * k.n / (p * p)
	k.nodeDot = -base * cosi
	k.argpDot = base * (2 - 2.5*math.Sin(k.incl)*math.Sin(k.incl))
	k.mDot = k.n // mean anomaly advances at the mean motion
	return k, nil
}

// Epoch returns the element-set epoch.
func (k *KeplerJ2) Epoch() time.Time { return k.epoch }

// PropagateAt propagates to an absolute time.
func (k *KeplerJ2) PropagateAt(t time.Time) (State, error) {
	return k.Propagate(t.Sub(k.epoch).Minutes())
}

// PropagateAtInto is PropagateAt writing into caller-owned scratch
// (see Propagator.PropagateAtInto).
func (k *KeplerJ2) PropagateAtInto(t time.Time, st *State) error {
	s, err := k.Propagate(t.Sub(k.epoch).Minutes())
	if err != nil {
		return err
	}
	*st = s
	return nil
}

// Propagate advances tsince minutes past the epoch.
func (k *KeplerJ2) Propagate(tsince float64) (State, error) {
	m := units.WrapRadTwoPi(k.m0 + k.mDot*tsince)
	node := units.WrapRadTwoPi(k.node0 + k.nodeDot*tsince)
	argp := units.WrapRadTwoPi(k.argp0 + k.argpDot*tsince)

	// Solve Kepler's equation by Newton iteration.
	e := m
	for i := 0; i < 12; i++ {
		d := (e - k.ecc*math.Sin(e) - m) / (1 - k.ecc*math.Cos(e))
		e -= d
		if math.Abs(d) < 1e-12 {
			break
		}
	}
	sinE, cosE := math.Sin(e), math.Cos(e)
	// True anomaly and radius.
	nu := math.Atan2(math.Sqrt(1-k.ecc*k.ecc)*sinE, cosE-k.ecc)
	r := k.a * (1 - k.ecc*cosE) // earth radii

	// Perifocal coordinates.
	cosnu, sinnu := math.Cos(nu), math.Sin(nu)
	p := k.a * (1 - k.ecc*k.ecc)
	rx := r * cosnu
	ry := r * sinnu
	// Velocity in perifocal frame (canonical units: earth radii/min via xke).
	vscale := xke / math.Sqrt(p)
	vxp := -vscale * sinnu
	vyp := vscale * (k.ecc + cosnu)

	// Rotate perifocal -> TEME via argp, incl, node.
	cw, sw := math.Cos(argp), math.Sin(argp)
	ci, si := math.Cos(k.incl), math.Sin(k.incl)
	cn, sn := math.Cos(node), math.Sin(node)

	r11 := cn*cw - sn*sw*ci
	r12 := -cn*sw - sn*cw*ci
	r21 := sn*cw + cn*sw*ci
	r22 := -sn*sw + cn*cw*ci
	r31 := sw * si
	r32 := cw * si

	pos := units.Vec3{
		X: (r11*rx + r12*ry) * earthRadiusKm,
		Y: (r21*rx + r22*ry) * earthRadiusKm,
		Z: (r31*rx + r32*ry) * earthRadiusKm,
	}
	vel := units.Vec3{
		X: (r11*vxp + r12*vyp) * earthRadiusKm / 60.0,
		Y: (r21*vxp + r22*vyp) * earthRadiusKm / 60.0,
		Z: (r31*vxp + r32*vyp) * earthRadiusKm / 60.0,
	}
	return State{Pos: pos, Vel: vel}, nil
}

// Ephemeris is the propagation interface shared by the full SGP4
// implementation and the KeplerJ2 ablation baseline.
type Ephemeris interface {
	Epoch() time.Time
	Propagate(tsinceMinutes float64) (State, error)
	PropagateAt(t time.Time) (State, error)
}

// ScratchEphemeris is the optional fast path of Ephemeris: propagators
// that can write the state into caller-owned scratch. Both built-in
// propagators implement it; injected test propagators need not. Batch
// sweeps (the constellation snapshot loop) devirtualize to the two
// concrete types rather than asserting this interface — passing the
// scratch pointer through an interface call would defeat escape
// analysis and put the scratch back on the heap — so the interface
// serves as the compile-time contract that both propagators keep
// offering the Into form.
type ScratchEphemeris interface {
	PropagateAtInto(t time.Time, st *State) error
}

var (
	_ Ephemeris        = (*Propagator)(nil)
	_ Ephemeris        = (*KeplerJ2)(nil)
	_ ScratchEphemeris = (*Propagator)(nil)
	_ ScratchEphemeris = (*KeplerJ2)(nil)
)
