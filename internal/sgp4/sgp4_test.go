package sgp4

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/tle"
	"repro/internal/units"
)

// mustTLE builds a TLE from elements without going through the text
// format.
func mustTLE(incl, raan, ecc, argp, ma, mm, bstar float64) *tle.TLE {
	return &tle.TLE{
		CatalogNum:     44714,
		IntlDesig:      "19074A",
		Epoch:          time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC),
		BStar:          bstar,
		InclinationDeg: incl,
		RAANDeg:        raan,
		Eccentricity:   ecc,
		ArgPerigeeDeg:  argp,
		MeanAnomalyDeg: ma,
		MeanMotion:     mm,
	}
}

// starlinkTLE is a typical Starlink shell-1 element set: 53 deg, 550 km
// (mean motion ~15.06 rev/day).
func starlinkTLE() *tle.TLE {
	return mustTLE(53.05, 120.0, 0.0001, 90.0, 0.0, 15.06, 0.0001)
}

func TestNewRejectsDeepSpace(t *testing.T) {
	geo := mustTLE(0.05, 0, 0.0002, 0, 0, 1.0027, 0) // geostationary
	if _, err := New(geo); !errors.Is(err, ErrDeepSpace) {
		t.Fatalf("err = %v, want ErrDeepSpace", err)
	}
}

func TestNewRejectsBadEcc(t *testing.T) {
	bad := starlinkTLE()
	bad.Eccentricity = 1.5
	if _, err := New(bad); err == nil {
		t.Fatal("expected error for hyperbolic eccentricity")
	}
}

func TestPropagateAltitudeAndSpeed(t *testing.T) {
	p, err := New(starlinkTLE())
	if err != nil {
		t.Fatal(err)
	}
	for _, min := range []float64{0, 10, 47.8, 95.6, 500, 1440} {
		st, err := p.Propagate(min)
		if err != nil {
			t.Fatalf("t=%v: %v", min, err)
		}
		alt := st.Pos.Norm() - units.EarthRadiusKm
		if alt < 520 || alt > 580 {
			t.Errorf("t=%v min: altitude %v km, want ~550", min, alt)
		}
		speed := st.Vel.Norm()
		if speed < 7.4 || speed > 7.8 {
			t.Errorf("t=%v min: speed %v km/s, want ~7.6", min, speed)
		}
	}
}

func TestPropagatePeriod(t *testing.T) {
	p, err := New(starlinkTLE())
	if err != nil {
		t.Fatal(err)
	}
	// One nodal period later the satellite should be near (not exactly
	// at, due to J2 precession) its starting point.
	period := units.MinutesPerDay / 15.06
	s0, err := p.Propagate(0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.Propagate(period)
	if err != nil {
		t.Fatal(err)
	}
	sep := s0.Pos.Sub(s1.Pos).Norm()
	if sep > 250 {
		t.Errorf("separation after one period = %v km, want < 250 (J2 drift only)", sep)
	}
	// Half a period later it should be roughly on the opposite side.
	sh, err := p.Propagate(period / 2)
	if err != nil {
		t.Fatal(err)
	}
	if ang := s0.Pos.AngleBetween(sh.Pos); ang < 2.8 {
		t.Errorf("angle after half period = %v rad, want ~pi", ang)
	}
}

func TestPropagateInclinationBound(t *testing.T) {
	// Maximum |latitude| of the ground track equals the inclination for
	// a prograde orbit. Equivalently max |z|/|r| = sin(incl).
	p, err := New(starlinkTLE())
	if err != nil {
		t.Fatal(err)
	}
	maxZr := 0.0
	for min := 0.0; min < 200; min += 0.5 {
		st, err := p.Propagate(min)
		if err != nil {
			t.Fatal(err)
		}
		zr := math.Abs(st.Pos.Z) / st.Pos.Norm()
		if zr > maxZr {
			maxZr = zr
		}
	}
	want := math.Sin(units.Deg2Rad(53.05))
	if math.Abs(maxZr-want) > 0.01 {
		t.Errorf("max |z|/|r| = %v, want %v", maxZr, want)
	}
}

func TestPropagateVelocityConsistency(t *testing.T) {
	// Finite-difference the position; it must match the reported
	// velocity closely.
	p, err := New(starlinkTLE())
	if err != nil {
		t.Fatal(err)
	}
	const h = 0.001 // minutes
	for _, min := range []float64{5, 50, 500} {
		a, err1 := p.Propagate(min - h)
		b, err2 := p.Propagate(min + h)
		c, err3 := p.Propagate(min)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatal(err1, err2, err3)
		}
		fd := b.Pos.Sub(a.Pos).Scale(1 / (2 * h * 60)) // km/s
		if diff := fd.Sub(c.Vel).Norm(); diff > 0.002 {
			t.Errorf("t=%v: |fd - vel| = %v km/s", min, diff)
		}
	}
}

func TestPropagateRAANRegression(t *testing.T) {
	// For a prograde orbit the node regresses (moves westward):
	// check the longitude of the ascending-node crossing drifts in the
	// expected direction over a day (~ -5 deg/day for 53 deg / 550 km).
	p, err := New(starlinkTLE())
	if err != nil {
		t.Fatal(err)
	}
	node0 := ascendingNodeRA(t, p, 0)
	node1 := ascendingNodeRA(t, p, 1440)
	drift := units.WrapDeg180(node1 - node0)
	if drift > -3 || drift < -8 {
		t.Errorf("nodal drift = %v deg/day, want about -5", drift)
	}
}

// ascendingNodeRA finds the right ascension of an ascending equator
// crossing shortly after tsince.
func ascendingNodeRA(t *testing.T, p *Propagator, tsince float64) float64 {
	t.Helper()
	prev, err := p.Propagate(tsince)
	if err != nil {
		t.Fatal(err)
	}
	for min := tsince + 0.5; min < tsince+200; min += 0.5 {
		cur, err := p.Propagate(min)
		if err != nil {
			t.Fatal(err)
		}
		if prev.Pos.Z < 0 && cur.Pos.Z >= 0 {
			return units.WrapDeg360(units.Rad2Deg(math.Atan2(cur.Pos.Y, cur.Pos.X)))
		}
		prev = cur
	}
	t.Fatal("no ascending node found")
	return 0
}

func TestDragLowersOrbit(t *testing.T) {
	// With a strongly positive B*, the mean semi-major axis decays:
	// after several days the orbit-averaged radius is smaller.
	hi := starlinkTLE()
	hi.BStar = 0.01
	p, err := New(hi)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(startMin float64) float64 {
		sum := 0.0
		n := 0
		for m := startMin; m < startMin+96; m += 1 {
			st, err := p.Propagate(m)
			if err != nil {
				t.Fatal(err)
			}
			sum += st.Pos.Norm()
			n++
		}
		return sum / float64(n)
	}
	r0 := avg(0)
	r10 := avg(10 * 1440)
	if r10 >= r0 {
		t.Errorf("mean radius grew under drag: %v -> %v", r0, r10)
	}
}

func TestPropagateBackwards(t *testing.T) {
	p, err := New(starlinkTLE())
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Propagate(-30)
	if err != nil {
		t.Fatalf("backward propagation: %v", err)
	}
	alt := st.Pos.Norm() - units.EarthRadiusKm
	if alt < 500 || alt > 600 {
		t.Errorf("backward altitude = %v", alt)
	}
}

func TestPropagateAtUsesEpoch(t *testing.T) {
	tl := starlinkTLE()
	p, err := New(tl)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.PropagateAt(tl.Epoch.Add(30 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Propagate(30)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Pos.Sub(s2.Pos).Norm() > 1e-9 {
		t.Error("PropagateAt disagrees with Propagate")
	}
}

func TestEccentricOrbitRadiusRange(t *testing.T) {
	// e=0.1: radius should swing between a(1-e) and a(1+e).
	ecc := mustTLE(63.4, 40, 0.1, 270, 0, 13.0, 0)
	p, err := New(ecc)
	if err != nil {
		t.Fatal(err)
	}
	minR, maxR := math.Inf(1), math.Inf(-1)
	for m := 0.0; m < 120; m += 0.25 {
		st, err := p.Propagate(m)
		if err != nil {
			t.Fatal(err)
		}
		r := st.Pos.Norm()
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	a := math.Pow(units.MuEarth*math.Pow(86400/(13.0*2*math.Pi), 2), 1.0/3.0)
	if math.Abs(minR-a*0.9)/a > 0.02 {
		t.Errorf("perigee radius %v, want ~%v", minR, a*0.9)
	}
	if math.Abs(maxR-a*1.1)/a > 0.02 {
		t.Errorf("apogee radius %v, want ~%v", maxR, a*1.1)
	}
}

func TestISSRealTLE(t *testing.T) {
	const l1 = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927"
	const l2 = "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537"
	parsed, err := tle.Parse(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(parsed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Propagate(0)
	if err != nil {
		t.Fatal(err)
	}
	alt := st.Pos.Norm() - units.EarthRadiusKm
	// ISS altitude in 2008: ~340-360 km.
	if alt < 320 || alt > 380 {
		t.Errorf("ISS altitude = %v km", alt)
	}
	if sp := st.Vel.Norm(); sp < 7.6 || sp > 7.8 {
		t.Errorf("ISS speed = %v km/s", sp)
	}
}

func TestKeplerJ2MatchesSGP4Roughly(t *testing.T) {
	// The ablation baseline should track SGP4 to within tens of km over
	// a couple of hours for a near-circular orbit with small drag.
	tl := starlinkTLE()
	tl.BStar = 0
	p, err := New(tl)
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKeplerJ2(tl)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []float64{0, 30, 120} {
		a, err1 := p.Propagate(m)
		b, err2 := k.Propagate(m)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		sep := a.Pos.Sub(b.Pos).Norm()
		// The two models differ by short-period J2 terms (~10 km) plus
		// secular differences that grow slowly.
		if sep > 100 {
			t.Errorf("t=%v: SGP4 vs KeplerJ2 separation = %v km", m, sep)
		}
	}
}

func TestKeplerJ2AltitudeStable(t *testing.T) {
	k, err := NewKeplerJ2(starlinkTLE())
	if err != nil {
		t.Fatal(err)
	}
	for m := 0.0; m < 1440; m += 30 {
		st, err := k.Propagate(m)
		if err != nil {
			t.Fatal(err)
		}
		alt := st.Pos.Norm() - units.EarthRadiusKm
		if alt < 520 || alt > 580 {
			t.Errorf("t=%v: KeplerJ2 altitude %v", m, alt)
		}
	}
}

func TestAngularMomentumDirectionStable(t *testing.T) {
	// Orbit normal should stay near the initial normal over one orbit
	// (precession is slow).
	p, err := New(starlinkTLE())
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := p.Propagate(0)
	h0 := s0.Pos.Cross(s0.Vel).Unit()
	for m := 1.0; m < 96; m += 5 {
		st, err := p.Propagate(m)
		if err != nil {
			t.Fatal(err)
		}
		h := st.Pos.Cross(st.Vel).Unit()
		if ang := units.Rad2Deg(h0.AngleBetween(h)); ang > 0.3 {
			t.Errorf("t=%v: orbit normal moved %v deg", m, ang)
		}
	}
}

func BenchmarkPropagate(b *testing.B) {
	p, err := New(starlinkTLE())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Propagate(float64(i % 1440)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeplerJ2(b *testing.B) {
	k, err := NewKeplerJ2(starlinkTLE())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := k.Propagate(float64(i % 1440)); err != nil {
			b.Fatal(err)
		}
	}
}
