// Package astro implements the coordinate frames and ephemerides the
// reproduction needs: Greenwich sidereal time, the TEME→ECEF rotation
// used to ground SGP4 output, geodetic conversions for terminal
// positions, topocentric look angles (angle of elevation, azimuth,
// range), a low-precision solar ephemeris, and the Earth-shadow test
// that decides whether a satellite is sunlit.
//
// Precision notes: GMST uses the IAU 1982 series; the solar ephemeris
// is the low-precision formulation from the Astronomical Almanac
// (±0.01° over decades), far more accurate than the 15-second
// scheduling granularity this module is used to study. Polar motion
// and UT1-UTC are ignored (sub-arcsecond effects).
package astro

import (
	"math"
	"time"

	"repro/internal/tle"
	"repro/internal/units"
)

// GMST returns the Greenwich Mean Sidereal Time in radians, in
// [0, 2π), for the given time (IAU 1982 model).
func GMST(t time.Time) float64 {
	jd := tle.JulianDate(t)
	// Julian centuries from J2000.
	tut1 := (jd - 2451545.0) / 36525.0
	secs := 67310.54841 +
		(876600.0*3600.0+8640184.812866)*tut1 +
		0.093104*tut1*tut1 -
		6.2e-6*tut1*tut1*tut1
	theta := math.Mod(secs, 86400.0) / 240.0 // seconds -> degrees
	return units.WrapRadTwoPi(units.Deg2Rad(theta))
}

// Frame is the TEME→ECEF rotation at one instant, with the sidereal
// angle's sine and cosine precomputed. A snapshot sweep over thousands
// of satellites shares one instant, so hoisting FrameAt out of the
// per-satellite loop removes the repeated Julian-date reduction and
// trig from the hot path. Frame.ToECEF and Frame.ToECEFVel are
// bit-identical to TEMEToECEF at the same instant: the same operations
// in the same order on the same rotation terms.
type Frame struct {
	cosTheta, sinTheta float64
}

// FrameAt computes the rotation frame for time t (one GMST evaluation,
// one sin/cos pair).
func FrameAt(t time.Time) Frame {
	theta := GMST(t)
	return Frame{cosTheta: math.Cos(theta), sinTheta: math.Sin(theta)}
}

// ToECEF rotates a TEME position into the Earth-fixed frame. Use this
// when the velocity is not needed: it skips the Earth-rotation terms
// entirely.
func (f Frame) ToECEF(posTEME units.Vec3) units.Vec3 {
	c, s := f.cosTheta, f.sinTheta
	return units.Vec3{
		X: c*posTEME.X + s*posTEME.Y,
		Y: -s*posTEME.X + c*posTEME.Y,
		Z: posTEME.Z,
	}
}

// ToECEFVel rotates a TEME position and velocity into the Earth-fixed
// frame, applying the Earth-rotation term to the velocity.
func (f Frame) ToECEFVel(posTEME, velTEME units.Vec3) (posECEF, velECEF units.Vec3) {
	c, s := f.cosTheta, f.sinTheta
	posECEF = f.ToECEF(posTEME)
	// Earth rotation rate, rad/s.
	const omegaEarth = 7.29211514670698e-5
	velRot := units.Vec3{
		X: c*velTEME.X + s*velTEME.Y,
		Y: -s*velTEME.X + c*velTEME.Y,
		Z: velTEME.Z,
	}
	// Subtract ω × r in the rotating frame.
	velECEF = units.Vec3{
		X: velRot.X + omegaEarth*posECEF.Y,
		Y: velRot.Y - omegaEarth*posECEF.X,
		Z: velRot.Z,
	}
	return posECEF, velECEF
}

// TEMEToECEF rotates a position (and optional velocity) vector from
// the TEME frame (SGP4 output) to the Earth-fixed ECEF frame at time
// t. It applies the GMST rotation about the Z axis; velocity
// additionally receives the Earth-rotation term. Loops over many
// satellites at one instant should hoist FrameAt(t) instead.
func TEMEToECEF(posTEME, velTEME units.Vec3, t time.Time) (posECEF, velECEF units.Vec3) {
	return FrameAt(t).ToECEFVel(posTEME, velTEME)
}

// Geodetic is a position on (or above) the WGS-84 ellipsoid.
type Geodetic struct {
	LatDeg float64 // geodetic latitude, degrees, north positive
	LonDeg float64 // longitude, degrees, east positive
	AltKm  float64 // height above ellipsoid, km
}

// ToECEF converts a geodetic position to ECEF coordinates in km.
func (g Geodetic) ToECEF() units.Vec3 {
	lat := units.Deg2Rad(g.LatDeg)
	lon := units.Deg2Rad(g.LonDeg)
	a := units.EarthRadiusWGS84Km
	f := units.EarthFlatteningWGS84
	e2 := f * (2 - f)
	sinLat := math.Sin(lat)
	n := a / math.Sqrt(1-e2*sinLat*sinLat)
	return units.Vec3{
		X: (n + g.AltKm) * math.Cos(lat) * math.Cos(lon),
		Y: (n + g.AltKm) * math.Cos(lat) * math.Sin(lon),
		Z: (n*(1-e2) + g.AltKm) * sinLat,
	}
}

// ECEFToGeodetic converts an ECEF position to geodetic coordinates
// using Bowring's iterative method (converges in a few iterations for
// any LEO altitude).
func ECEFToGeodetic(p units.Vec3) Geodetic {
	a := units.EarthRadiusWGS84Km
	f := units.EarthFlatteningWGS84
	e2 := f * (2 - f)
	lon := math.Atan2(p.Y, p.X)
	r := math.Hypot(p.X, p.Y)
	lat := math.Atan2(p.Z, r*(1-e2)) // initial guess
	var alt float64
	for i := 0; i < 8; i++ {
		sinLat := math.Sin(lat)
		n := a / math.Sqrt(1-e2*sinLat*sinLat)
		alt = r/math.Cos(lat) - n
		newLat := math.Atan2(p.Z, r*(1-e2*n/(n+alt)))
		if math.Abs(newLat-lat) < 1e-12 {
			lat = newLat
			break
		}
		lat = newLat
	}
	return Geodetic{
		LatDeg: units.Rad2Deg(lat),
		LonDeg: units.Rad2Deg(lon),
		AltKm:  alt,
	}
}

// LookAngles is a topocentric observation of a satellite from a ground
// observer: angle of elevation above the horizon, azimuth clockwise
// from true north, and slant range.
type LookAngles struct {
	ElevationDeg float64 // angle of elevation, degrees; negative = below horizon
	AzimuthDeg   float64 // degrees clockwise from north, [0, 360)
	RangeKm      float64 // slant range, km
}

// Observe computes the look angles from an observer (geodetic) to a
// satellite position in ECEF km.
func Observe(obs Geodetic, satECEF units.Vec3) LookAngles {
	o := NewObserver(obs)
	return o.Observe(satECEF)
}

// Observer is a ground observer with its ECEF position and local-frame
// rotation precomputed. Construct once per site and reuse when many
// satellites are observed from the same point: Observer.Observe is
// bit-identical to the package-level Observe (same operations in the
// same order) at a fraction of the cost — the geodetic→ECEF conversion
// and the four trig calls are hoisted out of the per-satellite loop.
type Observer struct {
	ecef                           units.Vec3
	sinLat, cosLat, sinLon, cosLon float64
}

// NewObserver precomputes the observer-side terms of Observe.
func NewObserver(obs Geodetic) Observer {
	lat := units.Deg2Rad(obs.LatDeg)
	lon := units.Deg2Rad(obs.LonDeg)
	return Observer{
		ecef:   obs.ToECEF(),
		sinLat: math.Sin(lat), cosLat: math.Cos(lat),
		sinLon: math.Sin(lon), cosLon: math.Cos(lon),
	}
}

// ECEF returns the observer's precomputed ECEF position in km.
func (o *Observer) ECEF() units.Vec3 { return o.ecef }

// Observe computes the look angles to a satellite position in ECEF km.
func (o *Observer) Observe(satECEF units.Vec3) LookAngles {
	d := satECEF.Sub(o.ecef)
	sinLat, cosLat := o.sinLat, o.cosLat
	sinLon, cosLon := o.sinLon, o.cosLon

	// Rotate the difference vector into the local SEZ (south-east-zenith)
	// frame.
	s := sinLat*cosLon*d.X + sinLat*sinLon*d.Y - cosLat*d.Z
	e := -sinLon*d.X + cosLon*d.Y
	z := cosLat*cosLon*d.X + cosLat*sinLon*d.Y + sinLat*d.Z

	rng := d.Norm()
	el := math.Asin(units.Clamp(z/rng, -1, 1))
	az := math.Atan2(e, -s) // az from north, clockwise
	return LookAngles{
		ElevationDeg: units.Rad2Deg(el),
		AzimuthDeg:   units.WrapDeg360(units.Rad2Deg(az)),
		RangeKm:      rng,
	}
}

// SunPositionECI returns the position of the Sun in an Earth-centered
// inertial frame (geocentric, mean-equator-of-date — adequate for
// shadow geometry) in km, using the Astronomical Almanac low-precision
// formulae.
func SunPositionECI(t time.Time) units.Vec3 {
	jd := tle.JulianDate(t)
	n := jd - 2451545.0
	// Mean longitude and mean anomaly of the Sun, degrees.
	l := units.WrapDeg360(280.460 + 0.9856474*n)
	g := units.Deg2Rad(units.WrapDeg360(357.528 + 0.9856003*n))
	// Ecliptic longitude.
	lambda := units.Deg2Rad(l + 1.915*math.Sin(g) + 0.020*math.Sin(2*g))
	// Distance in AU.
	rAU := 1.00014 - 0.01671*math.Cos(g) - 0.00014*math.Cos(2*g)
	// Obliquity of the ecliptic.
	eps := units.Deg2Rad(23.439 - 0.0000004*n)
	r := rAU * units.AUKm
	return units.Vec3{
		X: r * math.Cos(lambda),
		Y: r * math.Cos(eps) * math.Sin(lambda),
		Z: r * math.Sin(eps) * math.Sin(lambda),
	}
}

// SunPositionECEF returns the Sun position rotated into the
// Earth-fixed frame at time t.
func SunPositionECEF(t time.Time) units.Vec3 {
	p, _ := TEMEToECEF(SunPositionECI(t), units.Vec3{}, t)
	return p
}

// IsSunlit reports whether a satellite at the given ECI position (km)
// is illuminated by the Sun at time t, using a conical Earth shadow
// model (umbra only). Positions just inside the penumbra count as
// sunlit, matching the operational meaning ("solar panels produce
// power").
func IsSunlit(satECI units.Vec3, t time.Time) bool {
	sh := NewShadow(SunPositionECI(t))
	return sh.Sunlit(satECI)
}

// Shadow is the Earth's umbra cone for one Sun position, with the
// shadow-axis direction and cone constants (apex distance, half-angle
// tangent) hoisted out of the per-satellite test. It is the single
// shadow geometry shared by astro.IsSunlit and the constellation
// snapshot sweep, so the two can never drift; a full-constellation
// snapshot computes the constants once and pays only a dot product, a
// norm, and a multiply per satellite.
type Shadow struct {
	sunDir   units.Vec3 // unit vector toward the Sun
	apexDist float64    // Earth center → umbra apex, km
	tanAlpha float64    // tangent of the umbra half-angle
}

// NewShadow precomputes the umbra cone for a geocentric Sun position
// in km.
func NewShadow(sun units.Vec3) Shadow {
	sunDist := sun.Norm()
	// Half-angle of the umbra cone.
	alpha := math.Asin((units.SunRadiusKm - units.EarthRadiusKm) / sunDist)
	return Shadow{
		sunDir: sun.Unit(),
		// Distance from Earth's center to the umbra apex.
		apexDist: units.EarthRadiusKm / math.Sin(alpha),
		tanAlpha: math.Tan(alpha),
	}
}

// Sunlit reports whether a satellite at the given geocentric position
// (km) is outside the umbra.
func (sh *Shadow) Sunlit(sat units.Vec3) bool {
	// Component of satellite position along the anti-solar axis.
	along := sat.Dot(sh.sunDir)
	if along >= 0 {
		// Satellite is on the day side of the Earth's center plane.
		return true
	}
	// Perpendicular distance from the shadow axis.
	perp := sat.Sub(sh.sunDir.Scale(along)).Norm()
	behind := -along // positive km behind Earth's center
	if behind >= sh.apexDist {
		return true // beyond the umbra apex
	}
	// Radius of the umbra at the satellite's along-axis distance.
	return perp > (sh.apexDist-behind)*sh.tanAlpha
}

// SolarElevationDeg returns the Sun's elevation angle above the local
// horizon for a geodetic observer — used to distinguish local day from
// night in feature construction.
func SolarElevationDeg(obs Geodetic, t time.Time) float64 {
	sunECEF := SunPositionECEF(t)
	return Observe(obs, sunECEF).ElevationDeg
}
