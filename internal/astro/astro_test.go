package astro

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/units"
)

func TestGMSTKnownValue(t *testing.T) {
	// Vallado example 3-5: 1992 Aug 20 12:14 UT1 -> GMST 152.578787810 deg.
	tm := time.Date(1992, 8, 20, 12, 14, 0, 0, time.UTC)
	got := units.Rad2Deg(GMST(tm))
	if math.Abs(got-152.578787810) > 1e-4 {
		t.Errorf("GMST = %v deg, want 152.578787810", got)
	}
}

func TestGMSTIncreasesWithTime(t *testing.T) {
	t0 := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	g0 := GMST(t0)
	g1 := GMST(t0.Add(1 * time.Hour))
	// Sidereal rate is ~15.04 deg/hour.
	diff := units.Rad2Deg(units.WrapRadTwoPi(g1 - g0))
	if math.Abs(diff-15.041) > 0.01 {
		t.Errorf("sidereal advance over 1h = %v deg, want ~15.041", diff)
	}
}

func TestGeodeticECEFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		g := Geodetic{
			LatDeg: rng.Float64()*170 - 85,
			LonDeg: rng.Float64()*360 - 180,
			AltKm:  rng.Float64() * 1000,
		}
		back := ECEFToGeodetic(g.ToECEF())
		if math.Abs(back.LatDeg-g.LatDeg) > 1e-6 {
			t.Fatalf("lat %v -> %v", g.LatDeg, back.LatDeg)
		}
		if units.AngularDistDeg(back.LonDeg, g.LonDeg) > 1e-6 {
			t.Fatalf("lon %v -> %v", g.LonDeg, back.LonDeg)
		}
		if math.Abs(back.AltKm-g.AltKm) > 1e-5 {
			t.Fatalf("alt %v -> %v", g.AltKm, back.AltKm)
		}
	}
}

func TestECEFEquator(t *testing.T) {
	g := Geodetic{LatDeg: 0, LonDeg: 0, AltKm: 0}
	p := g.ToECEF()
	if math.Abs(p.X-units.EarthRadiusWGS84Km) > 1e-6 || math.Abs(p.Y) > 1e-9 || math.Abs(p.Z) > 1e-9 {
		t.Errorf("equator/greenwich ECEF = %v", p)
	}
	g = Geodetic{LatDeg: 90, LonDeg: 0, AltKm: 0}
	p = g.ToECEF()
	// Polar radius b = a(1-f) ~ 6356.752 km.
	wantZ := units.EarthRadiusWGS84Km * (1 - units.EarthFlatteningWGS84)
	if math.Abs(p.Z-wantZ) > 1e-3 || math.Hypot(p.X, p.Y) > 1e-6 {
		t.Errorf("north pole ECEF = %v, want z=%v", p, wantZ)
	}
}

func TestObserveZenith(t *testing.T) {
	obs := Geodetic{LatDeg: 40, LonDeg: -90, AltKm: 0}
	obsECEF := obs.ToECEF()
	// Satellite directly overhead: along the local vertical. For the
	// ellipsoid, "up" differs slightly from the radial direction, so use
	// the geodetic normal by raising the altitude.
	up := Geodetic{LatDeg: 40, LonDeg: -90, AltKm: 550}
	la := Observe(obs, up.ToECEF())
	if math.Abs(la.ElevationDeg-90) > 0.01 {
		t.Errorf("zenith elevation = %v", la.ElevationDeg)
	}
	if math.Abs(la.RangeKm-550) > 1 {
		t.Errorf("zenith range = %v", la.RangeKm)
	}
	_ = obsECEF
}

func TestObserveNorthAzimuth(t *testing.T) {
	obs := Geodetic{LatDeg: 40, LonDeg: 0, AltKm: 0}
	// A point north of the observer at altitude.
	north := Geodetic{LatDeg: 45, LonDeg: 0, AltKm: 550}
	la := Observe(obs, north.ToECEF())
	if !(la.AzimuthDeg < 1 || la.AzimuthDeg > 359) {
		t.Errorf("azimuth to northern point = %v, want ~0", la.AzimuthDeg)
	}
	east := Geodetic{LatDeg: 40, LonDeg: 5, AltKm: 550}
	la = Observe(obs, east.ToECEF())
	if math.Abs(la.AzimuthDeg-90) > 3 {
		t.Errorf("azimuth to eastern point = %v, want ~90", la.AzimuthDeg)
	}
	south := Geodetic{LatDeg: 35, LonDeg: 0, AltKm: 550}
	la = Observe(obs, south.ToECEF())
	if math.Abs(la.AzimuthDeg-180) > 1 {
		t.Errorf("azimuth to southern point = %v, want ~180", la.AzimuthDeg)
	}
	west := Geodetic{LatDeg: 40, LonDeg: -5, AltKm: 550}
	la = Observe(obs, west.ToECEF())
	if math.Abs(la.AzimuthDeg-270) > 3 {
		t.Errorf("azimuth to western point = %v, want ~270", la.AzimuthDeg)
	}
}

func TestObserveBelowHorizon(t *testing.T) {
	obs := Geodetic{LatDeg: 0, LonDeg: 0, AltKm: 0}
	// A satellite on the opposite side of the Earth.
	anti := Geodetic{LatDeg: 0, LonDeg: 180, AltKm: 550}
	la := Observe(obs, anti.ToECEF())
	if la.ElevationDeg > -45 {
		t.Errorf("antipodal satellite elevation = %v, want strongly negative", la.ElevationDeg)
	}
}

func TestSunPositionDistance(t *testing.T) {
	for _, m := range []time.Month{time.January, time.April, time.July, time.October} {
		tm := time.Date(2023, m, 15, 0, 0, 0, 0, time.UTC)
		d := SunPositionECI(tm).Norm()
		if d < 0.975*units.AUKm || d > 1.025*units.AUKm {
			t.Errorf("%v: sun distance = %v km", m, d)
		}
	}
	// Earth is closest to the Sun in early January.
	dJan := SunPositionECI(time.Date(2023, 1, 3, 0, 0, 0, 0, time.UTC)).Norm()
	dJul := SunPositionECI(time.Date(2023, 7, 4, 0, 0, 0, 0, time.UTC)).Norm()
	if dJan >= dJul {
		t.Errorf("perihelion ordering wrong: Jan %v >= Jul %v", dJan, dJul)
	}
}

func TestSunDeclinationSeasons(t *testing.T) {
	// Summer solstice: declination ~ +23.4 deg.
	sun := SunPositionECI(time.Date(2023, 6, 21, 12, 0, 0, 0, time.UTC))
	dec := units.Rad2Deg(math.Asin(sun.Z / sun.Norm()))
	if math.Abs(dec-23.43) > 0.3 {
		t.Errorf("June declination = %v", dec)
	}
	sun = SunPositionECI(time.Date(2023, 12, 21, 12, 0, 0, 0, time.UTC))
	dec = units.Rad2Deg(math.Asin(sun.Z / sun.Norm()))
	if math.Abs(dec+23.43) > 0.3 {
		t.Errorf("December declination = %v", dec)
	}
	// Equinox: ~0.
	sun = SunPositionECI(time.Date(2023, 3, 20, 21, 0, 0, 0, time.UTC))
	dec = units.Rad2Deg(math.Asin(sun.Z / sun.Norm()))
	if math.Abs(dec) > 0.5 {
		t.Errorf("equinox declination = %v", dec)
	}
}

func TestIsSunlitGeometry(t *testing.T) {
	tm := time.Date(2023, 3, 20, 12, 0, 0, 0, time.UTC)
	sun := SunPositionECI(tm)
	sunDir := sun.Unit()

	// Satellite between Earth and Sun: sunlit.
	sat := sunDir.Scale(units.EarthRadiusKm + 550)
	if !IsSunlit(sat, tm) {
		t.Error("day-side satellite should be sunlit")
	}
	// Satellite directly behind Earth at LEO altitude: in umbra.
	sat = sunDir.Scale(-(units.EarthRadiusKm + 550))
	if IsSunlit(sat, tm) {
		t.Error("satellite in Earth shadow should be dark")
	}
	// Satellite behind Earth but displaced far off-axis: sunlit.
	perp := sunDir.Cross(units.Vec3{Z: 1}).Unit()
	sat = sunDir.Scale(-(units.EarthRadiusKm + 550)).Add(perp.Scale(3 * units.EarthRadiusKm))
	if !IsSunlit(sat, tm) {
		t.Error("off-axis satellite should be sunlit")
	}
}

func TestSunlitFractionOfOrbit(t *testing.T) {
	// A satellite in a circular equatorial orbit at 550 km should be in
	// shadow for roughly 30-40% of the orbit near the equinox.
	tm := time.Date(2023, 3, 20, 12, 0, 0, 0, time.UTC)
	r := units.EarthRadiusKm + 550
	dark := 0
	n := 360
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / float64(n)
		sat := units.Vec3{X: r * math.Cos(th), Y: r * math.Sin(th), Z: 0}
		if !IsSunlit(sat, tm) {
			dark++
		}
	}
	frac := float64(dark) / float64(n)
	if frac < 0.25 || frac > 0.45 {
		t.Errorf("dark fraction = %v, want ~0.3-0.4", frac)
	}
}

func TestSolarElevationDayNight(t *testing.T) {
	// Madrid at noon UTC should see the Sun up; at midnight down.
	madrid := Geodetic{LatDeg: 40.4, LonDeg: -3.7, AltKm: 0.65}
	day := SolarElevationDeg(madrid, time.Date(2023, 6, 15, 12, 0, 0, 0, time.UTC))
	night := SolarElevationDeg(madrid, time.Date(2023, 6, 15, 0, 0, 0, 0, time.UTC))
	if day < 30 {
		t.Errorf("noon solar elevation = %v", day)
	}
	if night > -10 {
		t.Errorf("midnight solar elevation = %v", night)
	}
}

func TestTEMEToECEFPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tm := time.Date(2023, 5, 1, 6, 30, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		p := units.Vec3{X: rng.NormFloat64() * 7000, Y: rng.NormFloat64() * 7000, Z: rng.NormFloat64() * 7000}
		q, _ := TEMEToECEF(p, units.Vec3{}, tm)
		if math.Abs(q.Norm()-p.Norm()) > 1e-6*math.Max(p.Norm(), 1) {
			t.Fatalf("rotation changed norm: %v -> %v", p.Norm(), q.Norm())
		}
		if math.Abs(q.Z-p.Z) > 1e-9 {
			t.Fatalf("rotation changed Z: %v -> %v", p.Z, q.Z)
		}
	}
}

func TestNoonSunIsSouthAtNorthernLatitudes(t *testing.T) {
	// At local solar noon the sun sits due south for a mid-northern
	// observer. Iowa local noon ~ 18:06 UTC (lon -91.5).
	iowa := Geodetic{LatDeg: 41.66, LonDeg: -91.53, AltKm: 0.2}
	noonUTC := time.Date(2023, 3, 21, 18, 6, 0, 0, time.UTC)
	sun := SunPositionECEF(noonUTC)
	la := Observe(iowa, sun)
	if math.Abs(units.WrapDeg180(la.AzimuthDeg-180)) > 5 {
		t.Errorf("noon sun azimuth = %v, want ~180", la.AzimuthDeg)
	}
	// Equinox noon elevation ~ 90 - |lat|.
	if math.Abs(la.ElevationDeg-(90-41.66)) > 2 {
		t.Errorf("noon sun elevation = %v, want ~%v", la.ElevationDeg, 90-41.66)
	}
}

// refSunlit is an independent transcription of the conical-umbra
// geometry (the formula both astro.IsSunlit and the former
// constellation.sunlitGeocentric implemented before they were unified
// behind Shadow). The cross-check below keeps the shared Shadow
// implementation pinned to it bit for bit, so the geometry can never
// silently drift under refactoring.
func refSunlit(satECI, sun units.Vec3) bool {
	sunDir := sun.Unit()
	along := satECI.Dot(sunDir)
	if along >= 0 {
		return true
	}
	perp := satECI.Sub(sunDir.Scale(along)).Norm()
	sunDist := sun.Norm()
	alpha := math.Asin((units.SunRadiusKm - units.EarthRadiusKm) / sunDist)
	apexDist := units.EarthRadiusKm / math.Sin(alpha)
	behind := -along
	if behind >= apexDist {
		return true
	}
	return perp > (apexDist-behind)*math.Tan(alpha)
}

func TestShadowCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tm := range []time.Time{
		time.Date(2023, 3, 20, 12, 0, 0, 0, time.UTC),
		time.Date(2023, 6, 21, 0, 0, 0, 0, time.UTC),
		time.Date(2023, 12, 21, 18, 30, 0, 0, time.UTC),
	} {
		sun := SunPositionECI(tm)
		sh := NewShadow(sun)
		for i := 0; i < 2000; i++ {
			// Random LEO-shell positions, including points near the shadow
			// axis where the day/night boundary is decided.
			r := units.EarthRadiusKm + 300 + rng.Float64()*1000
			theta := rng.Float64() * 2 * math.Pi
			z := 2*rng.Float64() - 1
			s := math.Sqrt(1 - z*z)
			sat := units.Vec3{X: r * s * math.Cos(theta), Y: r * s * math.Sin(theta), Z: r * z}
			want := refSunlit(sat, sun)
			if got := sh.Sunlit(sat); got != want {
				t.Fatalf("Shadow.Sunlit(%v) at %v = %v, reference = %v", sat, tm, got, want)
			}
			if got := IsSunlit(sat, tm); got != want {
				t.Fatalf("IsSunlit(%v) at %v = %v, reference = %v", sat, tm, got, want)
			}
		}
	}
}

func TestFrameMatchesTEMEToECEF(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tm := range []time.Time{
		time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2023, 8, 14, 6, 45, 12, 0, time.UTC),
	} {
		f := FrameAt(tm)
		for i := 0; i < 500; i++ {
			pos := units.Vec3{X: rng.NormFloat64() * 7000, Y: rng.NormFloat64() * 7000, Z: rng.NormFloat64() * 7000}
			vel := units.Vec3{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8, Z: rng.NormFloat64() * 8}
			wantP, wantV := TEMEToECEF(pos, vel, tm)
			gotP, gotV := f.ToECEFVel(pos, vel)
			if gotP != wantP || gotV != wantV {
				t.Fatalf("Frame rotation diverged from TEMEToECEF: got (%v, %v), want (%v, %v)", gotP, gotV, wantP, wantV)
			}
			if only := f.ToECEF(pos); only != wantP {
				t.Fatalf("Frame.ToECEF = %v, want %v", only, wantP)
			}
		}
	}
}
