// Package skyplot renders polar sky plots as PNG images — the visual
// artifact the paper's authors used to manually validate DTW
// identifications (§4: "we plot the trajectories of all available
// satellites on a polar plot and visually compare them to the isolated
// trajectory"). The plot convention matches the obstruction map:
// zenith at the center, the 25° elevation mask at the rim, azimuth
// clockwise from north (up).
package skyplot

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"repro/internal/obstruction"
	"repro/internal/units"
)

// Standard series colors.
var (
	ColorGrid      = color.RGBA{60, 60, 60, 255}
	ColorObserved  = color.RGBA{255, 255, 255, 255}
	ColorBest      = color.RGBA{80, 220, 120, 255}
	ColorCandidate = color.RGBA{130, 130, 130, 255}
	ColorAccent    = color.RGBA{240, 120, 80, 255}
)

// Plot is a polar sky plot under construction.
type Plot struct {
	img    *image.RGBA
	size   int
	center float64
	radius float64
	// MinElevDeg is the rim elevation. Default 25 (the dish mask).
	minElev float64
}

// New creates a square plot of the given pixel size (minimum 64).
func New(size int) (*Plot, error) {
	if size < 64 {
		return nil, fmt.Errorf("skyplot: size %d too small (min 64)", size)
	}
	p := &Plot{
		img:     image.NewRGBA(image.Rect(0, 0, size, size)),
		size:    size,
		center:  float64(size-1) / 2,
		radius:  float64(size)/2 - 8,
		minElev: 25,
	}
	// Dark background.
	for i := range p.img.Pix {
		switch i % 4 {
		case 3:
			p.img.Pix[i] = 255
		default:
			p.img.Pix[i] = 16
		}
	}
	p.drawGrid()
	return p, nil
}

// drawGrid paints elevation rings every 20° and the four cardinal
// spokes.
func (p *Plot) drawGrid() {
	for el := p.minElev; el < 90; el += 20 {
		p.circle(p.rOf(el), ColorGrid)
	}
	p.circle(p.rOf(p.minElev), ColorGrid)
	for az := 0.0; az < 360; az += 90 {
		x1, y1 := p.xy(obstruction.PolarPoint{ElevationDeg: 90, AzimuthDeg: az})
		x2, y2 := p.xy(obstruction.PolarPoint{ElevationDeg: p.minElev, AzimuthDeg: az})
		p.line(x1, y1, x2, y2, ColorGrid)
	}
	// North marker: a short double line outside the rim at azimuth 0.
	xa, ya := p.xyRaw(p.radius+2, 0)
	xb, yb := p.xyRaw(p.radius+6, 0)
	p.line(xa, ya, xb, yb, ColorAccent)
}

// rOf maps elevation to pixel radius.
func (p *Plot) rOf(elevDeg float64) float64 {
	e := units.Clamp(elevDeg, p.minElev, 90)
	return (90 - e) / (90 - p.minElev) * p.radius
}

// xy maps a sky direction to pixel coordinates.
func (p *Plot) xy(pt obstruction.PolarPoint) (int, int) {
	return p.xyRaw(p.rOf(pt.ElevationDeg), pt.AzimuthDeg)
}

func (p *Plot) xyRaw(r, azDeg float64) (int, int) {
	az := units.Deg2Rad(azDeg)
	return int(math.Round(p.center + r*math.Sin(az))),
		int(math.Round(p.center - r*math.Cos(az)))
}

func (p *Plot) set(x, y int, c color.RGBA) {
	if x < 0 || x >= p.size || y < 0 || y >= p.size {
		return
	}
	p.img.SetRGBA(x, y, c)
}

// circle draws a 1-px ring of radius r around the center.
func (p *Plot) circle(r float64, c color.RGBA) {
	steps := int(2*math.Pi*r) + 8
	for i := 0; i < steps; i++ {
		th := 2 * math.Pi * float64(i) / float64(steps)
		p.set(int(math.Round(p.center+r*math.Cos(th))), int(math.Round(p.center+r*math.Sin(th))), c)
	}
}

// line draws with Bresenham.
func (p *Plot) line(x0, y0, x1, y1 int, c color.RGBA) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		p.set(x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// AddTrack draws a connected trajectory. Below-mask points clamp to
// the rim (the real sky-track continues below the mask; clamping keeps
// the arc visually continuous).
func (p *Plot) AddTrack(track []obstruction.PolarPoint, c color.RGBA) {
	for i := 1; i < len(track); i++ {
		x0, y0 := p.xy(track[i-1])
		x1, y1 := p.xy(track[i])
		p.line(x0, y0, x1, y1, c)
	}
	if len(track) == 1 {
		p.AddPoint(track[0], c)
	}
}

// AddPoint draws a 3×3 marker at a sky direction.
func (p *Plot) AddPoint(pt obstruction.PolarPoint, c color.RGBA) {
	x, y := p.xy(pt)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			p.set(x+dx, y+dy, c)
		}
	}
}

// Image exposes the rendered image.
func (p *Plot) Image() *image.RGBA { return p.img }

// EncodePNG writes the plot.
func (p *Plot) EncodePNG(w io.Writer) error {
	if err := png.Encode(w, p.img); err != nil {
		return fmt.Errorf("skyplot: encode: %w", err)
	}
	return nil
}

// Validation renders the paper's manual-check view in one call: the
// observed (XOR-isolated) trajectory in white, every candidate track
// in gray, and the DTW winner in green.
func Validation(size int, observed []obstruction.PolarPoint, candidates map[int][]obstruction.PolarPoint, bestID int) (*Plot, error) {
	p, err := New(size)
	if err != nil {
		return nil, err
	}
	for id, track := range candidates {
		if id == bestID {
			continue // draw the winner last, on top
		}
		p.AddTrack(track, ColorCandidate)
	}
	if best, ok := candidates[bestID]; ok {
		p.AddTrack(best, ColorBest)
	}
	p.AddTrack(observed, ColorObserved)
	return p, nil
}
