package skyplot

import (
	"bytes"
	"image/png"
	"testing"

	"repro/internal/obstruction"
)

func TestNewSizeValidation(t *testing.T) {
	if _, err := New(10); err == nil {
		t.Error("tiny size accepted")
	}
	p, err := New(128)
	if err != nil {
		t.Fatal(err)
	}
	if p.Image().Bounds().Dx() != 128 {
		t.Error("wrong image size")
	}
}

func countColor(p *Plot, want [3]uint8) int {
	img := p.Image()
	n := 0
	for y := 0; y < img.Bounds().Dy(); y++ {
		for x := 0; x < img.Bounds().Dx(); x++ {
			c := img.RGBAAt(x, y)
			if c.R == want[0] && c.G == want[1] && c.B == want[2] {
				n++
			}
		}
	}
	return n
}

func TestGridDrawn(t *testing.T) {
	p, err := New(256)
	if err != nil {
		t.Fatal(err)
	}
	if n := countColor(p, [3]uint8{ColorGrid.R, ColorGrid.G, ColorGrid.B}); n < 500 {
		t.Errorf("grid painted only %d pixels", n)
	}
}

func TestAddTrackPaints(t *testing.T) {
	p, err := New(256)
	if err != nil {
		t.Fatal(err)
	}
	track := []obstruction.PolarPoint{
		{ElevationDeg: 30, AzimuthDeg: 300},
		{ElevationDeg: 70, AzimuthDeg: 350},
		{ElevationDeg: 50, AzimuthDeg: 40},
	}
	p.AddTrack(track, ColorObserved)
	if n := countColor(p, [3]uint8{255, 255, 255}); n < 50 {
		t.Errorf("track painted only %d pixels", n)
	}
}

func TestAddSinglePointTrack(t *testing.T) {
	p, _ := New(128)
	p.AddTrack([]obstruction.PolarPoint{{ElevationDeg: 60, AzimuthDeg: 10}}, ColorAccent)
	if n := countColor(p, [3]uint8{ColorAccent.R, ColorAccent.G, ColorAccent.B}); n < 9 {
		t.Errorf("single-point track painted %d pixels", n)
	}
}

func TestTrackGeometryNorthIsUp(t *testing.T) {
	p, err := New(256)
	if err != nil {
		t.Fatal(err)
	}
	near := func(v int, want float64) bool { return mathAbs(float64(v)-want) <= 1 }
	// A point due north at the rim must land above the center; due
	// east to the right.
	x, y := p.xy(obstruction.PolarPoint{ElevationDeg: 25, AzimuthDeg: 0})
	if float64(y) >= p.center || !near(x, p.center) {
		t.Errorf("north rim at (%d,%d), center %v", x, y, p.center)
	}
	x, y = p.xy(obstruction.PolarPoint{ElevationDeg: 25, AzimuthDeg: 90})
	if float64(x) <= p.center || !near(y, p.center) {
		t.Errorf("east rim at (%d,%d)", x, y)
	}
	// Zenith at the center.
	x, y = p.xy(obstruction.PolarPoint{ElevationDeg: 90, AzimuthDeg: 123})
	if !near(x, p.center) || !near(y, p.center) {
		t.Errorf("zenith at (%d,%d)", x, y)
	}
}

func TestEncodePNG(t *testing.T) {
	p, err := New(128)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 128 {
		t.Error("decoded size mismatch")
	}
}

func TestValidationPlot(t *testing.T) {
	observed := []obstruction.PolarPoint{
		{ElevationDeg: 40, AzimuthDeg: 10}, {ElevationDeg: 60, AzimuthDeg: 30},
	}
	cands := map[int][]obstruction.PolarPoint{
		1: {{ElevationDeg: 41, AzimuthDeg: 11}, {ElevationDeg: 61, AzimuthDeg: 31}},
		2: {{ElevationDeg: 30, AzimuthDeg: 200}, {ElevationDeg: 35, AzimuthDeg: 230}},
	}
	p, err := Validation(256, observed, cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	if countColor(p, [3]uint8{ColorBest.R, ColorBest.G, ColorBest.B}) == 0 {
		t.Error("winner not drawn")
	}
	if countColor(p, [3]uint8{ColorCandidate.R, ColorCandidate.G, ColorCandidate.B}) == 0 {
		t.Error("losing candidate not drawn")
	}
	if countColor(p, [3]uint8{255, 255, 255}) == 0 {
		t.Error("observed track not drawn")
	}
	if _, err := Validation(8, observed, cands, 1); err == nil {
		t.Error("tiny validation plot accepted")
	}
}

func mathAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
