package constellation

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sgp4"
	"repro/internal/telemetry"
)

// failEph is an Ephemeris whose propagation always fails, for
// exercising the skip accounting.
type failEph struct{ epoch time.Time }

func (f failEph) Epoch() time.Time { return f.epoch }
func (f failEph) Propagate(float64) (sgp4.State, error) {
	return sgp4.State{}, errors.New("synthetic decay")
}
func (f failEph) PropagateAt(time.Time) (sgp4.State, error) {
	return sgp4.State{}, errors.New("synthetic decay")
}

func testCons(t *testing.T) *Constellation {
	t.Helper()
	c, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func counterValue(reg *telemetry.Registry, name string) int64 {
	return reg.Snapshot().Counters[name]
}

func TestSnapshotCacheHitMiss(t *testing.T) {
	cons := testCons(t)
	reg := telemetry.NewRegistry()
	cache := NewSnapshotCache(4, reg)
	at := cons.Epoch.Add(10 * time.Minute)

	a := cache.Acquire(cons, at)
	b := cache.Acquire(cons, at)
	if a != b {
		t.Fatal("same (constellation, time) returned distinct snapshots")
	}
	if len(a.States) != cons.Len() {
		t.Fatalf("snapshot has %d states, want %d", len(a.States), cons.Len())
	}
	c := cache.Acquire(cons, at.Add(time.Minute))
	if c == a {
		t.Fatal("different times returned the same snapshot")
	}
	if hits := counterValue(reg, "snapshot_cache_hits_total"); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	if misses := counterValue(reg, "snapshot_cache_misses_total"); misses != 2 {
		t.Fatalf("misses = %d, want 2", misses)
	}
	a.Release()
	b.Release()
	c.Release()
	if cache.Pinned() != 0 {
		t.Fatalf("Pinned = %d after releasing everything", cache.Pinned())
	}
}

func TestSnapshotCacheIndexSharedOnce(t *testing.T) {
	cons := testCons(t)
	reg := telemetry.NewRegistry()
	cache := NewSnapshotCache(4, reg)
	s := cache.Acquire(cons, cons.Epoch)
	defer s.Release()
	if s.Index() != s.Index() {
		t.Fatal("Index() rebuilt on second call")
	}
	if builds := counterValue(reg, "snapshot_index_builds_total"); builds != 1 {
		t.Fatalf("index builds = %d, want 1", builds)
	}
}

func TestSnapshotCacheEvictionRespectsPins(t *testing.T) {
	cons := testCons(t)
	cache := NewSnapshotCache(2, nil)

	// Three pinned snapshots may exceed the capacity — eviction must
	// never yank a snapshot a holder is using.
	var held []*SharedSnapshot
	for i := 0; i < 3; i++ {
		held = append(held, cache.Acquire(cons, cons.Epoch.Add(time.Duration(i)*time.Minute)))
	}
	if cache.Len() != 3 {
		t.Fatalf("Len = %d with 3 pinned snapshots, want 3", cache.Len())
	}
	for _, s := range held {
		s.Release()
	}
	if cache.Len() > 2 {
		t.Fatalf("Len = %d after releases, want <= capacity 2", cache.Len())
	}
	if cache.Pinned() != 0 {
		t.Fatalf("Pinned = %d, want 0", cache.Pinned())
	}

	// An evicted slot re-propagates; a retained one hits.
	s := cache.Acquire(cons, cons.Epoch.Add(2*time.Minute)) // MRU, retained
	s.Release()
	old := cache.Acquire(cons, cons.Epoch) // LRU, evicted earlier
	old.Release()
	if cache.Len() > 2 {
		t.Fatalf("Len = %d, want <= 2", cache.Len())
	}
}

func TestSnapshotCacheCountsSkips(t *testing.T) {
	cons := testCons(t)
	// Break two satellites' propagators.
	cons.Sats[3].Propagator = failEph{epoch: cons.Epoch}
	cons.Sats[7].Propagator = failEph{epoch: cons.Epoch}

	reg := telemetry.NewRegistry()
	cache := NewSnapshotCache(4, reg)
	s := cache.Acquire(cons, cons.Epoch.Add(time.Minute))
	defer s.Release()

	if s.Skipped() != 2 {
		t.Fatalf("Skipped = %d, want 2", s.Skipped())
	}
	if len(s.States) != cons.Len()-2 {
		t.Fatalf("snapshot has %d states, want %d", len(s.States), cons.Len()-2)
	}
	if skips := counterValue(reg, "constellation_propagation_skips_total"); skips != 2 {
		t.Fatalf("telemetry skips = %d, want 2", skips)
	}
	total, bySat := cons.PropagationSkips()
	if total != 2 || len(bySat) != 2 {
		t.Fatalf("PropagationSkips = (%d, %d sats), want (2, 2)", total, len(bySat))
	}
	for id, msg := range bySat {
		if msg != "synthetic decay" {
			t.Fatalf("sat %d error = %q, want the first propagation error", id, msg)
		}
	}

	// A second snapshot accumulates the running total per distinct sat
	// only once, while the total keeps counting.
	s2 := cache.Acquire(cons, cons.Epoch.Add(2*time.Minute))
	defer s2.Release()
	total, bySat = cons.PropagationSkips()
	if total != 4 || len(bySat) != 2 {
		t.Fatalf("after 2 snapshots: PropagationSkips = (%d, %d sats), want (4, 2)", total, len(bySat))
	}
}

func TestFingerprintIdentity(t *testing.T) {
	a := testCons(t)
	b := testCons(t)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identically built constellations have different fingerprints")
	}
	cfg := smallConfig()
	cfg.Seed = 99
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced the same fingerprint")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
}

func TestSnapshotCacheSharedAcrossConstellations(t *testing.T) {
	// Two independently built but identical constellations share cache
	// entries via the fingerprint — the cross-environment sharing the
	// cache exists for.
	a := testCons(t)
	b := testCons(t)
	cache := NewSnapshotCache(4, nil)
	sa := cache.Acquire(a, a.Epoch.Add(time.Minute))
	defer sa.Release()
	sb := cache.Acquire(b, b.Epoch.Add(time.Minute))
	defer sb.Release()
	if sa != sb {
		t.Fatal("equal-fingerprint constellations did not share a snapshot")
	}
}
