package constellation

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/astro"
	"repro/internal/units"
)

// randomSnapshot builds a synthetic snapshot of n satellites at
// uniformly random geocentric directions and LEO altitudes — harsher
// than a Walker shell because it exercises every latitude band
// including directly over the poles.
func randomSnapshot(rng *rand.Rand, n int) []SatState {
	snap := make([]SatState, 0, n)
	for i := 0; i < n; i++ {
		// Uniform direction on the sphere.
		z := rng.Float64()*2 - 1
		theta := rng.Float64() * 2 * math.Pi
		r := units.EarthRadiusKm + 400 + rng.Float64()*800
		xy := math.Sqrt(1 - z*z)
		snap = append(snap, SatState{
			Sat: &Satellite{ID: 1000 + i},
			ECEF: units.Vec3{
				X: r * xy * math.Cos(theta),
				Y: r * xy * math.Sin(theta),
				Z: r * z,
			},
			Sunlit: rng.Intn(2) == 0,
		})
	}
	return snap
}

// TestIndexMatchesLinearScanProperty is the equivalence property test:
// over randomized satellite geometries and observers — including the
// poles and the antimeridian, the classic grid-wraparound traps — the
// index must return exactly what the linear scan returns: same set,
// same order, same floats.
func TestIndexMatchesLinearScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	masks := []float64{1, 5, 25, 40} // 1° exercises the degenerate-cap fallback
	for trial := 0; trial < 25; trial++ {
		snap := randomSnapshot(rng, 200+rng.Intn(1800))
		ix := NewSnapshotIndex(snap)

		observers := []astro.Geodetic{
			{LatDeg: rng.Float64()*180 - 90, LonDeg: rng.Float64()*360 - 180},
			{LatDeg: 90},                  // north pole
			{LatDeg: -90},                 // south pole
			{LatDeg: 89.9, LonDeg: 45},    // inside every cap's pole case
			{LatDeg: 0, LonDeg: 180},      // antimeridian
			{LatDeg: 0, LonDeg: -180},     // antimeridian, negative form
			{LatDeg: 51.2, LonDeg: 179.9}, // cap straddles the wrap
			{LatDeg: -33.7, LonDeg: -179.95},
			{LatDeg: rng.Float64()*20 + 60, LonDeg: rng.Float64()*360 - 180, AltKm: rng.Float64() * 3},
		}
		for _, obs := range observers {
			for _, mask := range masks {
				want := ObserveFrom(obs, snap, mask)
				got := ix.ObserveFrom(obs, mask)
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d obs (%.2f, %.2f) mask %v: index returned %d sats, linear %d — first divergence %s",
						trial, obs.LatDeg, obs.LonDeg, mask, len(got), len(want), firstDivergence(got, want))
				}
			}
		}
	}
}

// firstDivergence renders where two visible lists first differ, for
// failure messages.
func firstDivergence(got, want []Visible) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i].Sat.ID != want[i].Sat.ID || got[i].Look != want[i].Look {
			return fmt.Sprintf("at rank %d: got sat %d, want sat %d", i, got[i].Sat.ID, want[i].Sat.ID)
		}
	}
	return "lengths differ"
}

// TestIndexMatchesLinearScanWalker checks the equivalence on a real
// Walker-delta constellation snapshot — the geometry campaigns run on,
// with its equal-elevation symmetries.
func TestIndexMatchesLinearScanWalker(t *testing.T) {
	c, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot(c.Epoch.Add(30 * time.Minute))
	ix := NewSnapshotIndex(snap)
	observers := []astro.Geodetic{
		{LatDeg: 47.6, LonDeg: -122.3},
		{LatDeg: 0, LonDeg: 0},
		{LatDeg: -53, LonDeg: 179.99},
		{LatDeg: 90},
		{LatDeg: -90},
	}
	for _, obs := range observers {
		for _, mask := range []float64{5, 25} {
			want := ObserveFrom(obs, snap, mask)
			got := ix.ObserveFrom(obs, mask)
			if len(want)+len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("obs (%.1f, %.1f) mask %v: index and linear scan disagree (%d vs %d sats)",
					obs.LatDeg, obs.LonDeg, mask, len(got), len(want))
			}
		}
	}
}

// TestMarkVisibleIDsMatchesScan checks the set-only query against the
// brute-force definition.
func TestMarkVisibleIDsMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	snap := randomSnapshot(rng, 800)
	ix := NewSnapshotIndex(snap)
	obs := astro.Geodetic{LatDeg: 33, LonDeg: -97}

	got := map[int]bool{}
	ix.MarkVisibleIDs(obs, 25, got)

	want := map[int]bool{}
	for _, v := range ObserveFrom(obs, snap, 25) {
		want[v.Sat.ID] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MarkVisibleIDs = %d sats, scan = %d sats", len(got), len(want))
	}
}

// TestAppendObserveFromPreservesPrefix checks that the scratch-reuse
// entry point sorts only its own suffix.
func TestAppendObserveFromPreservesPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	snap := randomSnapshot(rng, 500)
	ix := NewSnapshotIndex(snap)
	sentinel := Visible{Sat: &Satellite{ID: -1}}
	out := ix.AppendObserveFrom([]Visible{sentinel}, astro.Geodetic{LatDeg: 10, LonDeg: 10}, 25)
	if out[0].Sat.ID != -1 {
		t.Fatalf("prefix clobbered: out[0].Sat.ID = %d", out[0].Sat.ID)
	}
	want := ObserveFrom(astro.Geodetic{LatDeg: 10, LonDeg: 10}, snap, 25)
	if !reflect.DeepEqual(out[1:], want) {
		t.Fatalf("suffix differs from linear scan")
	}
}

// TestObserveFromTieBreak is the regression test for the non-stable
// sort bugfix: equal-elevation satellites must come out in ascending
// ID order no matter the snapshot order.
func TestObserveFromTieBreak(t *testing.T) {
	pos := units.Vec3{X: units.EarthRadiusKm + 550}
	// Three satellites at the identical position — elevation ties by
	// construction — listed in descending ID order.
	snap := []SatState{
		{Sat: &Satellite{ID: 30}, ECEF: pos},
		{Sat: &Satellite{ID: 20}, ECEF: pos},
		{Sat: &Satellite{ID: 10}, ECEF: pos},
	}
	obs := astro.Geodetic{LatDeg: 0, LonDeg: 0}
	for _, q := range [][]Visible{
		ObserveFrom(obs, snap, 25),
		NewSnapshotIndex(snap).ObserveFrom(obs, 25),
	} {
		if len(q) != 3 {
			t.Fatalf("visible = %d sats, want 3", len(q))
		}
		for i, wantID := range []int{10, 20, 30} {
			if q[i].Sat.ID != wantID {
				t.Fatalf("rank %d: sat %d, want %d (tie-break by ID broken)", i, q[i].Sat.ID, wantID)
			}
		}
	}
}

// TestIndexCellGeometry sanity-checks the grid construction: cells
// derive from the 25°-mask footprint of the highest shell and every
// satellite lands in exactly one cell.
func TestIndexCellGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	snap := randomSnapshot(rng, 300)
	ix := NewSnapshotIndex(snap)
	latN, lonN := ix.Cells()
	if latN < 6 || lonN < 12 {
		t.Fatalf("grid %dx%d implausibly coarse", latN, lonN)
	}
	total := 0
	for _, cell := range ix.cells {
		total += len(cell)
	}
	if total != len(snap) {
		t.Fatalf("cells hold %d entries, want %d", total, len(snap))
	}
	if ix.Len() != len(snap) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(snap))
	}
}

// TestCapRadiusDeg pins the footprint geometry: a 550 km shell at the
// 25° mask subtends about 8.7°, and degenerate inputs report !ok.
func TestCapRadiusDeg(t *testing.T) {
	lam, ok := capRadiusDeg(units.EarthRadiusKm, units.EarthRadiusKm+550, 25)
	if !ok || math.Abs(lam-8.7) > 0.5 {
		t.Fatalf("capRadiusDeg(550 km, 25°) = %.2f, %v; want ≈8.7, true", lam, ok)
	}
	if _, ok := capRadiusDeg(units.EarthRadiusKm, units.EarthRadiusKm-1, 25); ok {
		t.Fatal("satellite below observer radius should be degenerate")
	}
	if _, ok := capRadiusDeg(units.EarthRadiusKm, units.EarthRadiusKm+550, -2); ok {
		t.Fatal("negative mask should be degenerate")
	}
}

// TestIndexNonStarlinkShellAltitudes pins the grid sizing and the
// index-vs-linear-scan equivalence at the Walker-star preset
// altitudes (Kepler 600 km, Iridium NEXT 780 km, OneWeb 1200 km), so
// the "provably same set, same order" property is exercised well
// outside the 540–570 km band campaigns historically ran at.
func TestIndexNonStarlinkShellAltitudes(t *testing.T) {
	designs := []struct {
		name   string
		shells []Shell
		altKm  float64
	}{
		{"kepler", KeplerShells(), 600},
		{"iridium-next", IridiumNextShells(), 780},
		{"oneweb", OneWebShells(), 1200},
	}
	var prevLam float64
	for _, d := range designs {
		// Footprint half-angle grows monotonically with altitude.
		lam, ok := capRadiusDeg(units.EarthRadiusKm, units.EarthRadiusKm+d.altKm, indexMaskRefDeg)
		if !ok {
			t.Fatalf("%s: degenerate footprint at %v km", d.name, d.altKm)
		}
		if lam <= prevLam {
			t.Fatalf("%s: footprint %v° not larger than lower shell's %v°", d.name, lam, prevLam)
		}
		prevLam = lam

		c, err := New(Config{Shells: d.shells, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		snap := c.Snapshot(c.Epoch.Add(45 * time.Minute))
		if len(snap) != c.Len() {
			t.Fatalf("%s: snapshot dropped satellites (%d of %d)", d.name, len(snap), c.Len())
		}
		ix := NewSnapshotIndex(snap)

		// The grid's cell size must match the analytic footprint of the
		// snapshot's highest radius, clamped exactly as Rebuild documents.
		maxR := 0.0
		for i := range snap {
			if r := snap[i].ECEF.Norm(); r > maxR {
				maxR = r
			}
		}
		wantCell := 8.0
		if lam, ok := capRadiusDeg(units.EarthRadiusKm, maxR, indexMaskRefDeg-indexMarginDeg); ok {
			wantCell = units.Clamp(lam, 2, 30)
		}
		latN, lonN := ix.Cells()
		if latN != int(math.Ceil(180/wantCell)) || lonN != int(math.Ceil(360/wantCell)) {
			t.Fatalf("%s: grid %dx%d does not match analytic cell %.3f°", d.name, latN, lonN, wantCell)
		}

		// Equivalence: seeded-random observers plus the classic traps
		// (poles, antimeridian), at masks below and above the reference.
		rng := rand.New(rand.NewSource(int64(len(snap))))
		observers := []astro.Geodetic{
			{LatDeg: 90}, {LatDeg: -90},
			{LatDeg: 0, LonDeg: 180}, {LatDeg: 51.2, LonDeg: 179.9},
			{LatDeg: 41.661, LonDeg: -91.530, AltKm: 0.2},
		}
		for i := 0; i < 6; i++ {
			observers = append(observers, astro.Geodetic{
				LatDeg: rng.Float64()*180 - 90,
				LonDeg: rng.Float64()*360 - 180,
				AltKm:  rng.Float64() * 2,
			})
		}
		for _, obs := range observers {
			for _, mask := range []float64{5, 15, 25, 40} {
				want := ObserveFrom(obs, snap, mask)
				got := ix.ObserveFrom(obs, mask)
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s obs (%.2f, %.2f) mask %v: index %d sats vs linear %d — %s",
						d.name, obs.LatDeg, obs.LonDeg, mask, len(got), len(want), firstDivergence(got, want))
				}
			}
		}
	}
}
