package constellation

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/astro"
	"repro/internal/tle"
	"repro/internal/units"
)

// smallConfig keeps tests fast: one reduced shell.
func smallConfig() Config {
	return Config{
		Shells: []Shell{
			{Name: "mini", AltitudeKm: 550, InclinationDeg: 53, Planes: 12, SatsPerPlane: 10, PhasingF: 5},
		},
		Seed: 1,
	}
}

func TestNewCounts(t *testing.T) {
	c, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 120 {
		t.Fatalf("Len = %d, want 120", c.Len())
	}
	seen := map[int]bool{}
	for _, s := range c.Sats {
		if seen[s.ID] {
			t.Fatalf("duplicate catalog number %d", s.ID)
		}
		seen[s.ID] = true
		if s.Launch.IsZero() {
			t.Fatalf("satellite %d has no launch date", s.ID)
		}
		if c.ByID(s.ID) != s {
			t.Fatalf("ByID(%d) mismatch", s.ID)
		}
	}
}

func TestFullStarlinkCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellation build is slow")
	}
	c, err := New(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := 72*22 + 72*22 + 36*20 + 6*58
	if c.Len() != want {
		t.Fatalf("Len = %d, want %d", c.Len(), want)
	}
}

func TestLaunchDatesSpanWindow(t *testing.T) {
	cfg := smallConfig()
	cfg.LaunchStart = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	cfg.LaunchEnd = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	cfg.BatchSize = 10
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var minD, maxD time.Time
	for i, s := range c.Sats {
		if i == 0 || s.Launch.Before(minD) {
			minD = s.Launch
		}
		if i == 0 || s.Launch.After(maxD) {
			maxD = s.Launch
		}
	}
	if minD.Year() != 2020 {
		t.Errorf("oldest launch %v, want 2020", minD)
	}
	if maxD.Year() != 2023 && !(maxD.Year() == 2022 && maxD.Month() == 12) {
		t.Errorf("newest launch %v, want near end of window", maxD)
	}
	// 120 sats / batch 10 => 12 distinct batches.
	batches := map[int]int{}
	for _, s := range c.Sats {
		batches[s.LaunchIdx]++
	}
	if len(batches) != 12 {
		t.Errorf("distinct batches = %d, want 12", len(batches))
	}
}

func TestLaunchWindowValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.LaunchStart = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	cfg.LaunchEnd = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for inverted launch window")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sats {
		if a.Sats[i].TLE.RAANDeg != b.Sats[i].TLE.RAANDeg ||
			a.Sats[i].Launch != b.Sats[i].Launch {
			t.Fatalf("satellite %d differs between identically seeded builds", i)
		}
	}
}

func TestMeanMotionMatchesAltitude(t *testing.T) {
	mm := meanMotionRevDay(550)
	// Published Starlink shell-1 mean motion ~15.05-15.07 rev/day.
	if mm < 15.0 || mm > 15.1 {
		t.Errorf("mean motion at 550 km = %v", mm)
	}
	mmISS := meanMotionRevDay(420)
	if mmISS < 15.4 || mmISS > 15.6 {
		t.Errorf("mean motion at 420 km = %v", mmISS)
	}
}

func TestFieldOfViewBasics(t *testing.T) {
	c, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	obs := astro.Geodetic{LatDeg: 41.66, LonDeg: -91.53, AltKm: 0.2} // Iowa
	when := c.Epoch.Add(2 * time.Hour)
	fov := c.FieldOfView(obs, when, 25)
	for i, v := range fov {
		if v.Look.ElevationDeg < 25 {
			t.Errorf("entry %d below mask: %v", i, v.Look.ElevationDeg)
		}
		if i > 0 && fov[i-1].Look.ElevationDeg < v.Look.ElevationDeg {
			t.Error("field of view not sorted by descending elevation")
		}
		if v.Look.AzimuthDeg < 0 || v.Look.AzimuthDeg >= 360 {
			t.Errorf("azimuth out of range: %v", v.Look.AzimuthDeg)
		}
	}
	// A 120-sat mini constellation: typically 0-4 in view. Lowering the
	// mask must not shrink the set.
	fov0 := c.FieldOfView(obs, when, 0)
	if len(fov0) < len(fov) {
		t.Errorf("mask 0 gives %d < mask 25 gives %d", len(fov0), len(fov))
	}
}

func TestFieldOfViewFullConstellationAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellation is slow")
	}
	c, err := New(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	obs := astro.Geodetic{LatDeg: 41.66, LonDeg: -91.53, AltKm: 0.2}
	total := 0
	n := 0
	for i := 0; i < 8; i++ {
		when := c.Epoch.Add(time.Duration(i) * 13 * time.Minute)
		total += len(c.FieldOfView(obs, when, 25))
		n++
	}
	avg := float64(total) / float64(n)
	// The paper reports ~40 satellites in view on average at a
	// mid-latitude site for the 2023 constellation.
	if avg < 15 || avg > 80 {
		t.Errorf("average field-of-view size = %v, want tens of satellites", avg)
	}
}

func TestTrackContinuity(t *testing.T) {
	c, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	obs := astro.Geodetic{LatDeg: 41.66, LonDeg: -91.53, AltKm: 0.2}
	id := c.Sats[0].ID
	pts, err := c.Track(id, obs, c.Epoch, 5*time.Minute, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 21 {
		t.Fatalf("got %d points, want 21", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		// A LEO satellite moves < 3 deg of azimuth-elevation arc in 15 s
		// at these ranges when above the horizon... but can move fast in
		// azimuth near zenith; bound the elevation rate only.
		dEl := math.Abs(pts[i].Look.ElevationDeg - pts[i-1].Look.ElevationDeg)
		if dEl > 5 {
			t.Errorf("elevation jumped %v deg in one 15 s step", dEl)
		}
	}
}

func TestTrackErrors(t *testing.T) {
	c, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	obs := astro.Geodetic{}
	if _, err := c.Track(999999, obs, c.Epoch, time.Minute, time.Second); err == nil {
		t.Error("expected error for unknown satellite")
	}
	if _, err := c.Track(c.Sats[0].ID, obs, c.Epoch, time.Minute, 0); err == nil {
		t.Error("expected error for zero step")
	}
}

func TestExportTLEsParsesBack(t *testing.T) {
	c, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	text := c.ExportTLEs()
	sets, err := tle.ParseFile(text)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if len(sets) != c.Len() {
		t.Fatalf("parsed %d sets, want %d", len(sets), c.Len())
	}
	for i, s := range sets {
		if !strings.HasPrefix(s.Name, "STARLINK-") {
			t.Fatalf("set %d name %q", i, s.Name)
		}
		if s.CatalogNum != c.Sats[i].ID {
			t.Fatalf("set %d catalog %d != %d", i, s.CatalogNum, c.Sats[i].ID)
		}
		if math.Abs(s.MeanMotion-c.Sats[i].TLE.MeanMotion) > 1e-7 {
			t.Fatalf("set %d mean motion drifted", i)
		}
	}
}

func TestAgeYears(t *testing.T) {
	s := &Satellite{Launch: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
	at := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	if got := s.AgeYears(at); math.Abs(got-3.0) > 0.01 {
		t.Errorf("AgeYears = %v", got)
	}
}

func TestKeplerJ2Backend(t *testing.T) {
	cfg := smallConfig()
	cfg.UseKeplerJ2 = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Sats[0].Propagator.PropagateAt(c.Epoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	alt := st.Pos.Norm() - units.EarthRadiusKm
	if alt < 500 || alt > 600 {
		t.Errorf("KeplerJ2 altitude = %v", alt)
	}
}

func TestWalkerPlaneGeometry(t *testing.T) {
	// Verify the Walker construction: without jitter, plane p's RAAN is
	// p*360/P and adjacent planes are phased by F*360/(P*S).
	c, err := New(Config{
		Shells: []Shell{{Name: "w", AltitudeKm: 550, InclinationDeg: 53, Planes: 8, SatsPerPlane: 5, PhasingF: 3}},
		Seed:   1,
		// JitterDeg cannot be exactly zero (0 selects the default), so
		// use a negligible value.
		JitterDeg: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	// First satellite of plane p is index p*5.
	for p := 0; p < 8; p++ {
		sat := c.Sats[p*5]
		wantRAAN := 360.0 * float64(p) / 8
		if units.AngularDistDeg(sat.TLE.RAANDeg, wantRAAN) > 1e-6 {
			t.Errorf("plane %d RAAN %v, want %v", p, sat.TLE.RAANDeg, wantRAAN)
		}
		wantMA := 360.0 * 3 * float64(p) / 40 // F*360/(P*S) per plane
		if units.AngularDistDeg(sat.TLE.MeanAnomalyDeg, wantMA) > 1e-6 {
			t.Errorf("plane %d first-slot MA %v, want %v", p, sat.TLE.MeanAnomalyDeg, wantMA)
		}
	}
	// Slots within a plane are evenly spaced.
	for s := 1; s < 5; s++ {
		d := units.AngularDistDeg(c.Sats[s].TLE.MeanAnomalyDeg, c.Sats[s-1].TLE.MeanAnomalyDeg)
		if math.Abs(d-72) > 1e-6 {
			t.Errorf("slot spacing %v, want 72", d)
		}
	}
}

func TestWalkerStarPlaneGeometry(t *testing.T) {
	// Mirror of TestWalkerPlaneGeometry for the star pattern: without
	// jitter, plane p's RAAN spans 180°/P spacing (ascending nodes on a
	// half-circle) and inter-plane phasing still follows F.
	c, err := New(Config{
		Shells: []Shell{{Name: "ws", AltitudeKm: 780, InclinationDeg: 86.4, Planes: 8, SatsPerPlane: 5, PhasingF: 3,
			Geometry: WalkerStar}},
		Seed: 1,
		// JitterDeg cannot be exactly zero (0 selects the default), so
		// use a negligible value.
		JitterDeg: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		sat := c.Sats[p*5]
		wantRAAN := 180.0 * float64(p) / 8
		if units.AngularDistDeg(sat.TLE.RAANDeg, wantRAAN) > 1e-6 {
			t.Errorf("plane %d RAAN %v, want %v", p, sat.TLE.RAANDeg, wantRAAN)
		}
		wantMA := 360.0 * 3 * float64(p) / 40 // F*360/(P*S) per plane
		if units.AngularDistDeg(sat.TLE.MeanAnomalyDeg, wantMA) > 1e-6 {
			t.Errorf("plane %d first-slot MA %v, want %v", p, sat.TLE.MeanAnomalyDeg, wantMA)
		}
	}
	for s := 1; s < 5; s++ {
		d := units.AngularDistDeg(c.Sats[s].TLE.MeanAnomalyDeg, c.Sats[s-1].TLE.MeanAnomalyDeg)
		if math.Abs(d-72) > 1e-6 {
			t.Errorf("slot spacing %v, want 72", d)
		}
	}
}

func TestShellValidation(t *testing.T) {
	base := Shell{Name: "v", AltitudeKm: 550, InclinationDeg: 53, Planes: 8, SatsPerPlane: 5, PhasingF: 3}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid shell rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Shell)
		frag string
	}{
		{"phasing too large", func(s *Shell) { s.PhasingF = 8 }, "phasing F=8"},
		{"phasing negative", func(s *Shell) { s.PhasingF = -1 }, "phasing F=-1"},
		{"altitude too low", func(s *Shell) { s.AltitudeKm = 80 }, "non-physical altitude"},
		{"altitude too high", func(s *Shell) { s.AltitudeKm = 60000 }, "non-physical altitude"},
		{"inclination negative", func(s *Shell) { s.InclinationDeg = -5 }, "inclination"},
		{"inclination beyond retrograde", func(s *Shell) { s.InclinationDeg = 190 }, "inclination"},
		{"unknown geometry", func(s *Shell) { s.Geometry = "walker-spiral" }, "walker-spiral"},
		{"no planes", func(s *Shell) { s.Planes = 0 }, "non-positive geometry"},
	}
	for _, tc := range cases {
		sh := base
		tc.mut(&sh)
		err := sh.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.frag)
		}
		if _, err := New(Config{Shells: []Shell{sh}, Seed: 1}); err == nil {
			t.Errorf("%s: New accepted the invalid shell", tc.name)
		}
	}
	// One pass reports every problem, not just the first.
	multi := Shell{Name: "m", AltitudeKm: 80, InclinationDeg: 200, Planes: 4, SatsPerPlane: 4, PhasingF: 9}
	err := multi.Validate()
	if err == nil {
		t.Fatal("broken shell validated")
	}
	for _, frag := range []string{"phasing F=9", "non-physical altitude", "inclination 200"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("multi-error missing %q: %v", frag, err)
		}
	}
}

func TestBuiltinShellPresetsValid(t *testing.T) {
	for _, set := range [][]Shell{StarlinkShells(), OneWebShells(), IridiumNextShells(), KeplerShells()} {
		for _, sh := range set {
			if err := sh.Validate(); err != nil {
				t.Errorf("built-in shell %q invalid: %v", sh.Name, err)
			}
		}
	}
	if n := OneWebShells()[0].Planes * OneWebShells()[0].SatsPerPlane; n != 648 {
		t.Errorf("OneWeb design has %d sats, want 648", n)
	}
	if n := IridiumNextShells()[0].Planes * IridiumNextShells()[0].SatsPerPlane; n != 66 {
		t.Errorf("Iridium NEXT design has %d sats, want 66", n)
	}
	if n := KeplerShells()[0].Planes * KeplerShells()[0].SatsPerPlane; n != 140 {
		t.Errorf("Kepler design has %d sats, want 140", n)
	}
}

func TestNamePrefix(t *testing.T) {
	cfg := smallConfig()
	cfg.NamePrefix = "ONEWEB"
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Sats[0].Name; got != "ONEWEB-1000" {
		t.Errorf("first satellite named %q, want ONEWEB-1000", got)
	}
	// Default stays on the Starlink catalog naming.
	d, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Sats[0].Name; got != "STARLINK-1000" {
		t.Errorf("default first satellite named %q, want STARLINK-1000", got)
	}
}
