package constellation

import (
	"math"

	"repro/internal/astro"
	"repro/internal/units"
)

// SnapshotIndex buckets one propagated snapshot into a geocentric
// lat/lon grid so that "which satellites are above minElev from
// (lat, lon)" is answered in near-O(visible) instead of O(constellation).
//
// Geometry. A satellite at geocentric radius rs seen at elevation E by
// an observer at radius ro subtends the Earth-central angle
//
//	λ(E) = acos((ro/rs)·cos E) − E
//
// (exact triangle geometry, no spherical-Earth assumption), so every
// satellite above the mask lies within a spherical cap of radius
// λmax = λ(minElev − margin) around the observer's geocentric
// direction. The margin absorbs the only approximation in the chain:
// astro.Observe measures elevation against the geodetic vertical,
// which deviates from the geocentric vertical by at most ~0.2°. Cells
// are sized from that footprint radius at the hardware's 25° mask and
// the snapshot's highest shell, so a query touches a small constant
// neighborhood of cells; candidates from those cells then pass through
// the exact astro.Observe filter, which is why the index provably
// returns the same set as the linear scan — the cap bound only ever
// over-approximates. Results are sorted with sortVisible, so the order
// matches the linear scan too.
//
// Masks low enough that minElev − margin drops below 0° (where the cap
// bound degenerates) fall back to scanning every cell; the result is
// still exact, just no faster than ObserveFrom.
type SnapshotIndex struct {
	snap []SatState

	latCellDeg, lonCellDeg float64
	latCells, lonCells     int
	cells                  [][]int32 // snapshot indices per cell, snapshot order

	maxRadiusKm float64 // largest geocentric satellite radius in the snapshot
}

// indexMaskRefDeg is the reference elevation mask the grid cell size is
// derived from: the paper's (and Starlink's) 25° hardware mask.
const indexMaskRefDeg = 25.0

// indexMarginDeg guards the cap bound against the geodetic-vs-
// geocentric vertical deflection (≤ ~0.2°); generously padded.
const indexMarginDeg = 1.5

// NewSnapshotIndex builds the grid over a propagated snapshot. Cost is
// one pass over the snapshot; the snapshot slice is referenced, not
// copied, and must not be mutated afterwards (snapshots never are).
func NewSnapshotIndex(snap []SatState) *SnapshotIndex {
	ix := &SnapshotIndex{}
	ix.Rebuild(snap)
	return ix
}

// Rebuild re-points the index at a new snapshot, reusing the per-cell
// backing arrays from the previous build when the grid dimensions
// match (they do whenever the highest shell is unchanged, i.e. every
// steady-state slot). This is what lets the SnapshotCache recycle a
// released slot's index for the next slot without reallocating
// thousands of small cell slices.
func (ix *SnapshotIndex) Rebuild(snap []SatState) {
	ix.snap = snap
	ix.maxRadiusKm = 0
	for i := range snap {
		if r := snap[i].ECEF.Norm(); r > ix.maxRadiusKm {
			ix.maxRadiusKm = r
		}
	}
	// Cell size: the footprint radius at the 25° reference mask for the
	// snapshot's highest shell, so a 25°-mask query scans a ~3×3 cell
	// neighborhood. Clamped: tiny constellations or degenerate radii
	// must not produce absurd grids.
	cell := 8.0
	if lam, ok := capRadiusDeg(units.EarthRadiusKm, ix.maxRadiusKm, indexMaskRefDeg-indexMarginDeg); ok {
		cell = units.Clamp(lam, 2, 30)
	}
	latCells := int(math.Ceil(180 / cell))
	lonCells := int(math.Ceil(360 / cell))
	if latCells == ix.latCells && lonCells == ix.lonCells && ix.cells != nil {
		for i := range ix.cells {
			ix.cells[i] = ix.cells[i][:0]
		}
	} else {
		ix.latCells = latCells
		ix.latCellDeg = 180 / float64(latCells)
		ix.lonCells = lonCells
		ix.lonCellDeg = 360 / float64(lonCells)
		ix.cells = make([][]int32, latCells*lonCells)
	}
	for i := range snap {
		ci := ix.cellOf(snap[i].ECEF)
		ix.cells[ci] = append(ix.cells[ci], int32(i))
	}
}

// Len returns the number of satellites indexed.
func (ix *SnapshotIndex) Len() int { return len(ix.snap) }

// Snapshot returns the indexed snapshot (shared, read-only).
func (ix *SnapshotIndex) Snapshot() []SatState { return ix.snap }

// Cells reports the grid dimensions (lat bands × lon columns).
func (ix *SnapshotIndex) Cells() (lat, lon int) { return ix.latCells, ix.lonCells }

// capRadiusDeg returns the Earth-central half-angle of the visibility
// cap for an observer at radius ro, satellites at radius rs, elevation
// mask elevDeg. ok is false when the geometry degenerates (satellite at
// or below the observer's radius, or a mask where the bound is
// meaningless).
func capRadiusDeg(roKm, rsKm, elevDeg float64) (float64, bool) {
	if elevDeg < 0 || rsKm <= roKm || roKm <= 0 {
		return 0, false
	}
	e := units.Deg2Rad(elevDeg)
	lam := math.Acos(units.Clamp(roKm/rsKm*math.Cos(e), -1, 1)) - e
	if lam <= 0 {
		return 0, false
	}
	return units.Rad2Deg(lam), true
}

// cellOf maps an ECEF position to its grid cell by geocentric lat/lon.
func (ix *SnapshotIndex) cellOf(p units.Vec3) int {
	latDeg := units.Rad2Deg(math.Asin(units.Clamp(p.Z/p.Norm(), -1, 1)))
	lonDeg := units.Rad2Deg(math.Atan2(p.Y, p.X))
	return ix.cellAt(latDeg, lonDeg)
}

// cellAt maps geocentric (lat, lon) degrees to a cell index.
func (ix *SnapshotIndex) cellAt(latDeg, lonDeg float64) int {
	lb := int((latDeg + 90) / ix.latCellDeg)
	if lb < 0 {
		lb = 0
	}
	if lb >= ix.latCells {
		lb = ix.latCells - 1
	}
	lc := int(math.Floor((lonDeg + 180) / ix.lonCellDeg))
	lc = ((lc % ix.lonCells) + ix.lonCells) % ix.lonCells
	return lb*ix.lonCells + lc
}

// query is the shared cap→cells→exact-filter walk. For every satellite
// in a cell the cap bound could contain, it computes the exact look
// angles and calls visit for those at or above minElevDeg. Enumeration
// order is grid order, NOT the deterministic output order — callers
// that expose results must sort with sortVisible (ObserveFrom does).
func (ix *SnapshotIndex) query(obs astro.Geodetic, minElevDeg float64, visit func(st *SatState, la astro.LookAngles)) {
	o := astro.NewObserver(obs)
	scan := func(cell []int32) {
		for _, i := range cell {
			st := &ix.snap[i]
			la := o.Observe(st.ECEF)
			if la.ElevationDeg < minElevDeg {
				continue
			}
			visit(st, la)
		}
	}

	oe := o.ECEF()
	ro := oe.Norm()
	lamDeg, ok := capRadiusDeg(ro, ix.maxRadiusKm, minElevDeg-indexMarginDeg)
	if !ok {
		// Degenerate geometry (mask near/below the horizon, or satellites
		// at the observer's radius): correct but unaccelerated.
		for _, cell := range ix.cells {
			scan(cell)
		}
		return
	}

	// Geocentric direction of the observer; the cap of radius lamDeg
	// around it bounds every above-mask satellite direction.
	obsLat := units.Rad2Deg(math.Asin(units.Clamp(oe.Z/ro, -1, 1)))
	obsLon := units.Rad2Deg(math.Atan2(oe.Y, oe.X))

	latLo := int(math.Floor((obsLat - lamDeg + 90) / ix.latCellDeg))
	latHi := int(math.Floor((obsLat + lamDeg + 90) / ix.latCellDeg))
	if latLo < 0 {
		latLo = 0
	}
	if latHi >= ix.latCells {
		latHi = ix.latCells - 1
	}

	// Longitude extent of the cap (standard spherical bounding box): if
	// the cap contains a pole, it spans every longitude; otherwise
	// Δlon = asin(sin λ / cos φ_obs), and the wraparound walk below
	// handles the antimeridian.
	allLon := math.Abs(obsLat)+lamDeg >= 90
	cols := ix.lonCells
	lonLo := 0
	if !allLon {
		dLon := units.Rad2Deg(math.Asin(units.Clamp(
			math.Sin(units.Deg2Rad(lamDeg))/math.Cos(units.Deg2Rad(obsLat)), -1, 1)))
		lonLo = int(math.Floor((obsLon - dLon + 180) / ix.lonCellDeg))
		cols = int(math.Floor((obsLon+dLon+180)/ix.lonCellDeg)) - lonLo + 1
		if cols >= ix.lonCells {
			cols = ix.lonCells
			lonLo = 0
		}
	}

	for lb := latLo; lb <= latHi; lb++ {
		row := lb * ix.lonCells
		for k := 0; k < cols; k++ {
			lc := ((lonLo+k)%ix.lonCells + ix.lonCells) % ix.lonCells
			scan(ix.cells[row+lc])
		}
	}
}

// ObserveFrom answers the same question as the package-level
// ObserveFrom over this index's snapshot — identical set, identical
// order, identical floats — in near-O(visible).
func (ix *SnapshotIndex) ObserveFrom(obs astro.Geodetic, minElevDeg float64) []Visible {
	return ix.AppendObserveFrom(nil, obs, minElevDeg)
}

// AppendObserveFrom is ObserveFrom appending into dst, for callers
// reusing a scratch slice across queries.
func (ix *SnapshotIndex) AppendObserveFrom(dst []Visible, obs astro.Geodetic, minElevDeg float64) []Visible {
	base := len(dst)
	ix.query(obs, minElevDeg, func(st *SatState, la astro.LookAngles) {
		dst = append(dst, Visible{Sat: st.Sat, Look: la, Sunlit: st.Sunlit})
	})
	sortVisible(dst[base:])
	return dst
}

// MarkVisibleIDs sets set[id] = true for every satellite at or above
// minElevDeg from obs. Order-free (it fills a set), so no sort is paid;
// used for the scheduler's gateway-visibility pass.
func (ix *SnapshotIndex) MarkVisibleIDs(obs astro.Geodetic, minElevDeg float64, set map[int]bool) {
	ix.query(obs, minElevDeg, func(st *SatState, _ astro.LookAngles) {
		set[st.Sat.ID] = true
	})
}
