package constellation

import (
	"math"
	"testing"
	"time"

	"repro/internal/astro"
	"repro/internal/telemetry"
)

// parallelConfig builds a constellation spanning several worker chunks
// (648 satellites > 2 × snapshotChunk), so SnapshotInto's fan-out path
// actually engages — smallConfig's 120 satellites resolve to a serial
// sweep at any worker count.
func parallelConfig() Config {
	return Config{
		Shells: []Shell{
			{Name: "pa", AltitudeKm: 550, InclinationDeg: 53, Planes: 24, SatsPerPlane: 22, PhasingF: 7},
			{Name: "pb", AltitudeKm: 570, InclinationDeg: 70, Planes: 6, SatsPerPlane: 20, PhasingF: 3},
		},
		Seed: 3,
	}
}

// snapshotRun is one worker count's observable output: the states plus
// the constellation's complete skip accounting afterward.
type snapshotRun struct {
	states  []SatState
	skipped int
	total   int64
	bySat   map[int]string
}

func runSnapshot(t *testing.T, workers int, at time.Duration, failIdx []int) snapshotRun {
	t.Helper()
	cons, err := New(parallelConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range failIdx {
		cons.Sats[i].Propagator = failEph{epoch: cons.Epoch}
	}
	states, skipped := cons.SnapshotInto(nil, cons.Epoch.Add(at), workers)
	total, bySat := cons.PropagationSkips()
	return snapshotRun{states: states, skipped: skipped, total: total, bySat: bySat}
}

// TestSnapshotIntoWorkerIdentity is the golden byte-identity check:
// states (values, order, float bits), skip totals, and per-satellite
// first-error text must be identical at every worker count, including
// with failing propagators scattered across chunks.
func TestSnapshotIntoWorkerIdentity(t *testing.T) {
	failIdx := []int{5, 300, 640}
	golden := runSnapshot(t, 1, 30*time.Minute, failIdx)
	if golden.skipped != len(failIdx) || golden.total != int64(len(failIdx)) {
		t.Fatalf("serial run skipped %d (total %d), want %d", golden.skipped, golden.total, len(failIdx))
	}
	for _, workers := range []int{4, 8} {
		got := runSnapshot(t, workers, 30*time.Minute, failIdx)
		if len(got.states) != len(golden.states) {
			t.Fatalf("workers=%d: %d states, serial %d", workers, len(got.states), len(golden.states))
		}
		for i := range got.states {
			g, w := got.states[i], golden.states[i]
			if g.Sat.ID != w.Sat.ID || g.Sunlit != w.Sunlit ||
				math.Float64bits(g.ECEF.X) != math.Float64bits(w.ECEF.X) ||
				math.Float64bits(g.ECEF.Y) != math.Float64bits(w.ECEF.Y) ||
				math.Float64bits(g.ECEF.Z) != math.Float64bits(w.ECEF.Z) {
				t.Fatalf("workers=%d: state %d = {%d %v %v}, serial {%d %v %v}",
					workers, i, g.Sat.ID, g.ECEF, g.Sunlit, w.Sat.ID, w.ECEF, w.Sunlit)
			}
		}
		if got.skipped != golden.skipped || got.total != golden.total {
			t.Fatalf("workers=%d: skipped %d/%d, serial %d/%d",
				workers, got.skipped, got.total, golden.skipped, golden.total)
		}
		if len(got.bySat) != len(golden.bySat) {
			t.Fatalf("workers=%d: %d distinct failing sats, serial %d", workers, len(got.bySat), len(golden.bySat))
		}
		for id, msg := range golden.bySat {
			if got.bySat[id] != msg {
				t.Fatalf("workers=%d: sat %d first error %q, serial %q", workers, id, got.bySat[id], msg)
			}
		}
	}
}

// TestSnapshotIntoZeroAlloc: the steady-state serial slot path — a
// warm reused buffer, scratch-capable propagators — allocates nothing.
func TestSnapshotIntoZeroAlloc(t *testing.T) {
	cons, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	at := cons.Epoch.Add(time.Hour)
	buf, _ := cons.SnapshotInto(nil, at, 1)
	first := &buf[0]
	allocs := testing.AllocsPerRun(10, func() {
		buf, _ = cons.SnapshotInto(buf, at, 1)
	})
	if allocs != 0 {
		t.Fatalf("warm serial SnapshotInto allocates %v per run, want 0", allocs)
	}
	if &buf[0] != first {
		t.Fatal("warm SnapshotInto abandoned its reusable backing array")
	}
}

// TestSnapshotCachePoolRecycle proves the eviction-fed recycle path:
// an evicted snapshot's state buffer and index shell are reused by the
// next propagation, and a recycled buffer never aliases a snapshot a
// holder still references.
func TestSnapshotCachePoolRecycle(t *testing.T) {
	cons := testCons(t)
	reg := telemetry.NewRegistry()
	cache := NewSnapshotCache(1, reg)
	t0 := cons.Epoch.Add(time.Hour)

	pinned := cache.Acquire(cons, t0)
	pinnedFirst := pinned.States[0]
	pinnedPtr := &pinned.States[0]

	b := cache.Acquire(cons, t0.Add(time.Minute))
	bPtr := &b.States[0]
	bIdx := b.Index()
	b.Release() // parked on the LRU (within capacity)

	c := cache.Acquire(cons, t0.Add(2*time.Minute))
	c.Release() // exceeds capacity: evicts b, feeding the pools

	d := cache.Acquire(cons, t0.Add(3*time.Minute))
	defer d.Release()
	if &d.States[0] != bPtr {
		t.Fatal("evicted snapshot's state buffer was not recycled")
	}
	if &d.States[0] == pinnedPtr {
		t.Fatal("recycled buffer aliases a still-pinned snapshot")
	}
	if d.Index() != bIdx {
		t.Fatal("evicted snapshot's index shell was not recycled")
	}
	if pinned.States[0] != pinnedFirst {
		t.Fatal("pinned snapshot changed after buffer recycling — aliasing bug")
	}
	if n := counterValue(reg, "snapshot_buffer_reuses_total"); n != 1 {
		t.Fatalf("snapshot_buffer_reuses_total = %d, want 1", n)
	}
	pinned.Release()
}

// TestSnapshotIndexRebuildReusesCells: Rebuild over a new snapshot of
// the same constellation keeps the cell table's backing arrays (the
// grid dims are unchanged) and answers queries identically to a fresh
// build.
func TestSnapshotIndexRebuildReusesCells(t *testing.T) {
	cons := testCons(t)
	t0 := cons.Epoch.Add(time.Hour)
	snap1 := cons.Snapshot(t0)
	ix := NewSnapshotIndex(snap1)
	cellsBefore := &ix.cells[0]

	snap2 := cons.Snapshot(t0.Add(5 * time.Minute))
	ix.Rebuild(snap2)
	if &ix.cells[0] != cellsBefore {
		t.Fatal("Rebuild with unchanged grid dims reallocated the cell table")
	}

	fresh := NewSnapshotIndex(snap2)
	for _, obs := range []astro.Geodetic{
		{LatDeg: 47.6, LonDeg: -122.3}, {LatDeg: -33.9, LonDeg: 151.2}, {LatDeg: 0.1, LonDeg: 0.1},
	} {
		got := ix.ObserveFrom(obs, 25)
		want := fresh.ObserveFrom(obs, 25)
		if len(got) != len(want) {
			t.Fatalf("rebuilt index sees %d satellites from %v, fresh build %d", len(got), obs, len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rebuilt index result %d = %+v, fresh build %+v", i, got[i], want[i])
			}
		}
	}
}
