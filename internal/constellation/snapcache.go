package constellation

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// DefaultSnapshotCacheCap bounds the number of unpinned snapshots a
// SnapshotCache retains. Snapshot keys advance monotonically during a
// campaign, so a modest window of recent slots covers every consumer;
// at Starlink scale one snapshot is a few hundred kilobytes.
const DefaultSnapshotCacheCap = 32

// snapKey identifies one propagated snapshot: which constellation
// (by fingerprint) at which instant. Both the scheduler's Allocate path
// and the campaign engine's AvailableSet path ask for slot-start times,
// so keying by the exact instant makes "propagate once per slot
// globally" fall out of sharing one cache.
type snapKey struct {
	fp   uint64
	unix int64 // UnixNano of the snapshot instant
}

// SharedSnapshot is one cached, refcounted snapshot plus its lazily
// built spatial index. Holders must treat States as read-only and call
// Release exactly once when done; while references are outstanding the
// cache never evicts the entry, so the slice is stable for the
// holder's lifetime.
type SharedSnapshot struct {
	// States is the propagated snapshot, in constellation order.
	States []SatState

	skipped int
	cache   *SnapshotCache
	key     snapKey
	refs    int // guarded by cache.mu; 0 while unpinned
	elem    *list.Element

	idxOnce sync.Once
	idx     *SnapshotIndex

	// ready gates late acquirers while the winning goroutine propagates
	// outside the cache lock.
	ready chan struct{}
}

// Skipped returns how many satellites this snapshot dropped because
// propagation failed (see Constellation.SnapshotSkipped).
func (s *SharedSnapshot) Skipped() int { return s.skipped }

// Index returns the snapshot's spatial index, building it on first use
// (exactly once, shared by every holder). The index shell is drawn
// from the cache's recycle pool when one is available, so steady-state
// slots rebuild into the previous slot's cell buffers instead of
// allocating a fresh grid.
func (s *SharedSnapshot) Index() *SnapshotIndex {
	s.idxOnce.Do(func() {
		t0 := time.Now()
		var ix *SnapshotIndex
		if s.cache != nil {
			ix = s.cache.popIndex()
		}
		if ix == nil {
			ix = &SnapshotIndex{}
		}
		ix.Rebuild(s.States)
		s.idx = ix
		if s.cache != nil && s.cache.metrics != nil {
			s.cache.metrics.indexBuilds.Inc()
			s.cache.metrics.indexBuildMs.Set(float64(time.Since(t0).Nanoseconds()) / 1e6)
		}
	})
	return s.idx
}

// Release returns the holder's reference. The entry stays cached (LRU,
// bounded) for future hits; dropping the last reference of an entry
// already evicted from the table lets the GC reclaim it.
func (s *SharedSnapshot) Release() {
	if s == nil || s.cache == nil {
		return
	}
	s.cache.release(s)
}

// cacheMetrics is the cache's telemetry bundle (nil when disabled).
type cacheMetrics struct {
	hits, misses, evictions *telemetry.Counter
	propSkips               *telemetry.Counter
	entries                 *telemetry.Gauge
	indexBuilds             *telemetry.Counter
	indexBuildMs            *telemetry.FloatGauge
	bufferReuses            *telemetry.Counter
}

// snapPoolCap bounds each recycle pool (state slices and index
// shells). Steady-state campaigns cycle one or two buffers; anything
// beyond the bound is dropped to the GC rather than hoarded.
const snapPoolCap = 8

// SnapshotCache shares propagated constellation snapshots — and their
// spatial indexes — across every consumer of a slot: the scheduler's
// Allocate path, the campaign engine, and repeated queries within a
// slot (netsim probes). Entries are refcounted; the LRU bound applies
// only to unpinned entries, so a holder's States slice is never
// yanked. Safe for concurrent use; concurrent Acquires of the same key
// propagate once (late arrivals block until the winner finishes).
type SnapshotCache struct {
	mu      sync.Mutex
	cap     int
	entries map[snapKey]*SharedSnapshot
	lru     *list.List // front = most recent; unpinned entries only
	metrics *cacheMetrics

	// workers is the snapshot fan-out Acquire propagates with (see
	// SetSnapshotWorkers); 0 defers to the constellation's own knob.
	workers int

	// Recycle pools, fed exclusively by eviction — the one point where
	// refs == 0 is guaranteed (only unpinned entries sit on the LRU), so
	// a pooled buffer can never alias a snapshot a holder still sees.
	statePool [][]SatState
	idxPool   []*SnapshotIndex
}

// NewSnapshotCache builds a cache retaining up to capacity unpinned
// snapshots (<= 0 selects DefaultSnapshotCacheCap). A non-nil registry
// wires hit/miss/eviction counters, the propagation-skip counter, and
// the index build-time gauge; nil disables telemetry.
func NewSnapshotCache(capacity int, reg *telemetry.Registry) *SnapshotCache {
	if capacity <= 0 {
		capacity = DefaultSnapshotCacheCap
	}
	c := &SnapshotCache{
		cap:     capacity,
		entries: make(map[snapKey]*SharedSnapshot),
		lru:     list.New(),
	}
	if reg != nil {
		c.metrics = &cacheMetrics{
			hits:         reg.Counter("snapshot_cache_hits_total", "snapshot cache lookups served from cache"),
			misses:       reg.Counter("snapshot_cache_misses_total", "snapshot cache lookups that propagated"),
			evictions:    reg.Counter("snapshot_cache_evictions_total", "snapshots evicted by the LRU bound"),
			propSkips:    reg.Counter("constellation_propagation_skips_total", "satellites dropped from snapshots by propagation failures"),
			entries:      reg.Gauge("snapshot_cache_entries", "snapshots currently cached"),
			indexBuilds:  reg.Counter("snapshot_index_builds_total", "spatial indexes built over snapshots"),
			indexBuildMs: reg.FloatGauge("snapshot_index_build_ms", "build time of the most recent spatial index"),
			bufferReuses: reg.Counter("snapshot_buffer_reuses_total", "snapshot state buffers recycled from evicted entries"),
		}
	}
	return c
}

// SetSnapshotWorkers sets the fan-out Acquire uses when propagating a
// missed snapshot: 0 defers to the constellation's SnapshotWorkers
// field, <0 selects GOMAXPROCS, 1 forces the serial sweep. Output is
// byte-identical at every value, so this is purely a throughput knob.
func (c *SnapshotCache) SetSnapshotWorkers(n int) {
	c.mu.Lock()
	c.workers = n
	c.mu.Unlock()
}

// popIndex pops a recycled index shell, or nil when the pool is empty.
func (c *SnapshotCache) popIndex() *SnapshotIndex {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.idxPool); n > 0 {
		ix := c.idxPool[n-1]
		c.idxPool[n-1] = nil
		c.idxPool = c.idxPool[:n-1]
		return ix
	}
	return nil
}

// Acquire returns the shared snapshot of cons at time t, propagating it
// if no holder has asked yet. The caller owns one reference and must
// Release it.
func (c *SnapshotCache) Acquire(cons *Constellation, t time.Time) *SharedSnapshot {
	key := snapKey{fp: cons.Fingerprint(), unix: t.UnixNano()}
	c.mu.Lock()
	if s, ok := c.entries[key]; ok {
		s.refs++
		if s.elem != nil {
			c.lru.Remove(s.elem)
			s.elem = nil
		}
		c.mu.Unlock()
		<-s.ready
		if c.metrics != nil {
			c.metrics.hits.Inc()
		}
		return s
	}
	s := &SharedSnapshot{cache: c, key: key, refs: 1, ready: make(chan struct{})}
	c.entries[key] = s
	if c.metrics != nil {
		c.metrics.entries.Set(int64(len(c.entries)))
	}
	// Claim a recycled state buffer and the worker knob while still
	// under the lock.
	var buf []SatState
	if n := len(c.statePool); n > 0 {
		buf = c.statePool[n-1]
		c.statePool[n-1] = nil
		c.statePool = c.statePool[:n-1]
	}
	workers := c.workers
	c.mu.Unlock()
	if workers == 0 {
		workers = cons.SnapshotWorkers
	}

	// Propagate outside the lock: other keys stay acquirable, and late
	// acquirers of this key wait on the ready channel.
	s.States, s.skipped = cons.SnapshotInto(buf, t, workers)
	close(s.ready)
	if c.metrics != nil {
		c.metrics.misses.Inc()
		if buf != nil {
			c.metrics.bufferReuses.Inc()
		}
		if s.skipped > 0 {
			c.metrics.propSkips.Add(int64(s.skipped))
		}
	}
	return s
}

// release drops one reference; the last release parks the entry on the
// LRU list and enforces the capacity bound.
func (c *SnapshotCache) release(s *SharedSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.refs--
	if s.refs > 0 {
		return
	}
	if c.entries[s.key] != s {
		return // already evicted while pinned; GC reclaims it now
	}
	s.elem = c.lru.PushFront(s)
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		old := back.Value.(*SharedSnapshot)
		c.lru.Remove(back)
		old.elem = nil
		delete(c.entries, old.key)
		// Eviction is the one safe recycle point: only unpinned entries
		// (refs == 0, no holders) sit on the LRU, so the evicted buffers
		// cannot alias a snapshot anyone still references. Detach them
		// from the dead entry so a stale holder bug fails loudly (nil
		// States) instead of silently reading recycled data.
		if len(c.statePool) < snapPoolCap && old.States != nil {
			c.statePool = append(c.statePool, old.States[:0])
		}
		if len(c.idxPool) < snapPoolCap && old.idx != nil {
			c.idxPool = append(c.idxPool, old.idx)
		}
		old.States, old.idx = nil, nil
		if c.metrics != nil {
			c.metrics.evictions.Inc()
		}
	}
	if c.metrics != nil {
		c.metrics.entries.Set(int64(len(c.entries)))
	}
}

// Len reports the number of cached snapshots (pinned + unpinned).
func (c *SnapshotCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Pinned reports how many cached snapshots have outstanding references.
func (c *SnapshotCache) Pinned() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.entries {
		if s.refs > 0 {
			n++
		}
	}
	return n
}
