// Package constellation synthesizes a Starlink-like LEO constellation:
// Walker-delta shells matching the publicly filed Starlink shell
// design, satellites grouped into launch batches with realistic launch
// dates, and TLE generation so the rest of the system can treat the
// synthetic constellation exactly like a CelesTrak feed.
//
// This package substitutes for the live constellation the paper
// measured (see DESIGN.md §2): the geometry that drives every analysis
// — how many satellites are in view, their angle-of-elevation and
// azimuth distributions — is fixed by the shell design, which is
// public.
package constellation

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astro"
	"repro/internal/sgp4"
	"repro/internal/tle"
	"repro/internal/units"
)

// Geometry selects the Walker pattern a shell's planes follow.
type Geometry string

const (
	// WalkerDelta spreads the ascending nodes over the full 360°
	// (Starlink's inclined shells). The zero value selects it.
	WalkerDelta Geometry = "walker-delta"
	// WalkerStar spreads the ascending nodes over 180°, so planes
	// ascend on one side of the Earth and descend on the other
	// (OneWeb, Iridium, Kepler near-polar designs).
	WalkerStar Geometry = "walker-star"
)

// spreadDeg returns the RAAN span the shell's planes divide.
func (g Geometry) spreadDeg() (float64, error) {
	switch g {
	case "", WalkerDelta:
		return 360.0, nil
	case WalkerStar:
		return 180.0, nil
	}
	return 0, fmt.Errorf("unknown geometry %q (want %q or %q)", g, WalkerDelta, WalkerStar)
}

// Shell describes one Walker shell: a set of evenly spaced
// circular-orbit planes at a common altitude and inclination.
type Shell struct {
	Name           string
	AltitudeKm     float64
	InclinationDeg float64
	Planes         int
	SatsPerPlane   int
	// PhasingF is the Walker phasing parameter: the slot offset (in
	// units of 360/(Planes*SatsPerPlane) degrees) between adjacent
	// planes. Valid Walker range is 0..Planes-1.
	PhasingF int
	// Geometry selects delta (360° RAAN spread, the zero value) or
	// star (180° spread) plane layout.
	Geometry Geometry
}

// Physical altitude bounds for a sustainable orbit: below ~120 km
// drag deorbits within hours; beyond GEO+margin the "LEO shell" label
// stops making sense and the mean-motion model's assumptions with it.
const (
	MinShellAltitudeKm = 120.0
	MaxShellAltitudeKm = 50000.0
)

// Validate reports every problem with the shell's parameters joined
// into one error, or nil. New rejects invalid shells with the same
// checks; spec-driven callers (internal/scenario) use Validate
// directly to collect all errors before attempting a build.
func (sh Shell) Validate() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("shell %q: "+format, append([]any{sh.Name}, args...)...))
	}
	if sh.Planes <= 0 || sh.SatsPerPlane <= 0 {
		fail("non-positive geometry %dx%d", sh.Planes, sh.SatsPerPlane)
	}
	if sh.Planes > 0 && (sh.PhasingF < 0 || sh.PhasingF >= sh.Planes) {
		fail("phasing F=%d outside valid Walker range 0..%d", sh.PhasingF, sh.Planes-1)
	}
	if sh.AltitudeKm < MinShellAltitudeKm || sh.AltitudeKm > MaxShellAltitudeKm {
		fail("non-physical altitude %.1f km (want %.0f..%.0f)", sh.AltitudeKm, MinShellAltitudeKm, MaxShellAltitudeKm)
	}
	if sh.InclinationDeg < 0 || sh.InclinationDeg > 180 {
		fail("inclination %.2f° outside 0..180", sh.InclinationDeg)
	}
	if _, err := sh.Geometry.spreadDeg(); err != nil {
		fail("%v", err)
	}
	return joinErrs(errs)
}

// joinErrs flattens a collected error list to nil / single / joined.
func joinErrs(errs []error) error {
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	}
	msg := errs[0].Error()
	for _, e := range errs[1:] {
		msg += "; " + e.Error()
	}
	return fmt.Errorf("%s", msg)
}

// StarlinkShells returns the four first-generation Starlink shells as
// filed with the FCC (counts rounded to the operational design).
func StarlinkShells() []Shell {
	return []Shell{
		{Name: "shell1", AltitudeKm: 550, InclinationDeg: 53.0, Planes: 72, SatsPerPlane: 22, PhasingF: 17},
		{Name: "shell2", AltitudeKm: 540, InclinationDeg: 53.2, Planes: 72, SatsPerPlane: 22, PhasingF: 17},
		{Name: "shell3", AltitudeKm: 570, InclinationDeg: 70.0, Planes: 36, SatsPerPlane: 20, PhasingF: 11},
		{Name: "shell4", AltitudeKm: 560, InclinationDeg: 97.6, Planes: 6, SatsPerPlane: 58, PhasingF: 1},
	}
}

// OneWebShells returns the OneWeb first-generation design: an 18×36
// Walker-star at 1200 km / 86.4° (648 satellites).
func OneWebShells() []Shell {
	return []Shell{
		{Name: "oneweb", AltitudeKm: 1200, InclinationDeg: 86.4, Planes: 18, SatsPerPlane: 36, PhasingF: 1, Geometry: WalkerStar},
	}
}

// IridiumNextShells returns the Iridium NEXT design: a 6×11
// Walker-star at 780 km / 86.4° (66 satellites).
func IridiumNextShells() []Shell {
	return []Shell{
		{Name: "iridium-next", AltitudeKm: 780, InclinationDeg: 86.4, Planes: 6, SatsPerPlane: 11, PhasingF: 1, Geometry: WalkerStar},
	}
}

// KeplerShells returns the Kepler design: a 7×20 Walker-star at
// 600 km / 98.6° (140 satellites).
func KeplerShells() []Shell {
	return []Shell{
		{Name: "kepler", AltitudeKm: 600, InclinationDeg: 98.6, Planes: 7, SatsPerPlane: 20, PhasingF: 1, Geometry: WalkerStar},
	}
}

// Satellite is one member of the constellation with identity and
// launch metadata alongside its propagator.
type Satellite struct {
	ID         int       // NORAD-style catalog number (unique)
	Name       string    // e.g. "STARLINK-1234"
	Shell      string    // shell name
	Launch     time.Time // launch date (start of the batch's month)
	LaunchIdx  int       // index of the launch batch, 0 = oldest
	TLE        *tle.TLE
	Propagator sgp4.Ephemeris
}

// AgeYears returns the satellite age in years at time t.
func (s *Satellite) AgeYears(t time.Time) float64 {
	return t.Sub(s.Launch).Hours() / (24 * 365.25)
}

// Constellation is the full set of satellites plus lookup indices.
type Constellation struct {
	Sats  []*Satellite
	byID  map[int]*Satellite
	Epoch time.Time // TLE epoch shared by all satellites

	// SnapshotWorkers is the default fan-out for Snapshot /
	// SnapshotSkipped (see SnapshotInto): 0 selects GOMAXPROCS, 1
	// forces the serial sweep. Output is byte-identical at every
	// value. Set before concurrent use.
	SnapshotWorkers int

	// Fingerprint cache (see Fingerprint).
	fpOnce sync.Once
	fp     uint64

	// Propagation-skip accounting (see Snapshot / PropagationSkips).
	// Touched only on the failure path, so healthy constellations never
	// contend on the mutex.
	skipMu    sync.Mutex
	skipTotal int64
	skipBySat map[int]string
}

// Config controls constellation synthesis.
type Config struct {
	Shells []Shell   // shells to build; default StarlinkShells()
	Epoch  time.Time // TLE epoch; default 2023-03-01
	// LaunchStart/LaunchEnd bound the synthetic launch-batch dates
	// assigned round-robin across planes. Defaults: 2019-05 .. 2023-02.
	LaunchStart time.Time
	LaunchEnd   time.Time
	// BatchSize is the number of satellites per launch batch
	// (Falcon 9 Starlink launches carry ~60). Default 60.
	BatchSize int
	// Seed drives the small random perturbations applied to mean
	// anomaly and RAAN so planes are not perfectly regular.
	Seed int64
	// JitterDeg is the 1-sigma perturbation in degrees. Default 0.15.
	JitterDeg float64
	// UseKeplerJ2 selects the ablation propagator instead of SGP4.
	UseKeplerJ2 bool
	// SnapshotWorkers is the default snapshot fan-out (see
	// Constellation.SnapshotWorkers): 0 selects GOMAXPROCS, 1 forces
	// the serial sweep. Byte-identical output at every value.
	SnapshotWorkers int
	// FirstCatalogNum numbers satellites sequentially from here.
	// Default 44714 (the first Starlink v1.0 catalog number).
	FirstCatalogNum int
	// NamePrefix names satellites "<prefix>-<n>". Default "STARLINK",
	// matching the CelesTrak catalog names the paper's tooling keys on.
	NamePrefix string
}

func (c *Config) applyDefaults() {
	if len(c.Shells) == 0 {
		c.Shells = StarlinkShells()
	}
	if c.Epoch.IsZero() {
		c.Epoch = time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.LaunchStart.IsZero() {
		c.LaunchStart = time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.LaunchEnd.IsZero() {
		c.LaunchEnd = time.Date(2023, 2, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 60
	}
	if c.JitterDeg == 0 {
		c.JitterDeg = 0.15
	}
	if c.FirstCatalogNum == 0 {
		c.FirstCatalogNum = 44714
	}
	if c.NamePrefix == "" {
		c.NamePrefix = "STARLINK"
	}
}

// meanMotionRevDay converts a circular-orbit altitude to mean motion.
func meanMotionRevDay(altKm float64) float64 {
	a := units.EarthRadiusKm + altKm
	periodSec := 2 * math.Pi * math.Sqrt(a*a*a/units.MuEarth)
	return units.SecondsPerDay / periodSec
}

// New builds a constellation. Satellites are assigned launch batches
// in an interleaved order (as in reality, where a single launch fills
// gaps across planes), so every plane holds a mix of ages.
func New(cfg Config) (*Constellation, error) {
	cfg.applyDefaults()
	if cfg.LaunchEnd.Before(cfg.LaunchStart) {
		return nil, fmt.Errorf("constellation: launch window ends (%v) before it starts (%v)", cfg.LaunchEnd, cfg.LaunchStart)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var all []*Satellite
	catalog := cfg.FirstCatalogNum
	for _, sh := range cfg.Shells {
		if err := sh.Validate(); err != nil {
			return nil, fmt.Errorf("constellation: %w", err)
		}
		spread, _ := sh.Geometry.spreadDeg() // Validate covered the error
		mm := meanMotionRevDay(sh.AltitudeKm)
		total := sh.Planes * sh.SatsPerPlane
		for plane := 0; plane < sh.Planes; plane++ {
			raan := spread * float64(plane) / float64(sh.Planes)
			for slot := 0; slot < sh.SatsPerPlane; slot++ {
				ma := 360.0*float64(slot)/float64(sh.SatsPerPlane) +
					360.0*float64(sh.PhasingF)*float64(plane)/float64(total)
				t := &tle.TLE{
					CatalogNum:     catalog,
					IntlDesig:      fmt.Sprintf("%02d%03dA", cfg.LaunchStart.Year()%100, 1+catalog%999),
					Epoch:          cfg.Epoch,
					BStar:          0.0001,
					InclinationDeg: sh.InclinationDeg,
					RAANDeg:        units.WrapDeg360(raan + rng.NormFloat64()*cfg.JitterDeg),
					Eccentricity:   0.0001,
					ArgPerigeeDeg:  90,
					MeanAnomalyDeg: units.WrapDeg360(ma + rng.NormFloat64()*cfg.JitterDeg),
					MeanMotion:     mm,
				}
				var eph sgp4.Ephemeris
				var err error
				if cfg.UseKeplerJ2 {
					eph, err = sgp4.NewKeplerJ2(t)
				} else {
					eph, err = sgp4.New(t)
				}
				if err != nil {
					return nil, fmt.Errorf("constellation: shell %q plane %d slot %d: %w", sh.Name, plane, slot, err)
				}
				all = append(all, &Satellite{
					ID:         catalog,
					Name:       fmt.Sprintf("%s-%d", cfg.NamePrefix, catalog-cfg.FirstCatalogNum+1000),
					Shell:      sh.Name,
					TLE:        t,
					Propagator: eph,
				})
				catalog++
			}
		}
	}

	assignLaunchBatches(all, cfg, rng)

	c := &Constellation{Sats: all, Epoch: cfg.Epoch, byID: make(map[int]*Satellite, len(all)),
		SnapshotWorkers: cfg.SnapshotWorkers}
	for _, s := range all {
		c.byID[s.ID] = s
	}
	return c, nil
}

// assignLaunchBatches spreads launch dates across the constellation.
// Satellites are shuffled, then filled batch by batch with
// monthly-spaced dates, mimicking how real launches interleave new
// hardware into existing planes.
func assignLaunchBatches(sats []*Satellite, cfg Config, rng *rand.Rand) {
	order := rng.Perm(len(sats))
	nBatches := (len(sats) + cfg.BatchSize - 1) / cfg.BatchSize
	window := cfg.LaunchEnd.Sub(cfg.LaunchStart)
	for i, idx := range order {
		batch := i / cfg.BatchSize
		var frac float64
		if nBatches > 1 {
			frac = float64(batch) / float64(nBatches-1)
		}
		date := cfg.LaunchStart.Add(time.Duration(frac * float64(window)))
		// Snap to the first day of the month, matching the paper's
		// year-month binning.
		date = time.Date(date.Year(), date.Month(), 1, 0, 0, 0, 0, time.UTC)
		sats[idx].Launch = date
		sats[idx].LaunchIdx = batch
	}
}

// ByID returns the satellite with the given catalog number, or nil.
func (c *Constellation) ByID(id int) *Satellite { return c.byID[id] }

// Len returns the number of satellites.
func (c *Constellation) Len() int { return len(c.Sats) }

// Visible is one satellite currently above an observer's horizon mask,
// with its look angles and sunlit state at the query time.
type Visible struct {
	Sat    *Satellite
	Look   astro.LookAngles
	Sunlit bool
}

// SatState is one satellite's propagated state at a snapshot instant.
type SatState struct {
	Sat    *Satellite
	ECEF   units.Vec3
	Sunlit bool
}

// Snapshot propagates the whole constellation once for time t.
// Satellites whose propagation fails (decayed/stale elements) are
// skipped, mirroring how a TLE pipeline tolerates bad elements — but
// counted, not silently dropped: SnapshotSkipped returns the per-call
// skip count and PropagationSkips accumulates the running total plus
// the first error per distinct failing satellite. Use ObserveFrom to
// query the same snapshot from several observers without
// re-propagating.
func (c *Constellation) Snapshot(t time.Time) []SatState {
	out, _ := c.SnapshotSkipped(t)
	return out
}

// SnapshotSkipped is Snapshot plus the number of satellites dropped
// from this snapshot because their propagation failed.
func (c *Constellation) SnapshotSkipped(t time.Time) ([]SatState, int) {
	return c.SnapshotInto(nil, t, c.SnapshotWorkers)
}

// snapshotChunk is the unit of work a snapshot worker claims at a
// time: large enough that the atomic claim is noise, small enough that
// the tail of the sweep stays balanced across workers.
const snapshotChunk = 256

// resolveSnapshotWorkers maps the workers knob to an effective pool
// size for n satellites: <= 0 selects GOMAXPROCS, and the pool never
// exceeds one worker per chunk (tiny constellations run serial).
func resolveSnapshotWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (n + snapshotChunk - 1) / snapshotChunk; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// propagateInto runs one satellite's propagation into caller-owned
// scratch. Dispatch is devirtualized for the two built-in propagators:
// a static call lets escape analysis keep st on the caller's stack,
// where routing &st through the ScratchEphemeris interface would force
// a heap allocation per sweep. Other Ephemeris implementations
// (injected test propagators) take the value-return path.
func propagateInto(s *Satellite, t time.Time, st *sgp4.State) error {
	switch p := s.Propagator.(type) {
	case *sgp4.Propagator:
		return p.PropagateAtInto(t, st)
	case *sgp4.KeplerJ2:
		return p.PropagateAtInto(t, st)
	}
	v, err := s.Propagator.PropagateAt(t)
	if err != nil {
		return err
	}
	*st = v
	return nil
}

// snapSkip is one propagation failure observed during a snapshot
// sweep, tagged with its constellation position so parallel sweeps
// fold failures in the same deterministic order as the serial loop.
type snapSkip struct {
	idx int
	id  int
	msg string
}

// SnapshotInto is SnapshotSkipped writing into dst (grown as needed —
// pass a recycled slice to make the steady-state slot loop
// allocation-free) with an explicit worker count. The slot-invariant
// work — the TEME→ECEF rotation frame and the Sun-shadow cone — is
// hoisted out of the per-satellite loop, and with workers > 1 the
// sweep fans out over a bounded pool that writes by satellite index,
// so states, order, skip counts, and per-satellite first-error text
// are byte-identical at every worker count.
func (c *Constellation) SnapshotInto(dst []SatState, t time.Time, workers int) ([]SatState, int) {
	n := len(c.Sats)
	frame := astro.FrameAt(t)
	shadow := astro.NewShadow(astro.SunPositionECI(t))
	workers = resolveSnapshotWorkers(workers, n)

	if workers == 1 {
		out := growStates(dst, n)[:0]
		skipped := 0
		var st sgp4.State
		for _, s := range c.Sats {
			if err := propagateInto(s, t, &st); err != nil {
				skipped++
				c.recordSkip(s.ID, err.Error())
				continue
			}
			out = append(out, SatState{
				Sat:    s,
				ECEF:   frame.ToECEF(st.Pos),
				Sunlit: shadow.Sunlit(st.Pos),
			})
		}
		return out, skipped
	}
	// The fan-out lives in its own function: its goroutine closures
	// capture the hoisted frame/shadow, and sharing a stack frame with
	// the serial loop would force those onto the heap there too.
	return c.snapshotParallel(growStates(dst, n), t, workers, frame, shadow)
}

// snapshotParallel is SnapshotInto's worker pool: workers claim fixed
// chunks off an atomic cursor and write each satellite's state at its
// own index, so the filled slice is independent of scheduling.
// Failures leave a nil-Sat hole and are batched per worker; the serial
// fold below sorts them by constellation position, making the skip
// accounting — totals and first-error text — identical to the serial
// loop's.
func (c *Constellation) snapshotParallel(full []SatState, t time.Time, workers int, frame astro.Frame, shadow astro.Shadow) ([]SatState, int) {
	n := len(c.Sats)
	skipLists := make([][]snapSkip, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []snapSkip
			var st sgp4.State
			for {
				hi := int(cursor.Add(snapshotChunk))
				lo := hi - snapshotChunk
				if lo >= n {
					break
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					s := c.Sats[i]
					if err := propagateInto(s, t, &st); err != nil {
						full[i].Sat = nil
						local = append(local, snapSkip{idx: i, id: s.ID, msg: err.Error()})
						continue
					}
					full[i] = SatState{
						Sat:    s,
						ECEF:   frame.ToECEF(st.Pos),
						Sunlit: shadow.Sunlit(st.Pos),
					}
				}
			}
			skipLists[w] = local
		}(w)
	}
	wg.Wait()

	skipped := 0
	for _, l := range skipLists {
		skipped += len(l)
	}
	if skipped == 0 {
		return full, 0
	}
	var skips []snapSkip
	for _, l := range skipLists {
		skips = append(skips, l...)
	}
	slices.SortFunc(skips, func(a, b snapSkip) int { return a.idx - b.idx })
	for _, sk := range skips {
		c.recordSkip(sk.id, sk.msg)
	}
	// Compact the holes in place, preserving constellation order.
	out := full[:0]
	for i := range full {
		if full[i].Sat != nil {
			out = append(out, full[i])
		}
	}
	return out, skipped
}

// growStates returns dst resized to n entries, reusing its backing
// array when the capacity allows.
func growStates(dst []SatState, n int) []SatState {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]SatState, n)
}

// recordSkip folds one propagation failure into the constellation's
// skip accounting, keeping the first error text per satellite.
func (c *Constellation) recordSkip(id int, msg string) {
	c.skipMu.Lock()
	c.skipTotal++
	if c.skipBySat == nil {
		c.skipBySat = make(map[int]string)
	}
	if _, seen := c.skipBySat[id]; !seen {
		c.skipBySat[id] = msg
	}
	c.skipMu.Unlock()
}

// PropagationSkips reports how many satellite propagations this
// constellation has skipped across all snapshots, plus the first error
// observed per distinct failing satellite. Safe for concurrent use.
func (c *Constellation) PropagationSkips() (total int64, bySat map[int]string) {
	c.skipMu.Lock()
	defer c.skipMu.Unlock()
	if len(c.skipBySat) > 0 {
		bySat = make(map[int]string, len(c.skipBySat))
		for id, msg := range c.skipBySat {
			bySat[id] = msg
		}
	}
	return c.skipTotal, bySat
}

// Fingerprint returns a stable hash of the constellation's identity:
// every satellite's catalog number, orbital elements, launch metadata,
// and propagator kind. Two constellations with equal fingerprints
// produce identical snapshots at every time, which is what lets a
// SnapshotCache share propagated states across independently built
// environments. Computed once and cached.
func (c *Constellation) Fingerprint() uint64 {
	c.fpOnce.Do(func() {
		h := fnv.New64a()
		buf := make([]byte, 8)
		wInt := func(v int64) {
			binary.LittleEndian.PutUint64(buf, uint64(v))
			h.Write(buf)
		}
		wFloat := func(v float64) {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			h.Write(buf)
		}
		wInt(int64(len(c.Sats)))
		wInt(c.Epoch.UnixNano())
		for _, s := range c.Sats {
			wInt(int64(s.ID))
			wInt(s.Launch.UnixNano())
			wInt(int64(s.LaunchIdx))
			h.Write([]byte(s.Shell))
			h.Write([]byte(fmt.Sprintf("%T", s.Propagator)))
			if t := s.TLE; t != nil {
				wInt(t.Epoch.UnixNano())
				wFloat(t.InclinationDeg)
				wFloat(t.RAANDeg)
				wFloat(t.Eccentricity)
				wFloat(t.ArgPerigeeDeg)
				wFloat(t.MeanAnomalyDeg)
				wFloat(t.MeanMotion)
				wFloat(t.BStar)
			} else {
				wInt(-1) // synthetic satellite without elements
			}
		}
		c.fp = h.Sum64()
	})
	return c.fp
}

// ObserveFrom filters a snapshot to the satellites above minElevDeg
// for the observer, sorted by descending elevation with ties broken by
// ascending satellite ID. The tie-break makes the order a total order:
// equal-elevation satellites (common in synthetic Walker shells) come
// out identically across runs, architectures, and — critically — across
// the linear scan and the SnapshotIndex query path, which must agree
// byte for byte.
func ObserveFrom(obs astro.Geodetic, snap []SatState, minElevDeg float64) []Visible {
	// A 25° mask over a 4k-satellite constellation sees a few dozen
	// satellites; 48 covers typical sweeps without append regrowth.
	hint := 48
	if hint > len(snap) {
		hint = len(snap)
	}
	return AppendObserveFrom(make([]Visible, 0, hint), obs, snap, minElevDeg)
}

// AppendObserveFrom is ObserveFrom appending into dst (reusing its
// backing array), for callers that sweep many slots and want the
// per-slot visibility scan allocation-free.
func AppendObserveFrom(dst []Visible, obs astro.Geodetic, snap []SatState, minElevDeg float64) []Visible {
	o := astro.NewObserver(obs)
	start := len(dst)
	for i := range snap {
		la := o.Observe(snap[i].ECEF)
		if la.ElevationDeg < minElevDeg {
			continue
		}
		dst = append(dst, Visible{Sat: snap[i].Sat, Look: la, Sunlit: snap[i].Sunlit})
	}
	sortVisible(dst[start:])
	return dst
}

// sortVisible orders a visible set by descending elevation, ties by
// ascending satellite ID — the one deterministic order every
// visibility path (linear scan and index) must produce. Satellite IDs
// are unique, so the comparator is a total order and the (unstable)
// sort is deterministic.
func sortVisible(out []Visible) {
	slices.SortFunc(out, func(a, b Visible) int {
		if a.Look.ElevationDeg != b.Look.ElevationDeg {
			if a.Look.ElevationDeg > b.Look.ElevationDeg {
				return -1
			}
			return 1
		}
		return a.Sat.ID - b.Sat.ID
	})
}

// FieldOfView returns all satellites above minElevDeg for the observer
// at time t, sorted by descending elevation.
func (c *Constellation) FieldOfView(obs astro.Geodetic, t time.Time, minElevDeg float64) []Visible {
	return ObserveFrom(obs, c.Snapshot(t), minElevDeg)
}

// TrackPoint is a time-stamped topocentric sample of a satellite's
// path across an observer's sky.
type TrackPoint struct {
	T    time.Time
	Look astro.LookAngles
}

// Track samples the look angles of satellite id from obs over
// [start, start+dur] at the given step. Samples below the horizon are
// included (callers filter); a propagation error aborts.
func (c *Constellation) Track(id int, obs astro.Geodetic, start time.Time, dur, step time.Duration) ([]TrackPoint, error) {
	s := c.ByID(id)
	if s == nil {
		return nil, fmt.Errorf("constellation: no satellite %d", id)
	}
	if step <= 0 {
		return nil, fmt.Errorf("constellation: non-positive step %v", step)
	}
	o := astro.NewObserver(obs)
	end := start.Add(dur)
	pts := make([]TrackPoint, 0, int(dur/step)+1)
	var st sgp4.State
	for t := start; !t.After(end); t = t.Add(step) {
		if err := propagateInto(s, t, &st); err != nil {
			return nil, fmt.Errorf("constellation: satellite %d at %v: %w", id, t, err)
		}
		pts = append(pts, TrackPoint{T: t, Look: o.Observe(astro.FrameAt(t).ToECEF(st.Pos))})
	}
	return pts, nil
}

// ExportTLEs renders the whole constellation in CelesTrak 3-line
// format.
func (c *Constellation) ExportTLEs() string {
	out := make([]byte, 0, len(c.Sats)*3*70)
	for _, s := range c.Sats {
		s.TLE.Name = s.Name
		for _, l := range s.TLE.FormatLines() {
			out = append(out, l...)
			out = append(out, '\n')
		}
	}
	return string(out)
}
