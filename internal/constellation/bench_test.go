package constellation

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// benchCons lazily builds the full four-shell Starlink constellation
// (~4k satellites) once, so every snapshot benchmark measures the
// sweep, not TLE synthesis and SGP4 initialisation.
var (
	benchConsOnce sync.Once
	benchConsErr  error
	benchConsVal  *Constellation
)

func benchCons(b *testing.B) *Constellation {
	b.Helper()
	benchConsOnce.Do(func() {
		benchConsVal, benchConsErr = New(Config{Seed: 7})
	})
	if benchConsErr != nil {
		b.Fatal(benchConsErr)
	}
	return benchConsVal
}

// BenchmarkSnapshot is the serial snapshot sweep over the full
// constellation. "fresh" allocates the state slice every iteration the
// way a cold cache miss does; "warm" reuses the buffer the way the
// pooled SnapshotCache steady state does — the warm variant is the
// 0 allocs/op acceptance path (TestSnapshotIntoZeroAlloc proves the
// invariant on a small constellation; this records the cost at scale).
func BenchmarkSnapshot(b *testing.B) {
	cons := benchCons(b)
	at := cons.Epoch.Add(45 * time.Minute)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if states, _ := cons.SnapshotInto(nil, at, 1); len(states) == 0 {
				b.Fatal("empty snapshot")
			}
		}
		reportSatsPerSec(b, cons)
	})
	b.Run("warm", func(b *testing.B) {
		buf, _ := cons.SnapshotInto(nil, at, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf, _ = cons.SnapshotInto(buf, at, 1)
		}
		reportSatsPerSec(b, cons)
	})
}

// BenchmarkSnapshotParallel sweeps the worker-pool fan-out at several
// widths against the same warm buffer; output is byte-identical to the
// serial sweep at every width (TestSnapshotIntoWorkerIdentity).
// Compare ns/op against BenchmarkSnapshot/warm for the speedup — on a
// single-core host the wider variants only add coordination overhead,
// so record the sweep on a multi-core machine for the real curve.
func BenchmarkSnapshotParallel(b *testing.B) {
	cons := benchCons(b)
	at := cons.Epoch.Add(45 * time.Minute)
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			buf, _ := cons.SnapshotInto(nil, at, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, _ = cons.SnapshotInto(buf, at, workers)
			}
			reportSatsPerSec(b, cons)
		})
	}
}

func reportSatsPerSec(b *testing.B, cons *Constellation) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(len(cons.Sats)*b.N)/s, "sats/s")
	}
}

// BenchmarkSnapshotIndexRebuild compares a fresh index build against
// Rebuild over a warm index (same grid dims, cell backing arrays
// reused) — the steady-state slot path through SharedSnapshot.Index.
func BenchmarkSnapshotIndexRebuild(b *testing.B) {
	cons := benchCons(b)
	snap := cons.Snapshot(cons.Epoch.Add(45 * time.Minute))
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ix := NewSnapshotIndex(snap); ix == nil {
				b.Fatal("nil index")
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		ix := NewSnapshotIndex(snap)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Rebuild(snap)
		}
	})
}
