package features

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeyIndexRoundTrip(t *testing.T) {
	for i := 0; i < NumClusters; i++ {
		k, err := KeyFromIndex(i)
		if err != nil {
			t.Fatal(err)
		}
		if k.Index() != i {
			t.Fatalf("index %d -> %v -> %d", i, k, k.Index())
		}
	}
	if _, err := KeyFromIndex(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := KeyFromIndex(NumClusters); err == nil {
		t.Error("overflow index accepted")
	}
}

func TestKeyIndexInjective(t *testing.T) {
	seen := map[int]Key{}
	for az := -ZRange; az <= ZRange; az++ {
		for el := -ZRange; el <= ZRange; el++ {
			for age := -ZRange; age <= ZRange; age++ {
				for _, sun := range []bool{false, true} {
					k := Key{az, el, age, sun}
					i := k.Index()
					if prev, dup := seen[i]; dup {
						t.Fatalf("keys %v and %v share index %d", prev, k, i)
					}
					seen[i] = k
				}
			}
		}
	}
	if len(seen) != NumClusters {
		t.Fatalf("enumerated %d keys, want %d", len(seen), NumClusters)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{AzZ: -1, ElZ: 2, AgeZ: 0, Sunlit: true}
	if got := k.String(); got != "(-1,2,0,1)" {
		t.Errorf("String = %q", got)
	}
}

func TestClusterBasics(t *testing.T) {
	sats := []Sat{
		{AzimuthDeg: 0, ElevationDeg: 30, AgeYears: 1, Sunlit: true},
		{AzimuthDeg: 90, ElevationDeg: 50, AgeYears: 2, Sunlit: true},
		{AzimuthDeg: 180, ElevationDeg: 70, AgeYears: 3, Sunlit: false},
	}
	sl, err := Cluster(sats)
	if err != nil {
		t.Fatal(err)
	}
	if len(sl.Keys) != 3 {
		t.Fatal("keys length")
	}
	// Middle satellite is the mean on every numeric feature.
	if k := sl.Keys[1]; k.AzZ != 0 || k.ElZ != 0 || k.AgeZ != 0 || !k.Sunlit {
		t.Errorf("middle key = %v", k)
	}
	// Extremes land on opposite sides.
	if sl.Keys[0].ElZ >= 0 || sl.Keys[2].ElZ <= 0 {
		t.Errorf("extreme keys: %v %v", sl.Keys[0], sl.Keys[2])
	}
	// Counts sum to the number of satellites.
	sum := 0
	for _, c := range sl.Counts {
		sum += c
	}
	if sum != 3 {
		t.Errorf("counts sum to %d", sum)
	}
}

func TestClusterEmpty(t *testing.T) {
	if _, err := Cluster(nil); err == nil {
		t.Error("empty set accepted")
	}
}

func TestClusterConstantFeature(t *testing.T) {
	// All identical: every satellite in the (0,0,0,s) cluster.
	sats := []Sat{
		{AzimuthDeg: 10, ElevationDeg: 40, AgeYears: 2, Sunlit: false},
		{AzimuthDeg: 10, ElevationDeg: 40, AgeYears: 2, Sunlit: false},
	}
	sl, err := Cluster(sats)
	if err != nil {
		t.Fatal(err)
	}
	want := Key{0, 0, 0, false}
	for _, k := range sl.Keys {
		if k != want {
			t.Errorf("key = %v, want %v", k, want)
		}
	}
}

func TestClusterClamping(t *testing.T) {
	// One extreme outlier must clamp to ±2, not overflow the key space.
	sats := []Sat{
		{AzimuthDeg: 0, ElevationDeg: 30, AgeYears: 0, Sunlit: true},
		{AzimuthDeg: 1, ElevationDeg: 30, AgeYears: 0, Sunlit: true},
		{AzimuthDeg: 2, ElevationDeg: 30, AgeYears: 0, Sunlit: true},
		{AzimuthDeg: 3, ElevationDeg: 30, AgeYears: 0, Sunlit: true},
		{AzimuthDeg: 359, ElevationDeg: 30, AgeYears: 0, Sunlit: true},
	}
	sl, err := Cluster(sats)
	if err != nil {
		t.Fatal(err)
	}
	if k := sl.Keys[4]; k.AzZ != 2 {
		t.Errorf("outlier AzZ = %d, want clamp to 2", k.AzZ)
	}
}

func TestVector(t *testing.T) {
	sats := []Sat{{AzimuthDeg: 5, ElevationDeg: 45, AgeYears: 1, Sunlit: true}}
	sl, err := Cluster(sats)
	if err != nil {
		t.Fatal(err)
	}
	v := sl.Vector(14)
	if len(v) != VectorLen {
		t.Fatalf("vector length %d", len(v))
	}
	if v[0] != 14 {
		t.Errorf("hour = %v", v[0])
	}
	// Exactly one cluster has count 1.
	n := 0.0
	for _, x := range v[1:] {
		n += x
	}
	if n != 1 {
		t.Errorf("total count = %v", n)
	}
	k, err := sl.KeyOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if v[1+k.Index()] != 1 {
		t.Error("count not at the satellite's cluster")
	}
	if _, err := sl.KeyOf(5); err == nil {
		t.Error("out-of-range KeyOf accepted")
	}
}

func TestVectorCountsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		sats := make([]Sat, n)
		for i := range sats {
			sats[i] = Sat{
				AzimuthDeg:   rng.Float64() * 360,
				ElevationDeg: 25 + rng.Float64()*65,
				AgeYears:     rng.Float64() * 4,
				Sunlit:       rng.Intn(2) == 0,
			}
		}
		sl, err := Cluster(sats)
		if err != nil {
			return false
		}
		v := sl.Vector(0)
		sum := 0.0
		for _, x := range v[1:] {
			sum += x
		}
		if int(sum) != n {
			return false
		}
		// Every satellite's key must be counted.
		for i := range sats {
			k, err := sl.KeyOf(i)
			if err != nil || v[1+k.Index()] < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFeatureName(t *testing.T) {
	if FeatureName(0) != "local_hour" {
		t.Error("feature 0")
	}
	k := Key{AzZ: 1, ElZ: -1, AgeZ: -1, Sunlit: true}
	if got := FeatureName(1 + k.Index()); got != "(1,-1,-1,1)" {
		t.Errorf("FeatureName = %q", got)
	}
}

func TestBaselineRanking(t *testing.T) {
	v := make([]float64, VectorLen)
	v[0] = 3 // hour, ignored
	v[1+10] = 7
	v[1+20] = 9
	v[1+30] = 9 // tie with 20: lower index first
	ranked, err := BaselineRanking(v)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0] != 20 || ranked[1] != 30 || ranked[2] != 10 {
		t.Errorf("top ranks = %v", ranked[:3])
	}
	if len(ranked) != NumClusters {
		t.Errorf("ranking length %d", len(ranked))
	}
	if _, err := BaselineRanking(v[:5]); err == nil {
		t.Error("short vector accepted")
	}
}
