package features

// Zero-allocation variants of Cluster/Vector for the online serving
// path (internal/predict): the batch entry points allocate a Slot, a
// key slice, and three moment slices per call, which is fine for
// training sweeps but would put a model-serving hot loop at the
// allocator's mercy. ClusterInto reuses the caller's Slot and computes
// the moments by direct accumulation — the same sums in the same
// order as stats.MeanStd, so the clusters (and every float) are
// bit-identical to the batch path.

import (
	"fmt"
	"math"
)

// meanStdSats accumulates one feature's mean and population std
// straight off the satellite slice, mirroring stats.MeanStd's
// arithmetic (serial sum for the mean, then a serial sum of squared
// deviations) so the results match Cluster bit for bit.
func meanStdSats(sats []Sat, get func(*Sat) float64) (mean, std float64) {
	s := 0.0
	for i := range sats {
		s += get(&sats[i])
	}
	mean = s / float64(len(sats))
	s = 0.0
	for i := range sats {
		d := get(&sats[i]) - mean
		s += d * d
	}
	return mean, math.Sqrt(s / float64(len(sats)))
}

// ClusterInto is Cluster without the allocations: the Slot's key slice
// is reused (growing its backing array only while the available set
// does) and the counts are zeroed in place. The populated Slot is
// bit-identical to Cluster's on the same input.
func ClusterInto(sl *Slot, sats []Sat) error {
	if len(sats) == 0 {
		return fmt.Errorf("features: empty available set")
	}
	sl.AzMean, sl.AzStd = meanStdSats(sats, func(s *Sat) float64 { return s.AzimuthDeg })
	sl.ElMean, sl.ElStd = meanStdSats(sats, func(s *Sat) float64 { return s.ElevationDeg })
	sl.AgeMean, sl.AgeStd = meanStdSats(sats, func(s *Sat) float64 { return s.AgeYears })
	sl.Keys = sl.Keys[:0]
	sl.Counts = [NumClusters]int{}
	for i := range sats {
		s := &sats[i]
		k := Key{
			AzZ:    clampZ(s.AzimuthDeg, sl.AzMean, sl.AzStd),
			ElZ:    clampZ(s.ElevationDeg, sl.ElMean, sl.ElStd),
			AgeZ:   clampZ(s.AgeYears, sl.AgeMean, sl.AgeStd),
			Sunlit: s.Sunlit,
		}
		sl.Keys = append(sl.Keys, k)
		sl.Counts[k.Index()]++
	}
	return nil
}

// VectorInto renders the model input into caller scratch of length
// VectorLen — Vector without the per-call allocation.
func (sl *Slot) VectorInto(localHour int, v []float64) error {
	if len(v) != VectorLen {
		return fmt.Errorf("features: vector scratch length %d, want %d", len(v), VectorLen)
	}
	v[0] = float64(localHour)
	for i, c := range sl.Counts {
		v[1+i] = float64(c)
	}
	return nil
}
