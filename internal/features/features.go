// Package features builds the model inputs from §6 of the paper.
//
// For each 15-second slot, the satellites available to a terminal are
// clustered by how many (population) standard deviations each of their
// features — azimuth, angle of elevation, age, sunlit state — sits
// from the per-slot mean of the available set. The z-scores are
// rounded to integers and clamped, so a cluster key like (1, 0, -1, 1)
// reads "azimuth one sigma above the mean, average elevation, age one
// sigma below the mean, sunlit". The model's feature vector is the
// terminal's local hour followed by the count of available satellites
// in each cluster; its prediction target is the cluster containing the
// satellite the scheduler chose.
package features

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// ZRange clamps rounded z-scores to [-ZRange, +ZRange]. With ±2 the
// key space stays small (5×5×5×2 = 250 clusters) while covering >95%
// of a roughly normal spread, matching the tuples the paper reports
// (e.g. "(x, 2, y, z)").
const ZRange = 2

// zLevels is the number of distinct clamped z values.
const zLevels = 2*ZRange + 1

// NumClusters is the size of the cluster key space.
const NumClusters = zLevels * zLevels * zLevels * 2

// VectorLen is the model feature vector length: local hour + one count
// per cluster.
const VectorLen = 1 + NumClusters

// Sat holds the publicly observable per-satellite features.
type Sat struct {
	AzimuthDeg   float64
	ElevationDeg float64
	AgeYears     float64
	Sunlit       bool
}

// Key is a cluster identity.
type Key struct {
	AzZ, ElZ, AgeZ int // clamped integer z-scores
	Sunlit         bool
}

// String renders the key the way the paper prints feature tuples.
func (k Key) String() string {
	s := 0
	if k.Sunlit {
		s = 1
	}
	return fmt.Sprintf("(%d,%d,%d,%d)", k.AzZ, k.ElZ, k.AgeZ, s)
}

// Index maps the key to [0, NumClusters).
func (k Key) Index() int {
	a := k.AzZ + ZRange
	e := k.ElZ + ZRange
	g := k.AgeZ + ZRange
	s := 0
	if k.Sunlit {
		s = 1
	}
	return ((a*zLevels+e)*zLevels+g)*2 + s
}

// KeyFromIndex inverts Index.
func KeyFromIndex(i int) (Key, error) {
	if i < 0 || i >= NumClusters {
		return Key{}, fmt.Errorf("features: cluster index %d out of [0,%d)", i, NumClusters)
	}
	k := Key{Sunlit: i%2 == 1}
	i /= 2
	k.AgeZ = i%zLevels - ZRange
	i /= zLevels
	k.ElZ = i%zLevels - ZRange
	i /= zLevels
	k.AzZ = i - ZRange
	return k, nil
}

// clampZ rounds and clamps a z-score. A zero std collapses the feature
// to the mean bucket.
func clampZ(v, mean, std float64) int {
	if std == 0 {
		return 0
	}
	z := math.Round((v - mean) / std)
	if z > ZRange {
		z = ZRange
	}
	if z < -ZRange {
		z = -ZRange
	}
	return int(z)
}

// Slot is the clustered view of one 15-second slot's available set.
type Slot struct {
	Keys []Key // cluster key per input satellite, same order
	// Counts[i] is the number of available satellites in cluster i.
	Counts [NumClusters]int
	// Moments kept for explainability.
	AzMean, AzStd   float64
	ElMean, ElStd   float64
	AgeMean, AgeStd float64
}

// Cluster assigns each available satellite to its z-score cluster.
func Cluster(sats []Sat) (*Slot, error) {
	if len(sats) == 0 {
		return nil, fmt.Errorf("features: empty available set")
	}
	az := make([]float64, len(sats))
	el := make([]float64, len(sats))
	age := make([]float64, len(sats))
	for i, s := range sats {
		az[i] = s.AzimuthDeg
		el[i] = s.ElevationDeg
		age[i] = s.AgeYears
	}
	sl := &Slot{Keys: make([]Key, len(sats))}
	sl.AzMean, sl.AzStd = stats.MeanStd(az)
	sl.ElMean, sl.ElStd = stats.MeanStd(el)
	sl.AgeMean, sl.AgeStd = stats.MeanStd(age)
	for i, s := range sats {
		k := Key{
			AzZ:    clampZ(s.AzimuthDeg, sl.AzMean, sl.AzStd),
			ElZ:    clampZ(s.ElevationDeg, sl.ElMean, sl.ElStd),
			AgeZ:   clampZ(s.AgeYears, sl.AgeMean, sl.AgeStd),
			Sunlit: s.Sunlit,
		}
		sl.Keys[i] = k
		sl.Counts[k.Index()]++
	}
	return sl, nil
}

// Vector renders the model input: local hour (0-23) followed by the
// per-cluster availability counts.
func (sl *Slot) Vector(localHour int) []float64 {
	v := make([]float64, VectorLen)
	v[0] = float64(localHour)
	for i, c := range sl.Counts {
		v[1+i] = float64(c)
	}
	return v
}

// KeyOf returns the cluster key of input satellite i.
func (sl *Slot) KeyOf(i int) (Key, error) {
	if i < 0 || i >= len(sl.Keys) {
		return Key{}, fmt.Errorf("features: satellite index %d out of range", i)
	}
	return sl.Keys[i], nil
}

// FeatureName describes vector element i for importance reporting:
// "local_hour" or the cluster tuple string.
func FeatureName(i int) string {
	if i == 0 {
		return "local_hour"
	}
	k, err := KeyFromIndex(i - 1)
	if err != nil {
		return fmt.Sprintf("invalid(%d)", i)
	}
	return k.String()
}

// BaselineRanking orders cluster indices by their availability count
// in the vector, descending — the paper's baseline model, which
// predicts the most-populated cluster(s). Ties break toward lower
// index for determinism.
func BaselineRanking(vector []float64) ([]int, error) {
	if len(vector) != VectorLen {
		return nil, fmt.Errorf("features: vector length %d, want %d", len(vector), VectorLen)
	}
	idx := make([]int, NumClusters)
	for i := range idx {
		idx[i] = i
	}
	counts := vector[1:]
	// Insertion sort by descending count keeps this dependency-free and
	// stable.
	for i := 1; i < len(idx); i++ {
		j := i
		for j > 0 && counts[idx[j]] > counts[idx[j-1]] {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			j--
		}
	}
	return idx, nil
}
