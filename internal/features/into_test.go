package features

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomSats(rng *rand.Rand, n int) []Sat {
	sats := make([]Sat, n)
	for i := range sats {
		sats[i] = Sat{
			AzimuthDeg:   rng.Float64() * 360,
			ElevationDeg: 25 + rng.Float64()*65,
			AgeYears:     rng.Float64() * 5,
			Sunlit:       rng.Intn(2) == 0,
		}
	}
	return sats
}

// TestClusterIntoMatchesCluster: the zero-alloc path must be
// bit-identical to the batch path — keys, counts, and every moment
// float — including on degenerate sets (single satellite, zero
// variance).
func TestClusterIntoMatchesCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var sl Slot
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		sats := randomSats(rng, n)
		if trial%7 == 0 {
			// Zero-variance sets exercise the std==0 collapse.
			for i := range sats {
				sats[i].ElevationDeg = 45
			}
		}
		want, err := Cluster(sats)
		if err != nil {
			t.Fatal(err)
		}
		if err := ClusterInto(&sl, sats); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sl.Keys, want.Keys) {
			t.Fatalf("trial %d: keys differ: %v vs %v", trial, sl.Keys, want.Keys)
		}
		if sl.Counts != want.Counts {
			t.Fatalf("trial %d: counts differ", trial)
		}
		got := [6]float64{sl.AzMean, sl.AzStd, sl.ElMean, sl.ElStd, sl.AgeMean, sl.AgeStd}
		exp := [6]float64{want.AzMean, want.AzStd, want.ElMean, want.ElStd, want.AgeMean, want.AgeStd}
		if got != exp {
			t.Fatalf("trial %d: moments differ: %v vs %v", trial, got, exp)
		}

		var vec [VectorLen]float64
		if err := sl.VectorInto(13, vec[:]); err != nil {
			t.Fatal(err)
		}
		if wantVec := want.Vector(13); !reflect.DeepEqual(vec[:], wantVec) {
			t.Fatalf("trial %d: vectors differ", trial)
		}
	}
	if err := ClusterInto(&sl, nil); err == nil {
		t.Error("empty set accepted")
	}
	if err := sl.VectorInto(0, make([]float64, 3)); err == nil {
		t.Error("short vector scratch accepted")
	}
}

// TestClusterIntoZeroAlloc pins the serving-path property the
// BenchmarkPredictServe acceptance depends on: once the Slot's key
// slice has grown to the working-set size, ClusterInto and VectorInto
// allocate nothing.
func TestClusterIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sats := randomSats(rng, 32)
	var sl Slot
	vec := make([]float64, VectorLen)
	if err := ClusterInto(&sl, sats); err != nil { // warm the key slice
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := ClusterInto(&sl, sats); err != nil {
			t.Fatal(err)
		}
		if err := sl.VectorInto(7, vec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ClusterInto+VectorInto = %v allocs/op, want 0", allocs)
	}
}
