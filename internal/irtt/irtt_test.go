package irtt

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func startServer(t *testing.T, delay DelayFunc) (*Server, context.CancelFunc) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", delay)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go srv.Serve(ctx)
	t.Cleanup(func() { cancel(); srv.Close() })
	return srv, cancel
}

func TestPacketRoundTrip(t *testing.T) {
	p := packet{Type: typeRequest, Seq: 12345, ClientSend: 987654321}
	buf := p.marshal(nil)
	if len(buf) != packetSize {
		t.Fatalf("marshaled %d bytes", len(buf))
	}
	q, err := parsePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("round trip %+v -> %+v", p, q)
	}
}

func TestPacketValidation(t *testing.T) {
	p := packet{Type: typeReply, Seq: 7, ClientSend: 1, ServerRecv: 2}
	buf := p.marshal(nil)

	short := buf[:20]
	if _, err := parsePacket(short); !errors.Is(err, ErrBadPacket) {
		t.Error("short packet accepted")
	}

	bad := append([]byte(nil), buf...)
	bad[0] = 'X'
	if _, err := parsePacket(bad); !errors.Is(err, ErrBadPacket) {
		t.Error("bad magic accepted")
	}

	flip := append([]byte(nil), buf...)
	flip[10] ^= 0xFF
	if _, err := parsePacket(flip); !errors.Is(err, ErrBadPacket) {
		t.Error("corrupted payload accepted (checksum)")
	}

	badType := packet{Type: 9, Seq: 1}
	raw := badType.marshal(nil)
	if _, err := parsePacket(raw); !errors.Is(err, ErrBadPacket) {
		t.Error("unknown type accepted")
	}
}

func TestClientServerLoopback(t *testing.T) {
	srv, _ := startServer(t, nil)
	results, err := Run(context.Background(), srv.Addr().String(), ClientConfig{
		Interval: 2 * time.Millisecond,
		Count:    50,
		Timeout:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 50 {
		t.Fatalf("%d results", len(results))
	}
	sum := Summarize(results)
	if sum.LossRate > 0.1 {
		t.Errorf("loopback loss rate = %v", sum.LossRate)
	}
	if sum.Received == 0 {
		t.Fatal("no replies")
	}
	if sum.MedianRTT <= 0 || sum.MedianRTT > 100*time.Millisecond {
		t.Errorf("median loopback RTT = %v", sum.MedianRTT)
	}
	served, dropped := srv.Stats()
	if served == 0 || dropped != 0 {
		t.Errorf("server stats: served=%d dropped=%d", served, dropped)
	}
}

func TestInjectedDelayShowsInRTT(t *testing.T) {
	const inject = 30 * time.Millisecond
	srv, _ := startServer(t, func(time.Time) (time.Duration, bool) { return inject, false })
	results, err := Run(context.Background(), srv.Addr().String(), ClientConfig{
		Interval: 5 * time.Millisecond,
		Count:    20,
		Timeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(results)
	if sum.Received == 0 {
		t.Fatal("no replies")
	}
	if sum.MedianRTT < inject {
		t.Errorf("median RTT %v below injected delay %v", sum.MedianRTT, inject)
	}
	if sum.MedianRTT > inject+80*time.Millisecond {
		t.Errorf("median RTT %v way above injected delay", sum.MedianRTT)
	}
}

func TestInjectedLoss(t *testing.T) {
	n := 0
	srv, _ := startServer(t, func(time.Time) (time.Duration, bool) {
		n++
		return 0, n%2 == 0 // drop every other probe
	})
	results, err := Run(context.Background(), srv.Addr().String(), ClientConfig{
		Interval: 2 * time.Millisecond,
		Count:    60,
		Timeout:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(results)
	if sum.LossRate < 0.3 || sum.LossRate > 0.7 {
		t.Errorf("loss rate = %v, want ~0.5", sum.LossRate)
	}
	_, dropped := srv.Stats()
	if dropped == 0 {
		t.Error("server recorded no drops")
	}
}

func TestClientContextCancel(t *testing.T) {
	srv, _ := startServer(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(ctx, srv.Addr().String(), ClientConfig{
		Interval: 10 * time.Millisecond,
		Count:    1000,
		Timeout:  time.Second,
	})
	if err == nil {
		t.Fatal("expected context error")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("cancel did not stop the run promptly")
	}
}

func TestRunBadAddress(t *testing.T) {
	if _, err := Run(context.Background(), "not-an-address:xyz", ClientConfig{}); err == nil {
		t.Error("bad address accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Sent != 0 || s.Received != 0 || s.LossRate != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	all := Summarize([]Result{{Lost: true}, {Lost: true}})
	if all.LossRate != 1 {
		t.Errorf("all-lost loss rate = %v", all.LossRate)
	}
}

func TestSummarizeOrderStats(t *testing.T) {
	rs := []Result{
		{RTT: 30 * time.Millisecond},
		{RTT: 10 * time.Millisecond},
		{RTT: 20 * time.Millisecond},
	}
	s := Summarize(rs)
	if s.MinRTT != 10*time.Millisecond || s.MedianRTT != 20*time.Millisecond || s.MaxRTT != 30*time.Millisecond {
		t.Errorf("summary = %+v", s)
	}
}

// TestSummarizeQuantiles pins the interpolated quantiles across the
// edge shapes: empty, single sample, and even/odd series lengths.
func TestSummarizeQuantiles(t *testing.T) {
	ms := func(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }
	series := func(ns ...float64) []Result {
		rs := make([]Result, len(ns))
		for i, n := range ns {
			rs[i] = Result{RTT: ms(n)}
		}
		return rs
	}
	cases := []struct {
		name                  string
		rs                    []Result
		median, p95, p99, max time.Duration
	}{
		{"empty", nil, 0, 0, 0, 0},
		{"single", series(42), ms(42), ms(42), ms(42), ms(42)},
		// Even length: the median interpolates between the central pair,
		// p95/p99 between the last two order statistics.
		{"even", series(40, 10, 30, 20), ms(25), ms(38.5), ms(39.7), ms(40)},
		// Odd length: the median is the middle sample exactly.
		{"odd", series(50, 10, 30, 20, 40), ms(30), ms(48), ms(49.6), ms(50)},
	}
	// Interpolation goes through float64 nanoseconds; allow a 1 us slop
	// on the exact arithmetic.
	close := func(a, b time.Duration) bool {
		d := a - b
		return d > -time.Microsecond && d < time.Microsecond
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Summarize(tc.rs)
			if !close(s.MedianRTT, tc.median) || !close(s.P95RTT, tc.p95) || !close(s.P99RTT, tc.p99) || s.MaxRTT != tc.max {
				t.Errorf("got median=%v p95=%v p99=%v max=%v, want %v / %v / %v / %v",
					s.MedianRTT, s.P95RTT, s.P99RTT, s.MaxRTT, tc.median, tc.p95, tc.p99, tc.max)
			}
		})
	}
}

func TestServerIgnoresGarbage(t *testing.T) {
	srv, _ := startServer(t, nil)
	// Fire garbage at the server, then verify a normal run still works.
	conn, err := netDial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("garbage"))
	conn.Write(make([]byte, packetSize)) // right size, wrong magic
	conn.Close()

	results, err := Run(context.Background(), srv.Addr().String(), ClientConfig{
		Interval: 2 * time.Millisecond, Count: 10, Timeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if Summarize(results).Received == 0 {
		t.Error("server stopped echoing after garbage")
	}
}

// netDial is a tiny helper so the garbage test doesn't import net at
// the top level of every test.
func netDial(addr string) (io.WriteCloser, error) {
	return net.Dial("udp", addr)
}

// TestClientResultsRace is the regression test for the unsynchronized
// results slice shared between Run's sender and receiver goroutines.
// The echo server answers every probe twice: once honestly and once
// claiming the NEXT sequence number, so the receiver touches
// results[i] in the window before the sender initializes it. Under
// `go test -race` the pre-fix client reports a data race here.
func TestClientResultsRace(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		buf := make([]byte, 2048)
		out := make([]byte, packetSize)
		for {
			n, peer, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			p, err := parsePacket(buf[:n])
			if err != nil || p.Type != typeRequest {
				continue
			}
			p.Type = typeReply
			p.ServerRecv = time.Now().UnixNano()
			conn.WriteToUDP(p.marshal(out), peer)
			p.Seq++ // ahead-of-schedule reply
			conn.WriteToUDP(p.marshal(out), peer)
		}
	}()
	results, err := Run(context.Background(), conn.LocalAddr().String(), ClientConfig{
		Interval: 100 * time.Microsecond,
		Count:    500,
		Timeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 500 {
		t.Fatalf("%d results", len(results))
	}
	sum := Summarize(results)
	if sum.Received == 0 {
		t.Fatal("no replies")
	}
	// The spoofed ahead-of-schedule replies must not have been counted
	// as real echoes: every non-lost RTT must be positive.
	for _, r := range results {
		if !r.Lost && r.RTT <= 0 {
			t.Fatalf("probe %d recorded non-positive RTT %v", r.Seq, r.RTT)
		}
	}
}

// TestServerCloseStopsHeldReplies covers shutdown with replies still
// held by a DelayFunc: Close must stop the outstanding timers rather
// than let them fire into a closed socket, and held replies that never
// went out must not count as served.
func TestServerCloseStopsHeldReplies(t *testing.T) {
	const hold = 5 * time.Second
	srv, err := NewServer("127.0.0.1:0", func(time.Time) (time.Duration, bool) { return hold, false })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx) }()

	// Fire a few probes; replies are now parked on timers.
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		p := packet{Type: typeRequest, Seq: uint64(i), ClientSend: time.Now().UnixNano()}
		if _, err := conn.Write(p.marshal(nil)); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the server has parked all five replies.
	deadline := time.Now().Add(2 * time.Second)
	for {
		srv.mu.Lock()
		parked := len(srv.timers)
		srv.mu.Unlock()
		if parked == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d replies parked", parked)
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > hold/2 {
		t.Fatalf("Close blocked %v; held timers were not stopped", d)
	}
	select {
	case <-serveDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	served, _ := srv.Stats()
	if served != 0 {
		t.Errorf("served = %d for replies that never went out", served)
	}
	srv.mu.Lock()
	left := len(srv.timers)
	srv.mu.Unlock()
	if left != 0 {
		t.Errorf("%d timers still tracked after Close", left)
	}
}

// TestServerDelayedServedCount checks the other half of the held-reply
// fix: replies that do go out are counted when the write succeeds.
func TestServerDelayedServedCount(t *testing.T) {
	srv, _ := startServer(t, func(time.Time) (time.Duration, bool) { return 2 * time.Millisecond, false })
	results, err := Run(context.Background(), srv.Addr().String(), ClientConfig{
		Interval: 2 * time.Millisecond,
		Count:    10,
		Timeout:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	received := Summarize(results).Received
	if received == 0 {
		t.Fatal("no replies")
	}
	served, _ := srv.Stats()
	if served < uint64(received) {
		t.Errorf("served = %d < received = %d", served, received)
	}
}
