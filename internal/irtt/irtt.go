// Package irtt implements an isochronous round-trip-time probe over
// UDP, modeled on the iRTT tool the paper used: a client sends
// fixed-size probes on a strict interval (1 packet / 20 ms in the
// study), the server echoes each with its receive timestamp, and the
// client reports per-probe RTTs plus loss.
//
// The wire format is a fixed 33-byte datagram:
//
//	offset size  field
//	0      4     magic "IRTT"
//	4      1     type (1 = request, 2 = reply)
//	5      8     sequence number, big endian
//	13     8     client send time, unix nanos, big endian
//	21     8     server receive time, unix nanos (reply only)
//	29     4     checksum: xor-folded FNV-1a of bytes [0,29)
//
// The checksum rejects corrupted or foreign datagrams rather than
// letting them corrupt the RTT series.
package irtt

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// Wire constants.
const (
	packetSize  = 33
	typeRequest = 1
	typeReply   = 2
)

var magic = [4]byte{'I', 'R', 'T', 'T'}

// ErrBadPacket is returned for datagrams that fail validation.
var ErrBadPacket = errors.New("irtt: malformed packet")

// packet is the decoded wire form.
type packet struct {
	Type       byte
	Seq        uint64
	ClientSend int64
	ServerRecv int64
}

func (p *packet) marshal(buf []byte) []byte {
	if cap(buf) < packetSize {
		buf = make([]byte, packetSize)
	}
	buf = buf[:packetSize]
	copy(buf[0:4], magic[:])
	buf[4] = p.Type
	binary.BigEndian.PutUint64(buf[5:13], p.Seq)
	binary.BigEndian.PutUint64(buf[13:21], uint64(p.ClientSend))
	binary.BigEndian.PutUint64(buf[21:29], uint64(p.ServerRecv))
	binary.BigEndian.PutUint32(buf[29:33], checksum(buf[:29]))
	return buf
}

func parsePacket(b []byte) (packet, error) {
	if len(b) != packetSize {
		return packet{}, fmt.Errorf("%w: %d bytes", ErrBadPacket, len(b))
	}
	if [4]byte(b[0:4]) != magic {
		return packet{}, fmt.Errorf("%w: bad magic", ErrBadPacket)
	}
	if binary.BigEndian.Uint32(b[29:33]) != checksum(b[:29]) {
		return packet{}, fmt.Errorf("%w: bad checksum", ErrBadPacket)
	}
	p := packet{
		Type:       b[4],
		Seq:        binary.BigEndian.Uint64(b[5:13]),
		ClientSend: int64(binary.BigEndian.Uint64(b[13:21])),
		ServerRecv: int64(binary.BigEndian.Uint64(b[21:29])),
	}
	if p.Type != typeRequest && p.Type != typeReply {
		return packet{}, fmt.Errorf("%w: type %d", ErrBadPacket, p.Type)
	}
	return p, nil
}

func checksum(b []byte) uint32 {
	h := fnv.New64a()
	h.Write(b)
	s := h.Sum64()
	return uint32(s) ^ uint32(s>>32)
}

// DelayFunc lets a server inject artificial one-way delay per probe —
// the hook the simulation uses to put the netsim path model under real
// UDP traffic. The function receives the probe's arrival time and
// returns how long to hold the reply. A nil DelayFunc echoes
// immediately. Returning lost=true drops the probe.
type DelayFunc func(arrival time.Time) (delay time.Duration, lost bool)

// Server echoes probes. Zero value is not usable; call NewServer.
type Server struct {
	conn  *net.UDPConn
	delay DelayFunc

	mu      sync.Mutex
	served  uint64
	dropped uint64
	closed  bool
	// timers tracks replies held by a DelayFunc so Close can stop them
	// before they write to a closed socket; held counts the same set
	// for Close to wait on.
	timers map[*time.Timer]struct{}
	held   sync.WaitGroup
}

// NewServer opens a UDP listener on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, delay DelayFunc) (*Server, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("irtt: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("irtt: listen %q: %w", addr, err)
	}
	return &Server{conn: conn, delay: delay, timers: make(map[*time.Timer]struct{})}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Stats returns how many probes were echoed and dropped.
func (s *Server) Stats() (served, dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served, s.dropped
}

// Serve processes probes until ctx is canceled or the connection is
// closed. It always returns a non-nil error (ctx.Err or a read error).
// Replies still held by a DelayFunc when ctx is canceled are stopped,
// not delivered.
func (s *Server) Serve(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		s.Close()
	}()
	buf := make([]byte, 2048)
	out := make([]byte, packetSize)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("irtt: read: %w", err)
		}
		arrival := time.Now()
		p, err := parsePacket(buf[:n])
		if err != nil || p.Type != typeRequest {
			continue // ignore garbage
		}
		var hold time.Duration
		if s.delay != nil {
			var lost bool
			hold, lost = s.delay(arrival)
			if lost {
				s.mu.Lock()
				s.dropped++
				s.mu.Unlock()
				continue
			}
		}
		p.Type = typeReply
		p.ServerRecv = arrival.UnixNano()
		reply := p.marshal(out)
		if hold > 0 {
			s.holdReply(reply, peer, hold)
		} else {
			if _, err := s.conn.WriteToUDP(reply, peer); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				continue // failed echo: not served
			}
			s.mu.Lock()
			s.served++
			s.mu.Unlock()
		}
	}
}

// holdReply schedules a delayed echo without blocking the receive
// loop. The timer is tracked so Close can stop it; served counts only
// when the write actually succeeds.
func (s *Server) holdReply(reply []byte, peer *net.UDPAddr, hold time.Duration) {
	cp := append([]byte(nil), reply...)
	peerCopy := *peer
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.held.Add(1)
	var timer *time.Timer
	timer = time.AfterFunc(hold, func() {
		defer s.held.Done()
		// The registration below holds s.mu, so this lock also
		// guarantees timer is assigned and tracked before we run.
		s.mu.Lock()
		delete(s.timers, timer)
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return
		}
		if _, err := s.conn.WriteToUDP(cp, &peerCopy); err == nil {
			s.mu.Lock()
			s.served++
			s.mu.Unlock()
		}
	})
	s.timers[timer] = struct{}{}
}

// Close stops held replies, waits for in-flight ones, and shuts the
// listener. Safe to call more than once and concurrently with Serve.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for t := range s.timers {
		if t.Stop() {
			s.held.Done()
		}
		delete(s.timers, t)
	}
	s.mu.Unlock()
	// Timers that already fired finish (or see closed) before the
	// socket goes away.
	s.held.Wait()
	return s.conn.Close()
}

// Result is one probe outcome.
type Result struct {
	Seq      uint64
	SendTime time.Time
	RTT      time.Duration
	Lost     bool
}

// ClientConfig controls a probe run.
type ClientConfig struct {
	// Interval between probes. Default 20 ms (the paper's rate).
	Interval time.Duration
	// Count is the number of probes to send. Default 50.
	Count int
	// Timeout after the last send to wait for stragglers. Default
	// 500 ms.
	Timeout time.Duration
}

func (c *ClientConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
	if c.Count <= 0 {
		c.Count = 50
	}
	if c.Timeout <= 0 {
		c.Timeout = 500 * time.Millisecond
	}
}

// Run sends an isochronous probe stream to addr and returns one Result
// per probe in sequence order. Probes with no reply are marked Lost.
func Run(ctx context.Context, addr string, cfg ClientConfig) ([]Result, error) {
	cfg.applyDefaults()
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("irtt: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("irtt: dial %q: %w", addr, err)
	}
	defer conn.Close()

	// results is written by both the sender (marking each probe sent)
	// and the receiver goroutine (matching replies); the sockets give
	// no memory-model edge between the two, so every access goes
	// through resMu.
	var resMu sync.Mutex
	results := make([]Result, cfg.Count)
	done := make(chan struct{})

	// Receiver: match replies to sends by sequence number.
	go func() {
		defer close(done)
		buf := make([]byte, 2048)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			now := time.Now()
			p, err := parsePacket(buf[:n])
			if err != nil || p.Type != typeReply {
				continue
			}
			if p.Seq >= uint64(cfg.Count) {
				continue
			}
			resMu.Lock()
			r := &results[p.Seq]
			if r.SendTime.IsZero() || !r.Lost {
				// Not sent yet (spoofed/ahead reply) or duplicate.
				resMu.Unlock()
				continue
			}
			r.Lost = false
			r.RTT = now.Sub(time.Unix(0, p.ClientSend))
			resMu.Unlock()
		}
	}()

	// Sender: strict cadence from a ticker.
	sendBuf := make([]byte, packetSize)
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	for i := 0; i < cfg.Count; i++ {
		sendTime := time.Now()
		resMu.Lock()
		results[i] = Result{Seq: uint64(i), SendTime: sendTime, Lost: true}
		resMu.Unlock()
		p := packet{Type: typeRequest, Seq: uint64(i), ClientSend: sendTime.UnixNano()}
		if _, err := conn.Write(p.marshal(sendBuf)); err != nil {
			return nil, fmt.Errorf("irtt: send %d: %w", i, err)
		}
		if i == cfg.Count-1 {
			break
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			conn.Close()
			<-done
			return results[:i+1], ctx.Err()
		}
	}

	// Grace period for stragglers.
	select {
	case <-time.After(cfg.Timeout):
	case <-ctx.Done():
	}
	conn.Close()
	<-done
	return results, nil
}

// Summary condenses a result set.
type Summary struct {
	Sent, Received            int
	LossRate                  float64
	MinRTT, MedianRTT, MaxRTT time.Duration
	P95RTT, P99RTT            time.Duration
}

// Summarize computes loss and RTT quantiles. Quantiles interpolate
// linearly between order statistics (stats.Quantile), so the median of
// an even-length series is the midpoint of the central pair.
func Summarize(rs []Result) Summary {
	s := Summary{Sent: len(rs)}
	rtts := make([]float64, 0, len(rs))
	for _, r := range rs {
		if !r.Lost {
			rtts = append(rtts, float64(r.RTT))
		}
	}
	s.Received = len(rtts)
	if s.Sent > 0 {
		s.LossRate = float64(s.Sent-s.Received) / float64(s.Sent)
	}
	if len(rtts) == 0 {
		return s
	}
	sort.Float64s(rtts)
	s.MinRTT = time.Duration(rtts[0])
	s.MedianRTT = time.Duration(stats.Quantile(rtts, 0.5))
	s.P95RTT = time.Duration(stats.Quantile(rtts, 0.95))
	s.P99RTT = time.Duration(stats.Quantile(rtts, 0.99))
	s.MaxRTT = time.Duration(rtts[len(rtts)-1])
	return s
}
