package tle

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// issTLE is the canonical ISS element set used widely in SGP4 test
// suites (epoch 2008-09-20).
const (
	issLine1 = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927"
	issLine2 = "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537"
)

func TestChecksumKnown(t *testing.T) {
	if got := Checksum(issLine1); got != 7 {
		t.Errorf("line1 checksum = %d, want 7", got)
	}
	if got := Checksum(issLine2); got != 7 {
		t.Errorf("line2 checksum = %d, want 7", got)
	}
}

func TestParseISS(t *testing.T) {
	tl, err := Parse(issLine1, issLine2)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tl.CatalogNum != 25544 {
		t.Errorf("catalog = %d", tl.CatalogNum)
	}
	if tl.IntlDesig != "98067A" {
		t.Errorf("intl desig = %q", tl.IntlDesig)
	}
	if math.Abs(tl.InclinationDeg-51.6416) > 1e-9 {
		t.Errorf("inclination = %v", tl.InclinationDeg)
	}
	if math.Abs(tl.RAANDeg-247.4627) > 1e-9 {
		t.Errorf("raan = %v", tl.RAANDeg)
	}
	if math.Abs(tl.Eccentricity-0.0006703) > 1e-12 {
		t.Errorf("ecc = %v", tl.Eccentricity)
	}
	if math.Abs(tl.MeanMotion-15.72125391) > 1e-9 {
		t.Errorf("mean motion = %v", tl.MeanMotion)
	}
	if math.Abs(tl.MeanMotionDot+0.00002182) > 1e-12 {
		t.Errorf("ndot = %v", tl.MeanMotionDot)
	}
	if math.Abs(tl.BStar+0.11606e-4) > 1e-12 {
		t.Errorf("bstar = %v", tl.BStar)
	}
	// Epoch: 2008 day 264.51782528 => Sep 20 2008, ~12:25:40 UTC.
	if tl.Epoch.Year() != 2008 || tl.Epoch.Month() != time.September || tl.Epoch.Day() != 20 {
		t.Errorf("epoch = %v", tl.Epoch)
	}
}

func TestParseChecksumRejected(t *testing.T) {
	bad := issLine1[:68] + "9" // wrong checksum digit
	if _, err := Parse(bad, issLine2); err == nil {
		t.Fatal("expected checksum error")
	}
}

func TestParseShortLine(t *testing.T) {
	if _, err := Parse("1 25544", issLine2); err == nil {
		t.Fatal("expected short line error")
	}
}

func TestParseWrongLineNumbers(t *testing.T) {
	if _, err := Parse(issLine2, issLine2); err == nil {
		t.Fatal("expected line-number error")
	}
	if _, err := Parse(issLine1, issLine1); err == nil {
		t.Fatal("expected line-number error")
	}
}

func TestParseCatalogMismatch(t *testing.T) {
	l2 := "2 25545" + issLine2[7:68]
	l2 = l2[:68] + string(rune('0'+Checksum(l2)))
	if _, err := Parse(issLine1, l2); err == nil {
		t.Fatal("expected catalog mismatch error")
	}
}

func TestParseLinesWithName(t *testing.T) {
	tl, err := ParseLines([]string{"ISS (ZARYA)", issLine1, issLine2})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Name != "ISS (ZARYA)" {
		t.Errorf("name = %q", tl.Name)
	}
}

func TestParseFileMulti(t *testing.T) {
	data := strings.Join([]string{"ISS (ZARYA)", issLine1, issLine2, issLine1, issLine2, ""}, "\n")
	sets, err := ParseFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2", len(sets))
	}
	if sets[0].Name != "ISS (ZARYA)" || sets[1].Name != "" {
		t.Errorf("names = %q, %q", sets[0].Name, sets[1].Name)
	}
}

func TestParseFileTrailingGarbage(t *testing.T) {
	if _, err := ParseFile(issLine1); err == nil {
		t.Fatal("expected trailing-lines error")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig, err := Parse(issLine1, issLine2)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := orig.Format()
	if len(l1) != 69 || len(l2) != 69 {
		t.Fatalf("formatted lengths %d, %d", len(l1), len(l2))
	}
	re, err := Parse(l1, l2)
	if err != nil {
		t.Fatalf("re-parse: %v\nl1=%q\nl2=%q", err, l1, l2)
	}
	if re.CatalogNum != orig.CatalogNum {
		t.Errorf("catalog %d != %d", re.CatalogNum, orig.CatalogNum)
	}
	checks := []struct {
		name string
		a, b float64
		eps  float64
	}{
		{"incl", re.InclinationDeg, orig.InclinationDeg, 1e-4},
		{"raan", re.RAANDeg, orig.RAANDeg, 1e-4},
		{"ecc", re.Eccentricity, orig.Eccentricity, 1e-7},
		{"argp", re.ArgPerigeeDeg, orig.ArgPerigeeDeg, 1e-4},
		{"ma", re.MeanAnomalyDeg, orig.MeanAnomalyDeg, 1e-4},
		{"mm", re.MeanMotion, orig.MeanMotion, 1e-7},
		{"bstar", re.BStar, orig.BStar, 1e-9},
	}
	for _, c := range checks {
		if math.Abs(c.a-c.b) > c.eps {
			t.Errorf("%s: %v != %v", c.name, c.a, c.b)
		}
	}
	if re.Epoch.Sub(orig.Epoch).Abs() > time.Millisecond {
		t.Errorf("epoch drift: %v vs %v", re.Epoch, orig.Epoch)
	}
}

func TestFormatRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		orig := &TLE{
			CatalogNum:     40000 + rng.Intn(9999),
			IntlDesig:      "20001A",
			Epoch:          time.Date(2020+rng.Intn(4), time.Month(1+rng.Intn(12)), 1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60), 0, time.UTC),
			MeanMotionDot:  (rng.Float64() - 0.5) * 1e-4,
			BStar:          (rng.Float64() - 0.5) * 1e-3,
			ElementSetNum:  rng.Intn(1000),
			InclinationDeg: rng.Float64() * 180,
			RAANDeg:        rng.Float64() * 360,
			Eccentricity:   rng.Float64() * 0.01,
			ArgPerigeeDeg:  rng.Float64() * 360,
			MeanAnomalyDeg: rng.Float64() * 360,
			MeanMotion:     14 + rng.Float64()*2,
			RevNumber:      rng.Intn(99999),
		}
		l1, l2 := orig.Format()
		re, err := Parse(l1, l2)
		if err != nil {
			t.Fatalf("iter %d: re-parse: %v\nl1=%q\nl2=%q", i, err, l1, l2)
		}
		if math.Abs(re.MeanMotion-orig.MeanMotion) > 1e-7 {
			t.Fatalf("iter %d: mean motion %v != %v", i, re.MeanMotion, orig.MeanMotion)
		}
		if math.Abs(re.Eccentricity-orig.Eccentricity) > 1e-7 {
			t.Fatalf("iter %d: ecc %v != %v", i, re.Eccentricity, orig.Eccentricity)
		}
		if math.Abs(re.BStar-orig.BStar)/math.Max(math.Abs(orig.BStar), 1e-12) > 1e-4 {
			t.Fatalf("iter %d: bstar %v != %v", i, re.BStar, orig.BStar)
		}
		if re.Epoch.Sub(orig.Epoch).Abs() > 5*time.Millisecond {
			t.Fatalf("iter %d: epoch %v != %v", i, re.Epoch, orig.Epoch)
		}
	}
}

func TestJulianDateKnown(t *testing.T) {
	// J2000.0 epoch: 2000-01-01 12:00 UTC = JD 2451545.0
	jd := JulianDate(time.Date(2000, 1, 1, 12, 0, 0, 0, time.UTC))
	if math.Abs(jd-2451545.0) > 1e-9 {
		t.Errorf("J2000 JD = %v", jd)
	}
	// 1999-12-31 00:00 UTC = JD 2451543.5
	jd = JulianDate(time.Date(1999, 12, 31, 0, 0, 0, 0, time.UTC))
	if math.Abs(jd-2451543.5) > 1e-9 {
		t.Errorf("JD = %v", jd)
	}
}

func TestJulianRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		tm := time.Date(1990+rng.Intn(50), time.Month(1+rng.Intn(12)), 1+rng.Intn(28),
			rng.Intn(24), rng.Intn(60), rng.Intn(60), 0, time.UTC)
		back := TimeFromJulian(JulianDate(tm))
		if back.Sub(tm).Abs() > time.Millisecond {
			t.Fatalf("round trip %v -> %v", tm, back)
		}
	}
}

func TestExpFloatParsing(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{" 00000+0", 0},
		{" 00000-0", 0},
		{" 12345-4", 0.12345e-4},
		{"-12345-4", -0.12345e-4},
		{" 12345+1", 0.12345e1},
		{"-11606-4", -0.11606e-4},
	}
	for _, c := range cases {
		got, err := parseExpFloat(c.in)
		if err != nil {
			t.Errorf("parseExpFloat(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-15 {
			t.Errorf("parseExpFloat(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestExpFloatFormatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		v := (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(10)-7))
		s := formatExpFloat(v)
		if len(s) != 8 {
			t.Fatalf("formatted %q has length %d", s, len(s))
		}
		got, err := parseExpFloat(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if v != 0 && math.Abs(got-v)/math.Abs(v) > 1e-4 {
			t.Fatalf("round trip %v -> %q -> %v", v, s, got)
		}
	}
}

func TestEpochYearWindow(t *testing.T) {
	// yy=57 => 1957; yy=56 => 2056; yy=08 => 2008.
	if y := epochToTime(57, 1).Year(); y != 1957 {
		t.Errorf("yy=57 -> %d", y)
	}
	if y := epochToTime(56, 1).Year(); y != 2056 {
		t.Errorf("yy=56 -> %d", y)
	}
	if y := epochToTime(8, 1).Year(); y != 2008 {
		t.Errorf("yy=08 -> %d", y)
	}
}
