// Package tle parses and formats NORAD two-line element sets.
//
// A TLE encodes the mean orbital elements of an Earth satellite at an
// epoch, in the specific units the SGP4 propagator expects. This
// package implements the fixed-column format including the mod-10 line
// checksum and the compressed exponential notation used for B* and the
// second derivative of mean motion, and converts epochs to time.Time.
//
// The format round-trips: Format(Parse(lines)) reproduces equivalent
// lines, which the tests rely on.
package tle

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// TLE holds the parsed fields of a two-line element set. Angles are in
// degrees, mean motion in revolutions/day, exactly as in the format.
type TLE struct {
	Name       string // optional line 0 (satellite name)
	CatalogNum int    // NORAD catalog number
	ClassClass byte   // classification, usually 'U'
	IntlDesig  string // international designator, e.g. "19074A"
	Epoch      time.Time

	MeanMotionDot  float64 // first derivative of mean motion / 2, rev/day^2
	MeanMotionDDot float64 // second derivative of mean motion / 6, rev/day^3
	BStar          float64 // drag term, 1/earth radii
	ElementSetNum  int

	InclinationDeg float64 // orbital inclination, degrees
	RAANDeg        float64 // right ascension of ascending node, degrees
	Eccentricity   float64 // unitless, 0 <= e < 1
	ArgPerigeeDeg  float64 // argument of perigee, degrees
	MeanAnomalyDeg float64 // mean anomaly at epoch, degrees
	MeanMotion     float64 // revolutions per day
	RevNumber      int     // revolution number at epoch
}

// Checksum computes the TLE mod-10 checksum of the first 68 characters
// of a line: digits count their value, '-' counts 1, everything else 0.
func Checksum(line string) int {
	sum := 0
	n := len(line)
	if n > 68 {
		n = 68
	}
	for i := 0; i < n; i++ {
		c := line[i]
		switch {
		case c >= '0' && c <= '9':
			sum += int(c - '0')
		case c == '-':
			sum++
		}
	}
	return sum % 10
}

// ParseError describes a malformed TLE with the offending line.
type ParseError struct {
	Line int    // 1 or 2
	Col  int    // starting column (1-based), 0 if whole-line
	Msg  string // what was wrong
}

func (e *ParseError) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("tle: line %d col %d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("tle: line %d: %s", e.Line, e.Msg)
}

// Parse decodes a TLE from its two lines. Lines may carry trailing
// whitespace. The checksum of each line is verified.
func Parse(line1, line2 string) (*TLE, error) {
	line1 = strings.TrimRight(line1, " \r\n")
	line2 = strings.TrimRight(line2, " \r\n")
	if len(line1) < 69 {
		return nil, &ParseError{Line: 1, Msg: fmt.Sprintf("too short: %d chars, want 69", len(line1))}
	}
	if len(line2) < 69 {
		return nil, &ParseError{Line: 2, Msg: fmt.Sprintf("too short: %d chars, want 69", len(line2))}
	}
	if line1[0] != '1' {
		return nil, &ParseError{Line: 1, Col: 1, Msg: "line number is not '1'"}
	}
	if line2[0] != '2' {
		return nil, &ParseError{Line: 2, Col: 1, Msg: "line number is not '2'"}
	}
	if want, got := Checksum(line1), int(line1[68]-'0'); want != got {
		return nil, &ParseError{Line: 1, Col: 69, Msg: fmt.Sprintf("checksum mismatch: computed %d, stored %d", want, got)}
	}
	if want, got := Checksum(line2), int(line2[68]-'0'); want != got {
		return nil, &ParseError{Line: 2, Col: 69, Msg: fmt.Sprintf("checksum mismatch: computed %d, stored %d", want, got)}
	}

	t := &TLE{}
	var err error
	if t.CatalogNum, err = parseInt(line1[2:7]); err != nil {
		return nil, &ParseError{Line: 1, Col: 3, Msg: "catalog number: " + err.Error()}
	}
	t.ClassClass = line1[7]
	t.IntlDesig = strings.TrimSpace(line1[9:17])

	epochYear, err := parseInt(line1[18:20])
	if err != nil {
		return nil, &ParseError{Line: 1, Col: 19, Msg: "epoch year: " + err.Error()}
	}
	epochDay, err := parseFloat(line1[20:32])
	if err != nil {
		return nil, &ParseError{Line: 1, Col: 21, Msg: "epoch day: " + err.Error()}
	}
	t.Epoch = epochToTime(epochYear, epochDay)

	if t.MeanMotionDot, err = parseSignedFloat(line1[33:43]); err != nil {
		return nil, &ParseError{Line: 1, Col: 34, Msg: "mean motion dot: " + err.Error()}
	}
	if t.MeanMotionDDot, err = parseExpFloat(line1[44:52]); err != nil {
		return nil, &ParseError{Line: 1, Col: 45, Msg: "mean motion ddot: " + err.Error()}
	}
	if t.BStar, err = parseExpFloat(line1[53:61]); err != nil {
		return nil, &ParseError{Line: 1, Col: 54, Msg: "bstar: " + err.Error()}
	}
	if t.ElementSetNum, err = parseInt(line1[64:68]); err != nil {
		return nil, &ParseError{Line: 1, Col: 65, Msg: "element set number: " + err.Error()}
	}

	cat2, err := parseInt(line2[2:7])
	if err != nil {
		return nil, &ParseError{Line: 2, Col: 3, Msg: "catalog number: " + err.Error()}
	}
	if cat2 != t.CatalogNum {
		return nil, &ParseError{Line: 2, Col: 3, Msg: fmt.Sprintf("catalog number %d does not match line 1 (%d)", cat2, t.CatalogNum)}
	}
	if t.InclinationDeg, err = parseFloat(line2[8:16]); err != nil {
		return nil, &ParseError{Line: 2, Col: 9, Msg: "inclination: " + err.Error()}
	}
	if t.RAANDeg, err = parseFloat(line2[17:25]); err != nil {
		return nil, &ParseError{Line: 2, Col: 18, Msg: "raan: " + err.Error()}
	}
	ecc, err := parseInt(strings.TrimSpace(line2[26:33]))
	if err != nil {
		return nil, &ParseError{Line: 2, Col: 27, Msg: "eccentricity: " + err.Error()}
	}
	t.Eccentricity = float64(ecc) * 1e-7
	if t.ArgPerigeeDeg, err = parseFloat(line2[34:42]); err != nil {
		return nil, &ParseError{Line: 2, Col: 35, Msg: "argument of perigee: " + err.Error()}
	}
	if t.MeanAnomalyDeg, err = parseFloat(line2[43:51]); err != nil {
		return nil, &ParseError{Line: 2, Col: 44, Msg: "mean anomaly: " + err.Error()}
	}
	if t.MeanMotion, err = parseFloat(line2[52:63]); err != nil {
		return nil, &ParseError{Line: 2, Col: 53, Msg: "mean motion: " + err.Error()}
	}
	if t.RevNumber, err = parseInt(strings.TrimSpace(line2[63:68])); err != nil {
		return nil, &ParseError{Line: 2, Col: 64, Msg: "rev number: " + err.Error()}
	}

	if t.MeanMotion <= 0 {
		return nil, &ParseError{Line: 2, Col: 53, Msg: "mean motion must be positive"}
	}
	if t.Eccentricity < 0 || t.Eccentricity >= 1 {
		return nil, &ParseError{Line: 2, Col: 27, Msg: "eccentricity out of [0,1)"}
	}
	return t, nil
}

// ParseLines decodes a TLE from a 2- or 3-line block (optional name
// line first).
func ParseLines(lines []string) (*TLE, error) {
	var cleaned []string
	for _, l := range lines {
		if strings.TrimSpace(l) != "" {
			cleaned = append(cleaned, l)
		}
	}
	switch len(cleaned) {
	case 2:
		return Parse(cleaned[0], cleaned[1])
	case 3:
		t, err := Parse(cleaned[1], cleaned[2])
		if err != nil {
			return nil, err
		}
		t.Name = strings.TrimSpace(cleaned[0])
		return t, nil
	default:
		return nil, fmt.Errorf("tle: want 2 or 3 non-empty lines, got %d", len(cleaned))
	}
}

// ParseFile decodes a concatenation of 3-line (name + two lines) or
// 2-line element sets, as distributed by CelesTrak-style feeds.
func ParseFile(data string) ([]*TLE, error) {
	var out []*TLE
	var pending []string
	lines := strings.Split(data, "\n")
	for _, raw := range lines {
		l := strings.TrimRight(raw, " \r")
		if strings.TrimSpace(l) == "" {
			continue
		}
		pending = append(pending, l)
		if len(l) >= 1 && l[0] == '2' && len(pending) >= 2 {
			t, err := ParseLines(pending)
			if err != nil {
				return out, fmt.Errorf("tle: element set %d: %w", len(out)+1, err)
			}
			out = append(out, t)
			pending = pending[:0]
		}
	}
	if len(pending) != 0 {
		return out, fmt.Errorf("tle: %d trailing lines do not form an element set", len(pending))
	}
	return out, nil
}

// Format renders the TLE as its two 69-character lines with valid
// checksums. The optional name line is not included; see FormatLines.
func (t *TLE) Format() (line1, line2 string) {
	year := t.Epoch.UTC().Year() % 100
	yday := epochDayOfYear(t.Epoch)

	l1 := fmt.Sprintf("1 %05d%c %-8s %02d%012.8f %s %s %s 0 %4d",
		t.CatalogNum, classOrDefault(t.ClassClass), t.IntlDesig,
		year, yday,
		formatSignedFloat(t.MeanMotionDot),
		formatExpFloat(t.MeanMotionDDot),
		formatExpFloat(t.BStar),
		t.ElementSetNum%10000,
	)
	l1 = fixLen(l1, 68)
	l1 += strconv.Itoa(Checksum(l1))

	l2 := fmt.Sprintf("2 %05d %8.4f %8.4f %07d %8.4f %8.4f %11.8f%5d",
		t.CatalogNum, t.InclinationDeg, t.RAANDeg,
		int(math.Round(t.Eccentricity*1e7)),
		t.ArgPerigeeDeg, t.MeanAnomalyDeg, t.MeanMotion, t.RevNumber%100000,
	)
	l2 = fixLen(l2, 68)
	l2 += strconv.Itoa(Checksum(l2))
	return l1, l2
}

// FormatLines renders the TLE as a 3-line block when Name is set, else
// 2 lines.
func (t *TLE) FormatLines() []string {
	l1, l2 := t.Format()
	if t.Name != "" {
		return []string{t.Name, l1, l2}
	}
	return []string{l1, l2}
}

// EpochJulian returns the TLE epoch as a Julian date (UTC).
func (t *TLE) EpochJulian() float64 {
	return JulianDate(t.Epoch)
}

// JulianDate converts a time to a Julian date. Works for the Gregorian
// calendar era relevant here (1957+).
func JulianDate(tm time.Time) float64 {
	tm = tm.UTC()
	y := tm.Year()
	m := int(tm.Month())
	d := tm.Day()
	if m <= 2 {
		y--
		m += 12
	}
	a := y / 100
	b := 2 - a + a/4
	jd0 := math.Floor(365.25*float64(y+4716)) + math.Floor(30.6001*float64(m+1)) + float64(d) + float64(b) - 1524.5
	secs := float64(tm.Hour())*3600 + float64(tm.Minute())*60 + float64(tm.Second()) + float64(tm.Nanosecond())*1e-9
	return jd0 + secs/86400.0
}

// TimeFromJulian converts a Julian date back to a time.Time (UTC).
func TimeFromJulian(jd float64) time.Time {
	// Meeus inverse algorithm.
	z := math.Floor(jd + 0.5)
	f := jd + 0.5 - z
	a := z
	if z >= 2299161 {
		alpha := math.Floor((z - 1867216.25) / 36524.25)
		a = z + 1 + alpha - math.Floor(alpha/4)
	}
	b := a + 1524
	c := math.Floor((b - 122.1) / 365.25)
	d := math.Floor(365.25 * c)
	e := math.Floor((b - d) / 30.6001)
	day := b - d - math.Floor(30.6001*e) + f
	var month int
	if e < 14 {
		month = int(e) - 1
	} else {
		month = int(e) - 13
	}
	var year int
	if month > 2 {
		year = int(c) - 4716
	} else {
		year = int(c) - 4715
	}
	dayInt := int(day)
	frac := day - float64(dayInt)
	nanos := int64(frac * 86400 * 1e9)
	return time.Date(year, time.Month(month), dayInt, 0, 0, 0, 0, time.UTC).
		Add(time.Duration(nanos))
}

func classOrDefault(c byte) byte {
	if c == 0 {
		return 'U'
	}
	return c
}

func fixLen(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	for len(s) < n {
		s += " "
	}
	return s
}

func parseInt(s string) (int, error) {
	return strconv.Atoi(strings.TrimSpace(s))
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

// parseSignedFloat handles the " .00001234" / "-.00001234" style used
// for mean motion dot.
func parseSignedFloat(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	neg := false
	switch s[0] {
	case '-':
		neg = true
		s = s[1:]
	case '+':
		s = s[1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseExpFloat handles the compressed exponent notation used for B*
// and nddot: " 12345-4" means 0.12345e-4, "-12345+1" means -0.12345e1.
func parseExpFloat(s string) (float64, error) {
	s = strings.TrimRight(s, " ")
	s = strings.TrimLeft(s, " ")
	if s == "" || s == "0" || s == "00000-0" || s == "00000+0" {
		return 0, nil
	}
	sign := 1.0
	switch s[0] {
	case '-':
		sign = -1
		s = s[1:]
	case '+':
		s = s[1:]
	}
	if len(s) < 2 {
		return 0, fmt.Errorf("malformed exponent field %q", s)
	}
	expPart := s[len(s)-2:]
	mantPart := s[:len(s)-2]
	expSign := 1
	switch expPart[0] {
	case '-':
		expSign = -1
	case '+':
	default:
		return 0, fmt.Errorf("malformed exponent %q", expPart)
	}
	expDigit := int(expPart[1] - '0')
	if expDigit < 0 || expDigit > 9 {
		return 0, fmt.Errorf("malformed exponent digit %q", expPart)
	}
	mant, err := strconv.ParseFloat(strings.TrimSpace(mantPart), 64)
	if err != nil {
		return 0, err
	}
	mant /= math.Pow(10, float64(len(strings.TrimSpace(mantPart))))
	return sign * mant * math.Pow(10, float64(expSign*expDigit)), nil
}

func formatSignedFloat(v float64) string {
	s := fmt.Sprintf("%.8f", math.Abs(v))
	// ".00001234" with sign slot.
	s = strings.TrimPrefix(s, "0")
	if v < 0 {
		return "-" + s
	}
	return " " + s
}

func formatExpFloat(v float64) string {
	if v == 0 {
		return " 00000+0"
	}
	sign := " "
	if v < 0 {
		sign = "-"
		v = -v
	}
	exp := int(math.Floor(math.Log10(v))) + 1
	mant := v / math.Pow(10, float64(exp))
	digits := int(math.Round(mant * 1e5))
	if digits >= 100000 {
		digits /= 10
		exp++
	}
	expSign := "+"
	if exp < 0 {
		expSign = "-"
		exp = -exp
	}
	if exp > 9 {
		// Out of representable range; saturate.
		exp = 9
	}
	return fmt.Sprintf("%s%05d%s%d", sign, digits, expSign, exp)
}

// epochToTime converts the 2-digit year + fractional day-of-year form.
func epochToTime(yy int, day float64) time.Time {
	year := 2000 + yy
	if yy >= 57 { // TLE convention: 57-99 => 1957-1999
		year = 1900 + yy
	}
	base := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC)
	// Day 1.0 is Jan 1 00:00.
	d := day - 1.0
	return base.Add(time.Duration(d * float64(24*time.Hour)))
}

func epochDayOfYear(t time.Time) float64 {
	t = t.UTC()
	base := time.Date(t.Year(), 1, 1, 0, 0, 0, 0, time.UTC)
	return 1.0 + t.Sub(base).Seconds()/86400.0
}
