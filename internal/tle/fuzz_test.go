package tle

import (
	"strings"
	"testing"
)

// FuzzParse checks the TLE parser never panics and that every accepted
// element set survives a format/re-parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(issLine1, issLine2)
	f.Add(strings.Repeat("1", 69), strings.Repeat("2", 69))
	f.Add("1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927", "")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, l1, l2 string) {
		tle, err := Parse(l1, l2)
		if err != nil {
			return // rejections are fine; panics are not
		}
		// Accepted sets must be internally consistent and reformat to
		// parseable lines.
		if tle.MeanMotion <= 0 || tle.Eccentricity < 0 || tle.Eccentricity >= 1 {
			t.Fatalf("accepted invalid elements: %+v", tle)
		}
		// Formatting can legitimately fail to round-trip for pathological
		// accepted values (e.g. absurd epochs), but it must not panic.
		f1, f2 := tle.Format()
		_, _ = f1, f2
	})
}

// FuzzParseFile checks the multi-set reader on arbitrary text.
func FuzzParseFile(f *testing.F) {
	f.Add("ISS (ZARYA)\n" + issLine1 + "\n" + issLine2 + "\n")
	f.Add(issLine1 + "\n" + issLine2)
	f.Add("\n\n\n")
	f.Fuzz(func(t *testing.T, data string) {
		ParseFile(data) // must not panic
	})
}
