// Package iperf implements the bulk-throughput measurement the study
// ran alongside its RTT probes (iPerf3 pinned to 50% of the upstream
// rate, §3 "Experiment setup: Measurements"): a TCP client streams
// paced data to a server, and the server reports per-interval
// goodput.
//
// Protocol: the client opens a TCP connection, sends one framed JSON
// header describing the test, streams payload bytes, then half-closes.
// The server replies with a framed JSON report. Frames are 4-byte
// big-endian length + JSON, the same convention as dishrpc.
package iperf

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// maxFrame bounds control-frame sizes.
const maxFrame = 1 << 20

// chunkSize is the payload write granularity.
const chunkSize = 8 << 10

// ErrProtocol reports a malformed control exchange.
var ErrProtocol = errors.New("iperf: protocol error")

// Params describes a test, sent by the client.
type Params struct {
	// Duration of the send phase.
	Duration time.Duration `json:"duration_ns"`
	// RateBitsPerSec paces the sender; 0 means unpaced (full speed).
	RateBitsPerSec float64 `json:"rate_bps"`
	// ReportInterval buckets the server's accounting. Default 500 ms.
	ReportInterval time.Duration `json:"report_interval_ns"`
}

func (p *Params) applyDefaults() error {
	if p.Duration <= 0 {
		return fmt.Errorf("iperf: non-positive duration %v", p.Duration)
	}
	if p.RateBitsPerSec < 0 {
		return fmt.Errorf("iperf: negative rate %v", p.RateBitsPerSec)
	}
	if p.ReportInterval <= 0 {
		p.ReportInterval = 500 * time.Millisecond
	}
	return nil
}

// Interval is one accounting bucket of received data.
type Interval struct {
	Start time.Duration `json:"start_ns"` // since first byte
	Bytes int64         `json:"bytes"`
}

// Mbps converts an interval to megabits/second given its length.
func (iv Interval) Mbps(length time.Duration) float64 {
	if length <= 0 {
		return 0
	}
	return float64(iv.Bytes) * 8 / length.Seconds() / 1e6
}

// Report is the server's accounting for one test.
type Report struct {
	TotalBytes     int64         `json:"total_bytes"`
	Elapsed        time.Duration `json:"elapsed_ns"`
	ReportInterval time.Duration `json:"report_interval_ns"`
	Intervals      []Interval    `json:"intervals"`
}

// MeanMbps is the whole-test goodput.
func (r *Report) MeanMbps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TotalBytes) * 8 / r.Elapsed.Seconds() / 1e6
}

func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("iperf: marshal: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("%w: oversize frame", ErrProtocol)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("iperf: write frame: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("iperf: write frame: %w", err)
	}
	return nil
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("%w: frame of %d bytes", ErrProtocol, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("iperf: read frame: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%w: bad json: %v", ErrProtocol, err)
	}
	return nil
}

// Server accepts throughput tests.
type Server struct {
	ln net.Listener
}

// NewServer listens on addr.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("iperf: listen %q: %w", addr, err)
	}
	return &Server{ln: ln}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the listener.
func (s *Server) Close() error { return s.ln.Close() }

// Serve accepts tests until ctx is canceled.
func (s *Server) Serve(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		s.ln.Close()
	}()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("iperf: accept: %w", err)
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	var params Params
	if err := readFrame(conn, &params); err != nil {
		return
	}
	if err := params.applyDefaults(); err != nil {
		return
	}
	// Guard against stuck senders.
	conn.SetReadDeadline(time.Now().Add(params.Duration + 10*time.Second))

	report := Report{ReportInterval: params.ReportInterval}
	buf := make([]byte, 64<<10)
	var start time.Time
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			now := time.Now()
			if start.IsZero() {
				start = now
			}
			since := now.Sub(start)
			idx := int(since / params.ReportInterval)
			for len(report.Intervals) <= idx {
				report.Intervals = append(report.Intervals, Interval{
					Start: time.Duration(len(report.Intervals)) * params.ReportInterval,
				})
			}
			report.Intervals[idx].Bytes += int64(n)
			report.TotalBytes += int64(n)
			report.Elapsed = since
		}
		if err != nil {
			break // EOF = client half-closed; anything else ends the test too
		}
	}
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	writeFrame(conn, &report)
}

// Run executes one test against a server and returns its report.
func Run(ctx context.Context, addr string, params Params) (*Report, error) {
	if err := params.applyDefaults(); err != nil {
		return nil, err
	}
	d := net.Dialer{Timeout: 5 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("iperf: dial %q: %w", addr, err)
	}
	defer conn.Close()
	if err := writeFrame(conn, &params); err != nil {
		return nil, err
	}

	payload := make([]byte, chunkSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	var sent int64
	for {
		elapsed := time.Since(start)
		if elapsed >= params.Duration || ctx.Err() != nil {
			break
		}
		if params.RateBitsPerSec > 0 {
			// Token bucket: how many bytes should have left by now?
			target := int64(params.RateBitsPerSec / 8 * elapsed.Seconds())
			if sent >= target {
				// Ahead of schedule: sleep until the next chunk is due.
				due := float64(sent+chunkSize) * 8 / params.RateBitsPerSec
				sleep := time.Duration(due*float64(time.Second)) - elapsed
				if sleep > 0 {
					select {
					case <-time.After(sleep):
					case <-ctx.Done():
					}
					continue
				}
			}
		}
		conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		n, err := conn.Write(payload)
		sent += int64(n)
		if err != nil {
			return nil, fmt.Errorf("iperf: send: %w", err)
		}
	}
	// Half-close to signal end of data, then collect the report.
	if tc, ok := conn.(*net.TCPConn); ok {
		if err := tc.CloseWrite(); err != nil {
			return nil, fmt.Errorf("iperf: close-write: %w", err)
		}
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var report Report
	if err := readFrame(conn, &report); err != nil {
		return nil, fmt.Errorf("iperf: read report: %w", err)
	}
	return &report, nil
}
