package iperf

import (
	"bytes"
	"context"
	"math"
	"net"
	"testing"
	"time"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go srv.Serve(ctx)
	t.Cleanup(func() { cancel(); srv.Close() })
	return srv
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Params{Duration: time.Second, RateBitsPerSec: 1e6}
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Params
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Duration != in.Duration || out.RateBitsPerSec != in.RateBitsPerSec {
		t.Errorf("round trip %+v -> %+v", in, out)
	}
}

func TestParamsValidation(t *testing.T) {
	p := Params{}
	if err := p.applyDefaults(); err == nil {
		t.Error("zero duration accepted")
	}
	p = Params{Duration: time.Second, RateBitsPerSec: -5}
	if err := p.applyDefaults(); err == nil {
		t.Error("negative rate accepted")
	}
	p = Params{Duration: time.Second}
	if err := p.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if p.ReportInterval != 500*time.Millisecond {
		t.Errorf("default report interval %v", p.ReportInterval)
	}
}

func TestPacedRunHitsTargetRate(t *testing.T) {
	srv := startServer(t)
	const rate = 40e6 // 40 Mbit/s, comfortably below loopback capacity
	report, err := Run(context.Background(), srv.Addr().String(), Params{
		Duration:       1200 * time.Millisecond,
		RateBitsPerSec: rate,
		ReportInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := report.MeanMbps()
	if math.Abs(got-40)/40 > 0.25 {
		t.Errorf("paced run achieved %.1f Mbps, want ~40", got)
	}
	if len(report.Intervals) < 4 {
		t.Errorf("only %d intervals", len(report.Intervals))
	}
	// Interval accounting must sum to the total.
	var sum int64
	for _, iv := range report.Intervals {
		sum += iv.Bytes
	}
	if sum != report.TotalBytes {
		t.Errorf("interval sum %d != total %d", sum, report.TotalBytes)
	}
}

func TestUnpacedRunFasterThanPaced(t *testing.T) {
	srv := startServer(t)
	paced, err := Run(context.Background(), srv.Addr().String(), Params{
		Duration:       300 * time.Millisecond,
		RateBitsPerSec: 10e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	unpaced, err := Run(context.Background(), srv.Addr().String(), Params{
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if unpaced.MeanMbps() <= paced.MeanMbps() {
		t.Errorf("unpaced %.1f Mbps <= paced %.1f Mbps", unpaced.MeanMbps(), paced.MeanMbps())
	}
}

func TestIntervalMbps(t *testing.T) {
	iv := Interval{Bytes: 1_250_000} // 10 Mbit
	if got := iv.Mbps(time.Second); math.Abs(got-10) > 1e-9 {
		t.Errorf("Mbps = %v", got)
	}
	if iv.Mbps(0) != 0 {
		t.Error("zero-length interval should be 0")
	}
}

func TestReportMeanEmpty(t *testing.T) {
	var r Report
	if r.MeanMbps() != 0 {
		t.Error("empty report mean should be 0")
	}
}

func TestRunBadAddress(t *testing.T) {
	if _, err := Run(context.Background(), "127.0.0.1:1", Params{Duration: time.Second}); err == nil {
		t.Error("closed port accepted")
	}
}

func TestRunContextCancel(t *testing.T) {
	srv := startServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	// A long test canceled early must stop sending promptly. The report
	// still arrives (the server sees EOF when we return and close).
	_, err := Run(ctx, srv.Addr().String(), Params{Duration: 10 * time.Second, RateBitsPerSec: 1e6})
	if time.Since(start) > 3*time.Second {
		t.Fatal("cancel did not stop the run")
	}
	_ = err // either a report or a read error is acceptable on cancel
}

func TestServerIgnoresGarbageHeader(t *testing.T) {
	srv := startServer(t)
	// A client that sends a garbage frame gets dropped; the server must
	// keep serving.
	conn, err := netDial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0, 0, 0, 3, '{', '{', '{'})
	conn.Close()

	report, err := Run(context.Background(), srv.Addr().String(), Params{Duration: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalBytes == 0 {
		t.Error("server dead after garbage")
	}
}

func netDial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
