package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDegRadRoundTrip(t *testing.T) {
	for _, deg := range []float64{0, 45, 90, 180, 270, 359.999, -45} {
		if got := Rad2Deg(Deg2Rad(deg)); !almostEqual(got, deg, 1e-12) {
			t.Errorf("round trip %v -> %v", deg, got)
		}
	}
}

func TestWrapDeg360(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {360, 0}, {361, 1}, {-1, 359}, {720.5, 0.5}, {-359, 1},
	}
	for _, c := range cases {
		if got := WrapDeg360(c.in); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("WrapDeg360(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapDeg180(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {180, -180}, {-180, -180}, {190, -170}, {-190, 170}, {90, 90},
	}
	for _, c := range cases {
		if got := WrapDeg180(c.in); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("WrapDeg180(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapDeg360PropertyRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true // skip pathological inputs
		}
		d := WrapDeg360(x)
		return d >= 0 && d < 360
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapRadPropertyRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
		r := WrapRadTwoPi(x)
		p := WrapRadPi(x)
		return r >= 0 && r < 2*math.Pi && p >= -math.Pi && p < math.Pi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngularDistDeg(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0}, {0, 90, 90}, {350, 10, 20}, {10, 350, 20}, {0, 180, 180}, {90, 270, 180},
	}
	for _, c := range cases {
		if got := AngularDistDeg(c.a, c.b); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("AngularDistDeg(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAngularDistSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e9 || math.Abs(b) > 1e9 {
			return true
		}
		return almostEqual(AngularDistDeg(a, b), AngularDistDeg(b, a), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp broken")
	}
}

func TestVec3Basics(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if got := v.Add(w); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, -3, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestVec3Cross(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	z := x.Cross(y)
	if z != (Vec3{0, 0, 1}) {
		t.Errorf("x cross y = %v, want z", z)
	}
	// Anti-commutative.
	if y.Cross(x) != (Vec3{0, 0, -1}) {
		t.Error("cross not anti-commutative")
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		for _, v := range []float64{a, b, c, d, e, g} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		v := Vec3{a, b, c}
		w := Vec3{d, e, g}
		x := v.Cross(w)
		// Cross product is orthogonal to both inputs.
		scale := v.Norm() * w.Norm() * x.Norm()
		if scale == 0 {
			return true
		}
		return math.Abs(x.Dot(v))/scale < 1e-9 && math.Abs(x.Dot(w))/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec3Unit(t *testing.T) {
	v := Vec3{3, 4, 0}
	u := v.Unit()
	if !almostEqual(u.Norm(), 1, 1e-12) {
		t.Errorf("unit norm = %v", u.Norm())
	}
	zero := Vec3{}
	if zero.Unit() != zero {
		t.Error("unit of zero should be zero")
	}
}

func TestAngleBetween(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	if got := x.AngleBetween(y); !almostEqual(got, math.Pi/2, 1e-12) {
		t.Errorf("angle = %v", got)
	}
	if got := x.AngleBetween(x.Scale(5)); !almostEqual(got, 0, 1e-6) {
		t.Errorf("angle with self = %v", got)
	}
	if got := x.AngleBetween(x.Scale(-2)); !almostEqual(got, math.Pi, 1e-6) {
		t.Errorf("angle with negated self = %v", got)
	}
}
