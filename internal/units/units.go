// Package units provides small numeric helpers shared across the
// simulator: degree/radian conversion, angle wrapping, and physical
// constants used by the orbital and link-budget models.
//
// All angles in exported APIs elsewhere in this module are expressed in
// degrees unless a name says otherwise; this package is where the
// radian-facing math lives.
package units

import "math"

// Physical and geodetic constants. Orbital code uses the WGS-72 values
// that the SGP4 reference implementation is defined against; geodetic
// code (terminal positions) uses WGS-84.
const (
	// EarthRadiusKm is the WGS-72 equatorial Earth radius used by SGP4.
	EarthRadiusKm = 6378.135
	// EarthRadiusWGS84Km is the WGS-84 equatorial radius used for
	// geodetic terminal coordinates.
	EarthRadiusWGS84Km = 6378.137
	// EarthFlatteningWGS84 is the WGS-84 flattening factor.
	EarthFlatteningWGS84 = 1.0 / 298.257223563
	// MuEarth is the WGS-72 gravitational parameter, km^3/s^2.
	MuEarth = 398600.8
	// SpeedOfLightKmPerSec is the vacuum speed of light.
	SpeedOfLightKmPerSec = 299792.458
	// MinutesPerDay is the number of minutes in a day.
	MinutesPerDay = 1440.0
	// SecondsPerDay is the number of seconds in a day.
	SecondsPerDay = 86400.0
	// AUKm is one astronomical unit in kilometres.
	AUKm = 149597870.7
	// SunRadiusKm is the solar photospheric radius.
	SunRadiusKm = 696000.0
)

// Deg2Rad converts degrees to radians.
func Deg2Rad(deg float64) float64 { return deg * math.Pi / 180.0 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(rad float64) float64 { return rad * 180.0 / math.Pi }

// WrapDeg360 wraps an angle in degrees into [0, 360).
func WrapDeg360(deg float64) float64 {
	d := math.Mod(deg, 360.0)
	if d < 0 {
		d += 360.0
	}
	return d
}

// WrapDeg180 wraps an angle in degrees into [-180, 180).
func WrapDeg180(deg float64) float64 {
	d := WrapDeg360(deg)
	if d >= 180.0 {
		d -= 360.0
	}
	return d
}

// WrapRadTwoPi wraps an angle in radians into [0, 2π).
func WrapRadTwoPi(rad float64) float64 {
	r := math.Mod(rad, 2*math.Pi)
	if r < 0 {
		r += 2 * math.Pi
	}
	return r
}

// WrapRadPi wraps an angle in radians into [-π, π).
func WrapRadPi(rad float64) float64 {
	r := WrapRadTwoPi(rad)
	if r >= math.Pi {
		r -= 2 * math.Pi
	}
	return r
}

// AngularDistDeg returns the smallest absolute separation between two
// angles in degrees, in [0, 180].
func AngularDistDeg(a, b float64) float64 {
	return math.Abs(WrapDeg180(a - b))
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Vec3 is a 3-vector in kilometres (positions) or km/s (velocities).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1.0 / n)
}

// AngleBetween returns the angle between v and w in radians, in [0, π].
func (v Vec3) AngleBetween(w Vec3) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	c := Clamp(v.Dot(w)/(nv*nw), -1, 1)
	return math.Acos(c)
}
