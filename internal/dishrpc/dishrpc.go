// Package dishrpc implements the networked dish API this reproduction
// polls the way the paper polled starlink-grpc-tools against a real
// terminal: a daemon exposes the dish's status and 123×123 obstruction
// map over a framed JSON protocol on TCP, and a client fetches a
// snapshot every 15 seconds and requests resets every 10 minutes.
//
// Wire format: each message is a 4-byte big-endian length followed by
// a JSON body. Requests carry an id echoed in the response, so a
// client could pipeline (the provided client does not need to).
//
// Methods:
//
//	get_status          -> DishStatus
//	get_obstruction_map -> base64 of the map's compact 1-bit encoding
//	reset               -> clears the map (terminal reboot)
package dishrpc

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obstruction"
)

// MaxFrame bounds accepted message sizes; a 123×123 bitmap is ~1.9 KiB
// so 1 MiB is generous while keeping a malicious peer from ballooning
// memory.
const MaxFrame = 1 << 20

// ErrProtocol reports a malformed frame or message.
var ErrProtocol = errors.New("dishrpc: protocol error")

// ErrPoisoned reports a client whose framed stream can no longer be
// trusted: a previous call failed mid-frame (timeout, disconnect,
// malformed frame), so a late or partial reply could be read as the
// answer to the *next* call. Every subsequent call fails fast with
// this error until Redial establishes a fresh connection.
var ErrPoisoned = errors.New("dishrpc: connection poisoned; reconnect required")

// ErrUnknownMethod reports a call the server's method table does not
// register. It is typed end to end: a handler that wraps it (e.g. with
// UnknownMethod) has the sentinel carried across the wire as a
// structured error kind, so clients can tell protocol skew — an old
// predictd that lacks a call — from a transport failure, which
// surfaces as ErrPoisoned instead. An unknown method does NOT poison
// the connection: the reply frame is well formed and the stream stays
// in sync.
var ErrUnknownMethod = errors.New("dishrpc: unknown method")

// UnknownMethod builds the canonical unknown-method error for a
// handler's default case. errors.Is(err, ErrUnknownMethod) holds on
// both sides of the wire.
func UnknownMethod(method string) error {
	return fmt.Errorf("%w %q", ErrUnknownMethod, method)
}

// errorKindUnknownMethod is the wire tag that survives the string
// flattening of server-side errors.
const errorKindUnknownMethod = "unknown_method"

type request struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

type response struct {
	ID     uint64          `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// ErrorKind carries a machine-readable error class alongside the
	// flattened message, so typed sentinels survive the wire. Old
	// clients ignore the field; old servers never set it.
	ErrorKind string `json:"error_kind,omitempty"`
}

// DishStatus mirrors the subset of dish telemetry the methodology
// uses. Deliberately, it does NOT identify the serving satellite —
// Starlink removed that field, which is why the obstruction-map
// technique exists.
type DishStatus struct {
	ID              string    `json:"id"`
	Hardware        string    `json:"hardware"`
	UptimeSeconds   int64     `json:"uptime_s"`
	SnapshotTime    time.Time `json:"snapshot_time"`
	FractionPainted float64   `json:"fraction_obstruction_map_painted"`
}

// Dish is the device state the daemon serves. Safe for concurrent use.
type Dish struct {
	mu      sync.Mutex
	id      string
	boot    time.Time
	now     func() time.Time
	current *obstruction.Map
}

// NewDish creates a dish. now == nil uses time.Now; the simulator
// passes its own clock.
func NewDish(id string, now func() time.Time) *Dish {
	if now == nil {
		now = time.Now
	}
	return &Dish{id: id, boot: now(), now: now, current: obstruction.New()}
}

// PaintTrack adds a serving satellite's sky-track to the map, as the
// firmware does while connected.
func (d *Dish) PaintTrack(points []obstruction.PolarPoint) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.current.PaintTrack(points)
}

// Reset clears the obstruction map and restarts the uptime counter.
func (d *Dish) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.current.Reset()
	d.boot = d.now()
}

// Snapshot returns a copy of the current map.
func (d *Dish) Snapshot() *obstruction.Map {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.current.Clone()
}

// Status reports telemetry.
func (d *Dish) Status() DishStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	return DishStatus{
		ID:              d.id,
		Hardware:        "rev3_proto2_sim",
		UptimeSeconds:   int64(now.Sub(d.boot).Seconds()),
		SnapshotTime:    now,
		FractionPainted: float64(d.current.Count()) / float64(obstruction.Size*obstruction.Size),
	}
}

// writeFrame sends one length-prefixed JSON message.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dishrpc: marshal: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("dishrpc: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("dishrpc: write body: %w", err)
	}
	return nil
}

// readFrame receives one length-prefixed JSON message into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err // io.EOF propagates cleanly for connection close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("dishrpc: read body: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%w: bad json: %v", ErrProtocol, err)
	}
	return nil
}

// Handler answers one request: it receives the method name and raw
// params and returns the result value (marshalled into the response)
// or an error (sent to the client as a server-side error string, which
// does not poison the connection). Handlers are called from one
// goroutine per connection; shared state must be synchronized.
type Handler func(method string, params json.RawMessage) (any, error)

// Server serves framed requests over TCP — a Dish daemon through
// NewServer, or any Handler (the coordinator/worker control plane)
// through NewHandlerServer.
type Server struct {
	handler Handler
	ln      net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and serves a dish.
func NewServer(addr string, dish *Dish) (*Server, error) {
	if dish == nil {
		return nil, fmt.Errorf("dishrpc: nil dish")
	}
	return NewHandlerServer(addr, dish.dispatch)
}

// NewHandlerServer listens on addr and serves an arbitrary method
// handler over the same length-prefixed framing the dish daemon uses.
func NewHandlerServer(addr string, h Handler) (*Server, error) {
	if h == nil {
		return nil, fmt.Errorf("dishrpc: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dishrpc: listen %q: %w", addr, err)
	}
	return &Server{handler: h, ln: ln, conns: make(map[net.Conn]struct{})}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until ctx is canceled or the listener
// closes. Each connection handles requests sequentially. On shutdown,
// in-flight connections are closed and Serve waits for their handlers
// to drain before returning.
func (s *Server) Serve(ctx context.Context) error {
	// The watcher must die with Serve: tying it only to ctx leaks one
	// goroutine per Serve call that returns on an accept error while the
	// context lives on (a long-running coordinator redials workers many
	// times over one campaign context).
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			s.Close()
		case <-done:
		}
	}()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.closeConns()
			s.wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dishrpc: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// closeConns marks the server closed and disconnects every open
// connection, so handlers stop serving promptly on shutdown.
func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
}

// Close shuts the listener and disconnects open connections. Safe to
// call more than once.
func (s *Server) Close() error {
	s.closeConns()
	return s.ln.Close()
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		var req request
		if err := readFrame(br, &req); err != nil {
			return // disconnect or garbage: drop the connection
		}
		resp := response{ID: req.ID}
		result, err := s.handler(req.Method, req.Params)
		if err != nil {
			resp.Error = err.Error()
			if errors.Is(err, ErrUnknownMethod) {
				resp.ErrorKind = errorKindUnknownMethod
			}
		} else if result != nil {
			body, err := json.Marshal(result)
			if err != nil {
				resp.Error = fmt.Sprintf("marshal result: %v", err)
			} else {
				resp.Result = body
			}
		}
		if err := writeFrame(bw, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// dispatch is the dish daemon's method table, in Handler form.
func (d *Dish) dispatch(method string, _ json.RawMessage) (any, error) {
	switch method {
	case "get_status":
		return d.Status(), nil
	case "get_obstruction_map":
		raw, err := d.Snapshot().MarshalBinary()
		if err != nil {
			return nil, err
		}
		return base64.StdEncoding.EncodeToString(raw), nil
	case "reset":
		d.Reset()
		return "ok", nil
	default:
		return nil, UnknownMethod(method)
	}
}

// DefaultCallTimeout bounds each RPC round trip; a poller on a
// 15-second snapshot cadence cannot afford to hang on a stalled
// daemon.
const DefaultCallTimeout = 10 * time.Second

// Client talks to a framed-RPC server. Not safe for concurrent use;
// open one client per goroutine (like the underlying tools).
type Client struct {
	addr    string
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	next    uint64
	timeout time.Duration
	// broken poisons the client: once any call fails below the protocol
	// (I/O error, timeout, malformed or misnumbered frame), the byte
	// stream may be mid-frame, so a later reply could be paired with the
	// wrong call. Every call fails fast until Redial.
	broken error
}

// Dial connects to a daemon. Calls time out after DefaultCallTimeout;
// adjust with SetCallTimeout.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("dishrpc: dial %q: %w", addr, err)
	}
	return &Client{
		addr:    addr,
		conn:    conn,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
		timeout: DefaultCallTimeout,
	}, nil
}

// SetCallTimeout changes the per-call deadline. d <= 0 disables it.
func (c *Client) SetCallTimeout(d time.Duration) { c.timeout = d }

// Addr returns the address this client dials.
func (c *Client) Addr() string { return c.addr }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Err returns the poison error, nil while the connection is usable.
func (c *Client) Err() error { return c.broken }

// Redial replaces a poisoned (or healthy) connection with a fresh one
// to the same address and clears the poison state. The coordinator's
// retry path calls this between backoff attempts; in-flight state of
// the old connection is abandoned with it.
func (c *Client) Redial() error {
	c.conn.Close()
	conn, err := net.DialTimeout("tcp", c.addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("dishrpc: redial %q: %w", c.addr, err)
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	c.bw = bufio.NewWriter(conn)
	c.broken = nil
	return nil
}

// Call performs one RPC round trip: params (marshalled, may be nil)
// out, result unmarshalled into out (may be nil). A server-side error
// string returns as an error but leaves the connection usable; any
// transport or framing failure poisons the client (see ErrPoisoned).
func (c *Client) Call(method string, params, out any) error {
	if c.broken != nil {
		return fmt.Errorf("%w (after: %v)", ErrPoisoned, c.broken)
	}
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return c.poison(fmt.Errorf("dishrpc: set deadline: %w", err))
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	c.next++
	req := request{ID: c.next, Method: method}
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			// Nothing hit the wire: the stream is still in sync.
			return fmt.Errorf("dishrpc: marshal params: %w", err)
		}
		req.Params = raw
	}
	if err := writeFrame(c.bw, &req); err != nil {
		return c.poison(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.poison(fmt.Errorf("dishrpc: flush: %w", err))
	}
	var resp response
	if err := readFrame(c.br, &resp); err != nil {
		return c.poison(fmt.Errorf("dishrpc: read response: %w", err))
	}
	if resp.ID != req.ID {
		// A reply numbered for another call means the stream is already
		// desynced (e.g. the late answer to a timed-out call).
		return c.poison(fmt.Errorf("%w: response id %d for request %d", ErrProtocol, resp.ID, req.ID))
	}
	if resp.Error != "" {
		if resp.ErrorKind == errorKindUnknownMethod {
			// Reconstruct the sentinel: the server flattened the error to a
			// string, the kind tag tells us which typed error it was.
			return fmt.Errorf("dishrpc: server: %s: %w", resp.Error, ErrUnknownMethod)
		}
		return fmt.Errorf("dishrpc: server: %s", resp.Error)
	}
	if out != nil {
		if err := json.Unmarshal(resp.Result, out); err != nil {
			return fmt.Errorf("%w: bad result: %v", ErrProtocol, err)
		}
	}
	return nil
}

// poison marks the connection unusable and returns err.
func (c *Client) poison(err error) error {
	c.broken = err
	return err
}

func (c *Client) call(method string, out any) error {
	return c.Call(method, nil, out)
}

// Status fetches dish telemetry.
func (c *Client) Status() (DishStatus, error) {
	var st DishStatus
	err := c.call("get_status", &st)
	return st, err
}

// ObstructionMap fetches the current obstruction map snapshot.
func (c *Client) ObstructionMap() (*obstruction.Map, error) {
	var b64 string
	if err := c.call("get_obstruction_map", &b64); err != nil {
		return nil, err
	}
	raw, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad base64: %v", ErrProtocol, err)
	}
	m := obstruction.New()
	if err := m.UnmarshalBinary(raw); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset reboots the dish (clears the obstruction map).
func (c *Client) Reset() error { return c.call("reset", nil) }
