package dishrpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/obstruction"
)

func startServer(t *testing.T, dish *Dish) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", dish)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go srv.Serve(ctx)
	t.Cleanup(func() { cancel(); srv.Close() })
	return srv
}

func track() []obstruction.PolarPoint {
	return []obstruction.PolarPoint{
		{ElevationDeg: 40, AzimuthDeg: 350},
		{ElevationDeg: 65, AzimuthDeg: 20},
		{ElevationDeg: 50, AzimuthDeg: 60},
	}
}

func TestStatusAndMapOverLoopback(t *testing.T) {
	base := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	now := base
	dish := NewDish("dish-iowa", func() time.Time { return now })
	dish.PaintTrack(track())
	srv := startServer(t, dish)

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	now = base.Add(90 * time.Second)
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "dish-iowa" {
		t.Errorf("id = %q", st.ID)
	}
	if st.UptimeSeconds != 90 {
		t.Errorf("uptime = %d", st.UptimeSeconds)
	}
	if st.FractionPainted <= 0 {
		t.Error("nothing painted")
	}

	m, err := c.ObstructionMap()
	if err != nil {
		t.Fatal(err)
	}
	want := obstruction.New()
	want.PaintTrack(track())
	if !m.Equal(want) {
		t.Error("fetched map differs from painted map")
	}
}

func TestResetClearsMapAndUptime(t *testing.T) {
	base := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	now := base
	dish := NewDish("d", func() time.Time { return now })
	dish.PaintTrack(track())
	srv := startServer(t, dish)

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	now = base.Add(10 * time.Minute)
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	m, err := c.ObstructionMap()
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 0 {
		t.Error("map not cleared by reset")
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds != 0 {
		t.Errorf("uptime after reset = %d", st.UptimeSeconds)
	}
}

func TestPollingSequenceXORWorkflow(t *testing.T) {
	// Simulate the paper's polling loop: paint track A, snapshot, paint
	// track B, snapshot, XOR isolates B.
	dish := NewDish("d", nil)
	srv := startServer(t, dish)
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	trackA := track()
	trackB := []obstruction.PolarPoint{
		{ElevationDeg: 30, AzimuthDeg: 180},
		{ElevationDeg: 55, AzimuthDeg: 210},
	}
	dish.PaintTrack(trackA)
	prev, err := c.ObstructionMap()
	if err != nil {
		t.Fatal(err)
	}
	dish.PaintTrack(trackB)
	cur, err := c.ObstructionMap()
	if err != nil {
		t.Fatal(err)
	}
	diff := obstruction.XOR(prev, cur)
	want := obstruction.New()
	want.PaintTrack(trackB)
	if !diff.Equal(want) {
		t.Error("XOR over RPC snapshots did not isolate the new track")
	}
}

func TestUnknownMethod(t *testing.T) {
	dish := NewDish("d", nil)
	srv := startServer(t, dish)
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.call("bogus", nil)
	if err == nil {
		t.Error("unknown method accepted")
	}
	if !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("unknown method error = %v, want errors.Is ErrUnknownMethod", err)
	}
	// Connection must still work afterwards.
	if _, err := c.Status(); err != nil {
		t.Errorf("status after error: %v", err)
	}
}

// TestUnknownMethodTypedAcrossWire pins the protocol-skew contract: an
// unregistered call surfaces as ErrUnknownMethod on the client — across
// the string-flattening wire encoding — while other server-side errors
// and transport failures do not. Clients use the distinction to tell an
// old server (skew) from a dead one (redial).
func TestUnknownMethodTypedAcrossWire(t *testing.T) {
	srv, err := NewHandlerServer("127.0.0.1:0", func(method string, _ json.RawMessage) (any, error) {
		switch method {
		case "ping":
			return "ok", nil
		case "boom":
			return nil, fmt.Errorf("handler exploded")
		default:
			return nil, UnknownMethod(method)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go srv.Serve(ctx)
	t.Cleanup(func() { cancel(); srv.Close() })

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Call("model_info", nil, nil)
	if !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("unregistered call = %v, want ErrUnknownMethod", err)
	}
	if errors.Is(err, ErrPoisoned) {
		t.Errorf("unknown method poisoned the connection: %v", err)
	}
	// The stream stays in sync: the next call on the same connection
	// succeeds.
	if err := c.Call("ping", nil, nil); err != nil {
		t.Fatalf("call after unknown method: %v", err)
	}
	// An ordinary server-side error must NOT read as protocol skew.
	if err := c.Call("boom", nil, nil); err == nil || errors.Is(err, ErrUnknownMethod) {
		t.Errorf("handler error = %v, want non-nil and not ErrUnknownMethod", err)
	}
	// A transport failure is poison, never skew.
	srv.Close()
	err = c.Call("ping", nil, nil)
	if err == nil || errors.Is(err, ErrUnknownMethod) {
		t.Errorf("transport failure = %v, want non-nil and not ErrUnknownMethod", err)
	}
	if err := c.Call("ping", nil, nil); !errors.Is(err, ErrPoisoned) {
		t.Errorf("after transport failure = %v, want ErrPoisoned", err)
	}
}

func TestMultipleClients(t *testing.T) {
	dish := NewDish("d", nil)
	srv := startServer(t, dish)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			c, err := Dial(srv.Addr().String())
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				if _, err := c.Status(); err != nil {
					done <- err
					return
				}
				if _, err := c.ObstructionMap(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	dish := NewDish("d", nil)
	srv := startServer(t, dish)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Claim a 100 MiB frame: the server must drop the connection rather
	// than allocate it.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100<<20)
	conn.Write(hdr[:])
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server answered an oversize frame")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := request{ID: 7, Method: "get_status"}
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out request
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.Method != "get_status" {
		t.Errorf("round trip = %+v", out)
	}
}

func TestReadFrameGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 3)
	buf.Write(hdr[:])
	buf.WriteString("{{{")
	var out request
	if err := readFrame(&buf, &out); err == nil {
		t.Error("garbage json accepted")
	}
}

func TestNewServerNilDish(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", nil); err == nil {
		t.Error("nil dish accepted")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

// TestCallTimeoutOnStalledServer covers the stalled-daemon bugfix: a
// server that accepts but never responds must not hang the poller —
// the call fails once the per-call deadline passes.
func TestCallTimeoutOnStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept, read nothing, answer nothing
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCallTimeout(100 * time.Millisecond)
	start := time.Now()
	_, err = c.Status()
	if err == nil {
		t.Fatal("call against a stalled server succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("error %v is not a timeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("call took %v despite 100ms timeout", d)
	}
}

// TestServeShutdownDisconnectsClients covers the in-flight-connection
// bugfix: after ctx cancel, a connected client must observe a
// disconnect instead of being served indefinitely.
func TestServeShutdownDisconnectsClients(t *testing.T) {
	dish := NewDish("d", nil)
	srv, err := NewServer("127.0.0.1:0", dish)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx) }()

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-serveDone:
		if err != context.Canceled {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	// The connection was closed server-side, so the next call fails.
	c.SetCallTimeout(time.Second)
	if _, err := c.Status(); err == nil {
		t.Error("client still served after server shutdown")
	}
}

// startLateReplyServer answers every request correctly but sleeps for
// delay before replying to the "slow" method — the shape of the desync
// bug: a late reply lands on the wire after the caller has timed out
// and moved on.
func startLateReplyServer(t *testing.T, delay time.Duration) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					var req request
					if err := readFrame(conn, &req); err != nil {
						return
					}
					if req.Method == "slow" {
						time.Sleep(delay)
					}
					resp := response{ID: req.ID, Result: json.RawMessage(`"ok"`)}
					if err := writeFrame(conn, &resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr()
}

// TestClientPoisonedAfterTimeout covers the desync bugfix: after a
// timed-out call the stream may hold that call's late reply, so the
// next call must fail fast with ErrPoisoned instead of reading the
// stale frame as its own answer.
func TestClientPoisonedAfterTimeout(t *testing.T) {
	addr := startLateReplyServer(t, 400*time.Millisecond)
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.SetCallTimeout(50 * time.Millisecond)
	if err := c.Call("slow", nil, nil); err == nil {
		t.Fatal("slow call beat its deadline; raise the server delay")
	}
	if c.Err() == nil {
		t.Fatal("client not poisoned after a timed-out call")
	}

	// Give the late reply time to arrive in the socket buffer — the
	// exact bytes the old client would have misread.
	time.Sleep(500 * time.Millisecond)
	c.SetCallTimeout(2 * time.Second)
	var out string
	err = c.Call("fast", nil, &out)
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("second call after timeout: got %v, want ErrPoisoned", err)
	}

	// Redial restores service on a fresh connection.
	if err := c.Redial(); err != nil {
		t.Fatal(err)
	}
	if c.Err() != nil {
		t.Fatalf("poison not cleared by Redial: %v", c.Err())
	}
	if err := c.Call("fast", nil, &out); err != nil {
		t.Fatalf("call after Redial: %v", err)
	}
	if out != "ok" {
		t.Fatalf("call after Redial returned %q", out)
	}
}

// TestHandlerServerErrorMidStream: a server-side handler error is a
// clean protocol exchange — it must surface as an error without
// poisoning the connection, and later calls on the same stream must
// keep working and stay correctly paired.
func TestHandlerServerErrorMidStream(t *testing.T) {
	type args struct{ A, B int }
	srv, err := NewHandlerServer("127.0.0.1:0", func(method string, params json.RawMessage) (any, error) {
		switch method {
		case "add":
			var a args
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			return a.A + a.B, nil
		case "boom":
			return nil, fmt.Errorf("handler exploded")
		default:
			return nil, fmt.Errorf("unknown method %q", method)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go srv.Serve(ctx)
	t.Cleanup(func() { cancel(); srv.Close() })

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var sum int
	if err := c.Call("add", args{2, 3}, &sum); err != nil || sum != 5 {
		t.Fatalf("add = %d, %v", sum, err)
	}
	if err := c.Call("boom", nil, nil); err == nil {
		t.Fatal("handler error not surfaced")
	}
	if c.Err() != nil {
		t.Fatalf("server-side error poisoned the client: %v", c.Err())
	}
	if err := c.Call("add", args{40, 2}, &sum); err != nil || sum != 42 {
		t.Fatalf("add after handler error = %d, %v (stream desynced?)", sum, err)
	}
}

// TestServeWatcherGoroutineReleased is the regression test for the
// ctx-watcher leak: Serve returning via an accept error (Close) while
// the context stays alive must not strand its watcher goroutine.
func TestServeWatcherGoroutineReleased(t *testing.T) {
	ctx := context.Background() // never cancelled: the leaky case
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		srv, err := NewServer("127.0.0.1:0", NewDish("d", nil))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ctx) }()
		srv.Close()
		if err := <-done; err == nil {
			t.Fatal("Serve returned nil after Close")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 20 Serve cycles",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentClientStress interleaves status/map/reset from many
// clients at once; run under -race it guards the whole server surface
// (dish state, connection tracking, shutdown).
func TestConcurrentClientStress(t *testing.T) {
	dish := NewDish("d", nil)
	srv := startServer(t, dish)
	const clients = 8
	done := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(n int) {
			c, err := Dial(srv.Addr().String())
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for j := 0; j < 25; j++ {
				switch (n + j) % 3 {
				case 0:
					if _, err := c.Status(); err != nil {
						done <- err
						return
					}
				case 1:
					if _, err := c.ObstructionMap(); err != nil {
						done <- err
						return
					}
				default:
					dish.PaintTrack(track())
					if err := c.Reset(); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
