package scheduler

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestSchedulerMetrics checks the allocation counters against the
// controller's own outputs over a few slots.
func TestSchedulerMetrics(t *testing.T) {
	cons := testConstellation(t)
	reg := telemetry.NewRegistry()
	g, err := NewGlobal(Config{Constellation: cons, Terminals: testTerminals(), Seed: 7, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	start := cons.Epoch.Add(time.Hour)
	served, unserved, decisions := 0, 0, 0
	for slot := 0; slot < 5; slot++ {
		for _, a := range g.Allocate(start.Add(time.Duration(slot) * Period)) {
			decisions++
			if a.SatID != 0 {
				served++
			} else {
				unserved++
			}
		}
	}
	s := reg.Snapshot()
	if got := s.Counter("scheduler_allocations_total"); got != int64(served) {
		t.Errorf("allocations = %d, want %d", got, served)
	}
	if got := s.Counter("scheduler_unserved_total"); got != int64(unserved) {
		t.Errorf("unserved = %d, want %d", got, unserved)
	}
	if h := s.Histograms["scheduler_candidates"]; h.Count != uint64(decisions) {
		t.Errorf("candidates histogram count = %d, want %d", h.Count, decisions)
	}
}

// TestSchedulerMetricsNil pins the disabled path: no registry, no
// metrics, no panic.
func TestSchedulerMetricsNil(t *testing.T) {
	if NewMetrics(telemetry.Nop) != nil {
		t.Fatal("NewMetrics(Nop) must return nil")
	}
	cons := testConstellation(t)
	g, err := NewGlobal(Config{Constellation: cons, Terminals: testTerminals(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g.Allocate(cons.Epoch.Add(time.Hour))
}
