package scheduler

import (
	"testing"
	"time"

	"repro/internal/astro"
	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/sgp4"
	"repro/internal/units"
)

// fixedEph propagates to one fixed TEME position at every time —
// synthetic geometry for deterministic-ordering tests.
type fixedEph struct {
	pos   units.Vec3
	epoch time.Time
}

func (f fixedEph) Epoch() time.Time { return f.epoch }
func (f fixedEph) Propagate(float64) (sgp4.State, error) {
	return sgp4.State{Pos: f.pos}, nil
}
func (f fixedEph) PropagateAt(time.Time) (sgp4.State, error) {
	return sgp4.State{Pos: f.pos}, nil
}

// TestAllocateScoreTieBreak is the golden test for the explicit score
// tie-break: satellites with identical scores (identical geometry,
// zero noise) must resolve to the lowest catalog number, regardless of
// the order the constellation lists them in.
func TestAllocateScoreTieBreak(t *testing.T) {
	epoch := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	slot := EpochStart(epoch.Add(time.Hour))
	pos := units.Vec3{X: units.EarthRadiusKm + 550}

	// Both orderings must produce the same winner.
	for _, ids := range [][]int{{44000, 44700}, {44700, 44000}} {
		var sats []*constellation.Satellite
		for _, id := range ids {
			sats = append(sats, &constellation.Satellite{
				ID:         id,
				Name:       "TIE",
				Launch:     epoch,
				Propagator: fixedEph{pos: pos, epoch: epoch},
			})
		}
		cons := &constellation.Constellation{Sats: sats, Epoch: epoch}

		// Place the terminal at the shared sub-satellite point so both
		// satellites sit at the zenith: identical elevation, identical
		// score terms. Zero noise, no GSO/battery/bent-pipe terms.
		ecef, _ := astro.TEMEToECEF(pos, units.Vec3{}, slot)
		sub := astro.ECEFToGeodetic(ecef)
		term := Terminal{VantagePoint: geo.VantagePoint{
			Name:     "tie-term",
			Location: astro.Geodetic{LatDeg: sub.LatDeg, LonDeg: sub.LonDeg},
		}, Priority: 1}

		g, err := NewGlobal(Config{
			Constellation:    cons,
			Terminals:        []Terminal{term},
			Weights:          Weights{Elevation: 1}, // noise, load, charge weights zero
			GSOProtectionDeg: -1,
			DisableBattery:   true,
			GroundStations:   []astro.Geodetic{}, // non-nil empty: bent-pipe off
			Seed:             1,
		})
		if err != nil {
			t.Fatal(err)
		}
		allocs := g.Allocate(slot)
		if len(allocs) != 1 {
			t.Fatalf("got %d allocations, want 1", len(allocs))
		}
		if allocs[0].Candidates != 2 {
			t.Fatalf("candidates = %d, want 2 (order %v)", allocs[0].Candidates, ids)
		}
		if allocs[0].SatID != 44000 {
			t.Fatalf("tie broken to sat %d, want lowest ID 44000 (order %v)", allocs[0].SatID, ids)
		}
	}
}

// TestAllocateIndexedMatchesLinear pins the tentpole determinism
// contract at the scheduler layer: two identically seeded controllers,
// one using the spatial index and one the linear scan, must produce
// identical allocations slot after slot.
func TestAllocateIndexedMatchesLinear(t *testing.T) {
	build := func(disableIndex bool) *Global {
		g, err := NewGlobal(Config{
			Constellation: testConstellation(t),
			Terminals:     testTerminals(),
			Seed:          11,
			DisableIndex:  disableIndex,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	indexed := build(false)
	linear := build(true)
	start := time.Date(2023, 3, 1, 12, 0, 12, 0, time.UTC)
	for slot := 0; slot < 12; slot++ {
		at := start.Add(time.Duration(slot) * Period)
		a := indexed.Allocate(at)
		b := linear.Allocate(at)
		if len(a) != len(b) {
			t.Fatalf("slot %d: %d vs %d allocations", slot, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("slot %d terminal %s: indexed %+v != linear %+v", slot, a[i].Terminal, a[i], b[i])
			}
		}
	}
}
