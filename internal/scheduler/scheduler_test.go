package scheduler

import (
	"math"
	"testing"
	"time"

	"repro/internal/astro"
	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/power"
	"repro/internal/units"
)

func testConstellation(t testing.TB) *constellation.Constellation {
	t.Helper()
	c, err := constellation.New(constellation.Config{
		Shells: []constellation.Shell{
			{Name: "s1", AltitudeKm: 550, InclinationDeg: 53, Planes: 24, SatsPerPlane: 18, PhasingF: 11},
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testTerminals() []Terminal {
	vps := geo.StudyVantagePoints()
	ts := make([]Terminal, len(vps))
	for i, vp := range vps {
		ts[i] = Terminal{VantagePoint: vp, Priority: 1}
	}
	return ts
}

func TestEpochGrid(t *testing.T) {
	cases := []struct {
		in   time.Time
		want time.Time
	}{
		{time.Date(2023, 3, 1, 5, 38, 12, 0, time.UTC), time.Date(2023, 3, 1, 5, 38, 12, 0, time.UTC)},
		{time.Date(2023, 3, 1, 5, 38, 13, 0, time.UTC), time.Date(2023, 3, 1, 5, 38, 12, 0, time.UTC)},
		{time.Date(2023, 3, 1, 5, 38, 26, 0, time.UTC), time.Date(2023, 3, 1, 5, 38, 12, 0, time.UTC)},
		{time.Date(2023, 3, 1, 5, 38, 27, 0, time.UTC), time.Date(2023, 3, 1, 5, 38, 27, 0, time.UTC)},
		{time.Date(2023, 3, 1, 5, 38, 45, 0, time.UTC), time.Date(2023, 3, 1, 5, 38, 42, 0, time.UTC)},
		{time.Date(2023, 3, 1, 5, 38, 58, 0, time.UTC), time.Date(2023, 3, 1, 5, 38, 57, 0, time.UTC)},
		{time.Date(2023, 3, 1, 5, 38, 5, 0, time.UTC), time.Date(2023, 3, 1, 5, 37, 57, 0, time.UTC)},
	}
	for _, c := range cases {
		if got := EpochStart(c.in); !got.Equal(c.want) {
			t.Errorf("EpochStart(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestEpochBoundariesAreAtPaperSeconds(t *testing.T) {
	// Boundaries fall at :12, :27, :42, :57 — the exact seconds the
	// paper observed.
	seen := map[int]bool{}
	start := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 8; i++ {
		b := EpochStart(start.Add(time.Duration(i) * Period))
		seen[b.Second()] = true
	}
	for _, want := range []int{12, 27, 42, 57} {
		if !seen[want] {
			t.Errorf("no epoch boundary at second %d (saw %v)", want, seen)
		}
	}
}

func TestNextEpoch(t *testing.T) {
	at := time.Date(2023, 3, 1, 5, 38, 13, 0, time.UTC)
	want := time.Date(2023, 3, 1, 5, 38, 27, 0, time.UTC)
	if got := NextEpoch(at); !got.Equal(want) {
		t.Errorf("NextEpoch = %v, want %v", got, want)
	}
	// A time exactly on a boundary advances to the next one.
	at = want
	if got := NextEpoch(at); !got.Equal(want.Add(Period)) {
		t.Errorf("NextEpoch(boundary) = %v", got)
	}
}

func TestSlotIndexStableWithinSlot(t *testing.T) {
	a := time.Date(2023, 3, 1, 5, 38, 27, 0, time.UTC)
	for off := time.Duration(0); off < Period; off += time.Second {
		if SlotIndex(a.Add(off)) != SlotIndex(a) {
			t.Fatalf("slot index changed within slot at +%v", off)
		}
	}
	if SlotIndex(a.Add(Period)) == SlotIndex(a) {
		t.Error("slot index did not change across boundary")
	}
}

func TestNewGlobalValidation(t *testing.T) {
	if _, err := NewGlobal(Config{}); err == nil {
		t.Error("expected error for nil constellation")
	}
	if _, err := NewGlobal(Config{Constellation: testConstellation(t)}); err == nil {
		t.Error("expected error for no terminals")
	}
}

func TestAllocateReturnsEligibleChoice(t *testing.T) {
	cons := testConstellation(t)
	g, err := NewGlobal(Config{Constellation: cons, Terminals: testTerminals(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	at := cons.Epoch.Add(30 * time.Minute)
	allocs := g.Allocate(at)
	if len(allocs) != 4 {
		t.Fatalf("got %d allocations", len(allocs))
	}
	for _, a := range allocs {
		if !a.SlotStart.Equal(EpochStart(at)) {
			t.Errorf("%s: slot start %v", a.Terminal, a.SlotStart)
		}
		if a.SatID == 0 {
			continue // sparse test constellation may leave a site empty
		}
		if a.ElevationDeg < 25 {
			t.Errorf("%s: chose satellite below mask: %v", a.Terminal, a.ElevationDeg)
		}
		if cons.ByID(a.SatID) == nil {
			t.Errorf("%s: chose unknown satellite %d", a.Terminal, a.SatID)
		}
	}
}

func TestAllocationsChangeAcrossSlots(t *testing.T) {
	cons := testConstellation(t)
	g, err := NewGlobal(Config{Constellation: cons, Terminals: testTerminals(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	changes := 0
	total := 0
	prev := map[string]int{}
	for i := 0; i < 40; i++ {
		at := cons.Epoch.Add(time.Duration(i) * Period)
		for _, a := range g.Allocate(at) {
			if a.SatID == 0 {
				continue
			}
			if p, ok := prev[a.Terminal]; ok {
				total++
				if p != a.SatID {
					changes++
				}
			}
			prev[a.Terminal] = a.SatID
		}
	}
	if total == 0 {
		t.Skip("test constellation left all sites empty")
	}
	if changes == 0 {
		t.Error("allocation never changed over 40 slots")
	}
}

func TestSchedulerPrefersHighElevation(t *testing.T) {
	cons := testConstellation(t)
	g, err := NewGlobal(Config{Constellation: cons, Terminals: testTerminals(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var chosen, avail []float64
	for i := 0; i < 120; i++ {
		at := cons.Epoch.Add(time.Duration(i) * Period)
		for _, term := range g.Terminals() {
			cands := g.CandidatesAt(term, at)
			if len(cands) < 2 {
				continue
			}
			best := cands[0]
			for _, c := range cands[1:] {
				if c.Score > best.Score {
					best = c
				}
			}
			chosen = append(chosen, best.Look.ElevationDeg)
			for _, c := range cands {
				avail = append(avail, c.Look.ElevationDeg)
			}
		}
	}
	if len(chosen) < 20 {
		t.Skip("not enough multi-candidate slots in the mini constellation")
	}
	if mc, ma := mean(chosen), mean(avail); mc-ma < 5 {
		t.Errorf("chosen mean elevation %v not clearly above available mean %v", mc, ma)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestGSODisabledAblation(t *testing.T) {
	cons := testConstellation(t)
	on, err := NewGlobal(Config{Constellation: cons, Terminals: testTerminals(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewGlobal(Config{Constellation: cons, Terminals: testTerminals(), Seed: 7, GSOProtectionDeg: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Disabling the exclusion can only widen the candidate set.
	for i := 0; i < 20; i++ {
		at := cons.Epoch.Add(time.Duration(i) * Period)
		for _, term := range on.Terminals() {
			nOn := len(on.CandidatesAt(term, at))
			nOff := len(off.CandidatesAt(term, at))
			if nOff < nOn {
				t.Fatalf("slot %d %s: GSO-off candidates %d < GSO-on %d", i, term.Name, nOff, nOn)
			}
		}
	}
}

func TestMaskReducesCandidates(t *testing.T) {
	cons := testConstellation(t)
	terms := testTerminals()
	g, err := NewGlobal(Config{Constellation: cons, Terminals: terms, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Build a copy of the NY terminal without its mask and compare.
	var ny Terminal
	for _, tm := range terms {
		if tm.Name == "New York" {
			ny = tm
		}
	}
	clear := ny
	clear.Mask = nil
	for i := 0; i < 40; i++ {
		at := cons.Epoch.Add(time.Duration(i) * Period)
		masked := len(g.CandidatesAt(ny, at))
		open := len(g.CandidatesAt(clear, at))
		if masked > open {
			t.Fatalf("slot %d: masked candidates %d > unmasked %d", i, masked, open)
		}
	}
}

func TestMACRoundRobinBands(t *testing.T) {
	terms := testTerminals()
	m := NewMAC(0, terms)
	if m.RingSize() != 4 {
		t.Fatalf("ring size = %d", m.RingSize())
	}
	bands := m.Bands("Iowa")
	if len(bands) != 1 {
		t.Fatalf("Iowa bands = %v", bands)
	}
	// Priority 3 gets three slots.
	terms[0].Priority = 3
	m = NewMAC(0, terms)
	if m.RingSize() != 6 {
		t.Fatalf("ring size with priority = %d", m.RingSize())
	}
	if got := len(m.Bands(terms[0].Name)); got != 3 {
		t.Errorf("priority-3 terminal has %d bands", got)
	}
}

func TestMACFrameDelayBounded(t *testing.T) {
	m := NewMAC(2*time.Millisecond, testTerminals())
	span := time.Duration(m.RingSize()) * 2 * time.Millisecond
	base := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 1000; i++ {
		d := m.FrameDelay("Madrid", base.Add(time.Duration(i)*137*time.Microsecond))
		if d < 0 || d >= span {
			t.Fatalf("delay %v out of [0, %v)", d, span)
		}
	}
}

func TestMACFrameDelayPeriodic(t *testing.T) {
	m := NewMAC(2*time.Millisecond, testTerminals())
	span := time.Duration(m.RingSize()) * 2 * time.Millisecond
	base := time.Date(2023, 3, 1, 0, 0, 0, 123456, time.UTC)
	d0 := m.FrameDelay("Iowa", base)
	d1 := m.FrameDelay("Iowa", base.Add(span))
	if d0 != d1 {
		t.Errorf("delay not periodic: %v vs %v", d0, d1)
	}
}

func TestMACUnknownTerminal(t *testing.T) {
	m := NewMAC(0, testTerminals())
	if d := m.FrameDelay("nobody", time.Now()); d != 0 {
		t.Errorf("unknown terminal delay = %v", d)
	}
	if b := m.Bands("nobody"); b != nil {
		t.Errorf("unknown terminal bands = %v", b)
	}
}

func TestAllocateDeterministicWithSeed(t *testing.T) {
	cons := testConstellation(t)
	mk := func() []Allocation {
		g, err := NewGlobal(Config{Constellation: cons, Terminals: testTerminals(), Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		var all []Allocation
		for i := 0; i < 10; i++ {
			all = append(all, g.Allocate(cons.Epoch.Add(time.Duration(i)*Period))...)
		}
		return all
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].SatID != b[i].SatID {
			t.Fatalf("allocation %d differs between identically seeded runs", i)
		}
	}
}

func TestNorthnessComputation(t *testing.T) {
	// Sanity: cos(0) = 1 north, cos(180) = -1 south.
	if math.Cos(units.Deg2Rad(0)) != 1 {
		t.Error("north not 1")
	}
	if math.Cos(units.Deg2Rad(180)) != -1 {
		t.Error("south not -1")
	}
}

func TestBatteryFleetIntegration(t *testing.T) {
	cons := testConstellation(t)
	g, err := NewGlobal(Config{Constellation: cons, Terminals: testTerminals(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if g.Fleet() == nil {
		t.Fatal("battery fleet not built by default")
	}
	before := g.Fleet().MeanSoC()
	for i := 0; i < 20; i++ {
		g.Allocate(cons.Epoch.Add(time.Duration(i) * Period))
	}
	after := g.Fleet().MeanSoC()
	if before == after {
		t.Error("fleet state did not evolve across slots")
	}
	if after < 0.5 || after > 1 {
		t.Errorf("mean SoC drifted to %v", after)
	}

	off, err := NewGlobal(Config{Constellation: cons, Terminals: testTerminals(), Seed: 7, DisableBattery: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Fleet() != nil {
		t.Error("DisableBattery still built a fleet")
	}
}

func TestConstrainedSatellitesExcluded(t *testing.T) {
	cons := testConstellation(t)
	// A brutal battery: eclipsed satellites pin to the floor within a
	// few slots, making them ineligible.
	brutal := power.BatteryConfig{
		CapacityWh:    10,
		SolarW:        4000,
		IdleW:         1200,
		ServeWPerUtil: 2500,
		InitialSoC:    0.16,
		MinSoC:        0.15,
	}
	g, err := NewGlobal(Config{
		Constellation: cons, Terminals: testTerminals(), Seed: 7, Battery: &brutal,
	})
	if err != nil {
		t.Fatal(err)
	}
	picks := 0
	for i := 0; i < 40; i++ {
		at := cons.Epoch.Add(time.Duration(i) * Period)
		for _, a := range g.Allocate(at) {
			if a.SatID == 0 {
				continue
			}
			picks++
			if g.Fleet().Constrained(a.SatID) {
				t.Fatalf("slot %d: constrained satellite %d was chosen", i, a.SatID)
			}
		}
	}
	if picks == 0 {
		t.Skip("no picks under brutal battery in mini constellation")
	}
	if g.Fleet().ConstrainedCount() == 0 {
		t.Error("brutal battery config constrained nothing; test is vacuous")
	}
}

func TestBentPipeConstraint(t *testing.T) {
	cons := testConstellation(t)
	// Disabled (explicit empty): widest candidate sets.
	off, err := NewGlobal(Config{
		Constellation: cons, Terminals: testTerminals(), Seed: 7,
		GroundStations: []astro.Geodetic{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Default study ground stations.
	on, err := NewGlobal(Config{Constellation: cons, Terminals: testTerminals(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A single remote gateway (middle of the Pacific): almost nothing
	// qualifies from the continental sites.
	remote, err := NewGlobal(Config{
		Constellation: cons, Terminals: testTerminals(), Seed: 7,
		GroundStations: []astro.Geodetic{{LatDeg: 0, LonDeg: -160}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sumOff, sumOn, sumRemote := 0, 0, 0
	for i := 0; i < 20; i++ {
		at := cons.Epoch.Add(time.Duration(i) * Period)
		for _, term := range on.Terminals() {
			sumOff += len(off.CandidatesAt(term, at))
			sumOn += len(on.CandidatesAt(term, at))
			sumRemote += len(remote.CandidatesAt(term, at))
		}
	}
	if sumOn > sumOff {
		t.Errorf("gateway constraint widened candidates: %d > %d", sumOn, sumOff)
	}
	if sumRemote >= sumOn && sumOn > 0 {
		t.Errorf("remote-gateway candidates %d not below study-gateway %d", sumRemote, sumOn)
	}
	if sumRemote > sumOff/4 {
		t.Errorf("pacific gateway left %d of %d candidates; constraint looks inert", sumRemote, sumOff)
	}
}
