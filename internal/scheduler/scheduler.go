// Package scheduler implements the ground-truth traffic controllers
// this reproduction studies from the outside: the global controller
// that re-allocates satellites to user terminals every 15 seconds, and
// the on-satellite medium-access-control (MAC) scheduler that hands
// radio frames to the terminals attached to a satellite.
//
// The global controller follows the structure SpaceX's FCC filings
// describe — a periodic, globally synchronized allocation considering
// geometry, power, and load — with the specific preferences the paper
// infers in §5: high angle of elevation, the GSO exclusion zone,
// launch recency, and sunlit state. The measurement and inference
// pipeline in internal/core treats this package as a black box: it
// never reads the weights, only the externally observable allocations.
package scheduler

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/astro"
	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/power"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Epoch grid. Allocations change every 15 s at fixed offsets past the
// minute (:12, :27, :42, :57), which is exactly the signature the
// paper's Figure 2 shows.
const (
	// Period is the global reallocation interval.
	Period = 15 * time.Second
	// EpochOffset is the phase of the allocation grid within a minute.
	EpochOffset = 12 * time.Second
)

// EpochStart returns the start of the 15-second allocation slot
// containing t.
func EpochStart(t time.Time) time.Time {
	t = t.UTC()
	base := t.Truncate(time.Minute).Add(EpochOffset - time.Minute)
	// base is :12 of the previous minute; advance in 15 s steps.
	elapsed := t.Sub(base)
	slots := elapsed / Period
	return base.Add(slots * Period)
}

// NextEpoch returns the first slot boundary strictly after t.
func NextEpoch(t time.Time) time.Time {
	return EpochStart(t).Add(Period)
}

// SlotIndex numbers a slot by its start time (seconds since Unix epoch
// / 15); useful as a map key.
func SlotIndex(t time.Time) int64 {
	return EpochStart(t).Unix() / int64(Period/time.Second)
}

// Terminal is a scheduled user terminal.
type Terminal struct {
	geo.VantagePoint
	// Priority weights MAC frame allocation (1 = standard user).
	Priority int
}

// Allocation is one terminal's assignment for one 15-second slot.
type Allocation struct {
	Terminal  string
	SlotStart time.Time
	SatID     int // 0 when no satellite was eligible
	// Observables of the chosen satellite at slot start.
	ElevationDeg float64
	AzimuthDeg   float64
	RangeKm      float64
	Sunlit       bool
	LaunchDate   time.Time
	// Candidates is the number of eligible satellites considered.
	Candidates int
}

// Weights are the global controller's scoring preferences. The
// defaults produce the qualitative behaviour the paper measured; the
// inference pipeline must recover these tendencies without reading
// them.
type Weights struct {
	Elevation float64 // reward per normalized elevation (0 at 25 deg mask, 1 at zenith)
	// GSOClearance rewards angular separation from the geostationary
	// belt (normalized by 90 deg). At latitudes above ~40N the belt
	// sits in the southern sky, so this term produces the northern
	// azimuth skew the paper measured — and mirrors it for southern
	// terminals, per the paper's §8 generalization argument.
	GSOClearance float64
	Recency      float64 // reward per normalized launch recency (0 oldest, 1 newest)
	Sunlit       float64 // additive reward when the satellite is in sunlight
	Load         float64 // penalty per normalized background load (0..1)
	// Charge penalizes depleted batteries: the paper's §5.3 rationale
	// ("dark satellites have limited battery"). Power-constrained
	// satellites (at the protection floor) are excluded outright.
	Charge   float64
	NoiseStd float64 // std-dev of the unobservable score noise
}

// DefaultWeights yields scheduler behaviour matching the paper's
// measured preferences (§5): elevation dominates, the north bias and
// sunlit preference are strong, launch recency is a mild tiebreaker,
// and the hidden load term bounds how predictable the choice is from
// public data alone.
func DefaultWeights() Weights {
	return Weights{
		Elevation:    3.0,
		GSOClearance: 1.6,
		Recency:      0.35,
		Sunlit:       2.8,
		Load:         1.0,
		Charge:       0.6,
		NoiseStd:     0.35,
	}
}

// Config assembles a Global controller.
type Config struct {
	Constellation *constellation.Constellation
	Terminals     []Terminal
	Weights       Weights // zero value => DefaultWeights
	// MinElevationDeg is the hardware visibility mask. Default 25.
	MinElevationDeg float64
	// GSOProtectionDeg is the exclusion half-angle. Default
	// geo.DefaultGSOProtectionDeg. Negative disables the exclusion
	// (ablation).
	GSOProtectionDeg float64
	// Battery overrides the satellite energy model; nil uses
	// power.DefaultBatteryConfig. DisableBattery removes the energy
	// model entirely (ablation).
	Battery        *power.BatteryConfig
	DisableBattery bool
	// GroundStations are the gateway sites for the bent-pipe
	// constraint: a satellite can serve a terminal only while it also
	// sees a ground station above GSMinElevationDeg. Nil uses the
	// study PoPs' co-located ground stations; an explicit empty,
	// non-nil slice disables the constraint (ablation).
	GroundStations []astro.Geodetic
	// GSMinElevationDeg is the gateway visibility mask. Default 25.
	GSMinElevationDeg float64
	// Seed drives load evolution and score noise.
	Seed int64
	// Telemetry, when non-nil, receives allocation counters (see
	// Metrics). Observational only; allocations are unaffected.
	Telemetry *telemetry.Registry
	// Snapshots shares propagated snapshots (and their spatial indexes)
	// with other consumers of the same constellation — pass the campaign
	// engine's cache so each slot propagates once globally. Nil creates
	// a private cache.
	Snapshots *constellation.SnapshotCache
	// DisableIndex forces the linear visibility scan instead of the
	// spatial index (ablation / equivalence testing). Results are
	// identical either way; only the cost changes.
	DisableIndex bool
}

// Global is the ground-truth global controller.
type Global struct {
	cons    *constellation.Constellation
	terms   []Terminal
	w       Weights
	minElev float64
	gso     map[string]*geo.GSOExclusion // per terminal
	noGSO   bool
	rng     *rand.Rand
	snaps   *constellation.SnapshotCache
	noIndex bool

	// load is hidden per-satellite background utilization in [0,1],
	// re-drawn smoothly each slot. It is intentionally unobservable to
	// the inference pipeline (the paper §6 "Limitations").
	load     map[int]float64
	loadIDs  []int // sorted, for deterministic RNG consumption
	loadSlot int64

	// fleet is the hidden satellite energy state (nil when the battery
	// model is disabled).
	fleet *power.Fleet

	// Bent-pipe constraint state.
	groundStations []astro.Geodetic
	gsMinElev      float64
	gsVisible      map[int]bool // per-slot cache
	gsSlot         int64

	// launch window bounds for recency normalization.
	oldest, newest time.Time

	// Allocate-only scratch for the per-terminal candidate sweep.
	// Allocate is serial by contract (stateful load walk / RNG), so one
	// buffer pair suffices; CandidatesAt must NOT use it — its result
	// escapes to the caller.
	fovScratch  []constellation.Visible
	candScratch []Candidate

	// metrics is nil when telemetry is disabled.
	metrics *Metrics
}

// NewGlobal builds the controller.
func NewGlobal(cfg Config) (*Global, error) {
	if cfg.Constellation == nil {
		return nil, fmt.Errorf("scheduler: nil constellation")
	}
	if len(cfg.Terminals) == 0 {
		return nil, fmt.Errorf("scheduler: no terminals")
	}
	w := cfg.Weights
	if w == (Weights{}) {
		w = DefaultWeights()
	}
	minElev := cfg.MinElevationDeg
	if minElev == 0 {
		minElev = 25
	}
	g := &Global{
		cons:    cfg.Constellation,
		terms:   append([]Terminal(nil), cfg.Terminals...),
		w:       w,
		minElev: minElev,
		gso:     make(map[string]*geo.GSOExclusion, len(cfg.Terminals)),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		load:    make(map[int]float64, cfg.Constellation.Len()),
		metrics: NewMetrics(cfg.Telemetry),
		snaps:   cfg.Snapshots,
		noIndex: cfg.DisableIndex,
	}
	if g.snaps == nil {
		g.snaps = constellation.NewSnapshotCache(0, cfg.Telemetry)
	}
	switch {
	case cfg.GSOProtectionDeg < 0:
		g.noGSO = true
	default:
		for _, t := range cfg.Terminals {
			g.gso[t.Name] = geo.NewGSOExclusion(t.Location, cfg.GSOProtectionDeg)
		}
	}
	for _, s := range cfg.Constellation.Sats {
		g.load[s.ID] = g.rng.Float64() * 0.5
		g.loadIDs = append(g.loadIDs, s.ID)
		if s.Launch.Before(g.oldest) || g.oldest.IsZero() {
			g.oldest = s.Launch
		}
		if s.Launch.After(g.newest) {
			g.newest = s.Launch
		}
	}
	sort.Ints(g.loadIDs)
	if !cfg.DisableBattery {
		bcfg := power.DefaultBatteryConfig()
		if cfg.Battery != nil {
			bcfg = *cfg.Battery
		}
		fleet, err := power.NewFleet(g.loadIDs, bcfg)
		if err != nil {
			return nil, fmt.Errorf("scheduler: battery fleet: %w", err)
		}
		g.fleet = fleet
	}
	g.loadSlot = -1
	g.gsSlot = -1
	if cfg.GroundStations == nil {
		for _, p := range geo.StudyPoPs() {
			g.groundStations = append(g.groundStations, p.Location)
		}
	} else {
		g.groundStations = append(g.groundStations, cfg.GroundStations...)
	}
	g.gsMinElev = cfg.GSMinElevationDeg
	if g.gsMinElev == 0 {
		g.gsMinElev = 25
	}
	return g, nil
}

// Terminals returns the scheduled terminals.
func (g *Global) Terminals() []Terminal { return g.terms }

// stepLoad advances the hidden load random walk to the given slot.
// Loads evolve smoothly so consecutive slots are correlated, like real
// utilization.
func (g *Global) stepLoad(slot int64) {
	if slot == g.loadSlot {
		return
	}
	steps := slot - g.loadSlot
	if g.loadSlot < 0 || steps < 0 || steps > 240 {
		steps = 1 // (re)initialize with a single step
	}
	for i := int64(0); i < steps; i++ {
		for _, id := range g.loadIDs {
			v := g.load[id] + g.rng.NormFloat64()*0.05
			g.load[id] = units.Clamp(v, 0, 1)
		}
	}
	g.loadSlot = slot
}

// Candidate is one eligible satellite with its observables and the
// score the controller assigned. Scores are exposed for tests and
// ablations; the inference pipeline must not use them.
type Candidate struct {
	Sat    *constellation.Satellite
	Look   struct{ ElevationDeg, AzimuthDeg, RangeKm float64 }
	Sunlit bool
	Score  float64
}

// Allocate computes every terminal's assignment for the slot
// containing t. Results are deterministic given the seed and call
// sequence: callers should invoke Allocate once per slot in order
// (the load walk advances per slot).
func (g *Global) Allocate(t time.Time) []Allocation {
	slotStart := EpochStart(t)
	advanced := SlotIndex(t) != g.loadSlot
	g.stepLoad(SlotIndex(t))
	shared := g.snaps.Acquire(g.cons, slotStart)
	defer shared.Release()
	snap := shared.States
	if g.fleet != nil && advanced {
		sunlit := make(map[int]bool, len(snap))
		for _, st := range snap {
			sunlit[st.Sat.ID] = st.Sunlit
		}
		g.fleet.Step(Period, sunlit, g.load)
	}
	g.refreshGSVisibility(SlotIndex(t), shared)

	out := make([]Allocation, 0, len(g.terms))
	for _, term := range g.terms {
		var cands []Candidate
		g.fovScratch, cands = g.appendCandidates(g.fovScratch, g.candScratch[:0], term, shared)
		g.candScratch = cands
		alloc := Allocation{Terminal: term.Name, SlotStart: slotStart, Candidates: len(cands)}
		g.metrics.observe(len(cands), len(cands) > 0)
		if len(cands) > 0 {
			best := cands[0]
			for _, c := range cands[1:] {
				// Explicit tie-break: lowest satellite ID wins, so the
				// pick is a total order independent of enumeration order.
				if c.Score > best.Score ||
					(c.Score == best.Score && c.Sat.ID < best.Sat.ID) {
					best = c
				}
			}
			alloc.SatID = best.Sat.ID
			alloc.ElevationDeg = best.Look.ElevationDeg
			alloc.AzimuthDeg = best.Look.AzimuthDeg
			alloc.RangeKm = best.Look.RangeKm
			alloc.Sunlit = best.Sunlit
			alloc.LaunchDate = best.Sat.Launch
		}
		out = append(out, alloc)
	}
	return out
}

// refreshGSVisibility recomputes which satellites currently see a
// ground station (bent-pipe eligibility), once per slot.
func (g *Global) refreshGSVisibility(slot int64, shared *constellation.SharedSnapshot) {
	if slot == g.gsSlot {
		return
	}
	g.gsSlot = slot
	if len(g.groundStations) == 0 {
		g.gsVisible = nil // constraint disabled
		return
	}
	snap := shared.States
	g.gsVisible = make(map[int]bool, len(snap))
	if !g.noIndex {
		// Set semantics make per-gateway index queries equivalent to the
		// satellite-outer scan: a satellite is marked iff some gateway
		// sees it above the mask.
		ix := shared.Index()
		for _, gs := range g.groundStations {
			ix.MarkVisibleIDs(gs, g.gsMinElev, g.gsVisible)
		}
		return
	}
	observers := make([]astro.Observer, len(g.groundStations))
	for i, gs := range g.groundStations {
		observers[i] = astro.NewObserver(gs)
	}
	for _, st := range snap {
		for i := range observers {
			if observers[i].Observe(st.ECEF).ElevationDeg >= g.gsMinElev {
				g.gsVisible[st.Sat.ID] = true
				break
			}
		}
	}
}

// appendCandidates computes the eligible, scored satellites for one
// terminal, appending into cands and sweeping the field of view
// through fovBuf (both may be nil). It returns the (possibly regrown)
// fov buffer for the caller to retain alongside the candidate slice.
// The eligibility walk and RNG consumption order are identical
// whatever buffers are passed, so scores are bit-identical.
func (g *Global) appendCandidates(fovBuf []constellation.Visible, cands []Candidate,
	term Terminal, shared *constellation.SharedSnapshot) ([]constellation.Visible, []Candidate) {
	var fov []constellation.Visible
	if g.noIndex {
		fov = constellation.AppendObserveFrom(fovBuf[:0], term.Location, shared.States, g.minElev)
	} else {
		fov = shared.Index().AppendObserveFrom(fovBuf[:0], term.Location, g.minElev)
	}
	recencyDen := g.newest.Sub(g.oldest).Hours()
	if recencyDen <= 0 {
		recencyDen = 1
	}
	for _, v := range fov {
		if g.gsVisible != nil && !g.gsVisible[v.Sat.ID] {
			continue // bent-pipe: no gateway in view
		}
		if term.Mask.Blocked(v.Look.AzimuthDeg, v.Look.ElevationDeg) {
			continue
		}
		if !g.noGSO && g.gso[term.Name].Excluded(v.Look.AzimuthDeg, v.Look.ElevationDeg) {
			continue
		}
		c := Candidate{Sat: v.Sat, Sunlit: v.Sunlit}
		c.Look.ElevationDeg = v.Look.ElevationDeg
		c.Look.AzimuthDeg = v.Look.AzimuthDeg
		c.Look.RangeKm = v.Look.RangeKm

		elevNorm := (v.Look.ElevationDeg - g.minElev) / (90 - g.minElev)
		// Interference margin from the GSO belt. For >40N terminals the
		// belt is due south, so clearance grows toward the north — the
		// mechanism behind the paper's Figure 5 skew.
		clearance := 0.0
		if !g.noGSO {
			sep := g.gso[term.Name].MinSeparationDeg(v.Look.AzimuthDeg, v.Look.ElevationDeg)
			if !math.IsInf(sep, 1) {
				clearance = units.Clamp(sep/90, 0, 1)
			}
		}
		recency := v.Sat.Launch.Sub(g.oldest).Hours() / recencyDen
		sunlit := 0.0
		if v.Sunlit {
			sunlit = 1
		}
		if g.fleet != nil && g.fleet.Constrained(v.Sat.ID) {
			continue // battery at the protection floor: ineligible
		}
		charge := 1.0
		if g.fleet != nil {
			charge = g.fleet.SoC(v.Sat.ID)
		}
		c.Score = g.w.Elevation*elevNorm +
			g.w.GSOClearance*clearance +
			g.w.Recency*recency +
			g.w.Sunlit*sunlit -
			g.w.Load*g.load[v.Sat.ID] -
			g.w.Charge*(1-charge) +
			g.rng.NormFloat64()*g.w.NoiseStd
		cands = append(cands, c)
	}
	return fov, cands
}

// CandidatesAt exposes the scored candidate set for ablation tests.
// The returned slice is freshly allocated (it escapes to the caller),
// never the Allocate scratch.
func (g *Global) CandidatesAt(term Terminal, t time.Time) []Candidate {
	g.stepLoad(SlotIndex(t))
	shared := g.snaps.Acquire(g.cons, EpochStart(t))
	defer shared.Release()
	g.refreshGSVisibility(SlotIndex(t), shared)
	_, cands := g.appendCandidates(nil, nil, term, shared)
	return cands
}

// MAC is the on-satellite medium access control scheduler: terminals
// attached to a satellite receive radio frames round-robin, weighted
// by priority. The visible artifact — which the paper's Figure 2
// shows as parallel RTT bands a few milliseconds apart — is that a
// packet waits for its terminal's next frame, so queueing delay
// cycles deterministically through the frame ring.
type MAC struct {
	frame    time.Duration // one radio frame
	ring     []string      // terminal name per frame slot
	slotOf   map[string][]int
	ringSpan time.Duration
}

// DefaultFrameDuration mirrors Starlink's published ~1.33 ms frame.
const DefaultFrameDuration = 4 * time.Millisecond / 3

// NewMAC builds the frame ring for a satellite's attached terminals.
// A terminal with priority p receives p slots per cycle. Frame <= 0
// selects DefaultFrameDuration.
func NewMAC(frame time.Duration, terminals []Terminal) *MAC {
	if frame <= 0 {
		frame = DefaultFrameDuration
	}
	m := &MAC{frame: frame, slotOf: make(map[string][]int)}
	// Sort by name for deterministic slot assignment.
	ts := append([]Terminal(nil), terminals...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Name < ts[j].Name })
	for _, t := range ts {
		p := t.Priority
		if p <= 0 {
			p = 1
		}
		for i := 0; i < p; i++ {
			m.slotOf[t.Name] = append(m.slotOf[t.Name], len(m.ring))
			m.ring = append(m.ring, t.Name)
		}
	}
	m.ringSpan = time.Duration(len(m.ring)) * frame
	return m
}

// FrameDelay returns how long a packet arriving at the satellite at
// time t waits until the owning terminal's next frame. The satellite
// cycles through the ring continuously.
func (m *MAC) FrameDelay(terminal string, t time.Time) time.Duration {
	slots := m.slotOf[terminal]
	if len(slots) == 0 || m.ringSpan == 0 {
		return 0
	}
	pos := time.Duration(t.UnixNano()) % m.ringSpan
	best := m.ringSpan
	for _, s := range slots {
		slotStart := time.Duration(s) * m.frame
		wait := slotStart - pos
		if wait < 0 {
			wait += m.ringSpan
		}
		if wait < best {
			best = wait
		}
	}
	return best
}

// RingSize returns the number of frame slots per cycle.
func (m *MAC) RingSize() int { return len(m.ring) }

// Bands returns the set of distinct frame-delay offsets (in
// milliseconds) a terminal can observe — the parallel latency bands of
// Figure 2.
func (m *MAC) Bands(terminal string) []float64 {
	slots := m.slotOf[terminal]
	if len(slots) == 0 {
		return nil
	}
	// A packet arriving uniformly at random waits anywhere in
	// [0, ringSpan); sampled at a fixed probing cadence the delays
	// cluster at multiples of the frame duration up to the gap between
	// owned slots. Report the per-slot offsets.
	out := make([]float64, 0, len(slots))
	for _, s := range slots {
		out = append(out, float64(time.Duration(s)*m.frame)/float64(time.Millisecond))
	}
	return out
}

// Fleet exposes the satellite energy model for telemetry and tests
// (nil when disabled). The inference pipeline must not read it — like
// load, battery state is unobservable from the ground.
func (g *Global) Fleet() *power.Fleet { return g.fleet }
