package scheduler

import "repro/internal/telemetry"

// Metrics is the ground-truth controller's telemetry bundle. It
// observes only what the controller already computes — allocations
// made, terminal-slots left unserved, and the eligible-candidate count
// per decision — never the hidden load or battery state, so exposing
// it cannot leak unobservables into the inference pipeline.
type Metrics struct {
	Allocations *telemetry.Counter
	Unserved    *telemetry.Counter
	Candidates  *telemetry.Histogram
}

// candidateBuckets spans the paper's densities: a few satellites in
// view at small scale, ~40 at the full constellation.
var candidateBuckets = []float64{0, 1, 2, 5, 10, 20, 40, 80}

// NewMetrics registers the scheduler metric families. Returns nil on a
// nil registry (telemetry disabled).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Allocations: reg.Counter("scheduler_allocations_total", "terminal-slots allocated a satellite"),
		Unserved:    reg.Counter("scheduler_unserved_total", "terminal-slots with no eligible satellite"),
		Candidates:  reg.Histogram("scheduler_candidates", "eligible satellites per allocation decision", candidateBuckets),
	}
}

// observe records one allocation decision.
func (m *Metrics) observe(candidates int, served bool) {
	if m == nil {
		return
	}
	m.Candidates.Observe(float64(candidates))
	if served {
		m.Allocations.Inc()
	} else {
		m.Unserved.Inc()
	}
}
