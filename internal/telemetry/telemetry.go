// Package telemetry is the reproduction's observability subsystem: a
// metrics registry whose record paths are lock-free and allocation-free
// (atomic counters, gauges, and fixed-bucket histograms), labeled
// metric families resolved to plain handles once at wiring time, a
// bounded decision-trace ring for §5-style offline audits of the
// scheduler-observation pipeline, and text exposition in both
// Prometheus and expvar-JSON formats behind an opt-in HTTP endpoint.
//
// The paper's whole method is watching an opaque scheduler from the
// outside; this package makes our own reproduction watchable from the
// inside. Every instrumented layer (campaign engine, streaming
// pipeline, DTW matcher, learning engine, ground-truth scheduler)
// accepts nil handles: a nil *Registry hands out nil metrics, and every
// record method is a nil-safe no-op, so the uninstrumented path costs
// one predictable branch — the telemetry.Nop contract, held by
// BenchmarkCampaignParallel vs. its telemetry-enabled twin.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Nop is the disabled registry: it hands out nil metric handles whose
// record methods are no-ops. Writing `reg := telemetry.Nop` (or any nil
// *Registry) turns every instrumented layer off.
var Nop *Registry

// Counter is a monotonically increasing metric. The zero value is NOT
// usable on the exposition path — obtain counters from a Registry —
// but all record methods are safe on a nil receiver.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta. Negative deltas are ignored: a counter only rises.
func (c *Counter) Add(delta int64) {
	if c != nil && delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer metric that can go up and down (queue depths,
// in-flight counts).
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a float-valued gauge (rates, fractions). Stored as
// IEEE-754 bits in a uint64, so Set/Value are single atomic ops.
type FloatGauge struct {
	bits atomic.Uint64
	name string
	help string
}

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 on nil).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: bounds are chosen at
// registration, the record path is a linear scan over a handful of
// bounds plus three atomic adds — no locks, no allocations. Observe is
// safe for concurrent use.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	name   string
	help   string
}

// DefBuckets is a general-purpose latency scale in seconds, from 50 µs
// to ~10 s — wide enough for a DTW slot and a forest fit alike.
var DefBuckets = []float64{5e-5, 2.5e-4, 1e-3, 5e-3, 2.5e-2, 0.1, 0.5, 2.5, 10}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// CounterVec is a labeled counter family over one label dimension.
// With resolves a label value to a plain *Counter handle once; callers
// keep the handle so the observation path itself never touches the
// map. The paths that cannot pre-resolve (skip reasons discovered at
// run time) call With per event — an RWMutex read on a cold path.
type CounterVec struct {
	name  string
	help  string
	label string

	mu       sync.RWMutex
	children map[string]*Counter
	reg      *Registry
}

// With returns the counter for one label value, creating and
// registering it on first use. Nil-safe: a nil vec returns a nil
// counter.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.children[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[value]; c != nil {
		return c
	}
	c = &Counter{name: fmt.Sprintf("%s{%s=%q}", v.name, v.label, value), help: v.help}
	v.children[value] = c
	return c
}

// Values returns a copy of the per-label counts (nil-safe).
func (v *CounterVec) Values() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.children))
	for k, c := range v.children {
		out[k] = c.Value()
	}
	return out
}

// GaugeVec is a labeled gauge family over one label dimension — the
// coordinator's per-shard queue depths and lags live here. Like
// CounterVec, With resolves a label value to a plain *Gauge handle
// once, so the record path never touches the map.
type GaugeVec struct {
	name  string
	help  string
	label string

	mu       sync.RWMutex
	children map[string]*Gauge
}

// With returns the gauge for one label value, creating and registering
// it on first use. Nil-safe: a nil vec returns a nil gauge.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	g := v.children[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.children[value]; g != nil {
		return g
	}
	g = &Gauge{name: fmt.Sprintf("%s{%s=%q}", v.name, v.label, value), help: v.help}
	v.children[value] = g
	return g
}

// Values returns a copy of the per-label values (nil-safe).
func (v *GaugeVec) Values() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.children))
	for k, g := range v.children {
		out[k] = g.Value()
	}
	return out
}

// metric is the registry's view of one registered family.
type metric struct {
	name string
	c    *Counter
	g    *Gauge
	fg   *FloatGauge
	h    *Histogram
	vec  *CounterVec
	gvec *GaugeVec
}

// Registry holds named metrics. Registration takes a mutex;
// observation never does. A nil Registry is the disabled subsystem:
// every constructor returns nil and every record method no-ops.
type Registry struct {
	mu      sync.Mutex
	ordered []metric
	byName  map[string]metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// register installs m under its name, or returns the existing metric
// when the name is taken (idempotent re-wiring: environments may
// re-create their instrument bundles against a shared registry).
func (r *Registry) register(m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[m.name]; ok {
		return old
	}
	r.byName[m.name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter registers (or retrieves) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(metric{name: name, c: &Counter{name: name, help: help}})
	return m.c
}

// Gauge registers (or retrieves) an integer gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(metric{name: name, g: &Gauge{name: name, help: help}})
	return m.g
}

// FloatGauge registers (or retrieves) a float gauge.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	if r == nil {
		return nil
	}
	m := r.register(metric{name: name, fg: &FloatGauge{name: name, help: help}})
	return m.fg
}

// Histogram registers (or retrieves) a fixed-bucket histogram. bounds
// must be ascending; nil selects DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
		name:   name,
		help:   help,
	}
	m := r.register(metric{name: name, h: h})
	return m.h
}

// CounterVec registers (or retrieves) a one-label counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	v := &CounterVec{name: name, help: help, label: label, children: make(map[string]*Counter), reg: r}
	m := r.register(metric{name: name, vec: v})
	return m.vec
}

// GaugeVec registers (or retrieves) a one-label gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	v := &GaugeVec{name: name, help: help, label: label, children: make(map[string]*Gauge)}
	m := r.register(metric{name: name, gvec: v})
	return m.gvec
}

// HistogramSnapshot is one histogram's point-in-time state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra slot for
	// the +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Quantile estimates the q-th quantile (0..1) from the bucketed
// counts, interpolating linearly within the bucket that holds the
// target rank — the usual Prometheus-style estimator. The lowest
// bucket interpolates from zero; a rank landing in the +Inf bucket
// clamps to the last finite bound. Returns 0 for an empty histogram.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := 0.0
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) { // +Inf bucket: no upper bound to lerp to
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		return lo + (h.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time view of every metric, for tests and the
// cmd-level summaries. Labeled counters appear under their canonical
// name{label="value"} key.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	FloatGauge map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Counter returns a counter's value by name (missing = 0).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// CountersWithPrefix returns every counter whose key starts with
// prefix, keys sorted — the deterministic iteration the cmd summaries
// print.
func (s Snapshot) CountersWithPrefix(prefix string) (keys []string, values []int64) {
	for k := range s.Counters {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	values = make([]int64, len(keys))
	for i, k := range keys {
		values[i] = s.Counters[k]
	}
	return keys, values
}

// Snapshot captures the registry. Nil-safe: a nil registry snapshots
// empty (non-nil) maps so callers can index without guarding.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		FloatGauge: map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	ordered := append([]metric(nil), r.ordered...)
	r.mu.Unlock()
	for _, m := range ordered {
		switch {
		case m.c != nil:
			s.Counters[m.name] = m.c.Value()
		case m.g != nil:
			s.Gauges[m.name] = m.g.Value()
		case m.fg != nil:
			s.FloatGauge[m.name] = m.fg.Value()
		case m.h != nil:
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), m.h.bounds...),
				Counts: make([]uint64, len(m.h.counts)),
				Count:  m.h.count.Load(),
				Sum:    m.h.Sum(),
			}
			for i := range m.h.counts {
				hs.Counts[i] = m.h.counts[i].Load()
			}
			s.Histograms[m.name] = hs
		case m.vec != nil:
			m.vec.mu.RLock()
			for v, c := range m.vec.children {
				s.Counters[fmt.Sprintf("%s{%s=%q}", m.name, m.vec.label, v)] = c.Value()
			}
			m.vec.mu.RUnlock()
		case m.gvec != nil:
			for v, g := range m.gvec.Values() {
				s.Gauges[fmt.Sprintf("%s{%s=%q}", m.name, m.gvec.label, v)] = g
			}
		}
	}
	return s
}
