package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// RejectedCandidate is one satellite the scheduler-observation
// pipeline saw in the available set but did not pick, with the public
// observables the §5 analyses audit: angle of elevation, azimuth, age,
// and sunlit state.
type RejectedCandidate struct {
	SatID      int     `json:"sat_id"`
	AOEDeg     float64 `json:"aoe_deg"`
	AzimuthDeg float64 `json:"azimuth_deg"`
	AgeYears   float64 `json:"age_years"`
	Sunlit     bool    `json:"sunlit"`
}

// Decision is one (slot, terminal) allocation decision as observed by
// the campaign: the chosen satellite (0 when none), the top rejected
// candidates ranked by elevation — the scheduler's dominant preference,
// so these are the most surprising non-picks — and the skip reason
// when the record carried one. Dumpable as JSONL for offline §5-style
// audits of scheduler-preference anomalies.
type Decision struct {
	SlotStart  time.Time           `json:"slot_start"`
	Terminal   string              `json:"terminal"`
	ChosenID   int                 `json:"chosen_id"`
	ChosenAOE  float64             `json:"chosen_aoe_deg,omitempty"`
	SkipReason string              `json:"skip_reason,omitempty"`
	Rejected   []RejectedCandidate `json:"rejected,omitempty"`
}

// DecisionTrace is a bounded ring buffer of the most recent decisions.
// Record never blocks and never grows the buffer; when full, the
// oldest decision is overwritten. Safe for concurrent use; nil-safe
// like every other record path in this package.
type DecisionTrace struct {
	mu       sync.Mutex
	buf      []Decision
	next     int
	full     bool
	recorded uint64
}

// NewDecisionTrace builds a ring holding the last capacity decisions
// (minimum 1).
func NewDecisionTrace(capacity int) *DecisionTrace {
	if capacity < 1 {
		capacity = 1
	}
	return &DecisionTrace{buf: make([]Decision, capacity)}
}

// Record appends one decision, overwriting the oldest when full.
func (t *DecisionTrace) Record(d Decision) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf[t.next] = d
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.recorded++
	t.mu.Unlock()
}

// Len returns how many decisions the ring currently holds.
func (t *DecisionTrace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Recorded returns the total number of decisions ever recorded,
// including those the ring has since overwritten.
func (t *DecisionTrace) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recorded
}

// Snapshot copies the ring's contents oldest-first.
func (t *DecisionTrace) Snapshot() []Decision {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Decision
	if t.full {
		out = make([]Decision, 0, len(t.buf))
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append([]Decision(nil), t.buf[:t.next]...)
	}
	return out
}

// WriteJSONL dumps the ring oldest-first as JSON Lines (the
// DecisionDecoder format).
func (t *DecisionTrace) WriteJSONL(w io.Writer) error {
	enc := NewDecisionEncoder(w)
	for _, d := range t.Snapshot() {
		if err := enc.Encode(&d); err != nil {
			return err
		}
	}
	return enc.Flush()
}

// DecisionEncoder streams decisions to w as JSON Lines, one decision
// per line — the traceio-style record-at-a-time codec, so arbitrarily
// long audit dumps never materialize.
type DecisionEncoder struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewDecisionEncoder wraps w.
func NewDecisionEncoder(w io.Writer) *DecisionEncoder {
	bw := bufio.NewWriter(w)
	return &DecisionEncoder{bw: bw, enc: json.NewEncoder(bw)}
}

// Encode writes one decision as one line.
func (e *DecisionEncoder) Encode(d *Decision) error {
	if err := e.enc.Encode(d); err != nil {
		return fmt.Errorf("telemetry: encode decision: %w", err)
	}
	return nil
}

// Flush lands buffered output.
func (e *DecisionEncoder) Flush() error { return e.bw.Flush() }

// DecisionDecoder reads a JSONL decision trace record by record.
type DecisionDecoder struct {
	sc   *bufio.Scanner
	line int
}

// NewDecisionDecoder wraps r.
func NewDecisionDecoder(r io.Reader) *DecisionDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &DecisionDecoder{sc: sc}
}

// Next returns the next decision, io.EOF at end of stream.
func (d *DecisionDecoder) Next() (Decision, error) {
	for d.sc.Scan() {
		d.line++
		b := bytes.TrimSpace(d.sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var dec Decision
		if err := json.Unmarshal(b, &dec); err != nil {
			return Decision{}, fmt.Errorf("telemetry: decisions line %d: %w", d.line, err)
		}
		return dec, nil
	}
	if err := d.sc.Err(); err != nil {
		return Decision{}, fmt.Errorf("telemetry: read decisions: %w", err)
	}
	return Decision{}, io.EOF
}

// ReadDecisions decodes a whole JSONL trace (batch wrapper over
// DecisionDecoder).
func ReadDecisions(r io.Reader) ([]Decision, error) {
	dec := NewDecisionDecoder(r)
	var out []Decision
	for {
		d, err := dec.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
}
