package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"
)

// promType names a metric family's Prometheus type line.
func (m metric) promType() string {
	switch {
	case m.c != nil, m.vec != nil:
		return "counter"
	case m.h != nil:
		return "histogram"
	default:
		return "gauge"
	}
}

func (m metric) help() string {
	switch {
	case m.c != nil:
		return m.c.help
	case m.g != nil:
		return m.g.help
	case m.fg != nil:
		return m.fg.help
	case m.h != nil:
		return m.h.help
	case m.vec != nil:
		return m.vec.help
	case m.gvec != nil:
		return m.gvec.help
	}
	return ""
}

// formatFloat renders a float the way Prometheus text format expects:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4). Nil-safe: a nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	ordered := append([]metric(nil), r.ordered...)
	r.mu.Unlock()
	for _, m := range ordered {
		fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help())
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.promType())
		switch {
		case m.c != nil:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.c.Value())
		case m.g != nil:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.g.Value())
		case m.fg != nil:
			fmt.Fprintf(bw, "%s %s\n", m.name, formatFloat(m.fg.Value()))
		case m.h != nil:
			cum := uint64(0)
			for i := range m.h.counts {
				cum += m.h.counts[i].Load()
				le := "+Inf"
				if i < len(m.h.bounds) {
					le = formatFloat(m.h.bounds[i])
				}
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", m.name, le, cum)
			}
			fmt.Fprintf(bw, "%s_sum %s\n", m.name, formatFloat(m.h.Sum()))
			fmt.Fprintf(bw, "%s_count %d\n", m.name, m.h.Count())
		case m.vec != nil:
			vals := m.vec.Values()
			keys := make([]string, 0, len(vals))
			for k := range vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(bw, "%s{%s=%q} %d\n", m.name, m.vec.label, k, vals[k])
			}
		case m.gvec != nil:
			vals := m.gvec.Values()
			keys := make([]string, 0, len(vals))
			for k := range vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(bw, "%s{%s=%q} %d\n", m.name, m.gvec.label, k, vals[k])
			}
		}
	}
	return bw.Flush()
}

// WriteJSON renders the registry as one JSON object, expvar-style: a
// flat map from metric name (canonical name{label="value"} keys for
// labeled counters) to value; histograms render as objects with
// bounds, per-bucket counts, count, and sum. Keys are sorted by Go's
// JSON map marshalling, so output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	flat := make(map[string]any, len(s.Counters)+len(s.Gauges)+len(s.FloatGauge)+len(s.Histograms))
	for k, v := range s.Counters {
		flat[k] = v
	}
	for k, v := range s.Gauges {
		flat[k] = v
	}
	for k, v := range s.FloatGauge {
		flat[k] = v
	}
	for k, v := range s.Histograms {
		flat[k] = map[string]any{
			"bounds": v.Bounds,
			"counts": v.Counts,
			"count":  v.Count,
			"sum":    v.Sum,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flat)
}

// Server is the opt-in exposition endpoint: /metrics (Prometheus
// text), /debug/vars (expvar-style JSON), and /debug/pprof. It binds
// eagerly (so the caller learns about port conflicts immediately) and
// serves until its context is cancelled, then shuts down gracefully.
type Server struct {
	lis  net.Listener
	srv  *http.Server
	done chan error
}

// Handler builds the exposition mux for a registry — also usable under
// a caller's own HTTP server. A nil trace omits /debug/decisions.
func Handler(reg *Registry, trace *DecisionTrace) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.WriteJSON(w)
	})
	if trace != nil {
		mux.HandleFunc("/debug/decisions", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
			trace.WriteJSONL(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartServer binds addr and serves the exposition endpoint in the
// background. The server stops — gracefully, draining in-flight
// requests for up to two seconds — when ctx is cancelled; Wait returns
// the terminal error. trace may be nil.
func StartServer(ctx context.Context, addr string, reg *Registry, trace *DecisionTrace) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %q: %w", addr, err)
	}
	s := &Server{
		lis:  lis,
		srv:  &http.Server{Handler: Handler(reg, trace)},
		done: make(chan error, 1),
	}
	go func() {
		err := s.srv.Serve(lis)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.done <- err
	}()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.srv.Shutdown(shutCtx)
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Wait blocks until the server has stopped and returns its terminal
// error (nil on a clean shutdown).
func (s *Server) Wait() error { return <-s.done }
